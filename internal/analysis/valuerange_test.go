package analysis

import "testing"

// --- MV010 truncating-conversion ---------------------------------------

func TestTruncatingConversionFlagsUnprovenNarrowing(t *testing.T) {
	got := runRule(t, TruncatingConversion(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct {
	tag uint8
	seq uint16
}

func (c *comp) Eval(cycle uint64) {
	c.tag = uint8(cycle)        // line 9: cycle can exceed 255
	c.seq = uint16(cycle >> 48) // line 10: top 16 bits still span 0..65535, fits
}

func (c *comp) Commit(cycle uint64) {
	n := int(cycle)  // line 14: uint64 -> int64 can go negative? no — flags
	_ = n
}
`,
	})
	wantFindings(t, got, "truncating-conversion",
		[2]any{"a.go", 9},
		[2]any{"a.go", 14},
	)
}

func TestTruncatingConversionProvenByMaskAndGuard(t *testing.T) {
	got := runRule(t, TruncatingConversion(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct {
	tag uint8
	cnt uint16
}

func (c *comp) Eval(cycle uint64) {
	c.tag = uint8(cycle & 0xff)  // masked: proven [0, 255]
	v := cycle % 1000
	c.cnt = uint16(v)            // mod: proven [0, 999]
	if cycle < 200 {
		c.tag = uint8(cycle) // guarded: proven [0, 199]
	}
}

func (c *comp) Commit(cycle uint64) {}
`,
	})
	wantFindings(t, got, "truncating-conversion")
}

func TestTruncatingConversionWideningIsSilent(t *testing.T) {
	got := runRule(t, TruncatingConversion(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct{ acc uint64 }

func (c *comp) Eval(cycle uint64) {
	var b uint8 = 7
	c.acc += uint64(b)   // widening, never lossy
	w := uint32(b)       // widening
	_ = int64(w)         // uint32 -> int64 always fits
}

func (c *comp) Commit(cycle uint64) {}
`,
	})
	wantFindings(t, got, "truncating-conversion")
}

func TestTruncatingConversionValve(t *testing.T) {
	got := runRule(t, TruncatingConversion(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct{ tag uint8 }

func (c *comp) Eval(cycle uint64) {
	c.tag = uint8(cycle) //metrovet:truncate low byte is the epoch tag by design
}

// hash folds a cycle number; the doc valve covers the whole helper.
//
//metrovet:truncate checksum folding truncates by definition
func (c *comp) hash(cycle uint64) uint8 { return uint8(cycle * 31) }

func (c *comp) Commit(cycle uint64) { c.tag = c.hash(cycle) }
`,
	})
	wantFindings(t, got, "truncating-conversion")
}

func TestTruncatingConversionInterprocedural(t *testing.T) {
	// The helper's parameter fact is joined over hot-path call sites:
	// both calls pass provably small values, so the conversion inside
	// the helper is proven.
	got := runRule(t, TruncatingConversion(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct{ tag uint8 }

func (c *comp) Eval(cycle uint64) {
	c.tag = fold(cycle & 0x3f)
}

func (c *comp) Commit(cycle uint64) {
	c.tag = fold(200)
}

func fold(v uint64) uint8 { return uint8(v) }
`,
	})
	wantFindings(t, got, "truncating-conversion")
}

// --- MV011 provable-bounds ---------------------------------------------

func TestProvableBoundsFlagsUnguardedIndex(t *testing.T) {
	got := runRule(t, ProvableBounds(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct {
	buf  []int
	head int
}

func (c *comp) Eval(cycle uint64) {
	_ = c.buf[c.head] // line 9: head unconstrained
}

func (c *comp) Commit(cycle uint64) {}
`,
	})
	wantFindings(t, got, "provable-bounds", [2]any{"a.go", 9})
}

func TestProvableBoundsLoopIdioms(t *testing.T) {
	got := runRule(t, ProvableBounds(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct {
	buf  []int
	regs [8]int
}

func (c *comp) Eval(cycle uint64) {
	for i := 0; i < len(c.buf); i++ {
		c.buf[i]++ // classic counted loop: proven
	}
	for i := range c.buf {
		_ = c.buf[i] // range loop: proven
	}
	for i := range c.regs {
		c.regs[i] = 0 // array range: proven by the array length
	}
	_ = c.regs[5] // constant index into [8]int: proven
}

func (c *comp) Commit(cycle uint64) {
	n := len(c.buf)
	for i := 0; i < n; i++ {
		c.buf[i] = 0 // symbolic n == len(c.buf): proven
	}
}
`,
	})
	wantFindings(t, got, "provable-bounds")
}

func TestProvableBoundsGuardAndModulo(t *testing.T) {
	got := runRule(t, ProvableBounds(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct {
	ring []int
	head int
}

func (c *comp) Eval(cycle uint64) {
	if c.head >= 0 && c.head < len(c.ring) {
		_ = c.ring[c.head] // guarded: proven
	}
	if len(c.ring) > 0 {
		_ = c.ring[int(cycle%uint64(len(c.ring)))] // ring-buffer modulo: proven
	}
}

func (c *comp) Commit(cycle uint64) {
	if len(c.ring) > 0 {
		// line 21: int(cycle) goes negative past MaxInt64 and Go's %
		// takes the dividend's sign — a real hazard, not provable.
		_ = c.ring[int(cycle)%len(c.ring)]
	}
}
`,
	})
	wantFindings(t, got, "provable-bounds", [2]any{"a.go", 21})
}

func TestProvableBoundsCatchesOffByOne(t *testing.T) {
	got := runRule(t, ProvableBounds(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct {
	buf  []int
	regs [8]int
}

func (c *comp) Eval(cycle uint64) {
	for i := 0; i <= len(c.buf); i++ {
		c.buf[i] = 0 // line 10: i == len(c.buf) is out of bounds
	}
	j := 8
	_ = c.regs[j] // line 13: one past the end of [8]int
}

func (c *comp) Commit(cycle uint64) {
	if c.regs[0] > 0 { // constant 0 into [8]int: proven, no finding
		return
	}
}
`,
	})
	wantFindings(t, got, "provable-bounds", [2]any{"a.go", 10}, [2]any{"a.go", 13})
}

func TestProvableBoundsValve(t *testing.T) {
	got := runRule(t, ProvableBounds(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct {
	fwd  []int
	port int
}

func (c *comp) Eval(cycle uint64) {
	_ = c.fwd[c.port] //metrovet:bounds port validated against the radix at wiring time
}

// drain is covered whole by the doc valve.
//
//metrovet:bounds indices come from the wiring table, validated by CheckInvariants
func (c *comp) drain() int { return c.fwd[c.port+1] }

func (c *comp) Commit(cycle uint64) { _ = c.drain() }
`,
	})
	wantFindings(t, got, "provable-bounds")
}

func TestProvableBoundsAppendAndMakeTrackLength(t *testing.T) {
	got := runRule(t, ProvableBounds(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct{ buf []int }

func (c *comp) Eval(cycle uint64) {
	s := make([]int, 4)
	s[3] = 1 // proven: len(s) == 4
	s = append(s, 9)
	s[4] = 2 // proven: append grew it to 5
}

func (c *comp) Commit(cycle uint64) {
	s := []int{1, 2, 3}
	_ = s[2] // proven: literal length 3
	_ = s[3] // line 15: out of bounds
}
`,
	})
	wantFindings(t, got, "provable-bounds", [2]any{"a.go", 15})
}

// --- MV012 width-contract ----------------------------------------------

func TestWidthContractShiftAmounts(t *testing.T) {
	got := runRule(t, WidthContract(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct {
	acc uint32
	w   int
}

func (c *comp) Eval(cycle uint64) {
	c.acc <<= uint(c.w)          // line 9: w unconstrained, uint(w) may be >= 32
	c.acc = c.acc >> 1           // constant: proven
	if c.w >= 0 && c.w < 32 {
		c.acc >>= uint(c.w)      // guarded: proven
	}
	var v uint64 = cycle << 40   // 40 < 64: proven for a uint64 operand
	_ = v
}

func (c *comp) Commit(cycle uint64) {}
`,
	})
	wantFindings(t, got, "width-contract", [2]any{"a.go", 9})
}

func TestWidthContractWordCallSites(t *testing.T) {
	prog := loadFixtureProgram(t,
		fixturePkg{path: "metro/internal/word", files: map[string]string{
			"word.go": `package word

// Mask returns a bit mask covering a width-bit payload.
func Mask(width int) uint32 {
	if width >= 32 {
		return ^uint32(0)
	}
	if width < 0 {
		return 0
	}
	return (1 << uint(width)) - 1
}

// ChecksumWords returns the word count for a width-bit channel.
func ChecksumWords(width int) int {
	if width <= 0 {
		return 0
	}
	n := 8 / width
	if 8%width != 0 {
		n++
	}
	return n
}
`,
		}},
		fixturePkg{path: "metro/internal/core", files: map[string]string{
			"a.go": `package core

import "metro/internal/word"

type comp struct {
	w    int
	mask uint32
}

func (c *comp) Eval(cycle uint64) {
	c.mask = word.Mask(c.w) // line 11: width unconstrained
	c.mask = word.Mask(16)  // constant in [1, 32]: proven
	if c.w >= 1 && c.w <= 32 {
		c.mask = word.Mask(c.w) // guarded: proven
	}
}

func (c *comp) Commit(cycle uint64) {
	_ = word.ChecksumWords(0) // line 19: 0 outside [1, 32]
}
`,
		}},
	)
	got := valueRangeFindings(prog, "width-contract")
	wantFindings(t, got, "width-contract",
		[2]any{"metro/internal/core/a.go", 11},
		[2]any{"metro/internal/core/a.go", 19},
	)
}

func TestWidthContractValve(t *testing.T) {
	got := runRule(t, WidthContract(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct {
	acc uint32
	w   int
}

func (c *comp) Eval(cycle uint64) {
	c.acc <<= uint(c.w) //metrovet:width w is validated to 1..32 by the constructor
}

func (c *comp) Commit(cycle uint64) {}
`,
	})
	wantFindings(t, got, "width-contract")
}

// --- shared machinery ---------------------------------------------------

func TestValueRangeLoopConvergence(t *testing.T) {
	// The JoinChecksum shape: shift starts at 0, grows by a bounded
	// width, and the loop breaks before it reaches 8 — the fixpoint must
	// prove shift stays within [0, 7].
	got := runRule(t, WidthContract(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct{ acc uint32 }

func (c *comp) Eval(cycle uint64) {
	shift := 0
	for i := 0; i < 64; i++ {
		c.acc |= 1 << uint(shift) // proven: shift in [0, 7]
		shift += 3
		if shift >= 8 {
			break
		}
	}
}

func (c *comp) Commit(cycle uint64) {}
`,
	})
	wantFindings(t, got, "width-contract")
}

func TestValueRangeOnlyHotPathIsChecked(t *testing.T) {
	// The same hazards outside the Eval/Commit-reachable region are out
	// of scope for all three rules.
	files := map[string]string{
		"a.go": `package core

type comp struct{ buf []int }

func (c *comp) Eval(cycle uint64)   {}
func (c *comp) Commit(cycle uint64) {}

func coldTool(c *comp, i int, v uint64) uint8 {
	_ = c.buf[i]
	return uint8(v)
}
`,
	}
	for _, a := range []*Analyzer{TruncatingConversion(), ProvableBounds(), WidthContract()} {
		got := runRule(t, a, "metro/internal/core", files)
		wantFindings(t, got, a.Name)
	}
}
