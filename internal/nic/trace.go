package nic

import "fmt"

// TraceKind enumerates the message-lifecycle events an endpoint reports:
// the observable protocol trajectory of one message from Offer to its
// final Delivered/Failed disposition, plus the destination-side TURN
// verification. The a/b arguments of Tracer.Message are kind-specific
// and documented per constant.
type TraceKind uint8

const (
	// TraceQueued: the message entered the endpoint's send queue
	// (cycle = Message.Created). a = destination endpoint.
	TraceQueued TraceKind = iota
	// TraceAttempt: a transmission attempt started on an injection link.
	// a = attempt number (1-based).
	TraceAttempt
	// TraceTurnSent: the stream — header, payload, checksum, TURN — is
	// fully transmitted; the sender is now listening. a = attempt number.
	TraceTurnSent
	// TraceBlockedFast: the attempt died to backward-channel-busy (fast
	// path reclamation) during send or listen.
	TraceBlockedFast
	// TraceBlockedDetailed: a detailed blocked reply (or far-end close)
	// ended the attempt. a = blocking stage, -1 when unknown.
	TraceBlockedDetailed
	// TraceChecksumFail: reply verification failed — a corrupted reply
	// stream, a NACKed delivery, or an end-to-end checksum mismatch.
	TraceChecksumFail
	// TraceTimeout: the per-attempt reply watchdog expired.
	TraceTimeout
	// TraceRetried: the message went back on the send queue.
	// a = retries so far.
	TraceRetried
	// TraceDelivered: final disposition, message delivered and verified.
	// a = total retries, b = destination endpoint.
	TraceDelivered
	// TraceFailed: final disposition, retry budget exhausted.
	// a = total retries, b = destination endpoint.
	TraceFailed
	// TraceArrived: destination side — a TURN arrived and the message
	// was verified (the receiver does not know message IDs, so id = 0).
	// a = 1 when intact, 0 when corrupt.
	TraceArrived
)

var traceKindNames = [...]string{
	TraceQueued:          "QUEUED",
	TraceAttempt:         "ATTEMPT",
	TraceTurnSent:        "TURN-SENT",
	TraceBlockedFast:     "BLOCKED-FAST",
	TraceBlockedDetailed: "BLOCKED-DETAILED",
	TraceChecksumFail:    "CHECKSUM-FAIL",
	TraceTimeout:         "TIMEOUT",
	TraceRetried:         "RETRIED",
	TraceDelivered:       "DELIVERED",
	TraceFailed:          "FAILED",
	TraceArrived:         "ARRIVED",
}

// String returns the event mnemonic for traces and test failures.
func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return fmt.Sprintf("TraceKind(%d)", uint8(k))
}

// Tracer observes the message lifecycle at an endpoint. Message is
// invoked during Eval (and from Offer for TraceQueued); implementations
// must not mutate simulation state and must not allocate if the
// enclosing simulation is to stay zero-alloc per cycle. A nil tracer
// disables tracing at zero cost beyond one branch per event site.
type Tracer interface {
	// Message reports one lifecycle event for message id at endpoint ep.
	// The meaning of a and b depends on kind; see the TraceKind
	// constants.
	Message(cycle uint64, ep int, kind TraceKind, id uint64, a, b int)
}

// NopTracer is a Tracer that ignores all events.
type NopTracer struct{}

// Message implements Tracer.
func (NopTracer) Message(uint64, int, TraceKind, uint64, int, int) {}

// trace forwards one event to the configured tracer, if any.
func (e *Endpoint) trace(cycle uint64, kind TraceKind, id uint64, a, b int) {
	if e.cfg.Tracer != nil {
		e.cfg.Tracer.Message(cycle, e.cfg.ID, kind, id, a, b)
	}
}
