package word

// Checksum is the running CRC-8 (polynomial x^8+x^2+x+1, i.e. 0x07) that
// METRO routers compute over the words they forward and that endpoints
// compute over message payloads. Each router reports its checksum in the
// reversed stream after a TURN, which lets a source localize a corrupting
// link by finding the first router whose reported checksum disagrees with
// the expected value.
//
// The zero value is ready to use.
type Checksum struct {
	crc uint8
}

// crc8Table is the byte-at-a-time table for polynomial 0x07 (CRC-8/ATM).
var crc8Table = func() [256]uint8 {
	var t [256]uint8
	for i := 0; i < 256; i++ {
		c := uint8(i)
		for b := 0; b < 8; b++ {
			if c&0x80 != 0 {
				c = c<<1 ^ 0x07
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return t
}()

// Reset clears the running checksum, as happens in a router at each
// connection reversal (the checksum covers one transmission segment).
func (c *Checksum) Reset() { c.crc = 0 }

// AddByte folds one byte into the checksum.
func (c *Checksum) AddByte(b uint8) { c.crc = crc8Table[c.crc^b] }

// Add folds a word into the checksum. Only stream content words contribute:
// Route, HeaderPad, Data and ChecksumWord payloads are covered, control
// words (DataIdle, Turn, Status, Drop, Empty) are not, since idle fill and
// reversal tokens may legitimately differ between path segments.
func (c *Checksum) Add(w Word) {
	switch w.Kind {
	case Route, HeaderPad, Data, ChecksumWord:
		c.AddByte(uint8(w.Payload & 0xff))
	case Empty, DataIdle, Turn, Status, Drop:
		// Control words are excluded from the segment checksum.
	}
}

// Sum returns the current CRC-8 value.
func (c *Checksum) Sum() uint8 { return c.crc }

// ChecksumWords returns the number of w-bit words needed to carry a CRC-8
// value on a channel of the given width.
func ChecksumWords(width int) int {
	if width <= 0 {
		return 0
	}
	n := 8 / width
	if 8%width != 0 {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SplitChecksum splits a CRC-8 value into ChecksumWords(width) channel words,
// least-significant chunk first.
func SplitChecksum(sum uint8, width int) []Word {
	// Clamp the width into the [1, 32] channel contract up front: a
	// nonpositive width carries no words (as ChecksumWords agrees), and
	// widths past 32 behave exactly like 32. The clamps don't change
	// behavior; they make the bounds locally provable.
	if width < 1 {
		return make([]Word, 0)
	}
	if width > 32 {
		width = 32
	}
	n := ChecksumWords(width)
	out := make([]Word, n)
	v := uint32(sum)
	for i := 0; i < n; i++ {
		out[i] = Word{Kind: ChecksumWord, Payload: v & Mask(width)}
		// v holds a CRC-8, so shifting by 8 already clears it; capping
		// the step at 8 keeps the shift below the 32-bit operand width.
		v >>= uint(min(width, 8))
	}
	return out
}

// AppendChecksum appends the ChecksumWords(width) channel words carrying a
// CRC-8 value to dst, least-significant chunk first: the allocation-free
// form of SplitChecksum for per-cycle paths that reuse a scratch buffer.
//
//metrovet:alloc appends into caller-owned scratch sized for the stream; steady state reuses capacity
func AppendChecksum(dst []Word, sum uint8, width int) []Word {
	// Same width clamps as SplitChecksum: behavior-identical, locally
	// provable.
	if width < 1 {
		return dst
	}
	if width > 32 {
		width = 32
	}
	n := ChecksumWords(width)
	v := uint32(sum)
	for i := 0; i < n; i++ {
		dst = append(dst, Word{Kind: ChecksumWord, Payload: v & Mask(width)})
		v >>= uint(min(width, 8))
	}
	return dst
}

// JoinChecksum reassembles a CRC-8 value from channel words produced by
// SplitChecksum. Words beyond the CRC-8 width are ignored.
func JoinChecksum(words []Word, width int) uint8 {
	// Width clamps as in SplitChecksum. A nonpositive width masks every
	// payload to zero today, so returning zero directly is identical.
	if width < 1 {
		return 0
	}
	if width > 32 {
		width = 32
	}
	var v uint32
	shift := 0
	for _, w := range words {
		v |= (w.Payload & Mask(width)) << uint(shift)
		shift += width
		if shift >= 8 {
			break
		}
	}
	return uint8(v & 0xff)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
