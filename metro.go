// Package metro is a cycle-accurate implementation of METRO — the
// Multipath Enhanced Transit Router Organization (Chong, DeHon, Minsky,
// Becker, Egozy, Peretz, Knight; ISCA 1994) — a routing architecture for
// high-performance, short-haul networks in tightly-coupled multiprocessors
// and routing hubs.
//
// A METRO router is a dilated crossbar routing component supporting
// half-duplex bidirectional, pipelined, circuit-switched connections. Each
// router is self-routing with stochastic selection among the logically
// equivalent outputs of each direction; it works in conjunction with
// source-responsible network interfaces to achieve reliable end-to-end
// delivery under congestion and dynamic faults. The architecture separates
// fundamental characteristics from implementation parameters (channel
// width w, header words hw, data pipelining dp, variable turn delay,
// dilation, cascading), and this library models all of them.
//
// The package surface groups into:
//
//   - Topologies: Figure1Topology, Figure3Topology, and the general
//     multibutterfly builder (BuildTopology) — multipath multistage
//     networks with configurable stage radices, dilations and wiring.
//   - Simulation: BuildNetwork assembles routers, pipelined links and
//     endpoints; Network.Send issues reliable messages; RunClosedLoop and
//     LoadSweep drive the Figure-3 style load-latency experiments.
//   - Faults: fault plans (InjectFaults, RandomRouterKills, ...) exercise
//     the architecture's stochastic fault avoidance, and the scan
//     subsystem (NewMultiTAP, LoopbackTest) its diagnosis and masking.
//   - Analysis: the Table 4 closed-form latency model (Table3, Table5,
//     Implementation) regenerating the paper's evaluation tables.
//   - Width cascading: NewCascadeGroup builds wide logical routers from
//     narrow components with shared randomness and the wired-AND IN-USE
//     consistency check.
//
// Everything is deterministic given the seeds in the various parameter
// structures. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for paper-versus-measured results.
package metro

import (
	"metro/internal/cascade"
	"metro/internal/clock"
	"metro/internal/core"
	"metro/internal/fault"
	"metro/internal/latmodel"
	"metro/internal/link"
	"metro/internal/netsim"
	"metro/internal/nic"
	"metro/internal/prng"
	"metro/internal/scan"
	"metro/internal/stats"
	"metro/internal/topo"
	"metro/internal/traffic"
)

// --- Topology -----------------------------------------------------------

// TopologySpec describes a multipath multistage network: endpoint count,
// links per endpoint, and the router stages.
type TopologySpec = topo.Spec

// StageSpec describes one router stage (inputs, radix, dilation).
type StageSpec = topo.StageSpec

// Topology is an elaborated network structure with full wiring.
type Topology = topo.Topology

// Wiring selects inter-stage permutation style.
type Wiring = topo.Wiring

// Wiring styles.
const (
	WiringInterleave = topo.WiringInterleave
	WiringRandom     = topo.WiringRandom
)

// Figure1Topology returns the paper's 16x16 multipath network (Figure 1).
func Figure1Topology() TopologySpec { return topo.Figure1() }

// Figure3Topology returns the 3-stage radix-4 network of the paper's
// aggregate-performance simulation (Figure 3).
func Figure3Topology() TopologySpec { return topo.Figure3() }

// Topology32 returns the 32-node multibutterfly assumed by the Table 3
// t20,32 estimates for 4x4 routers.
func Topology32() TopologySpec { return topo.Table3Network32() }

// Topology32Radix8 returns the 2-stage 32-node network for 8x8 routers.
func Topology32Radix8() TopologySpec { return topo.Table3Network32Radix8() }

// BuildTopology validates and elaborates a topology specification.
func BuildTopology(spec TopologySpec) (*Topology, error) { return topo.Build(spec) }

// --- Router core --------------------------------------------------------

// RouterConfig holds a router's architectural parameters (Table 1).
type RouterConfig = core.Config

// RouterSettings holds the run-time configurable options (Table 2).
type RouterSettings = core.Settings

// Router is one METRO routing component.
type Router = core.Router

// DefaultRouterSettings returns everything-enabled settings for a config.
func DefaultRouterSettings(cfg RouterConfig) RouterSettings { return core.DefaultSettings(cfg) }

// NewRouter constructs a standalone router (most callers want
// BuildNetwork instead).
func NewRouter(name string, cfg RouterConfig, set RouterSettings, seed uint32) *Router {
	return core.NewRouter(name, cfg, set, prng.NewLFSR(seed))
}

// --- Simulation ---------------------------------------------------------

// NetworkParams configures a network build.
type NetworkParams = netsim.Params

// Network is an elaborated, runnable METRO network.
type Network = netsim.Network

// Message is one unit of reliable traffic.
type Message = nic.Message

// Result reports the fate and telemetry of a delivered message.
type Result = nic.Result

// Engine is the synchronous simulation kernel.
type Engine = clock.Engine

// Link is a pipelined point-to-point connection.
type Link = link.Link

// LinkEnd is one side's interface to a link.
type LinkEnd = link.End

// NewLink constructs a link with the given pipeline delay per direction.
func NewLink(name string, delay int) *Link { return link.New(name, delay) }

// NewEngine constructs an empty synchronous simulation engine.
func NewEngine() *Engine { return clock.New() }

// BuildNetwork assembles routers, links and endpoints for the given
// parameters.
func BuildNetwork(p NetworkParams) (*Network, error) { return netsim.Build(p) }

// SendOne builds no workload machinery: it offers a single message and
// runs the network until it completes (or maxCycles elapse), returning the
// message's Result. Useful for request-reply examples and smoke tests.
func SendOne(n *Network, src, dest int, payload []byte, maxCycles uint64) (Result, bool) {
	n.Send(src, dest, payload)
	n.RunUntilQuiet(maxCycles)
	rs := n.TakeResults()
	if len(rs) == 0 {
		return Result{}, false
	}
	return rs[len(rs)-1], true
}

// --- Workloads ----------------------------------------------------------

// RunSpec describes a closed-loop (processor-stall) measurement run.
type RunSpec = traffic.RunSpec

// LoadPoint is one point of a load-latency curve.
type LoadPoint = stats.LoadPoint

// TrafficPattern selects message destinations.
type TrafficPattern = traffic.Pattern

// Built-in traffic patterns.
type (
	// UniformTraffic sends to uniformly random destinations.
	UniformTraffic = traffic.Uniform
	// HotspotTraffic concentrates a fraction of traffic on one endpoint.
	HotspotTraffic = traffic.Hotspot
	// BitReverseTraffic is the adversarial bit-reversal permutation.
	BitReverseTraffic = traffic.BitReverse
	// TransposeTraffic is the matrix-transpose permutation.
	TransposeTraffic = traffic.Transpose
)

// StageCounters aggregates router events (allocations, blocks, reversals)
// per network stage, quantifying where congestion concentrates. Pass it as
// NetworkParams.Tracer.
type StageCounters = netsim.Counters

// StageStats is one stage's aggregate from StageCounters.
type StageStats = netsim.StageStats

// NewStageCounters returns an empty per-stage event aggregator.
func NewStageCounters() *StageCounters { return netsim.NewCounters() }

// RunClosedLoop executes one measurement run.
func RunClosedLoop(spec RunSpec) (LoadPoint, error) { return traffic.Run(spec) }

// LoadSweep measures a load-latency curve across the given offered loads.
func LoadSweep(spec RunSpec, loads []float64) ([]LoadPoint, error) {
	return traffic.Sweep(spec, loads)
}

// RunOpenLoop executes one Bernoulli-injection (open-loop) measurement:
// generation does not wait for completions, so loads past saturation build
// queues and expose the network's saturation throughput.
func RunOpenLoop(spec RunSpec) (LoadPoint, error) { return traffic.RunOpenLoop(spec) }

// OpenLoopSweep measures an open-loop curve across offered loads.
func OpenLoopSweep(spec RunSpec, loads []float64) ([]LoadPoint, error) {
	return traffic.SweepOpenLoop(spec, loads)
}

// --- Faults and diagnosis ----------------------------------------------

// FaultKind enumerates fault types.
type FaultKind = fault.Kind

// Fault kinds.
const (
	FaultLinkKill     = fault.LinkKill
	FaultLinkStuckBit = fault.LinkStuckBit
	FaultRouterKill   = fault.RouterKill
	FaultPortDisable  = fault.PortDisable
)

// FaultEvent is one scheduled fault.
type FaultEvent = fault.Event

// FaultPlan is a schedule of faults.
type FaultPlan = fault.Plan

// FaultInjector applies a plan as the simulation advances.
type FaultInjector = fault.Injector

// InjectFaults binds a fault plan to a network.
func InjectFaults(n *Network, plan FaultPlan) *FaultInjector { return fault.NewInjector(n, plan) }

// RandomRouterKills schedules count router losses in the first `stages`
// stages across the cycle window [start, end).
func RandomRouterKills(n *Network, count, stages int, seed int64, start, end uint64) FaultPlan {
	return fault.RandomRouterKills(n, count, stages, seed, start, end)
}

// RandomLinkKills schedules count link severances.
func RandomLinkKills(n *Network, count int, seed int64, start, end uint64) FaultPlan {
	return fault.RandomLinkKills(n, count, seed, start, end)
}

// MultiTAP is a component's set of redundant scan paths.
type MultiTAP = scan.MultiTAP

// TAP is one IEEE 1149.1 test access port.
type TAP = scan.TAP

// ScanDriver clocks host-side TAP sequences.
type ScanDriver = scan.Driver

// LoopbackResult reports an isolated-link boundary test.
type LoopbackResult = scan.LoopbackResult

// NewMultiTAP attaches sp redundant TAPs to a router, all reaching its
// configuration register.
func NewMultiTAP(r *Router, id uint32) *MultiTAP { return scan.NewMultiTAP(r, id) }

// NewSettingsRegister exposes a router's Table 2 options as a scan data
// register.
func NewSettingsRegister(r *Router) scan.Register { return scan.NewSettingsRegister(r) }

// LoopbackTest drives EXTEST-style patterns over an isolated link,
// localizing stuck bits (both attached ports must be disabled first).
func LoopbackTest(l *Link, width int, extra []uint32) LoopbackResult {
	return scan.LoopbackTest(l, width, extra)
}

// --- Width cascading ----------------------------------------------------

// CascadeGroup is a width-cascaded logical router.
type CascadeGroup = cascade.Group

// NewCascadeGroup builds a cascade of c identical members with shared
// randomness; add the group (not the members) to the engine.
func NewCascadeGroup(name string, cfg RouterConfig, set RouterSettings, c int, seed uint32) *CascadeGroup {
	return cascade.NewGroup(name, cfg, set, c, prng.NewShared(seed))
}

// --- Analytical model ---------------------------------------------------

// Implementation is one METRO technology binding in the Table 4 latency
// model.
type Implementation = latmodel.Implementation

// Baseline models one contemporary routing technology (Table 5).
type Baseline = latmodel.Baseline

// Table3 returns the paper's Table 3 implementation points; each row's
// T2032 reproduces the printed value exactly.
func Table3() []Implementation { return latmodel.Table3() }

// Table5 returns the paper's contemporary-technology comparisons.
func Table5() []Baseline { return latmodel.Table5() }

// PaperT2032 lists the t20,32 values the paper prints for Table 3.
func PaperT2032() []float64 { return append([]float64(nil), latmodel.PaperT2032...) }
