package scan

import (
	"math/bits"

	"metro/internal/core"
)

// SettingsRegister adapts a router's run-time settings (Table 2) to a scan
// data register. The bit layout, LSB (first-shifted) first:
//
//	dilation select      log2(max_d)+1 bits (encodes log2(d))
//	forward port enable  i bits
//	backward port enable o bits
//	off-port drive       i+o bits
//	fast reclaim         i bits
//	swallow              i bits
//	turn delay           bitsFor(max_vtd) bits per port, i+o ports
//
// Capture serializes the router's live settings; Update validates and
// applies the shifted-in value, as the silicon's Update-DR would. An
// invalid value (for example a dilation above max_d) is rejected and the
// old settings stay in force.
type SettingsRegister struct {
	router *core.Router
}

// NewSettingsRegister builds the CONFIG register for a router.
func NewSettingsRegister(r *core.Router) *SettingsRegister {
	return &SettingsRegister{router: r}
}

func bitsFor(maxValue int) int {
	if maxValue <= 0 {
		return 1
	}
	return bits.Len(uint(maxValue))
}

// Len implements Register.
func (s *SettingsRegister) Len() int {
	cfg := s.router.Config()
	n := bitsFor(log2i(cfg.MaxDilation)) // dilation select field
	n += cfg.Inputs                      // forward enables
	n += cfg.Outputs                     // backward enables
	n += cfg.Inputs + cfg.Outputs        // off-port drive
	n += cfg.Inputs                      // fast reclaim
	n += cfg.Inputs                      // swallow
	n += (cfg.Inputs + cfg.Outputs) * bitsFor(cfg.MaxVTD)
	return n
}

// Capture implements Register.
func (s *SettingsRegister) Capture() []bool {
	cfg := s.router.Config()
	set := s.router.Settings()
	var out []bool
	appendUint := func(v uint64, n int) {
		out = append(out, UintToBits(v, n)...)
	}
	appendBools := func(bs []bool) { out = append(out, bs...) }

	appendUint(uint64(log2i(set.Dilation)), bitsFor(log2i(cfg.MaxDilation)))
	appendBools(set.ForwardEnabled)
	appendBools(set.BackwardEnabled)
	appendBools(set.OffPortDrive)
	appendBools(set.FastReclaim)
	appendBools(set.Swallow)
	for _, td := range set.TurnDelay {
		appendUint(uint64(td), bitsFor(cfg.MaxVTD))
	}
	return out
}

// Update implements Register.
func (s *SettingsRegister) Update(in []bool) {
	cfg := s.router.Config()
	set := s.router.Settings()
	pos := 0
	take := func(n int) []bool {
		if pos+n > len(in) {
			n = len(in) - pos
		}
		if n <= 0 {
			return nil
		}
		v := in[pos : pos+n]
		pos += n
		return v
	}
	takeUint := func(n int) uint64 { return BitsToUint(take(n)) }
	takeBools := func(dst []bool) { copy(dst, take(len(dst))) }

	set.Dilation = 1 << uint(takeUint(bitsFor(log2i(cfg.MaxDilation))))
	takeBools(set.ForwardEnabled)
	takeBools(set.BackwardEnabled)
	takeBools(set.OffPortDrive)
	takeBools(set.FastReclaim)
	takeBools(set.Swallow)
	tdBits := bitsFor(cfg.MaxVTD)
	for i := range set.TurnDelay {
		set.TurnDelay[i] = int(takeUint(tdBits))
	}
	// Apply only if valid; the silicon ignores illegal updates.
	_ = s.router.ApplySettings(set)
}

func log2i(v int) int {
	n := 0
	for 1<<uint(n) < v {
		n++
	}
	return n
}

// SetPortEnabled performs a read-modify-write of the CONFIG register
// through any healthy TAP of the component, enabling or disabling one
// port while leaving every other option untouched — the scan sequence a
// host uses to isolate or restore a port during operation. backward
// selects the backward-port enable bank; port indexes within the bank.
// It returns false when no scan path works.
func SetPortEnabled(m *MultiTAP, r *core.Router, backward bool, port int, on bool) bool {
	reg := NewSettingsRegister(r)
	bits, ok := m.ReadSettings(reg.Len())
	if !ok {
		return false
	}
	cfg := r.Config()
	// Field layout per SettingsRegister: dilation select, forward
	// enables, backward enables, ...
	pos := bitsFor(log2i(cfg.MaxDilation))
	if backward {
		pos += cfg.Inputs
	}
	pos += port
	if pos >= len(bits) {
		return false
	}
	bits[pos] = on
	return m.LoadSettings(bits)
}
