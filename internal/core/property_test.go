package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"metro/internal/core"
	"metro/internal/prng"
	"metro/internal/word"
)

// TestAllocatorInvariantsUnderRandomTraffic drives a router with randomized
// request/hold/drop traffic from every forward port and checks the crossbar
// invariants every cycle:
//
//  1. a backward port is owned by at most one forward port,
//  2. a forward port owns at most one backward port,
//  3. every allocation lies in the requested logical direction,
//  4. disabled backward ports are never allocated.
func TestAllocatorInvariantsUnderRandomTraffic(t *testing.T) {
	cfg := core.Config{Inputs: 8, Outputs: 8, Width: 4, MaxDilation: 4,
		HeaderWords: 0, DataPipe: 1, MaxVTD: 4, RandomInputs: 2, ScanPaths: 1}

	for _, dilation := range []int{1, 2, 4} {
		set := core.DefaultSettings(cfg)
		set.Dilation = dilation
		set.BackwardEnabled[3] = false // one port disabled throughout

		h := newHarness(cfg, set, uint32(dilation)*7+1)
		rng := rand.New(rand.NewSource(int64(dilation)))
		radix := cfg.Radix(dilation)
		bits := cfg.DirBits(dilation)

		// Per-source state: remaining words to send, requested direction.
		// After a DROP the source observes the close gap (dp+1 cycles)
		// before issuing a new ROUTE, the discipline real network
		// interfaces follow so a new request never chases a DROP into a
		// router that has not yet released the old connection.
		type srcState struct {
			active   bool
			dir      int
			left     int
			draining bool
			cooldown int
		}
		srcs := make([]srcState, cfg.Inputs)
		wantDir := make([]int, cfg.Inputs) // last requested direction per fp

		for cycle := 0; cycle < 2000; cycle++ {
			for fp := range srcs {
				s := &srcs[fp]
				switch {
				case s.draining:
					h.src[fp].Send(word.Word{Kind: word.Drop})
					s.draining = false
					s.active = false
					s.cooldown = cfg.DataPipe + 2
				case s.cooldown > 0:
					s.cooldown--
				case s.active && s.left > 0:
					h.src[fp].Send(word.Word{Kind: word.DataIdle})
					s.left--
					if s.left == 0 {
						s.draining = true
					}
				case !s.active && rng.Intn(4) == 0:
					dir := rng.Intn(radix)
					s.active = true
					s.dir = dir
					s.left = 1 + rng.Intn(10)
					wantDir[fp] = dir
					h.src[fp].Send(word.MakeRoute(uint32(dir), bits))
				}
				// BCB means the request was blocked; drop and go idle.
				if h.src[fp].RecvBCB() && s.active {
					s.draining = true
					s.left = 0
				}
			}
			h.run()

			ownerSeen := map[int]int{}
			for bp := 0; bp < cfg.Outputs; bp++ {
				owner := h.r.OwnerOf(bp)
				if owner < 0 {
					// Free (-1) or held by a detached closing flush (-2).
					continue
				}
				if prev, dup := ownerSeen[owner]; dup {
					t.Fatalf("dilation %d cycle %d: fp %d owns bp %d and %d",
						dilation, cycle, owner, prev, bp)
				}
				ownerSeen[owner] = bp
				if bp == 3 {
					t.Fatalf("dilation %d cycle %d: disabled port allocated", dilation, cycle)
				}
				gotDir := h.r.Direction(bp)
				if gotDir != wantDir[owner] {
					t.Fatalf("dilation %d cycle %d: fp %d asked dir %d, got bp %d (dir %d)",
						dilation, cycle, owner, wantDir[owner], bp, gotDir)
				}
			}
		}
	}
}

// TestPickSharedRandomnessDeterminism verifies that two routers with
// identical configuration fed by forks of the same shared random stream
// make identical allocation decisions for identical request sequences —
// the foundation of width cascading.
func TestPickSharedRandomnessDeterminism(t *testing.T) {
	cfg := core.Config{Inputs: 4, Outputs: 8, Width: 4, MaxDilation: 4,
		HeaderWords: 0, DataPipe: 1, MaxVTD: 4, RandomInputs: 2, ScanPaths: 1}
	set := core.DefaultSettings(cfg) // dilation 4: radix 2

	shared := prng.NewShared(404)
	a := buildHarness(cfg, set, shared.Fork())
	b := buildHarness(cfg, set, shared.Fork())

	rng := rand.New(rand.NewSource(99))
	for cycle := 0; cycle < 300; cycle++ {
		for fp := 0; fp < cfg.Inputs; fp++ {
			var w word.Word
			switch rng.Intn(3) {
			case 0:
				w = word.MakeRoute(uint32(rng.Intn(2)), 1)
			case 1:
				w = word.Word{Kind: word.DataIdle}
			case 2:
				w = word.Word{Kind: word.Drop}
			}
			a.src[fp].Send(w)
			b.src[fp].Send(w)
		}
		a.run()
		b.run()
		if a.r.BackwardInUse() != b.r.BackwardInUse() {
			t.Fatalf("cycle %d: identical routers diverged: %#x vs %#x",
				cycle, a.r.BackwardInUse(), b.r.BackwardInUse())
		}
	}
}

func TestDirBitsProperty(t *testing.T) {
	f := func(iExp, oExp, dExp uint8) bool {
		i := 1 << (iExp%4 + 1) // 2..16
		o := 1 << (oExp%4 + 1) // 2..16
		d := 1 << (dExp % 3)   // 1..4
		if d > o {
			return true
		}
		cfg := core.Config{Inputs: i, Outputs: o, Width: 8, MaxDilation: d,
			HeaderWords: 0, DataPipe: 1, MaxVTD: 4, RandomInputs: 1, ScanPaths: 1}
		if cfg.Validate() != nil {
			return true
		}
		// radix * dilation == outputs, and 2^DirBits == radix.
		r := cfg.Radix(d)
		if r*d != o {
			return false
		}
		return 1<<uint(cfg.DirBits(d)) == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
