package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ShardPurity returns the shard-purity analyzer, the whole-program
// counterpart of eval-isolation. Where eval-isolation pattern-matches
// suspicious shapes inside one package, shard-purity *proves* — over
// the interprocedural call graph, including interface dispatch — that
// every function reachable from any component's Eval writes only
// receiver-local (shard-local) state. It tracks writes through pointer
// parameters (a helper that scribbles on a *Router it was handed is
// charged to whoever handed it the pointer), captured closures,
// package-level variables, slice/map aliasing of all of the above, and
// CHA-resolved interface calls that land on another component's
// mutating method.
//
// The rule exists because the parallel engine's bit-for-bit equivalence
// claim rests on Eval-phase isolation, and the next refactors (the
// flattened struct-of-arrays kernel, cross-process sharding) widen the
// surface where one stray cross-shard write silently breaks it.
// `//metrovet:shared <reason>` remains the single audited escape hatch:
// on a line it clears that site; in a function's doc comment it declares
// the whole function audited (the analyzer treats it as pure and stops
// descending — the annotation is the proof obligation's boundary).
func ShardPurity() *Analyzer {
	return &Analyzer{
		Name: "shard-purity",
		Doc:  "prove, interprocedurally, that Eval-reachable code writes only shard-local state; annotate //metrovet:shared <reason> for audited sharing",
		Run: func(p *Package) []Finding {
			return runShardPurity(NewProgram([]*Package{p}))
		},
		RunProgram: runShardPurity,
	}
}

// region abstracts where a write lands.
type region uint8

const (
	// regionLocal is function-local state: invisible outside the frame.
	regionLocal region = iota
	// regionUnknown is an unclassifiable base (a call result, a type
	// assertion); the analyzer stays silent rather than guess.
	regionUnknown
	// regionLink is link-package state: the sanctioned inter-component
	// interface (single staged writer per field, values move at Commit).
	regionLink
	// regionRecv is the function's own receiver — shard-local by the
	// engine's co-location guarantee.
	regionRecv
	// regionParam is state reached through a pointer-like parameter;
	// ownership is decided at each call site.
	regionParam
	// regionGlobal is a module package-level variable: shared across
	// every shard by construction.
	regionGlobal
	// regionForeign is another component's state.
	regionForeign
)

// regionRank orders regions for joins: when an alias could point at
// several regions, the most dangerous one wins.
var regionRank = [...]int{
	regionLocal:   0,
	regionUnknown: 1,
	regionLink:    2,
	regionRecv:    3,
	regionParam:   4,
	regionGlobal:  5,
	regionForeign: 6,
}

// base is a classified write/aliasing base: the region plus enough
// identity for diagnostics (the parameter index, the global's name, or
// the foreign component's type name).
type base struct {
	region region
	param  int
	name   string
}

func joinBase(a, b base) base {
	if regionRank[b.region] > regionRank[a.region] {
		return b
	}
	return a
}

// puritySummary is one function's interprocedural write effects.
type puritySummary struct {
	writesRecv   bool
	writesParams map[int]bool
	// shared marks a //metrovet:shared doc directive: the function is
	// audited, treated as pure, and not descended into.
	shared bool
}

// siteEffect is one write site with its classified base.
type siteEffect struct {
	pos  token.Pos
	base base
	// what describes the write for the finding message.
	what string
}

// callSite is one call expression with its resolved targets.
type callSite struct {
	call    *ast.CallExpr
	recvX   ast.Expr // method selector receiver, nil for plain calls
	selName string
	targets []CallEdge
}

// funcCtx is the per-function analysis state.
type funcCtx struct {
	node     *FuncNode
	p        *Package
	recvObj  types.Object
	ownRecv  string
	params   map[types.Object]int
	paramPtr map[int]bool
	aliases  map[types.Object]base
	writes   []siteEffect
	calls    []callSite
	sum      puritySummary
}

// purityAnalysis carries the whole-program fixpoint state.
type purityAnalysis struct {
	prog *Program
	cg   *CallGraph
	ctx  map[*FuncNode]*funcCtx
	// order fixes a deterministic iteration order for the fixpoint.
	order []*funcCtx
}

func runShardPurity(prog *Program) []Finding {
	an := &purityAnalysis{prog: prog, cg: prog.CallGraph(), ctx: map[*FuncNode]*funcCtx{}}
	an.prepare()
	an.fixpoint()
	return an.report()
}

// prepare builds the per-function contexts: alias tables, classified
// write sites, and resolved call sites, for every compiled function in
// an internal package.
func (an *purityAnalysis) prepare() {
	var keys []string
	for key, node := range an.prog.funcs {
		if !isInternal(node.Pkg.ImportPath) {
			continue
		}
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		node := an.prog.funcs[key]
		fc := &funcCtx{
			node:     node,
			p:        node.Pkg,
			ownRecv:  node.RecvName,
			params:   map[types.Object]int{},
			paramPtr: map[int]bool{},
			aliases:  map[types.Object]base{},
			sum:      puritySummary{writesParams: map[int]bool{}},
		}
		fd := node.Decl
		if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
			fc.recvObj = fc.p.ObjectOf(fd.Recv.List[0].Names[0])
		}
		idx := 0
		if fd.Type.Params != nil {
			for _, field := range fd.Type.Params.List {
				ptr := pointerLike(fc.p.TypeOf(field.Type))
				if len(field.Names) == 0 {
					idx++
					continue
				}
				for _, name := range field.Names {
					if obj := fc.p.ObjectOf(name); obj != nil {
						fc.params[obj] = idx
					}
					fc.paramPtr[idx] = ptr
					idx++
				}
			}
		}
		fc.sum.shared = docDirective(fd.Doc, "shared")
		an.ctx[node] = fc
		an.order = append(an.order, fc)
	}
	for _, fc := range an.order {
		fc.buildAliases()
		fc.collectEffects(an.cg)
		for _, w := range fc.writes {
			switch w.base.region {
			case regionRecv:
				fc.sum.writesRecv = true
			case regionParam:
				fc.sum.writesParams[w.base.param] = true
			case regionLocal, regionUnknown, regionLink, regionGlobal, regionForeign:
				// Locals and links carry no effect; globals and foreign
				// writes become findings directly in the report pass.
			}
		}
	}
}

// buildAliases runs the flow-insensitive alias pass to a fixpoint:
// every local picks up the worst base it is ever bound to, so writes
// through it are charged to that base.
func (fc *funcCtx) buildAliases() {
	body := fc.node.Decl.Body
	for range [8]struct{}{} {
		changed := false
		bind := func(name ast.Expr, rhs base) {
			id, ok := ast.Unparen(name).(*ast.Ident)
			if ok && id.Name != "_" {
				if obj := fc.p.ObjectOf(id); obj != nil {
					if _, isParam := fc.params[obj]; isParam || obj == fc.recvObj {
						return // params/receiver classify directly
					}
					next := joinBase(fc.aliases[obj], rhs)
					if next != fc.aliases[obj] {
						fc.aliases[obj] = next
						changed = true
					}
				}
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						bind(s.Lhs[i], fc.classify(s.Rhs[i]))
					}
				}
			case *ast.RangeStmt:
				if s.Value != nil {
					bind(s.Value, fc.classify(s.X))
				}
			case *ast.ValueSpec:
				if len(s.Names) == len(s.Values) {
					for i := range s.Names {
						bind(s.Names[i], fc.classify(s.Values[i]))
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
}

// collectEffects classifies every write site and resolves every call
// site in the function body (closures included: a function literal's
// writes and calls happen on behalf of its declarer).
func (fc *funcCtx) collectEffects(cg *CallGraph) {
	write := func(pos token.Pos, e ast.Expr, what string) {
		b := fc.classify(e)
		fc.writes = append(fc.writes, siteEffect{pos: pos, base: b, what: what})
	}
	ast.Inspect(fc.node.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				return true // new bindings handled by the alias pass
			}
			for _, lhs := range s.Lhs {
				if _, bare := ast.Unparen(lhs).(*ast.Ident); bare {
					continue // rebinding a variable is not a shared write
				}
				write(lhs.Pos(), lhs, "write to")
			}
		case *ast.IncDecStmt:
			// A bare local counter++ classifies regionLocal and stays
			// silent; a bare package-level counter++ is a shared write.
			write(s.X.Pos(), s.X, "write to")
		case *ast.SendStmt:
			write(s.Chan.Pos(), s.Chan, "send on")
		case *ast.CallExpr:
			fun := ast.Unparen(s.Fun)
			if id, ok := fun.(*ast.Ident); ok && isBuiltin(fc.p, id) {
				switch id.Name {
				case "delete":
					if len(s.Args) > 0 {
						write(s.Args[0].Pos(), s.Args[0], "delete mutates")
					}
				case "copy", "append":
					if len(s.Args) > 0 {
						write(s.Args[0].Pos(), s.Args[0], id.Name+" writes through")
					}
				}
				return true
			}
			cs := callSite{call: s, targets: cg.callEdges(fc.p, s)}
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				if _, isPkg := pkgQualifier(fc.p, sel); !isPkg {
					cs.recvX = sel.X
					cs.selName = sel.Sel.Name
				} else {
					cs.selName = sel.Sel.Name
				}
			}
			fc.calls = append(fc.calls, cs)
		}
		return true
	})
}

// classify resolves an expression to the region its storage lives in,
// walking selector/index/star chains to the root and consulting the
// alias table for locals.
func (fc *funcCtx) classify(e ast.Expr) base {
	worst := base{region: regionLocal}
	for {
		e = ast.Unparen(e)
		switch ee := e.(type) {
		case *ast.SelectorExpr:
			// pkg.Var / pkg.Func roots resolve through the selection.
			if obj, isPkg := pkgQualifier(fc.p, ee); isPkg {
				return joinBase(worst, fc.classifyObj(obj))
			}
			t := fc.p.TypeOf(ee.X)
			if linkTyped(t) {
				return base{region: regionLink}
			}
			if named := componentNamed(t); named != nil && named.Obj().Name() != fc.ownRecv {
				worst = joinBase(worst, base{region: regionForeign, name: named.Obj().Name()})
			}
			e = ee.X
		case *ast.IndexExpr:
			e = ee.X
		case *ast.IndexListExpr:
			e = ee.X
		case *ast.StarExpr:
			e = ee.X
		case *ast.UnaryExpr:
			if ee.Op == token.AND {
				e = ee.X
				continue
			}
			return joinBase(worst, base{region: regionUnknown})
		case *ast.CallExpr:
			// append returns its first argument's backing store.
			if id, ok := ast.Unparen(ee.Fun).(*ast.Ident); ok && id.Name == "append" && isBuiltin(fc.p, id) && len(ee.Args) > 0 {
				e = ee.Args[0]
				continue
			}
			return joinBase(worst, base{region: regionUnknown})
		case *ast.Ident:
			return joinBase(worst, fc.classifyObj(fc.p.ObjectOf(ee)))
		case *ast.TypeAssertExpr:
			e = ee.X
		default:
			return joinBase(worst, base{region: regionUnknown})
		}
	}
}

// classifyObj classifies a chain's root object.
func (fc *funcCtx) classifyObj(obj types.Object) base {
	if obj == nil {
		return base{region: regionUnknown}
	}
	if fc.recvObj != nil && obj == fc.recvObj {
		return base{region: regionRecv}
	}
	if i, ok := fc.params[obj]; ok {
		if fc.paramPtr[i] {
			return base{region: regionParam, param: i, name: obj.Name()}
		}
		return base{region: regionLocal}
	}
	if b, ok := fc.aliases[obj]; ok {
		return b
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return base{region: regionUnknown}
	}
	if v.Parent() != nil && v.Parent().Parent() == types.Universe {
		// Package-level variable. Only module packages are shared
		// simulation state; stdlib vars (os.Stdout, ...) are out of
		// scope, and link-package state is the sanctioned interface.
		pkg := v.Pkg()
		if pkg == nil {
			return base{region: regionUnknown}
		}
		path := strings.TrimSuffix(pkg.Path(), "_test")
		if internalName(path) == "link" {
			return base{region: regionLink}
		}
		if fc.p.ImportPath == path || strings.HasPrefix(path, modulePrefix(fc.p.ImportPath)) {
			return base{region: regionGlobal, name: obj.Name()}
		}
		return base{region: regionUnknown}
	}
	return base{region: regionLocal}
}

// modulePrefix derives the module root prefix from an import path
// ("metro/internal/core" -> "metro/"). Fixture paths and real paths
// both start with the module name.
func modulePrefix(importPath string) string {
	if i := strings.IndexByte(importPath, '/'); i >= 0 {
		return importPath[:i+1]
	}
	return importPath
}

// pkgQualifier reports whether sel is a package-qualified reference
// (pkg.Name) and resolves the named object if so.
func pkgQualifier(p *Package, sel *ast.SelectorExpr) (types.Object, bool) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, false
	}
	if _, isPkg := p.PkgNameOf(id); !isPkg {
		return nil, false
	}
	return p.ObjectOf(sel.Sel), true
}

// pointerLike reports whether a parameter of type t lets the callee
// reach the caller's storage: pointers, slices, maps and channels do;
// value copies (basics, structs, arrays) and interfaces/funcs (whose
// dynamic targets the per-callee analysis covers) do not.
func pointerLike(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// linkTyped reports whether t is (a pointer to) a named type declared
// in internal/link.
func linkTyped(t types.Type) bool {
	named := namedTypeOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return internalName(named.Obj().Pkg().Path()) == "link"
}

// fixpoint propagates write effects across call sites until summaries
// stabilize: a helper that writes through its pointer parameter makes
// its caller a receiver-writer when the caller passes receiver state,
// and a parameter-writer when it forwards its own parameter.
func (an *purityAnalysis) fixpoint() {
	for {
		changed := false
		for _, fc := range an.order {
			if fc.sum.shared {
				continue
			}
			for _, cs := range fc.calls {
				for _, e := range cs.targets {
					callee := an.ctx[e.Callee]
					if callee == nil || callee.sum.shared {
						continue
					}
					if callee.sum.writesRecv && cs.recvX != nil {
						if fc.absorb(fc.classify(cs.recvX)) {
							changed = true
						}
					}
					for i := range callee.sum.writesParams {
						if arg := argForParam(cs.call, callee, i); arg != nil {
							if fc.absorb(fc.classify(arg)) {
								changed = true
							}
						}
					}
				}
			}
		}
		if !changed {
			return
		}
	}
}

// absorb folds a callee-propagated write base into the summary,
// reporting whether the summary grew. Global and foreign bases become
// findings in the report pass, not summary effects.
func (fc *funcCtx) absorb(b base) bool {
	switch b.region {
	case regionRecv:
		if !fc.sum.writesRecv {
			fc.sum.writesRecv = true
			return true
		}
	case regionParam:
		if !fc.sum.writesParams[b.param] {
			fc.sum.writesParams[b.param] = true
			return true
		}
	case regionLocal, regionUnknown, regionLink, regionGlobal, regionForeign:
		// No summary effect.
	}
	return false
}

// argForParam maps a callee parameter index back to the caller's
// argument expression, tolerating variadics and mismatched arity.
func argForParam(call *ast.CallExpr, callee *funcCtx, i int) ast.Expr {
	if i < len(call.Args) {
		return call.Args[i]
	}
	return nil
}

// purityRoots collects every Eval method of a component-shaped type in
// an internal package (link excluded: link state is the sanctioned
// interface), sorted for deterministic first-root attribution.
func (an *purityAnalysis) purityRoots() []RootedNode {
	return componentRoots(an.prog, func(p *Package) bool {
		return isInternal(p.ImportPath) && internalName(p.ImportPath) != "link"
	}, "Eval")
}

// report walks every function reachable from an Eval root and emits the
// surviving findings.
func (an *purityAnalysis) report() []Finding {
	reached := an.cg.Reachable(an.purityRoots(), func(e CallEdge) bool {
		callee := an.ctx[e.Callee]
		return callee == nil || !callee.sum.shared
	})
	nodes := reachedNodes(reached)

	var out []Finding
	emitted := map[string]bool{}
	emit := func(fc *funcCtx, pos token.Pos, ri RootInfo, what string) {
		position := fc.p.Fset.Position(pos)
		if fc.p.suppressed("shard-purity", "shared", position) {
			return
		}
		via := ""
		if ri.Via != "" {
			via = fmt.Sprintf(" via %s", ri.Via)
		}
		msg := fmt.Sprintf("%s (reachable from %s%s); shard purity requires Eval trees to write only shard-local state — annotate //metrovet:shared <reason> if co-located or serialized",
			what, ri.Root, via)
		key := fmt.Sprintf("%s:%d:%s", position.Filename, position.Line, msg)
		if emitted[key] {
			return
		}
		emitted[key] = true
		out = append(out, Finding{Pos: position, Rule: "shard-purity", Msg: msg})
	}

	for _, node := range nodes {
		fc := an.ctx[node]
		if fc == nil || fc.sum.shared || internalName(fc.p.ImportPath) == "link" {
			continue
		}
		ri := reached[node]
		for _, w := range fc.writes {
			switch w.base.region {
			case regionGlobal:
				emit(fc, w.pos, ri, fmt.Sprintf("%s package-level state %s", w.what, w.base.name))
			case regionForeign:
				if w.base.name != ri.Type {
					emit(fc, w.pos, ri, fmt.Sprintf("%s state of component type %s", w.what, w.base.name))
				}
			case regionLocal, regionUnknown, regionLink, regionRecv, regionParam:
				// Local, sanctioned, own, or charged at call sites.
			}
		}
		for _, cs := range fc.calls {
			an.reportCall(fc, cs, ri, emit)
		}
	}
	SortFindings(out)
	return out
}

// reportCall emits findings for one call site: mutating calls onto
// foreign components (static or interface-dispatched) and shared state
// handed to parameter-writing callees.
func (an *purityAnalysis) reportCall(fc *funcCtx, cs callSite, ri RootInfo, emit func(*funcCtx, token.Pos, RootInfo, string)) {
	for _, e := range cs.targets {
		callee := an.ctx[e.Callee]
		if callee == nil || callee.sum.shared {
			continue
		}
		if callee.sum.writesRecv && cs.recvX != nil {
			if e.Kind == EdgeIface {
				if e.IfaceRecv != nil && isComponentShaped(e.IfaceRecv) && e.IfaceRecv.Obj().Name() != ri.Type {
					emit(fc, cs.call.Pos(), ri, fmt.Sprintf("call through %s may dispatch to (%s).%s, which mutates that component's state",
						e.IfaceName, e.IfaceRecv.Obj().Name(), cs.selName))
				}
			} else {
				b := fc.classify(cs.recvX)
				if b.region == regionForeign && b.name != ri.Type {
					emit(fc, cs.call.Pos(), ri, fmt.Sprintf("call to (%s).%s mutates that component's state", b.name, cs.selName))
				}
			}
		}
		for i := range callee.sum.writesParams {
			arg := argForParam(cs.call, callee, i)
			if arg == nil {
				continue
			}
			b := fc.classify(arg)
			switch b.region {
			case regionGlobal:
				emit(fc, arg.Pos(), ri, fmt.Sprintf("passes package-level state %s to %s, which writes through it", b.name, e.Callee))
			case regionForeign:
				if b.name != ri.Type {
					emit(fc, arg.Pos(), ri, fmt.Sprintf("passes component %s state to %s, which writes through it", b.name, e.Callee))
				}
			case regionLocal, regionUnknown, regionLink, regionRecv, regionParam:
				// Shard-local or charged elsewhere.
			}
		}
	}
}
