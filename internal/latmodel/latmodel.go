// Package latmodel implements the closed-form application-latency model of
// the METRO paper (Table 4) and regenerates its evaluation tables:
//
//   - Table 3: t20,32 — the latency to deliver a 5-word (20-byte) message
//     across a 32-node multibutterfly — for every METRO implementation
//     point the paper lists (gate array, standard cell, full custom,
//     cascades, hw/dp variants);
//   - Table 5: the same t20,32 estimate for seven contemporary routing
//     technologies, with the assumptions documented per row.
//
// The relations (Table 4):
//
//	vtd       = ceil((t_io + t_wire) / t_clk)        interconnect delay, cycles
//	t_on_chip = t_clk * dp                            time data traverses chip
//	t_stg     = t_on_chip + vtd * t_clk               chip-to-chip latency
//	hbits     = hw*w*c*stages                 (hw>0)  routing bits
//	          = ceil(sum(log2 r_s)/w)*w*c     (hw=0)
//	t20,32    = stages*t_stg + (20*8 + hbits)*t_bit
//
// where t_bit = t_clk/(w*c) is the per-bit transfer time of a (possibly
// cascaded) w-bit channel.
package latmodel

import (
	"fmt"
	"math"
)

// TWire is the wire delay the paper assumes for Table 3 (ns).
const TWire = 3.0

// Implementation is one METRO implementation point: a technology binding
// of the architectural parameters.
type Implementation struct {
	// Name and Tech label the row as in Table 3.
	Name string
	Tech string
	// TClk and TIo are the clock period and I/O (pad) latency in ns.
	TClk, TIo float64
	// Width is w, the channel width of one component.
	Width int
	// Cascade is c, the number of width-cascaded components per logical
	// router (1 = no cascading).
	Cascade int
	// DP and HW are the data-pipelining and header-word parameters.
	DP, HW int
	// StageBits lists log2(radix) per network stage, defining both the
	// stage count and the routing bits consumed.
	StageBits []int
}

// Stages returns the number of routing stages.
func (im Implementation) Stages() int { return len(im.StageBits) }

// VTD returns the interconnect delay in clock cycles.
func (im Implementation) VTD() int {
	return int(math.Ceil((im.TIo + TWire) / im.TClk))
}

// TOnChip returns the time data takes to traverse the component (ns).
func (im Implementation) TOnChip() float64 { return im.TClk * float64(im.DP) }

// TStg returns the chip-to-chip pipeline latency per stage (ns).
func (im Implementation) TStg() float64 {
	return im.TOnChip() + float64(im.VTD())*im.TClk
}

// EffWidth returns the logical channel width w*c of the cascaded router.
func (im Implementation) EffWidth() int { return im.Width * im.Cascade }

// TBit returns the transfer time per bit (ns) on the cascaded channel.
func (im Implementation) TBit() float64 {
	return im.TClk / float64(im.EffWidth())
}

// HBits returns the routing bits consumed by the header across the
// network, per Table 4.
func (im Implementation) HBits() int {
	if im.HW > 0 {
		return im.HW * im.Width * im.Cascade * im.Stages()
	}
	sum := 0
	for _, b := range im.StageBits {
		sum += b
	}
	words := (sum + im.Width - 1) / im.Width
	return words * im.Width * im.Cascade
}

// MessageLatency returns the unloaded network latency (ns) to deliver a
// message of the given payload size across the network.
func (im Implementation) MessageLatency(payloadBytes int) float64 {
	bits := float64(payloadBytes*8 + im.HBits())
	return float64(im.Stages())*im.TStg() + bits*im.TBit()
}

// T2032 returns t20,32: the 20-byte, 32-node figure of merit from the
// paper's tables.
func (im Implementation) T2032() float64 { return im.MessageLatency(20) }

// TBitLabel renders the t_bit column as the paper prints it, e.g.
// "25 ns/4 b".
func (im Implementation) TBitLabel() string {
	return fmt.Sprintf("%g ns/%d b", im.TClk, im.EffWidth())
}

// metrojrStages is the 32-node multibutterfly for 4x4 routers: three
// dilation-2 radix-2 stages and a dilation-1 radix-4 final stage.
var metrojrStages = []int{1, 1, 1, 2}

// metro8Stages is the 32-node network for 8x8 routers: a dilation-2
// radix-4 stage and a dilation-1 radix-8 final stage.
var metro8Stages = []int{2, 3}

// Table3 returns the implementation points of the paper's Table 3, in
// paper order.
func Table3() []Implementation {
	ga := "1.2u Gate Array"
	sc := "0.8u Std. Cell"
	fc := "0.8u Full Custom"
	return []Implementation{
		{Name: "METROJR-ORBIT", Tech: ga, TClk: 25, TIo: 10, Width: 4, Cascade: 1, DP: 1, HW: 0, StageBits: metrojrStages},
		{Name: "2-cascade", Tech: ga, TClk: 25, TIo: 10, Width: 4, Cascade: 2, DP: 1, HW: 0, StageBits: metrojrStages},
		{Name: "4-cascade", Tech: ga, TClk: 25, TIo: 10, Width: 4, Cascade: 4, DP: 1, HW: 0, StageBits: metrojrStages},
		{Name: "METROJR w=8", Tech: ga, TClk: 25, TIo: 10, Width: 8, Cascade: 1, DP: 1, HW: 0, StageBits: metrojrStages},
		{Name: "METROJR", Tech: sc, TClk: 10, TIo: 5, Width: 4, Cascade: 1, DP: 1, HW: 0, StageBits: metrojrStages},
		{Name: "2-cascade", Tech: sc, TClk: 10, TIo: 5, Width: 4, Cascade: 2, DP: 1, HW: 0, StageBits: metrojrStages},
		{Name: "4-cascade", Tech: sc, TClk: 10, TIo: 5, Width: 4, Cascade: 4, DP: 1, HW: 0, StageBits: metrojrStages},
		{Name: "METRO i=o=8 w=4", Tech: sc, TClk: 10, TIo: 5, Width: 4, Cascade: 1, DP: 1, HW: 0, StageBits: metro8Stages},
		{Name: "METROJR", Tech: fc, TClk: 5, TIo: 3, Width: 4, Cascade: 1, DP: 1, HW: 0, StageBits: metrojrStages},
		{Name: "METRO i=o=8 w=4", Tech: fc, TClk: 5, TIo: 3, Width: 4, Cascade: 1, DP: 1, HW: 0, StageBits: metro8Stages},
		{Name: "METROJR dp=2", Tech: fc, TClk: 2, TIo: 3, Width: 4, Cascade: 1, DP: 2, HW: 0, StageBits: metrojrStages},
		{Name: "METROJR hw=1", Tech: fc, TClk: 2, TIo: 3, Width: 4, Cascade: 1, DP: 1, HW: 1, StageBits: metrojrStages},
		{Name: "2-cascade hw=1", Tech: fc, TClk: 2, TIo: 3, Width: 4, Cascade: 2, DP: 1, HW: 1, StageBits: metrojrStages},
		{Name: "METROJR hw=1 w=8", Tech: fc, TClk: 2, TIo: 3, Width: 8, Cascade: 1, DP: 1, HW: 1, StageBits: metrojrStages},
		{Name: "METRO i=o=8 hw=2 w=4", Tech: fc, TClk: 2, TIo: 3, Width: 4, Cascade: 1, DP: 1, HW: 2, StageBits: metro8Stages},
		{Name: "4-cascade hw=2", Tech: fc, TClk: 2, TIo: 3, Width: 4, Cascade: 4, DP: 1, HW: 2, StageBits: metro8Stages},
	}
}

// PaperT2032 lists the t20,32 values printed in the paper's Table 3, in
// the same order as Table3(), for verification.
var PaperT2032 = []float64{
	1250, 750, 500, 725,
	500, 300, 200, 460,
	270, 240,
	124, 120, 80, 80, 104, 44,
}

// PaperTStg lists the t_stg column of Table 3 (ns).
var PaperTStg = []float64{
	50, 50, 50, 50,
	20, 20, 20, 20,
	15, 15,
	10, 8, 8, 8, 8, 8,
}

// ScaledStageBits returns the per-stage routing bits of an N-endpoint
// multibutterfly built METROJR-style: radix-2 dilation-2 stages feeding a
// radix-4 dilation-1 final stage (the construction behind the t20,32
// rows). N must be a power of two, at least 8.
func ScaledStageBits(endpoints int) []int {
	if endpoints < 8 || endpoints&(endpoints-1) != 0 {
		panic(fmt.Sprintf("latmodel: endpoints %d must be a power of two >= 8", endpoints))
	}
	k := 0
	for 1<<uint(k) < endpoints {
		k++
	}
	bits := make([]int, 0, k-1)
	for i := 0; i < k-2; i++ {
		bits = append(bits, 1)
	}
	return append(bits, 2)
}

// Scaled returns a copy of the implementation re-targeted at an
// N-endpoint network, for studying how t20,N grows with machine size
// (logarithmically: one t_stg plus a few header bits per factor of two).
func (im Implementation) Scaled(endpoints int) Implementation {
	im.StageBits = ScaledStageBits(endpoints)
	return im
}
