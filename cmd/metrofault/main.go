// metrofault measures METRO's performance degradation under faults
// (paper, Section 6.2, and the companion fault-tolerance studies): it runs
// closed-loop traffic while killing increasing numbers of routers or links
// and reports latency, retries and delivery.
//
// Usage:
//
//	metrofault                      # router-kill sweep on the Figure 3 network
//	metrofault -kind link           # link-kill sweep
//	metrofault -counts 0,2,4,8,16   # fault counts to sweep
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"metro"
	"metro/internal/netsim"
	"metro/internal/stats"
	"metro/internal/telemetry"
	"metro/internal/traffic"
)

func main() {
	kind := flag.String("kind", "router", "fault kind: router or link")
	countsArg := flag.String("counts", "0,1,2,4,8", "fault counts to sweep")
	load := flag.Float64("load", 0.3, "offered load")
	msgBytes := flag.Int("bytes", 20, "message payload bytes")
	warmup := flag.Uint64("warmup", 2000, "cycles before faults start")
	window := flag.Uint64("window", 4000, "cycles over which faults appear")
	measure := flag.Uint64("measure", 12000, "measured cycles after the fault window")
	seed := flag.Int64("seed", 9, "seed")
	traceOut := flag.String("trace", "", "record the highest-count sweep point's telemetry to this mtr1 file")
	metrics := flag.Bool("metrics", false, "print the telemetry summary of the highest-count sweep point")
	workers := flag.Int("workers", 0, "parallel Eval/Commit workers; 0 runs the serial reference engine")
	flag.Parse()

	var counts []int
	for _, s := range strings.Split(*countsArg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrofault: bad count %q\n", s)
			os.Exit(2)
		}
		counts = append(counts, v)
	}

	engine := "serial engine"
	if *workers > 0 {
		engine = fmt.Sprintf("parallel engine, workers=%d", *workers)
	}
	fmt.Printf("fault degradation sweep: %s kills, load %.2f, %d-byte messages, %s\n",
		*kind, *load, *msgBytes, engine)
	t := stats.Table{Header: []string{
		"faults", "delivered", "failed", "mean lat", "p95", "retries/msg", "timeouts",
	}}
	for i, count := range counts {
		var rec *telemetry.Recorder
		if (*traceOut != "" || *metrics) && i == len(counts)-1 {
			rec = telemetry.New(telemetry.Options{})
		}
		p, failed, timeouts := runWithFaults(*kind, count, *load, *msgBytes,
			*warmup, *window, *measure, *seed, *workers, rec)
		if rec != nil {
			writeTrace(rec, *traceOut, *metrics, count)
		}
		t.Add(
			fmt.Sprintf("%d", count),
			fmt.Sprintf("%d", p.Delivered),
			fmt.Sprintf("%d", failed),
			fmt.Sprintf("%.1f", p.Latency.Mean),
			fmt.Sprintf("%.0f", p.Latency.P95),
			fmt.Sprintf("%.2f", p.RetriesPerMessage),
			fmt.Sprintf("%d", timeouts),
		)
	}
	fmt.Print(t.String())
	fmt.Println("\nlatency degrades gracefully: stochastic path selection routes retries around faults")
}

// writeTrace emits the recorded sweep point: the trace file, and/or its
// summary on stdout (before the sweep table, which the caller prints
// when the sweep finishes).
func writeTrace(rec *telemetry.Recorder, traceOut string, metrics bool, count int) {
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrofault: %v\n", err)
			os.Exit(1)
		}
		if err := telemetry.Encode(f, rec.Snapshot()); err != nil {
			fmt.Fprintf(os.Stderr, "metrofault: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "metrofault: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %d events written to %s\n", rec.Len(), traceOut)
	}
	if metrics {
		fmt.Printf("telemetry at %d faults:\n", count)
		fmt.Print(telemetry.Summarize(rec.Snapshot()).Render())
		fmt.Println()
	}
}

func runWithFaults(kind string, count int, load float64, msgBytes int,
	warmup, window, measure uint64, seed int64, workers int,
	rec *telemetry.Recorder) (stats.LoadPoint, int, int) {
	driver := &traffic.ClosedLoop{
		Load:        load,
		MsgBytes:    msgBytes,
		Pattern:     traffic.Uniform{},
		Outstanding: 1,
		Seed:        seed,
		Warmup:      warmup + window,
	}
	params := netsim.Params{
		Spec:          metro.Figure3Topology(),
		Width:         8,
		DataPipe:      1,
		LinkDelay:     1,
		FastReclaim:   true,
		Seed:          seed,
		RetryLimit:    500,
		ListenTimeout: 300,
		Workers:       workers,
		OnResult:      driver.OnResult,
		Recorder:      rec,
	}
	n, err := netsim.Build(params)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metrofault: %v\n", err)
		os.Exit(1)
	}
	defer n.Close()
	driver.Bind(n)

	var plan metro.FaultPlan
	if count > 0 {
		switch kind {
		case "router":
			plan = metro.RandomRouterKills(n, count, 2, seed+1, warmup, warmup+window)
		case "link":
			plan = metro.RandomLinkKills(n, count, seed+1, warmup, warmup+window)
		default:
			fmt.Fprintf(os.Stderr, "metrofault: unknown kind %q\n", kind)
			os.Exit(2)
		}
	}
	metro.InjectFaults(n, plan)
	n.Run(warmup + window + measure)

	p := driver.Point()
	failed, timeouts := 0, 0
	for _, r := range driver.Measured() {
		if !r.Delivered {
			failed++
		}
		timeouts += r.Timeouts
	}
	return p, failed, timeouts
}
