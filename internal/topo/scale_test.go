package topo

import (
	"reflect"
	"testing"
)

// TestScaleMatchesFigure3 pins Scale's construction to the published
// Figure 3 network: the radix-4, 64-endpoint instance must be identical.
func TestScaleMatchesFigure3(t *testing.T) {
	spec, err := Scale(64, 4)
	if err != nil {
		t.Fatalf("Scale(64, 4): %v", err)
	}
	if !reflect.DeepEqual(spec, Figure3()) {
		t.Fatalf("Scale(64, 4) = %+v, want Figure3 %+v", spec, Figure3())
	}
}

// TestScaleValidates builds several points of the radix sweep and checks
// the structural invariants hold at every size.
func TestScaleValidates(t *testing.T) {
	cases := []struct{ endpoints, radix, stages int }{
		{4, 4, 1},
		{16, 4, 2},
		{16, 2, 4},
		{64, 8, 2},
		{256, 4, 4},
		{4096, 4, 6},
		{65536, 4, 8},
		{65536, 16, 4},
	}
	for _, c := range cases {
		spec, err := Scale(c.endpoints, c.radix)
		if err != nil {
			t.Errorf("Scale(%d, %d): %v", c.endpoints, c.radix, err)
			continue
		}
		if len(spec.Stages) != c.stages {
			t.Errorf("Scale(%d, %d): %d stages, want %d", c.endpoints, c.radix, len(spec.Stages), c.stages)
		}
		if err := Validate(spec); err != nil {
			t.Errorf("Scale(%d, %d) fails Validate: %v", c.endpoints, c.radix, err)
		}
	}
}

// TestScaleWiring elaborates a couple of small scaled networks and reuses
// the port-conservation audit applied to the published specs.
func TestScaleWiring(t *testing.T) {
	for _, c := range []struct{ endpoints, radix int }{{16, 2}, {256, 4}, {64, 8}} {
		spec, err := Scale(c.endpoints, c.radix)
		if err != nil {
			t.Fatalf("Scale(%d, %d): %v", c.endpoints, c.radix, err)
		}
		portConservation(t, spec)
	}
}

// TestScaleRejectsBadShapes covers the argument validation.
func TestScaleRejectsBadShapes(t *testing.T) {
	bad := []struct{ endpoints, radix int }{
		{48, 4},  // not a power of the radix
		{64, 3},  // radix not a power of two
		{64, 1},  // radix too small
		{1, 4},   // no stages
		{0, 2},   // no endpoints
		{-16, 4}, // negative
	}
	for _, c := range bad {
		if _, err := Scale(c.endpoints, c.radix); err == nil {
			t.Errorf("Scale(%d, %d): expected error", c.endpoints, c.radix)
		}
	}
}
