// metrotrace records, filters, summarizes and exports telemetry traces:
// the offline half of the simulator's flight recorder. A trace is the
// canonical mtr1 text stream (internal/telemetry's codec) and every
// subcommand is deterministic, so traces and reports diff cleanly.
//
// Usage:
//
//	metrotrace record -o trace.mtr                  # traced Figure 3 run
//	metrotrace record -network fig1 -load 0.6 -workers 4 -o trace.mtr
//	metrotrace summarize trace.mtr                  # lifecycle & latency report
//	metrotrace filter -kind msg -msg 42 trace.mtr   # select events, emit mtr1
//	metrotrace export -format perfetto trace.mtr    # chrome://tracing / Perfetto
//	metrotrace export -format csv -buckets 12 trace.mtr
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"metro"
	"metro/internal/netsim"
	"metro/internal/telemetry"
	"metro/internal/traffic"
)

const usage = `usage: metrotrace <command> [flags] [trace-file]

commands:
  record     run a traced simulation and write the mtr1 event stream
  summarize  aggregate a trace: lifecycles, latency breakdown, gauges
  filter     select events by family, kind, source, message or cycle window
  export     convert a trace to perfetto JSON or CSV latency histograms

run 'metrotrace <command> -h' for the command's flags.
`

func main() {
	if len(os.Args) < 2 {
		fmt.Fprint(os.Stderr, usage)
		os.Exit(2)
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "summarize":
		summarize(os.Args[2:])
	case "filter":
		filter(os.Args[2:])
	case "export":
		export(os.Args[2:])
	case "-h", "-help", "--help", "help":
		fmt.Print(usage)
	default:
		fmt.Fprintf(os.Stderr, "metrotrace: unknown command %q\n\n%s", os.Args[1], usage)
		os.Exit(2)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metrotrace: "+format+"\n", args...)
	os.Exit(1)
}

// loadTrace reads the mtr1 trace named by the remaining argument.
func loadTrace(fs *flag.FlagSet) telemetry.Trace {
	if fs.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "metrotrace: expected exactly one trace file, got %d args\n", fs.NArg())
		os.Exit(2)
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	t, err := telemetry.Decode(f)
	if err != nil {
		fatal("%s: %v", fs.Arg(0), err)
	}
	return t
}

// output opens -o, or stdout when it is empty.
func output(path string) io.WriteCloser {
	if path == "" {
		return os.Stdout
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	return f
}

// record runs one closed-loop scenario with the flight recorder
// attached and writes the recorded stream.
func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	network := fs.String("network", "fig3", "topology: fig1, fig3, net32, net32r8")
	load := fs.Float64("load", 0.6, "offered load")
	pattern := fs.String("pattern", "uniform", "traffic: uniform, hotspot, bitrev, transpose")
	msgBytes := fs.Int("bytes", 20, "message payload bytes")
	cycles := fs.Uint64("cycles", 4000, "simulated cycles")
	width := fs.Int("width", 8, "channel width w")
	cascadeW := fs.Int("cascade", 1, "router width-cascade factor c")
	seed := fs.Int64("seed", 1, "simulation seed")
	detailed := fs.Bool("detailed", false, "detailed blocked replies instead of fast reclamation")
	workers := fs.Int("workers", 0, "parallel Eval/Commit workers; 0 runs the serial reference engine")
	gaugePeriod := fs.Uint64("gauge-period", 1, "cycles between gauge samples")
	capacity := fs.Int("capacity", 0, "flight-recorder ring capacity in events (0 = default)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if fs.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "metrotrace record: unexpected arguments %v\n", fs.Args())
		os.Exit(2)
	}

	var spec metro.TopologySpec
	switch *network {
	case "fig1":
		spec = metro.Figure1Topology()
	case "fig3":
		spec = metro.Figure3Topology()
	case "net32":
		spec = metro.Topology32()
	case "net32r8":
		spec = metro.Topology32Radix8()
	default:
		fmt.Fprintf(os.Stderr, "metrotrace record: unknown network %q\n", *network)
		os.Exit(2)
	}
	var pat traffic.Pattern
	switch *pattern {
	case "uniform":
		pat = traffic.Uniform{}
	case "hotspot":
		pat = traffic.Hotspot{Target: 0, Fraction: 0.3}
	case "bitrev":
		pat = traffic.BitReverse{}
	case "transpose":
		pat = traffic.Transpose{}
	default:
		fmt.Fprintf(os.Stderr, "metrotrace record: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	rec := telemetry.New(telemetry.Options{Capacity: *capacity})
	_, err := traffic.Run(traffic.RunSpec{
		Net: netsim.Params{
			Spec:          spec,
			Width:         *width,
			CascadeWidth:  *cascadeW,
			LinkDelay:     1,
			FastReclaim:   !*detailed,
			Seed:          *seed,
			RetryLimit:    1000,
			ListenTimeout: 300,
			Workers:       *workers,
			Recorder:      rec,
			GaugePeriod:   *gaugePeriod,
		},
		Load:          *load,
		MsgBytes:      *msgBytes,
		Pattern:       pat,
		Outstanding:   1,
		MeasureCycles: *cycles,
		Seed:          *seed + 1000,
	})
	if err != nil {
		fatal("%v", err)
	}
	w := output(*out)
	if err := telemetry.Encode(w, rec.Snapshot()); err != nil {
		fatal("%v", err)
	}
	if err := w.Close(); err != nil {
		fatal("%v", err)
	}
}

func summarize(args []string) {
	fs := flag.NewFlagSet("summarize", flag.ExitOnError)
	fs.Parse(args)
	fmt.Print(telemetry.Summarize(loadTrace(fs)).Render())
}

// filter selects a subset of a trace's events and re-emits mtr1, so
// filters compose with summarize/export through pipes or temp files.
func filter(args []string) {
	fs := flag.NewFlagSet("filter", flag.ExitOnError)
	family := fs.String("family", "", "keep one event family: msg, conn, fault, gauge")
	kindArg := fs.String("kind", "", "comma-separated kind mnemonics to keep (e.g. MSG-QUEUED,CONN-SETUP)")
	src := fs.String("src", "", "keep events from one source (e.g. ep3, s1r4, s1r4.m1, net.s0)")
	msg := fs.Uint64("msg", 0, "keep one message's lifecycle (message IDs start at 1)")
	from := fs.Uint64("from", 0, "keep cycles >= from")
	to := fs.Uint64("to", ^uint64(0), "keep cycles <= to")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	t := loadTrace(fs)

	kinds := map[telemetry.Kind]bool{}
	if *kindArg != "" {
		for _, name := range strings.Split(*kindArg, ",") {
			k, ok := telemetry.KindByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "metrotrace filter: unknown kind %q\n", name)
				os.Exit(2)
			}
			kinds[k] = true
		}
	}

	kept := t.Events[:0]
	for _, e := range t.Events {
		if *family != "" && e.Kind.Family() != *family {
			continue
		}
		if len(kinds) > 0 && !kinds[e.Kind] {
			continue
		}
		if *src != "" && e.Src.String() != *src {
			continue
		}
		if *msg != 0 && e.Msg != *msg {
			continue
		}
		if e.Cycle < *from || e.Cycle > *to {
			continue
		}
		kept = append(kept, e)
	}
	// Total keeps counting the recorder's full stream: dropped-event
	// accounting in summaries stays truthful about the ring window, and
	// the filtered events add nothing to it.
	filtered := telemetry.Trace{Events: kept, Total: t.Total}
	w := output(*out)
	if err := telemetry.Encode(w, filtered); err != nil {
		fatal("%v", err)
	}
	if err := w.Close(); err != nil {
		fatal("%v", err)
	}
}

func export(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	format := fs.String("format", "perfetto", "output format: perfetto (chrome trace-event JSON) or csv (latency histograms)")
	buckets := fs.Int("buckets", 20, "histogram buckets per latency phase (csv)")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *format != "perfetto" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "metrotrace export: unknown format %q\n", *format)
		os.Exit(2)
	}
	t := loadTrace(fs)

	w := output(*out)
	var err error
	if *format == "perfetto" {
		err = telemetry.ExportPerfetto(w, t, telemetry.Summarize(t))
	} else {
		err = telemetry.ExportCSV(w, telemetry.Summarize(t), *buckets)
	}
	if err != nil {
		fatal("%v", err)
	}
	if err := w.Close(); err != nil {
		fatal("%v", err)
	}
}
