module metro

go 1.22
