package core

// RouterID is the structured identity of a router within an elaborated
// network. Stage and Index locate the logical router in the topology;
// Lane distinguishes the physical members of a width-cascaded group
// (lane 0 for plain routers). Routers built outside a network carry the
// zero value of FreeID until SetID is called.
type RouterID struct {
	Stage int
	Index int
	Lane  int
}

// FreeID is the identity of a router that has not been placed in a
// network: stage and index are -1, lane 0.
func FreeID() RouterID { return RouterID{Stage: -1, Index: -1, Lane: 0} }

// Tracer receives router-level events for debugging, experiments and the
// example programs. All methods are invoked during Eval; implementations
// must not mutate simulation state (the metrovet eval-isolation rule
// enforces this for tracers in the component packages). A nil tracer
// disables tracing.
type Tracer interface {
	// Allocated reports a successful connection setup: forward port fp was
	// switched to backward port bp.
	Allocated(cycle uint64, id RouterID, fp, bp int)
	// Blocked reports a connection request that found no available
	// backward port in direction dir. fast reports whether fast path
	// reclamation (BCB) or a detailed reply will handle it.
	Blocked(cycle uint64, id RouterID, fp, dir int, fast bool)
	// Released reports that forward port fp's connection closed and its
	// backward port (bp, or -1 if the connection was blocked) was freed.
	Released(cycle uint64, id RouterID, fp, bp int)
	// Reversed reports a connection reversal completing at this router.
	// towardSource is true when data will now flow toward the original
	// source.
	Reversed(cycle uint64, id RouterID, fp int, towardSource bool)
}

// NopTracer is a Tracer that ignores all events.
type NopTracer struct{}

// Allocated implements Tracer.
func (NopTracer) Allocated(uint64, RouterID, int, int) {}

// Blocked implements Tracer.
func (NopTracer) Blocked(uint64, RouterID, int, int, bool) {}

// Released implements Tracer.
func (NopTracer) Released(uint64, RouterID, int, int) {}

// Reversed implements Tracer.
func (NopTracer) Reversed(uint64, RouterID, int, bool) {}

// Tee fans every event out to each non-nil tracer in ts, in order. It
// lets a network attach an aggregate observer and a recording sink to
// the same router without either knowing about the other.
func Tee(ts ...Tracer) Tracer {
	kept := make([]Tracer, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			kept = append(kept, t)
		}
	}
	switch len(kept) {
	case 0:
		return NopTracer{}
	case 1:
		return kept[0]
	}
	return teeTracer(kept)
}

type teeTracer []Tracer

func (tt teeTracer) Allocated(cycle uint64, id RouterID, fp, bp int) {
	for _, t := range tt {
		t.Allocated(cycle, id, fp, bp)
	}
}

func (tt teeTracer) Blocked(cycle uint64, id RouterID, fp, dir int, fast bool) {
	for _, t := range tt {
		t.Blocked(cycle, id, fp, dir, fast)
	}
}

func (tt teeTracer) Released(cycle uint64, id RouterID, fp, bp int) {
	for _, t := range tt {
		t.Released(cycle, id, fp, bp)
	}
}

func (tt teeTracer) Reversed(cycle uint64, id RouterID, fp int, towardSource bool) {
	for _, t := range tt {
		t.Reversed(cycle, id, fp, towardSource)
	}
}
