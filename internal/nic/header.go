// Package nic implements the source-responsible network interfaces that
// METRO routers are designed to work with (paper, Sections 1, 3, 4).
//
// Routers never buffer, never retry and never acknowledge: every
// reliability obligation sits at the endpoints. A source interface builds
// the routing header, streams the message with an end-to-end checksum,
// reverses the connection with TURN, interprets the per-router STATUS and
// CHECKSUM words injected into the return stream (localizing faults to a
// stage when checksums disagree), verifies the destination's
// acknowledgment, and retries the whole message when the connection
// blocked, timed out, or was corrupted. Stochastic path selection inside
// the routers makes each retry likely to take a different path, so retries
// route around congestion and dynamic faults.
package nic

import (
	"fmt"

	"metro/internal/word"
)

// StageHeader describes what one router stage consumes from the head of a
// data stream.
type StageHeader struct {
	// DirBits is the number of routing bits the stage consumes
	// (log2 radix).
	DirBits int
	// HeaderWords is the stage's hw parameter: 0 for in-word bit
	// stripping, >= 1 for whole-word consumption during pipelined setup.
	HeaderWords int
}

// HeaderSpec captures everything a source needs to construct routing
// headers for a particular network.
type HeaderSpec struct {
	// Width is the channel width w in bits.
	Width int
	// Stages lists the per-stage consumption, source side first.
	Stages []StageHeader
}

// Validate checks that headers can actually be constructed.
func (h HeaderSpec) Validate() error {
	if h.Width < 1 || h.Width > 32 {
		return fmt.Errorf("nic: width %d outside [1,32]", h.Width)
	}
	for s, st := range h.Stages {
		if st.DirBits < 0 || st.DirBits > h.Width {
			return fmt.Errorf("nic: stage %d needs %d routing bits, width is %d", s, st.DirBits, h.Width)
		}
		if st.HeaderWords < 0 {
			return fmt.Errorf("nic: stage %d has negative header words", s)
		}
	}
	return nil
}

// Build constructs the routing header words for the given per-stage
// direction digits.
//
// For hw=0 stages, consecutive stages' digit bit-groups are packed into
// shared ROUTE words low bits first; a group that would straddle a word
// boundary starts a new word, and each word's Bits field counts exactly
// the bits routers will consume, so every word exhausts to zero at some
// stage and is swallowed there (see core.Router.parseRoute).
//
// An hw>=1 stage always gets its own ROUTE word carrying just its digit,
// followed by hw-1 HEADER-PAD words, all of which that stage consumes.
//
//metrovet:alloc per-attempt header construction, not a per-cycle path
func (h HeaderSpec) Build(digits []int) []word.Word {
	return h.AppendBuild(nil, digits)
}

// AppendBuild is the allocation-free variant of Build: it appends the
// header words to dst and returns it, so a sender reusing its stream
// buffer constructs headers without touching the heap.
//
//metrovet:alloc appends into caller-owned scratch; steady state reuses capacity
//metrovet:bounds len(digits) == len(Stages) is enforced by the panic guard, and s ranges over Stages
//metrovet:truncate digits are per-stage direction numbers in [0, radix), far below 32 bits
//metrovet:width bits accumulates DirBits groups and is flushed before exceeding Width <= 32 (Validate)
func (h HeaderSpec) AppendBuild(dst []word.Word, digits []int) []word.Word {
	if len(digits) != len(h.Stages) {
		panic(fmt.Sprintf("nic: %d digits for %d stages", len(digits), len(h.Stages)))
	}
	var cur uint32
	bits := 0
	for s, st := range h.Stages {
		if st.HeaderWords >= 1 {
			if bits > 0 {
				dst = append(dst, word.MakeRoute(cur, bits))
				cur, bits = 0, 0
			}
			dst = append(dst, word.MakeRoute(uint32(digits[s]), st.DirBits))
			for i := 1; i < st.HeaderWords; i++ {
				dst = append(dst, word.Word{Kind: word.HeaderPad})
			}
			continue
		}
		if bits+st.DirBits > h.Width {
			if bits > 0 {
				dst = append(dst, word.MakeRoute(cur, bits))
				cur, bits = 0, 0
			}
		}
		cur |= uint32(digits[s]) << uint(bits)
		bits += st.DirBits
	}
	if bits > 0 {
		dst = append(dst, word.MakeRoute(cur, bits))
	}
	return dst
}

// StripStage transforms a word stream the way stage s consumes it: the
// words a stage-(s+1) router would receive. Used to compute the expected
// per-stage checksums for fault localization.
//
//metrovet:alloc per-attempt checksum precomputation, not a per-cycle path
//metrovet:bounds s is the caller's index over Stages (ExpectedStageChecksums ranges over them)
//metrovet:truncate DirBits >= 0 by Validate
//metrovet:width DirBits <= Width <= 32 by Validate, and the shift only executes when w.Bits > DirBits, which forces DirBits < 32
func (h HeaderSpec) StripStage(stream []word.Word, s int) []word.Word {
	st := h.Stages[s]
	out := make([]word.Word, 0, len(stream))
	if st.HeaderWords >= 1 {
		// The stage consumes the first hw words outright.
		skip := st.HeaderWords
		for _, w := range stream {
			if skip > 0 {
				skip--
				continue
			}
			out = append(out, w)
		}
		return out
	}
	// hw == 0: strip DirBits from the first ROUTE word; swallow if
	// exhausted (the default router configuration).
	stripped := false
	for _, w := range stream {
		if !stripped && w.Kind == word.Route {
			stripped = true
			rem := int(w.Bits) - st.DirBits
			if rem > 0 {
				out = append(out, word.MakeRoute(w.Payload>>uint(st.DirBits), rem))
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

// ExpectedStageChecksums returns, for each stage, the CRC-8 a healthy
// stage-s router reports after the first TURN: the checksum of the
// forward-segment words as received at that stage. The source compares
// these with the reported values to localize a corrupting link to the
// first disagreeing stage.
//
//metrovet:alloc per-attempt checksum precomputation, not a per-cycle path
func (h HeaderSpec) ExpectedStageChecksums(sent []word.Word) []uint8 {
	sums, _ := h.AppendExpectedStageChecksums(nil, sent, nil)
	return sums
}

// AppendExpectedStageChecksums is the allocation-free variant of
// ExpectedStageChecksums: sums append to dst, and the working copy of the
// stream lives in scratch (grown as needed and returned for reuse), with
// each stage's strip performed in place.
//
//metrovet:alloc appends into caller-owned buffers; steady state reuses capacity
func (h HeaderSpec) AppendExpectedStageChecksums(dst []uint8, sent []word.Word, scratch []word.Word) ([]uint8, []word.Word) {
	scratch = append(scratch[:0], sent...)
	stream := scratch
	for s := range h.Stages {
		var ck word.Checksum
		for _, w := range stream {
			ck.Add(w)
		}
		dst = append(dst, ck.Sum())
		stream = h.stripStageInPlace(stream, s)
	}
	return dst, scratch
}

// stripStageInPlace rewrites stream as StripStage(stream, s) would, reusing
// the backing array: the write cursor never passes the read cursor (a strip
// only drops or narrows words), so the compaction is aliasing-safe.
//
//metrovet:alloc appends compact into stream[:0]; the write cursor never passes the read cursor, so the backing array never grows
//metrovet:bounds s is the caller's index over Stages (AppendExpectedStageChecksums ranges over them)
//metrovet:truncate DirBits >= 0 by Validate
//metrovet:width DirBits <= Width <= 32 by Validate, and the shift only executes when w.Bits > DirBits, which forces DirBits < 32
func (h HeaderSpec) stripStageInPlace(stream []word.Word, s int) []word.Word {
	st := h.Stages[s]
	out := stream[:0]
	if st.HeaderWords >= 1 {
		skip := st.HeaderWords
		for _, w := range stream {
			if skip > 0 {
				skip--
				continue
			}
			out = append(out, w)
		}
		return out
	}
	stripped := false
	for _, w := range stream {
		if !stripped && w.Kind == word.Route {
			stripped = true
			rem := int(w.Bits) - st.DirBits
			if rem > 0 {
				out = append(out, word.MakeRoute(w.Payload>>uint(st.DirBits), rem))
			}
			continue
		}
		out = append(out, w)
	}
	return out
}

// PackBytes packs a byte payload into width-bit data words as an LSB-first
// bit stream: the first byte's low bit travels first. Works for any width
// in [1, 32], including wide cascaded channels that carry several bytes
// per word.
//
//metrovet:alloc per-message payload packing, not a per-cycle path
func PackBytes(payload []byte, width int) []word.Word {
	if width < 1 || width > 32 {
		panic(fmt.Sprintf("nic: width %d outside [1,32]", width))
	}
	return AppendPackBytes(make([]word.Word, 0, (len(payload)*8+width-1)/width), payload, width)
}

// AppendPackBytes is the allocation-free variant of PackBytes: packed data
// words append to dst, which is returned.
//
//metrovet:alloc appends into caller-owned scratch; steady state reuses capacity
//metrovet:truncate uint32(acc) deliberately extracts the low word; it feeds a Mask(width) bit slice
//metrovet:width accBits stays in [0, width+7] with width <= 32 (panic guard): each 8-bit refill drains down below width
func AppendPackBytes(dst []word.Word, payload []byte, width int) []word.Word {
	if width < 1 || width > 32 {
		panic(fmt.Sprintf("nic: width %d outside [1,32]", width))
	}
	var acc uint64
	accBits := 0
	for _, b := range payload {
		acc |= uint64(b) << uint(accBits)
		accBits += 8
		for accBits >= width {
			dst = append(dst, word.MakeData(uint32(acc)&word.Mask(width), width))
			acc >>= uint(width)
			accBits -= width
		}
	}
	if accBits > 0 {
		dst = append(dst, word.MakeData(uint32(acc)&word.Mask(width), width))
	}
	return dst
}

// UnpackBytes inverts PackBytes. Partial trailing bytes are discarded, but
// note that when width > 8 and the original payload did not fill a whole
// number of words, PackBytes added zero padding bits that decode as extra
// trailing zero bytes: wide channels deliver payloads at channel-word
// granularity, exactly as aligned hardware transfers do. Applications
// needing byte-exact framing carry a length field in the payload.
//
//metrovet:alloc per-message payload unpacking, not a per-cycle path
//metrovet:truncate byte(acc) deliberately extracts the low byte of the accumulator
//metrovet:width every caller passes a [1,32] width (nic.New validates channel widths), so accBits stays in [0, 39]
func UnpackBytes(words []word.Word, width int) []byte {
	var out []byte
	var acc uint64
	accBits := 0
	for _, w := range words {
		acc |= uint64(w.Payload&word.Mask(width)) << uint(accBits)
		accBits += width
		for accBits >= 8 {
			out = append(out, byte(acc))
			acc >>= 8
			accBits -= 8
		}
	}
	return out
}
