// Package word defines the symbol alphabet transmitted on METRO network
// channels, together with the CRC-8 checksum the routers and network
// interfaces compute over transmitted streams.
//
// A METRO channel transfers one w-bit word per clock cycle. Besides ordinary
// data, the architecture defines several designated control words that are
// outside the normal band of data encodings (paper, Sections 4-5):
//
//   - ROUTE: the leading words of a stream carrying the routing
//     specification. Routers consume direction bits from these words.
//   - DATA-IDLE: holds a connection open when no data is available, used by
//     endpoints for variable-delay replies and by routers to fill pipeline
//     bubbles created by connection reversal and variable turn delay.
//   - TURN: reverses the direction of an open connection.
//   - STATUS and CHECKSUM: injected by each router into the reversed stream,
//     reporting whether the connection was blocked and the checksum of the
//     forwarded data, enabling source-side fault localization.
//   - DROP: closes the connection as it propagates, releasing resources.
//
// The backward control bit (BCB) used for fast path reclamation is carried
// out-of-band by the link model (package link), not as a Word.
package word

import "fmt"

// Kind identifies the class of symbol on a channel during one clock cycle.
type Kind uint8

// Symbol kinds. Empty means the channel is idle: no connection is open and
// nothing is being transmitted. All other kinds are valid only within an
// open (or opening) connection.
const (
	// Empty is the absence of a symbol: the channel carries no connection.
	Empty Kind = iota
	// Route carries routing-specification bits consumed by routers during
	// connection setup. Payload holds the bits; Bits counts how many of
	// them are still unconsumed.
	Route
	// HeaderPad is a setup padding word consumed from the stream head by a
	// router with HeaderWords > 0 (pipelined connection setup).
	HeaderPad
	// Data is an ordinary w-bit payload word.
	Data
	// DataIdle holds an open connection while no data is available.
	DataIdle
	// Turn requests reversal of the open connection's direction.
	Turn
	// Status is injected by a router (or endpoint) after a reversal and
	// reports the connection state at that node. See Status* payload bits.
	Status
	// ChecksumWord carries (part of) a CRC-8 checksum; routers inject one
	// after their Status word, and endpoints append one to each message.
	ChecksumWord
	// Drop closes the connection as it propagates, releasing the ports and
	// links it passes. Valid in both transmission directions.
	Drop
)

var kindNames = [...]string{
	Empty:        "EMPTY",
	Route:        "ROUTE",
	HeaderPad:    "HDRPAD",
	Data:         "DATA",
	DataIdle:     "IDLE",
	Turn:         "TURN",
	Status:       "STATUS",
	ChecksumWord: "CKSUM",
	Drop:         "DROP",
}

// String returns the conventional mnemonic for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Status word payload bits.
const (
	// StatusBlocked indicates the connection was blocked at the reporting
	// router: no backward port in the requested direction was available.
	StatusBlocked uint32 = 1 << 0
	// StatusDest indicates the Status word was produced by the destination
	// endpoint rather than a router.
	StatusDest uint32 = 1 << 1
	// StatusNack indicates the destination detected a checksum mismatch on
	// the received message.
	StatusNack uint32 = 1 << 2
)

// Word is one symbol as transferred across a channel in one clock cycle.
//
// Payload is masked to the channel width w by the sending node; Bits is
// metadata used only for Route words (the number of routing bits in Payload
// that have not yet been consumed by a router).
type Word struct {
	Kind    Kind
	Payload uint32
	Bits    uint8
}

// IsEmpty reports whether the word carries no symbol.
func (w Word) IsEmpty() bool { return w.Kind == Empty }

// String formats the word for traces and test failures.
func (w Word) String() string {
	switch w.Kind {
	case Route:
		return fmt.Sprintf("ROUTE(%#x/%db)", w.Payload, w.Bits)
	case Data, Status, ChecksumWord:
		return fmt.Sprintf("%s(%#x)", w.Kind, w.Payload)
	case Empty, HeaderPad, DataIdle, Turn, Drop:
		return w.Kind.String()
	default:
		// Out-of-band kind value (corrupted word): Kind.String prints it
		// numerically.
		return w.Kind.String()
	}
}

// MakeData returns a Data word carrying payload masked to width bits.
//
//metrovet:width channel widths reach here from validated configs; Config.Validate and the scan/NIC constructors bound them to 1..32
func MakeData(payload uint32, width int) Word {
	return Word{Kind: Data, Payload: payload & Mask(width)}
}

// MakeRoute returns a Route word carrying bits routing bits.
//
//metrovet:truncate route bit counts are per-hop direction widths, far below 255
func MakeRoute(payload uint32, bits int) Word {
	return Word{Kind: Route, Payload: payload, Bits: uint8(bits)}
}

// Mask returns a bit mask covering a width-bit payload. Widths outside
// [1, 32] clamp to an empty or full mask, so the shift below stays
// within the 32-bit operand.
func Mask(width int) uint32 {
	if width >= 32 {
		return ^uint32(0)
	}
	if width < 1 {
		return 0
	}
	return (1 << uint(width)) - 1
}
