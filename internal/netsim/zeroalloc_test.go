package netsim

import (
	"math/rand"
	"testing"

	"metro/internal/nic"
	"metro/internal/telemetry"
	"metro/internal/topo"
)

// BenchmarkKernelCongestedSteadyStep measures one whole-network cycle
// of a congested Figure 3 network on the compiled kernel; the Observed
// variant runs the identical closed loop with the full observability
// stack attached — engine metrics gauges, the flight recorder, and the
// telemetry→metrics bridge as its streaming tap — proving the
// operational layer adds zero allocations to the hot loop.
//
// Both share benchSteadyKernel, a closed loop:
// every completed message is replaced by a fresh one, so the in-flight
// population — and with it every recycled buffer (sender scratch, parser
// buffers, the pending freelist, the result and event accumulators) —
// holds at its steady-state size. After warmup, a measured cycle must stay
// off the heap entirely; TestZeroAllocKernelCongestedStep gates that.
func BenchmarkKernelCongestedSteadyStep(b *testing.B) {
	benchSteadyKernel(b, false)
}

// BenchmarkKernelCongestedSteadyStepObserved is the alloc half of the
// BENCH_5 acceptance bar: the congested kernel loop with metrics,
// recorder, and bridge all live.
func BenchmarkKernelCongestedSteadyStepObserved(b *testing.B) {
	benchSteadyKernel(b, true)
}

func benchSteadyKernel(b *testing.B, observed bool) {
	completed := 0
	p := Params{
		Spec: topo.Figure3(), Width: 8, DataPipe: 2, LinkDelay: 1,
		Seed: 71, RetryLimit: 600, ListenTimeout: 200, Kernel: true,
		OnResult: func(nic.Result) { completed++ },
	}
	bridge := &telemetry.MetricsSink{}
	if observed {
		p.EngineMetrics = benchEngineMetrics()
		rec := telemetry.New(telemetry.Options{})
		rec.SetSink(bridge.Sink)
		p.Recorder = rec
	}
	n, err := Build(p)
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	rng := rand.New(rand.NewSource(17))
	eps := n.Params.Spec.Endpoints
	send := func() {
		src, dest := rng.Intn(eps), rng.Intn(eps)
		if dest == src {
			dest = (dest + 1) % eps
		}
		n.Send(src, dest, benchPayload[:])
	}
	// Warm up into a congested steady state: a deep backlog keeps every
	// sender busy, and a few thousand cycles let every scratch buffer grow
	// to its steady capacity.
	for i := 0; i < 64; i++ {
		send()
	}
	for i := 0; i < 4000; i++ {
		n.Engine.Step()
		for ; completed > 0; completed-- {
			send()
		}
	}
	n.ResetResults()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Engine.Step()
		// Closed loop: replace exactly what completed, drain the result
		// accumulator the way a measuring driver would.
		for ; completed > 0; completed-- {
			send()
		}
		n.ResetResults()
	}
	b.StopTimer()
	if observed && bridge.Stats().Offered == 0 {
		b.Fatal("observed run: the telemetry bridge tallied no offered messages")
	}
}

// TestZeroAllocKernelCongestedStep asserts the warmed congested kernel
// step performs zero heap allocations per cycle — the whole-network
// dynamic gate behind the per-package steady-cycle gates (link, core,
// nic), and the alloc half of the BENCH_4 acceptance bar.
func TestZeroAllocKernelCongestedStep(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	if testing.Short() {
		t.Skip("benchmark-backed allocation gate; CI runs it in the dedicated -run ZeroAlloc step")
	}
	res := testing.Benchmark(BenchmarkKernelCongestedSteadyStep)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("congested kernel step: %d allocs/op (%d B/op), want 0", a, res.AllocedBytesPerOp())
	}
}

// TestZeroAllocKernelCongestedStepObserved asserts the same bar with
// the full operational-metrics stack live: engine gauges sampling on
// the cycle grid, the flight recorder draining every cycle, and the
// telemetry→metrics bridge tapping the drain. Observability that
// allocates on the hot path would show up here as a regression.
func TestZeroAllocKernelCongestedStepObserved(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	if testing.Short() {
		t.Skip("benchmark-backed allocation gate; CI runs it in the dedicated -run ZeroAlloc step")
	}
	res := testing.Benchmark(BenchmarkKernelCongestedSteadyStepObserved)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("observed congested kernel step: %d allocs/op (%d B/op), want 0", a, res.AllocedBytesPerOp())
	}
}
