package main

import "testing"

// TestParseMinOfRepeatedRuns pins the -count aggregation: repeated
// runs keep the minimum ns/op (contention noise is one-sided) while
// the memory columns are averaged.
func TestParseMinOfRepeatedRuns(t *testing.T) {
	out := `goos: linux
pkg: metro/internal/netsim
BenchmarkCongestedStep-2   	     100	       300 ns/op	      16 B/op	       2 allocs/op
BenchmarkCongestedStep-2   	     100	       200 ns/op	      16 B/op	       2 allocs/op
BenchmarkCongestedStep-2   	     100	       250 ns/op	      16 B/op	       2 allocs/op
PASS
`
	bs := parse(out)
	if len(bs) != 1 {
		t.Fatalf("parsed %d benchmarks, want 1: %+v", len(bs), bs)
	}
	b := bs[0]
	if b.Name != "BenchmarkCongestedStep-2" || b.Package != "metro/internal/netsim" {
		t.Fatalf("identity wrong: %+v", b)
	}
	if b.NsPerOp != 200 {
		t.Errorf("ns/op = %v, want the minimum 200", b.NsPerOp)
	}
	if b.BytesPerOp != 16 || b.AllocsOp != 2 || b.Iterations != 100 {
		t.Errorf("memory/iteration columns wrong: %+v", b)
	}
}

// TestOverheadDerivations pins the tracing and metrics pairings and
// their absence when either half is missing.
func TestOverheadDerivations(t *testing.T) {
	bs := []Benchmark{
		{Name: "BenchmarkCongestedStep-2", NsPerOp: 1000},
		{Name: "BenchmarkCongestedStepTraced-2", NsPerOp: 1100},
		{Name: "BenchmarkCongestedStepMetrics-2", NsPerOp: 1010},
	}
	tr := overhead(bs)
	if tr == nil || tr.OverheadPct < 9.9 || tr.OverheadPct > 10.1 {
		t.Errorf("tracing overhead wrong: %+v", tr)
	}
	mo := metricsOverhead(bs)
	if mo == nil || mo.OverheadPct < 0.9 || mo.OverheadPct > 1.1 {
		t.Errorf("metrics overhead wrong: %+v", mo)
	}
	if metricsOverhead(bs[:2]) != nil {
		t.Error("metrics overhead derived without the Metrics half")
	}
	if overhead(bs[:1]) != nil {
		t.Error("tracing overhead derived without the Traced half")
	}
}
