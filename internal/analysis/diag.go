package analysis

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
)

// This file is the machine-readable diagnostics backbone: stable finding
// IDs, content fingerprints, and the byte-stable -json and -sarif
// encodings. Two invariants matter here:
//
//   - Rule IDs are append-only. MVnnn numbers are wire format — editors,
//     CI annotations and dashboards key on them — so a renamed or deleted
//     rule keeps (retires) its number and a new rule takes the next one.
//   - Encoders are deterministic byte for byte for a given finding list:
//     fixed field order (structs, never maps), fixed indentation, sorted
//     inputs. The golden CLI tests pin the exact bytes.

// ruleIDs maps each analyzer name to its stable diagnostic ID, in the
// order the rules were introduced. Append-only: never renumber.
var ruleIDs = map[string]string{
	"no-wallclock":           "MV001",
	"no-global-rand":         "MV002",
	"ordered-map-iteration":  "MV003",
	"clocked-mutation":       "MV004",
	"invariant-coverage":     "MV005",
	"exhaustive-enum-switch": "MV006",
	"hot-path-alloc":         "MV007",
	"eval-isolation":         "MV008",
	"shard-purity":           "MV009",
	"truncating-conversion":  "MV010",
	"provable-bounds":        "MV011",
	"width-contract":         "MV012",
}

// RuleID returns the stable MVnnn ID for a rule name ("MV000" for a rule
// the table does not know, which the release test treats as an error).
func RuleID(rule string) string {
	if id, ok := ruleIDs[rule]; ok {
		return id
	}
	return "MV000"
}

// Fingerprint returns the line-independent identity of a finding as a
// 16-hex-digit FNV-1a hash of (file, rule, message) — the same identity
// the baseline format uses, so a finding keeps its fingerprint when
// unrelated edits above it move its line number.
func Fingerprint(f Finding) string {
	h := fnv.New64a()
	io.WriteString(h, f.Pos.Filename)
	io.WriteString(h, "\x00")
	io.WriteString(h, f.Rule)
	io.WriteString(h, "\x00")
	io.WriteString(h, f.Msg)
	return fmt.Sprintf("%016x", h.Sum64())
}

// FindingJSON is the machine-readable form of one finding.
type FindingJSON struct {
	ID          string `json:"id"`
	Rule        string `json:"rule"`
	File        string `json:"file"`
	Line        int    `json:"line"`
	Col         int    `json:"col"`
	Fingerprint string `json:"fingerprint"`
	Message     string `json:"message"`
}

// findingToJSON converts one finding.
func findingToJSON(f Finding) FindingJSON {
	return FindingJSON{
		ID:          RuleID(f.Rule),
		Rule:        f.Rule,
		File:        f.Pos.Filename,
		Line:        f.Pos.Line,
		Col:         f.Pos.Column,
		Fingerprint: Fingerprint(f),
		Message:     f.Msg,
	}
}

// findingFromJSON inverts findingToJSON (used by the analysis cache).
func findingFromJSON(fj FindingJSON) Finding {
	f := Finding{Rule: fj.Rule, Msg: fj.Message}
	f.Pos.Filename = fj.File
	f.Pos.Line = fj.Line
	f.Pos.Column = fj.Col
	return f
}

// jsonReport is the -json document shape.
type jsonReport struct {
	Version  int           `json:"version"`
	Tool     string        `json:"tool"`
	Count    int           `json:"count"`
	Findings []FindingJSON `json:"findings"`
}

// EncodeJSON writes the findings as the metrovet JSON report. Callers
// must pass findings already sorted (SortFindings); the output is then
// byte-stable.
func EncodeJSON(w io.Writer, fs []Finding) error {
	rep := jsonReport{Version: 1, Tool: "metrovet", Count: len(fs), Findings: []FindingJSON{}}
	for _, f := range fs {
		rep.Findings = append(rep.Findings, findingToJSON(f))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// SARIF 2.1.0 document shapes — the subset metrovet emits. Structs keep
// the field order fixed, so the encoding is deterministic.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	Name             string    `json:"name"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	RuleIndex           int               `json:"ruleIndex"`
	Level               string            `json:"level"`
	Message             sarifText         `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// EncodeSARIF writes the findings as a SARIF 2.1.0 log. The driver's
// rule table always lists the full rule set in reporting order, so the
// document shape does not depend on which rules fired. Findings must be
// pre-sorted for byte stability.
func EncodeSARIF(w io.Writer, fs []Finding) error {
	rules := Analyzers()
	driver := sarifDriver{
		Name:           "metrovet",
		InformationURI: "https://example.invalid/metro/docs/DETERMINISM.md",
		Rules:          []sarifRule{},
	}
	ruleIndex := map[string]int{}
	for i, a := range rules {
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               RuleID(a.Name),
			Name:             a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
		ruleIndex[a.Name] = i
	}
	results := []sarifResult{}
	for _, f := range fs {
		idx, ok := ruleIndex[f.Rule]
		if !ok {
			idx = -1
		}
		results = append(results, sarifResult{
			RuleID:    RuleID(f.Rule),
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifText{Text: f.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: f.Pos.Filename},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
			PartialFingerprints: map[string]string{"metrovet/v1": Fingerprint(f)},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
