package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// All fixtures share one FileSet and one source importer: the importer
// re-type-checks imported stdlib packages from GOROOT source and caches
// them per instance, so sharing it keeps the suite fast (notably under
// -race, where each stdlib check costs several seconds). Analyzer tests
// must therefore not call t.Parallel().
var (
	fixtureFset     = token.NewFileSet()
	fixtureImporter = importer.ForCompiler(fixtureFset, "source", nil)
)

// loadFixture type-checks an in-memory package for analyzer tests. Keys
// of files are filenames ("a.go", "a_test.go"); the import path controls
// rule scoping ("metro/internal/core" puts the fixture in cycle-state
// scope). Fixtures may import only the standard library.
func loadFixture(t *testing.T, importPath string, files map[string]string) *Package {
	t.Helper()
	fset := fixtureFset
	p := &Package{ImportPath: importPath, Fset: fset}
	for name, src := range files {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			p.XTestFiles = append(p.XTestFiles, f)
		case strings.HasSuffix(name, "_test.go"):
			p.TestFiles = append(p.TestFiles, f)
		default:
			p.Files = append(p.Files, f)
		}
	}
	imp := fixtureImporter
	collect := func(err error) { p.TypeErrs = append(p.TypeErrs, err) }
	p.Info = newInfo()
	unit := append(append([]*ast.File{}, p.Files...), p.TestFiles...)
	p.Types, _ = (&types.Config{Importer: imp, Error: collect}).Check(importPath, fset, unit, p.Info)
	if len(p.XTestFiles) > 0 {
		// Fixture xtest files must not import the fixture package itself
		// (the stdlib importer cannot resolve it); they exist to model
		// "a test calls X" shapes, which resolve syntactically.
		p.XInfo = newInfo()
		(&types.Config{Importer: imp, Error: func(error) {}}).Check(importPath+"_test", fset, p.XTestFiles, p.XInfo)
	}
	for _, err := range p.TypeErrs {
		t.Logf("fixture type error (tolerated): %v", err)
	}
	return p
}

// fixturePkg is one package of a multi-package fixture program.
type fixturePkg struct {
	path  string
	files map[string]string
}

// loadFixtureProgram type-checks several in-memory packages, in
// dependency order (imported packages first), and indexes them as a
// Program for the whole-program analyzers. Fixture packages may import
// the standard library and any fixture package listed before them.
func loadFixtureProgram(t *testing.T, pkgs ...fixturePkg) *Program {
	t.Helper()
	local := map[string]*types.Package{}
	imp := &fixtureProgImporter{local: local}
	var out []*Package
	for _, fp := range pkgs {
		p := &Package{ImportPath: fp.path, Fset: fixtureFset}
		for name, src := range fp.files {
			f, err := parser.ParseFile(fixtureFset, fp.path+"/"+name, src, parser.ParseComments)
			if err != nil {
				t.Fatalf("parse %s/%s: %v", fp.path, name, err)
			}
			if strings.HasSuffix(name, "_test.go") {
				p.TestFiles = append(p.TestFiles, f)
			} else {
				p.Files = append(p.Files, f)
			}
		}
		collect := func(err error) { p.TypeErrs = append(p.TypeErrs, err) }
		p.Info = newInfo()
		unit := append(append([]*ast.File{}, p.Files...), p.TestFiles...)
		p.Types, _ = (&types.Config{Importer: imp, Error: collect}).Check(fp.path, fixtureFset, unit, p.Info)
		local[fp.path] = p.Types
		for _, err := range p.TypeErrs {
			t.Logf("fixture type error (tolerated): %v", err)
		}
		out = append(out, p)
	}
	return NewProgram(out)
}

// fixtureProgImporter resolves fixture-local packages first and defers
// the rest to the shared GOROOT source importer.
type fixtureProgImporter struct{ local map[string]*types.Package }

func (i *fixtureProgImporter) Import(path string) (*types.Package, error) {
	if p := i.local[path]; p != nil {
		return p, nil
	}
	return fixtureImporter.Import(path)
}

// runRule loads the fixture and runs one analyzer over it.
func runRule(t *testing.T, a *Analyzer, importPath string, files map[string]string) []Finding {
	t.Helper()
	return a.Run(loadFixture(t, importPath, files))
}

// wantFindings asserts the findings' (filename, line) pairs exactly.
func wantFindings(t *testing.T, got []Finding, rule string, want ...[2]any) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d finding(s), want %d: %v", len(got), len(want), got)
	}
	SortFindings(got)
	for i, w := range want {
		file, line := w[0].(string), w[1].(int)
		f := got[i]
		if f.Rule != rule || f.Pos.Filename != file || f.Pos.Line != line {
			t.Errorf("finding %d = %s:%d (%s), want %s:%d (%s)",
				i, f.Pos.Filename, f.Pos.Line, f.Rule, file, line, rule)
		}
	}
}
