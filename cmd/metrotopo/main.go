// metrotopo inspects multipath multistage topologies: router counts, path
// multiplicity, routing digits, and structural fault tolerance.
//
// Usage:
//
//	metrotopo                       # describe the Figure 1 network
//	metrotopo -network fig3
//	metrotopo -paths 6,15           # enumerate paths between two endpoints
//	metrotopo -survive              # single-router-loss reachability audit
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"metro"
	"metro/internal/stats"
)

func main() {
	network := flag.String("network", "fig1", "topology: fig1, fig3, net32, net32r8")
	paths := flag.String("paths", "", "src,dest pair to count paths for")
	survive := flag.Bool("survive", false, "audit single-router-loss reachability")
	wiring := flag.String("wiring", "interleave", "wiring: interleave or random")
	seed := flag.Int64("seed", 1, "seed for random wiring")
	flag.Parse()

	var spec metro.TopologySpec
	switch *network {
	case "fig1":
		spec = metro.Figure1Topology()
	case "fig3":
		spec = metro.Figure3Topology()
	case "net32":
		spec = metro.Topology32()
	case "net32r8":
		spec = metro.Topology32Radix8()
	default:
		fmt.Fprintf(os.Stderr, "metrotopo: unknown network %q\n", *network)
		os.Exit(2)
	}
	if *wiring == "random" {
		spec.Wiring = metro.WiringRandom
		spec.Seed = *seed
	}

	top, err := metro.BuildTopology(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metrotopo: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("network %s: %d endpoints x %d links, %s wiring\n",
		*network, spec.Endpoints, spec.EndpointLinks, spec.Wiring)
	t := stats.Table{Header: []string{"stage", "routers", "geometry", "dilation", "blocks"}}
	for s, st := range spec.Stages {
		t.Add(
			fmt.Sprintf("%d", s),
			fmt.Sprintf("%d", top.RoutersPerStage[s]),
			fmt.Sprintf("%dx%d", st.Inputs, st.Outputs()),
			fmt.Sprintf("%d", st.Dilation),
			fmt.Sprintf("%d", top.BlocksPerStage[s]),
		)
	}
	fmt.Print(t.String())
	fmt.Printf("total: %d routers, %d links, %d paths between each endpoint pair\n",
		top.RouterCount(), top.LinkCount(), top.PathCount(0, spec.Endpoints-1))

	if *paths != "" {
		parts := strings.Split(*paths, ",")
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "metrotopo: -paths wants src,dest")
			os.Exit(2)
		}
		src, _ := strconv.Atoi(strings.TrimSpace(parts[0]))
		dest, _ := strconv.Atoi(strings.TrimSpace(parts[1]))
		fmt.Printf("paths %d -> %d: %d (routing digits %v)\n",
			src, dest, top.PathCount(src, dest), top.RouteDigits(dest))
	}

	if *survive {
		fmt.Println("single-router-loss audit:")
		total, isolated := 0, 0
		for s := range spec.Stages {
			for j := 0; j < top.RoutersPerStage[s]; j++ {
				total++
				dead := map[[2]int]bool{{s, j}: true}
				ok := true
			pairs:
				for src := 0; src < spec.Endpoints; src++ {
					for dest := 0; dest < spec.Endpoints; dest++ {
						if !top.Reachable(src, dest, dead) {
							ok = false
							break pairs
						}
					}
				}
				if !ok {
					isolated++
					fmt.Printf("  losing s%dr%d isolates some endpoint pair\n", s, j)
				}
			}
		}
		if isolated == 0 {
			fmt.Printf("  all %d single-router losses tolerated: every endpoint pair stays connected\n", total)
		}
	}
}
