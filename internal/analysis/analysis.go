// Package analysis implements metrovet, the repository's custom static
// analysis pass enforcing simulator determinism discipline.
//
// METRO's correctness argument rests on reproducibility: width-cascaded
// routers stay consistent only because identical inputs plus identical
// shared random bits yield identical allocations (paper, Section 5.1), and
// every experiment in this repository is expected to be reproducible bit
// for bit from its seeds. Hidden nondeterminism in the Go model — map
// iteration order, wall-clock reads, global math/rand state, mutation of
// simulator state outside the clocked Eval/Commit path — silently
// invalidates cycle-accurate results without failing any test.
//
// The pass is built from named, individually testable analyzers (see
// Analyzers). Each reports findings as "file:line: rule-id: message".
// Findings are fixed, suppressed inline with a justified directive
// comment, or recorded in a baseline file (see package baseline handling
// in baseline.go). The recognized directives are:
//
//	//metrovet:ordered <reason>   — this map iteration is order-independent
//	//metrovet:mutator <reason>   — this exported method is a deliberate
//	                                out-of-cycle mutation entry point
//	//metrovet:nonexhaustive <reason> — this enum switch deliberately
//	                                handles a subset of the states
//	//metrovet:alloc <reason>     — this hot-path allocation is justified
//	                                (per-message work, preallocated capacity)
//	//metrovet:shared <reason>    — this Eval-phase touch of another
//	                                component's state is safe (co-located on
//	                                one shard, or serialized epilogue)
//	//metrovet:truncate <reason>  — this narrowing conversion is an
//	                                intended truncation
//	//metrovet:bounds <reason>    — this index is guaranteed in bounds by
//	                                an invariant the analysis cannot see
//	//metrovet:width <reason>     — this width/shift amount is validated
//	                                outside the analyzed region
//	//metrovet:ignore <rule> <reason> — suppress any rule on this line
//
// A directive with no reason does not suppress anything: the justification
// is the point.
//
// Only the standard library (go/ast, go/parser, go/token, go/types) is
// used; see docs/DETERMINISM.md for the contract the rules enforce.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the canonical "file:line: rule-id: message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one named rule of the metrovet pass. Run analyzes one
// package at a time and is always set (whole-program rules analyze a
// single-package program through it, which is what the fixture tests
// exercise). RunProgram, when set, marks a whole-program rule: the
// driver calls it once with every loaded package, so the rule sees the
// interprocedural call graph instead of one package's slice of it.
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Package) []Finding
	RunProgram func(*Program) []Finding
}

// Analyzers returns the full rule set in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallClock(),
		GlobalRand(),
		MapRange(),
		ClockedMutation(),
		InvariantCoverage(),
		EnumSwitch(),
		HotPathAlloc(),
		EvalIsolation(),
		ShardPurity(),
		TruncatingConversion(),
		ProvableBounds(),
		WidthContract(),
	}
}

// Package is one loaded, type-checked package as the analyzers see it:
// the compiled files plus in-package test files form the main check unit,
// and external (package foo_test) files are checked as a sibling unit.
type Package struct {
	// ImportPath is the package's import path ("metro/internal/core").
	ImportPath string
	// Dir is the package directory (empty for in-memory fixtures).
	Dir string
	// Fset positions every parsed file, including imported sources.
	Fset *token.FileSet
	// Files holds the compiled (non-test) files.
	Files []*ast.File
	// TestFiles holds the in-package _test.go files.
	TestFiles []*ast.File
	// XTestFiles holds the external test package's files, if any.
	XTestFiles []*ast.File
	// Types is the checked package (compiled files only, as imports see
	// it). Info covers Files and TestFiles; XInfo covers XTestFiles. Any
	// may be partially filled when the package has type errors.
	Types *types.Package
	Info  *types.Info
	XInfo *types.Info
	// TypeErrs collects type-checker diagnostics (the analyzers tolerate
	// holes in type information; a package that builds has none).
	TypeErrs []error

	dirs suppressions
}

// AllFiles returns the compiled, in-package test, and external test files.
func (p *Package) AllFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles)+len(p.XTestFiles))
	out = append(out, p.Files...)
	out = append(out, p.TestFiles...)
	return append(out, p.XTestFiles...)
}

// IsTestFile reports whether f was parsed from a _test.go file.
func (p *Package) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// TypeOf returns the type of expr from whichever check unit covers it, or
// nil when type information is unavailable.
func (p *Package) TypeOf(expr ast.Expr) types.Type {
	for _, info := range []*types.Info{p.Info, p.XInfo} {
		if info == nil {
			continue
		}
		if t := info.TypeOf(expr); t != nil {
			return t
		}
	}
	return nil
}

// ObjectOf resolves an identifier to its object across both check units.
func (p *Package) ObjectOf(id *ast.Ident) types.Object {
	for _, info := range []*types.Info{p.Info, p.XInfo} {
		if info == nil {
			continue
		}
		if obj := info.ObjectOf(id); obj != nil {
			return obj
		}
	}
	return nil
}

// PkgNameOf reports the import path of the package an identifier refers
// to, when the identifier names an imported package ("time" in time.Now).
func (p *Package) PkgNameOf(id *ast.Ident) (string, bool) {
	if pn, ok := p.ObjectOf(id).(*types.PkgName); ok {
		return pn.Imported().Path(), true
	}
	return "", false
}

// isInternal reports whether the package is part of the simulation model
// proper (under internal/), the scope of the determinism rules.
func isInternal(importPath string) bool {
	return strings.HasPrefix(importPath, "internal/") ||
		strings.Contains(importPath, "/internal/")
}

// internalName returns the first path segment after internal/ ("core" for
// metro/internal/core).
func internalName(importPath string) string {
	const marker = "internal/"
	i := strings.Index(importPath, marker)
	if i < 0 {
		return ""
	}
	rest := importPath[i+len(marker):]
	if j := strings.IndexByte(rest, '/'); j >= 0 {
		rest = rest[:j]
	}
	return rest
}

// cycleStatePackages names the packages that mutate simulation state per
// clock cycle; the ordered-map-iteration and clocked-mutation rules apply
// only to these (ISSUE 1; topo is included because its structures feed
// netsim wiring deterministically).
var cycleStatePackages = map[string]bool{
	"core":    true,
	"netsim":  true,
	"cascade": true,
	"nic":     true,
	"fault":   true,
	"topo":    true,
}

func isCycleStatePackage(importPath string) bool {
	return isInternal(importPath) && cycleStatePackages[internalName(importPath)]
}

// directive is one parsed //metrovet: comment.
type directive struct {
	kind   string // "ordered", "mutator", "ignore"
	rule   string // ignore only: the rule id being suppressed
	reason string
}

// suppressions indexes directives by filename and line.
type suppressions map[string]map[int][]directive

// parseDirective parses a single comment's text, returning ok=false for
// non-metrovet comments and for directives with no justification (which
// deliberately suppress nothing).
func parseDirective(text string) (directive, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "metrovet:") {
		return directive{}, false
	}
	body := strings.TrimPrefix(text, "metrovet:")
	kind, rest, _ := strings.Cut(body, " ")
	rest = strings.TrimSpace(rest)
	switch kind {
	case "ordered", "mutator", "nonexhaustive", "alloc", "shared", "truncate", "bounds", "width":
		if rest == "" {
			return directive{}, false
		}
		return directive{kind: kind, reason: rest}, true
	case "ignore":
		rule, reason, _ := strings.Cut(rest, " ")
		reason = strings.TrimSpace(reason)
		if rule == "" || reason == "" {
			return directive{}, false
		}
		return directive{kind: kind, rule: rule, reason: reason}, true
	}
	return directive{}, false
}

// buildSuppressions scans every comment in the package once.
func (p *Package) buildSuppressions() {
	p.dirs = suppressions{}
	for _, f := range p.AllFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.dirs[pos.Filename]
				if byLine == nil {
					byLine = map[int][]directive{}
					p.dirs[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], d)
			}
		}
	}
}

// suppressed reports whether a finding of rule at pos is covered by a
// directive of the given kind (or a matching generic ignore) on the same
// line or the line immediately above.
func (p *Package) suppressed(rule, kind string, pos token.Position) bool {
	if p.dirs == nil {
		p.buildSuppressions()
	}
	byLine := p.dirs[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range byLine[line] {
			if d.kind == kind && kind != "ignore" {
				return true
			}
			if d.kind == "ignore" && d.rule == rule {
				return true
			}
		}
	}
	return false
}

// docDirective reports whether a declaration's doc comment carries a
// directive of the given kind.
func docDirective(doc *ast.CommentGroup, kind string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if d, ok := parseDirective(c.Text); ok && d.kind == kind {
			return true
		}
	}
	return false
}

// SortFindings orders findings by (file, line, column, rule, message)
// for stable output: every emitter sorts through this one comparator, so
// text, JSON, SARIF and cache encodings all agree on order.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}
