package analysis

import "testing"

func TestGlobalRandFiresOnGlobalFuncs(t *testing.T) {
	got := runRule(t, GlobalRand(), "metro/internal/traffic", map[string]string{
		"a.go": `package traffic

import "math/rand"

func bad(n int) int {
	rand.Seed(42)        // line 6: global state
	return rand.Intn(n)  // line 7: global state
}

func good(n int, seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // seeded instance: allowed
	return rng.Intn(n)                    // method on instance: allowed
}
`,
	})
	wantFindings(t, got, "no-global-rand", [2]any{"a.go", 6}, [2]any{"a.go", 7})
}

func TestGlobalRandFiresOnCryptoRandImport(t *testing.T) {
	got := runRule(t, GlobalRand(), "metro/internal/fault", map[string]string{
		"a.go": `package fault

import (
	"crypto/rand"
)

func bad() []byte {
	b := make([]byte, 8)
	rand.Read(b)
	return b
}
`,
	})
	// The import itself is the finding: crypto/rand has no seeded mode,
	// so no use of it can be reproducible.
	wantFindings(t, got, "no-global-rand", [2]any{"a.go", 4})
}

func TestGlobalRandSilentOnSeededUse(t *testing.T) {
	src := map[string]string{
		"a.go": `package topo

import "math/rand"

type W struct{ rng *rand.Rand }

func build(seed int64) *W {
	return &W{rng: rand.New(rand.NewSource(seed))}
}
`,
	}
	if got := runRule(t, GlobalRand(), "metro/internal/topo", src); len(got) != 0 {
		t.Fatalf("seeded instances are allowed, got %v", got)
	}
}

func TestGlobalRandSilentOutsideInternal(t *testing.T) {
	src := map[string]string{
		"a.go": `package main

import "math/rand"

func main() { _ = rand.Intn(6) }
`,
	}
	if got := runRule(t, GlobalRand(), "metro/examples/quickstart", src); len(got) != 0 {
		t.Fatalf("examples/ packages are out of scope, got %v", got)
	}
}
