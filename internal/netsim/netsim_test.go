package netsim

import (
	"bytes"
	"fmt"
	"testing"

	"metro/internal/link"

	"metro/internal/topo"
)

func buildFig1(t *testing.T, mutate func(*Params)) *Network {
	t.Helper()
	p := Params{
		Spec:        topo.Figure1(),
		Width:       8,
		DataPipe:    1,
		LinkDelay:   1,
		FastReclaim: true,
		Seed:        1,
	}
	if mutate != nil {
		mutate(&p)
	}
	n, err := Build(p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n
}

func TestSingleMessageDelivery(t *testing.T) {
	var got []byte
	intact := false
	n := buildFig1(t, func(p *Params) {
		p.OnDeliver = func(dest int, payload []byte, ok bool) {
			if dest == 11 {
				got = append([]byte(nil), payload...)
				intact = ok
			}
		}
	})
	payload := []byte("metro routing!")
	n.Send(2, 11, payload)
	if !n.RunUntilQuiet(2000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != 1 {
		t.Fatalf("results = %d, want 1", len(res))
	}
	r := res[0]
	if !r.Delivered {
		t.Fatalf("message not delivered: %+v", r)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload corrupted: %q != %q", got, payload)
	}
	if !intact {
		t.Fatal("destination saw checksum mismatch")
	}
	if r.Retries != 0 {
		t.Fatalf("unloaded network needed %d retries", r.Retries)
	}
	if r.Done <= r.Injected {
		t.Fatalf("nonsensical latency: injected %d done %d", r.Injected, r.Done)
	}
	if r.SuspectStage != -1 {
		t.Fatalf("healthy network flagged stage %d", r.SuspectStage)
	}
}

func TestAllPairsDelivery(t *testing.T) {
	n := buildFig1(t, nil)
	want := 0
	for src := 0; src < 16; src++ {
		for dest := 0; dest < 16; dest++ {
			if src == dest {
				continue
			}
			n.Send(src, dest, []byte{byte(src), byte(dest)})
			want++
		}
	}
	if !n.RunUntilQuiet(200000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != want {
		t.Fatalf("results = %d, want %d", len(res), want)
	}
	for _, r := range res {
		if !r.Delivered {
			t.Fatalf("message %d (%d->%d) undelivered after %d retries",
				r.Msg.ID, r.Msg.Src, r.Msg.Dest, r.Retries)
		}
	}
}

func TestRequestReply(t *testing.T) {
	n := buildFig1(t, func(p *Params) {
		p.Responder = func(dest int, payload []byte) []byte {
			return append([]byte(fmt.Sprintf("node%d:", dest)), payload...)
		}
	})
	n.Send(0, 7, []byte("read 0x40"))
	if !n.RunUntilQuiet(2000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != 1 || !res[0].Delivered {
		t.Fatalf("request failed: %+v", res)
	}
	if want := "node7:read 0x40"; string(res[0].Reply) != want {
		t.Fatalf("reply = %q, want %q", res[0].Reply, want)
	}
}

func TestContentionRetriesAndDelivers(t *testing.T) {
	// Every endpoint hammers the same destination: connections must block
	// and retry, yet all messages eventually deliver (source-responsible
	// reliability under congestion).
	for _, fast := range []bool{true, false} {
		n := buildFig1(t, func(p *Params) {
			p.FastReclaim = fast
			p.MaxActiveSenders = 1
			p.RetryLimit = 500
		})
		want := 0
		for src := 0; src < 16; src++ {
			if src == 5 {
				continue
			}
			n.Send(src, 5, []byte{byte(src)})
			want++
		}
		if !n.RunUntilQuiet(500000) {
			t.Fatalf("fast=%v: network did not go quiet", fast)
		}
		res := n.Results()
		if len(res) != want {
			t.Fatalf("fast=%v: results = %d, want %d", fast, len(res), want)
		}
		retries := 0
		for _, r := range res {
			if !r.Delivered {
				t.Fatalf("fast=%v: message %d->%d undelivered (%+v)", fast, r.Msg.Src, r.Msg.Dest, r)
			}
			retries += r.Retries
		}
		if retries == 0 {
			t.Errorf("fast=%v: hotspot produced no retries — contention model suspect", fast)
		}
		for _, r := range res {
			if fast && r.BlockedDetailed > 0 {
				t.Errorf("fast=%v: detailed block reported in fast mode: %+v", fast, r)
			}
			if !fast && r.BlockedFast > 0 {
				t.Errorf("fast=%v: BCB block reported in detailed mode: %+v", fast, r)
			}
		}
	}
}

func TestUnloadedLatencyFigure3Config(t *testing.T) {
	// Figure 3's network: 3 stages of radix-4 routers, 8-bit channels.
	// The paper reports 28 cycles unloaded from injection to
	// acknowledgment receipt for 20-byte messages; our protocol carries a
	// slightly different ack structure, so we check the same order of
	// magnitude and record the exact number in EXPERIMENTS.md.
	p := Params{
		Spec:        topo.Figure3(),
		Width:       8,
		DataPipe:    1,
		LinkDelay:   1,
		FastReclaim: true,
		Seed:        7,
	}
	n, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	n.Send(0, 63, make([]byte, 20))
	if !n.RunUntilQuiet(2000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != 1 || !res[0].Delivered {
		t.Fatalf("message undelivered: %+v", res)
	}
	lat := res[0].Done - res[0].Injected
	if lat < 25 || lat > 60 {
		t.Fatalf("unloaded 20-byte latency = %d cycles, expected 25..60", lat)
	}
	t.Logf("unloaded Figure-3 latency: %d cycles (paper: 28)", lat)
}

func TestHeaderWordsModes(t *testing.T) {
	// The same traffic delivers under hw=0 (bit stripping) and hw=1,2
	// (pipelined setup consuming whole words).
	for _, hw := range []int{0, 1, 2} {
		n := buildFig1(t, func(p *Params) { p.HeaderWords = hw })
		for src := 0; src < 16; src += 3 {
			n.Send(src, (src+5)%16, []byte("hdr test"))
		}
		if !n.RunUntilQuiet(50000) {
			t.Fatalf("hw=%d: network did not go quiet", hw)
		}
		for _, r := range n.Results() {
			if !r.Delivered {
				t.Fatalf("hw=%d: %d->%d undelivered: %+v", hw, r.Msg.Src, r.Msg.Dest, r)
			}
		}
	}
}

func TestDeepPipesAndLongWires(t *testing.T) {
	for _, tc := range []struct{ dp, vtd int }{{2, 1}, {1, 3}, {3, 2}} {
		n := buildFig1(t, func(p *Params) {
			p.DataPipe = tc.dp
			p.LinkDelay = tc.vtd
		})
		n.Send(3, 12, []byte("pipeline"))
		n.Send(12, 3, []byte("pipeline"))
		if !n.RunUntilQuiet(5000) {
			t.Fatalf("dp=%d vtd=%d: network did not go quiet", tc.dp, tc.vtd)
		}
		for _, r := range n.Results() {
			if !r.Delivered {
				t.Fatalf("dp=%d vtd=%d: undelivered: %+v", tc.dp, tc.vtd, r)
			}
		}
	}
}

func TestNarrowChannelWidth(t *testing.T) {
	// w=4 nibble channels (METROJR): checksums split across two words.
	n := buildFig1(t, func(p *Params) { p.Width = 4 })
	n.Send(1, 14, []byte("nibbles work"))
	if !n.RunUntilQuiet(5000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != 1 || !res[0].Delivered {
		t.Fatalf("w=4 delivery failed: %+v", res)
	}
}

func TestLatencyScalesWithVTD(t *testing.T) {
	lat := func(vtd int) uint64 {
		n := buildFig1(t, func(p *Params) { p.LinkDelay = vtd })
		n.Send(0, 15, make([]byte, 8))
		if !n.RunUntilQuiet(5000) {
			t.Fatal("network did not go quiet")
		}
		r := n.Results()[0]
		if !r.Delivered {
			t.Fatal("undelivered")
		}
		return r.Done - r.Injected
	}
	l1, l3 := lat(1), lat(3)
	if l3 <= l1 {
		t.Fatalf("latency did not grow with wire delay: vtd1=%d vtd3=%d", l1, l3)
	}
	// Round trip crosses 4 links each way: 2 extra stages per link, 8
	// links total minimum growth 2*8 = 16.
	if l3-l1 < 16 {
		t.Fatalf("latency growth %d too small for 2 extra pipeline stages on each of 8 link crossings", l3-l1)
	}
}

func TestMessageWords(t *testing.T) {
	n := buildFig1(t, nil)
	// Figure 1 header: 1+1+2 route bits = 4 bits -> 1 word at w=8;
	// 20 payload + 1 cksum + 1 turn = 23.
	if got := n.MessageWords(20); got != 23 {
		t.Fatalf("MessageWords(20) = %d, want 23", got)
	}
}

func TestResponderDelayHoldsConnection(t *testing.T) {
	// The destination stalls 30 cycles before its reply (a memory access);
	// the connection is held open with DATA-IDLE and the reply still
	// arrives intact, costing ~30 extra cycles of latency.
	latency := func(delay int) uint64 {
		n := buildFig1(t, func(p *Params) {
			p.Responder = func(dest int, payload []byte) []byte { return []byte{0xAA} }
			p.ResponderDelay = func(dest int, payload []byte) int { return delay }
		})
		n.Send(0, 9, []byte("read"))
		if !n.RunUntilQuiet(5000) {
			t.Fatal("network did not go quiet")
		}
		r := n.Results()[0]
		if !r.Delivered || len(r.Reply) != 1 || r.Reply[0] != 0xAA {
			t.Fatalf("delayed reply failed: %+v", r)
		}
		return r.Done - r.Injected
	}
	l0, l30 := latency(0), latency(30)
	if l30-l0 != 30 {
		t.Fatalf("responder delay cost %d cycles, want exactly 30", l30-l0)
	}
}

// TestMixedReclamationMode reproduces the paper's dynamic tradeoff: with
// detailed replies enabled only on the final stage, blocks there return
// stage-identifying status replies while blocks at earlier stages recover
// via the fast BCB.
func TestMixedReclamationMode(t *testing.T) {
	n := buildFig1(t, func(p *Params) {
		p.FastReclaim = true
		p.DetailedStages = []int{2}
		p.MaxActiveSenders = 1
		p.RetryLimit = 500
	})
	// Hammer one destination: final-stage delivery contention guarantees
	// detailed blocks at stage 2, while earlier-stage contention stays
	// fast.
	want := 0
	for src := 0; src < 16; src++ {
		if src == 9 {
			continue
		}
		n.Send(src, 9, []byte{byte(src)})
		want++
	}
	if !n.RunUntilQuiet(500000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != want {
		t.Fatalf("completed %d of %d", len(res), want)
	}
	detailed, detailedAtFinal := 0, 0
	for _, r := range res {
		if !r.Delivered {
			t.Fatalf("undelivered: %+v", r)
		}
		detailed += r.BlockedDetailed
		if r.LastBlockedStage == 2 {
			detailedAtFinal++
		}
	}
	if detailed == 0 {
		t.Fatal("no detailed blocks observed at the selected stage")
	}
	if detailedAtFinal == 0 {
		t.Fatal("detailed replies did not identify the final stage")
	}
	for _, r := range res {
		if r.LastBlockedStage >= 0 && r.LastBlockedStage != 2 {
			t.Fatalf("detailed block reported at stage %d, only stage 2 is in detailed mode", r.LastBlockedStage)
		}
	}
}

func TestNetworkAccessors(t *testing.T) {
	n := buildFig1(t, nil)
	if n.RouterAt(1, 3) == nil {
		t.Fatal("RouterAt nil")
	}
	if n.InjectLink(5, 1) == nil {
		t.Fatal("InjectLink nil")
	}
	count := 0
	n.EachLink(func(l *link.Link) { count++ })
	if count != 128 {
		t.Fatalf("EachLink visited %d links, want 128", count)
	}
	n.Send(0, 1, []byte{1})
	n.Run(100)
	if len(n.TakeResults()) != 1 {
		t.Fatal("TakeResults did not return the completed message")
	}
	if len(n.TakeResults()) != 0 {
		t.Fatal("TakeResults did not clear")
	}
}

// TestMixedHeaderGenerations runs a network whose stages use different
// header regimes: an hw=0 bit-stripping stage, an hw=2 pipelined-setup
// stage, and an hw=1 stage, mixed in one path.
func TestMixedHeaderGenerations(t *testing.T) {
	n := buildFig1(t, func(p *Params) {
		p.StageHeaderWords = []int{0, 2, 1}
	})
	for src := 0; src < 16; src += 2 {
		n.Send(src, (src+7)%16, []byte("mixed generations"))
	}
	if !n.RunUntilQuiet(50000) {
		t.Fatal("network did not go quiet")
	}
	for _, r := range n.Results() {
		if !r.Delivered {
			t.Fatalf("undelivered with mixed hw stages: %+v", r)
		}
		if r.SuspectStage != -1 {
			t.Fatalf("spurious checksum suspicion: %+v", r)
		}
	}
	// Header accounting: 1 route word (hw=0 stage shares nothing here:
	// stage 0 digit packs into its own word) + 2 words (hw=2) + 1 word
	// (hw=1) and the usual payload+cksum+turn.
	if got := n.MessageWords(20); got != 1+2+1+20+1+1 {
		t.Fatalf("MessageWords(20) = %d with mixed headers", got)
	}
}
