package traffic

import (
	"testing"

	"metro/internal/netsim"
	"metro/internal/topo"
)

func openSpec(load float64) RunSpec {
	return RunSpec{
		Net: netsim.Params{
			Spec:        topo.Figure1(),
			Width:       8,
			DataPipe:    1,
			LinkDelay:   1,
			FastReclaim: true,
			Seed:        5,
			RetryLimit:  1000,
		},
		Load:          load,
		MsgBytes:      8,
		WarmupCycles:  1000,
		MeasureCycles: 6000,
		Seed:          77,
	}
}

func TestOpenLoopLightLoadDelivers(t *testing.T) {
	p, err := RunOpenLoop(openSpec(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if p.Messages < 30 {
		t.Fatalf("too few messages: %d", p.Messages)
	}
	if p.Delivered != p.Messages {
		t.Fatalf("light open-loop load lost messages: %d/%d", p.Delivered, p.Messages)
	}
	// Accepted tracks offered at light load.
	if p.AcceptedLoad < 0.05 || p.AcceptedLoad > 0.2 {
		t.Fatalf("accepted load %f far from offered 0.1", p.AcceptedLoad)
	}
}

func TestOpenLoopSaturates(t *testing.T) {
	light, err := RunOpenLoop(openSpec(0.1))
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := RunOpenLoop(openSpec(1.5)) // far past saturation
	if err != nil {
		t.Fatal(err)
	}
	// Accepted load saturates well below the offered 1.5.
	if heavy.AcceptedLoad > 0.9 {
		t.Fatalf("accepted load %f did not saturate", heavy.AcceptedLoad)
	}
	if heavy.AcceptedLoad <= light.AcceptedLoad {
		t.Fatalf("saturated throughput %f not above light-load %f",
			heavy.AcceptedLoad, light.AcceptedLoad)
	}
	// Queueing delay diverges past saturation while network transit
	// latency stays bounded.
	if heavy.QueueLatency.Mean < 3*heavy.Latency.Mean {
		t.Fatalf("queueing delay %f did not diverge (transit %f)",
			heavy.QueueLatency.Mean, heavy.Latency.Mean)
	}
}

func TestOpenLoopQueueBound(t *testing.T) {
	driver := &OpenLoop{Load: 5, MsgBytes: 8, Seed: 1, MaxQueue: 4}
	params := netsim.Params{
		Spec: topo.Figure1(), Width: 8, FastReclaim: true, Seed: 2,
		RetryLimit: 100, OnResult: driver.OnResult,
	}
	n, err := netsim.Build(params)
	if err != nil {
		t.Fatal(err)
	}
	driver.Bind(n)
	n.Run(2000)
	for e, ep := range n.Endpoints {
		// Retried messages requeue at the front, so the backlog can
		// briefly exceed the generation bound by the in-flight count
		// (two senders per endpoint).
		if ep.QueueLen() > 4+2 {
			t.Fatalf("endpoint %d queue %d exceeds bound", e, ep.QueueLen())
		}
	}
	if driver.Injected() == 0 {
		t.Fatal("no messages generated")
	}
}

func TestSweepOpenLoop(t *testing.T) {
	points, err := SweepOpenLoop(openSpec(0), []float64{0.1, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || points[0].Messages == 0 || points[1].Messages == 0 {
		t.Fatalf("sweep incomplete: %+v", points)
	}
}
