package nic

import "metro/internal/word"

// parser interprets the reversed-stream reply a source receives after its
// TURN: one STATUS+CHECKSUM pair per router stage (in path order), then the
// destination's STATUS+CHECKSUM, an optional reply payload with its own
// checksum, and the TURN handing the channel back. A blocked connection
// ends instead with the blocking router's STATUS(blocked), its checksum,
// and a DROP.
type parser struct {
	width   int // physical component width (router checksum chunks)
	logical int // logical channel width (destination/reply checksums)
	lanes   int // cascade factor
	stages  int

	phase  pPhase
	ckbuf  []word.Word
	ckNeed int

	// routerCks[stage*lanes+lane] is the CRC-8 each lane's routing
	// component reported for that stage — flat with stride lanes, so the
	// buffer recycles across attempts without per-stage allocations. On
	// an uncascaded channel lanes == 1.
	routerCks    []uint8
	curBlocked   bool
	blockedStage int

	destStatus uint32
	destCk     uint8

	reply      []word.Word
	replyCk    uint8
	gotReplyCk bool

	done   bool
	closed bool
	failed bool
}

type pPhase uint8

const (
	pStatus    pPhase = iota // awaiting a STATUS (router or destination)
	pRouterCk                // collecting a router status' checksum words
	pDestCk                  // collecting the destination's checksum words
	pReply                   // collecting reply payload
	pReplyCk                 // collecting the reply checksum words
	pAwaitTurn               // reply checksum done; expecting TURN
	pAwaitDrop               // blocked status seen; expecting DROP
)

func newParser(width, logical, lanes, stages int) parser {
	var p parser
	p.reset(width, logical, lanes, stages)
	return p
}

// reset rearms the parser for a new attempt while keeping the checksum,
// router-report and reply buffers, so a sender's steady-state retry loop
// never allocates.
func (p *parser) reset(width, logical, lanes, stages int) {
	if lanes < 1 {
		lanes = 1
	}
	if logical <= 0 {
		logical = width * lanes
	}
	p.width, p.logical, p.lanes, p.stages = width, logical, lanes, stages
	p.phase = pStatus
	p.ckbuf = p.ckbuf[:0]
	p.ckNeed = 0
	p.routerCks = p.routerCks[:0]
	p.curBlocked = false
	p.blockedStage = -1
	p.destStatus, p.destCk = 0, 0
	p.reply = p.reply[:0]
	p.replyCk, p.gotReplyCk = 0, false
	p.done, p.closed, p.failed = false, false, false
}

// stageCount returns how many router status groups have been parsed.
func (p *parser) stageCount() int { return len(p.routerCks) / p.lanes }

// feed consumes one received word. Empty and DataIdle are transparent
// everywhere (idle fill is inserted freely by routers).
//
//metrovet:width parser widths come from newParser(cfg.Width, logicalWidth, ...), both validated into [1,32] by nic.New
func (p *parser) feed(w word.Word) {
	if p.done || p.closed || p.failed {
		return
	}
	//metrovet:nonexhaustive the remaining kinds fall through to the phase machine below
	switch w.Kind {
	case word.Empty, word.DataIdle:
		return
	case word.Drop:
		// Connection closed by the far side: expected after a blocked
		// status, an error anywhere else — either way the attempt is over.
		p.closed = true
		return
	}

	switch p.phase {
	case pStatus:
		if w.Kind != word.Status {
			p.failed = true
			return
		}
		if w.Payload&word.StatusDest != 0 {
			p.destStatus = w.Payload
			p.startCk(pDestCk)
			return
		}
		p.curBlocked = w.Payload&word.StatusBlocked != 0
		p.startCk(pRouterCk)

	case pRouterCk, pDestCk, pReplyCk:
		if w.Kind != word.ChecksumWord {
			p.failed = true
			return
		}
		//metrovet:alloc buffer reused across groups; bounded by the checksum word count
		p.ckbuf = append(p.ckbuf, w)
		if len(p.ckbuf) < p.ckNeed {
			return
		}
		//metrovet:nonexhaustive only the three checksum-collection phases reach this switch
		switch p.phase {
		case pRouterCk:
			// Each lane's component reported its own CRC; the merged
			// stream interleaves the chunks lane-wise within each word.
			//metrovet:alloc grows to stages*lanes once, then recycles across attempts
			p.routerCks = appendLaneChecksums(p.routerCks, p.ckbuf, p.width, p.lanes)
			if p.curBlocked {
				p.blockedStage = p.stageCount() - 1
				p.phase = pAwaitDrop
			} else {
				p.phase = pStatus
			}
		case pDestCk:
			p.destCk = word.JoinChecksum(p.ckbuf, p.logical)
			p.phase = pReply
		case pReplyCk:
			p.replyCk = word.JoinChecksum(p.ckbuf, p.logical)
			p.gotReplyCk = true
			p.phase = pAwaitTurn
		}

	case pReply:
		switch w.Kind {
		case word.Data:
			//metrovet:alloc buffer grows to the reply size, once per message
			p.reply = append(p.reply, w)
		case word.ChecksumWord:
			p.startCk(pReplyCk)
			p.feed(w)
		case word.Turn:
			p.done = true
		case word.Empty, word.Route, word.HeaderPad, word.DataIdle,
			word.Status, word.Drop:
			// Empty, DataIdle and Drop were consumed above; Route, HeaderPad
			// or Status inside a reply is a protocol violation.
			p.failed = true
		}

	case pAwaitTurn:
		if w.Kind == word.Turn {
			p.done = true
		} else {
			p.failed = true
		}

	case pAwaitDrop:
		// Only a DROP (handled above) legitimately follows; anything else
		// is noise on a dying connection — ignore it.
	}
}

// startCk arms collection of the next checksum-word group.
//
//metrovet:width parser widths come from newParser(cfg.Width, logicalWidth, ...), both validated into [1,32] by nic.New
func (p *parser) startCk(next pPhase) {
	p.phase = next
	p.ckbuf = p.ckbuf[:0]
	if next == pRouterCk {
		// Router checksums are produced at the physical component width
		// (one group per lane, transmitted in lockstep).
		p.ckNeed = word.ChecksumWords(p.width)
	} else {
		p.ckNeed = word.ChecksumWords(p.logical)
	}
}

// appendLaneChecksums reconstructs each lane's CRC-8 from the merged
// checksum words and appends them to dst: word k of the group carries lane
// m's k-th chunk in bit positions [m*width, (m+1)*width). The join mirrors
// word.JoinChecksum over the virtual per-lane chunk stream, without
// materializing it.
//
//metrovet:alloc appends into the recycled routerCks buffer; steady state reuses capacity
//metrovet:width lane < lanes and width = cfg.Width, so lane*width < Width*Lanes <= 32 (validated by nic.New)
//metrovet:truncate lane and width are nonnegative (loop index and validated channel width)
func appendLaneChecksums(dst []uint8, merged []word.Word, width, lanes int) []uint8 {
	if width < 1 {
		// Matches JoinChecksum's clamp: a nonpositive width joins to zero.
		for lane := 0; lane < lanes; lane++ {
			dst = append(dst, 0)
		}
		return dst
	}
	for lane := 0; lane < lanes; lane++ {
		var v uint32
		shift := 0
		for _, w := range merged {
			v |= ((w.Payload >> uint(lane*width)) & word.Mask(width)) << uint(shift)
			shift += width
			if shift >= 8 {
				break
			}
		}
		dst = append(dst, uint8(v&0xff))
	}
	return dst
}
