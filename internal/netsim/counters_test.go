package netsim

import (
	"testing"

	"metro/internal/core"
	"metro/internal/topo"
)

// TestCountersStructuredIdentity checks that aggregation keys on the
// RouterID stage directly: cascade lanes fold into their logical stage,
// and unplaced routers (FreeID) report under stage -1 instead of being
// misparsed.
func TestCountersStructuredIdentity(t *testing.T) {
	c := NewCounters()
	c.Allocated(1, core.RouterID{Stage: 2, Index: 11, Lane: 0}, 0, 0)
	c.Allocated(2, core.RouterID{Stage: 2, Index: 4, Lane: 1}, 0, 0) // cascade lane, same stage
	c.Blocked(3, core.RouterID{Stage: 0, Index: 0, Lane: 0}, 0, 0, true)
	c.Allocated(4, core.FreeID(), 0, 0) // unplaced router
	stats := c.PerStage(3)
	if stats[2].Allocated != 2 {
		t.Errorf("stage 2 allocated = %d, want 2 (lane events must fold in)", stats[2].Allocated)
	}
	if stats[0].Blocked != 1 {
		t.Errorf("stage 0 blocked = %d, want 1", stats[0].Blocked)
	}
	for _, s := range stats {
		if s.Stage == 2 {
			continue
		}
		if s.Allocated != 0 {
			t.Errorf("stage %d allocated = %d, want 0 (FreeID must not leak into real stages)", s.Stage, s.Allocated)
		}
	}
}

func TestCountersAggregatePerStage(t *testing.T) {
	counters := NewCounters()
	n, err := Build(Params{
		Spec: topo.Figure1(), Width: 8, DataPipe: 1, LinkDelay: 1,
		FastReclaim: true, Seed: 3, RetryLimit: 500, Tracer: counters,
	})
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 16; src++ {
		for d := 1; d <= 4; d++ {
			n.Send(src, (src+d*3)%16, []byte{byte(src)})
		}
	}
	if !n.RunUntilQuiet(500000) {
		t.Fatal("network did not go quiet")
	}
	stats := counters.PerStage(3)
	totalAlloc := uint64(0)
	for _, s := range stats {
		totalAlloc += s.Allocated
		if s.Allocated == 0 {
			t.Errorf("stage %d saw no allocations", s.Stage)
		}
		if s.Allocated < s.Reversed/2 {
			t.Errorf("stage %d reversal count inconsistent: %+v", s.Stage, s)
		}
	}
	// Every successful message allocates once per stage; blocked attempts
	// allocate in their prefix stages. So stage 0 must see at least as
	// many allocations as any later stage.
	if stats[0].Allocated < stats[2].Allocated {
		t.Errorf("allocation counts should not grow downstream: %+v", stats)
	}
	if counters.String() == "" {
		t.Error("String() empty")
	}
	// Blocking rate well-defined.
	for _, s := range stats {
		if r := s.BlockRate(); r < 0 || r >= 1 {
			t.Errorf("stage %d block rate %f out of range", s.Stage, r)
		}
	}
}
