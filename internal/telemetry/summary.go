package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"metro/internal/stats"
)

// MessageStats is the reconstructed lifecycle of one message: the
// cycle-stamps of its phase boundaries and its failure/retry counts,
// recovered from the EvMsg* events in a trace.
type MessageStats struct {
	ID        uint64
	Src, Dest int

	Queued       uint64 // EvMsgQueued
	FirstAttempt uint64 // first EvMsgAttempt
	LastAttempt  uint64 // last EvMsgAttempt
	LastTurn     uint64 // last EvMsgTurnSent
	Done         uint64 // EvMsgDelivered / EvMsgFailed

	Attempts        int
	Retries         int
	BlockedFast     int
	BlockedDetailed int
	ChecksumFails   int
	Timeouts        int

	Delivered bool
	// Complete reports whether the full lifecycle — queue entry through
	// final disposition — lies inside the trace window. The flight
	// recorder overwrites oldest events first, so a long run's early
	// messages may be clipped; only complete messages enter the latency
	// samples.
	Complete bool

	hasQueued, hasDone, hasTurn bool
}

// TotalLatency is queue entry to final disposition.
func (m *MessageStats) TotalLatency() uint64 { return m.Done - m.Queued }

// QueueWait is queue entry to the first transmission attempt.
func (m *MessageStats) QueueWait() uint64 { return m.FirstAttempt - m.Queued }

// RetryWait is the time consumed by failed attempts: first attempt to
// the start of the final (successful or last) attempt.
func (m *MessageStats) RetryWait() uint64 { return m.LastAttempt - m.FirstAttempt }

// Transmit is the final attempt's path setup plus data streaming: attempt
// start to TURN transmitted.
func (m *MessageStats) Transmit() uint64 { return m.LastTurn - m.LastAttempt }

// Turnaround is TURN transmitted to final disposition: the network
// reversal plus the reply stream.
func (m *MessageStats) Turnaround() uint64 { return m.Done - m.LastTurn }

// ConnStageStats aggregates the router connection events of one stage —
// the structured replacement for the name-parsing Counters aggregation.
// With CascadeWidth > 1 every lane contributes its own events.
type ConnStageStats struct {
	Stage                        int
	Setup                        uint64
	BlockedFast, BlockedDetailed uint64
	Turned, Released             uint64
}

// BlockRate returns blocked / (blocked + setup) for the stage.
func (s ConnStageStats) BlockRate() float64 {
	blocked := s.BlockedFast + s.BlockedDetailed
	total := blocked + s.Setup
	if total == 0 {
		return 0
	}
	return float64(blocked) / float64(total)
}

// GaugeSeries condenses one gauge stream (kind, and stage for the
// per-stage gauges; -1 otherwise).
type GaugeSeries struct {
	Stage   int
	Kind    Kind
	Samples int
	Mean    float64
	Max     float64
}

// Summary is the offline aggregation of a recorded trace: event counts,
// per-stage connection structure, reconstructed message lifecycles with
// per-phase latency samples, and gauge series.
type Summary struct {
	Events                int
	Total, Dropped        uint64
	FirstCycle, LastCycle uint64

	Counts [len(kindNames)]int

	Conn []ConnStageStats

	Msgs                          []*MessageStats
	Delivered, Failed, Incomplete int
	Arrived, ArrivedIntact        int

	TotalLat, QueueWait, RetryWait, Transmit, Turnaround stats.Sample

	Gauges []GaugeSeries
}

// Summarize aggregates a trace. Events are processed in cycle order
// (stable-sorted: the recorder ring is near-sorted, with only
// epilogue-emitted events landing a flush late).
func Summarize(t Trace) *Summary {
	events := make([]Event, len(t.Events))
	copy(events, t.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Cycle < events[j].Cycle })

	s := &Summary{Events: len(events), Total: t.Total}
	s.Dropped = t.Total - uint64(len(events))
	if len(events) > 0 {
		s.FirstCycle = events[0].Cycle
		s.LastCycle = events[len(events)-1].Cycle
	}

	msgs := map[uint64]*MessageStats{}
	connByStage := map[int]*ConnStageStats{}
	type gaugeKey struct {
		kind  Kind
		stage int
	}
	gauges := map[gaugeKey]*stats.Sample{}

	msgOf := func(e Event) *MessageStats {
		m := msgs[e.Msg]
		if m == nil {
			m = &MessageStats{ID: e.Msg, Src: int(e.Src.Index), Dest: -1}
			msgs[e.Msg] = m
		}
		return m
	}
	connOf := func(stage int) *ConnStageStats {
		c := connByStage[stage]
		if c == nil {
			c = &ConnStageStats{Stage: stage}
			connByStage[stage] = c
		}
		return c
	}

	for _, e := range events {
		if int(e.Kind) < len(s.Counts) {
			s.Counts[e.Kind]++
		}
		switch e.Kind {
		case EvNone:
			// Absent from recorded traces by construction.
		case EvMsgQueued:
			m := msgOf(e)
			m.Queued, m.hasQueued = e.Cycle, true
			m.Dest = int(e.A)
		case EvMsgAttempt:
			m := msgOf(e)
			if m.Attempts == 0 {
				m.FirstAttempt = e.Cycle
			}
			m.Attempts++
			m.LastAttempt = e.Cycle
		case EvMsgTurnSent:
			m := msgOf(e)
			m.LastTurn, m.hasTurn = e.Cycle, true
		case EvMsgBlockedFast:
			msgOf(e).BlockedFast++
		case EvMsgBlockedDetailed:
			msgOf(e).BlockedDetailed++
		case EvMsgChecksumFail:
			msgOf(e).ChecksumFails++
		case EvMsgTimeout:
			msgOf(e).Timeouts++
		case EvMsgRetried:
			msgOf(e).Retries = int(e.A)
		case EvMsgDelivered, EvMsgFailed:
			m := msgOf(e)
			m.Done, m.hasDone = e.Cycle, true
			m.Delivered = e.Kind == EvMsgDelivered
			m.Retries = int(e.A)
			m.Dest = int(e.B)
		case EvMsgArrived:
			s.Arrived++
			if e.A == 1 {
				s.ArrivedIntact++
			}
		case EvConnSetup:
			connOf(int(e.Src.Stage)).Setup++
		case EvConnBlockedFast:
			connOf(int(e.Src.Stage)).BlockedFast++
		case EvConnBlockedDetailed:
			connOf(int(e.Src.Stage)).BlockedDetailed++
		case EvConnTurned:
			connOf(int(e.Src.Stage)).Turned++
		case EvConnReleased:
			connOf(int(e.Src.Stage)).Released++
		case EvFault:
			// Counted in Counts; faults carry no aggregate beyond that.
		case EvGaugeConns, EvGaugeBusyPorts, EvGaugeQueueDepth, EvGaugeInFlight:
			key := gaugeKey{e.Kind, int(e.Src.Stage)}
			g := gauges[key]
			if g == nil {
				g = &stats.Sample{}
				gauges[key] = g
			}
			g.Add(float64(e.A))
		}
	}

	// Messages, ID-sorted for deterministic output.
	for _, m := range msgs {
		m.Complete = m.hasQueued && m.hasDone && m.Attempts > 0 && m.hasTurn
		s.Msgs = append(s.Msgs, m)
	}
	sort.Slice(s.Msgs, func(i, j int) bool { return s.Msgs[i].ID < s.Msgs[j].ID })
	for _, m := range s.Msgs {
		switch {
		case !m.hasQueued || !m.hasDone:
			s.Incomplete++
			continue
		case m.Delivered:
			s.Delivered++
		default:
			s.Failed++
		}
		if !m.Complete {
			s.Incomplete++
			continue
		}
		s.TotalLat.Add(float64(m.TotalLatency()))
		s.QueueWait.Add(float64(m.QueueWait()))
		s.RetryWait.Add(float64(m.RetryWait()))
		s.Transmit.Add(float64(m.Transmit()))
		s.Turnaround.Add(float64(m.Turnaround()))
	}

	// Connection stages, dense and stage-sorted.
	stages := make([]int, 0, len(connByStage))
	for st := range connByStage {
		stages = append(stages, st)
	}
	sort.Ints(stages)
	for _, st := range stages {
		s.Conn = append(s.Conn, *connByStage[st])
	}

	// Gauge series, (kind, stage)-sorted.
	keys := make([]gaugeKey, 0, len(gauges))
	for k := range gauges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].stage < keys[j].stage
	})
	for _, k := range keys {
		g := gauges[k]
		s.Gauges = append(s.Gauges, GaugeSeries{
			Stage: k.stage, Kind: k.kind,
			Samples: g.Count(), Mean: g.Mean(), Max: g.Max(),
		})
	}
	return s
}

// Render formats the summary as the metrotrace -summary report.
func (s *Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events (recorded %d, dropped %d), cycles [%d, %d]\n",
		s.Events, s.Total, s.Dropped, s.FirstCycle, s.LastCycle)

	b.WriteString("\nevents:\n")
	for k, n := range s.Counts {
		if n > 0 {
			fmt.Fprintf(&b, "  %-22s %d\n", Kind(k).String(), n)
		}
	}

	if len(s.Conn) > 0 {
		b.WriteString("\nconnections per stage:\n")
		tbl := stats.Table{Header: []string{"stage", "setup", "blocked-fast", "blocked-detailed", "turned", "released", "block-rate"}}
		for _, c := range s.Conn {
			tbl.Add(fmt.Sprintf("%d", c.Stage), fmt.Sprintf("%d", c.Setup),
				fmt.Sprintf("%d", c.BlockedFast), fmt.Sprintf("%d", c.BlockedDetailed),
				fmt.Sprintf("%d", c.Turned), fmt.Sprintf("%d", c.Released),
				fmt.Sprintf("%.3f", c.BlockRate()))
		}
		b.WriteString(tbl.String())
	}

	fmt.Fprintf(&b, "\nmessages: %d traced, %d delivered, %d failed, %d window-clipped\n",
		len(s.Msgs), s.Delivered, s.Failed, s.Incomplete)
	if s.Arrived > 0 {
		fmt.Fprintf(&b, "arrivals: %d turns verified at destinations, %d intact\n",
			s.Arrived, s.ArrivedIntact)
	}
	if s.TotalLat.Count() > 0 {
		b.WriteString("\nlatency breakdown (cycles, complete messages):\n")
		tbl := stats.Table{Header: []string{"phase", "count", "mean", "p50", "p95", "max"}}
		row := func(name string, sm *stats.Sample) {
			tbl.Add(name, fmt.Sprintf("%d", sm.Count()), fmt.Sprintf("%.1f", sm.Mean()),
				fmt.Sprintf("%.0f", sm.Percentile(50)), fmt.Sprintf("%.0f", sm.Percentile(95)),
				fmt.Sprintf("%.0f", sm.Max()))
		}
		row("total", &s.TotalLat)
		row("queue-wait", &s.QueueWait)
		row("retry-wait", &s.RetryWait)
		row("transmit", &s.Transmit)
		row("turnaround", &s.Turnaround)
		b.WriteString(tbl.String())
	}

	if len(s.Gauges) > 0 {
		b.WriteString("\ngauges:\n")
		tbl := stats.Table{Header: []string{"gauge", "samples", "mean", "max"}}
		for _, g := range s.Gauges {
			name := g.Kind.String()
			if g.Stage >= 0 {
				name = fmt.Sprintf("%s.s%d", g.Kind, g.Stage)
			}
			tbl.Add(name, fmt.Sprintf("%d", g.Samples),
				fmt.Sprintf("%.2f", g.Mean), fmt.Sprintf("%.0f", g.Max))
		}
		b.WriteString(tbl.String())
	}
	return b.String()
}
