// metroscan demonstrates METRO's complete on-line fault diagnosis flow
// (paper, Section 5.1, Scan Support) on a simulated network with an
// injected fault:
//
//  1. DETECT  — run traffic; end-to-end checksums NACK corrupted messages
//     and per-router checksum comparison localizes the suspect stage.
//  2. ISOLATE — disable the suspect links' port pairs over the scan
//     CONFIG register (the rest of the network keeps routing).
//  3. TEST    — drive EXTEST patterns from each upstream router's
//     boundary register and SAMPLE at the downstream router, localizing
//     the faulty link and its stuck bits.
//  4. MASK    — leave the faulty port disabled, re-enable the healthy
//     ones, and verify traffic now runs corruption-free.
//
// Usage:
//
//	metroscan                      # default fault: stuck bit 0 at s1r2
//	metroscan -stage 0 -router 3 -bit 2
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"metro"
	"metro/internal/netsim"
	"metro/internal/scan"
	"metro/internal/topo"
	"metro/internal/word"
)

func main() {
	stage := flag.Int("stage", 1, "stage of the faulty router's outputs")
	router := flag.Int("router", 2, "router index within the stage")
	bit := flag.Uint("bit", 0, "stuck-high payload bit")
	seed := flag.Int64("seed", 33, "simulation seed")
	flag.Parse()

	params := netsim.Params{
		Spec:          metro.Figure1Topology(),
		Width:         8,
		DataPipe:      1,
		LinkDelay:     1,
		FastReclaim:   true,
		Seed:          *seed,
		RetryLimit:    300,
		ListenTimeout: 200,
	}
	n, err := netsim.Build(params)
	if err != nil {
		fatal(err)
	}
	if *stage >= len(params.Spec.Stages) || *router >= len(n.Routers[*stage]) {
		fatal(fmt.Errorf("no router s%dr%d in this network", *stage, *router))
	}

	// Attach scan infrastructure to every router.
	taps := make([][]*scan.MultiTAP, len(n.Routers))
	for s := range n.Routers {
		taps[s] = make([]*scan.MultiTAP, len(n.Routers[s]))
		for j, r := range n.Routers[s] {
			taps[s][j] = scan.NewMultiTAP(r, uint32(s)<<8|uint32(j))
			n.Engine.Add(taps[s][j].Boundary())
		}
	}

	// The fault: every output link of the chosen router has one payload
	// bit stuck high.
	outputs := n.Routers[*stage][*router].Config().Outputs
	var plan metro.FaultPlan
	for bp := 0; bp < outputs; bp++ {
		plan = append(plan, metro.FaultEvent{
			Kind: metro.FaultLinkStuckBit, Stage: *stage, Index: *router,
			Port: bp, Bit: *bit,
		})
	}
	metro.InjectFaults(n, plan)
	fmt.Printf("injected: payload bit %d stuck high on all outputs of s%dr%d\n\n",
		*bit, *stage, *router)

	// Phase 1 — detect. Payload bytes have the stuck bit clear so every
	// crossing is corrupted.
	fmt.Println("phase 1: detect via end-to-end and per-stage checksums")
	suspects := runTraffic(n)
	stages := make([]int, 0, len(suspects))
	for s := range suspects {
		stages = append(stages, s)
	}
	sort.Ints(stages) // deterministic listing; the golden test pins this output
	suspectStage := -1
	for _, s := range stages {
		if count := suspects[s]; count > 0 {
			fmt.Printf("  %d corrupted attempts localized to stage %d inputs\n", count, s)
			if suspectStage < 0 || suspects[s] > suspects[suspectStage] {
				suspectStage = s
			}
		}
	}
	if suspectStage <= 0 {
		fmt.Println("  no corruption observed — nothing to diagnose")
		return
	}
	upStage := suspectStage - 1
	fmt.Printf("  suspect: links from stage %d into stage %d\n\n", upStage, suspectStage)

	// Phase 2+3 — isolate and boundary-test every candidate link.
	fmt.Println("phase 2/3: isolate port pairs over scan and run EXTEST/SAMPLE")
	type verdict struct {
		j, bp     int
		stuckHigh uint32
	}
	var faulty []verdict
	for j := range n.Routers[upStage] {
		for bp := 0; bp < n.Routers[upStage][j].Config().Outputs; bp++ {
			ref := n.Topo.Out[upStage][j][bp]
			if ref.Kind != topo.KindRouter {
				continue
			}
			mask := boundaryTest(n, taps, upStage, j, bp, ref)
			if mask != 0 {
				faulty = append(faulty, verdict{j, bp, mask})
				fmt.Printf("  s%dr%d.b%d -> %v: FAULTY, stuck-high mask %#x\n",
					upStage, j, bp, ref, mask)
			}
		}
	}
	if len(faulty) == 0 {
		fmt.Println("  no link failed the boundary test")
		return
	}

	// Phase 4 — mask the faulty ports and verify.
	fmt.Println("\nphase 4: mask faulty ports over scan and verify")
	for _, f := range faulty {
		scan.SetPortEnabled(taps[upStage][f.j], n.Routers[upStage][f.j], true, f.bp, false)
	}
	after := runTraffic(n)
	total := 0
	for _, c := range after {
		total += c
	}
	fmt.Printf("  with %d port(s) masked: %d corrupted attempts in the verification run\n",
		len(faulty), total)
	if total == 0 {
		fmt.Println("  fault masked; system returned to service")
	}
}

// runTraffic sends a burst across the network and returns corrupted-attempt
// counts per suspect stage.
func runTraffic(n *netsim.Network) map[int]int {
	spec := n.Params.Spec
	for src := 0; src < spec.Endpoints; src++ {
		for d := 1; d <= 4; d++ {
			n.Send(src, (src+d*3)%spec.Endpoints, []byte{0x00, 0x02, 0x04, 0x06})
		}
	}
	if !n.RunUntilQuiet(2000000) {
		fatal(fmt.Errorf("network did not go quiet"))
	}
	suspects := map[int]int{}
	for _, r := range n.TakeResults() {
		if r.SuspectStage >= 0 {
			suspects[r.SuspectStage] += r.ChecksumFailures
		}
	}
	return suspects
}

// boundaryTest isolates the link (upStage, j, bp) -> ref, drives walking
// patterns from the upstream boundary register via its TAP, samples at the
// downstream router's TAP, and returns the stuck-high mask (0 = healthy).
// Ports are re-enabled afterward.
func boundaryTest(n *netsim.Network, taps [][]*scan.MultiTAP, upStage, j, bp int, ref topo.PortRef) uint32 {
	up := n.Routers[upStage][j]
	down := n.Routers[ref.Stage][ref.Index]
	upTAP := taps[upStage][j]
	downTAP := taps[ref.Stage][ref.Index]

	// Isolate the pair over the scan CONFIG register (read-modify-write
	// through the TAPs), and restore afterward the same way.
	scan.SetPortEnabled(upTAP, up, true, bp, false)
	scan.SetPortEnabled(downTAP, down, false, ref.Port, false)
	defer scan.SetPortEnabled(upTAP, up, true, bp, true)
	defer scan.SetPortEnabled(downTAP, down, false, ref.Port, true)

	dUp := scan.NewDriver(upTAP.TAPs()[0])
	dUp.Reset()
	dDown := scan.NewDriver(downTAP.TAPs()[0])
	dDown.Reset()

	width := up.Config().Width
	stuckHigh := word.Mask(width)
	patterns := []uint32{0, word.Mask(width)}
	for b := 0; b < width; b++ {
		patterns = append(patterns, 1<<uint(b))
	}
	for _, p := range patterns {
		dUp.WriteRegister(scan.EXTEST, upTAP.Boundary().OutputCellBits(map[int]uint32{bp: p}))
		n.Run(3)
		img := dDown.ReadRegister(scan.SAMPLE, downTAP.Boundary().Len())
		got := downTAP.Boundary().InputCell(img, ref.Port)
		stuckHigh &= got
	}
	upTAP.Boundary().Release()
	n.Run(2)
	return stuckHigh
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "metroscan:", err)
	os.Exit(1)
}
