package analysis

import (
	"fmt"
	"go/ast"
	"regexp"
)

// invariantFuncRE matches exported structural-audit entry points like
// CheckInvariants or CheckNetworkInvariant.
var invariantFuncRE = regexp.MustCompile(`^Check\w*Invariants?$`)

// InvariantCoverage returns the invariant-coverage analyzer. An exported
// CheckInvariants-style auditor that no test in its package calls is
// dead armor: the invariants it encodes stop being checked the moment
// the last external caller drifts away, and regressions in the state
// machine go unnoticed. Every package exporting such a function must
// exercise it from at least one of its own tests.
func InvariantCoverage() *Analyzer {
	return &Analyzer{
		Name: "invariant-coverage",
		Doc:  "flag exported Check…Invariants functions not called from any test in the same package",
		Run:  runInvariantCoverage,
	}
}

func runInvariantCoverage(p *Package) []Finding {
	if !isInternal(p.ImportPath) {
		return nil
	}
	type invFunc struct {
		name string
		decl *ast.FuncDecl
	}
	var funcs []invFunc
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !invariantFuncRE.MatchString(fd.Name.Name) || !ast.IsExported(fd.Name.Name) {
				continue
			}
			funcs = append(funcs, invFunc{fd.Name.Name, fd})
		}
	}
	if len(funcs) == 0 {
		return nil
	}

	// Collect every function name called from this package's tests
	// (in-package and external), whether directly or via a selector.
	called := map[string]bool{}
	testFiles := append(append([]*ast.File{}, p.TestFiles...), p.XTestFiles...)
	for _, f := range testFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				called[fun.Name] = true
			case *ast.SelectorExpr:
				called[fun.Sel.Name] = true
			}
			return true
		})
	}

	var out []Finding
	for _, fn := range funcs {
		if called[fn.name] {
			continue
		}
		pos := p.Fset.Position(fn.decl.Name.Pos())
		if p.suppressed("invariant-coverage", "ignore", pos) {
			continue
		}
		out = append(out, Finding{
			Pos:  pos,
			Rule: "invariant-coverage",
			Msg: fmt.Sprintf("exported %s is not called from any test in %s; invariants that tests never run do not protect anything",
				fn.name, p.ImportPath),
		})
	}
	return out
}
