// Distributed shared memory over METRO: the paper's motivating use case
// for connection reversal (Section 5.1).
//
// A low-latency distributed-memory multiprocessor performs a remote read
// by opening a circuit to the owning node, sending the address, and
// TURNing the connection; the reply streams back along the already-open
// path with no second connection setup. When the requested line misses the
// remote cache, the owner holds the reversed connection open with
// DATA-IDLE words while the memory access completes — exactly the
// variable-delay reply mechanism this example demonstrates.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"metro"
)

// memory is each node's local store: 64 lines of 16 bytes.
type memory struct {
	lines  [64][16]byte
	cached [64]bool // which lines the owner has in cache (fast replies)
}

const (
	cacheHitDelay = 2  // cycles to fetch a cached line
	memoryDelay   = 25 // cycles for a main-memory access
	lineSize      = 16
	requestMagic  = 0x52 // 'R'
)

func main() {
	spec := metro.Figure3Topology() // 64 nodes, radix-4, 3 stages

	// Per-node memory, seeded with recognizable contents.
	mems := make([]*memory, spec.Endpoints)
	for n := range mems {
		mems[n] = &memory{}
		for l := 0; l < 64; l++ {
			binary.LittleEndian.PutUint32(mems[n].lines[l][:4], uint32(n)<<16|uint32(l))
			mems[n].cached[l] = l%4 == 0 // every fourth line is cache-hot
		}
	}

	net, err := metro.BuildNetwork(metro.NetworkParams{
		Spec:        spec,
		Width:       8,
		DataPipe:    1,
		LinkDelay:   1,
		FastReclaim: true,
		Seed:        7,
		// The responder implements the read side of the DSM protocol.
		Responder: func(dest int, req []byte) []byte {
			if len(req) != 2 || req[0] != requestMagic {
				return []byte{0xFF} // protocol error
			}
			line := int(req[1]) % 64
			return mems[dest].lines[line][:]
		},
		// Reply readiness depends on where the line lives.
		ResponderDelay: func(dest int, req []byte) int {
			if len(req) != 2 {
				return 0
			}
			if mems[dest].cached[int(req[1])%64] {
				return cacheHitDelay
			}
			return memoryDelay
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	read := func(node, owner, line int) (data []byte, cycles uint64) {
		res, ok := metro.SendOne(net, node, owner, []byte{requestMagic, byte(line)}, 10000)
		if !ok || !res.Delivered {
			log.Fatalf("read %d->%d line %d failed: %+v", node, owner, line, res)
		}
		return res.Reply, res.Done - res.Injected
	}

	fmt.Println("remote reads over reversed circuit-switched connections:")
	// A cache-hot line and a cache-cold line from the same owner: the
	// latency difference is the memory access, absorbed by DATA-IDLE fill
	// on the open connection.
	hot, hotCycles := read(3, 42, 4)
	cold, coldCycles := read(3, 42, 5)
	fmt.Printf("  node 3 reads node 42 line 4 (cached): %d cycles, line id %#x\n",
		hotCycles, binary.LittleEndian.Uint32(hot[:4]))
	fmt.Printf("  node 3 reads node 42 line 5 (memory): %d cycles, line id %#x\n",
		coldCycles, binary.LittleEndian.Uint32(cold[:4]))
	fmt.Printf("  memory penalty observed: %d cycles (configured %d vs %d)\n",
		coldCycles-hotCycles, memoryDelay, cacheHitDelay)

	// A burst of reads from many nodes to many owners.
	fmt.Println("scatter of 32 remote reads:")
	var total uint64
	for i := 0; i < 32; i++ {
		node := (i * 7) % 64
		owner := (i*13 + 5) % 64
		if owner == node {
			owner = (owner + 1) % 64
		}
		data, cycles := read(node, owner, i%64)
		want := uint32(owner)<<16 | uint32(i%64)
		if binary.LittleEndian.Uint32(data[:4]) != want {
			log.Fatalf("read returned wrong line: %#x != %#x", data[:4], want)
		}
		total += cycles
	}
	fmt.Printf("  all 32 reads correct; mean read latency %.1f cycles\n", float64(total)/32)
}
