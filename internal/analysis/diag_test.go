package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"
)

func diagFixtureFindings() []Finding {
	mk := func(file string, line, col int, rule, msg string) Finding {
		return Finding{
			Pos:  token.Position{Filename: file, Line: line, Column: col},
			Rule: rule,
			Msg:  msg,
		}
	}
	return []Finding{
		mk("internal/core/router.go", 42, 7, "shard-purity", "write to package-level state total"),
		mk("internal/core/router.go", 42, 3, "hot-path-alloc", "make allocates"),
		mk("internal/nic/endpoint.go", 9, 1, "no-wallclock", "time.Now in simulator code"),
	}
}

func TestEveryAnalyzerHasStableID(t *testing.T) {
	seen := map[string]string{}
	for _, a := range Analyzers() {
		id := RuleID(a.Name)
		if id == "MV000" {
			t.Errorf("analyzer %q has no MVnnn entry in ruleIDs", a.Name)
		}
		if prev, dup := seen[id]; dup {
			t.Errorf("ID %s assigned to both %q and %q", id, prev, a.Name)
		}
		seen[id] = a.Name
	}
	if got := RuleID("shard-purity"); got != "MV009" {
		t.Errorf("shard-purity ID = %s, want MV009", got)
	}
}

func TestSortFindingsDeterministic(t *testing.T) {
	fs := diagFixtureFindings()
	SortFindings(fs)
	// Same file and line sort by column; files sort lexically.
	want := []struct {
		file string
		col  int
	}{
		{"internal/core/router.go", 3},
		{"internal/core/router.go", 7},
		{"internal/nic/endpoint.go", 1},
	}
	for i, w := range want {
		if fs[i].Pos.Filename != w.file || fs[i].Pos.Column != w.col {
			t.Errorf("order[%d] = %s col %d, want %s col %d",
				i, fs[i].Pos.Filename, fs[i].Pos.Column, w.file, w.col)
		}
	}
	// Shuffled input converges to the same order.
	shuffled := []Finding{fs[2], fs[0], fs[1]}
	SortFindings(shuffled)
	for i := range fs {
		if shuffled[i] != fs[i] {
			t.Fatalf("sort is input-order dependent at %d", i)
		}
	}
}

func TestFingerprintLineIndependent(t *testing.T) {
	a := diagFixtureFindings()[0]
	b := a
	b.Pos.Line, b.Pos.Column = 999, 1
	if Fingerprint(a) != Fingerprint(b) {
		t.Error("fingerprint must not depend on position within the file")
	}
	c := a
	c.Msg = "different"
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("fingerprint must depend on the message")
	}
}

func TestEncodeJSONByteStable(t *testing.T) {
	fs := diagFixtureFindings()
	SortFindings(fs)
	var one, two bytes.Buffer
	if err := EncodeJSON(&one, fs); err != nil {
		t.Fatal(err)
	}
	if err := EncodeJSON(&two, fs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Error("EncodeJSON is not byte-stable across calls")
	}
	var doc struct {
		Version  int           `json:"version"`
		Count    int           `json:"count"`
		Findings []FindingJSON `json:"findings"`
	}
	if err := json.Unmarshal(one.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Count != 3 || len(doc.Findings) != 3 {
		t.Fatalf("count = %d, findings = %d, want 3", doc.Count, len(doc.Findings))
	}
	if doc.Findings[0].ID != "MV007" || doc.Findings[0].Col != 3 {
		t.Errorf("first finding = %+v, want MV007 at col 3", doc.Findings[0])
	}
	if doc.Findings[0].Fingerprint == "" {
		t.Error("fingerprint missing from JSON finding")
	}

	// Empty finding lists render an empty array, not null.
	one.Reset()
	if err := EncodeJSON(&one, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(one.String(), "null") {
		t.Errorf("empty report must not contain null:\n%s", one.String())
	}
}

func TestEncodeSARIFByteStable(t *testing.T) {
	fs := diagFixtureFindings()
	SortFindings(fs)
	var one, two bytes.Buffer
	if err := EncodeSARIF(&one, fs); err != nil {
		t.Fatal(err)
	}
	if err := EncodeSARIF(&two, fs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Error("EncodeSARIF is not byte-stable across calls")
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Locations []struct {
					PhysicalLocation struct {
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(one.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid SARIF JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version %q runs %d, want 2.1.0 with one run", doc.Version, len(doc.Runs))
	}
	if got := len(doc.Runs[0].Tool.Driver.Rules); got != len(Analyzers()) {
		t.Errorf("driver lists %d rules, want the full set of %d", got, len(Analyzers()))
	}
	if len(doc.Runs[0].Results) != 3 {
		t.Fatalf("results = %d, want 3", len(doc.Runs[0].Results))
	}
	r0 := doc.Runs[0].Results[0]
	if r0.RuleID != "MV007" || r0.Locations[0].PhysicalLocation.Region.StartLine != 42 {
		t.Errorf("first result = %+v, want MV007 at line 42", r0)
	}
	// RuleIndex must point at the matching rules[] entry.
	for _, r := range doc.Runs[0].Results {
		if r.RuleIndex < 0 || doc.Runs[0].Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("ruleIndex %d does not resolve to %s", r.RuleIndex, r.RuleID)
		}
	}
}
