// Width cascading end to end (paper, Section 5.1): a network whose logical
// routers are each built from several narrow components running in
// lockstep on shared random bits, with the wired-AND IN-USE check
// containing faults.
//
// The example measures the bandwidth effect of cascading on real message
// traffic — the cycle-domain analogue of Table 3's cascade rows — and then
// corrupts a single lane to show per-lane checksum detection and recovery.
package main

import (
	"fmt"
	"log"

	"metro"
)

func main() {
	fmt.Println("logical routers from 4-bit components, Figure 1 network, 40-byte messages")
	var base uint64
	for _, c := range []int{1, 2, 4} {
		net, err := metro.BuildNetwork(metro.NetworkParams{
			Spec:         metro.Figure1Topology(),
			Width:        4,
			CascadeWidth: c,
			FastReclaim:  true,
			Seed:         5,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, ok := metro.SendOne(net, 1, 14, make([]byte, 40), 5000)
		if !ok || !res.Delivered {
			log.Fatalf("c=%d delivery failed", c)
		}
		lat := res.Done - res.Injected
		if c == 1 {
			base = lat
		}
		fmt.Printf("  cascade %d (logical width %2d bits): %3d cycles  (%.2fx)\n",
			c, 4*c, lat, float64(base)/float64(lat))
	}

	// Lane fault: bit 0 of one lane of every output of a stage-0 router is
	// stuck. Per-lane checksums catch the corruption, the destination
	// NACKs, and stochastic retries find clean paths.
	fmt.Println("\nsingle-lane stuck bit on one router's outputs:")
	net, err := metro.BuildNetwork(metro.NetworkParams{
		Spec:          metro.Figure1Topology(),
		Width:         4,
		CascadeWidth:  2,
		FastReclaim:   true,
		Seed:          6,
		RetryLimit:    300,
		ListenTimeout: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Fault plans target lane 0; reach lane 1 through the network's lane
	// accessors is internal, so corrupt lane 0 of each output link here.
	var plan metro.FaultPlan
	for bp := 0; bp < 4; bp++ {
		plan = append(plan, metro.FaultEvent{
			Kind: metro.FaultLinkStuckBit, Stage: 0, Index: 1, Port: bp, Bit: 0,
		})
	}
	metro.InjectFaults(net, plan)

	sent, delivered, corrupted := 0, 0, 0
	for src := 0; src < 16; src++ {
		for d := 1; d <= 3; d++ {
			net.Send(src, (src+d*5)%16, []byte{0x00, 0x02, 0x04, 0x06})
			sent++
		}
	}
	if !net.RunUntilQuiet(1000000) {
		log.Fatal("network did not go quiet")
	}
	for _, r := range net.TakeResults() {
		if r.Delivered {
			delivered++
		}
		corrupted += r.ChecksumFailures
	}
	fmt.Printf("  %d/%d messages delivered; %d corrupted attempts detected by\n",
		delivered, sent, corrupted)
	fmt.Println("  per-lane checksums and recovered by stochastic retry")
}
