package main_test

import (
	"testing"

	"metro/internal/clitest"
)

// TestGolden pins the topology explorer's three views of the Figure 1
// network: the stage table, path enumeration between an endpoint pair,
// and the fault-survivability sweep.
func TestGolden(t *testing.T) {
	t.Run("describe", func(t *testing.T) {
		clitest.Golden(t, "describe", "metrotopo")
	})
	t.Run("paths", func(t *testing.T) {
		clitest.Golden(t, "paths", "metrotopo", "-paths", "6,15")
	})
	t.Run("survive", func(t *testing.T) {
		clitest.Golden(t, "survive", "metrotopo", "-survive")
	})
}
