package scan

import (
	"testing"

	"metro/internal/core"
	"metro/internal/link"
	"metro/internal/prng"
	"metro/internal/word"
)

func testRouter() *core.Router {
	cfg := core.Config{Inputs: 4, Outputs: 4, Width: 4, MaxDilation: 2,
		HeaderWords: 0, DataPipe: 1, MaxVTD: 4, RandomInputs: 2, ScanPaths: 3}
	return core.NewRouter("r", cfg, core.DefaultSettings(cfg), prng.NewLFSR(1))
}

func TestTAPStateDiagram(t *testing.T) {
	// Walk the canonical DR scan sequence from Run-Test/Idle.
	s := RunTestIdle
	seq := []struct {
		tms  bool
		want State
	}{
		{true, SelectDRScan},
		{false, CaptureDR},
		{false, ShiftDR},
		{false, ShiftDR},
		{true, Exit1DR},
		{false, PauseDR},
		{true, Exit2DR},
		{false, ShiftDR},
		{true, Exit1DR},
		{true, UpdateDR},
		{false, RunTestIdle},
	}
	for i, step := range seq {
		s = s.Next(step.tms)
		if s != step.want {
			t.Fatalf("step %d: state %v, want %v", i, s, step.want)
		}
	}
}

func TestTAPResetFromAnywhere(t *testing.T) {
	// Five TMS=1 clocks reach Test-Logic-Reset from every state.
	for s := TestLogicReset; s <= UpdateIR; s++ {
		cur := s
		for i := 0; i < 5; i++ {
			cur = cur.Next(true)
		}
		if cur != TestLogicReset {
			t.Errorf("five TMS=1 from %v landed in %v", s, cur)
		}
	}
}

func TestIDCodeReadback(t *testing.T) {
	tap := NewTAP("t", 0x1234ABCD, nil)
	d := NewDriver(tap)
	d.Reset()
	if got := d.ReadIDCode(); got != 0x1234ABCD {
		t.Fatalf("IDCODE = %#x", got)
	}
}

func TestInstructionLoadAndBypass(t *testing.T) {
	tap := NewTAP("t", 1, nil)
	d := NewDriver(tap)
	d.Reset()
	d.LoadInstruction(BYPASS)
	if tap.Instruction() != BYPASS {
		t.Fatalf("instruction = %v", tap.Instruction())
	}
	// The bypass register is one bit: shifting 8 bits returns the input
	// delayed by one.
	in := UintToBits(0b10110010, 8)
	out := d.ShiftData(8, in)
	for i := 1; i < 8; i++ {
		if out[i] != in[i-1] {
			t.Fatalf("bypass delay wrong at bit %d: out=%v in=%v", i, out, in)
		}
	}
}

func TestResetSelectsIDCODE(t *testing.T) {
	tap := NewTAP("t", 7, nil)
	d := NewDriver(tap)
	d.LoadInstruction(BYPASS)
	d.Reset()
	if tap.Instruction() != IDCODE {
		t.Fatal("reset should select IDCODE")
	}
}

func TestSettingsRegisterRoundTrip(t *testing.T) {
	r := testRouter()
	reg := NewSettingsRegister(r)
	bits := reg.Capture()
	if len(bits) != reg.Len() {
		t.Fatalf("capture length %d != Len %d", len(bits), reg.Len())
	}
	// Mutate: disable forward port 1 and backward port 2, set dilation 1.
	set := r.Settings()
	set.Dilation = 1
	set.ForwardEnabled[1] = false
	set.BackwardEnabled[2] = false
	set.FastReclaim[0] = false
	set.TurnDelay[3] = 3
	r2 := testRouter()
	reg2 := NewSettingsRegister(r2)
	if err := r.ApplySettings(set); err != nil {
		t.Fatal(err)
	}
	// Serialize r's settings and load them into r2 over scan.
	reg2.Update(reg.Capture())
	got := r2.Settings()
	if got.Dilation != 1 || got.ForwardEnabled[1] || got.BackwardEnabled[2] ||
		got.FastReclaim[0] || got.TurnDelay[3] != 3 {
		t.Fatalf("settings did not survive scan round trip: %+v", got)
	}
}

func TestConfigOverTAP(t *testing.T) {
	r := testRouter()
	mt := NewMultiTAP(r, 0x00C0FFEE)
	if len(mt.TAPs()) != 3 {
		t.Fatalf("scan paths = %d, want sp = 3", len(mt.TAPs()))
	}
	reg := NewSettingsRegister(r)

	// Read the live config, flip the dilation field, write it back.
	bits, ok := mt.ReadSettings(reg.Len())
	if !ok {
		t.Fatal("no working TAP")
	}
	bits[0] = false // log2(dilation) = 0 -> dilation 1
	bits[1] = false
	if !mt.LoadSettings(bits) {
		t.Fatal("load failed")
	}
	if r.Dilation() != 1 {
		t.Fatalf("dilation = %d after scan load, want 1", r.Dilation())
	}
}

func TestMultiTAPToleratesBrokenPaths(t *testing.T) {
	r := testRouter()
	mt := NewMultiTAP(r, 42)
	reg := NewSettingsRegister(r)
	mt.TAPs()[0].Break()
	mt.TAPs()[1].Break()
	bits, ok := mt.ReadSettings(reg.Len())
	if !ok {
		t.Fatal("third TAP should still work")
	}
	if !mt.LoadSettings(bits) {
		t.Fatal("load via surviving TAP failed")
	}
	mt.TAPs()[2].Break()
	if _, ok := mt.ReadSettings(reg.Len()); ok {
		t.Fatal("all TAPs broken should fail")
	}
	if mt.LoadSettings(bits) {
		t.Fatal("load with all TAPs broken should fail")
	}
}

func TestTAPIDsDistinguishScanPaths(t *testing.T) {
	r := testRouter()
	mt := NewMultiTAP(r, 0x0000BEEF)
	seen := map[uint32]bool{}
	for _, tap := range mt.TAPs() {
		d := NewDriver(tap)
		d.Reset()
		id := d.ReadIDCode()
		if id&0x0fffffff != 0xBEEF {
			t.Fatalf("component id corrupted: %#x", id)
		}
		if seen[id] {
			t.Fatalf("duplicate TAP id %#x", id)
		}
		seen[id] = true
	}
}

func TestInvalidScanConfigRejected(t *testing.T) {
	r := testRouter()
	reg := NewSettingsRegister(r)
	bits := reg.Capture()
	// Force dilation select to an illegal value (log2 d = 3 -> d = 8 > max_d).
	bits[0] = true
	bits[1] = true
	reg.Update(bits)
	if r.Dilation() != 2 {
		t.Fatalf("illegal dilation applied: %d", r.Dilation())
	}
}

func TestLoopbackTestHealthyLink(t *testing.T) {
	l := link.New("t", 1)
	res := LoopbackTest(l, 4, []uint32{0x5, 0xA})
	if !res.Passed {
		t.Fatalf("healthy link failed: %+v", res)
	}
	if res.StuckHigh != 0 || res.StuckLow != 0 {
		t.Fatalf("healthy link reported stuck bits: %+v", res)
	}
}

func TestLoopbackTestLocalizesStuckBit(t *testing.T) {
	l := link.New("t", 2)
	l.SetCorruptor(func(w word.Word) word.Word {
		w.Payload |= 0x4 // bit 2 stuck high
		return w
	}, nil)
	res := LoopbackTest(l, 4, nil)
	if res.Passed {
		t.Fatal("stuck bit not detected")
	}
	if res.StuckHigh != 0x4 {
		t.Fatalf("stuck-high mask = %#x, want 0x4", res.StuckHigh)
	}
	if res.StuckLow != 0 {
		t.Fatalf("stuck-low mask = %#x, want 0", res.StuckLow)
	}
}

func TestLoopbackTestStuckLow(t *testing.T) {
	l := link.New("t", 1)
	l.SetCorruptor(func(w word.Word) word.Word {
		w.Payload &^= 0x1
		return w
	}, nil)
	res := LoopbackTest(l, 4, nil)
	if res.Passed || res.StuckLow != 0x1 || res.StuckHigh != 0 {
		t.Fatalf("stuck-low localization wrong: %+v", res)
	}
}

func TestLoopbackTestDeadLink(t *testing.T) {
	l := link.New("t", 1)
	l.Kill()
	res := LoopbackTest(l, 4, nil)
	if res.Passed {
		t.Fatal("dead link passed loopback")
	}
}

func TestIsolatePortTestAndMask(t *testing.T) {
	// The paper's diagnosis flow: disable a port pair over scan, run the
	// boundary test on the isolated link, confirm the fault, leave the
	// port masked while the rest of the router keeps routing.
	r := testRouter()
	mt := NewMultiTAP(r, 9)
	reg := NewSettingsRegister(r)

	faulty := link.New("b2", 1)
	faulty.SetCorruptor(func(w word.Word) word.Word {
		w.Payload |= 0x8
		return w
	}, nil)
	r.AttachBackward(2, faulty.A())

	// Disable backward port 2 via scan.
	bits, _ := mt.ReadSettings(reg.Len())
	set := r.Settings()
	set.BackwardEnabled[2] = false
	r2 := core.NewRouter("shadow", r.Config(), set, prng.NewLFSR(2))
	shadow := NewSettingsRegister(r2)
	mt.LoadSettings(shadow.Capture())
	if r.Settings().BackwardEnabled[2] {
		t.Fatal("port not disabled over scan")
	}
	_ = bits

	// Boundary test the isolated link.
	res := LoopbackTest(faulty, 4, nil)
	if res.Passed || res.StuckHigh != 0x8 {
		t.Fatalf("fault not localized: %+v", res)
	}
	// The masked port stays disabled; other ports remain enabled.
	got := r.Settings()
	if got.BackwardEnabled[2] {
		t.Fatal("fault not masked")
	}
	for bp, on := range got.BackwardEnabled {
		if bp != 2 && !on {
			t.Fatalf("healthy port %d disabled", bp)
		}
	}
}

func TestSetPortEnabledOverScan(t *testing.T) {
	r := testRouter()
	mt := NewMultiTAP(r, 0x51)
	if !SetPortEnabled(mt, r, true, 2, false) {
		t.Fatal("scan disable failed")
	}
	got := r.Settings()
	if got.BackwardEnabled[2] {
		t.Fatal("backward port 2 still enabled")
	}
	for bp, on := range got.BackwardEnabled {
		if bp != 2 && !on {
			t.Fatalf("unrelated backward port %d disturbed", bp)
		}
	}
	for fp, on := range got.ForwardEnabled {
		if !on {
			t.Fatalf("forward port %d disturbed", fp)
		}
	}
	if got.Dilation != 2 {
		t.Fatalf("dilation disturbed: %d", got.Dilation)
	}
	// Forward bank, and re-enable.
	if !SetPortEnabled(mt, r, false, 1, false) {
		t.Fatal("forward disable failed")
	}
	if r.Settings().ForwardEnabled[1] {
		t.Fatal("forward port 1 still enabled")
	}
	if !SetPortEnabled(mt, r, true, 2, true) {
		t.Fatal("re-enable failed")
	}
	if !r.Settings().BackwardEnabled[2] {
		t.Fatal("backward port 2 not restored")
	}
	// All TAPs broken: the operation reports failure.
	for _, tap := range mt.TAPs() {
		tap.Break()
	}
	if SetPortEnabled(mt, r, true, 0, false) {
		t.Fatal("operation succeeded with no working scan path")
	}
}
