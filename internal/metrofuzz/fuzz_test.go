package metrofuzz

import (
	"reflect"
	"testing"
)

// FuzzScenario is the native-fuzzing entry to the conformance harness:
// every input seed becomes a whole generated scenario executed under
// the full oracle battery. `go test -fuzz=FuzzScenario` walks the
// scenario space continuously; the seed corpus under
// testdata/fuzz/FuzzScenario keeps a spread of cheap, shape-diverse
// scenarios (presets and custom topologies, all three traffic models,
// fault plans, cascades, parallel workers) running on every plain
// `go test` invocation.
func FuzzScenario(f *testing.F) {
	// A shape-diverse, cheap spread (see the -v ensemble listing):
	// preset + custom topologies, burst/bernoulli/stall, fault plans,
	// cascade width 2, serial and parallel engines.
	for _, seed := range []int64{1, 2, 5, 8, 9} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if seed < 0 {
			seed = -seed
		}
		rep := Run(Generate(seed), Hooks{})
		if rep.Failed() {
			for _, fa := range rep.Failures {
				t.Errorf("seed %d: %s", seed, fa)
			}
			t.Fatalf("reproduce with: %s", rep.Repro())
		}
	})
}

// FuzzSpecCodec hardens the replay path: arbitrary spec lines must
// never panic the decoder, and anything it accepts must re-encode to a
// semantically identical scenario (decode∘encode = identity on the
// accepted set) — otherwise a shrunk repro could silently replay a
// different scenario than the one that failed.
func FuzzSpecCodec(f *testing.F) {
	f.Add(EncodeSpec(Generate(0)))
	f.Add(EncodeSpec(Generate(3)))
	f.Add(EncodeSpec(tinyScenario()))
	f.Add(pinnedBugRepro)
	f.Add("mf1;topo=16x2:2.2.4,2.2.4,4.1.4@99;w=8")
	f.Add("mf1;faults=rk@1:0.0|sb@2:0.1.0.3")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		s, err := DecodeSpec(line)
		if err != nil {
			return // rejected inputs just need to be rejected cleanly
		}
		again, err := DecodeSpec(EncodeSpec(s))
		if err != nil {
			t.Fatalf("re-decode of accepted spec failed: %v\n  original: %q\n  encoded:  %q",
				err, line, EncodeSpec(s))
		}
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("codec not idempotent for %q:\n  first:  %+v\n  second: %+v", line, s, again)
		}
	})
}
