package main_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"metro/internal/clitest"
	"metro/internal/telemetry"
)

// recordSample records the reference scenario (small Figure 1 run,
// fixed seed) into dir and returns the trace path. Recording is a pure
// function of the flags, so every test that starts from this scenario
// sees the identical byte stream.
func recordSample(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "sample.mtr")
	clitest.Run(t, "metrotrace", "record",
		"-network", "fig1", "-load", "0.5", "-cycles", "600", "-seed", "7", "-o", path)
	return path
}

// TestGoldenSummarize pins the summarize report — event counts, the
// per-stage connection table and the per-message latency breakdown —
// for the reference scenario. This is the golden that pins the
// latency-breakdown numbers the observability layer exists to expose.
func TestGoldenSummarize(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	path := recordSample(t, t.TempDir())
	clitest.GoldenBytes(t, "summarize", clitest.Run(t, "metrotrace", "summarize", path))
}

// TestGoldenFilter pins filter output: one message's lifecycle as an
// mtr1 stream, demonstrating filters compose with the codec.
func TestGoldenFilter(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	path := recordSample(t, t.TempDir())
	clitest.GoldenBytes(t, "filter", clitest.Run(t, "metrotrace", "filter", "-msg", "3", path))
}

// TestGoldenCSV pins the CSV latency-histogram export.
func TestGoldenCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	path := recordSample(t, t.TempDir())
	clitest.GoldenBytes(t, "csv",
		clitest.Run(t, "metrotrace", "export", "-format", "csv", "-buckets", "4", path))
}

// TestRecordDeterministic re-records the reference scenario and
// demands byte-identical traces: `metrotrace record` is a replay tool,
// so two runs of the same flags must be the same experiment.
func TestRecordDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	dir := t.TempDir()
	a, err := os.ReadFile(recordSample(t, dir))
	if err != nil {
		t.Fatal(err)
	}
	pathB := filepath.Join(dir, "b.mtr")
	clitest.Run(t, "metrotrace", "record",
		"-network", "fig1", "-load", "0.5", "-cycles", "600", "-seed", "7", "-o", pathB)
	b, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("recording the same scenario twice produced different traces")
	}
}

// TestPerfettoExportParses checks the end-to-end perfetto path: the
// exported JSON must parse and carry a non-empty traceEvents array.
// (The structural schema contract lives in internal/telemetry's tests;
// this pins the CLI plumbing.)
func TestPerfettoExportParses(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	path := recordSample(t, t.TempDir())
	out := clitest.Run(t, "metrotrace", "export", "-format", "perfetto", path)
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &f); err != nil {
		t.Fatalf("perfetto export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("perfetto export carries no events")
	}
}

// TestFilterOutputDecodes checks a family filter round-trips through
// the codec and keeps only the requested family.
func TestFilterOutputDecodes(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	path := recordSample(t, t.TempDir())
	out := clitest.Run(t, "metrotrace", "filter", "-family", "conn", path)
	tr, err := telemetry.Decode(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("filter output does not decode: %v", err)
	}
	if len(tr.Events) == 0 {
		t.Fatal("conn filter kept no events")
	}
	for _, e := range tr.Events {
		if e.Kind.Family() != "conn" {
			t.Fatalf("conn filter leaked a %v event", e.Kind)
		}
	}
}

// TestUsageErrors pins exit code 2 for misuse: scripts distinguish
// "trace problem" (1) from "bad invocation" (2).
func TestUsageErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	clitest.ExitCode(t, 2, "metrotrace")
	clitest.ExitCode(t, 2, "metrotrace", "frobnicate")
	clitest.ExitCode(t, 2, "metrotrace", "summarize")
	clitest.ExitCode(t, 1, "metrotrace", "summarize", "no-such-file.mtr")
	clitest.ExitCode(t, 2, "metrotrace", "export", "-format", "bogus", "whatever.mtr")
}
