// Package metrics is a stdlib-only operational-metrics subsystem:
// counters, gauges, and fixed-bucket histograms behind a registry with
// stable registration order, plus a Prometheus-text-format exposition
// writer whose output is byte-stable given a snapshot.
//
// The design follows the same discipline as the simulator's cycle
// paths: hot-path updates (Counter.Inc/Add, Gauge.Set/Add,
// Histogram.Observe) are single atomic operations — lock-free and
// zero-allocation — and every update method is nil-safe, so
// instrumentation is gated exactly like tracing: a nil handle costs one
// predictable branch. Registration and label resolution (the *Vec
// With methods) take locks and may allocate; resolve them once at
// setup, never per cycle.
//
// Determinism: nothing in this package reads the wall clock or ranges
// over a map. Exposition output is a pure function of a Snapshot —
// families sorted by name, label sets sorted, no timestamps — so the
// same snapshot always serializes to the same bytes.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the three metric families.
type Kind uint8

const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value that may go up or down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution of observations.
	KindHistogram
)

// typeName returns the Prometheus TYPE keyword for the kind.
func (k Kind) typeName() string {
	if k == KindCounter {
		return "counter"
	}
	if k == KindGauge {
		return "gauge"
	}
	return "histogram"
}

// Counter is a monotonically increasing counter. The zero value is
// ready to use; a nil *Counter accepts updates and discards them.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value stored as atomic bits. The
// zero value is ready to use; a nil *Gauge accepts updates and
// discards them.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d to the current value (compare-and-swap loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in increasing order; an implicit +Inf bucket catches the
// rest. A nil *Histogram accepts observations and discards them.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // len(upper)+1; last is +Inf
	count  atomic.Uint64
	sum    Gauge
}

// Observe records one observation: a linear scan over the (small,
// fixed) bucket list and three atomic updates — no allocation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// series is one labeled instance within a family.
type series struct {
	labels []string // label values, parallel to family.labels
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // func-backed counter/gauge, sampled at Snapshot
}

// family is one named metric with a fixed label schema.
type family struct {
	name    string
	help    string
	kind    Kind
	labels  []string  // label names
	buckets []float64 // histogram upper bounds

	mu     sync.Mutex
	series []*series          // registration order
	byKey  map[string]*series // lookup only; never ranged over
}

// child returns (creating on first use) the series for the given label
// values. Takes the family lock and may allocate — setup path only.
func (f *family) child(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{labels: append([]string(nil), values...)}
	switch f.kind {
	case KindCounter:
		s.c = new(Counter)
	case KindGauge:
		s.g = new(Gauge)
	case KindHistogram:
		s.h = &Histogram{upper: f.buckets, counts: make([]atomic.Uint64, len(f.buckets)+1)}
	}
	f.series = append(f.series, s)
	f.byKey[key] = s
	return s
}

// Registry holds metric families in stable registration order.
// Registering the same name twice panics: names are a global contract
// and collisions are programmer error.
type Registry struct {
	mu     sync.Mutex
	fams   []*family          // registration order
	byName map[string]*family // lookup only; never ranged over
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) register(name, help string, kind Kind, buckets []float64, labelNames []string) *family {
	if name == "" {
		panic("metrics: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		panic("metrics: duplicate registration of " + name)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("metrics: histogram buckets for " + name + " must be strictly increasing")
		}
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labelNames...),
		buckets: append([]float64(nil), buckets...),
		byKey:   make(map[string]*series),
	}
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, KindCounter, nil, nil).child(nil).c
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, KindGauge, nil, nil).child(nil).g
}

// Histogram registers and returns an unlabeled histogram with the
// given strictly increasing upper bounds (an implicit +Inf bucket is
// appended at exposition).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, KindHistogram, buckets, nil).child(nil).h
}

// CounterFunc registers a counter whose value is sampled from fn at
// snapshot time. fn must be safe for concurrent use and monotone.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindCounter, nil, nil)
	f.child(nil).fn = fn
}

// GaugeFunc registers a gauge whose value is sampled from fn at
// snapshot time. fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil, nil)
	f.child(nil).fn = fn
}

// CounterVec is a counter family with a fixed label schema.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, nil, labelNames)}
}

// With returns the counter for the given label values, creating it on
// first use. Locks and may allocate: resolve once at setup, not per
// update, on hot paths.
func (v *CounterVec) With(values ...string) *Counter { return v.f.child(values).c }

// GaugeVec is a gauge family with a fixed label schema.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, nil, labelNames)}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.child(values).g }

// HistogramVec is a histogram family with a fixed label schema.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, KindHistogram, buckets, labelNames)}
}

// With returns the histogram for the given label values, creating it
// on first use.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.child(values).h }

// Label is one name/value pair on a series.
type Label struct {
	Name  string
	Value string
}

// SeriesSnapshot is the frozen state of one labeled series.
type SeriesSnapshot struct {
	Labels []Label // sorted by name

	// Counter/gauge value. For counters this is the exact count as a
	// float64 (counts beyond 2^53 would lose precision; the simulator
	// does not reach them within a process lifetime).
	Value float64

	// Histogram state. Buckets holds cumulative counts parallel to the
	// family's upper bounds; the +Inf bucket equals Count.
	Buckets []uint64
	Count   uint64
	Sum     float64
}

// FamilySnapshot is the frozen state of one metric family.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Upper  []float64 // histogram upper bounds (without +Inf)
	Series []SeriesSnapshot
}

// Snapshot is a frozen, plain-value copy of a registry. Exposition is
// a pure function of a Snapshot.
type Snapshot struct {
	Families []FamilySnapshot
}

// Snapshot freezes the registry: families sorted by name, series
// sorted by label values, func-backed series sampled now. The result
// shares no mutable state with the registry.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()

	snap := &Snapshot{Families: make([]FamilySnapshot, 0, len(fams))}
	for _, f := range fams {
		f.mu.Lock()
		series := append([]*series(nil), f.series...)
		f.mu.Unlock()

		fs := FamilySnapshot{
			Name:  f.name,
			Help:  f.help,
			Kind:  f.kind,
			Upper: append([]float64(nil), f.buckets...),
		}
		for _, s := range series {
			ss := SeriesSnapshot{}
			for i, name := range f.labels {
				ss.Labels = append(ss.Labels, Label{Name: name, Value: s.labels[i]})
			}
			sort.Slice(ss.Labels, func(i, j int) bool { return ss.Labels[i].Name < ss.Labels[j].Name })
			switch {
			case s.fn != nil:
				ss.Value = s.fn()
			case s.c != nil:
				ss.Value = float64(s.c.Value())
			case s.g != nil:
				ss.Value = s.g.Value()
			case s.h != nil:
				var cum uint64
				ss.Buckets = make([]uint64, len(s.h.upper))
				for i := range s.h.upper {
					cum += s.h.counts[i].Load()
					ss.Buckets[i] = cum
				}
				ss.Count = s.h.count.Load()
				ss.Sum = s.h.sum.Value()
			}
			fs.Series = append(fs.Series, ss)
		}
		sort.Slice(fs.Series, func(i, j int) bool {
			return labelSig(fs.Series[i].Labels) < labelSig(fs.Series[j].Labels)
		})
		snap.Families = append(snap.Families, fs)
	}
	sort.Slice(snap.Families, func(i, j int) bool { return snap.Families[i].Name < snap.Families[j].Name })
	return snap
}

// labelSig is a total order key over a sorted label set.
func labelSig(labels []Label) string {
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Name)
		b.WriteByte('\xfe')
		b.WriteString(l.Value)
		b.WriteByte('\xff')
	}
	return b.String()
}
