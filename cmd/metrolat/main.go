// metrolat regenerates the paper's analytical tables from the Table 4
// latency model: Table 3 (METRO implementation points) and Table 5
// (contemporary routing technologies), plus arbitrary message-size
// evaluations of any implementation row.
//
// Usage:
//
//	metrolat -table 3          # METRO implementations (exact reproduction)
//	metrolat -table 4          # model components for every row
//	metrolat -table 5          # contemporary technology comparison
//	metrolat -bytes 64         # re-evaluate Table 3 for 64-byte messages
package main

import (
	"flag"
	"fmt"
	"os"

	"metro"
	"metro/internal/stats"
)

func main() {
	table := flag.Int("table", 3, "table to print: 3, 4 or 5")
	bytes := flag.Int("bytes", 20, "message payload size for the latency column")
	scale := flag.Int("scale", 0, "re-evaluate Table 3 for an N-endpoint network (power of two >= 8)")
	flag.Parse()

	if *scale > 0 {
		printScaled(*scale, *bytes)
		return
	}
	switch *table {
	case 3:
		printTable3(*bytes)
	case 4:
		printTable4()
	case 5:
		printTable5()
	default:
		fmt.Fprintf(os.Stderr, "metrolat: unknown table %d\n", *table)
		os.Exit(2)
	}
}

// printScaled re-targets every Table 3 implementation at an N-endpoint
// network (METROJR-style construction) and prints t<bytes>,N.
func printScaled(endpoints, payloadBytes int) {
	fmt.Printf("Table 3 implementations scaled to %d endpoints (t%d,%d in ns)\n\n",
		endpoints, payloadBytes, endpoints)
	t := stats.Table{Header: []string{"instance", "technology", "stages", "t_stg", "latency"}}
	for _, im := range metro.Table3() {
		s := im.Scaled(endpoints)
		t.Add(im.Name, im.Tech,
			fmt.Sprintf("%d", s.Stages()),
			fmt.Sprintf("%g ns", s.TStg()),
			fmt.Sprintf("%.0f ns", s.MessageLatency(payloadBytes)))
	}
	fmt.Print(t.String())
}

func printTable3(payloadBytes int) {
	fmt.Printf("Table 3: METRO implementation examples (t%d,32 in ns)\n\n", payloadBytes)
	t := stats.Table{Header: []string{
		"instance", "technology", "t_clk", "t_io", "t_stg", "t_bit", "stages", "t_model", "t_paper",
	}}
	paper := metro.PaperT2032()
	for i, im := range metro.Table3() {
		paperCell := "-"
		if payloadBytes == 20 && i < len(paper) {
			paperCell = fmt.Sprintf("%.0f", paper[i])
		}
		t.Add(
			im.Name, im.Tech,
			fmt.Sprintf("%g ns", im.TClk),
			fmt.Sprintf("%g ns", im.TIo),
			fmt.Sprintf("%g ns", im.TStg()),
			im.TBitLabel(),
			fmt.Sprintf("%d", im.Stages()),
			fmt.Sprintf("%.0f", im.MessageLatency(payloadBytes)),
			paperCell,
		)
	}
	fmt.Print(t.String())
}

func printTable4() {
	fmt.Println("Table 4: latency model components per implementation row")
	fmt.Println("  vtd = ceil((t_io+t_wire)/t_clk); t_stg = dp*t_clk + vtd*t_clk")
	fmt.Println("  hbits per Table 4; t20,32 = stages*t_stg + (160+hbits)*t_bit")
	fmt.Println()
	t := stats.Table{Header: []string{
		"instance", "technology", "vtd", "t_on_chip", "t_stg", "hbits", "t_bit/bit", "t20,32",
	}}
	for _, im := range metro.Table3() {
		t.Add(
			im.Name, im.Tech,
			fmt.Sprintf("%d", im.VTD()),
			fmt.Sprintf("%g ns", im.TOnChip()),
			fmt.Sprintf("%g ns", im.TStg()),
			fmt.Sprintf("%d", im.HBits()),
			fmt.Sprintf("%.3f ns", im.TBit()),
			fmt.Sprintf("%.0f ns", im.T2032()),
		)
	}
	fmt.Print(t.String())
}

func printTable5() {
	fmt.Println("Table 5: contemporary routing technologies, t20,32 estimates")
	fmt.Println()
	t := stats.Table{Header: []string{
		"router", "latency", "t_bit", "model t20,32", "paper t20,32",
	}}
	for _, b := range metro.Table5() {
		model := fmt.Sprintf("%.0f ns", b.Min())
		paper := fmt.Sprintf("%.0f ns", b.PaperMin)
		if b.PaperMax != b.PaperMin {
			model = fmt.Sprintf("%.0f -> %.0f ns", b.Min(), b.Max())
			paper = fmt.Sprintf("%.0f -> %.0f ns", b.PaperMin, b.PaperMax)
		}
		t.Add(b.Name, b.LatencyDesc, b.TBitDesc, model, paper)
	}
	fmt.Print(t.String())
	fmt.Println()
	fmt.Println("assumptions:")
	for _, b := range metro.Table5() {
		fmt.Printf("  %-16s %s\n", b.Name+":", b.Assumption)
	}
	// METRO reference points for the comparison the paper draws.
	orbit := metro.Table3()[0]
	custom := metro.Table3()[11]
	fmt.Println()
	fmt.Printf("METRO reference: %s %.0f ns, %s (%s) %.0f ns\n",
		orbit.Name, orbit.T2032(), custom.Name, custom.Tech, custom.T2032())
}
