package clock_test

import (
	"fmt"

	"metro/internal/clock"
)

// shifter is a two-stage shift register: Eval stages the upstream value
// read as of the end of the previous cycle, Commit latches it. Two
// shifters chained through their q outputs form a pipeline, and because
// Eval everywhere reads only committed state, registration order cannot
// change the result — the property the engine's parallel mode exploits.
type shifter struct {
	in func() int // reads the upstream committed output
	q  int        // committed output
	d  int        // staged next value
}

func (s *shifter) Eval(cycle uint64)   { s.d = s.in() }
func (s *shifter) Commit(cycle uint64) { s.q = s.d }

// ExampleEngine drives a two-deep pipeline fed by the cycle number and
// shows the two-phase latching: a value injected on cycle c appears at
// the pipe's end two cycles later.
func ExampleEngine() {
	e := clock.New()
	source := 0
	first := &shifter{in: func() int { return source }}
	second := &shifter{in: func() int { return first.q }}
	e.Add(first, second)
	for i := 0; i < 4; i++ {
		source = i + 1 // present a new input for this cycle
		e.Step()
		fmt.Printf("after cycle %d: first=%d second=%d\n", e.Cycle(), first.q, second.q)
	}
	// Output:
	// after cycle 1: first=1 second=0
	// after cycle 2: first=2 second=1
	// after cycle 3: first=3 second=2
	// after cycle 4: first=4 second=3
}
