package core_test

import (
	"testing"

	"metro/internal/core"
	"metro/internal/word"
)

func TestRouterAccessors(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 1)
	r := h.r
	if r.Name() != "r0" {
		t.Errorf("Name = %q", r.Name())
	}
	if r.Config().Inputs != 4 {
		t.Errorf("Config.Inputs = %d", r.Config().Inputs)
	}
	if got := r.Settings(); got.Dilation != 1 {
		t.Errorf("Settings.Dilation = %d", got.Dilation)
	}
	if r.Dilation() != 1 {
		t.Errorf("Dilation = %d", r.Dilation())
	}
	if r.ForwardLink(0) == nil || r.BackwardLink(0) == nil {
		t.Error("attached links not retrievable")
	}
	if r.ClosingCount() != 0 {
		t.Errorf("fresh router ClosingCount = %d", r.ClosingCount())
	}
	// SetTracer(nil) restores the no-op tracer without panicking.
	r.SetTracer(nil)
	h.src[0].Send(word.MakeRoute(0, 2))
	h.run()
	h.run()
}

func TestApplySettingsLive(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 2)
	set := h.r.Settings()
	set.Dilation = 2
	set.FastReclaim[0] = false
	if err := h.r.ApplySettings(set); err != nil {
		t.Fatal(err)
	}
	if h.r.Dilation() != 2 || h.r.Radix() != 2 {
		t.Fatalf("dilation not applied: d=%d r=%d", h.r.Dilation(), h.r.Radix())
	}
	bad := h.r.Settings()
	bad.Dilation = 8
	if err := h.r.ApplySettings(bad); err == nil {
		t.Fatal("invalid settings accepted")
	}
	// Per-port setters.
	h.r.SetForwardEnabled(1, false)
	h.r.SetBackwardEnabled(2, false)
	h.r.SetFastReclaim(3, true)
	got := h.r.Settings()
	if got.ForwardEnabled[1] || got.BackwardEnabled[2] || !got.FastReclaim[3] {
		t.Fatalf("port setters not applied: %+v", got)
	}
}

func TestClosingCountDuringFlush(t *testing.T) {
	cfg := cfg4x4()
	cfg.DataPipe = 3 // slow flush so the closer is observable
	h := newHarness(cfg, dil1Settings(cfg), 3)
	seq := []word.Word{
		word.MakeRoute(0, 2),
		word.MakeData(1, 4),
		word.MakeData(2, 4),
		{Kind: word.Drop},
	}
	sawClosing := false
	for i := 0; i < 14; i++ {
		if i < len(seq) {
			h.src[0].Send(seq[i])
		}
		if h.r.ClosingCount() > 0 {
			sawClosing = true
			if h.r.OwnerOf(0) != -2 {
				t.Fatalf("flushing port owner marker = %d, want -2", h.r.OwnerOf(0))
			}
			if err := h.r.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
		h.run()
	}
	if !sawClosing {
		t.Fatal("detached closer never observed")
	}
	if h.r.ClosingCount() != 0 || h.r.OwnerOf(0) != -1 {
		t.Fatal("closer did not complete")
	}
}

func TestNopTracerMethods(t *testing.T) {
	var tr core.NopTracer
	id := core.FreeID()
	tr.Allocated(0, id, 0, 0)
	tr.Blocked(0, id, 0, 0, true)
	tr.Released(0, id, 0, 0)
	tr.Reversed(0, id, 0, true)
}

func TestRouterIDRoundTrip(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 9)
	if got := h.r.ID(); got != core.FreeID() {
		t.Fatalf("fresh router ID = %+v, want FreeID", got)
	}
	id := core.RouterID{Stage: 2, Index: 5, Lane: 1}
	h.r.SetID(id)
	if got := h.r.ID(); got != id {
		t.Fatalf("ID after SetID = %+v, want %+v", got, id)
	}
}

// TestTeeTracer checks fan-out, nil filtering, and the degenerate arities.
func TestTeeTracer(t *testing.T) {
	a, b := &captureTracer{}, &captureTracer{}
	tee := core.Tee(nil, a, b)
	id := core.RouterID{Stage: 1, Index: 2, Lane: 0}
	tee.Allocated(1, id, 0, 1)
	tee.Blocked(2, id, 0, 0, true)
	tee.Released(3, id, 0, 1)
	tee.Reversed(4, id, 0, false)
	for _, c := range []*captureTracer{a, b} {
		if c.allocated != 1 || c.blocked != 1 || c.released != 1 || c.reversed != 1 {
			t.Fatalf("tee fan-out missed events: %+v", c)
		}
	}
	if got := core.Tee(nil); got != (core.NopTracer{}) {
		t.Fatalf("Tee() of nils = %T, want NopTracer", got)
	}
	if got := core.Tee(a); got != core.Tracer(a) {
		t.Fatalf("Tee(single) = %T, want the tracer itself", got)
	}
}

func TestInvariantsOnFreshAndActiveRouter(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 5)
	if err := h.r.CheckInvariants(); err != nil {
		t.Fatalf("fresh router: %v", err)
	}
	h.src[0].Send(word.MakeRoute(1, 2))
	h.run()
	h.src[0].Send(word.Word{Kind: word.DataIdle})
	h.run()
	if err := h.r.CheckInvariants(); err != nil {
		t.Fatalf("connected router: %v", err)
	}
}

func TestSelectionPolicySetter(t *testing.T) {
	cfg := cfg4x4()
	set := core.DefaultSettings(cfg) // dilation 2
	for trial := 0; trial < 10; trial++ {
		h := newHarness(cfg, set, uint32(trial+1))
		h.r.SetSelectionPolicy(core.SelectFirstFree)
		h.src[0].Send(word.MakeRoute(1, 1)) // direction 1: ports 2,3
		h.run()
		h.run()
		if h.r.OwnerOf(2) != 0 {
			t.Fatalf("first-free should always pick port 2, trial %d picked differently", trial)
		}
	}
}

func TestConfigValidateRemainingBranches(t *testing.T) {
	bad := []core.Config{
		{Inputs: 4, Outputs: 4, Width: 40, MaxDilation: 2, DataPipe: 1, RandomInputs: 1, ScanPaths: 1},
		{Inputs: 4, Outputs: 4, Width: 4, MaxDilation: 2, HeaderWords: -1, DataPipe: 1, RandomInputs: 1, ScanPaths: 1},
		{Inputs: 4, Outputs: 4, Width: 4, MaxDilation: 2, DataPipe: 1, MaxVTD: -1, RandomInputs: 1, ScanPaths: 1},
		{Inputs: 4, Outputs: 4, Width: 4, MaxDilation: 2, DataPipe: 1, RandomInputs: 1, ScanPaths: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	set := core.DefaultSettings(cfg4x4())
	mutations := []func(*core.Settings){
		func(s *core.Settings) { s.Dilation = 3 },
		func(s *core.Settings) { s.BackwardEnabled = s.BackwardEnabled[:1] },
		func(s *core.Settings) { s.FastReclaim = s.FastReclaim[:1] },
		func(s *core.Settings) { s.Swallow = s.Swallow[:1] },
		func(s *core.Settings) { s.OffPortDrive = s.OffPortDrive[:1] },
	}
	for i, mutate := range mutations {
		bad := set.Clone()
		mutate(&bad)
		if err := bad.Validate(cfg4x4()); err == nil {
			t.Errorf("bad settings %d accepted", i)
		}
	}
}
