// Package clitest runs the repository's command-line tools as
// subprocesses and compares their output against golden files. Every
// cmd/ package pins its user-facing output with one of these tests, so
// format drift (column changes, renamed rows, nondeterministic
// ordering) shows up as a test failure instead of a surprise in a
// paper-reproduction script.
//
// Golden files live in each command's testdata/ directory and are
// rewritten with `go test ./cmd/... -update` after an intentional
// output change.
package clitest

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite CLI golden files from current output")

// Run builds metro/cmd/<tool> (once per test process) and executes it
// with args, returning the combined output and failing the test on a
// non-zero exit. Building rather than `go run` preserves the tool's
// real exit code — `go run` always exits 1 on child failure — and the
// module-qualified import path makes the invocation independent of the
// test's working directory.
func Run(t *testing.T, tool string, args ...string) []byte {
	t.Helper()
	out, err := runTool(t, tool, args...)
	if err != nil {
		t.Fatalf("metro/cmd/%s %s: %v\noutput:\n%s", tool, strings.Join(args, " "), err, out)
	}
	return out
}

// ExitCode executes the tool and asserts its exit status, returning
// the combined output. Used to pin the documented failure-mode codes
// (e.g. metrofuzz exits 2 on a malformed -replay spec).
func ExitCode(t *testing.T, want int, tool string, args ...string) []byte {
	t.Helper()
	out, err := runTool(t, tool, args...)
	got := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("metro/cmd/%s: %v\noutput:\n%s", tool, err, out)
		}
		got = ee.ExitCode()
	}
	if got != want {
		t.Fatalf("metro/cmd/%s %s: exit %d, want %d\noutput:\n%s",
			tool, strings.Join(args, " "), got, want, out)
	}
	return out
}

// Golden runs the tool and compares its combined output against
// testdata/<name>.golden in the calling package, rewriting the file
// when -update is set. CLI golden tests compile and exec a
// subprocess, so they are skipped under -short.
func Golden(t *testing.T, name, tool string, args ...string) {
	t.Helper()
	if testing.Short() {
		t.Skip("CLI golden test execs a subprocess; skipped in -short mode")
	}
	GoldenBytes(t, name, Run(t, tool, args...))
}

// GoldenBytes compares already-captured output against
// testdata/<name>.golden, for tests that post-process or compose tool
// invocations (e.g. metrotrace record into a temp file, then summarize
// it) before pinning the result.
func GoldenBytes(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (create it with `go test -run %s -update`): %v", path, t.Name(), err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: output drifted from %s:\n%s\nrerun with -update if the change is intentional",
			name, path, firstDivergence(want, got))
	}
}

// firstDivergence renders the first line where want and got differ,
// with one line of surrounding context — enough to see a column drift
// without dumping two full tables.
func firstDivergence(want, got []byte) string {
	w := strings.Split(string(want), "\n")
	g := strings.Split(string(got), "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		wl, gl := "<eof>", "<eof>"
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("line %d:\n  golden: %s\n  got:    %s", i+1, wl, gl)
		}
	}
	return "outputs differ only in trailing bytes"
}

var builds struct {
	sync.Mutex
	dir  string
	done map[string]error
}

// binary builds metro/cmd/<tool> into a per-process temp directory the
// first time it is requested and returns the binary's path.
func binary(t *testing.T, tool string) string {
	t.Helper()
	builds.Lock()
	defer builds.Unlock()
	if builds.done == nil {
		dir, err := os.MkdirTemp("", "clitest-*")
		if err != nil {
			t.Fatal(err)
		}
		builds.dir = dir
		builds.done = map[string]error{}
	}
	path := filepath.Join(builds.dir, tool)
	if err, built := builds.done[tool]; built {
		if err != nil {
			t.Fatalf("building metro/cmd/%s failed earlier: %v", tool, err)
		}
		return path
	}
	out, err := exec.Command("go", "build", "-o", path, "metro/cmd/"+tool).CombinedOutput()
	if err != nil {
		err = fmt.Errorf("%v\n%s", err, out)
	}
	builds.done[tool] = err
	if err != nil {
		t.Fatalf("go build metro/cmd/%s: %v", tool, err)
	}
	return path
}

func runTool(t *testing.T, tool string, args ...string) ([]byte, error) {
	t.Helper()
	cmd := exec.Command(binary(t, tool), args...)
	cmd.Env = os.Environ()
	return cmd.CombinedOutput()
}
