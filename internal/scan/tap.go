// Package scan implements METRO's test and configuration access: an IEEE
// 1149.1-1990 Test Access Port (TAP) controller extended with multiple
// TAPs per component (MultiTAP) for tolerance to scan-path faults, the
// configuration data register holding the Table 2 options, and the
// port-isolation test facilities used for on-line fault diagnosis
// (paper, Section 5.1, "Scan Support").
//
// A METRO router's mostly-static options — port enables, off-port drive,
// turn delays, fast reclamation, swallow, dilation — are loaded through
// these TAPs. Because each port can be disabled individually, a
// forward/backward port pair, a whole component, or a network region can
// be isolated and tested with boundary-scan-style patterns while the rest
// of the router continues to route traffic; a localized fault is then left
// disabled (masked) and the system returns to service.
package scan

import "fmt"

// State is an IEEE 1149.1 TAP controller state.
type State uint8

// The sixteen TAP controller states.
const (
	TestLogicReset State = iota
	RunTestIdle
	SelectDRScan
	CaptureDR
	ShiftDR
	Exit1DR
	PauseDR
	Exit2DR
	UpdateDR
	SelectIRScan
	CaptureIR
	ShiftIR
	Exit1IR
	PauseIR
	Exit2IR
	UpdateIR
)

var stateNames = [...]string{
	"Test-Logic-Reset", "Run-Test/Idle",
	"Select-DR-Scan", "Capture-DR", "Shift-DR", "Exit1-DR", "Pause-DR", "Exit2-DR", "Update-DR",
	"Select-IR-Scan", "Capture-IR", "Shift-IR", "Exit1-IR", "Pause-IR", "Exit2-IR", "Update-IR",
}

// String returns the standard state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Next returns the successor state for a TMS value on the rising edge of
// TCK, per the 1149.1 state diagram.
func (s State) Next(tms bool) State {
	if tms {
		switch s {
		case TestLogicReset:
			return TestLogicReset
		case RunTestIdle, UpdateDR, UpdateIR:
			return SelectDRScan
		case SelectDRScan:
			return SelectIRScan
		case CaptureDR, ShiftDR:
			return Exit1DR
		case Exit1DR, Exit2DR:
			return UpdateDR
		case PauseDR:
			return Exit2DR
		case SelectIRScan:
			return TestLogicReset
		case CaptureIR, ShiftIR:
			return Exit1IR
		case Exit1IR, Exit2IR:
			return UpdateIR
		case PauseIR:
			return Exit2IR
		}
	} else {
		switch s {
		case TestLogicReset, RunTestIdle, UpdateDR, UpdateIR:
			return RunTestIdle
		case SelectDRScan:
			return CaptureDR
		case CaptureDR, ShiftDR:
			return ShiftDR
		case Exit1DR, PauseDR:
			return PauseDR
		case Exit2DR:
			return ShiftDR
		case SelectIRScan:
			return CaptureIR
		case CaptureIR, ShiftIR:
			return ShiftIR
		case Exit1IR, PauseIR:
			return PauseIR
		case Exit2IR:
			return ShiftIR
		}
	}
	return TestLogicReset
}

// Instruction selects the data register between TDI and TDO.
type Instruction uint8

// Supported instructions. IDCODE is selected in Test-Logic-Reset per the
// standard; BYPASS is the all-ones instruction.
const (
	EXTEST Instruction = 0x0
	IDCODE Instruction = 0x1
	SAMPLE Instruction = 0x2
	// CONFIG selects the METRO configuration register (Table 2 options).
	CONFIG Instruction = 0x4
	BYPASS Instruction = 0xF
)

// irLen is the instruction register length in bits.
const irLen = 4

// Register is a data register reachable through a TAP.
type Register interface {
	// Len returns the register length in bits.
	Len() int
	// Capture returns the value parallel-loaded in Capture-DR,
	// least-significant (first shifted out) bit first.
	Capture() []bool
	// Update applies the shifted-in value at Update-DR.
	Update(bits []bool)
}

// BitsRegister is a simple storage register (used for BYPASS, IDCODE and
// tests).
type BitsRegister struct {
	bits     []bool
	readOnly bool
}

// NewBitsRegister returns an n-bit register initialized to value (LSB
// first).
func NewBitsRegister(n int, value uint64, readOnly bool) *BitsRegister {
	r := &BitsRegister{bits: make([]bool, n), readOnly: readOnly}
	for i := 0; i < n && i < 64; i++ {
		r.bits[i] = value&(1<<uint(i)) != 0
	}
	return r
}

// Len implements Register.
func (r *BitsRegister) Len() int { return len(r.bits) }

// Capture implements Register.
func (r *BitsRegister) Capture() []bool { return append([]bool(nil), r.bits...) }

// Update implements Register.
func (r *BitsRegister) Update(bits []bool) {
	if r.readOnly {
		return
	}
	copy(r.bits, bits)
}

// Value returns the register contents as an integer (LSB first).
func (r *BitsRegister) Value() uint64 {
	var v uint64
	for i, b := range r.bits {
		if b && i < 64 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// TAP is one Test Access Port: the 1149.1 controller state machine, the
// instruction register, and the data-register mux.
type TAP struct {
	name  string
	state State

	ir      Instruction
	irShift []bool

	regs    map[Instruction]Register
	drShift []bool
	drReg   Register

	bypass *BitsRegister
	broken bool
}

// NewTAP constructs a TAP with an IDCODE register carrying id and the
// given instruction-to-register map (CONFIG, EXTEST, SAMPLE...). BYPASS
// and IDCODE are always available.
func NewTAP(name string, id uint32, regs map[Instruction]Register) *TAP {
	m := map[Instruction]Register{
		IDCODE: NewBitsRegister(32, uint64(id), true),
	}
	for k, v := range regs {
		m[k] = v
	}
	t := &TAP{
		name:   name,
		state:  TestLogicReset,
		ir:     IDCODE,
		regs:   m,
		bypass: NewBitsRegister(1, 0, false),
	}
	return t
}

// Name returns the TAP identifier.
func (t *TAP) Name() string { return t.name }

// State returns the controller state.
func (t *TAP) State() State { return t.state }

// Instruction returns the active instruction.
func (t *TAP) Instruction() Instruction { return t.ir }

// Break marks the TAP's scan path faulty: it stops responding (TDO stuck
// low, state frozen), the condition MultiTAP redundancy tolerates.
func (t *TAP) Break() { t.broken = true }

// Broken reports whether the TAP is faulted.
func (t *TAP) Broken() bool { return t.broken }

// selected returns the data register addressed by the current instruction
// (BYPASS for unknown codes, per the standard).
func (t *TAP) selected() Register {
	if r, ok := t.regs[t.ir]; ok {
		return r
	}
	return t.bypass
}

// Step advances the TAP by one TCK rising edge with the given TMS and TDI
// pin values, returning TDO.
func (t *TAP) Step(tms, tdi bool) (tdo bool) {
	if t.broken {
		return false
	}
	// TDO presents the bit being shifted out before the state advances.
	//metrovet:nonexhaustive only the shift states present TDO; every other state holds it low
	switch t.state {
	case ShiftDR:
		if len(t.drShift) > 0 {
			tdo = t.drShift[0]
			copy(t.drShift, t.drShift[1:])
			t.drShift[len(t.drShift)-1] = tdi
		}
	case ShiftIR:
		if len(t.irShift) > 0 {
			tdo = t.irShift[0]
			copy(t.irShift, t.irShift[1:])
			t.irShift[len(t.irShift)-1] = tdi
		}
	}

	t.state = t.state.Next(tms)

	//metrovet:nonexhaustive only reset/capture/update states act on this edge; the rest only steer
	switch t.state {
	case TestLogicReset:
		t.ir = IDCODE
	case CaptureDR:
		t.drReg = t.selected()
		t.drShift = t.drReg.Capture()
	case UpdateDR:
		if t.drReg != nil {
			t.drReg.Update(t.drShift)
		}
	case CaptureIR:
		// The standard captures 0b01 in the low bits; we capture the
		// current instruction for observability.
		t.irShift = make([]bool, irLen)
		for i := 0; i < irLen; i++ {
			t.irShift[i] = uint8(t.ir)&(1<<uint(i)) != 0
		}
	case UpdateIR:
		var v uint8
		for i := 0; i < irLen && i < len(t.irShift); i++ {
			if t.irShift[i] {
				v |= 1 << uint(i)
			}
		}
		t.ir = Instruction(v)
	}
	return tdo
}
