package netsim

import (
	"testing"

	"metro/internal/topo"
	"metro/internal/word"
)

// TestSimulatorMatchesLatencyModel cross-validates the cycle-accurate
// simulator against the paper's Table 4 analytical model. In clock cycles
// the one-way latency of a message's last word (the TURN) is exactly
//
//	stages*dp + (stages+1)*vtd + messageWords - 1
//
// — each router adds dp cycles, each of the stages+1 links (injection,
// stages-1 inter-stage, delivery) adds vtd cycles, and the last word
// trails the first by messageWords-1. This is the cycle-domain form of
// the paper's t_stg relation (the paper's stages*t_stg counts the wire
// of each stage once; our network has one more physical link because the
// endpoint interfaces sit outside the first and last routers). The test
// pins the relation exactly across dp, vtd, w and hw configurations.
func TestSimulatorMatchesLatencyModel(t *testing.T) {
	type cfg struct {
		dp, vtd, width, hw int
	}
	cases := []cfg{
		{1, 1, 8, 0},
		{2, 1, 8, 0},
		{1, 2, 8, 0},
		{2, 3, 8, 0},
		{1, 1, 4, 0},
		{1, 1, 8, 1},
		{1, 1, 8, 2},
	}
	const payload = 20
	for _, tc := range cases {
		n, err := Build(Params{
			Spec:        topo.Figure3(),
			Width:       tc.width,
			HeaderWords: tc.hw,
			DataPipe:    tc.dp,
			LinkDelay:   tc.vtd,
			FastReclaim: true,
			Seed:        11,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Measure the one-way arrival directly: cycle the TURN reaches
		// the destination, minus the injection cycle.
		stages := len(n.Params.Spec.Stages)
		msgWords := n.MessageWords(payload)

		turnSeen := uint64(0)
		dest := 63
		start := n.Engine.Cycle()
		n.Send(0, dest, make([]byte, payload))
		// Step manually, watching for the TURN at any delivery link of
		// the destination endpoint.
		var deliveryEnds []func() word.Word
		for s := range n.Topo.Out {
			for j := range n.Topo.Out[s] {
				for bp, ref := range n.Topo.Out[s][j] {
					if ref.Kind == topo.KindEndpoint && ref.Index == dest {
						l := n.OutLink(s, j, bp)
						deliveryEnds = append(deliveryEnds, l.B().Recv)
					}
				}
			}
		}
		for i := 0; i < 3000 && turnSeen == 0; i++ {
			for _, recv := range deliveryEnds {
				if recv().Kind == word.Turn {
					turnSeen = n.Engine.Cycle()
				}
			}
			n.Engine.Step()
		}
		if turnSeen == 0 {
			t.Fatalf("%+v: TURN never reached the destination", tc)
		}
		oneWay := int(turnSeen - start)
		predicted := stages*tc.dp + (stages+1)*tc.vtd + msgWords - 1
		if oneWay != predicted {
			t.Errorf("%+v: one-way latency %d cycles, model predicts %d (stages=%d dp=%d vtd=%d words=%d)",
				tc, oneWay, predicted, stages, tc.dp, tc.vtd, msgWords)
		}
		// And the reliable round trip completes.
		if !n.RunUntilQuiet(3000) {
			t.Fatalf("%+v: network did not go quiet", tc)
		}
		res := n.Results()
		if len(res) != 1 || !res[0].Delivered {
			t.Fatalf("%+v: delivery failed", tc)
		}
	}
}

// TestRoundTripOverheadIsConstant verifies that the difference between
// the measured round trip and the model's one-way latency is the same
// protocol constant for every dp/vtd configuration (the reply crossing
// plus the fixed ack words), confirming the simulator adds no hidden
// configuration-dependent latency.
func TestRoundTripOverheadIsConstant(t *testing.T) {
	type cfg struct{ dp, vtd int }
	cases := []cfg{{1, 1}, {2, 1}, {1, 2}, {2, 2}, {3, 1}}
	const payload = 20
	replyWords := 3 // status + checksum + turn at w=8

	overheadMinusReturn := map[int]bool{}
	for _, tc := range cases {
		n, err := Build(Params{
			Spec:        topo.Figure3(),
			Width:       8,
			DataPipe:    tc.dp,
			LinkDelay:   tc.vtd,
			FastReclaim: true,
			Seed:        13,
		})
		if err != nil {
			t.Fatal(err)
		}
		stages := len(n.Params.Spec.Stages)
		msgWords := n.MessageWords(payload)
		n.Send(0, 63, make([]byte, payload))
		if !n.RunUntilQuiet(5000) {
			t.Fatal("not quiet")
		}
		r := n.Results()[0]
		if !r.Delivered {
			t.Fatal("not delivered")
		}
		roundTrip := int(r.Done - r.Injected)
		oneWay := stages*tc.dp + (stages+1)*tc.vtd + msgWords - 1
		// The return path crosses the same routers and links backward.
		returnPath := stages*tc.dp + (stages+1)*tc.vtd
		residual := roundTrip - oneWay - returnPath - replyWords
		overheadMinusReturn[residual] = true
		if residual < 0 || residual > 6 {
			t.Errorf("dp=%d vtd=%d: residual protocol overhead %d cycles outside [0,6] "+
				"(roundTrip=%d oneWay=%d return=%d reply=%d)",
				tc.dp, tc.vtd, residual, roundTrip, oneWay, returnPath, replyWords)
		}
	}
	if len(overheadMinusReturn) != 1 {
		t.Errorf("protocol overhead varies with configuration: %v", overheadMinusReturn)
	}
}

// TestVariableTurnDelayPerStage exercises the paper's variable turn delay:
// different link tiers carry different wire pipeline depths, and the
// one-way latency is the sum of the per-tier delays — wires of different
// lengths coexist transparently, held together by DATA-IDLE fill.
func TestVariableTurnDelayPerStage(t *testing.T) {
	delays := []int{1, 3, 2, 1} // injection, s0 out, s1 out, s2 out (delivery)
	n, err := Build(Params{
		Spec:            topo.Figure3(),
		Width:           8,
		DataPipe:        1,
		LinkDelay:       1,
		StageLinkDelays: delays,
		FastReclaim:     true,
		Seed:            19,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The routers' Table 2 turn-delay registers record the attached wire
	// depths (forward port of a stage-1 router sees the stage-0 output
	// tier, depth 3).
	r1 := n.RouterAt(1, 0)
	if got := r1.Settings().TurnDelay[0]; got != 3 {
		t.Fatalf("stage-1 forward port turn delay = %d, want 3", got)
	}
	// One-way latency: stages*dp + sum(link delays) + words - 1.
	const payload = 20
	msgWords := n.MessageWords(payload)
	wireSum := 0
	for _, d := range delays {
		wireSum += d
	}
	dest := 63
	var deliveryRecv []func() word.Word
	for s := range n.Topo.Out {
		for j := range n.Topo.Out[s] {
			for bp, ref := range n.Topo.Out[s][j] {
				if ref.Kind == topo.KindEndpoint && ref.Index == dest {
					deliveryRecv = append(deliveryRecv, n.OutLink(s, j, bp).B().Recv)
				}
			}
		}
	}
	start := n.Engine.Cycle()
	n.Send(0, dest, make([]byte, payload))
	arrival := uint64(0)
	for i := 0; i < 3000 && arrival == 0; i++ {
		for _, recv := range deliveryRecv {
			if recv().Kind == word.Turn {
				arrival = n.Engine.Cycle()
			}
		}
		n.Engine.Step()
	}
	if arrival == 0 {
		t.Fatal("message never arrived")
	}
	oneWay := int(arrival - start)
	predicted := 3*1 + wireSum + msgWords - 1
	if oneWay != predicted {
		t.Fatalf("one-way latency %d, model predicts %d with mixed wire depths %v",
			oneWay, predicted, delays)
	}
	// The round trip completes despite the heterogeneous turn delays.
	if !n.RunUntilQuiet(3000) {
		t.Fatal("not quiet")
	}
	if res := n.Results(); len(res) != 1 || !res[0].Delivered {
		t.Fatalf("delivery failed: %+v", res)
	}
}
