package core_test

import (
	"testing"

	"metro/internal/clock"
	"metro/internal/core"
	"metro/internal/link"
	"metro/internal/prng"
	"metro/internal/word"
)

// harness wires a single router to scriptable link ends: the test acts as
// the upstream sources (A ends of the forward links) and the downstream
// destinations (B ends of the backward links).
type harness struct {
	eng *clock.Engine
	r   *core.Router
	src []*link.End // we drive these (upstream side of forward ports)
	dst []*link.End // we observe/drive these (downstream side of backward ports)
}

func newHarness(cfg core.Config, set core.Settings, seed uint32) *harness {
	return buildHarness(cfg, set, prng.NewLFSR(seed))
}

func buildHarness(cfg core.Config, set core.Settings, rng prng.Source) *harness {
	h := &harness{eng: clock.New()}
	h.r = core.NewRouter("r0", cfg, set, rng)
	for fp := 0; fp < cfg.Inputs; fp++ {
		l := link.New("f", 1)
		h.r.AttachForward(fp, l.B())
		h.src = append(h.src, l.A())
		h.eng.Add(l)
	}
	for bp := 0; bp < cfg.Outputs; bp++ {
		l := link.New("b", 1)
		h.r.AttachBackward(bp, l.A())
		h.dst = append(h.dst, l.B())
		h.eng.Add(l)
	}
	h.eng.Add(h.r)
	return h
}

// idlePad extends seq to n words with DATA-IDLE fill, as a real network
// interface does to hold a connection open.
func idlePad(seq []word.Word, n int) []word.Word {
	out := append([]word.Word(nil), seq...)
	for len(out) < n {
		out = append(out, word.Word{Kind: word.DataIdle})
	}
	return out
}

func cfg4x4() core.Config {
	return core.Config{
		Inputs: 4, Outputs: 4, Width: 4, MaxDilation: 2,
		HeaderWords: 0, DataPipe: 1, MaxVTD: 4, RandomInputs: 2, ScanPaths: 2,
	}
}

func dil1Settings(cfg core.Config) core.Settings {
	s := core.DefaultSettings(cfg)
	s.Dilation = 1
	return s
}

// run advances one cycle; sends must be staged before calling it.
func (h *harness) run() { h.eng.Step() }

// collect runs n cycles feeding seq (one word per cycle) into forward port
// fp and returns the non-empty words observed at backward port bp.
func (h *harness) collect(fp, bp, n int, seq []word.Word) []word.Word {
	var got []word.Word
	for i := 0; i < n; i++ {
		if i < len(seq) {
			h.src[fp].Send(seq[i])
		}
		if w := h.dst[bp].Recv(); !w.IsEmpty() && w.Kind != word.DataIdle {
			got = append(got, w)
		}
		h.run()
	}
	return got
}

func TestRouteAndForwardData(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 1)
	// dilation 1, radix 4: direction 2 is backward port 2; 2 route bits.
	seq := idlePad([]word.Word{
		word.MakeRoute(2, 2),
		word.MakeData(0xA, 4),
		word.MakeData(0xB, 4),
	}, 12)
	got := h.collect(0, 2, 12, seq)
	// The route word is exhausted (2 bits consumed) and swallowed, so the
	// destination sees only the data.
	if len(got) != 2 {
		t.Fatalf("destination saw %d words (%v), want 2", len(got), got)
	}
	if got[0].Payload != 0xA || got[1].Payload != 0xB {
		t.Fatalf("data corrupted: %v", got)
	}
	if h.r.ConnectionCount() != 1 {
		t.Fatalf("ConnectionCount = %d, want 1", h.r.ConnectionCount())
	}
	if h.r.OwnerOf(2) != 0 {
		t.Fatalf("backward port 2 owner = %d, want 0", h.r.OwnerOf(2))
	}
}

func TestRouteWordForwardedWhenBitsRemain(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 1)
	// 4 bits of route: this router consumes 2, forwards 2 for a later stage.
	seq := idlePad([]word.Word{word.MakeRoute(0b1110, 4)}, 10)
	got := h.collect(0, 2, 10, seq) // low bits 0b10 = direction 2
	if len(got) != 1 || got[0].Kind != word.Route {
		t.Fatalf("expected a stripped route word, got %v", got)
	}
	if got[0].Bits != 2 || got[0].Payload != 0b11 {
		t.Fatalf("stripped route word = %v, want ROUTE(0b11/2b)", got[0])
	}
}

func TestDilatedRandomSelection(t *testing.T) {
	cfg := cfg4x4()
	set := core.DefaultSettings(cfg) // dilation 2: radix 2, dirs {0,1}
	counts := map[int]int{}
	for trial := 0; trial < 200; trial++ {
		h := newHarness(cfg, set, uint32(trial+1))
		seq := idlePad([]word.Word{word.MakeRoute(1, 1)}, 4) // direction 1: ports 2,3
		for i := 0; i < 4; i++ {
			h.src[0].Send(seq[i])
			h.run()
		}
		for bp := 2; bp < 4; bp++ {
			if h.r.OwnerOf(bp) == 0 {
				counts[bp]++
			}
		}
	}
	if counts[2]+counts[3] != 200 {
		t.Fatalf("allocations lost: %v", counts)
	}
	if counts[2] < 50 || counts[3] < 50 {
		t.Fatalf("selection not balanced across dilated ports: %v", counts)
	}
}

func TestBlockedDetailedReply(t *testing.T) {
	cfg := cfg4x4()
	set := dil1Settings(cfg)
	set.FastReclaim[1] = false
	h := newHarness(cfg, set, 3)

	// First connection takes direction 0 (the only port in dir 0).
	h.src[0].Send(word.MakeRoute(0, 2))
	h.run()
	h.src[0].Send(word.Word{Kind: word.DataIdle})
	h.run()
	if h.r.OwnerOf(0) != 0 {
		t.Fatal("setup connection not established")
	}

	// Second connection to the same direction must block; in detailed mode
	// the reply comes after the TURN.
	seq := []word.Word{
		word.MakeRoute(0, 2),
		word.MakeData(1, 4),
		{Kind: word.Turn},
	}
	var got []word.Word
	for i := 0; i < 15; i++ {
		h.src[0].Send(word.Word{Kind: word.DataIdle}) // hold first connection
		if i < len(seq) {
			h.src[1].Send(seq[i])
		}
		if w := h.src[1].Recv(); !w.IsEmpty() && w.Kind != word.DataIdle {
			got = append(got, w)
		}
		h.run()
	}
	// Expect STATUS(blocked), two checksum words (w=4), DROP.
	if len(got) != 4 {
		t.Fatalf("blocked reply = %v, want status+2 cksum+drop", got)
	}
	if got[0].Kind != word.Status || got[0].Payload&word.StatusBlocked == 0 {
		t.Fatalf("first reply word = %v, want blocked STATUS", got[0])
	}
	if got[1].Kind != word.ChecksumWord || got[2].Kind != word.ChecksumWord {
		t.Fatalf("reply = %v, want checksum words after status", got)
	}
	if got[3].Kind != word.Drop {
		t.Fatalf("reply must end with DROP, got %v", got)
	}
	// Verify the reported checksum covers the words the router received.
	var ck word.Checksum
	ck.Add(seq[0])
	ck.Add(seq[1])
	if sum := word.JoinChecksum(got[1:3], 4); sum != ck.Sum() {
		t.Fatalf("blocked reply checksum = %#x, want %#x", sum, ck.Sum())
	}
	if h.r.ConnectionCount() != 1 {
		t.Fatalf("blocked connection not released: %d", h.r.ConnectionCount())
	}
}

func TestBlockedFastReclaimBCB(t *testing.T) {
	cfg := cfg4x4()
	set := dil1Settings(cfg) // FastReclaim defaults on
	h := newHarness(cfg, set, 3)

	h.src[0].Send(word.MakeRoute(0, 2))
	h.run()
	h.src[0].Send(word.Word{Kind: word.DataIdle})
	h.run()

	// Port 1 requests the occupied direction: BCB should come back.
	sawBCB := -1
	seq := []word.Word{word.MakeRoute(0, 2), word.MakeData(1, 4), word.MakeData(2, 4)}
	for i := 0; i < 10; i++ {
		h.src[0].Send(word.Word{Kind: word.DataIdle}) // hold first connection
		if i < len(seq) {
			h.src[1].Send(seq[i])
		}
		if h.src[1].RecvBCB() && sawBCB < 0 {
			sawBCB = i
		}
		h.run()
	}
	if sawBCB < 0 {
		t.Fatal("no BCB observed at the source")
	}
	// Source aborts with DROP; the draining port must return to idle and
	// the BCB must deassert.
	for _, w := range []word.Word{{Kind: word.Drop}, {}, {}} {
		h.src[0].Send(word.Word{Kind: word.DataIdle})
		if !w.IsEmpty() {
			h.src[1].Send(w)
		}
		h.run()
	}
	if h.r.ConnectionCount() != 1 {
		t.Fatalf("drained port not idle: %d connections", h.r.ConnectionCount())
	}
	if h.src[1].RecvBCB() {
		t.Fatal("BCB still asserted after drop")
	}
}

func TestTurnReversalStatusAndData(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 5)
	seq := []word.Word{
		word.MakeRoute(3, 2),
		word.MakeData(0x7, 4),
		{Kind: word.Turn},
	}
	// Destination replies with two data words once it sees the TURN.
	var up []word.Word // words observed at the source side
	replied := false
	var reply []word.Word
	for i := 0; i < 30; i++ {
		if i < len(seq) {
			h.src[0].Send(seq[i])
		}
		if w := h.dst[3].Recv(); w.Kind == word.Turn {
			replied = true
			reply = []word.Word{word.MakeData(0xC, 4), word.MakeData(0xD, 4)}
		}
		if replied && len(reply) > 0 {
			h.dst[3].Send(reply[0])
			reply = reply[1:]
		}
		if w := h.src[0].Recv(); !w.IsEmpty() && w.Kind != word.DataIdle {
			up = append(up, w)
		}
		h.run()
	}
	// Source should see: STATUS(ok), cksum x2, then the reply data.
	if len(up) < 5 {
		t.Fatalf("source saw %v, want status+cksum+2 data", up)
	}
	if up[0].Kind != word.Status || up[0].Payload&word.StatusBlocked != 0 {
		t.Fatalf("first upstream word = %v, want ok STATUS", up[0])
	}
	if up[1].Kind != word.ChecksumWord || up[2].Kind != word.ChecksumWord {
		t.Fatalf("upstream = %v, want checksum words", up)
	}
	var ck word.Checksum
	ck.Add(seq[0])
	ck.Add(seq[1])
	if sum := word.JoinChecksum(up[1:3], 4); sum != ck.Sum() {
		t.Fatalf("status checksum = %#x, want %#x", sum, ck.Sum())
	}
	if up[3].Payload != 0xC || up[4].Payload != 0xD {
		t.Fatalf("reply data corrupted: %v", up[3:])
	}
}

func TestDropReleasesConnection(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 5)
	seq := []word.Word{
		word.MakeRoute(0, 2),
		word.MakeData(1, 4),
		{Kind: word.Drop},
	}
	var down []word.Word
	for i := 0; i < 10; i++ {
		if i < len(seq) {
			h.src[0].Send(seq[i])
		}
		if w := h.dst[0].Recv(); !w.IsEmpty() && w.Kind != word.DataIdle {
			down = append(down, w)
		}
		h.run()
	}
	if h.r.ConnectionCount() != 0 {
		t.Fatalf("connection not released after DROP")
	}
	if h.r.OwnerOf(0) != -1 {
		t.Fatal("backward port not freed")
	}
	// The DROP must propagate downstream so the next stage releases too.
	if len(down) == 0 || down[len(down)-1].Kind != word.Drop {
		t.Fatalf("downstream saw %v, want trailing DROP", down)
	}
}

func TestEmptyStreamImplicitClose(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 5)
	seq := []word.Word{word.MakeRoute(0, 2), word.MakeData(1, 4)}
	var down []word.Word
	for i := 0; i < 12; i++ {
		if i < len(seq) {
			h.src[0].Send(seq[i])
		}
		// After the data, the source goes silent (dead source model).
		if w := h.dst[0].Recv(); !w.IsEmpty() && w.Kind != word.DataIdle {
			down = append(down, w)
		}
		h.run()
	}
	if h.r.ConnectionCount() != 0 {
		t.Fatal("silent upstream did not close the connection")
	}
	if len(down) == 0 || down[len(down)-1].Kind != word.Drop {
		t.Fatalf("downstream saw %v, want synthesized DROP", down)
	}
}

func TestHeaderWordsConsumed(t *testing.T) {
	cfg := cfg4x4()
	cfg.HeaderWords = 2
	h := newHarness(cfg, dil1Settings(cfg), 5)
	seq := idlePad([]word.Word{
		word.MakeRoute(1, 2),
		{Kind: word.HeaderPad, Payload: 0xF},
		word.MakeData(0x9, 4),
	}, 12)
	got := h.collect(0, 1, 12, seq)
	// Both header words are consumed by this router; only data flows on.
	if len(got) != 1 || got[0].Kind != word.Data || got[0].Payload != 0x9 {
		t.Fatalf("downstream saw %v, want just DATA(9)", got)
	}
}

func TestDataPipeDepthDelaysData(t *testing.T) {
	arrival := func(dp int) int {
		cfg := cfg4x4()
		cfg.DataPipe = dp
		h := newHarness(cfg, dil1Settings(cfg), 5)
		seq := []word.Word{word.MakeRoute(0, 2), word.MakeData(1, 4)}
		for i := 0; i < 20; i++ {
			if i < len(seq) {
				h.src[0].Send(seq[i])
			}
			if w := h.dst[0].Recv(); w.Kind == word.Data {
				return i
			}
			h.run()
		}
		return -1
	}
	a1, a3 := arrival(1), arrival(3)
	if a1 < 0 || a3 < 0 {
		t.Fatal("data never arrived")
	}
	if a3-a1 != 2 {
		t.Fatalf("dp=3 arrival %d, dp=1 arrival %d: want 2 extra cycles", a3, a1)
	}
}

func TestDisabledBackwardPortNotAllocated(t *testing.T) {
	cfg := cfg4x4()
	set := core.DefaultSettings(cfg) // dilation 2: dir 1 = ports 2,3
	set.BackwardEnabled[2] = false
	for trial := 0; trial < 20; trial++ {
		h := newHarness(cfg, set, uint32(trial+1))
		h.src[0].Send(word.MakeRoute(1, 1))
		h.run()
		h.run()
		if h.r.OwnerOf(2) != -1 {
			t.Fatal("disabled port was allocated")
		}
		if h.r.OwnerOf(3) != 0 {
			t.Fatal("enabled twin port was not allocated")
		}
	}
}

func TestDisabledForwardPortIgnoresTraffic(t *testing.T) {
	cfg := cfg4x4()
	set := dil1Settings(cfg)
	set.ForwardEnabled[2] = false
	h := newHarness(cfg, set, 9)
	h.src[2].Send(word.MakeRoute(0, 2))
	h.run()
	h.run()
	if h.r.ConnectionCount() != 0 {
		t.Fatal("disabled forward port accepted a connection")
	}
}

func TestContentionServedInPortOrder(t *testing.T) {
	cfg := cfg4x4()
	set := core.DefaultSettings(cfg) // dilation 2: 2 ports per direction
	h := newHarness(cfg, set, 11)
	// Three simultaneous requests for direction 0 (2 ports): 2 win, 1 blocks.
	h.src[0].Send(word.MakeRoute(0, 1))
	h.src[1].Send(word.MakeRoute(0, 1))
	h.src[2].Send(word.MakeRoute(0, 1))
	h.run() // words travel the links
	h.run() // allocation cycle
	winners := 0
	for bp := 0; bp < 2; bp++ {
		if h.r.OwnerOf(bp) >= 0 {
			winners++
		}
	}
	if winners != 2 {
		t.Fatalf("winners = %d, want 2", winners)
	}
	if h.r.OwnerOf(0) == 2 || h.r.OwnerOf(1) == 2 {
		t.Fatal("port-order arbitration violated: fp2 beat fp0/fp1")
	}
}

func TestBCBPropagatesUpstreamAndFreesPort(t *testing.T) {
	// Chain: us -> router A -> router B(all dir-0 ports busy) and check BCB
	// reaches us through A, with A's backward port freed promptly.
	cfg := cfg4x4()
	setA := dil1Settings(cfg)
	setB := dil1Settings(cfg)

	eng := clock.New()
	ra := core.NewRouter("A", cfg, setA, prng.NewLFSR(21))
	rb := core.NewRouter("B", cfg, setB, prng.NewLFSR(22))

	var srcs []*link.End
	for fp := 0; fp < cfg.Inputs; fp++ {
		l := link.New("fa", 1)
		ra.AttachForward(fp, l.B())
		srcs = append(srcs, l.A())
		eng.Add(l)
	}
	// A's backward ports all feed B's forward ports.
	for p := 0; p < cfg.Outputs; p++ {
		l := link.New("ab", 1)
		ra.AttachBackward(p, l.A())
		rb.AttachForward(p, l.B())
		eng.Add(l)
	}
	var dsts []*link.End
	for bp := 0; bp < cfg.Outputs; bp++ {
		l := link.New("bd", 1)
		rb.AttachBackward(bp, l.A())
		dsts = append(dsts, l.B())
		eng.Add(l)
	}
	eng.Add(ra, rb)

	// Occupy B's direction 0 via A (route: dir0 at A, dir0 at B).
	srcs[0].Send(word.MakeRoute(0b0000, 4))
	eng.Step()
	for i := 0; i < 6; i++ {
		srcs[0].Send(word.Word{Kind: word.DataIdle})
		eng.Step()
	}
	if rb.OwnerOf(0) < 0 {
		t.Fatal("setup connection did not reach router B")
	}

	// Second connection: A dir 1, then B dir 0 (busy) -> fast-blocked at B.
	sawBCB := false
	for i := 0; i < 15; i++ {
		srcs[0].Send(word.Word{Kind: word.DataIdle}) // hold first connection
		switch {
		case i == 0:
			srcs[1].Send(word.MakeRoute(0b0001, 4))
		case i < 6:
			srcs[1].Send(word.MakeData(uint32(i), 4))
		}
		if srcs[1].RecvBCB() {
			sawBCB = true
		}
		eng.Step()
	}
	if !sawBCB {
		t.Fatal("BCB did not propagate through router A to the source")
	}
	if ra.OwnerOf(1) != -1 {
		t.Fatal("router A did not free its backward port on BCB")
	}
	// Terminate the aborted stream; A's forward port should go idle.
	srcs[0].Send(word.Word{Kind: word.DataIdle})
	srcs[1].Send(word.Word{Kind: word.Drop})
	eng.Step()
	for i := 0; i < 3; i++ {
		srcs[0].Send(word.Word{Kind: word.DataIdle})
		eng.Step()
	}
	if got := ra.ConnectionCount(); got != 1 {
		t.Fatalf("router A connections = %d, want only the held one", got)
	}
}

func TestKillConnectionAssertsBCB(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 13)
	h.src[0].Send(word.MakeRoute(0, 2))
	h.run()
	h.src[0].Send(word.Word{Kind: word.DataIdle})
	h.run()
	if h.r.OwnerOf(0) != 0 {
		t.Fatal("connection not set up")
	}
	h.r.KillConnection(h.eng.Cycle(), 0)
	if h.r.OwnerOf(0) != -1 {
		t.Fatal("KillConnection did not free the backward port")
	}
	h.src[0].Send(word.Word{Kind: word.DataIdle})
	h.run()
	h.src[0].Send(word.Word{Kind: word.DataIdle})
	h.run()
	if !h.src[0].RecvBCB() {
		t.Fatal("KillConnection did not assert BCB toward the source")
	}
}

func TestMalformedRouteWordDiscarded(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 13)
	// Router needs 2 bits; send a 1-bit route word.
	h.src[0].Send(word.MakeRoute(1, 1))
	h.run()
	h.run()
	if h.r.ConnectionCount() != 0 {
		t.Fatal("malformed route word should not open a connection")
	}
}

func TestConfigValidation(t *testing.T) {
	good := cfg4x4()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []core.Config{
		{Inputs: 3, Outputs: 4, Width: 4, MaxDilation: 1, DataPipe: 1, RandomInputs: 1, ScanPaths: 1},
		{Inputs: 4, Outputs: 5, Width: 4, MaxDilation: 1, DataPipe: 1, RandomInputs: 1, ScanPaths: 1},
		{Inputs: 4, Outputs: 4, Width: 1, MaxDilation: 1, DataPipe: 1, RandomInputs: 1, ScanPaths: 1},
		{Inputs: 4, Outputs: 4, Width: 4, MaxDilation: 8, DataPipe: 1, RandomInputs: 1, ScanPaths: 1},
		{Inputs: 4, Outputs: 4, Width: 4, MaxDilation: 1, DataPipe: 0, RandomInputs: 1, ScanPaths: 1},
		{Inputs: 4, Outputs: 4, Width: 4, MaxDilation: 1, DataPipe: 1, RandomInputs: 0, ScanPaths: 1},
		{Inputs: 4, Outputs: 4, Width: 4, MaxDilation: 3, DataPipe: 1, RandomInputs: 1, ScanPaths: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestSettingsValidation(t *testing.T) {
	cfg := cfg4x4()
	s := core.DefaultSettings(cfg)
	if err := s.Validate(cfg); err != nil {
		t.Fatalf("default settings rejected: %v", err)
	}
	s2 := s.Clone()
	s2.Dilation = 4 // exceeds MaxDilation 2
	if err := s2.Validate(cfg); err == nil {
		t.Error("oversized dilation accepted")
	}
	s3 := s.Clone()
	s3.TurnDelay[0] = 99
	if err := s3.Validate(cfg); err == nil {
		t.Error("oversized turn delay accepted")
	}
	s4 := s.Clone()
	s4.ForwardEnabled = s4.ForwardEnabled[:1]
	if err := s4.Validate(cfg); err == nil {
		t.Error("wrong-length ForwardEnabled accepted")
	}
}

func TestRadixDilationHelpers(t *testing.T) {
	cfg := core.Config{Inputs: 8, Outputs: 8, Width: 4, MaxDilation: 2,
		HeaderWords: 0, DataPipe: 1, MaxVTD: 4, RandomInputs: 2, ScanPaths: 1}
	set := core.DefaultSettings(cfg)
	r := core.NewRouter("x", cfg, set, prng.NewLFSR(1))
	if r.Radix() != 4 {
		t.Fatalf("Radix = %d, want 4", r.Radix())
	}
	if r.DirBits() != 2 {
		t.Fatalf("DirBits = %d, want 2", r.DirBits())
	}
	if r.Direction(5) != 2 {
		t.Fatalf("Direction(5) = %d, want 2", r.Direction(5))
	}
	lo, hi := r.PortsFor(3)
	if lo != 6 || hi != 8 {
		t.Fatalf("PortsFor(3) = [%d,%d), want [6,8)", lo, hi)
	}
}

type captureTracer struct {
	allocated, blocked, released, reversed int
}

func (c *captureTracer) Allocated(uint64, core.RouterID, int, int)     { c.allocated++ }
func (c *captureTracer) Blocked(uint64, core.RouterID, int, int, bool) { c.blocked++ }
func (c *captureTracer) Released(uint64, core.RouterID, int, int)      { c.released++ }
func (c *captureTracer) Reversed(uint64, core.RouterID, int, bool)     { c.reversed++ }

func TestTracerEvents(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 17)
	tr := &captureTracer{}
	h.r.SetTracer(tr)
	seq := []word.Word{word.MakeRoute(0, 2), word.MakeData(1, 4), {Kind: word.Drop}}
	h.collect(0, 0, 10, seq)
	if tr.allocated != 1 || tr.released != 1 {
		t.Fatalf("tracer: %+v, want 1 allocation and 1 release", tr)
	}
	// Blocked event: occupy dir 0 then request again.
	h.src[0].Send(word.MakeRoute(0, 2))
	h.run()
	h.src[0].Send(word.Word{Kind: word.DataIdle})
	h.src[1].Send(word.MakeRoute(0, 2))
	h.run()
	h.src[0].Send(word.Word{Kind: word.DataIdle})
	h.run()
	if tr.blocked != 1 {
		t.Fatalf("tracer blocked = %d, want 1", tr.blocked)
	}
}
