package main_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metro/internal/analysis"
	"metro/internal/clitest"
)

// badpkg is the deliberately non-conforming fixture package. It sits
// under testdata/ so recursive walks (go build, metrovet ./...) never
// see it; only this explicit, module-root-relative pattern reaches it.
const badpkg = "./cmd/metrovet/testdata/src/internal/badpkg"

// TestGoldenRules pins the -rules listing: the rule names are the
// annotation vocabulary (//metrovet:alloc etc.) the rest of the tree
// depends on, so renames must be deliberate.
func TestGoldenRules(t *testing.T) {
	clitest.Golden(t, "rules", "metrovet", "-rules")
}

// TestCleanPackagePasses runs the analyzers on a real package that must
// stay finding-free: a zero-exit, zero-output run is the contract CI's
// whole-tree invocation depends on.
func TestCleanPackagePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	out := clitest.Run(t, "metrovet", "./internal/word")
	if len(out) != 0 {
		t.Fatalf("metrovet reported findings on a clean package:\n%s", out)
	}
}

// TestSelfHost is the self-hosting gate: the analyzer source and its
// driver must satisfy every rule they enforce on the simulator.
func TestSelfHost(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	out := clitest.Run(t, "metrovet", "./internal/analysis", "./cmd/metrovet")
	if len(out) != 0 {
		t.Fatalf("metrovet does not self-host cleanly:\n%s", out)
	}
}

// The badpkg goldens pin all three emitters on the same fixture run —
// text, JSON report, and SARIF log — including the findings exit code.
func TestGoldenBadpkgText(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	out := clitest.ExitCode(t, 1, "metrovet", badpkg)
	clitest.GoldenBytes(t, "badpkg-text", out)
}

func TestGoldenBadpkgJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	one := clitest.ExitCode(t, 1, "metrovet", "-json", badpkg)
	two := clitest.ExitCode(t, 1, "metrovet", "-json", badpkg)
	if !bytes.Equal(one, two) {
		t.Fatal("-json output is not byte-stable across runs")
	}
	clitest.GoldenBytes(t, "badpkg-json", one)
}

func TestGoldenBadpkgSARIF(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	one := clitest.ExitCode(t, 1, "metrovet", "-sarif", badpkg)
	two := clitest.ExitCode(t, 1, "metrovet", "-sarif", badpkg)
	if !bytes.Equal(one, two) {
		t.Fatal("-sarif output is not byte-stable across runs")
	}
	clitest.GoldenBytes(t, "badpkg-sarif", one)
}

// TestExclusiveOutputFlags pins the usage-error exit code for the
// impossible flag combination.
func TestExclusiveOutputFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	out := clitest.ExitCode(t, 2, "metrovet", "-json", "-sarif", badpkg)
	if !strings.Contains(string(out), "mutually exclusive") {
		t.Fatalf("usage error should name the conflict:\n%s", out)
	}
}

// TestCacheMissThenHit drives the incremental cache through a cold miss
// and a warm full hit, asserting the two runs are byte-identical (cache
// state must never change what the tool reports) and that -v narrates
// the hit.
func TestCacheMissThenHit(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	cacheDir := filepath.Join(t.TempDir(), "vetcache")
	cold := clitest.ExitCode(t, 1, "metrovet", "-cache", cacheDir, "-json", badpkg)
	warm := clitest.ExitCode(t, 1, "metrovet", "-cache", cacheDir, "-json", badpkg)
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm cache run differs from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	clitest.GoldenBytes(t, "badpkg-json", cold) // same document as the uncached run

	verbose := clitest.ExitCode(t, 1, "metrovet", "-cache", cacheDir, "-v", badpkg)
	if !strings.Contains(string(verbose), "cache: full hit") {
		t.Fatalf("-v on an unchanged tree should report a full hit:\n%s", verbose)
	}
}

// TestWriteBaselineRefusesClobber pins the -write-baseline safety rail:
// overwriting an existing baseline requires -force.
func TestWriteBaselineRefusesClobber(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "baseline.txt")
	clitest.ExitCode(t, 0, "metrovet", "-write-baseline", path, badpkg)
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	out := clitest.ExitCode(t, 2, "metrovet", "-write-baseline", path, badpkg)
	if !strings.Contains(string(out), "-force") {
		t.Fatalf("clobber refusal should mention -force:\n%s", out)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("refused overwrite must leave the baseline untouched")
	}

	clitest.ExitCode(t, 0, "metrovet", "-write-baseline", path, "-force", badpkg)
	// And the baseline it wrote absorbs the findings it was written from.
	out = clitest.ExitCode(t, 0, "metrovet", "-baseline", path, badpkg)
	if len(out) != 0 {
		t.Fatalf("baselined run should be silent:\n%s", out)
	}
}

// BenchmarkMetrovetWholeTree measures the full-repository analysis the
// CI gate runs: load, type-check, and every rule including the
// interprocedural ones, with no cache. perf/BENCH_2.json records this.
func BenchmarkMetrovetWholeTree(b *testing.B) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := analysis.RunTree(root, analysis.TreeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Findings) != 0 {
			b.Fatalf("whole tree is expected to be clean, got %d finding(s)", len(res.Findings))
		}
	}
}
