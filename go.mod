module metro

go 1.24
