package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"metro/internal/stats"
)

// Perfetto/Chrome trace-event export. The emitted JSON follows the
// Trace Event Format (the `traceEvents` array form) that Perfetto and
// chrome://tracing load directly:
//
//   - every simulation emitter becomes a named thread — routers under a
//     "routers" process, endpoints under "endpoints", network-scope
//     emitters under "network" — with metadata (`ph:"M"`) naming them;
//   - every recorded event becomes a thread-scoped instant (`ph:"i"`)
//     at ts = cycle (1 cycle = 1 µs of trace time), carrying the
//     kind-specific A/B payload and message ID in args;
//   - gauges additionally become counter tracks (`ph:"C"`), so port
//     occupancy, open connections and queue depths plot as time series;
//   - reconstructed message lifecycles (see Summarize) become complete
//     spans (`ph:"X"`) on a "messages" process, one track per source
//     endpoint, phase-by-phase: queue-wait, retry-wait, transmit,
//     turnaround.
//
// The export is deterministic: events are emitted in recorded order,
// spans in message-ID order, and args maps marshal with sorted keys.

// perfettoEvent is one Trace Event Format record. Field order is fixed
// by the struct, so the byte output of Marshal is deterministic.
type perfettoEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// Process IDs of the exported trace. Counters and faults live on the
// network process; each router and endpoint is a thread of its group
// process; message phase spans get their own process so Perfetto shows
// them as a separate track group.
const (
	pidNetwork   = 1
	pidRouters   = 2
	pidEndpoints = 3
	pidMessages  = 4
)

// tidOf maps a source to a stable thread ID within its process.
func tidOf(s Source) int {
	switch s.Kind {
	case SrcRouter:
		// Stage-major, lanes adjacent: stable and collision-free for any
		// realistic topology (< 8192 routers per stage, < 8 lanes).
		return (int(s.Stage)+1)*65536 + int(s.Index)*8 + int(s.Lane)
	case SrcEndpoint:
		return int(s.Index) + 1
	case SrcNetwork:
		return int(s.Stage) + 2 // -1 (whole network) → 1, stage s → s+2
	default:
		return 0
	}
}

func pidOf(s Source) int {
	switch s.Kind {
	case SrcRouter:
		return pidRouters
	case SrcEndpoint:
		return pidEndpoints
	case SrcNetwork:
		return pidNetwork
	default:
		return pidNetwork
	}
}

// ExportPerfetto writes the trace as Chrome trace-event JSON. The
// summary drives the message phase spans; pass Summarize(t) (callers
// that already summarized reuse it).
func ExportPerfetto(w io.Writer, t Trace, s *Summary) error {
	f := perfettoFile{DisplayTimeUnit: "ms", TraceEvents: []perfettoEvent{}}
	meta := func(pid int, name string, sortIdx int) {
		f.TraceEvents = append(f.TraceEvents,
			perfettoEvent{Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]any{"name": name}},
			perfettoEvent{Name: "process_sort_index", Phase: "M", PID: pid,
				Args: map[string]any{"sort_index": sortIdx}})
	}
	meta(pidNetwork, "network", 0)
	meta(pidMessages, "messages", 1)
	meta(pidRouters, "routers", 2)
	meta(pidEndpoints, "endpoints", 3)

	// Thread metadata for every source that appears in the trace, named
	// the way netsim names components ("s2r5.m1", "ep3", "net.s0").
	seen := map[[2]int]bool{}
	named := []perfettoEvent{}
	for _, e := range t.Events {
		key := [2]int{pidOf(e.Src), tidOf(e.Src)}
		if seen[key] {
			continue
		}
		seen[key] = true
		named = append(named, perfettoEvent{
			Name: "thread_name", Phase: "M", PID: key[0], TID: key[1],
			Args: map[string]any{"name": e.Src.String()},
		})
	}
	sort.Slice(named, func(i, j int) bool {
		if named[i].PID != named[j].PID {
			return named[i].PID < named[j].PID
		}
		return named[i].TID < named[j].TID
	})
	f.TraceEvents = append(f.TraceEvents, named...)

	// The event stream: instants everywhere, counters additionally for
	// gauges.
	for _, e := range t.Events {
		ts := float64(e.Cycle)
		if e.Kind.Family() == "gauge" {
			args := map[string]any{"value": e.A}
			if e.Kind == EvGaugeQueueDepth {
				args = map[string]any{"total": e.A, "deepest": e.B}
			}
			f.TraceEvents = append(f.TraceEvents, perfettoEvent{
				Name: counterName(e), Phase: "C", TS: ts, PID: pidNetwork, Args: args,
			})
		} else {
			args := map[string]any{"a": e.A, "b": e.B}
			if e.Msg != 0 {
				args["msg"] = e.Msg
			}
			f.TraceEvents = append(f.TraceEvents, perfettoEvent{
				Name: e.Kind.String(), Phase: "i", TS: ts, Scope: "t",
				PID: pidOf(e.Src), TID: tidOf(e.Src), Cat: category(e.Kind), Args: args,
			})
		}
	}

	// Message lifecycle spans, one track per source endpoint. Phases are
	// sequential, so they render as adjacent slices; zero-length phases
	// are skipped.
	for _, m := range s.Msgs {
		if !m.Complete {
			continue
		}
		span := func(name string, from, to uint64) {
			if to <= from {
				return
			}
			f.TraceEvents = append(f.TraceEvents, perfettoEvent{
				Name: name, Phase: "X", TS: float64(from), Dur: float64(to - from),
				PID: pidMessages, TID: m.Src + 1, Cat: "msg",
				Args: map[string]any{"msg": m.ID, "dest": m.Dest, "retries": m.Retries},
			})
		}
		span("queue-wait", m.Queued, m.FirstAttempt)
		span("retry-wait", m.FirstAttempt, m.LastAttempt)
		span("transmit", m.LastAttempt, m.LastTurn)
		span("turnaround", m.LastTurn, m.Done)
	}
	// Name the message tracks after their source endpoint.
	msgTracks := map[int]bool{}
	for _, m := range s.Msgs {
		if m.Complete && !msgTracks[m.Src] {
			msgTracks[m.Src] = true
		}
	}
	tracks := make([]int, 0, len(msgTracks))
	for src := range msgTracks {
		tracks = append(tracks, src)
	}
	sort.Ints(tracks)
	for _, src := range tracks {
		f.TraceEvents = append(f.TraceEvents, perfettoEvent{
			Name: "thread_name", Phase: "M", PID: pidMessages, TID: src + 1,
			Args: map[string]any{"name": fmt.Sprintf("msgs from ep%d", src)},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// counterName labels a gauge's counter track.
func counterName(e Event) string {
	base := map[Kind]string{
		EvGaugeConns:      "open-conns",
		EvGaugeBusyPorts:  "busy-ports",
		EvGaugeQueueDepth: "queue-depth",
		EvGaugeInFlight:   "in-flight",
	}[e.Kind]
	if e.Src.Stage >= 0 {
		return fmt.Sprintf("%s.s%d", base, e.Src.Stage)
	}
	return base
}

// category groups event kinds for Perfetto's filter UI.
func category(k Kind) string {
	if f := k.Family(); f != "none" {
		return f
	}
	return "gauge"
}

// ExportCSV writes the summary's latency distributions as a CSV
// histogram table: one row per (phase, bucket), with the per-phase
// aggregate statistics repeated for joining. Buckets are equal-width
// over each phase's observed range.
func ExportCSV(w io.Writer, s *Summary, buckets int) error {
	if buckets <= 0 {
		buckets = 20
	}
	if _, err := fmt.Fprintln(w, "phase,count,mean,p50,p95,max,bucket_lo,bucket_hi,bucket_count"); err != nil {
		return err
	}
	phases := []struct {
		name   string
		sample *stats.Sample
	}{
		{"total", &s.TotalLat},
		{"queue-wait", &s.QueueWait},
		{"retry-wait", &s.RetryWait},
		{"transmit", &s.Transmit},
		{"turnaround", &s.Turnaround},
	}
	for _, p := range phases {
		if p.sample.Count() == 0 {
			continue
		}
		for _, b := range p.sample.Buckets(buckets) {
			if _, err := fmt.Fprintf(w, "%s,%d,%.2f,%.0f,%.0f,%.0f,%.2f,%.2f,%d\n",
				p.name, p.sample.Count(), p.sample.Mean(),
				p.sample.Percentile(50), p.sample.Percentile(95), p.sample.Max(),
				b.Lo, b.Hi, b.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
