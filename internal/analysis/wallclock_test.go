package analysis

import "testing"

func TestWallClockFires(t *testing.T) {
	got := runRule(t, WallClock(), "metro/internal/core", map[string]string{
		"a.go": `package core

import "time"

func bad() time.Time {
	time.Sleep(time.Millisecond) // line 6: finding
	return time.Now()            // line 7: finding
}

func okDurationMath() time.Duration {
	return 3 * time.Second // constants are fine; only clock reads are banned
}
`,
	})
	wantFindings(t, got, "no-wallclock", [2]any{"a.go", 6}, [2]any{"a.go", 7})
}

func TestWallClockAliasedImportAndTestFiles(t *testing.T) {
	got := runRule(t, WallClock(), "metro/internal/netsim", map[string]string{
		"a_test.go": `package netsim

import wall "time"

func helper() int64 {
	return wall.Now().UnixNano() // line 6: alias does not hide the package
}
`,
	})
	wantFindings(t, got, "no-wallclock", [2]any{"a_test.go", 6})
}

func TestWallClockSilentOutsideInternal(t *testing.T) {
	src := map[string]string{
		"a.go": `package main

import "time"

func main() { _ = time.Now() }
`,
	}
	if got := runRule(t, WallClock(), "metro/cmd/metrosim", src); len(got) != 0 {
		t.Fatalf("cmd/ packages are out of scope, got %v", got)
	}
}

func TestWallClockIgnoreDirective(t *testing.T) {
	got := runRule(t, WallClock(), "metro/internal/stats", map[string]string{
		"a.go": `package stats

import "time"

//metrovet:ignore no-wallclock progress reporting only, never feeds the model
func progress() time.Time { return time.Now() }

func bare() time.Time {
	//metrovet:ignore no-wallclock
	return time.Now() // line 10: reasonless directive suppresses nothing
}
`,
	})
	wantFindings(t, got, "no-wallclock", [2]any{"a.go", 10})
}
