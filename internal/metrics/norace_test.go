//go:build !race

package metrics

// raceEnabled reports that the race detector is not active, so the
// zero-allocation gates run.
const raceEnabled = false
