// Package kernel compiles an assembled METRO network into a flattened
// struct-of-arrays execution plan for the clock engine.
//
// The per-component engine pays a pointer-chasing tax on every cycle: one
// virtual Eval and Commit per registered component, link pipelines
// scattered across hundreds of small allocations, and shard dispatch
// through per-affinity slices. A compiled kernel removes all of it. Link
// pipeline registers live in flat per-delay-class arenas (link.Arena), so
// the whole commit phase of the interconnect is a strided sweep over a few
// contiguous slices. Evaluation units — router columns and endpoints — are
// stored as parallel arrays (kind, index) walked by plain loops with
// direct, devirtualized calls per concrete type. Adjacency between units
// and arena-resident links is precomputed at compile time in CSR form, so
// structural queries (and the compile-time wiring audit) never touch the
// component graph again.
//
// The component structs are not replaced: a core.Router or nic.Endpoint
// referenced by a unit is the same object tests, telemetry, and scan
// already observe, and a link.Link carved from an arena is a view over
// arena memory. That is the view-struct contract documented in
// docs/KERNEL.md — the kernel changes where state lives and how it is
// driven, never what it is.
//
// Unit order is the contract that makes the kernel bit-identical to the
// per-component engine: the builder must be fed units in exactly the order
// the equivalent AddSharded registrations would occur, and a cascade group
// is a single unit because its members share an LFSR stream and the
// wired-AND IN-USE check within a cycle.
package kernel

import (
	"fmt"

	"metro/internal/cascade"
	"metro/internal/core"
	"metro/internal/link"
	"metro/internal/nic"
)

// unitKind discriminates the parallel unit arrays.
type unitKind uint8

const (
	unitRouter   unitKind = iota // a single-router column
	unitCascade                  // a cascaded column: one Group, one unit
	unitEndpoint                 // a network endpoint
)

// LinkRef names one arena-resident link: the arena's index in the compiled
// plan plus the link's index within that arena.
type LinkRef struct {
	Arena int32
	Index int32
}

// Builder accumulates the flattened layout while netsim elaborates a
// network. Feed it units in registration order, then Compile.
type Builder struct {
	c        Compiled
	refCount map[LinkRef]int
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{refCount: make(map[LinkRef]int)}
}

// Arena creates a link arena for one delay class and registers it with the
// plan. Capacity must be exact: the arena panics past it, and Compile
// audits that every carved link is referenced by exactly two units.
func (b *Builder) Arena(delay, capacity int) *link.Arena {
	a := link.NewArena(delay, capacity)
	b.c.arenas = append(b.c.arenas, a)
	return a
}

// ArenaIndex returns the plan index of an arena created by Arena, for
// building LinkRefs.
func (b *Builder) ArenaIndex(a *link.Arena) int32 {
	for i, have := range b.c.arenas {
		if have == a {
			return int32(i)
		}
	}
	panic("kernel: arena was not created by this builder")
}

// AddRouter appends a single-router column unit. attached lists the
// arena-resident links wired to the router's forward and backward ports.
func (b *Builder) AddRouter(r *core.Router, attached ...LinkRef) {
	b.addUnit(unitRouter, int32(len(b.c.routers)), attached)
	b.c.routers = append(b.c.routers, r)
}

// AddCascade appends a cascaded-column unit: the whole group evaluates as
// one unit so its members never split across workers.
func (b *Builder) AddCascade(g *cascade.Group, attached ...LinkRef) {
	b.addUnit(unitCascade, int32(len(b.c.groups)), attached)
	b.c.groups = append(b.c.groups, g)
}

// AddEndpoint appends an endpoint unit.
func (b *Builder) AddEndpoint(ep *nic.Endpoint, attached ...LinkRef) {
	b.addUnit(unitEndpoint, int32(len(b.c.eps)), attached)
	b.c.eps = append(b.c.eps, ep)
}

func (b *Builder) addUnit(kind unitKind, idx int32, attached []LinkRef) {
	b.c.kinds = append(b.c.kinds, kind)
	b.c.idxs = append(b.c.idxs, idx)
	b.c.adjStart = append(b.c.adjStart, int32(len(b.c.adj)))
	b.c.adj = append(b.c.adj, attached...)
	for _, ref := range attached {
		b.refCount[ref]++
	}
}

// Compile seals the plan. It audits the adjacency tables against the
// arenas: every carved link must be referenced by exactly two units (its
// upstream and downstream attachment points), which catches both wiring
// drift and arena capacity mismatches at assembly time rather than as
// silent data corruption mid-run.
func (b *Builder) Compile() (*Compiled, error) {
	c := &b.c
	c.adjStart = append(c.adjStart, int32(len(c.adj)))
	for ai, a := range c.arenas {
		if a.Len() != a.Cap() {
			return nil, fmt.Errorf("kernel: arena %d (delay %d) carved %d of %d links", ai, a.Delay(), a.Len(), a.Cap())
		}
		for li := 0; li < a.Len(); li++ {
			ref := LinkRef{Arena: int32(ai), Index: int32(li)}
			if n := b.refCount[ref]; n != 2 {
				return nil, fmt.Errorf("kernel: link %s referenced by %d units, want 2", a.At(li).Name(), n)
			}
		}
	}
	for ref := range b.refCount {
		if int(ref.Arena) >= len(c.arenas) || int(ref.Index) >= c.arenas[ref.Arena].Len() {
			return nil, fmt.Errorf("kernel: adjacency ref %+v names no carved link", ref)
		}
	}
	b.refCount = nil
	return c, nil
}

// Compiled is the flattened execution plan. It implements clock.Kernel:
// the engine drives units by contiguous index range and the batched link
// shuttle by partition, serially or across workers.
type Compiled struct {
	// Parallel unit arrays: unit u has kind kinds[u] and indexes the
	// kind's typed slice at idxs[u].
	kinds []unitKind
	idxs  []int32

	routers []*core.Router
	groups  []*cascade.Group
	eps     []*nic.Endpoint

	// arenas holds every link pipeline register in the plan, grouped by
	// delay class.
	arenas []*link.Arena

	// CSR adjacency: unit u's attached links are adj[adjStart[u]:adjStart[u+1]].
	adjStart []int32
	adj      []LinkRef
}

// Units implements clock.Kernel.
func (c *Compiled) Units() int { return len(c.kinds) }

// EvalUnits implements clock.Kernel: evaluate units [lo, hi) in index
// order with direct calls per concrete type.
//
//metrovet:bounds the engine partitions [0, Units()) so lo/hi are in range, and idxs parallels kinds by construction
func (c *Compiled) EvalUnits(lo, hi int, cycle uint64) {
	// Reslicing to the partition lets the compiler hoist the range's
	// bounds check out of the loop: kinds and idxs share a length, so
	// the per-unit loads below compile check-free.
	kinds := c.kinds[lo:hi]
	idxs := c.idxs[lo:hi:hi]
	for u := range kinds {
		i := idxs[u]
		switch kinds[u] {
		case unitRouter:
			c.routers[i].Eval(cycle)
		case unitCascade:
			c.groups[i].Eval(cycle)
		case unitEndpoint:
			c.eps[i].Eval(cycle)
		}
	}
}

// CommitUnits implements clock.Kernel. Routers, cascade groups, and
// endpoints all have empty Commit methods (their state latches via link
// pipelines, which CommitBatch shuttles), so the calls below compile to
// nothing — the loop exists so a future unit kind with real commit work
// slots in without touching the engine.
//
//metrovet:bounds the engine partitions [0, Units()) so lo/hi are in range, and idxs parallels kinds by construction
func (c *Compiled) CommitUnits(lo, hi int, cycle uint64) {
	kinds := c.kinds[lo:hi]
	idxs := c.idxs[lo:hi:hi]
	for u := range kinds {
		i := idxs[u]
		switch kinds[u] {
		case unitRouter:
			c.routers[i].Commit(cycle)
		case unitCascade:
			c.groups[i].Commit(cycle)
		case unitEndpoint:
			c.eps[i].Commit(cycle)
		}
	}
}

// CommitBatch implements clock.Kernel: shuttle partition part of every
// arena's links. Partitions touch disjoint slot regions, so the engine may
// run them concurrently.
func (c *Compiled) CommitBatch(part, parts int, cycle uint64) {
	for _, a := range c.arenas {
		n := a.Len()
		a.Shuttle(part*n/parts, (part+1)*n/parts)
	}
}

// Arenas returns the plan's link arenas, for introspection and tests.
func (c *Compiled) Arenas() []*link.Arena { return c.arenas }

// UnitLinks returns unit u's attached links from the CSR adjacency table.
func (c *Compiled) UnitLinks(u int) []LinkRef {
	return c.adj[c.adjStart[u]:c.adjStart[u+1]]
}

// LinkAt resolves a LinkRef to its view struct.
func (c *Compiled) LinkAt(ref LinkRef) *link.Link {
	return c.arenas[ref.Arena].At(int(ref.Index))
}

// Links returns the total number of arena-resident links.
func (c *Compiled) Links() int {
	n := 0
	for _, a := range c.arenas {
		n += a.Len()
	}
	return n
}
