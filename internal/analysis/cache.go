package analysis

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The incremental analysis cache. Keys are content hashes, never
// timestamps: a cache entry is valid iff the bytes it was computed from
// are identical, so a warm run is guaranteed to reproduce the cold run's
// findings (the test suite asserts this equality).
//
// Two key granularities cover the two analyzer classes:
//
//   - The program key hashes every matched package's sources plus go.mod
//     and the rule-set identity. It guards the whole-tree result: when it
//     matches, the cached findings are served without parsing or
//     type-checking anything.
//   - Per-package keys hash one package directory's sources. They guard
//     the per-package rules' findings: after an edit, only the touched
//     packages re-run those rules. Whole-program rules (which see the
//     interprocedural call graph) always re-run on a partial hit — any
//     edit anywhere can change a summary three packages away.

// cacheVersion invalidates every cache file when the schema or the
// analysis semantics change shape.
const cacheVersion = 1

// cacheFileName is the single JSON document kept in the cache directory.
const cacheFileName = "metrovet-cache.json"

// cacheFile is the on-disk cache document.
type cacheFile struct {
	Version    int    `json:"version"`
	RuleHash   string `json:"rule_hash"`
	ProgramKey string `json:"program_key"`
	// Findings is the complete whole-tree result (program and package
	// rules merged, sorted), valid while ProgramKey matches.
	Findings []FindingJSON `json:"findings"`
	// Packages maps import paths to their per-package-rule results.
	Packages map[string]cachePkgEntry `json:"packages"`
}

// cachePkgEntry is one package's cached per-package-rule findings.
type cachePkgEntry struct {
	Key      string        `json:"key"`
	Findings []FindingJSON `json:"findings"`
}

// ruleHash identifies the rule set: names, IDs and docs. Rule-logic
// changes that keep all three are caught by CI's cache key (which hashes
// the analyzer sources); this in-file hash catches rule additions,
// renames and doc edits even with a stale external key.
func ruleHash(rules []*Analyzer) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d", cacheVersion)
	for _, a := range rules {
		fmt.Fprintf(h, "|%s=%s:%s", RuleID(a.Name), a.Name, a.Doc)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// dirHash hashes one package directory's Go sources (names and bytes,
// sorted by name; the same files the loader would parse).
func dirHash(dir string) (string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	h := fnv.New64a()
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s\x00%d\x00", name, len(data))
		h.Write(data)
	}
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// programKey combines the rule hash, go.mod, and every package's dir
// hash into the whole-tree cache key.
func programKey(root, rules string, dirKeys map[string]string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00", rules)
	if data, err := os.ReadFile(filepath.Join(root, "go.mod")); err == nil {
		h.Write(data)
	}
	paths := make([]string, 0, len(dirKeys))
	for p := range dirKeys {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(h, "%s=%s\x00", p, dirKeys[p])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// readCache loads the cache document, returning an empty one on any
// miss or decode problem (a corrupt cache must never fail the run).
func readCache(dir string) *cacheFile {
	cf := &cacheFile{Version: cacheVersion, Packages: map[string]cachePkgEntry{}}
	data, err := os.ReadFile(filepath.Join(dir, cacheFileName))
	if err != nil {
		return cf
	}
	var onDisk cacheFile
	if json.Unmarshal(data, &onDisk) != nil || onDisk.Version != cacheVersion {
		return cf
	}
	if onDisk.Packages == nil {
		onDisk.Packages = map[string]cachePkgEntry{}
	}
	return &onDisk
}

// writeCache persists the cache document. Errors are returned so the
// caller can warn, but a failed write only costs the next run time.
func writeCache(dir string, cf *cacheFile) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(cf, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := filepath.Join(dir, cacheFileName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, cacheFileName))
}

// decodeFindings converts cached findings back to the in-memory form.
func decodeFindings(fjs []FindingJSON) []Finding {
	out := make([]Finding, 0, len(fjs))
	for _, fj := range fjs {
		out = append(out, findingFromJSON(fj))
	}
	return out
}

// encodeFindings converts findings to the cached form.
func encodeFindings(fs []Finding) []FindingJSON {
	out := make([]FindingJSON, 0, len(fs))
	for _, f := range fs {
		out = append(out, findingToJSON(f))
	}
	return out
}
