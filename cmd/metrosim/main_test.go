package main_test

import (
	"testing"

	"metro/internal/clitest"
)

// TestGoldenSweep pins a small fixed-seed load sweep on the Figure 1
// network: the load/latency table is the tool's primary output, and the
// simulator's determinism contract means every cell is reproducible
// bit-for-bit.
func TestGoldenSweep(t *testing.T) {
	clitest.Golden(t, "sweep", "metrosim",
		"-network", "fig1", "-loads", "0.1,0.4", "-cycles", "800", "-warmup", "200")
}
