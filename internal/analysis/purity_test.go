package analysis

import (
	"strings"
	"testing"
)

// acceptanceFixture is the ISSUE 6 acceptance case: Eval mutates shared
// state through two levels of calls, the second of which is
// interface-dispatched — invisible to the syntactic eval-isolation
// rule, proven by the interprocedural shard-purity rule.
const acceptanceFixture = `package rival

// Bumper is the interface the mutation hides behind.
type Bumper interface{ Bump(cycle uint64) }

// Telemeter is another component registered on its own shard.
type Telemeter struct{ hits uint64 }

func (t *Telemeter) Eval(cycle uint64)   {}
func (t *Telemeter) Commit(cycle uint64) {}

// Bump mutates the telemeter — fine when called on your own state,
// a cross-shard write when dispatched from another component's Eval.
func (t *Telemeter) Bump(cycle uint64) { t.hits++ }

// Router holds an interface value that, at runtime, is the telemeter.
type Router struct {
	sink Bumper
	v    int
}

func (r *Router) Eval(cycle uint64) {
	r.v++
	r.helper(cycle) // level 1: plain call
}

func (r *Router) Commit(cycle uint64) {}

func (r *Router) helper(cycle uint64) {
	r.sink.Bump(cycle) // level 2: interface dispatch -> (*Telemeter).Bump
}
`

func TestShardPurityCatchesWhatEvalIsolationMisses(t *testing.T) {
	files := map[string]string{"rival.go": acceptanceFixture}

	// The old syntactic rule provably passes: the mutation is two
	// frames down and interface-dispatched.
	old := runRule(t, EvalIsolation(), "metro/internal/rival", files)
	if len(old) != 0 {
		t.Fatalf("eval-isolation unexpectedly caught the fixture: %v", old)
	}

	// The interprocedural rule catches it at the dispatch site.
	got := runRule(t, ShardPurity(), "metro/internal/rival", files)
	wantFindings(t, got, "shard-purity", [2]any{"rival.go", 30})
	if !strings.Contains(got[0].Msg, "rival.Bumper") || !strings.Contains(got[0].Msg, "(Telemeter).Bump") {
		t.Errorf("finding message should name the interface and target: %s", got[0].Msg)
	}
	if !strings.Contains(got[0].Msg, "(rival.Router).Eval") {
		t.Errorf("finding message should name the Eval root: %s", got[0].Msg)
	}
}

func TestShardPurityPointerParamWrite(t *testing.T) {
	files := map[string]string{"p.go": `package p

var shared int

type C struct{ n int }

func (c *C) Eval(cycle uint64) {
	bump(&c.n)    // own state through a pointer: fine
	bump(&shared) // package-level state through a pointer: finding
}

func (c *C) Commit(cycle uint64) {}

func bump(p *int) { *p++ }
`}
	got := runRule(t, ShardPurity(), "metro/internal/p", files)
	wantFindings(t, got, "shard-purity", [2]any{"p.go", 9})
	if !strings.Contains(got[0].Msg, "shared") || !strings.Contains(got[0].Msg, "writes through it") {
		t.Errorf("unexpected message: %s", got[0].Msg)
	}
}

func TestShardPurityClosureAndAlias(t *testing.T) {
	files := map[string]string{"p.go": `package p

var table = make([]int, 8)

type C struct{ n int }

func (c *C) Eval(cycle uint64) {
	f := func() { table[0] = 1 } // closure writing package state
	f()
	alias := table // alias of package state
	alias[1] = 2
	own := c.buf() // receiver-derived alias
	own[0] = 3
}

func (c *C) Commit(cycle uint64) {}

func (c *C) buf() []int { return nil }
`}
	got := runRule(t, ShardPurity(), "metro/internal/p", files)
	// Two findings: the closure write (line 8) and the alias write
	// (line 11). The receiver-derived alias resolves through a call
	// result (regionUnknown) and stays silent.
	wantFindings(t, got, "shard-purity", [2]any{"p.go", 8}, [2]any{"p.go", 11})
}

func TestShardPurityForeignComponentWrite(t *testing.T) {
	files := map[string]string{"p.go": `package p

type Other struct{ n int }

func (o *Other) Eval(cycle uint64)   {}
func (o *Other) Commit(cycle uint64) {}

type C struct {
	peer *Other
	n    int
}

func (c *C) Eval(cycle uint64) {
	c.n++
	c.poke()
}

func (c *C) Commit(cycle uint64) {}

func (c *C) poke() {
	c.peer.n = 7 // two frames down: write through another component
}
`}
	got := runRule(t, ShardPurity(), "metro/internal/p", files)
	wantFindings(t, got, "shard-purity", [2]any{"p.go", 21})
	if !strings.Contains(got[0].Msg, "component type Other") {
		t.Errorf("unexpected message: %s", got[0].Msg)
	}
}

func TestShardPuritySharedDirective(t *testing.T) {
	files := map[string]string{"p.go": `package p

var shared int

type C struct{ n int }

func (c *C) Eval(cycle uint64) {
	//metrovet:shared serialized epilogue driver, audited here
	shared = 1
	c.audited()
}

func (c *C) Commit(cycle uint64) {}

//metrovet:shared whole helper audited: runs only in the epilogue
func (c *C) audited() { shared = 2 }
`}
	got := runRule(t, ShardPurity(), "metro/internal/p", files)
	if len(got) != 0 {
		t.Fatalf("annotated fixture should be clean, got %v", got)
	}
}

func TestShardPurityCrossPackageTransitive(t *testing.T) {
	prog := loadFixtureProgram(t,
		fixturePkg{path: "metro/internal/helperpkg", files: map[string]string{
			"h.go": `package helperpkg

// Tally accumulates into the slot its caller hands it.
func Tally(slot *uint64, v uint64) { *slot += v }
`,
		}},
		fixturePkg{path: "metro/internal/comp", files: map[string]string{
			"c.go": `package comp

import "metro/internal/helperpkg"

var grand uint64

type C struct{ local uint64 }

func (c *C) Eval(cycle uint64) {
	helperpkg.Tally(&c.local, 1) // shard-local: fine
	helperpkg.Tally(&grand, 1)   // package state through two packages
}

func (c *C) Commit(cycle uint64) {}
`,
		}},
	)
	got := runShardPurity(prog)
	wantFindings(t, got, "shard-purity", [2]any{"metro/internal/comp/c.go", 11})
	if !strings.Contains(got[0].Msg, "grand") || !strings.Contains(got[0].Msg, "helperpkg.Tally") {
		t.Errorf("unexpected message: %s", got[0].Msg)
	}
}

func TestShardPurityCleanComponent(t *testing.T) {
	files := map[string]string{"p.go": `package p

type C struct {
	n    int
	buf  []int
	subs sub
}

type sub struct{ k int }

func (c *C) Eval(cycle uint64) {
	c.n++
	c.buf[0] = c.n
	c.subs.k = 2
	c.grow()
	local := make([]int, 4)
	local[1] = 9
}

func (c *C) Commit(cycle uint64) {}

func (c *C) grow() { c.buf = append(c.buf, 1) }
`}
	got := runRule(t, ShardPurity(), "metro/internal/p", files)
	if len(got) != 0 {
		t.Fatalf("clean component flagged: %v", got)
	}
}
