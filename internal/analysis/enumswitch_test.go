package analysis

import "testing"

// enumFixture declares a three-state enum the test switches range over.
const enumFixture = `package core

type phase uint8

const (
	phaseA phase = iota
	phaseB
	phaseC
)
`

func TestEnumSwitchMissingConstant(t *testing.T) {
	got := runRule(t, EnumSwitch(), "metro/internal/core", map[string]string{
		"enum.go": enumFixture,
		"a.go": `package core

func handle(p phase) int {
	switch p {
	case phaseA:
		return 1
	case phaseB:
		return 2
	}
	return 0
}
`,
	})
	wantFindings(t, got, "exhaustive-enum-switch", [2]any{"a.go", 4})
}

func TestEnumSwitchSilentDefault(t *testing.T) {
	got := runRule(t, EnumSwitch(), "metro/internal/core", map[string]string{
		"enum.go": enumFixture,
		"a.go": `package core

func handle(p phase) int {
	switch p {
	case phaseA:
		return 1
	default:
		return 0
	}
}
`,
	})
	wantFindings(t, got, "exhaustive-enum-switch", [2]any{"a.go", 4})
}

func TestEnumSwitchCleanForms(t *testing.T) {
	got := runRule(t, EnumSwitch(), "metro/internal/core", map[string]string{
		"enum.go": enumFixture,
		"a.go": `package core

// full enumeration, no default.
func full(p phase) int {
	switch p {
	case phaseA, phaseB:
		return 1
	case phaseC:
		return 2
	}
	return 0
}

// partial enumeration with a panicking default: unlisted states crash.
func assertive(p phase) int {
	switch p {
	case phaseA:
		return 1
	default:
		panic("unreachable phase")
	}
}

// full enumeration plus a default guarding out-of-band values.
func guarded(p phase) string {
	switch p {
	case phaseA, phaseB, phaseC:
		return "ok"
	default:
		return "corrupt"
	}
}

// annotated subset: the justification makes the hole deliberate.
func subset(p phase) int {
	//metrovet:nonexhaustive only the terminal phase matters to callers
	switch p {
	case phaseC:
		return 1
	}
	return 0
}

// switches over non-enum types are out of scope.
func strings(s string) int {
	switch s {
	case "a":
		return 1
	}
	return 0
}
`,
	})
	wantFindings(t, got, "exhaustive-enum-switch")
}

func TestEnumSwitchIgnoresTestFiles(t *testing.T) {
	got := runRule(t, EnumSwitch(), "metro/internal/core", map[string]string{
		"enum.go": enumFixture,
		"a_test.go": `package core

func probe(p phase) bool {
	switch p {
	case phaseA:
		return true
	}
	return false
}
`,
	})
	wantFindings(t, got, "exhaustive-enum-switch")
}

func TestEnumSwitchSkipsStdlibEnums(t *testing.T) {
	// reflect.Kind is enum-like but not module-local: no obligation.
	got := runRule(t, EnumSwitch(), "metro/internal/core", map[string]string{
		"a.go": `package core

import "reflect"

func kind(v reflect.Value) int {
	switch v.Kind() {
	case reflect.Bool:
		return 1
	}
	return 0
}
`,
	})
	wantFindings(t, got, "exhaustive-enum-switch")
}

func TestEnumSwitchAliasedValuesCountOnce(t *testing.T) {
	got := runRule(t, EnumSwitch(), "metro/internal/core", map[string]string{
		"a.go": `package core

type mode uint8

const (
	modeOff mode = iota
	modeOn
	modeDefault = modeOff // alias: same value, second name
)

func m(v mode) int {
	switch v {
	case modeDefault, modeOn: // covers modeOff by value
		return 1
	}
	return 0
}
`,
	})
	wantFindings(t, got, "exhaustive-enum-switch")
}
