package main_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"metro/internal/clitest"
)

// repoAllowlist is the checked-in hot-path allowlist, relative to this
// test's working directory (cmd/metrovet).
const repoAllowlist = "../../docs/bce_allowlist.txt"

// TestBCECleanMatchesAllowlist is the gate CI runs: the bounds checks
// surviving compilation of the hot-path packages must match the
// checked-in allowlist exactly, and the report must be byte-identical
// between a cold and a warm build cache (the compiler replays cached
// diagnostics; any instability here would make the CI gate flaky).
func TestBCECleanMatchesAllowlist(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	cold := clitest.Run(t, "metrovet", "-bce")
	warm := clitest.Run(t, "metrovet", "-bce")
	if !bytes.Equal(cold, warm) {
		t.Fatalf("warm build cache run differs from cold:\ncold:\n%s\nwarm:\n%s", cold, warm)
	}
	if !strings.Contains(string(cold), "match docs/bce_allowlist.txt") {
		t.Fatalf("clean run should report the allowlist it matched:\n%s", cold)
	}
}

// TestBCEDriftFailsBothWays edits a copy of the real allowlist — drops
// one genuine entry and adds one fabricated entry — and asserts the
// gate reports the dropped entry as a new surviving check, the
// fabricated one as stale, and exits 1.
func TestBCEDriftFailsBothWays(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	data, err := os.ReadFile(repoAllowlist)
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	dropped := ""
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if dropped == "" && trimmed != "" && !strings.HasPrefix(trimmed, "#") {
			dropped = trimmed
			continue
		}
		kept = append(kept, line)
	}
	if dropped == "" {
		t.Fatal("checked-in allowlist has no entries to drop; the fixture needs at least one surviving check")
	}
	const fabricated = "internal/word/zzz_no_such_file.go:1:1 IsInBounds"
	kept = append(kept, fabricated, "")

	path := filepath.Join(t.TempDir(), "allowlist.txt")
	if err := os.WriteFile(path, []byte(strings.Join(kept, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	out := clitest.ExitCode(t, 1, "metrovet", "-bce", "-bce-allowlist", path)
	if !strings.Contains(string(out), "new bounds check survives compilation: "+dropped) {
		t.Fatalf("dropped entry %q should be reported as new:\n%s", dropped, out)
	}
	if !strings.Contains(string(out), "stale allowlist entry (check no longer emitted): "+fabricated) {
		t.Fatalf("fabricated entry should be reported as stale:\n%s", out)
	}
}

// TestBCEMissingAllowlist pins the bootstrap failure mode: pointing the
// gate at a nonexistent allowlist is a usage error (exit 2) whose
// message says how to generate one — not a silent pass.
func TestBCEMissingAllowlist(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "no_such_allowlist.txt")
	out := clitest.ExitCode(t, 2, "metrovet", "-bce", "-bce-allowlist", path)
	if !strings.Contains(string(out), "-bce -bce-write") {
		t.Fatalf("missing-allowlist error should say how to generate one:\n%s", out)
	}
}

// TestBCEWriteRoundTrip regenerates an allowlist into a temp file and
// immediately gates against it: write → check must always be clean, and
// the written file must byte-match the checked-in one (proving the
// repo's allowlist is current).
func TestBCEWriteRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("execs a subprocess; skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "allowlist.txt")
	clitest.Run(t, "metrovet", "-bce-write", "-bce-allowlist", path)
	clitest.Run(t, "metrovet", "-bce", "-bce-allowlist", path)

	fresh, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := os.ReadFile(repoAllowlist)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, checked) {
		t.Fatal("checked-in docs/bce_allowlist.txt is stale; regenerate with `go run ./cmd/metrovet -bce -bce-write`")
	}
}
