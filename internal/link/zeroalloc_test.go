package link

import (
	"testing"

	"metro/internal/word"
)

// BenchmarkLinkSteadyCycle measures one clock cycle of a loaded link
// carrying a word and a BCB in each direction. The per-cycle path must not
// allocate; TestZeroAllocLinkSteadyCycle gates that.
func BenchmarkLinkSteadyCycle(b *testing.B) {
	l := New("l", 2)
	var cycle uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.A().Send(word.MakeData(uint32(i), 8))
		l.B().Send(word.Word{Kind: word.DataIdle})
		l.B().SendBCB(i%2 == 0)
		l.Eval(cycle)
		l.Commit(cycle)
		_ = l.B().Recv()
		_ = l.A().Recv()
		_ = l.A().RecvBCB()
		cycle++
	}
}

// TestZeroAllocLinkSteadyCycle asserts the per-cycle link path performs
// zero heap allocations, backing the static hot-path-alloc analyzer with a
// dynamic gate.
func TestZeroAllocLinkSteadyCycle(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	if testing.Short() {
		t.Skip("benchmark-backed allocation gate; CI runs it in the dedicated -run ZeroAlloc step")
	}
	res := testing.Benchmark(BenchmarkLinkSteadyCycle)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("link steady cycle: %d allocs/op, want 0", a)
	}
}
