// Package clock implements the synchronous simulation kernel underlying the
// METRO network model.
//
// METRO networks are pipelined circuit-switched systems: every routing
// component runs synchronously from a central clock, and data takes a small,
// constant number of clock cycles to pass through each component (paper,
// Section 3). The kernel models this directly as a two-phase clocked
// engine. On every cycle each component is first asked to Eval — read the
// values its inputs held at the end of the previous cycle, update private
// state, and stage new output values — and then every component is asked to
// Commit — latch the staged outputs so they become visible next cycle.
//
// Because components communicate only through link pipelines (package link),
// whose outputs change only in Commit, the order in which components Eval
// within a cycle is irrelevant: the model is a faithful register-transfer
// abstraction of a synchronous circuit.
//
// # Parallel execution
//
// The register-transfer abstraction is also a license to evaluate
// components concurrently. SetWorkers(n) with n >= 1 partitions the
// sharded components (registered with AddSharded) across n shards and
// fans each phase over a pool of worker goroutines, with a barrier
// between Eval and Commit. Because a well-behaved component's Eval
// touches only its own state plus the staged slots of its attached link
// ends — distinct memory per writer — and its Commit latches only its own
// registers, the phase barrier is the only synchronization needed, and
// the parallel schedule is bit-for-bit equivalent to the serial one.
//
// Components whose Eval reaches into other components' state — traffic
// drivers calling Network.Send, fault injectors killing links — must be
// registered with plain Add. In parallel mode those form the serialized
// epilogue: they run one at a time, in registration order, after the
// worker barrier of each phase. Registering them after every sharded
// component (as netsim and the drivers do) makes the epilogue schedule
// identical to their position in the serial loop, preserving bit-for-bit
// equivalence. Components that share combinational or randomness state
// every cycle (cascade groups over a shared LFSR) must be co-located on
// one shard: register them under a single ShardAffinity.
package clock

import (
	"runtime"
	"sync"
	"time"

	"metro/internal/metrics"
)

// Component is a clocked element of the simulated system.
type Component interface {
	// Eval reads inputs as of the end of the previous cycle, updates
	// internal state, and stages outputs. It must not expose new output
	// values to other components before Commit.
	Eval(cycle uint64)
	// Commit latches staged outputs, making them visible on the next
	// cycle's Eval.
	Commit(cycle uint64)
}

// Kernel is a compiled execution plan: a fixed population of evaluation
// units plus batched commit work, standing in for the sharded component
// plane. Where the per-component engine dispatches a virtual Eval/Commit
// per registered component, a kernel exposes its units by dense index so
// the engine can drive them with plain loops — serially in index order, or
// partitioned into contiguous index ranges across workers.
//
// Units must obey the same isolation contract as sharded components: a
// unit's EvalUnit touches only unit-local state plus the staged slots of
// its attached links, and CommitUnit latches only unit-local registers, so
// any index partition yields bit-for-bit the serial schedule. State owned
// by no single unit — batched link shuttling through a link.Arena — is
// advanced by CommitBatch(part, parts), which the engine calls exactly once
// per partition during the commit phase; implementations must touch
// disjoint memory for disjoint parts.
//
// Serialized components registered with Add still run as the epilogue of
// each phase, after every unit, in registration order — the same schedule
// they have on the per-component path.
type Kernel interface {
	// Units returns the number of evaluation units. Fixed for the
	// lifetime of the kernel.
	Units() int
	// EvalUnits runs the eval phase of units [lo, hi) in index order.
	// Range-based so the inner loop compiles into the kernel — one
	// interface call per partition per phase, not one per unit.
	EvalUnits(lo, hi int, cycle uint64)
	// CommitUnits runs the commit phase of units [lo, hi) in index order.
	CommitUnits(lo, hi int, cycle uint64)
	// CommitBatch advances shared bulk state (link pipelines) for one
	// partition of parts total. Serial execution calls CommitBatch(0, 1).
	CommitBatch(part, parts int, cycle uint64)
}

// ShardAffinity identifies a co-location group: every component registered
// under the same affinity is evaluated by the same worker, in registration
// order, so components that share combinational or randomness state within
// a cycle can never race. Obtain affinities from Engine.NewShardAffinity.
type ShardAffinity int

// serialized marks a component registered with plain Add: it runs in the
// serialized epilogue after the worker barrier in parallel mode.
const serialized ShardAffinity = -1

// entry is one registered component with its shard assignment.
type entry struct {
	comp  Component
	shard ShardAffinity
}

// Engine drives a set of components from a single central clock.
//
// The zero-worker engine (the default, and SetWorkers(0)) is the serial
// reference implementation: one goroutine, components evaluated and
// committed in registration order. SetWorkers(n >= 1) selects the
// partitioned parallel engine described in the package comment.
type Engine struct {
	entries []entry
	nextAff ShardAffinity
	cycle   uint64
	workers int
	pool    *pool
	kernel  Kernel
	kpool   *kernelPool

	// Operational gauges (see metrics.go). met == nil — the default —
	// costs one branch per Step.
	met     *EngineMetrics
	metN    uint64    // cycles completed since SetMetrics
	metLast time.Time // previous sampling-grid instant
}

// New returns an empty engine at cycle 0, in serial mode.
func New() *Engine { return &Engine{} }

// Add registers components with the engine's clock. In parallel mode they
// run in the serialized epilogue (after the worker barrier, in
// registration order) — the safe default for components whose Eval
// touches other components' state, such as traffic drivers and fault
// injectors.
func (e *Engine) Add(cs ...Component) {
	e.invalidate()
	for _, c := range cs {
		e.entries = append(e.entries, entry{comp: c, shard: serialized})
	}
}

// NewShardAffinity allocates a fresh co-location group for AddSharded.
func (e *Engine) NewShardAffinity() ShardAffinity {
	a := e.nextAff
	e.nextAff++
	return a
}

// AddSharded registers components under a co-location group. All
// components sharing an affinity are pinned to one worker and evaluated
// in registration order; components under different affinities may
// evaluate concurrently, so a sharded component's Eval must touch only
// its own state and its attached link ends.
func (e *Engine) AddSharded(a ShardAffinity, cs ...Component) {
	if a < 0 || a >= e.nextAff {
		panic("clock: AddSharded affinity was not obtained from NewShardAffinity")
	}
	if e.kernel != nil {
		panic("clock: AddSharded after SetKernel — the kernel owns the sharded plane")
	}
	e.invalidate()
	for _, c := range cs {
		e.entries = append(e.entries, entry{comp: c, shard: a})
	}
}

// AddColocated registers components under a fresh co-location group and
// returns the affinity, for attaching further components later.
func (e *Engine) AddColocated(cs ...Component) ShardAffinity {
	a := e.NewShardAffinity()
	e.AddSharded(a, cs...)
	return a
}

// SetKernel installs a compiled kernel as the engine's sharded plane. The
// kernel replaces AddSharded registration entirely: it is an error to mix
// the two (the per-component and compiled planes would race over the same
// link state). Components registered with plain Add keep running as the
// serialized epilogue of each phase. SetWorkers applies to kernels exactly
// as it does to sharded components: units are partitioned by contiguous
// index range instead of by affinity.
func (e *Engine) SetKernel(k Kernel) {
	for i := range e.entries {
		if e.entries[i].shard != serialized {
			panic("clock: SetKernel with sharded components registered — the kernel owns the sharded plane")
		}
	}
	e.invalidate()
	e.kernel = k
}

// Kernel returns the installed kernel, or nil on the per-component path.
func (e *Engine) Kernel() Kernel { return e.kernel }

// SetWorkers selects the execution mode: 0 (or negative) restores the
// serial reference engine; n >= 1 partitions sharded components across n
// shards executed by min(n, GOMAXPROCS) persistent worker goroutines.
// The schedule is bit-for-bit equivalent for every n, so n is purely a
// throughput knob. Changing the worker count mid-run is allowed; the
// pool is rebuilt lazily on the next Step.
func (e *Engine) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	e.invalidate()
	e.workers = n
}

// Workers returns the configured worker count (0 = serial engine).
func (e *Engine) Workers() int { return e.workers }

// StopWorkers releases the worker goroutines, if any are running. The
// engine remains usable: the pool restarts lazily on the next parallel
// Step. Call it when discarding an engine driven in parallel mode, so
// sweeps over many networks do not accumulate idle goroutines.
func (e *Engine) StopWorkers() { e.invalidate() }

// invalidate tears down the worker pool; registration changes and mode
// switches rebuild it lazily on the next Step.
func (e *Engine) invalidate() {
	if e.pool != nil {
		e.pool.stop()
		e.pool = nil
	}
	if e.kpool != nil {
		e.kpool.stop()
		e.kpool = nil
	}
}

// Cycle returns the number of completed clock cycles.
func (e *Engine) Cycle() uint64 { return e.cycle }

// Components returns the number of registered components.
func (e *Engine) Components() int { return len(e.entries) }

// Step advances the system by one clock cycle.
func (e *Engine) Step() {
	switch {
	case e.kernel != nil:
		e.stepKernel()
	case e.workers == 0:
		c := e.cycle
		for i := range e.entries {
			e.entries[i].comp.Eval(c)
		}
		for i := range e.entries {
			e.entries[i].comp.Commit(c)
		}
		e.cycle++
	default:
		if e.pool == nil {
			e.pool = newPool(e.workers, e.entries, e.metShardNs())
		}
		c := e.cycle
		timed := e.metTimed()
		e.pool.phase(phaseEval, c, timed)
		for _, comp := range e.pool.serial {
			comp.Eval(c)
		}
		e.pool.phase(phaseCommit, c, timed)
		for _, comp := range e.pool.serial {
			comp.Commit(c)
		}
		e.cycle++
	}
	if e.met != nil {
		e.metTick()
	}
}

// stepKernel advances one cycle on the compiled-kernel path. The serial
// schedule — every unit in index order, then the epilogue — is the
// reference; the parallel schedule partitions units into contiguous index
// ranges with the same phase barrier and epilogue discipline as the
// per-component pool, and is bit-for-bit equivalent because units are
// isolated and commit effects are order-free.
func (e *Engine) stepKernel() {
	k := e.kernel
	c := e.cycle
	if e.workers == 0 {
		n := k.Units()
		k.EvalUnits(0, n, c)
		for i := range e.entries {
			e.entries[i].comp.Eval(c)
		}
		k.CommitUnits(0, n, c)
		k.CommitBatch(0, 1, c)
		for i := range e.entries {
			e.entries[i].comp.Commit(c)
		}
		e.cycle++
		return
	}
	if e.kpool == nil {
		e.kpool = newKernelPool(e.workers, k, e.metShardNs())
	}
	timed := e.metTimed()
	e.kpool.phase(phaseEval, c, timed)
	for i := range e.entries {
		e.entries[i].comp.Eval(c)
	}
	e.kpool.phase(phaseCommit, c, timed)
	for i := range e.entries {
		e.entries[i].comp.Commit(c)
	}
	e.cycle++
}

// Run advances the system by n clock cycles.
func (e *Engine) Run(n uint64) {
	for i := uint64(0); i < n; i++ {
		e.Step()
	}
}

// RunUntil steps the clock until done reports true or max cycles have
// elapsed (counted from the current cycle), whichever comes first. It
// returns true if done reported true.
//
// The predicate is checked before each step and once more after the
// budget is exhausted: done is evaluated max+1 times in the worst case,
// and when it returns true before the first check, zero cycles run. The
// consequence that looks like an off-by-one is deliberate: a run that
// goes quiet exactly on its last budgeted cycle still reports success,
// because the final check observes the state after that step. See
// TestRunUntilBoundary for the exact accounting.
func (e *Engine) RunUntil(done func() bool, max uint64) bool {
	for i := uint64(0); i < max; i++ {
		if done() {
			return true
		}
		e.Step()
	}
	return done()
}

// phaseKind selects which half of the two-phase cycle a worker executes.
type phaseKind uint8

const (
	phaseEval phaseKind = iota
	phaseCommit
)

// poolCmd is one phase broadcast to a worker. timed marks a
// metrics-sampled cycle: the worker brackets each shard's phase with
// wall-clock reads and publishes the duration to that shard's gauge.
type poolCmd struct {
	kind  phaseKind
	cycle uint64
	timed bool
}

// pool is the parallel engine's worker set. Shard count equals the
// configured worker count (so the partition is a pure function of the
// registration sequence); goroutine count is bounded by GOMAXPROCS, each
// goroutine executing shards i, i+g, i+2g, … in order. The barrier
// WaitGroup plus the command channels provide the happens-before edges:
// every write a worker makes during a phase is visible to the
// coordinator after phase() returns, and to every worker on the next
// phase broadcast.
type pool struct {
	shards  [][]Component    // shard index -> components, registration order
	shardNs []*metrics.Gauge // shard index -> step-time gauge (may be short or nil)
	serial  []Component      // serialized epilogue, registration order
	cmd     []chan poolCmd
	barrier sync.WaitGroup
	done    sync.WaitGroup
}

func newPool(workers int, entries []entry, shardNs []*metrics.Gauge) *pool {
	p := &pool{shards: make([][]Component, workers), shardNs: shardNs}
	for _, en := range entries {
		if en.shard < 0 {
			p.serial = append(p.serial, en.comp)
			continue
		}
		s := int(en.shard) % workers
		p.shards[s] = append(p.shards[s], en.comp)
	}
	g := workers
	if max := runtime.GOMAXPROCS(0); g > max {
		g = max
	}
	p.cmd = make([]chan poolCmd, g)
	p.done.Add(g)
	for i := range p.cmd {
		p.cmd[i] = make(chan poolCmd)
		go p.worker(i)
	}
	return p
}

func (p *pool) worker(i int) {
	defer p.done.Done()
	stride := len(p.cmd)
	for cmd := range p.cmd[i] {
		for s := i; s < len(p.shards); s += stride {
			comps := p.shards[s]
			var t0 time.Time
			if cmd.timed && s < len(p.shardNs) {
				t0 = time.Now() //metrovet:ignore no-wallclock per-shard step-time gauge on sampled cycles; never observable by the model
			}
			switch cmd.kind {
			case phaseEval:
				for _, c := range comps {
					c.Eval(cmd.cycle)
				}
			case phaseCommit:
				for _, c := range comps {
					c.Commit(cmd.cycle)
				}
			}
			if cmd.timed && s < len(p.shardNs) {
				ns := float64(time.Since(t0).Nanoseconds()) //metrovet:ignore no-wallclock per-shard step-time gauge on sampled cycles; never observable by the model
				publishShardNs(p.shardNs[s], cmd.kind, ns)
			}
		}
		p.barrier.Done()
	}
}

// publishShardNs records one phase duration: eval starts the cycle's
// total (Set), commit completes it (Add), so after a sampled cycle the
// gauge holds the shard's whole step time.
func publishShardNs(g *metrics.Gauge, kind phaseKind, ns float64) {
	if kind == phaseEval {
		g.Set(ns)
		return
	}
	g.Add(ns)
}

// phase broadcasts one half-cycle to every worker and waits for all of
// them to finish it.
func (p *pool) phase(kind phaseKind, cycle uint64, timed bool) {
	p.barrier.Add(len(p.cmd))
	for _, ch := range p.cmd {
		ch <- poolCmd{kind: kind, cycle: cycle, timed: timed}
	}
	p.barrier.Wait()
}

// stop shuts the workers down and waits for them to exit.
func (p *pool) stop() {
	for _, ch := range p.cmd {
		close(ch)
	}
	p.done.Wait()
}

// kernelPool drives a compiled kernel with persistent workers. The unit
// population is split into parts contiguous index ranges (parts = the
// configured worker count, so the partition is a pure function of the
// kernel, not of GOMAXPROCS); goroutine count is bounded by GOMAXPROCS,
// each goroutine executing partitions i, i+g, i+2g, … in order, exactly
// like pool's shard striping. During the commit phase each partition also
// runs its share of the batched link shuttle via CommitBatch.
type kernelPool struct {
	k       Kernel
	parts   int
	bounds  []int            // partition p covers units [bounds[p], bounds[p+1])
	shardNs []*metrics.Gauge // partition p -> step-time gauge (may be short or nil)
	cmd     []chan poolCmd
	barrier sync.WaitGroup
	done    sync.WaitGroup
}

func newKernelPool(parts int, k Kernel, shardNs []*metrics.Gauge) *kernelPool {
	p := &kernelPool{k: k, parts: parts, bounds: make([]int, parts+1), shardNs: shardNs}
	n := k.Units()
	for i := 0; i <= parts; i++ {
		p.bounds[i] = i * n / parts
	}
	g := parts
	if max := runtime.GOMAXPROCS(0); g > max {
		g = max
	}
	p.cmd = make([]chan poolCmd, g)
	p.done.Add(g)
	for i := range p.cmd {
		p.cmd[i] = make(chan poolCmd)
		go p.worker(i)
	}
	return p
}

func (p *kernelPool) worker(i int) {
	defer p.done.Done()
	stride := len(p.cmd)
	for cmd := range p.cmd[i] {
		for part := i; part < p.parts; part += stride {
			lo, hi := p.bounds[part], p.bounds[part+1]
			var t0 time.Time
			if cmd.timed && part < len(p.shardNs) {
				t0 = time.Now() //metrovet:ignore no-wallclock per-partition step-time gauge on sampled cycles; never observable by the model
			}
			switch cmd.kind {
			case phaseEval:
				p.k.EvalUnits(lo, hi, cmd.cycle)
			case phaseCommit:
				p.k.CommitUnits(lo, hi, cmd.cycle)
				p.k.CommitBatch(part, p.parts, cmd.cycle)
			}
			if cmd.timed && part < len(p.shardNs) {
				ns := float64(time.Since(t0).Nanoseconds()) //metrovet:ignore no-wallclock per-partition step-time gauge on sampled cycles; never observable by the model
				publishShardNs(p.shardNs[part], cmd.kind, ns)
			}
		}
		p.barrier.Done()
	}
}

// phase broadcasts one half-cycle to every kernel worker and waits for all
// of them to finish it.
func (p *kernelPool) phase(kind phaseKind, cycle uint64, timed bool) {
	p.barrier.Add(len(p.cmd))
	for _, ch := range p.cmd {
		ch <- poolCmd{kind: kind, cycle: cycle, timed: timed}
	}
	p.barrier.Wait()
}

// stop shuts the kernel workers down and waits for them to exit.
func (p *kernelPool) stop() {
	for _, ch := range p.cmd {
		close(ch)
	}
	p.done.Wait()
}
