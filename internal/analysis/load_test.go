package analysis

import (
	"path/filepath"
	"testing"
)

// TestLoaderOnRealTree loads a real package from this module (internal/prng,
// chosen because it has no module-local imports of its own plus a test file)
// and checks the loader wires up what the analyzers need.
func TestLoaderOnRealTree(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if l.ModulePath != "metro" {
		t.Fatalf("module path = %q, want metro", l.ModulePath)
	}
	pkgs, err := l.Load("./internal/prng")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Types == nil || p.Types.Path() != "metro/internal/prng" {
		t.Fatalf("base unit not type-checked: %v", p.Types)
	}
	if len(p.Files) == 0 {
		t.Fatal("no compiled files parsed")
	}
	if len(p.TypeErrs) != 0 {
		t.Fatalf("unexpected type errors: %v", p.TypeErrs)
	}
	// prng is the sanctioned randomness source; every analyzer must be
	// clean on it with no annotations needed.
	for _, a := range Analyzers() {
		if got := a.Run(p); len(got) != 0 {
			t.Errorf("%s on internal/prng: %v", a.Name, got)
		}
	}
}
