package analysis

import (
	"go/token"
	"math"
	"testing"
)

// FuzzIntervalSoundness checks the one property every transfer function
// of the abstract domain must have: if abstract values enclose concrete
// inputs, then the abstract result of an operation encloses the concrete
// result of the same operation — for every integer shape, including the
// wrap-on-overflow semantics the evaluator models by composing the
// transfer function with clamp (exactly as evalBinary does).
//
// Each fuzz input picks an integer shape, two concrete values of that
// shape, an operation, and two "abstraction recipes" that widen the
// concrete inputs into enclosing AbsVals (exact constant, join with a
// second point, a surrounding interval, the type's full range). The
// concrete operation runs in real Go arithmetic at the shape's width;
// the abstract pipeline must enclose what came out.
//
// Run continuously: go test ./internal/analysis -run '^$' -fuzz FuzzIntervalSoundness
func FuzzIntervalSoundness(f *testing.F) {
	// One seed per operation class, plus the historic trouble spots:
	// wrap-around at the type limit, MinInt64 negation/division corners,
	// 64-bit unsigned values beyond MaxInt64 (the Wide half-lattice),
	// and shift counts at and past the operand width.
	seeds := [][7]uint64{
		{0, 0, 0, 0, 0, 0, 0},
		{opAdd, 3, 0, 0, math.MaxUint32, 1, 0},                         // uint32 wrap
		{opSub, 7, 1, 1, 0, 1, 5},                                      // int64 borrow
		{opMul, 2, 2, 0, 200, 2, 77},                                   // uint16 overflow
		{opQuo, 7, 0, 0, uint64(math.MaxInt64) + 1, ^uint64(0), 0},     // MinInt64 / -1
		{opRem, 6, 3, 0, 12345, 64, 9},                                 // power-of-two mod
		{opShl, 5, 0, 3, 0x8000_0000, 1, 3},                            // uint64 into Wide
		{opShr, 1, 0, 0, 0x80, 100, 0},                                 // count past width
		{opAnd, 5, 2, 2, ^uint64(0), 0xff, 1},                          // Wide & mask
		{opOr, 4, 3, 3, 0x0f, 0xf0, 2},                                 // disjoint known bits
		{opXor, 0, 0, 1, 0x55, 0xaa, 0},                                // int8 sign flip
		{opAndNot, 6, 1, 0, ^uint64(0) >> 1, 7, 0},                     //
		{opNeg, 7, 0, 0, uint64(math.MaxInt64) + 1, 0, 0},              // -MinInt64
		{opNot, 5, 0, 0, 0, 0, 0},                                      // ^0 exceeds MaxInt64
		{opConvert, 5, 0, 0, ^uint64(0), 0, 3},                         // uint64 -> int32
		{opMin, 7, 1, 1, uint64(math.MaxInt64), ^uint64(0), 0},         //
		{opMax, 5, 3, 3, ^uint64(0), 1, 0},                             // Wide max
		{opJoin, 3, 0, 0, 1, uint64(math.MaxInt64) + 7, 0},             //
		{opMeet, 5, 2, 3, uint64(math.MaxInt64) + 99, 0, 0xffff_ffff},  //
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2], s[3], s[4], s[5], s[6])
	}

	f.Fuzz(func(t *testing.T, opSel, typSel, xShape, yShape, x, y, aux uint64) {
		it := fuzzShapes[typSel%uint64(len(fuzzShapes))]
		op := opSel % (opMeet + 1)
		cx := canonBits(x, it)
		cy := canonBits(y, it)
		ax := abstractOf(cx, it, xShape, aux)
		ay := abstractOf(cy, it, yShape, aux>>21)
		if !encloses(ax, cx, it) || !encloses(ay, cy, it) {
			t.Fatalf("abstraction recipe broken: %v ∌ %#x or %v ∌ %#x (shape %+v)", ax, cx, ay, cy, it)
		}

		switch op {
		case opNeg, opNot:
			var cr uint64
			var ar AbsVal
			if op == opNeg {
				cr, ar = canonBits(-cx, it), absNeg(ax)
			} else {
				cr, ar = canonBits(^cx, it), absNot(ax)
			}
			ar = ar.clamp(it)
			if !encloses(ar, cr, it) {
				t.Fatalf("unary op %d over %+v: abstract %v does not enclose concrete %#x (input %#x abstracted as %v)",
					op, it, ar, cr, cx, ax)
			}
		case opConvert:
			to := fuzzShapes[aux%uint64(len(fuzzShapes))]
			cr := canonBits(cx, to)
			ar := absConvert(ax, it, to)
			if !encloses(ar, cr, to) {
				t.Fatalf("convert %+v -> %+v: abstract %v does not enclose concrete %#x (input %#x abstracted as %v)",
					it, to, ar, cr, cx, ax)
			}
		case opJoin:
			j := ax.Join(ay)
			if !encloses(j, cx, it) || !encloses(j, cy, it) {
				t.Fatalf("join %v ⊔ %v = %v loses %#x or %#x (shape %+v)", ax, ay, j, cx, cy, it)
			}
		case opMeet:
			// Meet soundness: a value inside both operands stays inside
			// the intersection. Build the second operand around the SAME
			// concrete value so the premise holds.
			ay2 := abstractOf(cx, it, yShape, aux>>42)
			m := ax.Meet(ay2)
			if !encloses(m, cx, it) {
				t.Fatalf("meet %v ⊓ %v = %v loses %#x (shape %+v)", ax, ay2, m, cx, it)
			}
		default:
			cr, ok := concreteBinary(op, cx, cy, it)
			if !ok {
				return // the concrete operation panics (÷0, negative shift)
			}
			ar := applyFuzzBinary(op, ax, ay).clamp(it)
			if !encloses(ar, cr, it) {
				t.Fatalf("op %d over %+v: abstract %v does not enclose concrete %#x (inputs %#x, %#x abstracted as %v, %v)",
					op, it, ar, cr, cx, cy, ax, ay)
			}
		}
	})
}

// Operation selectors for the fuzz input; binary Go operators first so
// applyFuzzBinary can map them to token values.
const (
	opAdd uint64 = iota
	opSub
	opMul
	opQuo
	opRem
	opShl
	opShr
	opAnd
	opOr
	opXor
	opAndNot
	opNeg
	opNot
	opConvert
	opMin
	opMax
	opJoin
	opMeet
)

var fuzzShapes = []intType{
	{8, true}, {8, false},
	{16, true}, {16, false},
	{32, true}, {32, false},
	{64, true}, {64, false},
}

// canonBits reduces a 64-bit pattern to the canonical representation of
// a value of shape it: low bits truncated to the width, then sign- or
// zero-extended back to 64 bits. All concrete arithmetic below works on
// canonical patterns, mirroring how the hardware (and Go) would.
func canonBits(v uint64, it intType) uint64 {
	if it.bits == 64 {
		return v
	}
	mask := uint64(1)<<uint(it.bits) - 1
	v &= mask
	if it.signed && v&(uint64(1)<<uint(it.bits-1)) != 0 {
		v |= ^mask
	}
	return v
}

// abstractOf widens canonical value v into an AbsVal that encloses it,
// by one of four recipes. Every recipe must return an enclosing value;
// the fuzz body asserts it before relying on it.
func abstractOf(v uint64, it intType, shape, aux uint64) AbsVal {
	exact := func(u uint64) AbsVal {
		if !it.signed && it.bits == 64 {
			return absConstU(u)
		}
		return absConst(int64(u))
	}
	switch shape % 4 {
	case 0:
		return exact(v)
	case 1:
		return rangeOf(it)
	case 2:
		// Join with a second point of the same shape: exercises the
		// known-bits agreement logic.
		return exact(v).Join(exact(canonBits(aux, it)))
	default:
		// A surrounding interval. 64-bit unsigned values past MaxInt64
		// have no interval representation; they live in the Wide half.
		if !it.signed && v > math.MaxInt64 {
			return absWide()
		}
		m := int64(v)
		return absRange(satSub(m, int64(aux%4096)), satAdd(m, int64((aux>>12)%4096)))
	}
}

// encloses reports whether abstract value a contains the concrete value
// with canonical representation v at shape it — the soundness relation
// the whole domain is fuzzed against.
func encloses(a AbsVal, v uint64, it intType) bool {
	if a.Bot {
		return false // a concrete value reached this point
	}
	if a.Mask != 0 && v&a.Mask != a.Bits&a.Mask {
		return false // a claimed known bit disagrees with reality
	}
	if it.signed {
		m := int64(v)
		if a.Wide {
			return m >= 0 // Wide asserts a nonnegative 64-bit quantity
		}
		return a.Lo <= m && m <= a.Hi
	}
	if a.Wide {
		return true // Wide is top for unsigned 64-bit
	}
	if v > math.MaxInt64 {
		return false // beyond every non-Wide interval
	}
	return a.Lo <= int64(v) && int64(v) <= a.Hi
}

// concreteBinary evaluates the Go operation at shape it on canonical
// patterns, returning the canonical result. ok is false when the
// concrete program would panic (division by zero, negative shift
// count) — those executions prove nothing about the domain.
func concreteBinary(op uint64, x, y uint64, it intType) (uint64, bool) {
	switch op {
	case opAdd:
		return canonBits(x+y, it), true
	case opSub:
		return canonBits(x-y, it), true
	case opMul:
		return canonBits(x*y, it), true
	case opQuo:
		if y == 0 {
			return 0, false
		}
		if it.signed {
			return canonBits(uint64(int64(x)/int64(y)), it), true
		}
		return canonBits(x/y, it), true
	case opRem:
		if y == 0 {
			return 0, false
		}
		if it.signed {
			return canonBits(uint64(int64(x)%int64(y)), it), true
		}
		return canonBits(x%y, it), true
	case opShl, opShr:
		if it.signed && int64(y) < 0 {
			return 0, false
		}
		s := y
		if s > 64 {
			s = 64 // Go defines over-width variable shifts; cap to avoid nothing — semantics identical from 64 up
		}
		if op == opShl {
			return canonBits(x<<s, it), true
		}
		if it.signed {
			return canonBits(uint64(int64(x)>>s), it), true
		}
		return canonBits(x>>s, it), true
	case opAnd:
		return canonBits(x&y, it), true
	case opOr:
		return canonBits(x|y, it), true
	case opXor:
		return canonBits(x^y, it), true
	case opAndNot:
		return canonBits(x&^y, it), true
	case opMin:
		if it.signed {
			if int64(x) < int64(y) {
				return x, true
			}
			return y, true
		}
		if x < y {
			return x, true
		}
		return y, true
	case opMax:
		if it.signed {
			if int64(x) > int64(y) {
				return x, true
			}
			return y, true
		}
		if x > y {
			return x, true
		}
		return y, true
	}
	return 0, false
}

// applyFuzzBinary routes a fuzz op selector through the same
// applyBinary dispatch the evaluator uses (min/max go straight to their
// transfer functions; the evaluator reaches them via builtin calls).
func applyFuzzBinary(op uint64, x, y AbsVal) AbsVal {
	switch op {
	case opMin:
		return absMin(x, y)
	case opMax:
		return absMax(x, y)
	}
	return applyBinary(fuzzTokens[op], x, y)
}

var fuzzTokens = map[uint64]token.Token{
	opAdd:    token.ADD,
	opSub:    token.SUB,
	opMul:    token.MUL,
	opQuo:    token.QUO,
	opRem:    token.REM,
	opShl:    token.SHL,
	opShr:    token.SHR,
	opAnd:    token.AND,
	opOr:     token.OR,
	opXor:    token.XOR,
	opAndNot: token.AND_NOT,
}
