//go:build race

package metrofuzz

// raceEnabled reports that the race detector is active. Ensemble tests
// shrink their seed ranges under -race: instrumentation slows each
// scenario by an order of magnitude, and the differential scenarios the
// race job needs are covered explicitly by TestParallelDifferentialWorkers.
const raceEnabled = true
