package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoLoader builds a Loader rooted at the module root (two levels up from
// this package's directory).
func repoLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestStateMachinesMatchGolden extracts every protocol state machine from
// the live sources and diffs it against the checked-in spec under
// docs/statemachines. A diff means the protocol implementation changed:
// regenerate with `go run ./cmd/metrovet -write-machines docs/statemachines`
// and review the transition-level change.
func TestStateMachinesMatchGolden(t *testing.T) {
	l := repoLoader(t)
	for _, spec := range DefaultMachines() {
		spec := spec
		t.Run(spec.Label(), func(t *testing.T) {
			pkgs, err := l.Load(spec.Pattern)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("pattern %s matched %d packages", spec.Pattern, len(pkgs))
			}
			m, err := ExtractMachine(pkgs[0], spec.Type)
			if err != nil {
				t.Fatal(err)
			}
			if len(m.Transitions) == 0 {
				t.Fatalf("no transitions extracted for %s", spec.Label())
			}
			wantBytes, err := os.ReadFile(filepath.Join("..", "..", "docs", "statemachines", spec.FileName()))
			if err != nil {
				t.Fatalf("missing golden table (regenerate with -write-machines): %v", err)
			}
			got := m.Render(spec.Label())
			if diffs := DiffTables(string(wantBytes), got); len(diffs) > 0 {
				t.Errorf("extracted %s machine differs from docs/statemachines/%s:\n  %s\n"+
					"regenerate with `go run ./cmd/metrovet -write-machines docs/statemachines` and review",
					spec.Label(), spec.FileName(), strings.Join(diffs, "\n  "))
			}
		})
	}
}

// ieee1149Table is the complete IEEE 1149.1-1990 TAP controller state
// diagram: for every state, the successor for TMS=0 and TMS=1. Transcribed
// independently from the standard's Figure 5-1, not from the simulator.
var ieee1149Table = []struct {
	from string
	tms0 string
	tms1 string
}{
	{"TestLogicReset", "RunTestIdle", "TestLogicReset"},
	{"RunTestIdle", "RunTestIdle", "SelectDRScan"},
	{"SelectDRScan", "CaptureDR", "SelectIRScan"},
	{"CaptureDR", "ShiftDR", "Exit1DR"},
	{"ShiftDR", "ShiftDR", "Exit1DR"},
	{"Exit1DR", "PauseDR", "UpdateDR"},
	{"PauseDR", "PauseDR", "Exit2DR"},
	{"Exit2DR", "ShiftDR", "UpdateDR"},
	{"UpdateDR", "RunTestIdle", "SelectDRScan"},
	{"SelectIRScan", "CaptureIR", "TestLogicReset"},
	{"CaptureIR", "ShiftIR", "Exit1IR"},
	{"ShiftIR", "ShiftIR", "Exit1IR"},
	{"Exit1IR", "PauseIR", "UpdateIR"},
	{"PauseIR", "PauseIR", "Exit2IR"},
	{"Exit2IR", "ShiftIR", "UpdateIR"},
	{"UpdateIR", "RunTestIdle", "SelectDRScan"},
}

// TestExtractedTAPMachineMatchesIEEE1149 checks the machine extracted from
// scan.State.Next against the full 16-state IEEE 1149.1 state diagram: all
// 32 (state, TMS) transitions must be present with the correct guard, and
// no extracted guarded transition may contradict the standard.
func TestExtractedTAPMachineMatchesIEEE1149(t *testing.T) {
	l := repoLoader(t)
	pkgs, err := l.Load("./internal/scan")
	if err != nil {
		t.Fatal(err)
	}
	m, err := ExtractMachine(pkgs[0], "State")
	if err != nil {
		t.Fatal(err)
	}
	// Index extracted transitions by (from, guard).
	type key struct{ from, guard string }
	got := make(map[key]string)
	for _, tr := range m.Transitions {
		if tr.From == "*" {
			// The extractor also records State.Next's structural fallback
			// (the trailing return TestLogicReset); the standard's table
			// is fully covered by the guarded rows.
			continue
		}
		k := key{tr.From, tr.Guard}
		if prev, dup := got[k]; dup && prev != tr.Next {
			t.Errorf("conflicting transitions from %s under %q: %s vs %s",
				tr.From, tr.Guard, prev, tr.Next)
		}
		got[k] = tr.Next
	}
	if len(ieee1149Table) != 16 {
		t.Fatalf("reference table has %d states, want 16", len(ieee1149Table))
	}
	for _, row := range ieee1149Table {
		if next := got[key{row.from, "!(tms)"}]; next != row.tms0 {
			t.Errorf("%s with TMS=0: extracted %q, IEEE 1149.1 says %q", row.from, next, row.tms0)
		}
		if next := got[key{row.from, "tms"}]; next != row.tms1 {
			t.Errorf("%s with TMS=1: extracted %q, IEEE 1149.1 says %q", row.from, next, row.tms1)
		}
	}
	if want := 2 * len(ieee1149Table); len(got) != want {
		t.Errorf("extracted %d guarded transitions, want exactly %d (16 states x 2 TMS values)", len(got), want)
	}
}
