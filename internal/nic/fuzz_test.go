package nic

import (
	"bytes"
	"testing"

	"metro/internal/word"
)

// FuzzPackUnpackBytes checks the bit-stream payload codec at every
// channel width in [1,32]: unpacking a packed payload must return the
// original bytes followed only by the zero padding that word-granular
// channels introduce, and the word count must match the documented
// ceiling.
func FuzzPackUnpackBytes(f *testing.F) {
	f.Add([]byte(nil), 8)
	f.Add([]byte{0x01}, 1)
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, 3)
	f.Add([]byte("source responsibility"), 16)
	f.Add(bytes.Repeat([]byte{0xff}, 9), 32)
	f.Fuzz(func(t *testing.T, payload []byte, width int) {
		w := width % 32
		if w < 0 {
			w = -w
		}
		w++ // [1,32]
		if len(payload) > 1<<12 {
			payload = payload[:1<<12]
		}
		words := PackBytes(payload, w)
		if want := (len(payload)*8 + w - 1) / w; len(words) != want {
			t.Fatalf("width %d: packed %d bytes into %d words, want %d", w, len(payload), len(words), want)
		}
		for i, pw := range words {
			if pw.Kind != word.Data {
				t.Fatalf("width %d: word %d has kind %v", w, i, pw.Kind)
			}
			if pw.Payload&^word.Mask(w) != 0 {
				t.Fatalf("width %d: word %d payload %#x exceeds channel mask", w, i, pw.Payload)
			}
		}
		got := UnpackBytes(words, w)
		if len(got) < len(payload) {
			t.Fatalf("width %d: unpacked %d bytes from a %d-byte payload", w, len(got), len(payload))
		}
		if !bytes.Equal(got[:len(payload)], payload) {
			t.Fatalf("width %d: payload corrupted through pack/unpack", w)
		}
		for i := len(payload); i < len(got); i++ {
			if got[i] != 0 {
				t.Fatalf("width %d: nonzero padding byte %#x at %d", w, got[i], i)
			}
		}
	})
}

// FuzzHeaderBuildStrip derives a random header spec and digit vector
// from the input, builds the routing header, and checks that each
// stage sees its own digit at the stream head before StripStage
// consumes it — the consumption model core.Router implements — and
// that after every stage has stripped its share, exactly the payload
// words remain.
func FuzzHeaderBuildStrip(f *testing.F) {
	f.Add(8, []byte{0x21, 0x32, 0x13}, []byte{0xaa, 0x55})
	f.Add(4, []byte{0x02, 0x02, 0x12, 0x02}, []byte("ack"))
	f.Add(1, []byte{0x01, 0x11}, []byte{0x80})
	f.Add(16, []byte{0x26, 0x06}, []byte(nil))
	f.Fuzz(func(t *testing.T, width int, stageBytes, payload []byte) {
		w := width % 16
		if w < 0 {
			w = -w
		}
		w++ // [1,16]
		if len(stageBytes) > 6 {
			stageBytes = stageBytes[:6]
		}
		if len(payload) > 256 {
			payload = payload[:256]
		}
		maxDir := w
		if maxDir > 4 {
			maxDir = 4
		}
		var stages []StageHeader
		var digits []int
		for _, b := range stageBytes {
			// Every real stage consumes at least one routing bit (radix >= 2);
			// a 0-bit hw=0 stage would swallow a later stage's exhausted
			// route word, which is outside the modeled domain.
			dir := 1 + int(b)%maxDir          // [1, maxDir]
			hw := int(b>>4) % 3               // {0, 1, 2}
			digit := int(b>>2) & (1<<dir - 1) // < 2^dir
			stages = append(stages, StageHeader{DirBits: dir, HeaderWords: hw})
			digits = append(digits, digit)
		}
		h := HeaderSpec{Width: w, Stages: stages}
		if err := h.Validate(); err != nil {
			t.Fatalf("constructed spec invalid: %v", err)
		}

		data := PackBytes(payload, w)
		stream := append(h.Build(digits), data...)
		if sums := h.ExpectedStageChecksums(stream); len(sums) != len(stages) {
			t.Fatalf("%d stage checksums for %d stages", len(sums), len(stages))
		}

		for s, st := range stages {
			if st.HeaderWords >= 1 {
				// Pipelined setup: the stage's digit rides alone in the
				// first word, followed by hw-1 padding words it consumes.
				if len(stream) == 0 || stream[0].Kind != word.Route {
					t.Fatalf("stage %d (hw=%d): stream head is not ROUTE", s, st.HeaderWords)
				}
				if got := int(stream[0].Payload); got != digits[s] {
					t.Fatalf("stage %d: head digit %d, want %d", s, got, digits[s])
				}
			} else if st.DirBits > 0 {
				// Bit stripping: the digit sits in the low bits of the
				// first ROUTE word.
				var head *word.Word
				for i := range stream {
					if stream[i].Kind == word.Route {
						head = &stream[i]
						break
					}
				}
				if head == nil {
					t.Fatalf("stage %d needs %d bits but no ROUTE word remains", s, st.DirBits)
				}
				if got := int(head.Payload) & (1<<st.DirBits - 1); got != digits[s] {
					t.Fatalf("stage %d: low bits %d, want digit %d", s, got, digits[s])
				}
			}
			stream = h.StripStage(stream, s)
		}

		// All routing material consumed; the payload words pass through
		// untouched.
		if len(stream) != len(data) {
			t.Fatalf("after all stages: %d words remain, want %d payload words", len(stream), len(data))
		}
		for i := range stream {
			if stream[i] != data[i] {
				t.Fatalf("payload word %d changed during header stripping: %v -> %v", i, data[i], stream[i])
			}
		}
		if got := UnpackBytes(stream, w); !bytes.Equal(got[:len(payload)], payload) {
			t.Fatalf("payload corrupted after full strip")
		}
	})
}

// FuzzParserFeed hardens the reversed-stream parser against arbitrary
// word sequences: it must never panic, terminal states must absorb,
// and it must never report more router statuses than STATUS words fed.
func FuzzParserFeed(f *testing.F) {
	f.Add(8, 1, 2, []byte{byte(word.Status), 0, byte(word.ChecksumWord), 0x5a, byte(word.Turn), 0})
	f.Add(4, 2, 3, []byte{byte(word.Status), byte(word.StatusBlocked), byte(word.Drop), 0})
	f.Add(8, 1, 0, []byte{byte(word.Status), byte(word.StatusDest), byte(word.ChecksumWord), 1, byte(word.Data), 9})
	f.Add(1, 1, 1, []byte{byte(word.Route), 3, byte(word.HeaderPad), 0})
	f.Fuzz(func(t *testing.T, width, lanes, stages int, data []byte) {
		w := width % 16
		if w < 0 {
			w = -w
		}
		w++ // [1,16]
		l := lanes % 4
		if l < 0 {
			l = -l
		}
		l++ // [1,4]
		if w*l > 32 {
			l = 32 / w
		}
		st := stages % 6
		if st < 0 {
			st = -st
		}
		p := newParser(w, w*l, l, st)

		statuses := 0
		for i := 0; i+1 < len(data); i += 2 {
			kind := word.Kind(data[i] % 9) // the 9 defined symbol kinds
			if kind == word.Status {
				statuses++
			}
			wasTerminal := p.done || p.closed || p.failed
			p.feed(word.Word{Kind: kind, Payload: uint32(data[i+1])})
			if wasTerminal && (p.stageCount() > statuses || !(p.done || p.closed || p.failed)) {
				t.Fatal("terminal parser state mutated by further input")
			}
		}
		if p.stageCount() > statuses {
			t.Fatalf("parser reported %d router statuses from %d STATUS words", p.stageCount(), statuses)
		}
	})
}
