package word

import (
	"bytes"
	"testing"
)

// refCRC8 is an independent bitwise implementation of CRC-8 polynomial
// 0x07 — the differential oracle for the table-driven Checksum.
func refCRC8(data []byte) uint8 {
	var crc uint8
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// FuzzChecksum checks the table-driven CRC against the bitwise
// reference on arbitrary byte streams, and that Add over content words
// matches AddByte over their payload bytes while control words stay
// transparent.
func FuzzChecksum(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte{0x00})
	f.Add([]byte{0xff, 0x07, 0x80})
	f.Add(bytes.Repeat([]byte{0xa5}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Checksum
		for _, b := range data {
			c.AddByte(b)
		}
		if got, want := c.Sum(), refCRC8(data); got != want {
			t.Fatalf("table CRC %#x, bitwise reference %#x over %d bytes", got, want, len(data))
		}

		// Content words checksum their payload byte; interleaved control
		// words must not disturb the running value.
		contentKinds := []Kind{Route, HeaderPad, Data, ChecksumWord}
		var viaWords Checksum
		for i, b := range data {
			viaWords.Add(Word{Kind: contentKinds[i%len(contentKinds)], Payload: uint32(b)})
			viaWords.Add(Word{Kind: DataIdle})
			viaWords.Add(Word{Kind: Turn})
		}
		if got, want := viaWords.Sum(), refCRC8(data); got != want {
			t.Fatalf("word-stream CRC %#x, reference %#x", got, want)
		}
	})
}

// FuzzChecksumSplitJoin checks that a CRC-8 value survives being split
// into channel words at any width in [1,32], that the allocation-free
// append form agrees with SplitChecksum, and that the word count
// matches ChecksumWords.
func FuzzChecksumSplitJoin(f *testing.F) {
	f.Add(uint8(0), 1)
	f.Add(uint8(0xff), 3)
	f.Add(uint8(0x5a), 8)
	f.Add(uint8(0xc3), 16)
	f.Fuzz(func(t *testing.T, sum uint8, width int) {
		w := width % 32
		if w < 0 {
			w = -w
		}
		w++ // [1,32]
		words := SplitChecksum(sum, w)
		if len(words) != ChecksumWords(w) {
			t.Fatalf("width %d: %d words, ChecksumWords says %d", w, len(words), ChecksumWords(w))
		}
		for i, cw := range words {
			if cw.Kind != ChecksumWord {
				t.Fatalf("width %d: word %d has kind %v", w, i, cw.Kind)
			}
			if cw.Payload&^Mask(w) != 0 {
				t.Fatalf("width %d: word %d payload %#x exceeds channel mask", w, i, cw.Payload)
			}
		}
		if got := JoinChecksum(words, w); got != sum {
			t.Fatalf("width %d: join(split(%#x)) = %#x", w, sum, got)
		}
		appended := AppendChecksum(nil, sum, w)
		if len(appended) != len(words) {
			t.Fatalf("width %d: AppendChecksum produced %d words, SplitChecksum %d", w, len(appended), len(words))
		}
		for i := range words {
			if appended[i] != words[i] {
				t.Fatalf("width %d: append/split disagree at word %d: %v vs %v", w, i, appended[i], words[i])
			}
		}
	})
}
