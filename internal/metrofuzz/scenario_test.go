package metrofuzz

import (
	"reflect"
	"strings"
	"testing"

	"metro/internal/fault"
	"metro/internal/topo"
)

// TestGeneratorValidAndDeterministic: every generated scenario must
// validate (the ensemble never wastes a seed on a spec error), and the
// seed->scenario mapping must be a pure function — the whole repro
// story hangs on that.
func TestGeneratorValidAndDeterministic(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 100
	}
	for seed := int64(0); seed < int64(n); seed++ {
		s := Generate(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid scenario: %v", seed, err)
		}
		again := Generate(seed)
		if !reflect.DeepEqual(s, again) {
			t.Fatalf("seed %d: generator is not deterministic:\n%+v\n%+v", seed, s, again)
		}
	}
}

// TestSpecRoundTrip: the one-line spec is the replay currency; encoding
// then decoding any generated scenario must reproduce it exactly —
// presets, custom topologies, random wiring seeds, fault plans and all.
func TestSpecRoundTrip(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	for seed := int64(0); seed < int64(n); seed++ {
		s := Generate(seed)
		line := EncodeSpec(s)
		if strings.ContainsAny(line, " \n\t") {
			t.Fatalf("seed %d: spec contains whitespace: %q", seed, line)
		}
		got, err := DecodeSpec(line)
		if err != nil {
			t.Fatalf("seed %d: decode %q: %v", seed, line, err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("seed %d: round trip drifted:\n  in:  %+v\n  out: %+v\n  via %q", seed, s, got, line)
		}
	}
}

// TestSpecRoundTripAllFaultKinds covers the fault codec arms the
// generator never emits (stuck bits are replay-only).
func TestSpecRoundTripAllFaultKinds(t *testing.T) {
	s := Generate(0)
	s.Preset = "fig1"
	s.Custom = topo.Spec{}
	s.Faults = fault.Plan{
		{At: 0, Kind: fault.LinkKill, Stage: -1, Index: 3, Port: 1},
		{At: 10, Kind: fault.RouterKill, Stage: 0, Index: 2},
		{At: 20, Kind: fault.LinkKill, Stage: 1, Index: 1, Port: 3},
		{At: 30, Kind: fault.PortDisable, Stage: 1, Index: 0, Port: 2},
		{At: 40, Kind: fault.LinkStuckBit, Stage: 0, Index: 1, Port: 0, Bit: 5},
	}
	line := EncodeSpec(s)
	got, err := DecodeSpec(line)
	if err != nil {
		t.Fatalf("decode %q: %v", line, err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("fault plan drifted through %q:\n  in:  %+v\n  out: %+v", line, s.Faults, got.Faults)
	}
}

// TestSpecRoundTripCustomTopology pins the custom-topology encoding,
// including the random-wiring seed suffix.
func TestSpecRoundTripCustomTopology(t *testing.T) {
	s := Generate(0)
	s.Preset = ""
	s.Custom = topo.Spec{
		Endpoints:     16,
		EndpointLinks: 2,
		Stages: []topo.StageSpec{
			{Inputs: 4, Radix: 2, Dilation: 2},
			{Inputs: 4, Radix: 2, Dilation: 2},
			{Inputs: 4, Radix: 4, Dilation: 1},
		},
		Wiring: topo.WiringRandom,
		Seed:   12345,
	}
	s.Faults = nil
	line := EncodeSpec(s)
	if !strings.Contains(line, "topo=16x2:2.2.4,2.2.4,4.1.4@12345") {
		t.Fatalf("unexpected topology encoding in %q", line)
	}
	got, err := DecodeSpec(line)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("custom topology drifted:\n  in:  %+v\n  out: %+v", s.Custom, got.Custom)
	}
}

// TestDecodeSpecRejects: malformed or out-of-range specs must fail
// loudly, never run.
func TestDecodeSpecRejects(t *testing.T) {
	valid := EncodeSpec(Generate(1))
	cases := []struct{ name, spec string }{
		{"empty", ""},
		{"wrong version", "mf9;topo=fig1"},
		{"unknown field", valid + ";zz=1"},
		{"unknown preset", strings.Replace(valid, "topo=", "topo=nosuch", 1)},
		{"malformed field", valid + ";ic"},
		{"bad width", replaceField(valid, "w", "99")},
		{"zero messages", replaceField(valid, "msgs", "0")},
		{"bad fault code", valid + ";faults=xx@1:0.0"},
		{"fault missing fields", valid + ";faults=rk@1:0"},
		{"fault bad cycle", valid + ";faults=rk@-1:0.0"},
	}
	for _, c := range cases {
		if _, err := DecodeSpec(c.spec); err == nil {
			t.Errorf("%s: DecodeSpec(%q) accepted", c.name, c.spec)
		}
	}
}

func replaceField(spec, key, val string) string {
	parts := strings.Split(spec, ";")
	for i, p := range parts {
		if strings.HasPrefix(p, key+"=") {
			parts[i] = key + "=" + val
		}
	}
	return strings.Join(parts, ";")
}

// TestValidateFaultTargets: fault events must land on elements the
// topology actually has.
func TestValidateFaultTargets(t *testing.T) {
	base := Generate(1)
	base.Preset = "fig1" // 16 endpoints, 2 links, 2 stages
	base.Custom = topo.Spec{}
	ok := base
	ok.Faults = fault.Plan{{At: 5, Kind: fault.RouterKill, Stage: 0, Index: 0}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid fault rejected: %v", err)
	}
	cases := []fault.Event{
		{Kind: fault.RouterKill, Stage: 9, Index: 0},            // no such stage
		{Kind: fault.RouterKill, Stage: 0, Index: 999},          // no such router
		{Kind: fault.LinkKill, Stage: 0, Index: 0, Port: 99},    // no such port
		{Kind: fault.LinkKill, Stage: -1, Index: 999, Port: 0},  // no such endpoint
		{Kind: fault.LinkKill, Stage: -1, Index: 0, Port: 9},    // no such link
		{Kind: fault.RouterKill, Stage: -1, Index: 0},           // kills need routers
		{Kind: fault.PortDisable, Stage: -1, Index: 0, Port: 0}, // disables too
	}
	for i, e := range cases {
		s := base
		s.Faults = fault.Plan{e}
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid fault %+v accepted", i, e)
		}
	}
}

// TestPayloadRoundTrip: the tag must survive encoding, tolerate the
// trailing zero padding wide channels introduce, and reject every
// corruption a delivery bug could produce.
func TestPayloadRoundTrip(t *testing.T) {
	for _, n := range []int{8, 12, 20, 40, 64} {
		p := EncodePayload(7001, 3, 12, n)
		if len(p) != n {
			t.Fatalf("EncodePayload length %d, want %d", len(p), n)
		}
		id, src, dest, ok := DecodePayload(p)
		if !ok || id != 7001 || src != 3 || dest != 12 {
			t.Fatalf("decode(%d bytes) = %d,%d,%d,%v", n, id, src, dest, ok)
		}
		// Channel padding: wide logical words round payloads up with
		// trailing zeros.
		padded := append(append([]byte(nil), p...), 0, 0, 0)
		if id, src, dest, ok = DecodePayload(padded); !ok || id != 7001 || src != 3 || dest != 12 {
			t.Fatalf("padded decode failed: %d,%d,%d,%v", id, src, dest, ok)
		}
		// Nonzero padding is corruption, not padding.
		bad := append(append([]byte(nil), p...), 1)
		if _, _, _, ok = DecodePayload(bad); ok {
			t.Fatal("nonzero trailing byte accepted")
		}
		// Any single-byte flip must be caught.
		for i := 0; i < n; i++ {
			flip := append([]byte(nil), p...)
			flip[i] ^= 0x40
			if _, _, _, ok := DecodePayload(flip); ok {
				t.Fatalf("flip at byte %d of %d went undetected", i, n)
			}
		}
	}
	if _, _, _, ok := DecodePayload([]byte{1, 2, 3}); ok {
		t.Fatal("short buffer accepted")
	}
	if _, _, _, ok := DecodePayload(nil); ok {
		t.Fatal("nil buffer accepted")
	}
}
