package metrofuzz

// Tagged payloads let the delivery and payload oracles attribute every
// destination-side delivery to the exact offered message, independent of
// the network's own end-to-end CRC: each payload carries a harness
// message ID, the source and destination endpoints, its declared length,
// deterministic filler derived from the ID, and an XOR guard byte. A
// misrouted, truncated, cross-wired or corrupted-but-CRC-colliding
// delivery fails to decode or decodes to the wrong destination, which is
// precisely what the oracle wants to see.
//
// Layout ([n]byte, n >= MinPayloadBytes):
//
//	[0:4]  message ID, little endian
//	[4]    source endpoint
//	[5]    destination endpoint
//	[6]    declared total length n
//	[7:n-1] filler: fillByte(id, i)
//	[n-1]  XOR of bytes [0:n-1]
//
// Wide logical channels pad payloads with trailing zero bytes
// (nic.UnpackBytes recovers whole words); the declared-length byte lets
// DecodePayload strip that padding while still rejecting truncation.

// EncodePayload builds the tagged payload for one offered message.
//
//metrovet:truncate LE byte extraction of the ID is the tag format; src, dest and n fit a byte (Scenario.Validate bounds payloads to [8,64] and fuzz topologies keep endpoint counts far below 256)
func EncodePayload(id uint32, src, dest, n int) []byte {
	if n < MinPayloadBytes {
		n = MinPayloadBytes
	}
	//metrovet:alloc one tagged payload per offered message, not a per-cycle path
	p := make([]byte, n)
	p[0] = byte(id)
	p[1] = byte(id >> 8)
	p[2] = byte(id >> 16)
	p[3] = byte(id >> 24)
	p[4] = byte(src)
	p[5] = byte(dest)
	p[6] = byte(n)
	for i := 7; i < n-1; i++ {
		p[i] = fillByte(id, i)
	}
	var x byte
	for _, b := range p[:n-1] {
		x ^= b
	}
	p[n-1] = x
	return p
}

// DecodePayload validates a delivered payload and recovers its tag.
// Trailing zero bytes beyond the declared length are tolerated (channel
// padding); any other deviation reports ok = false.
func DecodePayload(buf []byte) (id uint32, src, dest int, ok bool) {
	if len(buf) < MinPayloadBytes {
		return 0, 0, 0, false
	}
	n := int(buf[6])
	if n < MinPayloadBytes || n > len(buf) {
		return 0, 0, 0, false
	}
	for _, b := range buf[n:] {
		if b != 0 {
			return 0, 0, 0, false
		}
	}
	var x byte
	for _, b := range buf[:n-1] {
		x ^= b
	}
	if x != buf[n-1] {
		return 0, 0, 0, false
	}
	id = uint32(buf[0]) | uint32(buf[1])<<8 | uint32(buf[2])<<16 | uint32(buf[3])<<24
	for i := 7; i < n-1; i++ {
		if buf[i] != fillByte(id, i) {
			return 0, 0, 0, false
		}
	}
	return id, int(buf[4]), int(buf[5]), true
}

// fillByte derives deterministic filler from the message ID and byte
// position — a cheap mix so adjacent messages and positions differ.
//
//metrovet:truncate multiplicative hashing wraps by design
func fillByte(id uint32, i int) byte {
	v := id*2654435761 + uint32(i)*0x9e3779b9
	return byte(v >> 24)
}
