// metroserve is the METRO simulation service: a long-running daemon
// that accepts mf1 scenario specs over HTTP, executes them on a bounded
// worker fleet under the full metrofuzz oracle battery, streams
// cycle-stamped progress and telemetry gauges as Server-Sent Events,
// and memoizes results in a content-addressed cache so a repeated
// submission is served from stored bytes without re-simulating.
//
// Usage:
//
//	metroserve [-addr host:port] [-workers n] [-queue n]
//	           [-cache-bytes n] [-job-timeout d] [-drain-timeout d]
//	           [-progress n] [-gauge-every n]
//	           [-log-format text|json] [-debug-addr host:port]
//
// Operational surface: /v1/metrics serves the Prometheus text
// exposition, /v1/healthz is pure liveness, /v1/readyz reports
// load-aware readiness, and structured logs (one line per request and
// per job-state transition) go to stderr in the -log-format encoding.
// -debug-addr opts into a second listener serving net/http/pprof under
// /debug/pprof/ — kept off the main address so profiling is never
// exposed by the serving port.
//
// The daemon prints one line, `metroserve listening on <addr>`, once
// the socket is bound (with -addr :0 the line carries the kernel-chosen
// port — the e2e harness relies on this; with -debug-addr a
// `metroserve debug listening on <addr>` line follows), and exits 0
// after a graceful drain on SIGINT/SIGTERM. See docs/SERVING.md for the
// HTTP API.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"metro/internal/serve"
)

// newLogger builds the daemon's structured logger for a -log-format
// value, or returns false for an unknown format.
func newLogger(format string) (*slog.Logger, bool) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), true
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), true
	}
	return nil, false
}

// debugMux builds the pprof handler tree for -debug-addr. Only the
// profiling endpoints are mounted — the debug listener deliberately
// serves nothing else.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7905", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker fleet size")
	queue := flag.Int("queue", 64, "admission queue depth; submissions beyond it get 429")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache LRU byte budget")
	jobTimeout := flag.Duration("job-timeout", 2*time.Minute, "per-job execution deadline (0 disables)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget after SIGTERM before in-flight jobs are canceled")
	progress := flag.Uint64("progress", 0, "cycle period of SSE progress frames (0 selects the metrofuzz default)")
	gaugeEvery := flag.Uint64("gauge-every", 64, "forward only gauge samples on this cycle grid to SSE subscribers (0 forwards all)")
	logFormat := flag.String("log-format", "text", "structured log encoding on stderr: text or json")
	debugAddr := flag.String("debug-addr", "", "optional second listen address serving net/http/pprof under /debug/pprof/ (empty disables)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "metroserve: unexpected arguments %q\n", flag.Args())
		os.Exit(2)
	}
	logger, ok := newLogger(*logFormat)
	if !ok {
		fmt.Fprintf(os.Stderr, "metroserve: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheBytes:     *cacheBytes,
		JobTimeout:     *jobTimeout,
		ProgressPeriod: *progress,
		GaugeEvery:     *gaugeEvery,
		Logger:         logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metroserve: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("metroserve listening on %s\n", ln.Addr())

	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metroserve: debug listener: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("metroserve debug listening on %s\n", dln.Addr())
		debugSrv = &http.Server{Handler: debugMux()}
		go debugSrv.Serve(dln)
	}

	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("metroserve: %v, draining\n", sig)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "metroserve: %v\n", err)
		os.Exit(1)
	}

	// Drain first so new submissions see 503 while queued work finishes,
	// then close the HTTP side. The drain budget doubles as the shutdown
	// budget for straggling streams.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	sctx, scancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	if drainErr != nil {
		fmt.Printf("metroserve: drain deadline hit; in-flight jobs were canceled\n")
	}
	fmt.Printf("metroserve: drained\n")
}
