package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
)

// TreeOptions configures a whole-tree analysis run.
type TreeOptions struct {
	// Patterns are loader patterns ("./...", "./dir", "./dir/...");
	// empty means the whole module.
	Patterns []string
	// CacheDir enables the incremental cache (see cache.go) when
	// non-empty.
	CacheDir string
	// Rules overrides the rule set (nil = Analyzers()).
	Rules []*Analyzer
}

// TreeResult is the outcome of one whole-tree run.
type TreeResult struct {
	// Findings is the merged, sorted finding list with module-relative
	// filenames.
	Findings []Finding
	// Packages is the number of matched package directories.
	Packages int
	// FullHit reports that the whole result was served from the cache
	// without parsing or type-checking anything.
	FullHit bool
	// PkgHits counts packages whose per-package-rule findings came from
	// the cache (equals Packages on a full hit).
	PkgHits int
	// Key is the whole-tree cache key (content hash).
	Key string
	// TypeErrs holds type-checker diagnostics ("path: err"), empty on a
	// full cache hit and on a tree that builds.
	TypeErrs []string
}

// RunTree is the one entry point the CLI, the tests and the benchmark
// share: resolve patterns, consult the cache, load what must be loaded,
// run per-package rules per package and whole-program rules once over
// the combined Program, and return stable, module-relative findings.
func RunTree(root string, opts TreeOptions) (*TreeResult, error) {
	rules := opts.Rules
	if rules == nil {
		rules = Analyzers()
	}
	loader, err := NewLoader(root)
	if err != nil {
		return nil, err
	}
	dirs, err := loader.Dirs(opts.Patterns...)
	if err != nil {
		return nil, err
	}

	// Hash sources before deciding whether to load: a full cache hit
	// skips parsing and type-checking entirely.
	dirKeys := map[string]string{}
	for _, dir := range dirs {
		ip, err := loader.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		h, err := dirHash(dir)
		if err != nil {
			return nil, err
		}
		dirKeys[ip] = h
	}
	rh := ruleHash(rules)
	key := programKey(root, rh, dirKeys)
	res := &TreeResult{Packages: len(dirs), Key: key}

	var cf *cacheFile
	if opts.CacheDir != "" {
		cf = readCache(opts.CacheDir)
		if cf.RuleHash == rh && cf.ProgramKey == key {
			res.Findings = decodeFindings(cf.Findings)
			res.FullHit = true
			res.PkgHits = len(dirs)
			return res, nil
		}
	}

	pkgs, err := loader.Load(opts.Patterns...)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrs {
			res.TypeErrs = append(res.TypeErrs, fmt.Sprintf("%s: %v", p.ImportPath, terr))
		}
	}

	// relativize rewrites filenames module-relative and zeroes the
	// byte offset, so fresh findings compare equal to cache-decoded ones.
	relativize := func(fs []Finding) []Finding {
		for i := range fs {
			if rel, err := filepath.Rel(root, fs[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				fs[i].Pos.Filename = filepath.ToSlash(rel)
			}
			fs[i].Pos.Offset = 0
		}
		return fs
	}

	var pkgRules, progRules []*Analyzer
	for _, a := range rules {
		if a.RunProgram != nil {
			progRules = append(progRules, a)
		} else {
			pkgRules = append(pkgRules, a)
		}
	}

	useCache := cf != nil && cf.RuleHash == rh
	newCf := &cacheFile{Version: cacheVersion, RuleHash: rh, ProgramKey: key, Packages: map[string]cachePkgEntry{}}
	var all []Finding
	for _, p := range pkgs {
		if useCache {
			if e, ok := cf.Packages[p.ImportPath]; ok && e.Key == dirKeys[p.ImportPath] {
				all = append(all, decodeFindings(e.Findings)...)
				newCf.Packages[p.ImportPath] = e
				res.PkgHits++
				continue
			}
		}
		var fs []Finding
		for _, a := range pkgRules {
			fs = append(fs, a.Run(p)...)
		}
		fs = relativize(fs)
		SortFindings(fs)
		newCf.Packages[p.ImportPath] = cachePkgEntry{Key: dirKeys[p.ImportPath], Findings: encodeFindings(fs)}
		all = append(all, fs...)
	}

	// Whole-program rules always run on a partial hit: an edit anywhere
	// can change an interprocedural summary packages away.
	prog := NewProgram(pkgs)
	for _, a := range progRules {
		all = append(all, relativize(a.RunProgram(prog))...)
	}
	SortFindings(all)
	res.Findings = all

	if opts.CacheDir != "" {
		newCf.Findings = encodeFindings(all)
		// Best-effort: a failed cache write only costs the next run time.
		_ = writeCache(opts.CacheDir, newCf)
	}
	return res, nil
}
