package metro_test

import (
	"fmt"
	"testing"

	"metro"
	"metro/internal/netsim"
	"metro/internal/stats"
	"metro/internal/traffic"
	"metro/internal/word"
)

// runFaultedSweepPoint measures one fault-degradation point: closed-loop
// uniform traffic at load 0.3 on the Figure 3 network while `kills`
// routers die mid-run.
func runFaultedSweepPoint(kills int) (metro.LoadPoint, int, error) {
	const (
		warmup  = 1500
		window  = 2500
		measure = 6000
	)
	driver := &traffic.ClosedLoop{
		Load:        0.3,
		MsgBytes:    20,
		Pattern:     traffic.Uniform{},
		Outstanding: 1,
		Seed:        31,
		Warmup:      warmup + window,
	}
	params := netsim.Params{
		Spec:          metro.Figure3Topology(),
		Width:         8,
		DataPipe:      1,
		LinkDelay:     1,
		FastReclaim:   true,
		Seed:          31,
		RetryLimit:    500,
		ListenTimeout: 300,
		OnResult:      driver.OnResult,
	}
	n, err := netsim.Build(params)
	if err != nil {
		return metro.LoadPoint{}, 0, err
	}
	driver.Bind(n)
	if kills > 0 {
		plan := metro.RandomRouterKills(n, kills, 2, 77, warmup, warmup+window)
		metro.InjectFaults(n, plan)
	}
	n.Run(warmup + window + measure)
	p := driver.Point()
	failed := 0
	for _, r := range driver.Measured() {
		if !r.Delivered {
			failed++
		}
	}
	return p, failed, nil
}

// BenchmarkCascadeWidths measures the bandwidth scaling of width
// cascading: the cycles to move a fixed payload through a logical router
// of c = 1, 2, 4 members (Table 3's cascade rows scale t_bit by 1/c).
func BenchmarkCascadeWidths(b *testing.B) {
	type row struct {
		c           int
		cyclesPerKB float64
	}
	var rows []row
	run := func() {
		rows = rows[:0]
		for _, c := range []int{1, 2, 4} {
			rows = append(rows, row{c, cascadeCyclesPerKB(b, c)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	once("cascade", func() {
		t := stats.Table{Header: []string{"cascade width", "logical width", "cycles/KB", "speedup"}}
		base := rows[0].cyclesPerKB
		for _, r := range rows {
			t.Add(
				fmt.Sprintf("%d", r.c),
				fmt.Sprintf("%d b", 4*r.c),
				fmt.Sprintf("%.0f", r.cyclesPerKB),
				fmt.Sprintf("%.2fx", base/r.cyclesPerKB))
		}
		fmt.Printf("\n=== Width cascading: bandwidth scaling (4-bit members) ===\n%s\n", t.String())
	})
}

// cascadeCyclesPerKB streams 256 logical bytes through one cascaded
// router and reports cycles per kilobyte.
func cascadeCyclesPerKB(b *testing.B, c int) float64 {
	b.Helper()
	cfg := metro.RouterConfig{Inputs: 4, Outputs: 4, Width: 4, MaxDilation: 2,
		HeaderWords: 0, DataPipe: 1, MaxVTD: 4, RandomInputs: 2, ScanPaths: 1}
	set := metro.DefaultRouterSettings(cfg)
	set.Dilation = 1
	g := metro.NewCascadeGroup("bw", cfg, set, c, 123)

	eng := metro.NewEngine()
	src := make([]*metro.LinkEnd, c)
	for k := 0; k < c; k++ {
		for fp := 0; fp < cfg.Inputs; fp++ {
			l := metro.NewLink("f", 1)
			g.Member(k).AttachForward(fp, l.B())
			if fp == 0 {
				src[k] = l.A()
			}
			eng.Add(l)
		}
		for bp := 0; bp < cfg.Outputs; bp++ {
			l := metro.NewLink("b", 1)
			g.Member(k).AttachBackward(bp, l.A())
			eng.Add(l)
		}
	}
	eng.Add(g)

	const payloadBytes = 256
	logicalW := 4 * c
	words := payloadBytes * 8 / logicalW

	// Stream: route word, then data words, then drop.
	cycle := 0
	send := func(w word.Word) {
		for k := 0; k < c; k++ {
			src[k].Send(splitFor(w, k, 4))
		}
		eng.Step()
		cycle++
	}
	send(word.MakeRoute(2, 2))
	for i := 0; i < words; i++ {
		send(word.Word{Kind: word.Data, Payload: uint32(i)})
	}
	send(word.Word{Kind: word.Drop})
	return float64(cycle) / payloadBytes * 1024
}

func splitFor(w word.Word, k, width int) word.Word {
	switch w.Kind {
	case word.Data, word.ChecksumWord:
		return word.Word{Kind: w.Kind, Payload: (w.Payload >> uint(k*width)) & word.Mask(width)}
	default:
		return w
	}
}

// BenchmarkRouterEvalThroughput is a performance microbenchmark: router
// evaluations per second with active connections (the simulator's core
// inner loop).
func BenchmarkRouterEvalThroughput(b *testing.B) {
	n, err := metro.BuildNetwork(metro.NetworkParams{
		Spec:        metro.Figure3Topology(),
		Width:       8,
		DataPipe:    1,
		LinkDelay:   1,
		FastReclaim: true,
		Seed:        3,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Keep traffic flowing so the routers have work.
	for e := 0; e < 64; e += 2 {
		n.Send(e, (e+17)%64, make([]byte, 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Engine.Step()
		if i%1000 == 999 { // refill
			b.StopTimer()
			n.TakeResults()
			for e := 0; e < 64; e += 2 {
				n.Send(e, (e+17)%64, make([]byte, 20))
			}
			b.StartTimer()
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(n.Engine.Components()), "components/cycle")
}

// BenchmarkSingleMessageLatency times one complete reliable delivery
// (build excluded) on the Figure 1 network.
func BenchmarkSingleMessageLatency(b *testing.B) {
	n, err := metro.BuildNetwork(metro.NetworkParams{
		Spec:        metro.Figure1Topology(),
		Width:       8,
		DataPipe:    1,
		LinkDelay:   1,
		FastReclaim: true,
		Seed:        3,
	})
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, ok := metro.SendOne(n, i%16, (i+7)%16, payload, 5000)
		if !ok || !res.Delivered {
			b.Fatalf("delivery failed at iteration %d", i)
		}
	}
}

// BenchmarkWiringStyles compares the deterministic interleaved wiring with
// the randomly wired multibutterfly under adversarial bit-reversal
// traffic (the construction studied by Leighton/Lisinski/Maggs).
func BenchmarkWiringStyles(b *testing.B) {
	type outcome struct {
		wiring string
		p      metro.LoadPoint
	}
	var outcomes []outcome
	run := func() {
		outcomes = outcomes[:0]
		for _, wiring := range []metro.Wiring{metro.WiringInterleave, metro.WiringRandom} {
			spec := metro.Figure3Topology()
			spec.Wiring = wiring
			spec.Seed = 77
			p, err := metro.RunClosedLoop(metro.RunSpec{
				Net: metro.NetworkParams{
					Spec: spec, Width: 8, DataPipe: 1, LinkDelay: 1,
					FastReclaim: true, Seed: 13, RetryLimit: 1000,
				},
				Load:          0.5,
				MsgBytes:      20,
				Pattern:       metro.BitReverseTraffic{},
				Outstanding:   1,
				WarmupCycles:  1500,
				MeasureCycles: 5000,
				Seed:          9,
			})
			if err != nil {
				b.Fatal(err)
			}
			outcomes = append(outcomes, outcome{wiring.String(), p})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	once("wiring", func() {
		t := stats.Table{Header: []string{"wiring", "mean lat", "p95", "retries/msg", "accepted"}}
		for _, o := range outcomes {
			t.Add(o.wiring,
				fmt.Sprintf("%.1f", o.p.Latency.Mean),
				fmt.Sprintf("%.0f", o.p.Latency.P95),
				fmt.Sprintf("%.2f", o.p.RetriesPerMessage),
				fmt.Sprintf("%.2f", o.p.AcceptedLoad))
		}
		fmt.Printf("\n=== Wiring styles under bit-reversal traffic (load 0.5) ===\n%s\n", t.String())
	})
}

// BenchmarkTrafficPatterns sweeps the built-in workload patterns at a
// fixed offered load, showing how the multipath network absorbs uniform,
// permutation and hotspot traffic differently.
func BenchmarkTrafficPatterns(b *testing.B) {
	patterns := []metro.TrafficPattern{
		metro.UniformTraffic{},
		metro.BitReverseTraffic{},
		metro.TransposeTraffic{},
		metro.HotspotTraffic{Target: 0, Fraction: 0.25},
	}
	type outcome struct {
		name string
		p    metro.LoadPoint
	}
	var outcomes []outcome
	run := func() {
		outcomes = outcomes[:0]
		for _, pat := range patterns {
			p, err := metro.RunClosedLoop(metro.RunSpec{
				Net: metro.NetworkParams{
					Spec: metro.Figure3Topology(), Width: 8, DataPipe: 1, LinkDelay: 1,
					FastReclaim: true, Seed: 19, RetryLimit: 1000,
				},
				Load:          0.4,
				MsgBytes:      20,
				Pattern:       pat,
				Outstanding:   1,
				WarmupCycles:  1500,
				MeasureCycles: 5000,
				Seed:          11,
			})
			if err != nil {
				b.Fatal(err)
			}
			outcomes = append(outcomes, outcome{pat.Name(), p})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	once("patterns", func() {
		t := stats.Table{Header: []string{"pattern", "mean lat", "p95", "retries/msg", "accepted"}}
		for _, o := range outcomes {
			t.Add(o.name,
				fmt.Sprintf("%.1f", o.p.Latency.Mean),
				fmt.Sprintf("%.0f", o.p.Latency.P95),
				fmt.Sprintf("%.2f", o.p.RetriesPerMessage),
				fmt.Sprintf("%.2f", o.p.AcceptedLoad))
		}
		fmt.Printf("\n=== Traffic patterns on the Figure 3 network (load 0.4) ===\n%s\n", t.String())
	})
}

// BenchmarkCascadedNetworkLatency measures the end-to-end message latency
// of full networks built from cascaded routers — the cycle-domain analogue
// of Table 3's cascade rows (t_stg constant, serialization time divided by
// c).
func BenchmarkCascadedNetworkLatency(b *testing.B) {
	type row struct {
		c   int
		lat uint64
	}
	var rows []row
	run := func() {
		rows = rows[:0]
		for _, c := range []int{1, 2, 4} {
			n, err := metro.BuildNetwork(metro.NetworkParams{
				Spec:         metro.Figure1Topology(),
				Width:        4,
				CascadeWidth: c,
				FastReclaim:  true,
				Seed:         61,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, ok := metro.SendOne(n, 0, 15, make([]byte, 20), 5000)
			if !ok || !res.Delivered {
				b.Fatal("delivery failed")
			}
			rows = append(rows, row{c, res.Done - res.Injected})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	once("cascnet", func() {
		t := stats.Table{Header: []string{"cascade", "logical width", "20-byte latency (cycles)"}}
		for _, r := range rows {
			t.Add(fmt.Sprintf("%d", r.c), fmt.Sprintf("%d b", 4*r.c), fmt.Sprintf("%d", r.lat))
		}
		fmt.Printf("\n=== Cascaded networks: unloaded 20-byte latency (4-bit components) ===\n%s\n", t.String())
	})
}

// BenchmarkBlockingProfile measures where connections block, stage by
// stage, as offered load rises. Under uniform random traffic the dilated
// early stages absorb contention (multiple equivalent outputs), and
// blocking concentrates at the dilation-1 final stage, where endpoint
// contention — two connections racing for the same destination's delivery
// links — cannot be diffused. This is exactly the structural argument for
// dilating the early stages: without it, the same contention would
// appear at every stage.
func BenchmarkBlockingProfile(b *testing.B) {
	loads := []float64{0.2, 0.5, 0.8}
	type row struct {
		load  float64
		rates []float64
	}
	var rows []row
	run := func() {
		rows = rows[:0]
		for _, load := range loads {
			counters := metro.NewStageCounters()
			driver := &traffic.ClosedLoop{
				Load:        load,
				MsgBytes:    20,
				Pattern:     traffic.Uniform{},
				Outstanding: 1,
				Seed:        71,
				Warmup:      1000,
			}
			params := netsim.Params{
				Spec: metro.Figure3Topology(), Width: 8, DataPipe: 1, LinkDelay: 1,
				FastReclaim: true, Seed: 71, RetryLimit: 1000,
				Tracer:   counters,
				OnResult: driver.OnResult,
			}
			n, err := netsim.Build(params)
			if err != nil {
				b.Fatal(err)
			}
			driver.Bind(n)
			n.Run(6000)
			stats3 := counters.PerStage(3)
			rates := make([]float64, 3)
			for i, s := range stats3 {
				rates[i] = s.BlockRate()
			}
			rows = append(rows, row{load, rates})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	once("blocking", func() {
		t := stats.Table{Header: []string{"offered load", "stage 0 block rate", "stage 1", "stage 2 (dilation-1)"}}
		for _, r := range rows {
			t.Add(
				fmt.Sprintf("%.1f", r.load),
				fmt.Sprintf("%.3f", r.rates[0]),
				fmt.Sprintf("%.3f", r.rates[1]),
				fmt.Sprintf("%.3f", r.rates[2]))
		}
		fmt.Printf("\n=== Blocking profile by stage (Figure 3 network) ===\n%s"+
			"dilated stages diffuse contention; blocking concentrates at the\n"+
			"dilation-1 final stage where destination conflicts are irreducible\n\n", t.String())
	})
}

// BenchmarkNetworkSizeScaling evaluates the latency model across machine
// sizes: t20,N grows logarithmically — one stage latency per doubling of
// endpoints — which is the architectural point of multistage networks.
func BenchmarkNetworkSizeScaling(b *testing.B) {
	sizes := []int{32, 64, 128, 256, 512, 1024, 4096}
	type row struct {
		n      int
		orbit  float64
		custom float64
	}
	var rows []row
	orbit := metro.Table3()[0]
	custom := metro.Table3()[11]
	run := func() {
		rows = rows[:0]
		for _, n := range sizes {
			rows = append(rows, row{n, orbit.Scaled(n).T2032(), custom.Scaled(n).T2032()})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	once("scaling", func() {
		t := stats.Table{Header: []string{"endpoints", "stages", "METROJR-ORBIT t20,N", "full-custom hw=1 t20,N"}}
		for _, r := range rows {
			t.Add(
				fmt.Sprintf("%d", r.n),
				fmt.Sprintf("%d", len(orbit.Scaled(r.n).StageBits)),
				fmt.Sprintf("%.0f ns", r.orbit),
				fmt.Sprintf("%.0f ns", r.custom))
		}
		fmt.Printf("\n=== Network size scaling: t20,N (logarithmic growth) ===\n%s\n", t.String())
	})
}

// BenchmarkSaturationThroughput sweeps open-loop (Bernoulli) injection
// past the network's saturation point: accepted load plateaus while
// queueing delay diverges — the standard complement to the closed-loop
// Figure 3 curve.
func BenchmarkSaturationThroughput(b *testing.B) {
	loads := []float64{0.1, 0.3, 0.5, 0.8, 1.2}
	var points []metro.LoadPoint
	spec := metro.RunSpec{
		Net: metro.NetworkParams{
			Spec: metro.Figure3Topology(), Width: 8, DataPipe: 1, LinkDelay: 1,
			FastReclaim: true, Seed: 37, RetryLimit: 1000,
		},
		MsgBytes:      20,
		WarmupCycles:  1500,
		MeasureCycles: 5000,
		Seed:          13,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		points, err = metro.OpenLoopSweep(spec, loads)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	once("saturation", func() {
		t := stats.Table{Header: []string{"offered", "accepted", "transit lat", "queue+transit lat", "retries/msg"}}
		for _, p := range points {
			t.Add(
				fmt.Sprintf("%.1f", p.OfferedLoad),
				fmt.Sprintf("%.2f", p.AcceptedLoad),
				fmt.Sprintf("%.1f", p.Latency.Mean),
				fmt.Sprintf("%.1f", p.QueueLatency.Mean),
				fmt.Sprintf("%.2f", p.RetriesPerMessage))
		}
		fmt.Printf("\n=== Open-loop saturation throughput (Figure 3 network) ===\n%s"+
			"accepted load saturates while queueing delay diverges\n\n", t.String())
	})
}

// BenchmarkRetryDistribution validates the paper's Section 4 claim that
// "the number of retries required, in practice, is small": at a moderate
// working load, most messages deliver on the first attempt and the tail
// of the retry distribution is short. It also measures the claim under a
// static router fault.
func BenchmarkRetryDistribution(b *testing.B) {
	type row struct {
		label              string
		mean, p95, max     float64
		zeroRetries, total int
	}
	var rows []row
	measure := func(label string, faults metro.FaultPlan) row {
		var retries stats.Sample
		zero, total := 0, 0
		driver := &traffic.ClosedLoop{
			Load:        0.4,
			MsgBytes:    20,
			Pattern:     traffic.Uniform{},
			Outstanding: 1,
			Seed:        47,
			Warmup:      1500,
		}
		params := netsim.Params{
			Spec: metro.Figure3Topology(), Width: 8, DataPipe: 1, LinkDelay: 1,
			FastReclaim: true, Seed: 47, RetryLimit: 1000,
			ListenTimeout: 300,
			OnResult:      driver.OnResult,
		}
		n, err := netsim.Build(params)
		if err != nil {
			b.Fatal(err)
		}
		driver.Bind(n)
		if len(faults) > 0 {
			metro.InjectFaults(n, faults)
		}
		n.Run(8000)
		for _, r := range driver.Measured() {
			retries.Add(float64(r.Retries))
			total++
			if r.Retries == 0 {
				zero++
			}
		}
		return row{label, retries.Mean(), retries.Percentile(95), retries.Max(), zero, total}
	}
	run := func() {
		rows = rows[:0]
		rows = append(rows, measure("healthy, load 0.4", nil))
		rows = append(rows, measure("one router dead", metro.FaultPlan{
			{At: 0, Kind: metro.FaultRouterKill, Stage: 1, Index: 3},
		}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	once("retrydist", func() {
		t := stats.Table{Header: []string{"condition", "mean retries", "p95", "max", "first-try delivery"}}
		for _, r := range rows {
			t.Add(r.label,
				fmt.Sprintf("%.2f", r.mean),
				fmt.Sprintf("%.0f", r.p95),
				fmt.Sprintf("%.0f", r.max),
				fmt.Sprintf("%.0f%%", 100*float64(r.zeroRetries)/float64(r.total)))
		}
		fmt.Printf("\n=== Retry distribution (\"the number of retries required, in practice, is small\") ===\n%s\n",
			t.String())
	})
}

// BenchmarkMessageSizeCrossover evaluates the latency model across message
// sizes for three implementation points. Small messages are dominated by
// per-stage latency (the 2-stage radix-8 METRO wins over the 4-stage
// METROJR); large messages are dominated by serialization (cascading
// wins). The crossovers fall where the model says they should.
func BenchmarkMessageSizeCrossover(b *testing.B) {
	rows16 := metro.Table3()
	jr := rows16[4]      // METROJR std cell, 4 stages, w=4
	wide := rows16[7]    // METRO i=o=8 w=4 std cell, 2 stages
	cascade := rows16[6] // 4-cascade std cell, 4 stages, w_eff=16
	sizes := []int{1, 4, 8, 20, 64, 256, 1024}
	type row struct {
		bytes   int
		jr      float64
		wide    float64
		cascade float64
	}
	var rows []row
	run := func() {
		rows = rows[:0]
		for _, n := range sizes {
			rows = append(rows, row{n,
				jr.MessageLatency(n), wide.MessageLatency(n), cascade.MessageLatency(n)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	once("crossover", func() {
		t := stats.Table{Header: []string{"payload", "METROJR 4-stage", "METRO 8x8 2-stage", "4-cascade", "winner"}}
		for _, r := range rows {
			winner := "2-stage"
			min := r.wide
			if r.jr < min {
				winner, min = "METROJR", r.jr
			}
			if r.cascade < min {
				winner = "4-cascade"
			}
			t.Add(
				fmt.Sprintf("%d B", r.bytes),
				fmt.Sprintf("%.0f ns", r.jr),
				fmt.Sprintf("%.0f ns", r.wide),
				fmt.Sprintf("%.0f ns", r.cascade),
				winner)
		}
		fmt.Printf("\n=== Message-size crossover (0.8u std cell implementations) ===\n%s"+
			"short messages favor fewer stages; long messages favor wide (cascaded) channels\n\n",
			t.String())
	})
}
