package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTrace() Trace {
	return Trace{
		Total: 12, // 4 of the 16 recorded events were overwritten
		Events: []Event{
			ev(5, EvMsgQueued, EndpointSource(3), 1, 9, 0),
			ev(6, EvMsgAttempt, EndpointSource(3), 1, 1, 0),
			ev(6, EvConnSetup, RouterSource(0, 2, 0), 0, 1, 5),
			ev(7, EvConnBlockedFast, RouterSource(1, 7, 1), 0, 3, 1),
			ev(8, EvFault, RouterSource(2, 0, 0), 0, 2, -1),
			ev(9, EvGaugeConns, NetworkSource(1), 0, 4, 0),
			ev(9, EvGaugeQueueDepth, NetworkSource(-1), 0, 11, 3),
			ev(40, EvMsgDelivered, EndpointSource(3), 1, 0, 9),
		},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	in := sampleTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Total != in.Total {
		t.Errorf("Total = %d, want %d", out.Total, in.Total)
	}
	if len(out.Events) != len(in.Events) {
		t.Fatalf("decoded %d events, want %d", len(out.Events), len(in.Events))
	}
	for i := range in.Events {
		if out.Events[i] != in.Events[i] {
			t.Errorf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, out.Events[i], in.Events[i])
		}
	}
}

// TestCodecCanonical pins the byte format: the encoding is the currency
// of the serial-vs-parallel identity tests, so its bytes must be a pure
// function of the trace.
func TestCodecCanonical(t *testing.T) {
	var a, b bytes.Buffer
	if err := Encode(&a, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same trace encoded to different bytes")
	}
	first := strings.SplitN(a.String(), "\n", 2)[0]
	if first != "mtr1 8 12" {
		t.Errorf("header = %q, want %q", first, "mtr1 8 12")
	}
	if !strings.Contains(a.String(), "5 MSG-QUEUED ep:-1:3:0 1 9 0\n") {
		t.Errorf("missing expected event line in:\n%s", a.String())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad magic":      "mtr9 0 0\n",
		"count mismatch": "mtr1 2 2\n1 MSG-QUEUED ep:-1:3:0 1 9 0\n",
		"unknown kind":   "mtr1 1 1\n1 MSG-BOGUS ep:-1:3:0 1 9 0\n",
		"bad source":     "mtr1 1 1\n1 MSG-QUEUED nowhere 1 9 0\n",
		"short line":     "mtr1 1 1\n1 MSG-QUEUED ep:-1:3:0 1\n",
		"bad cycle":      "mtr1 1 1\nx MSG-QUEUED ep:-1:3:0 1 9 0\n",
	}
	//metrovet:ordered independent assertions per table entry
	for name, input := range cases {
		if _, err := Decode(strings.NewReader(input)); err == nil {
			t.Errorf("%s: Decode accepted %q", name, input)
		}
	}
}

func TestSourceStringRendering(t *testing.T) {
	cases := []struct {
		src  Source
		want string
	}{
		{RouterSource(2, 5, 0), "s2r5"},
		{RouterSource(2, 5, 1), "s2r5.m1"},
		{EndpointSource(3), "ep3"},
		{NetworkSource(-1), "net"},
		{NetworkSource(0), "net.s0"},
	}
	for _, c := range cases {
		if got := c.src.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.src, got, c.want)
		}
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for k := EvMsgQueued; k <= EvGaugeInFlight; k++ {
		name := k.String()
		if strings.HasPrefix(name, "Kind(") {
			t.Fatalf("kind %d has no mnemonic", k)
		}
		if got, ok := kindByName[name]; !ok || got != k {
			t.Errorf("kindByName[%q] = %v, %v; want %v", name, got, ok, k)
		}
	}
}
