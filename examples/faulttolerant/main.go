// Fault tolerance walkthrough: dynamic faults strike a running METRO
// network; source-responsible retry plus stochastic path selection route
// around them; checksum comparison localizes a corrupting link; and a
// scan-driven port disable masks it permanently (paper, Sections 4, 5.1).
package main

import (
	"fmt"
	"log"

	"metro"
)

func main() {
	spec := metro.Figure1Topology()
	net, err := metro.BuildNetwork(metro.NetworkParams{
		Spec:          spec,
		Width:         8,
		DataPipe:      1,
		LinkDelay:     1,
		FastReclaim:   true,
		Seed:          99,
		RetryLimit:    300,
		ListenTimeout: 200,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1 — dynamic router losses under traffic. Kill two dilated-
	// stage routers while all-pairs traffic flows; every message must
	// still deliver.
	plan := metro.FaultPlan{
		{At: 150, Kind: metro.FaultRouterKill, Stage: 0, Index: 3},
		{At: 400, Kind: metro.FaultRouterKill, Stage: 1, Index: 6},
	}
	metro.InjectFaults(net, plan)
	sent := 0
	for src := 0; src < spec.Endpoints; src++ {
		for d := 1; d <= 3; d++ {
			net.Send(src, (src+d*5)%spec.Endpoints, []byte{byte(src), byte(d)})
			sent++
		}
	}
	if !net.RunUntilQuiet(1000000) {
		log.Fatal("network did not go quiet")
	}
	delivered, retries, timeouts := 0, 0, 0
	for _, r := range net.TakeResults() {
		if r.Delivered {
			delivered++
		}
		retries += r.Retries
		timeouts += r.Timeouts
	}
	fmt.Printf("phase 1: %d/%d messages delivered across 2 dynamic router losses "+
		"(%d retries, %d watchdog recoveries)\n", delivered, sent, retries, timeouts)

	// Phase 2 — a stuck bit on one stage-0 output link. Traffic crossing
	// it is corrupted; end-to-end checksums catch it, retries avoid the
	// link stochastically, and the per-stage checksum comparison points
	// the finger at the right stage.
	net2, err := metro.BuildNetwork(metro.NetworkParams{
		Spec: spec, Width: 8, DataPipe: 1, LinkDelay: 1,
		FastReclaim: true, Seed: 5, RetryLimit: 300, ListenTimeout: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Every output of stage-0 router 1 drives through a faulty connector:
	// bit 0 of each link is stuck high.
	var stuck metro.FaultPlan
	for port := 0; port < 4; port++ {
		stuck = append(stuck, metro.FaultEvent{
			At: 0, Kind: metro.FaultLinkStuckBit, Stage: 0, Index: 1, Port: port, Bit: 0,
		})
	}
	metro.InjectFaults(net2, stuck)
	suspects := map[int]int{}
	cksumFailures := 0
	for src := 0; src < spec.Endpoints; src++ {
		for d := 1; d <= 4; d++ {
			// Several messages per source so both injection links (and
			// hence the faulty router) carry traffic.
			net2.Send(src, (src+d*3)%spec.Endpoints, []byte{0x00, 0x02, 0x04, 0x06})
		}
	}
	if !net2.RunUntilQuiet(1000000) {
		log.Fatal("phase 2 did not go quiet")
	}
	for _, r := range net2.TakeResults() {
		cksumFailures += r.ChecksumFailures
		if r.SuspectStage >= 0 {
			suspects[r.SuspectStage]++
		}
	}
	fmt.Printf("phase 2: stuck bit caused %d corrupted attempts; "+
		"checksum comparison localized them to stage(s) %v\n", cksumFailures, keys(suspects))

	// Phase 3 — diagnose and mask. Isolate the suspect link's port over
	// scan, boundary-test it, confirm the stuck bit, and leave it
	// disabled: traffic now flows with zero corruption.
	router := net2.RouterAt(0, 1)
	mt := metro.NewMultiTAP(router, 0x0001A001)
	reg := metro.NewSettingsRegister(router)
	bits, _ := mt.ReadSettings(reg.Len())
	_ = bits
	router.SetBackwardEnabled(2, false) // as a CONFIG scan load would
	diag := metro.LoopbackTest(net2.OutLink(0, 1, 2), 8, nil)
	fmt.Printf("phase 3: boundary test of isolated link: passed=%v stuck-high mask=%#x\n",
		diag.Passed, diag.StuckHigh)

	// Mask the remaining faulty outputs of the router as well, as the
	// diagnosis sweep would after testing each isolated port.
	for port := 0; port < 4; port++ {
		router.SetBackwardEnabled(port, false)
	}
	sent3 := 0
	for src := 0; src < spec.Endpoints; src++ {
		for d := 1; d <= 4; d++ {
			net2.Send(src, (src+d*3)%spec.Endpoints, []byte{0x00, 0x02, 0x04, 0x06})
			sent3++
		}
	}
	if !net2.RunUntilQuiet(1000000) {
		log.Fatal("phase 3 did not go quiet")
	}
	bad := 0
	deliveredMasked := 0
	for _, r := range net2.TakeResults() {
		if r.Delivered {
			deliveredMasked++
		}
		bad += r.ChecksumFailures
	}
	fmt.Printf("phase 3: with the faulty router's ports masked, %d/%d delivered with %d corrupted attempts\n",
		deliveredMasked, sent3, bad)
}

func keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
