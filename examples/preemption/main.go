// Stateless-network demonstration (paper, Section 2, circuit switching
// advantage 3): "No messages ever exist solely in the network.
// Consequently, it is possible to stop network operation at any point in
// time without losing or duplicating messages" — the property that lets
// gang-scheduled multiprocessors context-switch without snapshotting
// network state.
//
// This example starts a burst of messages, then brutally preempts the
// entire network mid-flight — every open connection on every router is
// killed, as a gang-scheduler revoking the network would. Because METRO is
// circuit switched, each in-flight message still exists at its source;
// after the preemption the sources simply retry, and application-level
// sequence numbers confirm every message arrives exactly once.
package main

import (
	"fmt"
	"log"

	"metro"
)

func main() {
	spec := metro.Figure1Topology()
	delivered := map[byte]int{} // app-level sequence number -> copies seen
	net, err := metro.BuildNetwork(metro.NetworkParams{
		Spec:        spec,
		Width:       8,
		DataPipe:    1,
		LinkDelay:   1,
		FastReclaim: true,
		Seed:        77,
		RetryLimit:  300,
		OnDeliver: func(dest int, payload []byte, intact bool) {
			if intact && len(payload) > 0 {
				delivered[payload[0]]++
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A burst of 48 sequenced messages.
	seq := byte(0)
	sent := 0
	for src := 0; src < spec.Endpoints; src++ {
		for d := 1; d <= 3; d++ {
			net.Send(src, (src+d*5)%spec.Endpoints, []byte{seq, byte(src)})
			seq++
			sent++
		}
	}

	// Let the burst get airborne, then preempt: kill every open
	// connection on every router, exactly as stopping the network clock
	// and revoking the fabric would.
	net.Run(15)
	open := 0
	for s := range net.Routers {
		for _, r := range net.Routers[s] {
			open += r.ConnectionCount()
			for fp := 0; fp < r.Config().Inputs; fp++ {
				r.KillConnection(net.Engine.Cycle(), fp)
			}
		}
	}
	fmt.Printf("preempted at cycle %d: %d router connections destroyed\n",
		net.Engine.Cycle(), open)

	// Resume: the sources detect their destroyed connections (BCB or
	// watchdog) and retry. No network state was saved or restored.
	if !net.RunUntilQuiet(1000000) {
		log.Fatal("network did not go quiet")
	}

	results := net.TakeResults()
	ok, retries := 0, 0
	for _, r := range results {
		if r.Delivered {
			ok++
		}
		retries += r.Retries
	}
	dupes, missing := 0, 0
	for s := byte(0); s < seq; s++ {
		switch delivered[s] {
		case 0:
			missing++
		case 1:
		default:
			dupes += delivered[s] - 1
		}
	}
	fmt.Printf("after resume: %d/%d messages acknowledged (%d total retries)\n", ok, sent, retries)
	fmt.Printf("application sequence check: %d missing, %d duplicated\n", missing, dupes)
	if missing == 0 && ok == sent {
		fmt.Println("no message was lost across the preemption: every in-flight")
		fmt.Println("message survived at its source and was retried to completion")
	}
	if dupes > 0 {
		fmt.Printf("(%d deliveries raced the preemption and re-arrived; end-to-end\n", dupes)
		fmt.Println("sequence numbers — the usual source-responsible companion — dedupe them)")
	}
}
