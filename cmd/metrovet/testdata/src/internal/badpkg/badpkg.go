// Package badpkg is a deliberately non-conforming fixture: the golden
// tests for metrovet's -json/-sarif emitters and the incremental cache
// point the tool at this package. It lives under a testdata directory so
// the Go toolchain and metrovet's own recursive tree walks both skip it;
// only an explicit pattern reaches it.
package badpkg

var hits int

// Gadget is a component whose Eval breaks the discipline on purpose: it
// allocates per cycle and, two call frames down, increments package-level
// state shared across every shard.
type Gadget struct{ buf []int }

func (g *Gadget) Eval(cycle uint64) {
	g.buf = make([]int, 8)
	bump()
}

func (g *Gadget) Commit(cycle uint64) {}

func bump() { count() }

func count() { hits++ }
