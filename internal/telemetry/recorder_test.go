package telemetry

import (
	"testing"
)

func ev(cycle uint64, kind Kind, src Source, msg uint64, a, b int32) Event {
	return Event{Cycle: cycle, Kind: kind, Src: src, Msg: msg, A: a, B: b}
}

func TestRecorderFlushMergesInRegistrationOrder(t *testing.T) {
	r := New(Options{Capacity: 16})
	b1, b2, b3 := r.NewBuf(), r.NewBuf(), r.NewBuf()
	// Emit out of registration order; the flush must drain b1, b2, b3.
	b3.Emit(ev(1, EvGaugeInFlight, NetworkSource(-1), 0, 3, 0))
	b1.Emit(ev(1, EvConnSetup, RouterSource(0, 0, 0), 0, 1, 2))
	b2.Emit(ev(1, EvMsgQueued, EndpointSource(4), 7, 5, 0))
	b1.Emit(ev(1, EvConnReleased, RouterSource(0, 0, 0), 0, 1, 2))
	r.Flush()
	got := r.Snapshot()
	want := []Kind{EvConnSetup, EvConnReleased, EvMsgQueued, EvGaugeInFlight}
	if len(got.Events) != len(want) {
		t.Fatalf("snapshot has %d events, want %d", len(got.Events), len(want))
	}
	for i, k := range want {
		if got.Events[i].Kind != k {
			t.Errorf("event %d kind = %v, want %v", i, got.Events[i].Kind, k)
		}
	}
	if b1.Len() != 0 || b2.Len() != 0 || b3.Len() != 0 {
		t.Error("flush left events in shard buffers")
	}
}

func TestRecorderRingOverwritesOldest(t *testing.T) {
	r := New(Options{Capacity: 4})
	b := r.NewBuf()
	for c := uint64(1); c <= 10; c++ {
		b.Emit(ev(c, EvMsgAttempt, EndpointSource(0), c, 0, 0))
		r.Flush()
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4 (the ring capacity)", r.Len())
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
	tr := r.Snapshot()
	for i, e := range tr.Events {
		if want := uint64(7 + i); e.Cycle != want {
			t.Errorf("snapshot[%d].Cycle = %d, want %d (oldest-first window)", i, e.Cycle, want)
		}
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	if got := New(Options{}).Capacity(); got != DefaultCapacity {
		t.Fatalf("default capacity = %d, want %d", got, DefaultCapacity)
	}
}

func TestFlusherDrivesRecorder(t *testing.T) {
	r := New(Options{Capacity: 8})
	b := r.NewBuf()
	f := Flusher{R: r}
	b.Emit(ev(3, EvFault, RouterSource(1, 2, 0), 0, 0, 1))
	f.Eval(3)
	f.Commit(3)
	if r.Len() != 1 {
		t.Fatalf("flusher did not drain: Len = %d", r.Len())
	}
}

// BenchmarkRecorderSteadyState measures one warmed-up recording cycle:
// eight events emitted across two shard buffers, then a flush. After the
// buffers reach their high-water mark and the ring is allocated, the
// path must be allocation-free; TestZeroAllocRecorderSteadyState gates
// it.
func BenchmarkRecorderSteadyState(b *testing.B) {
	r := New(Options{Capacity: 1 << 12})
	b1, b2 := r.NewBuf(), r.NewBuf()
	src1, src2 := RouterSource(0, 3, 0), EndpointSource(5)
	// Warm-up: reach the per-cycle high-water mark once.
	for i := 0; i < 8; i++ {
		b1.Emit(ev(0, EvConnSetup, src1, 0, 1, 2))
		b2.Emit(ev(0, EvMsgAttempt, src2, 9, 1, 0))
	}
	r.Flush()
	var cycle uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 4; k++ {
			b1.Emit(ev(cycle, EvConnSetup, src1, 0, 1, 2))
			b2.Emit(ev(cycle, EvMsgAttempt, src2, 9, 1, 0))
		}
		r.Flush()
		cycle++
	}
}

// TestZeroAllocRecorderSteadyState asserts the enabled recording path —
// emit into shard buffers, flush into the ring — performs zero heap
// allocations once warm, the acceptance gate for "tracing on" overhead.
func TestZeroAllocRecorderSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	if testing.Short() {
		t.Skip("benchmark-backed allocation gate; CI runs it in the dedicated -run ZeroAlloc step")
	}
	res := testing.Benchmark(BenchmarkRecorderSteadyState)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("recorder steady state: %d allocs/op, want 0", a)
	}
}

// TestRecorderSinkObservesFlushedBatches proves the streaming sink
// adapter: every flush hands the sink each buffer's events in the same
// registration-order merge the ring receives, before buffers reset, and
// the ring's own contents are unchanged by the sink being attached.
func TestRecorderSinkObservesFlushedBatches(t *testing.T) {
	r := New(Options{Capacity: 16})
	b1, b2 := r.NewBuf(), r.NewBuf()
	var seen []Event
	r.SetSink(func(events []Event) {
		// The slice is reused after the call: copy, as the contract says.
		seen = append(seen, events...)
	})
	b2.Emit(ev(1, EvGaugeInFlight, NetworkSource(-1), 0, 3, 0))
	b1.Emit(ev(1, EvConnSetup, RouterSource(0, 0, 0), 0, 1, 2))
	r.Flush()
	b1.Emit(ev(2, EvConnReleased, RouterSource(0, 0, 0), 0, 1, 2))
	r.Flush()
	want := []Kind{EvConnSetup, EvGaugeInFlight, EvConnReleased}
	if len(seen) != len(want) {
		t.Fatalf("sink saw %d events, want %d", len(seen), len(want))
	}
	for i, k := range want {
		if seen[i].Kind != k {
			t.Errorf("sink event %d kind = %v, want %v", i, seen[i].Kind, k)
		}
	}
	snap := r.Snapshot()
	if len(snap.Events) != len(want) {
		t.Fatalf("ring recorded %d events with a sink attached, want %d", len(snap.Events), len(want))
	}
	for i := range snap.Events {
		if snap.Events[i] != seen[i] {
			t.Errorf("ring event %d differs from sink copy", i)
		}
	}
}
