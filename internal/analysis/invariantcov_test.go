package analysis

import "testing"

func TestInvariantCoverageFiresWhenUncalled(t *testing.T) {
	got := runRule(t, InvariantCoverage(), "metro/internal/core", map[string]string{
		"a.go": `package core

type Router struct{ n int }

// CheckInvariants audits internal consistency: finding (line 6).
func (r *Router) CheckInvariants() error { return nil }
`,
		"a_test.go": `package core

import "testing"

func TestSomethingElse(t *testing.T) { _ = t }
`,
	})
	wantFindings(t, got, "invariant-coverage", [2]any{"a.go", 6})
}

func TestInvariantCoverageSatisfiedByInPackageTest(t *testing.T) {
	src := map[string]string{
		"a.go": `package core

type Router struct{ n int }

func (r *Router) CheckInvariants() error { return nil }
`,
		"a_test.go": `package core

import "testing"

func TestAudit(t *testing.T) {
	var r Router
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
`,
	}
	if got := runRule(t, InvariantCoverage(), "metro/internal/core", src); len(got) != 0 {
		t.Fatalf("in-package test calls it, got %v", got)
	}
}

func TestInvariantCoverageSatisfiedByExternalTest(t *testing.T) {
	// External test packages (package foo_test) count too — that is
	// where this repository's core invariant audits live.
	src := map[string]string{
		"a.go": `package netsim

func CheckNetworkInvariants() error { return nil }
`,
		"x_test.go": `package netsim_test

func audit() {
	_ = CheckNetworkInvariants()
}
`,
	}
	if got := runRule(t, InvariantCoverage(), "metro/internal/netsim", src); len(got) != 0 {
		t.Fatalf("external test calls it, got %v", got)
	}
}

func TestInvariantCoverageIgnoresNonMatchingNames(t *testing.T) {
	src := map[string]string{
		"a.go": `package nic

// Checksum is not an invariant auditor.
func Checksum(b []byte) byte { return 0 }

// checkInvariants is unexported: internal audits are the package's own
// business.
func checkInvariants() error { return nil }
`,
	}
	if got := runRule(t, InvariantCoverage(), "metro/internal/nic", src); len(got) != 0 {
		t.Fatalf("no exported Check…Invariants here, got %v", got)
	}
}
