package metrofuzz

import (
	"strings"
	"testing"
)

// TestDecodeSpecStrict pins the service-facing contract: exactly one
// clean mf1 line decodes; any surrounding or embedded garbage — the
// bytes a CLI-buffered reader would silently strip or a Sscanf-style
// parser would silently ignore — is refused.
func TestDecodeSpecStrict(t *testing.T) {
	valid := EncodeSpec(tinyScenario())
	cases := []struct {
		name string
		in   string
		ok   bool
	}{
		{"valid line", valid, true},
		{"empty", "", false},
		{"trailing newline", valid + "\n", false},
		{"trailing CRLF", valid + "\r\n", false},
		{"trailing space", valid + " ", false},
		{"leading space", " " + valid, false},
		{"second line", valid + "\njunk", false},
		{"embedded tab", strings.Replace(valid, ";w=", ";\tw=", 1), false},
		{"unknown version", "mf2" + strings.TrimPrefix(valid, "mf1"), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, err := DecodeSpecStrict(c.in)
			if c.ok {
				if err != nil {
					t.Fatalf("DecodeSpecStrict(%q) = %v, want ok", c.in, err)
				}
				if got := EncodeSpec(s); got != valid {
					t.Fatalf("strict decode drifted: got %q want %q", got, valid)
				}
			} else if err == nil {
				t.Fatalf("DecodeSpecStrict(%q) accepted, want rejection", c.in)
			}
		})
	}

	// The lenient CLI path still trims what a shell pipeline adds...
	if _, err := DecodeSpec(valid + "\n"); err != nil {
		t.Fatalf("DecodeSpec must keep trimming a trailing newline: %v", err)
	}
	// ...but neither entry point may accept trailing garbage inside a
	// field: Sscanf's %d used to stop at the first non-digit and report
	// success, so these decoded as their garbage-free prefixes.
	for _, bad := range []string{
		strings.Replace(valid, "4x1:", "4x1junk:", 1),
		strings.Replace(valid, "2.1.2,", "2.1.2junk,", 1),
		strings.Replace(valid, "4x1:", "4junkx1:", 1),
	} {
		if _, err := DecodeSpec(bad); err == nil {
			t.Errorf("DecodeSpec(%q) accepted trailing garbage inside topo", bad)
		}
	}
}

// TestRunCanceled proves the Progress hook's cancellation path: a hook
// that immediately asks to stop yields a Canceled report with the
// bookkeeping failure, not an oracle verdict.
func TestRunCanceled(t *testing.T) {
	calls := 0
	rep := Run(tinyScenario(), Hooks{
		ProgressPeriod: 1,
		Progress: func(cycle uint64, offered, completed, delivered int) bool {
			calls++
			return calls < 3
		},
	})
	if !rep.Canceled {
		t.Fatalf("report not marked canceled: %+v", rep)
	}
	if len(rep.Failures) != 1 || rep.Failures[0].Oracle != "canceled" {
		t.Fatalf("want a single canceled failure, got %v", rep.Failures)
	}
}

// TestRunProgressObserved proves the hook streams monotone cycle stamps
// and final counts matching the report, without perturbing the run.
func TestRunProgressObserved(t *testing.T) {
	// Serial-only: each leg restarts its cycle counter, so monotonicity
	// is a per-leg property.
	scn := tinyScenario()
	scn.Workers = 0
	base := Run(scn, Hooks{})
	if base.Failed() {
		t.Fatalf("baseline failed: %v", base.Failures)
	}
	var cycles []uint64
	var lastCompleted, lastDelivered int
	rep := Run(scn, Hooks{
		ProgressPeriod: 64,
		Progress: func(cycle uint64, offered, completed, delivered int) bool {
			if n := len(cycles); n > 0 && cycle < cycles[n-1] {
				t.Fatalf("progress cycle went backwards: %d after %d", cycle, cycles[n-1])
			}
			cycles = append(cycles, cycle)
			lastCompleted, lastDelivered = completed, delivered
			return true
		},
	})
	if rep.Failed() {
		t.Fatalf("observed run failed: %v", rep.Failures)
	}
	if rep.Cycles != base.Cycles || rep.Offered != base.Offered || rep.Delivered != base.Delivered {
		t.Fatalf("Progress hook perturbed the run: %d/%d/%d vs baseline %d/%d/%d",
			rep.Cycles, rep.Offered, rep.Delivered, base.Cycles, base.Offered, base.Delivered)
	}
	if len(cycles) < 2 {
		t.Fatalf("want multiple progress callbacks, got %d", len(cycles))
	}
	if lastCompleted != rep.Offered || lastDelivered != rep.Delivered {
		t.Fatalf("final progress counts %d/%d, report %d/%d",
			lastCompleted, lastDelivered, rep.Offered, rep.Delivered)
	}
}
