package telemetry

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"testing"
)

// TestPerfettoStructure validates the exported JSON against the Trace
// Event Format contract Perfetto loads: a traceEvents array whose
// records carry a known phase, pids/tids with name metadata, counter
// tracks for gauges, and duration spans for message phases.
func TestPerfettoStructure(t *testing.T) {
	tr := lifecycleTrace()
	var buf bytes.Buffer
	if err := ExportPerfetto(&buf, tr, Summarize(tr)); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.Unit != "ms" && f.Unit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ms or ns", f.Unit)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	validPhase := map[string]bool{"M": true, "i": true, "C": true, "X": true}
	namedThreads := map[[2]int]bool{}
	usedThreads := map[[2]int]bool{}
	counters, instants, spans := 0, 0, 0
	for i, e := range f.TraceEvents {
		ph, _ := e["ph"].(string)
		if !validPhase[ph] {
			t.Fatalf("event %d has phase %q", i, ph)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event %d has no pid: %v", i, e)
		}
		pid := int(e["pid"].(float64))
		tid := 0
		if v, ok := e["tid"].(float64); ok {
			tid = int(v)
		}
		switch ph {
		case "M":
			if name, _ := e["name"].(string); name == "thread_name" {
				namedThreads[[2]int{pid, tid}] = true
			}
		case "i":
			instants++
			usedThreads[[2]int{pid, tid}] = true
			if s, _ := e["s"].(string); s != "t" {
				t.Errorf("instant %d has scope %q, want \"t\"", i, s)
			}
			if _, ok := e["ts"].(float64); !ok {
				t.Errorf("instant %d has no ts", i)
			}
		case "C":
			counters++
			args, _ := e["args"].(map[string]any)
			if len(args) == 0 {
				t.Errorf("counter %d has no args (Perfetto needs a value series)", i)
			}
		case "X":
			spans++
			dur, _ := e["dur"].(float64)
			if dur <= 0 {
				t.Errorf("span %d has dur %v, want > 0", i, e["dur"])
			}
		}
	}
	if counters == 0 {
		t.Error("gauges exported no counter events")
	}
	if instants == 0 {
		t.Error("no instant events")
	}
	if spans == 0 {
		t.Error("no message phase spans")
	}
	for th := range usedThreads {
		if !namedThreads[th] {
			t.Errorf("thread pid=%d tid=%d carries events but has no thread_name metadata", th[0], th[1])
		}
	}
}

// TestPerfettoDeterministic pins byte-level determinism of the export.
func TestPerfettoDeterministic(t *testing.T) {
	tr := lifecycleTrace()
	var a, b bytes.Buffer
	if err := ExportPerfetto(&a, tr, Summarize(tr)); err != nil {
		t.Fatal(err)
	}
	if err := ExportPerfetto(&b, tr, Summarize(tr)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same trace exported to different bytes")
	}
}

func TestCSVHistogramExport(t *testing.T) {
	tr := lifecycleTrace()
	var buf bytes.Buffer
	if err := ExportCSV(&buf, Summarize(tr), 4); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("export is not valid CSV: %v", err)
	}
	if len(rows) < 2 {
		t.Fatal("CSV has no data rows")
	}
	header := "phase,count,mean,p50,p95,max,bucket_lo,bucket_hi,bucket_count"
	if got := join(rows[0]); got != header {
		t.Errorf("header = %q, want %q", got, header)
	}
	// Bucket counts per phase must sum to the phase's sample count.
	sums := map[string]int{}
	counts := map[string]int{}
	for _, r := range rows[1:] {
		n, err := strconv.Atoi(r[8])
		if err != nil {
			t.Fatalf("bad bucket count %q", r[8])
		}
		sums[r[0]] += n
		counts[r[0]], _ = strconv.Atoi(r[1])
	}
	//metrovet:ordered independent assertions per phase
	for phase, sum := range sums {
		if sum != counts[phase] {
			t.Errorf("phase %s: bucket counts sum to %d, want %d", phase, sum, counts[phase])
		}
	}
}

func join(cells []string) string {
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += ","
		}
		out += c
	}
	return out
}
