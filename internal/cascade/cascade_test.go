package cascade

import (
	"math/rand"
	"testing"

	"metro/internal/clock"
	"metro/internal/core"
	"metro/internal/link"
	"metro/internal/prng"
	"metro/internal/word"
)

func groupHarness(t *testing.T, c int) (*clock.Engine, *Group, [][]*link.End, [][]*link.End) {
	t.Helper()
	cfg := core.Config{Inputs: 4, Outputs: 4, Width: 4, MaxDilation: 2,
		HeaderWords: 0, DataPipe: 1, MaxVTD: 4, RandomInputs: 2, ScanPaths: 1}
	set := core.DefaultSettings(cfg)
	set.Dilation = 1
	g := NewGroup("g", cfg, set, c, prng.NewShared(77))
	eng := clock.New()
	// src[k][fp], dst[k][bp]: per-member link ends.
	src := make([][]*link.End, c)
	dst := make([][]*link.End, c)
	for k := 0; k < c; k++ {
		for fp := 0; fp < cfg.Inputs; fp++ {
			l := link.New("f", 1)
			g.Member(k).AttachForward(fp, l.B())
			src[k] = append(src[k], l.A())
			eng.Add(l)
		}
		for bp := 0; bp < cfg.Outputs; bp++ {
			l := link.New("b", 1)
			g.Member(k).AttachBackward(bp, l.A())
			dst[k] = append(dst[k], l.B())
			eng.Add(l)
		}
	}
	eng.Add(g)
	return eng, g, src, dst
}

func TestIdenticalAllocationUnderSharedRandomness(t *testing.T) {
	eng, g, src, _ := groupHarness(t, 2)
	rng := rand.New(rand.NewSource(5))
	for cycle := 0; cycle < 500; cycle++ {
		for fp := 0; fp < 4; fp++ {
			var w word.Word
			switch rng.Intn(4) {
			case 0:
				w = word.MakeRoute(uint32(rng.Intn(4)), 2)
			case 1, 2:
				w = word.Word{Kind: word.DataIdle}
			case 3:
				w = word.Word{Kind: word.Drop}
			}
			// Control words replicate to every member.
			for k := 0; k < g.Width(); k++ {
				src[k][fp].Send(w)
			}
		}
		eng.Step()
		if g.Member(0).BackwardInUse() != g.Member(1).BackwardInUse() {
			t.Fatalf("cycle %d: members disagree: %#x vs %#x",
				cycle, g.Member(0).BackwardInUse(), g.Member(1).BackwardInUse())
		}
	}
	if g.Kills() != 0 {
		t.Fatalf("healthy cascade killed %d connections", g.Kills())
	}
}

func TestWideDataTransfer(t *testing.T) {
	// A 2-cascade of 4-bit routers carries 8-bit logical words.
	eng, g, src, dst := groupHarness(t, 2)
	logical := []word.Word{
		word.MakeRoute(2, 2),
		{Kind: word.Data, Payload: 0xA7},
		{Kind: word.Data, Payload: 0x31},
		{Kind: word.DataIdle},
		{Kind: word.Drop},
	}
	var got []word.Word
	for i := 0; i < 12; i++ {
		if i < len(logical) {
			parts := SplitWord(logical[i], 2, 4)
			for k := 0; k < 2; k++ {
				src[k][0].Send(parts[k])
			}
		}
		members := []word.Word{dst[0][2].Recv(), dst[1][2].Recv()}
		m := MergeWords(members, 4)
		if m.Kind == word.Data {
			got = append(got, m)
		}
		eng.Step()
	}
	if len(got) != 2 || got[0].Payload != 0xA7 || got[1].Payload != 0x31 {
		t.Fatalf("wide data corrupted: %v", got)
	}
	if g.Kills() != 0 {
		t.Fatalf("unexpected kills: %d", g.Kills())
	}
}

func TestCorruptedHeaderContained(t *testing.T) {
	// Member 1 sees a corrupted route word (different direction): the
	// members allocate different backward ports and the wired-AND check
	// must shut the connection down on both, asserting BCB to the source.
	eng, g, src, _ := groupHarness(t, 2)
	sawBCB := false
	for i := 0; i < 10; i++ {
		// The source streams contiguously: route word then idle fill.
		if i == 0 {
			src[0][0].Send(word.MakeRoute(1, 2)) // direction 1
			src[1][0].Send(word.MakeRoute(2, 2)) // corrupted: direction 2
		} else {
			src[0][0].Send(word.Word{Kind: word.DataIdle})
			src[1][0].Send(word.Word{Kind: word.DataIdle})
		}
		for k := 0; k < 2; k++ {
			if src[k][0].RecvBCB() {
				sawBCB = true
			}
		}
		eng.Step()
	}
	if g.Kills() == 0 {
		t.Fatal("consistency check did not fire")
	}
	for k := 0; k < 2; k++ {
		for bp := 0; bp < 4; bp++ {
			if g.Member(k).OwnerOf(bp) >= 0 {
				t.Fatalf("member %d still holds bp %d after containment", k, bp)
			}
		}
	}
	if !sawBCB {
		t.Fatal("no BCB after consistency kill")
	}
}

func TestPartialAllocationContained(t *testing.T) {
	// Member 1's route word is so corrupted it is unusable (too few
	// bits): member 0 allocates, member 1 does not. The wired-AND sees
	// the in-use mismatch and kills the half-open connection.
	eng, g, src, _ := groupHarness(t, 2)
	src[0][0].Send(word.MakeRoute(1, 2))
	src[1][0].Send(word.MakeRoute(1, 1)) // malformed: 1 bit instead of 2
	eng.Step()
	eng.Step()
	if g.Kills() == 0 {
		t.Fatal("half-open connection not contained")
	}
	if g.Member(0).BackwardInUse() != 0 {
		t.Fatal("member 0 still holds the half-open connection")
	}
}

func TestSplitMergeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		c, w int
	}{{2, 4}, {4, 4}, {2, 8}} {
		logical := word.Word{Kind: word.Data, Payload: 0xDEAD & word.Mask(tc.c*tc.w)}
		parts := SplitWord(logical, tc.c, tc.w)
		if len(parts) != tc.c {
			t.Fatalf("c=%d: %d parts", tc.c, len(parts))
		}
		back := MergeWords(parts, tc.w)
		if back != logical {
			t.Fatalf("c=%d w=%d: %v -> %v", tc.c, tc.w, logical, back)
		}
	}
}

func TestSplitReplicatesControl(t *testing.T) {
	turn := word.Word{Kind: word.Turn}
	for _, p := range SplitWord(turn, 3, 4) {
		if p.Kind != word.Turn {
			t.Fatalf("control word not replicated: %v", p)
		}
	}
	route := word.MakeRoute(3, 2)
	for _, p := range SplitWord(route, 2, 4) {
		if p != route {
			t.Fatalf("route word must replicate identically: %v", p)
		}
	}
}

func TestMergeDetectsLockstepViolation(t *testing.T) {
	members := []word.Word{{Kind: word.Data, Payload: 1}, {Kind: word.DataIdle}}
	if m := MergeWords(members, 4); !m.IsEmpty() {
		t.Fatalf("kind mismatch should merge to Empty, got %v", m)
	}
}

func TestTurnThroughCascade(t *testing.T) {
	// Reverse a cascaded connection: both members inject status+checksum
	// in lockstep; the merged reply stream stays well-formed.
	eng, g, src, dst := groupHarness(t, 2)
	_ = g
	logical := []word.Word{
		word.MakeRoute(0, 2),
		{Kind: word.Data, Payload: 0x42},
		{Kind: word.Turn},
	}
	var upstream []word.Word
	for i := 0; i < 20; i++ {
		var parts []word.Word
		if i < len(logical) {
			parts = SplitWord(logical[i], 2, 4)
		} else {
			parts = SplitWord(word.Word{Kind: word.DataIdle}, 2, 4)
		}
		for k := 0; k < 2; k++ {
			src[k][0].Send(parts[k])
			// Hold the destination side open.
			dst[k][0].Send(word.Word{Kind: word.DataIdle})
		}
		m := MergeWords([]word.Word{src[0][0].Recv(), src[1][0].Recv()}, 4)
		if !m.IsEmpty() && m.Kind != word.DataIdle {
			upstream = append(upstream, m)
		}
		eng.Step()
	}
	if len(upstream) < 3 {
		t.Fatalf("reply stream too short: %v", upstream)
	}
	if upstream[0].Kind != word.Status {
		t.Fatalf("first merged reply word = %v, want STATUS", upstream[0])
	}
	if upstream[1].Kind != word.ChecksumWord || upstream[2].Kind != word.ChecksumWord {
		t.Fatalf("merged reply = %v, want checksum words", upstream)
	}
}
