package netsim

import (
	"math/rand"
	"testing"

	"metro/internal/nic"
	"metro/internal/topo"
)

// TestInvariantsUnderHeavyLoad runs a saturating workload and audits every
// router's internal consistency every cycle.
func TestInvariantsUnderHeavyLoad(t *testing.T) {
	n, err := Build(Params{
		Spec: topo.Figure1(), Width: 8, DataPipe: 2, LinkDelay: 2,
		FastReclaim: true, Seed: 41, RetryLimit: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for cycle := 0; cycle < 4000; cycle++ {
		if cycle%3 == 0 {
			src := rng.Intn(16)
			dest := rng.Intn(16)
			if dest == src {
				dest = (dest + 1) % 16
			}
			n.Send(src, dest, []byte{byte(cycle), byte(src)})
		}
		n.Engine.Step()
		for s := range n.Routers {
			for _, r := range n.Routers[s] {
				if err := r.CheckInvariants(); err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
			}
		}
	}
}

// TestInvariantsEveryCycleCongestedFigure3 saturates the 64-endpoint
// multibutterfly of Figure 3 — two fresh messages injected every cycle,
// far past the network's sustainable load — and audits every router's
// invariants after every single cycle. Congestion is where the teardown
// and reclamation paths (blocked replies, drains, closers) actually run,
// so this is the audit that exercises the clauses the light-load tests
// never reach.
func TestInvariantsEveryCycleCongestedFigure3(t *testing.T) {
	cycles := 3000
	if testing.Short() {
		cycles = 1200
	}
	completed := 0
	n, err := Build(Params{
		Spec: topo.Figure3(), Width: 8, DataPipe: 2, LinkDelay: 1,
		FastReclaim: false, Seed: 71, RetryLimit: 600, ListenTimeout: 200,
		OnResult: func(r nic.Result) { completed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	eps := n.Params.Spec.Endpoints
	for cycle := 0; cycle < cycles; cycle++ {
		for k := 0; k < 2; k++ {
			src := rng.Intn(eps)
			dest := rng.Intn(eps)
			if dest == src {
				dest = (dest + 1) % eps
			}
			n.Send(src, dest, []byte{byte(cycle), byte(src), byte(dest)})
		}
		n.Engine.Step()
		for s := range n.Routers {
			for _, r := range n.Routers[s] {
				if err := r.CheckInvariants(); err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
			}
		}
	}
	if completed == 0 {
		t.Fatal("congested run completed no messages; the load is miscalibrated")
	}
}

// TestInvariantsUnderFaultsAndDetailedMode repeats the audit with dynamic
// faults firing and detailed blocked replies (the more complex teardown
// paths).
func TestInvariantsUnderFaultsAndDetailedMode(t *testing.T) {
	n, err := Build(Params{
		Spec: topo.Figure1(), Width: 8, DataPipe: 1, LinkDelay: 1,
		FastReclaim: false, Seed: 43, RetryLimit: 1000, ListenTimeout: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for cycle := 0; cycle < 4000; cycle++ {
		if cycle%4 == 0 {
			src := rng.Intn(16)
			n.Send(src, (src+1+rng.Intn(15))%16, []byte{1, 2, 3})
		}
		if cycle == 1000 {
			n.OutLink(0, 2, 1).Kill()
		}
		if cycle == 2000 {
			n.KillRouter(1, 4)
		}
		n.Engine.Step()
		for s := range n.Routers {
			for _, r := range n.Routers[s] {
				if err := r.CheckInvariants(); err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
			}
		}
	}
}
