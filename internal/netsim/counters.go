package netsim

import (
	"fmt"
	"strings"
	"sync"

	"metro/internal/core"
)

// Counters is a core.Tracer that aggregates router events per network
// stage: where connections are won, where they block, how often paths
// reverse. It quantifies the congestion structure of a multistage network
// — classically, contention concentrates in the early dilated stages where
// paths have not yet separated.
//
// Aggregation keys on the structured core.RouterID the tracer API
// carries (netsim stamps every router, including each cascade lane,
// with its stage/index/lane at Build), so there is no name parsing:
// routers built by hand report under stage -1 until SetID places them,
// and cascade lanes (the old ".m<lane>" name suffix) fold into their
// logical router's stage exactly.
//
// Counters is safe for concurrent use, although the simulation engine is
// single-threaded; the lock simply makes the tracer safe to share between
// a running simulation and an observer goroutine in interactive tools.
type Counters struct {
	mu        sync.Mutex
	allocated map[int]uint64
	blocked   map[int]uint64
	released  map[int]uint64
	reversed  map[int]uint64
}

// NewCounters returns an empty aggregate tracer.
func NewCounters() *Counters {
	return &Counters{
		allocated: map[int]uint64{},
		blocked:   map[int]uint64{},
		released:  map[int]uint64{},
		reversed:  map[int]uint64{},
	}
}

// Allocated implements core.Tracer.
func (c *Counters) Allocated(cycle uint64, id core.RouterID, fp, bp int) {
	c.bump(c.allocated, id)
}

// Blocked implements core.Tracer.
func (c *Counters) Blocked(cycle uint64, id core.RouterID, fp, dir int, fast bool) {
	c.bump(c.blocked, id)
}

// Released implements core.Tracer.
func (c *Counters) Released(cycle uint64, id core.RouterID, fp, bp int) {
	c.bump(c.released, id)
}

// Reversed implements core.Tracer.
func (c *Counters) Reversed(cycle uint64, id core.RouterID, fp int, towardSource bool) {
	c.bump(c.reversed, id)
}

func (c *Counters) bump(m map[int]uint64, id core.RouterID) {
	c.mu.Lock()
	m[id.Stage]++
	c.mu.Unlock()
}

// StageStats reports the aggregate for one stage.
type StageStats struct {
	Stage                                  int
	Allocated, Blocked, Released, Reversed uint64
}

// BlockRate returns blocked / (blocked + allocated) for the stage.
func (s StageStats) BlockRate() float64 {
	total := s.Blocked + s.Allocated
	if total == 0 {
		return 0
	}
	return float64(s.Blocked) / float64(total)
}

// PerStage returns the aggregates for stages [0, n).
func (c *Counters) PerStage(n int) []StageStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]StageStats, n)
	for s := 0; s < n; s++ {
		out[s] = StageStats{
			Stage:     s,
			Allocated: c.allocated[s],
			Blocked:   c.blocked[s],
			Released:  c.released[s],
			Reversed:  c.reversed[s],
		}
	}
	return out
}

// String renders a compact summary.
func (c *Counters) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	maxStage := -1
	//metrovet:ordered max over keys is order-independent
	for s := range c.allocated {
		if s > maxStage {
			maxStage = s
		}
	}
	//metrovet:ordered max over keys is order-independent
	for s := range c.blocked {
		if s > maxStage {
			maxStage = s
		}
	}
	var b strings.Builder
	for s := 0; s <= maxStage; s++ {
		fmt.Fprintf(&b, "stage %d: alloc=%d blocked=%d released=%d reversed=%d\n",
			s, c.allocated[s], c.blocked[s], c.released[s], c.reversed[s])
	}
	return b.String()
}
