package analysis

// Expression evaluation, branch refinement, and the MV010/MV011/MV012
// check sites for the value-range analysis (see valuerange.go).

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
)

// canonPath renders an expression as a canonical fact key: a chain of
// plain identifiers and field selections ("i", "p.injHead", "r.fwd").
// Anything else — calls, indexes, dereferences — returns "".
func canonPath(expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := canonPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// constVal reads the type-checker's constant value for an expression,
// when it has one (named constants, iota, folded literals).
func (ev *vrEval) constVal(expr ast.Expr) (AbsVal, bool) {
	for _, info := range []*types.Info{ev.pkg().Info, ev.pkg().XInfo} {
		if info == nil {
			continue
		}
		tv, ok := info.Types[expr]
		if !ok || tv.Value == nil {
			continue
		}
		if tv.Value.Kind() != constant.Int {
			return AbsVal{}, false
		}
		if v, exact := constant.Int64Val(tv.Value); exact {
			return absConst(v), true
		}
		if v, exact := constant.Uint64Val(tv.Value); exact {
			return absConstU(v), true
		}
		return AbsVal{}, false
	}
	return AbsVal{}, false
}

// topOf is the abstraction of an untracked expression: the full range of
// its static type.
func (ev *vrEval) topOf(expr ast.Expr) AbsVal {
	if it, ok := typeShape(ev.pkg().TypeOf(expr)); ok {
		return rangeOf(it)
	}
	return absAny()
}

// eval abstracts one expression's value in env, recording rule checks
// along the way (when the evaluator is in recording mode and not muted).
// Every syntactic subexpression is visited exactly once per execution.
func (ev *vrEval) eval(expr ast.Expr, env *vrEnv) AbsVal {
	switch e := expr.(type) {
	case *ast.ParenExpr:
		return ev.eval(e.X, env)
	case *ast.BasicLit:
		if v, ok := ev.constVal(e); ok {
			return v
		}
		return ev.topOf(e)
	case *ast.Ident:
		if v, ok := ev.constVal(e); ok {
			return v
		}
		return ev.pathValue(e, env)
	case *ast.SelectorExpr:
		if v, ok := ev.constVal(e); ok {
			return v
		}
		ev.eval(e.X, env)
		return ev.pathValue(e, env)
	case *ast.BinaryExpr:
		return ev.evalBinary(e, env)
	case *ast.UnaryExpr:
		return ev.evalUnary(e, env)
	case *ast.CallExpr:
		return ev.evalCall(e, env)
	case *ast.IndexExpr:
		return ev.evalIndex(e, env)
	case *ast.SliceExpr:
		ev.eval(e.X, env)
		if e.Low != nil {
			ev.eval(e.Low, env)
		}
		if e.High != nil {
			ev.eval(e.High, env)
		}
		if e.Max != nil {
			ev.eval(e.Max, env)
		}
		return ev.topOf(e)
	case *ast.StarExpr:
		ev.eval(e.X, env)
		return ev.topOf(e)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				ev.eval(kv.Value, env)
			} else {
				ev.eval(elt, env)
			}
		}
		return ev.topOf(e)
	case *ast.FuncLit:
		// A closure's body runs with no caller facts; walk it for checks
		// with an empty environment.
		ev.execBlock(e.Body, newEnv())
		return absAny()
	case *ast.TypeAssertExpr:
		ev.eval(e.X, env)
		return ev.topOf(e)
	case *ast.KeyValueExpr:
		ev.eval(e.Value, env)
		return absAny()
	case *ast.IndexListExpr:
		ev.eval(e.X, env)
		return ev.topOf(e)
	}
	if expr == nil {
		return absAny()
	}
	if v, ok := ev.constVal(expr); ok {
		return v
	}
	return ev.topOf(expr)
}

// pathValue looks up a canonical path's abstraction.
func (ev *vrEval) pathValue(expr ast.Expr, env *vrEnv) AbsVal {
	path := canonPath(expr)
	if path == "" {
		return ev.topOf(expr)
	}
	if target, ok := env.symLen[path]; ok {
		// The variable holds exactly len(target): use the length bound.
		if lv, ok := env.lens[target]; ok {
			return lv
		}
		return AbsVal{Lo: 0, Hi: math.MaxInt64}
	}
	if v, ok := env.vals[path]; ok {
		return v
	}
	return ev.topOf(expr)
}

// evalBinary abstracts a binary expression, recording the shift-width
// check on << and >>.
func (ev *vrEval) evalBinary(e *ast.BinaryExpr, env *vrEnv) AbsVal {
	if v, ok := ev.constVal(e); ok {
		// Still walk for check sites buried in a non-constant half (a
		// constant expression has none, but cheap to be consistent).
		return v
	}
	switch e.Op {
	case token.LAND, token.LOR:
		ev.eval(e.X, env)
		// Short-circuit: the right side runs under the left's refinement.
		rEnv := env
		if t, f := ev.refine(e.X, env); e.Op == token.LAND {
			if t != nil {
				rEnv = t
			}
		} else if f != nil {
			rEnv = f
		}
		ev.eval(e.Y, rEnv)
		return absRange(0, 1)
	}
	x := ev.eval(e.X, env)
	y := ev.eval(e.Y, env)
	switch e.Op {
	case token.SHL, token.SHR:
		ev.checkShift(e.OpPos, e.X, e.Y, y, env)
	}
	v := applyBinary(e.Op, x, y)
	if it, ok := typeShape(ev.pkg().TypeOf(e)); ok {
		return v.clamp(it)
	}
	return v
}

// applyBinary routes an operator to its transfer function.
func applyBinary(op token.Token, x, y AbsVal) AbsVal {
	switch op {
	case token.ADD:
		return absAdd(x, y)
	case token.SUB:
		return absSub(x, y)
	case token.MUL:
		return absMul(x, y)
	case token.QUO:
		return absDiv(x, y)
	case token.REM:
		return absMod(x, y)
	case token.SHL:
		return absShl(x, y)
	case token.SHR:
		return absShr(x, y)
	case token.AND:
		return absAnd(x, y)
	case token.OR:
		return absOr(x, y)
	case token.XOR:
		return absXor(x, y)
	case token.AND_NOT:
		return absAndNot(x, y)
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return absRange(0, 1)
	}
	return absAny()
}

// assignOp maps a compound assignment token to its binary operator.
func assignOp(tok token.Token) (token.Token, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD, true
	case token.SUB_ASSIGN:
		return token.SUB, true
	case token.MUL_ASSIGN:
		return token.MUL, true
	case token.QUO_ASSIGN:
		return token.QUO, true
	case token.REM_ASSIGN:
		return token.REM, true
	case token.SHL_ASSIGN:
		return token.SHL, true
	case token.SHR_ASSIGN:
		return token.SHR, true
	case token.AND_ASSIGN:
		return token.AND, true
	case token.OR_ASSIGN:
		return token.OR, true
	case token.XOR_ASSIGN:
		return token.XOR, true
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT, true
	}
	return token.ILLEGAL, false
}

// evalUnary abstracts a unary expression.
func (ev *vrEval) evalUnary(e *ast.UnaryExpr, env *vrEnv) AbsVal {
	if v, ok := ev.constVal(e); ok {
		return v
	}
	x := ev.eval(e.X, env)
	var v AbsVal
	switch e.Op {
	case token.SUB:
		v = absNeg(x)
	case token.XOR:
		v = absNot(x)
	case token.ADD:
		v = x
	default:
		return ev.topOf(e)
	}
	if it, ok := typeShape(ev.pkg().TypeOf(e)); ok {
		return v.clamp(it)
	}
	return v
}

// calleeBuiltin returns the builtin name a call invokes ("" otherwise).
func calleeBuiltin(p *Package, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || !isBuiltin(p, id) {
		return ""
	}
	return id.Name
}

// evalCall abstracts a call: builtins, conversions (the MV010 site),
// width-contract call sites (MV012), and summarized static calls.
func (ev *vrEval) evalCall(e *ast.CallExpr, env *vrEnv) AbsVal {
	if v, ok := ev.constVal(e); ok {
		// Constant conversions are checked by the type checker itself.
		return v
	}
	// Builtins.
	switch calleeBuiltin(ev.pkg(), e) {
	case "len":
		if len(e.Args) == 1 {
			arg := e.Args[0]
			ev.eval(arg, env)
			if n, ok := arrayLenOf(ev.pkg().TypeOf(arg)); ok {
				return absConst(n)
			}
			if path := canonPath(arg); path != "" {
				if lv, ok := env.lens[path]; ok {
					return lv
				}
			}
			return AbsVal{Lo: 0, Hi: math.MaxInt64}
		}
	case "cap":
		if len(e.Args) == 1 {
			arg := e.Args[0]
			ev.eval(arg, env)
			if n, ok := arrayLenOf(ev.pkg().TypeOf(arg)); ok {
				return absConst(n)
			}
			// cap >= len.
			if path := canonPath(arg); path != "" {
				if lv, ok := env.lens[path]; ok && !lv.Bot && !lv.Wide {
					return AbsVal{Lo: lv.Lo, Hi: math.MaxInt64}
				}
			}
			return AbsVal{Lo: 0, Hi: math.MaxInt64}
		}
	case "min":
		if len(e.Args) >= 2 {
			v := ev.eval(e.Args[0], env)
			for _, a := range e.Args[1:] {
				v = absMin(v, ev.eval(a, env))
			}
			return v
		}
	case "max":
		if len(e.Args) >= 2 {
			v := ev.eval(e.Args[0], env)
			for _, a := range e.Args[1:] {
				v = absMax(v, ev.eval(a, env))
			}
			return v
		}
	case "":
		// Not a builtin; fall through.
	default:
		for _, a := range e.Args {
			ev.eval(a, env)
		}
		return ev.topOf(e)
	}

	// Conversion? A call whose Fun denotes a type.
	if to, isConv := ev.conversionTarget(e); isConv && len(e.Args) == 1 {
		src := ev.eval(e.Args[0], env)
		from, okFrom := typeShape(ev.pkg().TypeOf(e.Args[0]))
		if okFrom {
			ev.checkConversion(e, src, from, to)
			return absConvert(src, from, to)
		}
		return rangeOf(to)
	} else if isConv {
		for _, a := range e.Args {
			ev.eval(a, env)
		}
		return ev.topOf(e)
	}

	// Plain call: evaluate the function expression (a method's receiver
	// may contain checks) and the arguments.
	ev.evalCallFun(e.Fun, env)
	args := make([]AbsVal, len(e.Args))
	for i, a := range e.Args {
		args[i] = ev.eval(a, env)
	}

	// Width-contract call sites.
	ev.checkWidthArg(e, args, env)

	// Feed argument facts into summarized callees over the call graph
	// (static and CHA-resolved interface edges both constrain the same
	// declared parameters).
	ev.feedCallees(e, args)

	// The result, from the callee's summary when there is exactly one.
	if callee := ev.staticCallee(e); callee != nil {
		if v, ok := ev.calleeResult(callee, 0); ok {
			if it, okt := typeShape(ev.pkg().TypeOf(e)); okt {
				return v.Meet(rangeOf(it))
			}
		}
	}
	return ev.topOf(e)
}

// evalCallFun walks the callee expression of a call for nested checks.
func (ev *vrEval) evalCallFun(fun ast.Expr, env *vrEnv) {
	switch f := ast.Unparen(fun).(type) {
	case *ast.SelectorExpr:
		ev.eval(f.X, env)
	case *ast.Ident:
		// Nothing nested.
	default:
		ev.eval(f, env)
	}
}

// conversionTarget reports whether a call is a conversion to an integer
// shape.
func (ev *vrEval) conversionTarget(call *ast.CallExpr) (intType, bool) {
	fun := ast.Unparen(call.Fun)
	var tt types.Type
	switch f := fun.(type) {
	case *ast.Ident:
		if tn, ok := ev.pkg().ObjectOf(f).(*types.TypeName); ok {
			tt = tn.Type()
		}
	case *ast.SelectorExpr:
		if tn, ok := ev.pkg().ObjectOf(f.Sel).(*types.TypeName); ok {
			tt = tn.Type()
		}
	case *ast.ArrayType, *ast.StarExpr, *ast.MapType, *ast.ChanType, *ast.FuncType, *ast.InterfaceType, *ast.StructType:
		return intType{}, true // a conversion, but not to an integer
	}
	if tt == nil {
		return intType{}, false
	}
	it, ok := typeShape(tt)
	if !ok {
		return intType{}, true // conversion to string/float/etc.
	}
	return it, true
}

// feedCallees joins call-site argument values into callee parameter
// summaries along the resolved call-graph edges at this position.
func (ev *vrEval) feedCallees(call *ast.CallExpr, args []AbsVal) {
	var callees []*FuncNode
	if c := ev.staticCallee(call); c != nil {
		callees = append(callees, c)
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if recv := ev.pkg().TypeOf(sel.X); recv != nil && types.IsInterface(recv) {
			for _, edge := range ev.prog.CallGraph().Edges[ev.node] {
				if edge.Kind == EdgeIface && edge.Pos == sel.Pos() {
					callees = append(callees, edge.Callee)
				}
			}
		}
	}
	for _, callee := range callees {
		if ev.summaries[callee] == nil {
			continue
		}
		sig, ok := typeOfFuncNode(callee)
		if !ok || sig.Variadic() || sig.Params().Len() != len(args) || call.Ellipsis.IsValid() {
			ev.markParamsTop(callee)
			continue
		}
		for i, v := range args {
			if it, okt := typeShape(sig.Params().At(i).Type()); okt {
				ev.joinParamFact(callee, i, v.Meet(rangeOf(it)))
			} else {
				ev.joinParamFact(callee, i, absAny())
			}
		}
	}
}

// typeOfFuncNode resolves a declaration's signature.
func typeOfFuncNode(n *FuncNode) (*types.Signature, bool) {
	if n.Pkg == nil {
		return nil, false
	}
	t := n.Pkg.TypeOf(n.Decl.Name)
	sig, ok := t.(*types.Signature)
	return sig, ok
}

// evalIndex abstracts s[i], recording the MV011 bounds check.
func (ev *vrEval) evalIndex(e *ast.IndexExpr, env *vrEnv) AbsVal {
	ev.eval(e.X, env)
	idx := ev.eval(e.Index, env)
	ev.checkIndex(e, idx, env)
	if v, ok := ev.constVal(e); ok {
		return v
	}
	return ev.topOf(e)
}

// --- check sites --------------------------------------------------------

// emit records one finding (respecting mute and function-level valves).
func (ev *vrEval) emit(rule, kind string, pos token.Pos, msg string) {
	if ev.record == nil || ev.mute > 0 {
		return
	}
	if docDirective(ev.node.Decl.Doc, kind) {
		return
	}
	ev.record(rule, kind, pos, msg)
}

// checkConversion is the MV010 site: a conversion between integer
// shapes where the source shape does not statically fit the target must
// have its value proven to fit.
func (ev *vrEval) checkConversion(call *ast.CallExpr, src AbsVal, from, to intType) {
	if shapeFits(from, to) {
		return // widening or same-shape: never lossy
	}
	if src.fits(to) {
		return // proven lossless at this site
	}
	ev.emit("truncating-conversion", "truncate", call.Pos(),
		fmt.Sprintf("conversion %s -> %s may truncate (operand range %s) in per-cycle path (reachable from %s); prove the range or annotate //metrovet:truncate <reason>",
			shapeName(from), shapeName(to), src, ev.root))
}

// shapeFits reports whether every value of shape a is representable in
// shape b (so the conversion is statically lossless).
func shapeFits(a, b intType) bool {
	if a.signed == b.signed {
		return a.bits <= b.bits
	}
	if !a.signed && b.signed {
		return a.bits < b.bits // uintN fits intM iff M > N
	}
	return false // signed into unsigned can drop negatives
}

// shapeName renders a shape for messages. The analysis models int/uint
// as their 64-bit widths (the repository's supported targets).
func shapeName(it intType) string {
	if it.signed {
		return fmt.Sprintf("int%d", it.bits)
	}
	return fmt.Sprintf("uint%d", it.bits)
}

// checkIndex is the MV011 site: prove 0 <= idx < len for slice and
// array indexing (maps, strings and generic instantiations are out of
// scope).
func (ev *vrEval) checkIndex(e *ast.IndexExpr, idx AbsVal, env *vrEnv) {
	if ev.record == nil || ev.mute > 0 {
		return // proofs are only attempted when they can be reported
	}
	xt := ev.pkg().TypeOf(e.X)
	if xt == nil {
		return
	}
	var kind string
	var arrLen int64 = -1
	switch u := xt.Underlying().(type) {
	case *types.Slice:
		kind = "slice"
	case *types.Array:
		kind = "array"
		arrLen = u.Len()
	case *types.Pointer:
		if arr, ok := u.Elem().Underlying().(*types.Array); ok {
			kind = "array"
			arrLen = arr.Len()
		} else {
			return
		}
	default:
		return
	}

	// Both sides must be proven: the interval supplies the lower bound
	// (>= 0), the interval against a known length or a symbolic
	// i < len(s) fact supplies the upper.
	lower := idx.NonNegative()
	upper := false
	if arrLen >= 0 && idx.In(math.MinInt64, arrLen-1) {
		upper = true
	}
	if !upper && kind == "slice" {
		if path := canonPath(e.X); path != "" && !idx.Bot && !idx.Wide {
			if lv, ok := env.lens[path]; ok && !lv.Bot && !lv.Wide && idx.Hi < lv.Lo {
				upper = true
			}
		}
		if !upper {
			upper = ev.provedLess(e, idx, env)
		}
	}
	if idx.Bot || (lower && upper) {
		return
	}

	lenDesc := "unknown"
	if arrLen >= 0 {
		lenDesc = fmt.Sprintf("%d", arrLen)
	} else if path := canonPath(e.X); path != "" {
		if lv, ok := env.lens[path]; ok {
			lenDesc = lv.String()
		}
	}
	target := "index expression"
	if path := canonPath(e.X); path != "" {
		target = path
	}
	ev.emit("provable-bounds", "bounds", e.Lbrack,
		fmt.Sprintf("index into %s %s not proven in bounds (index %s, len %s) in per-cycle path (reachable from %s); guard with a len check or annotate //metrovet:bounds <reason>",
			kind, target, idx, lenDesc, ev.root))
}

// provedLess checks the symbolic i < len(s) routes: a recorded lt fact
// on the index path, or the ring-buffer idiom i % n with n == len(s).
func (ev *vrEval) provedLess(e *ast.IndexExpr, idx AbsVal, env *vrEnv) bool {
	target := canonPath(e.X)
	if target == "" {
		return false
	}
	// An unsigned-narrowing conversion around the index cannot increase
	// a nonnegative value, so the facts below transfer through it.
	// alias: a slice built as make(T, len(src)) has len == len(src), so
	// an index proven below len(src) is in bounds for the alias too.
	alias := env.symLen[target]
	index := ev.stripIntConv(e.Index, env, false)
	if path := canonPath(index); path != "" {
		if env.lt[path][target] || (alias != "" && env.lt[path][alias]) {
			return true
		}
	}
	// i % n where n == len(s), directly or behind a value-preserving
	// conversion (cycle % uint64(len(ring))), or via a symLen variable.
	if bin, ok := ast.Unparen(index).(*ast.BinaryExpr); ok && bin.Op == token.REM {
		a := ev.evalQuiet(bin.X, env)
		b := ev.evalQuiet(bin.Y, env)
		if a.NonNegative() && !b.Wide && b.Lo >= 1 {
			if t := ev.lenTarget(bin.Y, env); t == target || (alias != "" && t == alias) {
				return true
			}
		}
	}
	// n - k where n == len(s) and k >= 1: the last-element idiom
	// (p[n-1] after p := make([]byte, n)).
	if bin, ok := ast.Unparen(index).(*ast.BinaryExpr); ok && bin.Op == token.SUB {
		if k, isConst := ev.evalQuiet(bin.Y, env).IsConst(); isConst && k >= 1 {
			if t := ev.lenTarget(bin.X, env); t != "" && (t == target || (alias != "" && t == alias)) {
				return true
			}
		}
	}
	return false
}

// evalQuiet evaluates without recording checks (re-examining a
// subexpression already walked by the caller).
func (ev *vrEval) evalQuiet(expr ast.Expr, env *vrEnv) AbsVal {
	ev.mute++
	v := ev.eval(expr, env)
	ev.mute--
	return v
}

// checkShift is the MV012 shift site: the amount must be provably below
// the shifted operand's bit width (shifting a uint32 by 32 zeroes it
// silently; Go only panics on negative amounts).
func (ev *vrEval) checkShift(pos token.Pos, x, k ast.Expr, amount AbsVal, env *vrEnv) {
	if ev.record == nil || ev.mute > 0 {
		return
	}
	it, ok := typeShape(ev.pkg().TypeOf(x))
	if !ok {
		return
	}
	if amount.In(0, int64(it.bits-1)) {
		return
	}
	ev.emit("width-contract", "width", pos,
		fmt.Sprintf("shift amount not proven within [0, %d] for a %d-bit operand (amount %s) in per-cycle path (reachable from %s); bound the amount or annotate //metrovet:width <reason>",
			it.bits-1, it.bits, amount, ev.root))
}

// checkWidthArg is the MV012 width-argument site: internal/word width
// parameters proven within [1, 32].
func (ev *vrEval) checkWidthArg(call *ast.CallExpr, args []AbsVal, env *vrEnv) {
	if ev.record == nil || ev.mute > 0 {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	var fnName string
	var obj types.Object
	if ok {
		obj = ev.pkg().ObjectOf(sel.Sel)
		fnName = sel.Sel.Name
	} else if id, okID := ast.Unparen(call.Fun).(*ast.Ident); okID {
		obj = ev.pkg().ObjectOf(id)
		fnName = id.Name
	}
	fn, okFn := obj.(*types.Func)
	if !okFn || fn.Pkg() == nil || !isWordPackage(fn.Pkg().Path()) {
		return
	}
	argPos, tracked := wordWidthArgs[fnName]
	if !tracked || argPos >= len(args) {
		return
	}
	w := args[argPos]
	if w.In(1, 32) {
		return
	}
	ev.emit("width-contract", "width", call.Args[argPos].Pos(),
		fmt.Sprintf("width argument to word.%s not proven within [1, 32] (value %s) in per-cycle path (reachable from %s); validate the width or annotate //metrovet:width <reason>",
			fnName, w, ev.root))
}

// --- branch refinement --------------------------------------------------

// refine splits env on a condition: the returned environments hold in
// the true and false branches respectively (nil marks a branch proven
// unreachable). Unhandled conditions return (env, clone) unchanged.
func (ev *vrEval) refine(cond ast.Expr, env *vrEnv) (*vrEnv, *vrEnv) {
	cond = ast.Unparen(cond)
	switch e := cond.(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			t, f := ev.refine(e.X, env)
			return f, t
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			// true branch: both refinements; false branch: no facts.
			t1, _ := ev.refine(e.X, env)
			if t1 == nil {
				return nil, env.clone()
			}
			t2, _ := ev.refine(e.Y, t1)
			return t2, env.clone()
		case token.LOR:
			// false branch: both negations; true branch: no facts.
			_, f1 := ev.refine(e.X, env)
			if f1 == nil {
				return env.clone(), nil
			}
			_, f2 := ev.refine(e.Y, f1)
			return env.clone(), f2
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			return ev.refineCompare(e, env)
		}
	}
	return env, env.clone()
}

// refineCompare refines a comparison on both sides.
func (ev *vrEval) refineCompare(e *ast.BinaryExpr, env *vrEnv) (*vrEnv, *vrEnv) {
	// Normalize to X op Y with op in {<, <=, ==, !=}.
	x, y, op := e.X, e.Y, e.Op
	switch op {
	case token.GTR:
		x, y, op = e.Y, e.X, token.LSS
	case token.GEQ:
		x, y, op = e.Y, e.X, token.LEQ
	}
	if _, ok := typeShape(ev.pkg().TypeOf(x)); !ok {
		return env, env.clone()
	}

	tEnv := env.clone()
	fEnv := env.clone()
	xv := ev.evalQuiet(x, env)
	yv := ev.evalQuiet(y, env)

	switch op {
	case token.LSS: // x < y  |  else: x >= y
		ev.applyUpper(tEnv, x, yv, true)
		ev.applyLower(tEnv, y, xv, true)
		ev.applyLtLen(tEnv, x, y)
		ev.applyLower(fEnv, x, yv, false)
		ev.applyUpper(fEnv, y, xv, false)
	case token.LEQ: // x <= y  |  else: x > y
		ev.applyUpper(tEnv, x, yv, false)
		ev.applyLower(tEnv, y, xv, false)
		ev.applyLower(fEnv, x, yv, true)
		ev.applyUpper(fEnv, y, xv, true)
		ev.applyLtLen(fEnv, y, x)
	case token.EQL: // x == y  |  else: x != y
		ev.applyEq(tEnv, x, yv)
		ev.applyEq(tEnv, y, xv)
		ev.applySymEq(tEnv, x, y)
		ev.applyNeq(fEnv, x, yv)
		ev.applyNeq(fEnv, y, xv)
	case token.NEQ:
		ev.applyNeq(tEnv, x, yv)
		ev.applyNeq(tEnv, y, xv)
		ev.applyEq(fEnv, x, yv)
		ev.applyEq(fEnv, y, xv)
		ev.applySymEq(fEnv, x, y)
	}
	if bottomed(tEnv) {
		tEnv = nil
	}
	if bottomed(fEnv) {
		fEnv = nil
	}
	return tEnv, fEnv
}

// bottomed reports whether refinement produced an impossible fact.
func bottomed(env *vrEnv) bool {
	if env == nil {
		return true
	}
	for _, v := range env.vals {
		if v.Bot {
			return true
		}
	}
	for _, v := range env.lens {
		if v.Bot {
			return true
		}
	}
	return false
}

// refineSlot resolves the environment slot a comparison on x constrains:
// the value of a canonical path, or the length of a slice when x is
// len(s) or a variable recorded as holding len(s). ok is false when x
// constrains nothing the environment tracks.
func (ev *vrEval) refineSlot(env *vrEnv, x ast.Expr) (get func() AbsVal, set func(AbsVal), ok bool) {
	if path := canonPath(x); path != "" {
		if t, isLen := env.symLen[path]; isLen {
			// Only integer paths denote a length value; a slice-typed
			// symLen entry is a length alias (len(path) == len(t)) and
			// comparisons on the slice itself constrain neither length.
			if _, isInt := typeShape(ev.pkg().TypeOf(x)); isInt {
				get, set = lenSlot(env, t)
				return get, set, true
			}
		}
		return func() AbsVal {
				if cur, have := env.vals[path]; have {
					return cur
				}
				return ev.topOf(x)
			}, func(v AbsVal) { env.vals[path] = v }, true
	}
	if call, isCall := ast.Unparen(x).(*ast.CallExpr); isCall &&
		calleeBuiltin(ev.pkg(), call) == "len" && len(call.Args) == 1 {
		if t := canonPath(call.Args[0]); t != "" {
			get, set = lenSlot(env, t)
			return get, set, true
		}
	}
	return nil, nil, false
}

// lenSlot is refineSlot's length half: lengths live in env.lens and are
// always within [0, MaxInt64].
func lenSlot(env *vrEnv, target string) (func() AbsVal, func(AbsVal)) {
	return func() AbsVal {
			if cur, have := env.lens[target]; have {
				return cur
			}
			return AbsVal{Lo: 0, Hi: math.MaxInt64}
		}, func(v AbsVal) {
			env.lens[target] = v.Meet(AbsVal{Lo: 0, Hi: math.MaxInt64})
		}
}

// applyUpper meets "x <= bound.Hi" (strict subtracts one) into env.
func (ev *vrEval) applyUpper(env *vrEnv, x ast.Expr, bound AbsVal, strict bool) {
	if bound.Bot || bound.Wide {
		return // a wide bound may exceed every int64; nothing to refine
	}
	get, set, ok := ev.refineSlot(env, x)
	if !ok {
		return
	}
	hi := bound.Hi
	if strict {
		if hi == math.MinInt64 {
			return
		}
		hi--
	}
	set(get().Meet(AbsVal{Lo: math.MinInt64, Hi: hi}))
}

// applyLower meets "x >= bound.Lo" (strict adds one) into env.
func (ev *vrEval) applyLower(env *vrEnv, x ast.Expr, bound AbsVal, strict bool) {
	if bound.Bot {
		return
	}
	get, set, ok := ev.refineSlot(env, x)
	if !ok {
		return
	}
	lo := bound.Lo
	if bound.Wide {
		lo = 0
	}
	if strict {
		if lo == math.MaxInt64 {
			return
		}
		lo++
	}
	set(get().Meet(AbsVal{Lo: lo, Hi: math.MaxInt64}))
}

// applyLtLen records the symbolic "x < len(target)" fact when the upper
// expression is len(s), a variable known to equal len(s), or either of
// those minus a nonnegative constant (i < n-1 with n == len(s)).
func (ev *vrEval) applyLtLen(env *vrEnv, x, upper ast.Expr) {
	path := canonPath(x)
	if path == "" {
		return
	}
	target := ev.lenTargetUpper(upper, env)
	if target == "" {
		return
	}
	if env.lt[path] == nil {
		env.lt[path] = map[string]bool{}
	}
	env.lt[path][target] = true
}

// lenTargetUpper resolves an expression bounded above by a length:
// len(s) itself (or a symLen variable), or either minus a nonnegative
// constant, so x < expr implies x < len(target).
func (ev *vrEval) lenTargetUpper(expr ast.Expr, env *vrEnv) string {
	if t := ev.lenTarget(expr, env); t != "" {
		return t
	}
	if bin, ok := ast.Unparen(expr).(*ast.BinaryExpr); ok && bin.Op == token.SUB {
		if k, isConst := ev.evalQuiet(bin.Y, env).IsConst(); isConst && k >= 0 {
			return ev.lenTarget(bin.X, env)
		}
	}
	return ""
}

// lenTarget resolves an expression that denotes a length: len(s)
// itself (possibly behind a value-preserving integer conversion such as
// uint64(len(s))), or a variable recorded as symLen.
func (ev *vrEval) lenTarget(expr ast.Expr, env *vrEnv) string {
	expr = ev.stripIntConv(expr, env, true)
	if call, ok := ast.Unparen(expr).(*ast.CallExpr); ok {
		if calleeBuiltin(ev.pkg(), call) == "len" && len(call.Args) == 1 {
			return canonPath(call.Args[0])
		}
		return ""
	}
	if path := canonPath(expr); path != "" {
		// Only integer paths hold a length value; a slice-typed symLen
		// entry is a length alias, not a length-valued expression.
		if _, isInt := typeShape(ev.pkg().TypeOf(expr)); isInt {
			return env.symLen[path]
		}
	}
	return ""
}

// stripIntConv unwraps integer conversions around expr. With exact set,
// only value-preserving layers are removed (the abstract value of the
// operand fits the target shape), so the stripped expression denotes
// the same value. Without exact, unsigned narrowing of a nonnegative
// operand is also removed: uint8(v) keeps the low bits, so it can only
// decrease a nonnegative v — sound when the caller needs an upper
// bound, as checkIndex does (the lower bound is proven separately on
// the converted value).
func (ev *vrEval) stripIntConv(expr ast.Expr, env *vrEnv, exact bool) ast.Expr {
	for {
		expr = ast.Unparen(expr)
		call, ok := expr.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return expr
		}
		to, isConv := ev.conversionTarget(call)
		if !isConv {
			return expr
		}
		inner := ev.evalQuiet(call.Args[0], env)
		if !inner.NonNegative() {
			return expr
		}
		if (exact || to.signed) && !inner.fits(to) {
			return expr
		}
		expr = call.Args[0]
	}
}

// applyEq meets equality with a value, and copies symbolic facts.
func (ev *vrEval) applyEq(env *vrEnv, x ast.Expr, val AbsVal) {
	if val.Bot {
		return
	}
	get, set, ok := ev.refineSlot(env, x)
	if !ok {
		return
	}
	set(get().Meet(val))
}

// applySymEq propagates len-relations through x == y.
func (ev *vrEval) applySymEq(env *vrEnv, x, y ast.Expr) {
	// x == len(s): x now equals the length.
	if t := ev.lenTarget(y, env); t != "" {
		if path := canonPath(x); path != "" {
			env.symLen[path] = t
		}
	}
	if t := ev.lenTarget(x, env); t != "" {
		if path := canonPath(y); path != "" {
			env.symLen[path] = t
		}
	}
}

// applyNeq trims a constant endpoint off the interval on x != c.
func (ev *vrEval) applyNeq(env *vrEnv, x ast.Expr, val AbsVal) {
	c, isConst := val.IsConst()
	if !isConst {
		return
	}
	get, set, ok := ev.refineSlot(env, x)
	if !ok {
		return
	}
	cur := get()
	if cur.Bot || cur.Wide {
		return
	}
	switch {
	case cur.Lo == c && cur.Hi == c:
		set(absBottom())
	case cur.Lo == c:
		cur.Lo++
		set(cur.normalize())
	case cur.Hi == c:
		cur.Hi--
		set(cur.normalize())
	}
}

// --- small type helpers -------------------------------------------------

// isSliceOrString reports a type ranges with an index key and a length.
func isSliceOrString(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Info()&types.IsString != 0
	}
	return false
}

// arrayLenOf returns the length of an array (or pointer-to-array) type.
func arrayLenOf(t types.Type) (int64, bool) {
	if t == nil {
		return 0, false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if arr, ok := t.Underlying().(*types.Array); ok {
		return arr.Len(), true
	}
	return 0, false
}
