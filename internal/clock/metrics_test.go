package clock

import (
	"testing"

	"metro/internal/metrics"
)

// spinComp burns a little deterministic work so sampled wall times are
// nonzero even at coarse clock resolution.
type spinComp struct {
	acc   uint64
	stage uint64
}

func (s *spinComp) Eval(cycle uint64) {
	v := s.acc
	for i := uint64(0); i < 2000; i++ {
		v = v*2654435761 + cycle + i
	}
	s.stage = v
}

func (s *spinComp) Commit(cycle uint64) { s.acc = s.stage }

// newEngineMetrics builds a gauge set backed by a registry, with shard
// gauges for n shards.
func newEngineMetrics(every uint64, shards int) (*metrics.Registry, *EngineMetrics) {
	r := metrics.NewRegistry()
	m := &EngineMetrics{
		Every:        every,
		CyclesPerSec: r.Gauge("sim_cycles_per_second", ""),
		StepNs:       r.Gauge("sim_step_ns", ""),
	}
	v := r.GaugeVec("sim_shard_step_ns", "", "shard")
	for s := 0; s < shards; s++ {
		m.ShardNs = append(m.ShardNs, v.With(string(rune('0'+s))))
	}
	return r, m
}

// TestEngineMetricsSerial verifies the serial engine publishes
// throughput gauges on the sampling grid.
func TestEngineMetricsSerial(t *testing.T) {
	e := New()
	e.Add(&spinComp{})
	_, m := newEngineMetrics(8, 0)
	e.SetMetrics(m)

	e.Run(7)
	if m.CyclesPerSec.Value() != 0 {
		t.Fatal("gauge written before the first full sampling window")
	}
	// Two grid crossings are needed for a complete window.
	e.Run(9)
	if m.CyclesPerSec.Value() <= 0 {
		t.Fatalf("cycles/sec = %v, want > 0 after two sampling windows", m.CyclesPerSec.Value())
	}
	if m.StepNs.Value() <= 0 {
		t.Fatalf("step ns = %v, want > 0", m.StepNs.Value())
	}
}

// TestEngineMetricsParallelShards verifies per-shard step-time gauges
// are written on sampled cycles in parallel mode.
func TestEngineMetricsParallelShards(t *testing.T) {
	e := New()
	a0, a1 := e.NewShardAffinity(), e.NewShardAffinity()
	e.AddSharded(a0, &spinComp{})
	e.AddSharded(a1, &spinComp{})
	e.SetWorkers(2)
	defer e.StopWorkers()
	_, m := newEngineMetrics(4, 2)
	e.SetMetrics(m)

	e.Run(64)
	for s, g := range m.ShardNs {
		if g.Value() <= 0 {
			t.Errorf("shard %d step ns = %v, want > 0", s, g.Value())
		}
	}
}

// TestEngineMetricsDetach verifies SetMetrics(nil) stops all updates
// and the engine keeps stepping.
func TestEngineMetricsDetach(t *testing.T) {
	e := New()
	e.Add(&spinComp{})
	_, m := newEngineMetrics(2, 0)
	e.SetMetrics(m)
	e.Run(8)
	e.SetMetrics(nil)
	before := m.CyclesPerSec.Value()
	e.Run(64)
	if got := m.CyclesPerSec.Value(); got != before {
		t.Fatalf("gauge moved after detach: %v -> %v", before, got)
	}
	if e.Cycle() != 72 {
		t.Fatalf("cycle = %d, want 72", e.Cycle())
	}
}

// TestEngineMetricsDeterminism pins that attaching metrics does not
// perturb simulation state: the same component sequence lands in the
// same final state with metrics on and off.
func TestEngineMetricsDeterminism(t *testing.T) {
	run := func(withMetrics bool) uint64 {
		e := New()
		c := &spinComp{}
		e.Add(c)
		if withMetrics {
			_, m := newEngineMetrics(4, 0)
			e.SetMetrics(m)
		}
		e.Run(100)
		return c.acc
	}
	if plain, instrumented := run(false), run(true); plain != instrumented {
		t.Fatalf("metrics perturbed the model: %d != %d", plain, instrumented)
	}
}
