//go:build race

package metrics

// raceEnabled reports that the race detector is active. Zero-allocation
// gates are skipped under -race: the instrumentation inflates allocation
// counts, so the gate would fail for reasons unrelated to the code.
const raceEnabled = true
