package analysis

// The abstract value domain for the value-range rules (MV010–MV012): an
// interval × known-bits lattice over Go's integer types.
//
// An AbsVal abstracts the set of values an integer expression can take:
//
//   - the *interval* part bounds the mathematical value, [Lo, Hi] with
//     saturating int64 endpoints. 64-bit unsigned values that may exceed
//     MaxInt64 cannot be represented as an int64 interval; they carry the
//     Wide flag, which disables every interval-based proof (conservative:
//     Wide never proves anything).
//   - the *known-bits* part records individual bits of the value's
//     two's-complement representation: where Mask has a 1, the value's
//     bit equals the corresponding bit of Bits. To avoid sign-extension
//     subtleties, known bits are only ever claimed for values proven
//     nonnegative; every transfer function that could produce a negative
//     result drops them.
//
// Both parts abstract the same value, so each transfer function may
// tighten one part from the other (an AND with 0xff bounds the interval
// at 255; an interval of [0, 7] pins bits 3..63 to zero). Soundness —
// the concrete result of an operation is always enclosed by the abstract
// result of the same operation on enclosing inputs — is fuzzed against
// concrete execution by FuzzIntervalSoundness.
//
// The lattice is used by valuerange.go, which runs the transfer
// functions over function bodies with branch refinement and loop
// fixpoints, interprocedurally to a fixpoint over the PR-6 call graph.

import (
	"fmt"
	"go/types"
	"math"
	"math/bits"
)

// AbsVal is one abstract integer value. The zero value is bottom (no
// value observed yet), the identity for Join.
type AbsVal struct {
	// Bot marks bottom: no concrete value reaches this point yet.
	Bot bool
	// Wide marks a 64-bit unsigned value that may exceed MaxInt64; the
	// interval part is then meaningless (Lo/Hi are set to [0, MaxInt64]
	// for printing only) and no interval proof may use it.
	Wide bool
	// Lo and Hi bound the value, inclusive, saturating at the int64
	// limits (an endpoint at MinInt64/MaxInt64 reads "unbounded").
	Lo, Hi int64
	// Mask/Bits are the known bits: where Mask is 1 the value's bit
	// equals the bit of Bits. Nonzero only for provably nonnegative
	// values.
	Mask, Bits uint64
}

// absBottom is the join identity.
func absBottom() AbsVal { return AbsVal{Bot: true} }

// absAny is top: a completely unknown int64-ranged value.
func absAny() AbsVal { return AbsVal{Lo: math.MinInt64, Hi: math.MaxInt64} }

// absWide is top for 64-bit unsigned values.
func absWide() AbsVal { return AbsVal{Wide: true, Lo: 0, Hi: math.MaxInt64} }

// absConst abstracts a single known value.
func absConst(v int64) AbsVal {
	a := AbsVal{Lo: v, Hi: v}
	if v >= 0 {
		a.Mask, a.Bits = ^uint64(0), uint64(v)
	}
	return a
}

// absConstU abstracts a single known unsigned value, which may exceed
// MaxInt64 (the known-bits part stays exact even when the interval
// cannot represent it).
func absConstU(v uint64) AbsVal {
	if v <= math.MaxInt64 {
		return absConst(int64(v))
	}
	return AbsVal{Wide: true, Lo: 0, Hi: math.MaxInt64, Mask: ^uint64(0), Bits: v}
}

// absRange abstracts the inclusive interval [lo, hi].
func absRange(lo, hi int64) AbsVal {
	if lo > hi {
		return absBottom()
	}
	return AbsVal{Lo: lo, Hi: hi}.normalize()
}

// IsConst reports whether the value is a single known point, and that
// point.
func (a AbsVal) IsConst() (int64, bool) {
	if !a.Bot && !a.Wide && a.Lo == a.Hi {
		return a.Lo, true
	}
	return 0, false
}

// In reports whether every value abstracted by a provably lies within
// [lo, hi]. Bottom (dead code) proves everything; Wide proves nothing.
func (a AbsVal) In(lo, hi int64) bool {
	if a.Bot {
		return true
	}
	if a.Wide {
		return false
	}
	return a.Lo >= lo && a.Hi <= hi
}

// NonNegative reports whether the value is provably >= 0.
func (a AbsVal) NonNegative() bool { return a.Bot || a.Wide || a.Lo >= 0 }

// String renders the value for finding messages: "[lo, hi]" with
// unbounded endpoints printed as "-inf"/"+inf".
func (a AbsVal) String() string {
	if a.Bot {
		return "[unreachable]"
	}
	if a.Wide {
		return "[0, +inf]"
	}
	lo, hi := "-inf", "+inf"
	if a.Lo != math.MinInt64 {
		lo = fmt.Sprintf("%d", a.Lo)
	}
	if a.Hi != math.MaxInt64 {
		hi = fmt.Sprintf("%d", a.Hi)
	}
	return fmt.Sprintf("[%s, %s]", lo, hi)
}

// normalize reconciles the two halves: known bits tighten the interval
// (for nonnegative values) and an impossible combination degrades to
// dropping the known bits rather than claiming bottom (refinement sites
// handle true contradictions). It also enforces the nonnegative-only
// known-bits invariant.
func (a AbsVal) normalize() AbsVal {
	if a.Bot {
		return AbsVal{Bot: true}
	}
	if !a.Wide && a.Lo < 0 {
		// Possibly negative: known bits are not maintained.
		a.Mask, a.Bits = 0, 0
		return a
	}
	if a.Mask == 0 {
		return a
	}
	a.Bits &= a.Mask // canonical: unknown bit positions are zero in Bits
	minPossible := a.Bits
	maxPossible := a.Bits | ^a.Mask
	if maxPossible <= math.MaxInt64 {
		if a.Wide {
			a.Wide = false
			a.Lo, a.Hi = 0, math.MaxInt64
		}
		if int64(maxPossible) < a.Hi {
			a.Hi = int64(maxPossible)
		}
	}
	if !a.Wide && minPossible <= math.MaxInt64 && int64(minPossible) > a.Lo {
		a.Lo = int64(minPossible)
	}
	if !a.Wide && a.Lo > a.Hi {
		// The two halves disagree; keep the interval, drop the bits.
		a.Mask, a.Bits = 0, 0
	}
	return a
}

// Join is the lattice join: the smallest AbsVal enclosing both.
func (a AbsVal) Join(b AbsVal) AbsVal {
	if a.Bot {
		return b
	}
	if b.Bot {
		return a
	}
	out := AbsVal{
		Wide: a.Wide || b.Wide,
		Lo:   min64(a.Lo, b.Lo),
		Hi:   max64(a.Hi, b.Hi),
	}
	agree := a.Mask & b.Mask &^ (a.Bits ^ b.Bits)
	out.Mask = agree
	out.Bits = a.Bits & agree
	if out.Wide {
		out.Lo, out.Hi = 0, math.MaxInt64
	}
	return out.normalize()
}

// Meet intersects the interval parts (used by branch refinement). An
// empty intersection returns bottom: the refined branch is unreachable.
func (a AbsVal) Meet(b AbsVal) AbsVal {
	if a.Bot || b.Bot {
		return AbsVal{Bot: true}
	}
	if a.Wide && b.Wide {
		out := AbsVal{Wide: true, Lo: 0, Hi: math.MaxInt64}
		out.Mask = a.Mask | b.Mask
		out.Bits = (a.Bits & a.Mask) | (b.Bits & b.Mask)
		return out.normalize()
	}
	// One wide side: the wide value is nonnegative (it is a 64-bit
	// unsigned quantity) and the finite side's bounds hold, so the
	// intersection is the finite interval clipped to [0, +inf].
	if a.Wide {
		a = AbsVal{Lo: 0, Hi: math.MaxInt64, Mask: a.Mask, Bits: a.Bits}
	}
	if b.Wide {
		b = AbsVal{Lo: 0, Hi: math.MaxInt64, Mask: b.Mask, Bits: b.Bits}
	}
	out := AbsVal{Lo: max64(a.Lo, b.Lo), Hi: min64(a.Hi, b.Hi)}
	if out.Lo > out.Hi {
		return AbsVal{Bot: true}
	}
	out.Mask = a.Mask | b.Mask
	out.Bits = (a.Bits & a.Mask) | (b.Bits & b.Mask)
	return out.normalize()
}

// intType describes an integer type's machine shape for clamping.
type intType struct {
	bits   int
	signed bool
}

// typeShape resolves a go/types type to its integer shape; ok is false
// for non-integer types.
func typeShape(t types.Type) (intType, bool) {
	if t == nil {
		return intType{}, false
	}
	b, okb := t.Underlying().(*types.Basic)
	if !okb {
		return intType{}, false
	}
	switch b.Kind() {
	case types.Int8:
		return intType{8, true}, true
	case types.Int16:
		return intType{16, true}, true
	case types.Int32, types.UntypedRune:
		return intType{32, true}, true
	case types.Int, types.Int64, types.UntypedInt:
		return intType{64, true}, true
	case types.Uint8:
		return intType{8, false}, true
	case types.Uint16:
		return intType{16, false}, true
	case types.Uint32:
		return intType{32, false}, true
	case types.Uint, types.Uint64, types.Uintptr:
		return intType{64, false}, true
	}
	return intType{}, false
}

// rangeOf returns the representable interval of the shape ([0, MaxInt64]
// with Wide semantics for 64-bit unsigned).
func rangeOf(it intType) AbsVal {
	switch {
	case it.signed && it.bits == 64:
		return absAny()
	case it.signed:
		h := int64(1)<<uint(it.bits-1) - 1
		return AbsVal{Lo: -h - 1, Hi: h}
	case it.bits == 64:
		return absWide()
	default:
		return AbsVal{Lo: 0, Hi: int64(1)<<uint(it.bits) - 1}
	}
}

// fits reports whether every value of a is representable in shape it
// without change. Wide values fit only the 64-bit unsigned shape.
func (a AbsVal) fits(it intType) bool {
	if a.Bot {
		return true
	}
	if a.Wide {
		return !it.signed && it.bits == 64
	}
	r := rangeOf(it)
	if r.Wide {
		return a.Lo >= 0
	}
	return a.Lo >= r.Lo && a.Hi <= r.Hi
}

// clamp folds a computed abstract value into a result type: values that
// fit pass through (with known bits normalized); values that may
// overflow wrap unpredictably and degrade to the type's full range.
func (a AbsVal) clamp(it intType) AbsVal {
	a = a.normalize()
	if a.Bot {
		return a
	}
	if a.fits(it) {
		return a
	}
	// Wrapping: nothing is known about the interval any more, and known
	// bits are dropped too (they were computed pre-wrap; only conversions
	// preserve low bits, and absConvert handles that itself).
	return rangeOf(it)
}

// --- transfer functions -------------------------------------------------
//
// Every function takes operand abstractions and returns the abstraction
// of the Go operation's mathematical result BEFORE type clamping; the
// evaluator clamps to the static result type. Operands that are Bot
// short-circuit to Bot (dead code stays dead).

func transfer2(a, b AbsVal) (AbsVal, bool) {
	if a.Bot || b.Bot {
		return AbsVal{Bot: true}, true
	}
	return AbsVal{}, false
}

// satAddOvf/satSubOvf/satMulOvf saturate at the int64 limits and report
// whether saturation actually occurred — i.e. the mathematical result
// lies outside int64. The distinction matters: MaxInt64 produced
// exactly (MaxInt64-1 + 1) is a legal value and interval proofs may use
// it, while a saturated MaxInt64 means the concrete operation wrapped
// and the transfer function must degrade to top, or a wrapped value
// would escape its abstraction (caught by FuzzIntervalSoundness:
// MaxInt32 << 78 is 0, not [MaxInt64, MaxInt64]).
func satAddOvf(a, b int64) (int64, bool) {
	s, _ := bits.Add64(uint64(a), uint64(b), 0)
	r := int64(s)
	if (a > 0 && b > 0 && r < 0) || (a < 0 && b < 0 && r >= 0) {
		if a > 0 {
			return math.MaxInt64, true
		}
		return math.MinInt64, true
	}
	return r, false
}

func satSubOvf(a, b int64) (int64, bool) {
	d := a - b // wrapping; the comparisons below detect it
	if (b < 0 && d < a) || (b > 0 && d > a) {
		if b < 0 {
			return math.MaxInt64, true
		}
		return math.MinInt64, true
	}
	return d, false
}

func satMulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, false
	}
	if a == 1 {
		return b, false
	}
	if b == 1 {
		return a, false
	}
	if a == math.MinInt64 || b == math.MinInt64 {
		// |MinInt64| times any factor of magnitude >= 2 overflows (the
		// factor-1 cases returned above).
		if (a < 0) != (b < 0) {
			return math.MinInt64, true
		}
		return math.MaxInt64, true
	}
	hi, lo := bits.Mul64(uint64(abs64(a)), uint64(abs64(b)))
	neg := (a < 0) != (b < 0)
	if hi != 0 || (!neg && lo > math.MaxInt64) || (neg && lo > uint64(math.MaxInt64)+1) {
		if neg {
			return math.MinInt64, true
		}
		return math.MaxInt64, true
	}
	if neg {
		if lo == uint64(math.MaxInt64)+1 {
			return math.MinInt64, false // -2^63 exactly
		}
		return -int64(lo), false
	}
	return int64(lo), false
}

// satAdd and satSub are the flag-free forms for callers that only
// tighten bounds (length arithmetic, abstraction builders), where
// saturation stays conservative.
func satAdd(a, b int64) int64 { r, _ := satAddOvf(a, b); return r }

func satSub(a, b int64) int64 { r, _ := satSubOvf(a, b); return r }

func abs64(v int64) int64 {
	if v == math.MinInt64 {
		return math.MaxInt64 // saturate; only feeds further saturation
	}
	if v < 0 {
		return -v
	}
	return v
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// wideOperand reports whether interval reasoning must be abandoned for
// the pair (either side may exceed int64).
func wideOperand(a, b AbsVal) bool { return a.Wide || b.Wide }

// absAdd abstracts a + b. A corner that overflows int64 means the
// concrete operation may wrap, so the result degrades to top (clamp
// then folds it to the result type's range).
func absAdd(a, b AbsVal) AbsVal {
	if r, done := transfer2(a, b); done {
		return r
	}
	if wideOperand(a, b) {
		return absWide()
	}
	lo, lov := satAddOvf(a.Lo, b.Lo)
	hi, hov := satAddOvf(a.Hi, b.Hi)
	if lov || hov {
		return absAny()
	}
	return AbsVal{Lo: lo, Hi: hi}.normalize()
}

// absSub abstracts a - b.
func absSub(a, b AbsVal) AbsVal {
	if r, done := transfer2(a, b); done {
		return r
	}
	if wideOperand(a, b) {
		return AbsVal{Lo: math.MinInt64, Hi: math.MaxInt64}
	}
	lo, lov := satSubOvf(a.Lo, b.Hi)
	hi, hov := satSubOvf(a.Hi, b.Lo)
	if lov || hov {
		return absAny()
	}
	return AbsVal{Lo: lo, Hi: hi}.normalize()
}

// absMul abstracts a * b.
func absMul(a, b AbsVal) AbsVal {
	if r, done := transfer2(a, b); done {
		return r
	}
	if wideOperand(a, b) {
		if a.NonNegative() && b.NonNegative() {
			return absWide()
		}
		return absAny()
	}
	c1, o1 := satMulOvf(a.Lo, b.Lo)
	c2, o2 := satMulOvf(a.Lo, b.Hi)
	c3, o3 := satMulOvf(a.Hi, b.Lo)
	c4, o4 := satMulOvf(a.Hi, b.Hi)
	if o1 || o2 || o3 || o4 {
		return absAny()
	}
	return AbsVal{
		Lo: min64(min64(c1, c2), min64(c3, c4)),
		Hi: max64(max64(c1, c2), max64(c3, c4)),
	}.normalize()
}

// absDiv abstracts a / b (Go: truncated toward zero). Division by zero
// panics at runtime, so the abstraction covers only the executions that
// continue; a divisor interval containing zero degrades to the
// division's worst case over the nonzero part.
func absDiv(a, b AbsVal) AbsVal {
	if r, done := transfer2(a, b); done {
		return r
	}
	if wideOperand(a, b) {
		if a.NonNegative() && b.NonNegative() {
			return absWide()
		}
		return absAny()
	}
	// Split the divisor around zero and join the two sides.
	out := absBottom()
	if b.Hi >= 1 {
		pos := AbsVal{Lo: max64(b.Lo, 1), Hi: b.Hi}
		out = out.Join(divCorners(a, pos))
	}
	if b.Lo <= -1 {
		neg := AbsVal{Lo: b.Lo, Hi: min64(b.Hi, -1)}
		out = out.Join(divCorners(a, neg))
	}
	if out.Bot {
		// Divisor is exactly zero: the operation always panics; the
		// continuing execution set is empty.
		return AbsVal{Bot: true}
	}
	return out.normalize()
}

// divCorners evaluates truncated division at the interval corners; sound
// when b does not contain zero (the quotient is monotone in each
// argument on each sign of b). If MinInt64/-1 is reachable the concrete
// quotient wraps (Go defines it as MinInt64), so the result degrades to
// the full range rather than pretending the quotient stayed ordered.
func divCorners(a, b AbsVal) AbsVal {
	if a.Lo == math.MinInt64 && b.Lo <= -1 && b.Hi >= -1 {
		return AbsVal{Lo: math.MinInt64, Hi: math.MaxInt64}
	}
	c1, c2 := a.Lo/b.Lo, a.Lo/b.Hi
	c3, c4 := a.Hi/b.Lo, a.Hi/b.Hi
	return AbsVal{
		Lo: min64(min64(c1, c2), min64(c3, c4)),
		Hi: max64(max64(c1, c2), max64(c3, c4)),
	}
}

// absMod abstracts a % b (Go: result takes the dividend's sign,
// |result| < |b|, |result| <= |a|).
func absMod(a, b AbsVal) AbsVal {
	if r, done := transfer2(a, b); done {
		return r
	}
	if a.Wide {
		// Unsigned dividend: 0 <= r < |b| and r <= a.
		if !b.Wide {
			bm := max64(abs64(b.Lo), abs64(b.Hi))
			if bm > 0 {
				return AbsVal{Lo: 0, Hi: bm - 1}.normalize()
			}
			return AbsVal{Bot: true} // b == 0 always panics
		}
		return absWide()
	}
	bound := int64(math.MaxInt64)
	if !b.Wide {
		bm := max64(abs64(b.Lo), abs64(b.Hi))
		if bm == 0 {
			return AbsVal{Bot: true} // b == 0 always panics
		}
		bound = bm - 1
	}
	// The result shares the dividend's sign and |r| <= |a| holds per
	// value, so each side is bounded by the dividend's reach on that
	// side as well as by |b| - 1.
	lo := max64(-bound, a.Lo)
	if a.Lo >= 0 {
		lo = 0
	}
	hi := min64(bound, a.Hi)
	if a.Hi <= 0 {
		hi = 0
	}
	return AbsVal{Lo: lo, Hi: hi}.normalize()
}

// absNeg abstracts -a.
func absNeg(a AbsVal) AbsVal {
	if a.Bot {
		return a
	}
	if a.Wide {
		return absAny()
	}
	lo, lov := satSubOvf(0, a.Hi)
	hi, hov := satSubOvf(0, a.Lo)
	if lov || hov {
		return absAny() // -MinInt64 wraps
	}
	return AbsVal{Lo: lo, Hi: hi}.normalize()
}

// absNot abstracts ^a (bitwise complement) = -a - 1.
func absNot(a AbsVal) AbsVal {
	return absSub(absNeg(a), absConst(1))
}

// shiftRange clamps the shift-amount interval to [0, 63]: Go panics on
// negative shifts (the continuing executions have k >= 0), and shifting
// by >= 64 behaves like 64 for every type this lattice models.
func shiftRange(k AbsVal) (lo, hi uint, exact bool) {
	if k.Wide {
		return 0, 63, false
	}
	klo, khi := max64(k.Lo, 0), k.Hi
	if khi > 63 {
		khi = 63
	}
	if khi < klo {
		khi = klo
	}
	return uint(klo), uint(khi), k.Lo == k.Hi && k.Lo >= 0 && k.Lo <= 63
}

// absShl abstracts a << k.
func absShl(a, k AbsVal) AbsVal {
	if r, done := transfer2(a, k); done {
		return r
	}
	klo, khi, exact := shiftRange(k)
	if a.Wide {
		out := absWide()
		if exact {
			out.Mask = a.Mask<<klo | (1<<klo - 1)
			out.Bits = a.Bits << klo
		}
		return out.normalize()
	}
	if k.Wide || k.Hi > 63 {
		// A count at or past the operand width shifts everything out:
		// the concrete result wraps (to zero), not saturates.
		return absAny()
	}
	if k.Hi < 0 {
		return absBottom() // negative count always panics; no execution continues
	}
	shl := func(x int64, s uint) (int64, bool) {
		if x == 0 {
			return 0, false
		}
		r := x << s
		if r>>s != x {
			if x > 0 {
				return math.MaxInt64, true
			}
			return math.MinInt64, true
		}
		return r, false
	}
	c1, o1 := shl(a.Lo, klo)
	c2, o2 := shl(a.Lo, khi)
	c3, o3 := shl(a.Hi, klo)
	c4, o4 := shl(a.Hi, khi)
	if o1 || o2 || o3 || o4 {
		return absAny()
	}
	out := AbsVal{
		Lo: min64(min64(c1, c2), min64(c3, c4)),
		Hi: max64(max64(c1, c2), max64(c3, c4)),
	}
	if exact && a.Lo >= 0 {
		out.Mask = a.Mask<<klo | (1<<klo - 1)
		out.Bits = a.Bits << klo
	}
	return out.normalize()
}

// absShr abstracts a >> k (arithmetic for negative values, logical
// otherwise — which is what Go's int64 semantics give for the modeled
// value).
func absShr(a, k AbsVal) AbsVal {
	if r, done := transfer2(a, k); done {
		return r
	}
	klo, khi, exact := shiftRange(k)
	if a.Wide {
		out := absWide()
		if klo >= 1 {
			// Any shift of at least one bit brings a 64-bit value into
			// int64 range.
			out = AbsVal{Lo: 0, Hi: math.MaxInt64 >> (klo - 1)}
			if klo > 1 {
				out.Hi >>= 1 // conservative: MaxUint64 >> klo
				out.Hi = int64(^uint64(0) >> klo)
				out.Lo = 0
			} else {
				out.Hi = int64(^uint64(0) >> 1)
			}
		}
		if exact {
			out.Mask = a.Mask>>klo | ^(^uint64(0) >> klo)
			out.Bits = a.Bits >> klo
		}
		return out.normalize()
	}
	shr := func(x int64, s uint) int64 { return x >> s }
	// For nonnegative x, x>>k decreases with k; for negative it
	// increases toward -1. Corner evaluation covers both.
	c1, c2 := shr(a.Lo, klo), shr(a.Lo, khi)
	c3, c4 := shr(a.Hi, klo), shr(a.Hi, khi)
	out := AbsVal{
		Lo: min64(min64(c1, c2), min64(c3, c4)),
		Hi: max64(max64(c1, c2), max64(c3, c4)),
	}
	if exact && a.Lo >= 0 {
		out.Mask = a.Mask>>klo | ^(^uint64(0) >> klo)
		out.Bits = a.Bits >> klo
	}
	return out.normalize()
}

// knownParts splits the known-bits into (known-zeros, known-ones).
func (a AbsVal) knownParts() (zeros, ones uint64) {
	return a.Mask &^ a.Bits, a.Mask & a.Bits
}

// bitCap returns the smallest n with 2^n > hi, i.e. every value in
// [0, hi] fits in n bits.
func bitCap(hi int64) int {
	if hi <= 0 {
		return 0
	}
	return bits.Len64(uint64(hi))
}

// highZeros returns known-zero bits implied by the interval: a value in
// [0, hi] has every bit above bitCap(hi) clear.
func (a AbsVal) highZeros() uint64 {
	if a.Bot || a.Wide || a.Lo < 0 {
		return 0
	}
	n := bitCap(a.Hi)
	if n >= 64 {
		return 0
	}
	return ^uint64(0) << uint(n)
}

// absAnd abstracts a & b.
func absAnd(a, b AbsVal) AbsVal {
	if r, done := transfer2(a, b); done {
		return r
	}
	za, oa := a.knownParts()
	zb, ob := b.knownParts()
	za |= a.highZeros()
	zb |= b.highZeros()
	out := AbsVal{}
	zeros := za | zb
	ones := oa & ob
	out.Mask = zeros | ones
	out.Bits = ones
	if a.NonNegative() && !a.Wide || b.NonNegative() && !b.Wide {
		// x & y <= min(x, y) when either side is nonnegative.
		hi := int64(math.MaxInt64)
		if !a.Wide && a.Lo >= 0 {
			hi = min64(hi, a.Hi)
		}
		if !b.Wide && b.Lo >= 0 {
			hi = min64(hi, b.Hi)
		}
		out.Lo, out.Hi = 0, hi
		if !a.NonNegative() || !b.NonNegative() {
			// A negative operand can switch the sign bit on ... but the
			// nonnegative operand's zero sign bit forces the result
			// nonnegative, so [0, hi] stands.
			_ = hi
		}
		return out.normalize()
	}
	if a.Wide || b.Wide {
		out.Wide, out.Lo, out.Hi = true, 0, math.MaxInt64
		return out.normalize()
	}
	out.Lo, out.Hi = math.MinInt64, math.MaxInt64
	return out.normalize()
}

// absOr abstracts a | b.
func absOr(a, b AbsVal) AbsVal {
	if r, done := transfer2(a, b); done {
		return r
	}
	za, oa := a.knownParts()
	zb, ob := b.knownParts()
	za |= a.highZeros()
	zb |= b.highZeros()
	out := AbsVal{}
	zeros := za & zb
	ones := oa | ob
	out.Mask = zeros | ones
	out.Bits = ones
	if a.Wide || b.Wide {
		out.Wide, out.Lo, out.Hi = true, 0, math.MaxInt64
		if !a.NonNegative() || !b.NonNegative() {
			out = absAny()
		}
		return out.normalize()
	}
	if a.Lo >= 0 && b.Lo >= 0 {
		n := max64(int64(bitCap(a.Hi)), int64(bitCap(b.Hi)))
		hi := int64(math.MaxInt64)
		if n < 63 {
			hi = int64(1)<<uint(n) - 1
		}
		out.Lo, out.Hi = max64(a.Lo, b.Lo), hi
		return out.normalize()
	}
	out.Lo, out.Hi = math.MinInt64, math.MaxInt64
	return out.normalize()
}

// absXor abstracts a ^ b.
func absXor(a, b AbsVal) AbsVal {
	if r, done := transfer2(a, b); done {
		return r
	}
	za, oa := a.knownParts()
	zb, ob := b.knownParts()
	za |= a.highZeros()
	zb |= b.highZeros()
	out := AbsVal{}
	known := (za | oa) & (zb | ob)
	val := (oa ^ ob) & known
	out.Mask = known
	out.Bits = val
	if !a.Wide && !b.Wide && a.Lo >= 0 && b.Lo >= 0 {
		n := max64(int64(bitCap(a.Hi)), int64(bitCap(b.Hi)))
		hi := int64(math.MaxInt64)
		if n < 63 {
			hi = int64(1)<<uint(n) - 1
		}
		out.Lo, out.Hi = 0, hi
		return out.normalize()
	}
	if a.Wide || b.Wide {
		if a.NonNegative() && b.NonNegative() {
			out.Wide, out.Lo, out.Hi = true, 0, math.MaxInt64
			return out.normalize()
		}
	}
	out.Lo, out.Hi = math.MinInt64, math.MaxInt64
	return out.normalize()
}

// absAndNot abstracts a &^ b: a AND (NOT b).
func absAndNot(a, b AbsVal) AbsVal {
	if r, done := transfer2(a, b); done {
		return r
	}
	// NOT b swaps known zeros and ones; high-zero interval knowledge of b
	// becomes high ones, which absAnd's zero side ignores safely.
	zb, ob := b.knownParts()
	nb := AbsVal{Lo: math.MinInt64, Hi: math.MaxInt64}
	nb.Mask = zb | ob
	nb.Bits = zb
	// Keep a's nonnegativity: route through absAnd.
	return absAnd(a, nb)
}

// absMin abstracts the min builtin.
func absMin(a, b AbsVal) AbsVal {
	if r, done := transfer2(a, b); done {
		return r
	}
	if a.Wide && b.Wide {
		return absWide()
	}
	lo := min64(a.Lo, b.Lo)
	var hi int64
	switch {
	case a.Wide:
		hi = b.Hi
		lo = min64(0, b.Lo)
	case b.Wide:
		hi = a.Hi
		lo = min64(0, a.Lo)
	default:
		hi = min64(a.Hi, b.Hi)
	}
	return AbsVal{Lo: lo, Hi: hi}.normalize()
}

// absMax abstracts the max builtin.
func absMax(a, b AbsVal) AbsVal {
	if r, done := transfer2(a, b); done {
		return r
	}
	if a.Wide || b.Wide {
		out := absWide()
		return out
	}
	return AbsVal{Lo: max64(a.Lo, b.Lo), Hi: max64(a.Hi, b.Hi)}.normalize()
}

// absConvert abstracts a conversion of a (of shape from) to shape to,
// modeling Go's two's-complement truncation/extension exactly: a value
// that fits passes through; one that does not keeps only its low
// target-width bits (known bits survive truncation, the interval
// restarts from them).
func absConvert(a AbsVal, from, to intType) AbsVal {
	if a.Bot {
		return a
	}
	if a.fits(to) {
		// Value-preserving; just ensure the representation invariants.
		out := a.normalize()
		if !to.signed && to.bits == 64 && !out.Wide && out.Lo >= 0 {
			return out
		}
		return out
	}
	// Truncation/wrap: the low to.bits bits of the two's-complement
	// representation survive. Known bits narrow with the value.
	if to.bits == 64 {
		if to.signed {
			// A Wide unsigned reinterpreted as int64: top.
			return absAny()
		}
		// int64 -> uint64 with possible negatives: top for uint64, but a
		// provably-negative ... wraps high; nothing useful.
		return absWide()
	}
	width := uint(to.bits)
	lowMask := uint64(1)<<width - 1
	known := a.Mask & lowMask
	val := a.Bits & known
	if !to.signed {
		out := AbsVal{Lo: 0, Hi: int64(lowMask)}
		// Bits above the width are known zero after the conversion.
		out.Mask = known | ^lowMask
		out.Bits = val
		return out.normalize()
	}
	// Signed narrow target: if the target sign bit is known zero, the
	// result is the nonnegative low bits; otherwise full target range.
	signBit := uint64(1) << (width - 1)
	if known&signBit != 0 && val&signBit == 0 {
		out := AbsVal{Lo: 0, Hi: int64(lowMask >> 1)}
		out.Mask = known | ^lowMask
		out.Bits = val
		return out.normalize()
	}
	return rangeOf(to)
}
