package topo

import (
	"testing"
	"testing/quick"
)

func build(t *testing.T, spec Spec) *Topology {
	t.Helper()
	top, err := Build(spec)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return top
}

func TestFigure1Structure(t *testing.T) {
	top := build(t, Figure1())
	wantRouters := []int{8, 8, 8}
	for s, want := range wantRouters {
		if top.RoutersPerStage[s] != want {
			t.Errorf("stage %d routers = %d, want %d", s, top.RoutersPerStage[s], want)
		}
	}
	if top.RouterCount() != 24 {
		t.Errorf("RouterCount = %d, want 24", top.RouterCount())
	}
	wantBlocks := []int{1, 2, 4, 16}
	for s, want := range wantBlocks {
		if top.BlocksPerStage[s] != want {
			t.Errorf("blocks before stage %d = %d, want %d", s, top.BlocksPerStage[s], want)
		}
	}
}

func TestFigure3Structure(t *testing.T) {
	top := build(t, Figure3())
	wantRouters := []int{16, 16, 32}
	for s, want := range wantRouters {
		if top.RoutersPerStage[s] != want {
			t.Errorf("stage %d routers = %d, want %d", s, top.RoutersPerStage[s], want)
		}
	}
	if got := top.Spec.Endpoints; got != 64 {
		t.Errorf("endpoints = %d", got)
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []Spec{
		{},                                // empty
		{Endpoints: 16, EndpointLinks: 2}, // no stages
		{Endpoints: 16, EndpointLinks: 2, // radix product mismatch
			Stages: []StageSpec{{Inputs: 4, Radix: 2, Dilation: 2}}},
		{Endpoints: 16, EndpointLinks: 2, // non power of two radix
			Stages: []StageSpec{{Inputs: 4, Radix: 3, Dilation: 2}, {Inputs: 4, Radix: 4, Dilation: 1}}},
		{Endpoints: 16, EndpointLinks: 2, // stage larger than the wire supply
			Stages: []StageSpec{
				{Inputs: 64, Radix: 2, Dilation: 2},
				{Inputs: 4, Radix: 2, Dilation: 2},
				{Inputs: 4, Radix: 4, Dilation: 1}}},
		{Endpoints: 16, EndpointLinks: 4, // final stage delivers 8 links, not 4
			Stages: []StageSpec{
				{Inputs: 4, Radix: 2, Dilation: 2},
				{Inputs: 4, Radix: 2, Dilation: 2},
				{Inputs: 4, Radix: 4, Dilation: 2}}},
	}
	for i, s := range bad {
		if err := Validate(s); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, s)
		}
	}
}

func TestInjectionSpreadsEndpointLinks(t *testing.T) {
	top := build(t, Figure1())
	for e, links := range top.Inject {
		seen := map[int]bool{}
		for _, ref := range links {
			if ref.Kind != KindRouter || ref.Stage != 0 {
				t.Fatalf("endpoint %d link attached to %v", e, ref)
			}
			if seen[ref.Index] {
				t.Errorf("endpoint %d has two links on router %d", e, ref.Index)
			}
			seen[ref.Index] = true
		}
	}
}

// TestPortConservation checks that every forward port of every router is
// fed by exactly one wire, and every delivery link of every endpoint
// receives exactly one wire.
func portConservation(t *testing.T, spec Spec) {
	t.Helper()
	top := build(t, spec)
	S := len(spec.Stages)
	inCount := make([]map[[2]int]int, S) // stage -> (router,port) -> wires
	for s := range inCount {
		inCount[s] = map[[2]int]int{}
	}
	epCount := map[[2]int]int{}

	record := func(ref PortRef) {
		if ref.Kind == KindEndpoint {
			epCount[[2]int{ref.Index, ref.Port}]++
		} else {
			inCount[ref.Stage][[2]int{ref.Index, ref.Port}]++
		}
	}
	for _, links := range top.Inject {
		for _, ref := range links {
			record(ref)
		}
	}
	for s := range top.Out {
		for j := range top.Out[s] {
			for _, ref := range top.Out[s][j] {
				record(ref)
			}
		}
	}
	for s, st := range spec.Stages {
		for j := 0; j < top.RoutersPerStage[s]; j++ {
			for p := 0; p < st.Inputs; p++ {
				if got := inCount[s][[2]int{j, p}]; got != 1 {
					t.Fatalf("stage %d router %d port %d fed by %d wires", s, j, p, got)
				}
			}
		}
	}
	for e := 0; e < spec.Endpoints; e++ {
		for k := 0; k < spec.EndpointLinks; k++ {
			if got := epCount[[2]int{e, k}]; got != 1 {
				t.Fatalf("endpoint %d delivery link %d fed by %d wires", e, k, got)
			}
		}
	}
}

func TestPortConservationFigure1(t *testing.T) { portConservation(t, Figure1()) }
func TestPortConservationFigure3(t *testing.T) { portConservation(t, Figure3()) }
func TestPortConservationTable3(t *testing.T)  { portConservation(t, Table3Network32()) }
func TestPortConservationRadix8(t *testing.T)  { portConservation(t, Table3Network32Radix8()) }

func TestPortConservationRandomWiring(t *testing.T) {
	spec := Figure1()
	spec.Wiring = WiringRandom
	spec.Seed = 42
	portConservation(t, spec)
}

func TestRouteDigitsRoundTrip(t *testing.T) {
	for _, spec := range []Spec{Figure1(), Figure3(), Table3Network32(), Table3Network32Radix8()} {
		top := build(t, spec)
		for dest := 0; dest < spec.Endpoints; dest++ {
			digits := top.RouteDigits(dest)
			if len(digits) != len(spec.Stages) {
				t.Fatalf("digit count %d != stages %d", len(digits), len(spec.Stages))
			}
			for s, d := range digits {
				if d < 0 || d >= spec.Stages[s].Radix {
					t.Fatalf("digit %d out of range at stage %d for dest %d", d, s, dest)
				}
			}
			if got := top.DestOf(digits); got != dest {
				t.Fatalf("DestOf(RouteDigits(%d)) = %d", dest, got)
			}
		}
	}
}

// TestAllPairsRouted follows the routing digits from every source to every
// destination through the elaborated wiring and checks arrival, for both
// wiring styles.
func TestAllPairsRouted(t *testing.T) {
	for _, wiring := range []Wiring{WiringInterleave, WiringRandom} {
		spec := Figure1()
		spec.Wiring = wiring
		spec.Seed = 7
		top := build(t, spec)
		for src := 0; src < spec.Endpoints; src++ {
			for dest := 0; dest < spec.Endpoints; dest++ {
				if n := top.PathCount(src, dest); n == 0 {
					t.Fatalf("%v wiring: no path %d -> %d", wiring, src, dest)
				}
			}
		}
	}
}

func TestFigure1PathCount(t *testing.T) {
	top := build(t, Figure1())
	// 2 injection links x dilation 2 x dilation 2 x dilation 1 = 8 paths.
	for src := 0; src < 16; src++ {
		for dest := 0; dest < 16; dest++ {
			if n := top.PathCount(src, dest); n != 8 {
				t.Fatalf("PathCount(%d,%d) = %d, want 8", src, dest, n)
			}
		}
	}
}

// TestFinalStageRouterLossTolerated reproduces the Figure 1 claim: the
// dilation-1 final stage is arranged so the complete loss of any one
// final-stage router isolates no endpoint.
func TestFinalStageRouterLossTolerated(t *testing.T) {
	for _, specFn := range []func() Spec{Figure1, Figure3} {
		spec := specFn()
		top := build(t, spec)
		last := len(spec.Stages) - 1
		for j := 0; j < top.RoutersPerStage[last]; j++ {
			dead := map[[2]int]bool{{last, j}: true}
			for src := 0; src < spec.Endpoints; src++ {
				for dest := 0; dest < spec.Endpoints; dest++ {
					if !top.Reachable(src, dest, dead) {
						t.Fatalf("killing final-stage router %d isolates %d -> %d", j, src, dest)
					}
				}
			}
		}
	}
}

// TestSingleEarlyStageRouterLossTolerated checks the multipath property for
// earlier stages too: any single router loss leaves all pairs connected.
func TestSingleEarlyStageRouterLossTolerated(t *testing.T) {
	spec := Figure1()
	top := build(t, spec)
	for s := range spec.Stages {
		for j := 0; j < top.RoutersPerStage[s]; j++ {
			dead := map[[2]int]bool{{s, j}: true}
			for src := 0; src < spec.Endpoints; src++ {
				for dest := 0; dest < spec.Endpoints; dest++ {
					if !top.Reachable(src, dest, dead) {
						t.Fatalf("killing stage %d router %d isolates %d -> %d", s, j, src, dest)
					}
				}
			}
		}
	}
}

func TestRandomWiringDeterministicPerSeed(t *testing.T) {
	spec := Figure1()
	spec.Wiring = WiringRandom
	spec.Seed = 99
	a := build(t, spec)
	b := build(t, spec)
	for s := range a.Out {
		for j := range a.Out[s] {
			for bp := range a.Out[s][j] {
				if a.Out[s][j][bp] != b.Out[s][j][bp] {
					t.Fatal("same seed produced different wirings")
				}
			}
		}
	}
	spec.Seed = 100
	c := build(t, spec)
	same := true
	for s := range a.Out {
		for j := range a.Out[s] {
			for bp := range a.Out[s][j] {
				if a.Out[s][j][bp] != c.Out[s][j][bp] {
					same = false
				}
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical wirings")
	}
}

func TestStageOf(t *testing.T) {
	top := build(t, Figure1()) // stages of 8,8,8
	cases := []struct{ flat, stage, index int }{
		{0, 0, 0}, {7, 0, 7}, {8, 1, 0}, {15, 1, 7}, {16, 2, 0}, {23, 2, 7},
	}
	for _, c := range cases {
		s, i := top.StageOf(c.flat)
		if s != c.stage || i != c.index {
			t.Errorf("StageOf(%d) = (%d,%d), want (%d,%d)", c.flat, s, i, c.stage, c.index)
		}
	}
	if s, _ := top.StageOf(24); s != -1 {
		t.Error("StageOf out of range should return -1")
	}
}

func TestLinkCount(t *testing.T) {
	top := build(t, Figure1())
	// 32 injection + stage0 out 8*4 + stage1 out 8*4 + stage2 out 8*4 = 128.
	if got := top.LinkCount(); got != 128 {
		t.Errorf("LinkCount = %d, want 128", got)
	}
}

func TestRouteDigitsProperty(t *testing.T) {
	top := build(t, Figure3())
	f := func(d uint16) bool {
		dest := int(d) % top.Spec.Endpoints
		return top.DestOf(top.RouteDigits(dest)) == dest
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWiringString(t *testing.T) {
	if WiringInterleave.String() != "interleave" || WiringRandom.String() != "random" {
		t.Error("wiring names wrong")
	}
	if Wiring(9).String() == "" {
		t.Error("unknown wiring should format")
	}
}

func TestPortRefString(t *testing.T) {
	r := PortRef{Kind: KindRouter, Stage: 1, Index: 3, Port: 2}
	if r.String() != "s1r3.f2" {
		t.Errorf("router ref = %q", r.String())
	}
	e := PortRef{Kind: KindEndpoint, Stage: -1, Index: 5, Port: 1}
	if e.String() != "ep5.1" {
		t.Errorf("endpoint ref = %q", e.String())
	}
}
