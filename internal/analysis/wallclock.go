package analysis

import (
	"fmt"
	"go/ast"
)

// wallClockFuncs are the package time entry points that read the host's
// wall clock or schedule against it. Any of them inside the simulation
// model makes results depend on host timing instead of the cycle counter.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"Sleep":     true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallClock returns the no-wallclock analyzer: simulation packages take
// time exclusively from internal/clock's cycle counter; reading the host
// clock (time.Now and friends) makes cycle-accurate results depend on
// wall-clock scheduling and breaks bit-for-bit reproducibility.
func WallClock() *Analyzer {
	return &Analyzer{
		Name: "no-wallclock",
		Doc:  "forbid wall-clock reads (time.Now etc.) in internal/ simulation packages; cycle time comes from internal/clock",
		Run:  runWallClock,
	}
}

func runWallClock(p *Package) []Finding {
	if !isInternal(p.ImportPath) {
		return nil
	}
	var out []Finding
	for _, f := range p.AllFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path, ok := p.PkgNameOf(id)
			if !ok || path != "time" || !wallClockFuncs[sel.Sel.Name] {
				return true
			}
			pos := p.Fset.Position(sel.Pos())
			if p.suppressed("no-wallclock", "ignore", pos) {
				return true
			}
			out = append(out, Finding{
				Pos:  pos,
				Rule: "no-wallclock",
				Msg: fmt.Sprintf("time.%s reads the host wall clock; simulation time must come from the internal/clock cycle counter",
					sel.Sel.Name),
			})
			return true
		})
	}
	return out
}
