package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// EnumSwitch returns the exhaustive-enum-switch analyzer. METRO's
// correctness argument is a set of small hardware state machines — the
// Section 5 port protocol, the 1149.1 TAP, the NIC send/receive engines —
// that silicon enumerates exhaustively and the Go model encodes as switch
// statements over iota enums. A switch that silently ignores an unlisted
// state (or lets it fall into a quiet default) is exactly the kind of
// protocol hole that never fails a test: adding a new word.Kind or port
// state compiles everywhere and misbehaves at runtime.
//
// The rule: every switch whose tag is a module-local enum-like type (a
// defined integer type with at least two declared constants) must name
// every constant value in its case arms. A default arm is legal only when
// it panics (the hardware-assert idiom: unreachable states crash loudly)
// or when the switch carries a `//metrovet:nonexhaustive <reason>`
// annotation stating why the unlisted states need no handling. Once every
// constant is named, a default arm is also legal as an out-of-band guard:
// it can only see values outside the declared alphabet (corrupted data).
func EnumSwitch() *Analyzer {
	return &Analyzer{
		Name: "exhaustive-enum-switch",
		Doc:  "flag switches over enum-like types that neither name every constant nor panic in default; annotate //metrovet:nonexhaustive <reason>",
		Run:  runEnumSwitch,
	}
}

func runEnumSwitch(p *Package) []Finding {
	var out []Finding
	// Compiled files only: the rule protects the model's protocol code;
	// tests legitimately probe subsets of the state space.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named, enum := enumTypeOf(p, sw.Tag)
			if enum == nil {
				return true
			}
			missing, defaulted, defaultPanics, checkable := switchCoverage(p, sw, enum)
			if !checkable || len(missing) == 0 {
				return true
			}
			if defaulted && defaultPanics {
				return true
			}
			pos := p.Fset.Position(sw.Switch)
			if p.suppressed("exhaustive-enum-switch", "nonexhaustive", pos) {
				return true
			}
			what := "has no default"
			if defaulted {
				what = "has a silent default"
			}
			out = append(out, Finding{
				Pos:  pos,
				Rule: "exhaustive-enum-switch",
				Msg: fmt.Sprintf("switch over %s %s and does not handle %s; name every constant, panic in default, or annotate //metrovet:nonexhaustive <reason>",
					named.Obj().Name(), what, strings.Join(missing, ", ")),
			})
			return true
		})
	}
	return out
}

// enumTypeOf reports whether expr's type is enum-like: a module-local
// defined type whose underlying type is an integer and for which the
// defining package declares at least two constants. It returns the named
// type and its constants (nil when not enum-like).
func enumTypeOf(p *Package, expr ast.Expr) (*types.Named, []*types.Const) {
	t := p.TypeOf(expr)
	if t == nil {
		return nil, nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil, nil
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !sameModule(p.ImportPath, pkg.Path()) {
		return nil, nil
	}
	consts := enumConstants(pkg, named)
	if len(consts) < 2 {
		return nil, nil
	}
	return named, consts
}

// sameModule reports whether two import paths share the module root (their
// first path segment). This keeps the rule to the repository's own enums:
// stdlib enumerations carry no protocol obligation here.
func sameModule(a, b string) bool {
	root := func(s string) string {
		if i := strings.IndexByte(s, '/'); i >= 0 {
			return s[:i]
		}
		return s
	}
	return root(a) == root(b)
}

// enumConstants collects the package-scope constants of exactly the named
// type, sorted by value then name for stable reporting.
func enumConstants(pkg *types.Package, named *types.Named) []*types.Const {
	var out []*types.Const
	scope := pkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		out = append(out, c)
	}
	sort.SliceStable(out, func(i, j int) bool {
		vi, oki := constant.Int64Val(out[i].Val())
		vj, okj := constant.Int64Val(out[j].Val())
		if oki && okj && vi != vj {
			return vi < vj
		}
		return out[i].Name() < out[j].Name()
	})
	return out
}

// switchCoverage computes which enum constants the switch fails to handle.
// checkable is false when a case expression has no known constant value
// (the analyzer cannot reason about dynamic cases). Constants sharing a
// value (aliases) count as one: covering any of them covers the value.
func switchCoverage(p *Package, sw *ast.SwitchStmt, consts []*types.Const) (missing []string, defaulted, defaultPanics, checkable bool) {
	covered := map[string]bool{} // by exact constant value string
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaulted = true
			defaultPanics = bodyPanics(cc.Body)
			continue
		}
		for _, e := range cc.List {
			v := constValueOf(p, e)
			if v == nil {
				return nil, defaulted, defaultPanics, false
			}
			covered[v.ExactString()] = true
		}
	}
	seen := map[string]bool{}
	for _, c := range consts {
		key := c.Val().ExactString()
		if covered[key] || seen[key] {
			continue
		}
		seen[key] = true
		missing = append(missing, c.Name())
	}
	return missing, defaulted, defaultPanics, true
}

// constValueOf resolves a case expression's constant value across both
// check units.
func constValueOf(p *Package, e ast.Expr) constant.Value {
	for _, info := range []*types.Info{p.Info, p.XInfo} {
		if info == nil {
			continue
		}
		if tv, ok := info.Types[e]; ok && tv.Value != nil {
			return tv.Value
		}
	}
	return nil
}

// bodyPanics reports whether a case body contains a direct panic call —
// the hardware-assert idiom making unlisted states crash loudly.
func bodyPanics(body []ast.Stmt) bool {
	for _, s := range body {
		es, ok := s.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
	}
	return false
}
