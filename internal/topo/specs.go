package topo

// Figure1 returns the 16x16 multipath network of the paper's Figure 1:
// two stages of 4x2 (inputs x radix) dilation-2 routers followed by a
// stage of 4x4 dilation-1 routers, with two network connections per
// endpoint. Losing any single final-stage router isolates no endpoint.
func Figure1() Spec {
	return Spec{
		Endpoints:     16,
		EndpointLinks: 2,
		Stages: []StageSpec{
			{Inputs: 4, Radix: 2, Dilation: 2},
			{Inputs: 4, Radix: 2, Dilation: 2},
			{Inputs: 4, Radix: 4, Dilation: 1},
		},
		Wiring: WiringInterleave,
	}
}

// Figure3 returns the 3-stage, radix-4 network simulated in the paper's
// Figure 3: the first two stages are 8x8 routers configured in dilation-2
// (radix-4) mode, the final stage runs dilation-1 radix-4; 64 endpoints
// with two network connections each.
func Figure3() Spec {
	return Spec{
		Endpoints:     64,
		EndpointLinks: 2,
		Stages: []StageSpec{
			{Inputs: 8, Radix: 4, Dilation: 2},
			{Inputs: 8, Radix: 4, Dilation: 2},
			{Inputs: 4, Radix: 4, Dilation: 1},
		},
		Wiring: WiringInterleave,
	}
}

// Table3Network32 returns the 32-node multibutterfly used for the t20,32
// application-latency estimates of Table 3 when built from METROJR-class
// 4x4 routers: three dilation-2 radix-2 stages and a final dilation-1
// radix-4 stage (4 routing stages total, as the Table 3 rows assume).
func Table3Network32() Spec {
	return Spec{
		Endpoints:     32,
		EndpointLinks: 2,
		Stages: []StageSpec{
			{Inputs: 4, Radix: 2, Dilation: 2},
			{Inputs: 4, Radix: 2, Dilation: 2},
			{Inputs: 4, Radix: 2, Dilation: 2},
			{Inputs: 4, Radix: 4, Dilation: 1},
		},
		Wiring: WiringInterleave,
	}
}

// Table3Network32Radix8 returns the 2-stage 32-node network assumed for
// the Table 3 rows built from 8x8 METRO routers: a dilation-2 radix-4
// stage followed by a dilation-1 radix-8 stage.
func Table3Network32Radix8() Spec {
	return Spec{
		Endpoints:     32,
		EndpointLinks: 2,
		Stages: []StageSpec{
			{Inputs: 8, Radix: 4, Dilation: 2},
			{Inputs: 8, Radix: 8, Dilation: 1},
		},
		Wiring: WiringInterleave,
	}
}
