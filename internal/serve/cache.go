package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"metro/internal/metrofuzz"
)

// EngineRevision names the simulator-semantics generation baked into
// every cache key. The engine is deterministic — a result is a pure
// function of (canonical spec, execution options, engine revision) —
// so a cached entry stays valid for exactly as long as the engine
// produces bit-identical results for the same spec. Bump this string in
// any PR that changes simulation results (new protocol behaviour,
// changed PRNG consumption, oracle output format), and every old entry
// misses instead of serving stale bytes.
const EngineRevision = "metro-pr9"

// Engine selects which execution paths a job runs under the oracle
// battery.
type Engine string

const (
	// EngineReference runs the serial reference engine (plus the
	// parallel differential leg when the spec's wk field asks for one).
	EngineReference Engine = "reference"
	// EngineKernel additionally re-runs the scenario on the compiled
	// struct-of-arrays kernel and demands bit-identity with the
	// reference — the serving-path version of `metrofuzz -kernel`.
	EngineKernel Engine = "kernel"
)

// Key returns the content address of a job: SHA-256 over the engine
// revision, the execution options, and the canonical spec line.
//
// The spec must be the *canonical* encoding — EncodeSpec of the decoded
// scenario — never the client's raw bytes: the mf1 grammar admits one
// scenario under many field orders, and the whole point of content
// addressing is that equal scenarios collide. Callers get canonicality
// for free by round-tripping through DecodeSpecStrict + EncodeSpec;
// FuzzCanonicalKey pins the invariant against the spec-codec corpus.
//
// The execution options are part of the address because they change the
// response body (EngineKernel adds the kernel oracle verdict, trace
// adds the mtr1 stream), not because they change simulation results —
// determinism guarantees they cannot.
func Key(canonicalSpec string, engine Engine, trace bool) string {
	h := sha256.New()
	h.Write([]byte(EngineRevision))
	h.Write([]byte{0})
	h.Write([]byte(engine))
	h.Write([]byte{0})
	if trace {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	h.Write([]byte{0})
	h.Write([]byte(canonicalSpec))
	return hex.EncodeToString(h.Sum(nil))
}

// KeyOf canonicalizes a decoded scenario and returns its content
// address.
func KeyOf(s metrofuzz.Scenario, engine Engine, trace bool) string {
	return Key(metrofuzz.EncodeSpec(s), engine, trace)
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	Budget    int64  `json:"budget"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Cache is the content-addressed result store: canonical key → the
// exact response bytes served for that job, with LRU eviction against a
// byte budget. Entries are immutable once stored (they are marshaled
// results of deterministic runs), so a hit is served by writing the
// stored bytes verbatim — the e2e harness asserts hit and miss bodies
// are byte-identical.
type Cache struct {
	mu        sync.Mutex
	budget    int64
	used      int64
	lru       *list.List // front = most recently used
	index     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache builds a cache bounded to budget bytes of stored bodies
// (keys and bookkeeping ride free). A zero or negative budget still
// admits single entries one at a time — every Put evicts down to the
// budget *after* insertion, so the newest entry always lands.
func NewCache(budget int64) *Cache {
	return &Cache{
		budget: budget,
		lru:    list.New(),
		index:  make(map[string]*list.Element),
	}
}

// Get returns the stored body for key and promotes the entry to
// most-recently-used. The returned slice is the stored backing array:
// callers must treat it as read-only.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.index[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Put stores body under key and evicts least-recently-used entries
// until the byte budget holds again. Re-putting an existing key
// replaces the body (the entry keys are content addresses, so the bytes
// can only differ if the caller broke the determinism contract — the
// replace keeps the cache self-consistent anyway).
func (c *Cache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		e := el.Value.(*cacheEntry)
		c.used += int64(len(body)) - int64(len(e.body))
		e.body = body
		c.lru.MoveToFront(el)
	} else {
		c.index[key] = c.lru.PushFront(&cacheEntry{key: key, body: body})
		c.used += int64(len(body))
	}
	for c.used > c.budget && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.index, e.key)
		c.used -= int64(len(e.body))
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   c.lru.Len(),
		Bytes:     c.used,
		Budget:    c.budget,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
