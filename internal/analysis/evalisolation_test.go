package analysis

import "testing"

// isoFixture has a component whose Eval (and a reachable helper) writes
// and calls into another component in the same package.
const isoFixture = `package core

type Other struct{ x int }

func (o *Other) Eval(cycle uint64)   {}
func (o *Other) Commit(cycle uint64) {}
func (o *Other) Poke()               { o.x++ }

type Comp struct {
	n     int
	other *Other
}

func (c *Comp) Eval(cycle uint64) {
	c.n++
	c.other.x = 1
	c.other.Poke()
	c.helper()
}

func (c *Comp) Commit(cycle uint64) {}

func (c *Comp) helper() {
	c.other.x = 2
}
`

func TestEvalIsolationFlagsForeignComponentState(t *testing.T) {
	got := runRule(t, EvalIsolation(), "metro/internal/core", map[string]string{
		"iso.go": isoFixture,
	})
	wantFindings(t, got, "eval-isolation",
		[2]any{"iso.go", 16}, // c.other.x = 1
		[2]any{"iso.go", 17}, // c.other.Poke()
		[2]any{"iso.go", 24}, // helper: c.other.x = 2
	)
}

func TestEvalIsolationLinkPackageExempt(t *testing.T) {
	// The identical shapes inside internal/link are the sanctioned
	// inter-component interface and raise nothing.
	got := runRule(t, EvalIsolation(), "metro/internal/link", map[string]string{
		"iso.go": isoFixture,
	})
	wantFindings(t, got, "eval-isolation")
}

func TestEvalIsolationOutsideInternalExempt(t *testing.T) {
	got := runRule(t, EvalIsolation(), "metro/cmd/tool", map[string]string{
		"iso.go": isoFixture,
	})
	wantFindings(t, got, "eval-isolation")
}

func TestEvalIsolationSharedDirectives(t *testing.T) {
	got := runRule(t, EvalIsolation(), "metro/internal/core", map[string]string{
		"ok.go": `package core

type Other struct{ x int }

func (o *Other) Eval(cycle uint64)   {}
func (o *Other) Commit(cycle uint64) {}

type Comp struct{ other *Other }

func (c *Comp) Eval(cycle uint64) {
	//metrovet:shared co-located with its partner by construction
	c.other.x = 1
	c.helper()
}

func (c *Comp) Commit(cycle uint64) {}

// helper pokes the partner every cycle.
//
//metrovet:shared this component runs in the serialized epilogue
func (c *Comp) helper() {
	c.other.x = 2
}
`,
	})
	wantFindings(t, got, "eval-isolation")
}

func TestEvalIsolationBareDirectiveSuppressesNothing(t *testing.T) {
	got := runRule(t, EvalIsolation(), "metro/internal/core", map[string]string{
		"bare.go": `package core

type Other struct{ x int }

func (o *Other) Eval(cycle uint64)   {}
func (o *Other) Commit(cycle uint64) {}

type Comp struct{ other *Other }

func (c *Comp) Eval(cycle uint64) {
	//metrovet:shared
	c.other.x = 1
}

func (c *Comp) Commit(cycle uint64) {}
`,
	})
	wantFindings(t, got, "eval-isolation", [2]any{"bare.go", 12})
}

// TestEvalIsolationOwnComponentSelfCalls pins the root-type refinement:
// a sub-object helper (a NIC's sender) calling back into the component
// whose Eval roots the tree stays inside that component's own state.
func TestEvalIsolationOwnComponentSelfCalls(t *testing.T) {
	got := runRule(t, EvalIsolation(), "metro/internal/nic", map[string]string{
		"self.go": `package nic

type sub struct{ ep *Ep }

func (s *sub) fire() { s.ep.finish() }

type hook interface{ Done(int) }

type Ep struct {
	s    sub
	h    hook
	done int
}

func (e *Ep) Eval(cycle uint64) {
	e.s.fire()
	if e.h != nil {
		e.h.Done(e.done) // interface call: not traceable, not flagged
	}
}

func (e *Ep) Commit(cycle uint64) {}

func (e *Ep) finish() { e.done++ }
`,
	})
	wantFindings(t, got, "eval-isolation")
}

func TestEvalIsolationPackageLevelState(t *testing.T) {
	got := runRule(t, EvalIsolation(), "metro/internal/core", map[string]string{
		"global.go": `package core

var tally int

type Comp struct{}

func (c *Comp) Eval(cycle uint64)   { tally++ }
func (c *Comp) Commit(cycle uint64) {}
`,
	})
	wantFindings(t, got, "eval-isolation", [2]any{"global.go", 7})
}

// TestEvalIsolationTracerSinkFlagsMutation pins the telemetry-sink
// extension: a tracer implementation (the router-tracer callback
// vocabulary) runs inside component Eval on a worker shard, so writes
// to component state or calls onto components from its call tree are
// isolation violations even though the sink itself is not a component.
func TestEvalIsolationTracerSinkFlagsMutation(t *testing.T) {
	got := runRule(t, EvalIsolation(), "metro/internal/netsim", map[string]string{
		"sink.go": `package netsim

type RouterID struct{ Stage, Index, Lane int }

type Comp struct{ n int }

func (c *Comp) Eval(cycle uint64)   {}
func (c *Comp) Commit(cycle uint64) {}

type sink struct {
	counts map[int]int
	victim *Comp
}

func (s *sink) Allocated(cycle uint64, id RouterID, fp, bp int) {
	s.counts[id.Stage]++ // own state: fine
	s.victim.n++         // mutates a component: flagged
}
func (s *sink) Blocked(cycle uint64, id RouterID, fp, dir int, fast bool) {
	s.victim.poke() // calls a component: flagged
}
func (s *sink) Released(cycle uint64, id RouterID, fp, bp int) {}
func (s *sink) Reversed(cycle uint64, id RouterID, fp int, towardSource bool) {}

func (c *Comp) poke() { c.n++ }
`,
	})
	wantFindings(t, got, "eval-isolation",
		[2]any{"sink.go", 17}, // s.victim.n++
		[2]any{"sink.go", 20}, // s.victim.poke()
	)
}

// TestEvalIsolationEndpointSinkAndCleanSink: the Message-shaped
// endpoint sink is rooted too, and a sink that only records into its
// own buffers raises nothing.
func TestEvalIsolationEndpointSinkAndCleanSink(t *testing.T) {
	got := runRule(t, EvalIsolation(), "metro/internal/nic", map[string]string{
		"sink.go": `package nic

type Comp struct{ n int }

func (c *Comp) Eval(cycle uint64)   {}
func (c *Comp) Commit(cycle uint64) {}

var total int

type epSink struct{ events []uint64 }

func (s *epSink) Message(cycle uint64, ep int, kind int, id uint64, a, b int) {
	s.events = append(s.events, id) // own buffer: fine
	total++                         // package-level state: flagged
}

type cleanSink struct{ events []uint64 }

func (s *cleanSink) Message(cycle uint64, ep int, kind int, id uint64, a, b int) {
	s.events = append(s.events, id)
}
`,
	})
	wantFindings(t, got, "eval-isolation",
		[2]any{"sink.go", 14}, // total++
	)
}

// TestEvalIsolationStreamingSinkFlagsMutation pins the Recorder-tap
// extension: a method named Sink taking one event-batch slice and
// returning nothing runs on the engine's flushing goroutine, so its
// call tree is held to the observe-only contract — tallying into its
// own fields is fine, mutating a component or package-level state is
// flagged. Lookalikes (extra params, results) root nothing.
func TestEvalIsolationStreamingSinkFlagsMutation(t *testing.T) {
	got := runRule(t, EvalIsolation(), "metro/internal/netsim", map[string]string{
		"tap.go": `package netsim

type Event struct{ Kind int }

type Comp struct{ n int }

func (c *Comp) Eval(cycle uint64)   {}
func (c *Comp) Commit(cycle uint64) {}

type bridge struct {
	seen   int
	victim *Comp
}

func (b *bridge) Sink(events []Event) {
	b.seen += len(events) // own tally: fine
	b.victim.n++          // mutates a component: flagged
}

type cleanBridge struct{ seen int }

func (b *cleanBridge) Sink(events []Event) { b.seen += len(events) }

// Lookalikes: wrong shapes, not rooted.
type notTap struct{ victim *Comp }

func (n *notTap) Sink(events []Event, limit int) { n.victim.n++ }

type alsoNotTap struct{ victim *Comp }

func (n *alsoNotTap) Sink(events []Event) int { n.victim.n++; return 0 }
`,
	})
	wantFindings(t, got, "eval-isolation",
		[2]any{"tap.go", 17}, // b.victim.n++
	)
}

// TestEvalIsolationTracerShapeGuards: lookalike methods — results, a
// non-cycle first parameter, a partial router vocabulary, or a narrow
// Message — are not sinks and root nothing.
func TestEvalIsolationTracerShapeGuards(t *testing.T) {
	got := runRule(t, EvalIsolation(), "metro/internal/core", map[string]string{
		"shapes.go": `package core

type Comp struct{ n int }

func (c *Comp) Eval(cycle uint64)   {}
func (c *Comp) Commit(cycle uint64) {}

type notSink struct{ victim *Comp }

// Partial router vocabulary: three of four callbacks.
func (s *notSink) Allocated(cycle uint64, a, b int) { s.victim.n++ }
func (s *notSink) Blocked(cycle uint64, a int)      { s.victim.n++ }
func (s *notSink) Released(cycle uint64, a int)     { s.victim.n++ }

// Message without the cycle-first shape.
func (s *notSink) Message(text string, a, b, c, d int) { s.victim.n++ }

// Narrow Message (a logger, not the endpoint tracer).
type logger struct{ victim *Comp }

func (l *logger) Message(cycle uint64, level int) { l.victim.n++ }
`,
	})
	wantFindings(t, got, "eval-isolation")
}
