// metrosim runs cycle-accurate load-latency experiments on METRO networks,
// reproducing the paper's Figure 3 and supporting parameter sweeps over
// its configuration space.
//
// Usage:
//
//	metrosim                      # Figure 3: latency vs load, default sweep
//	metrosim -network fig1        # run on the 16x16 Figure 1 network
//	metrosim -loads 0.1,0.5,0.9   # custom offered loads
//	metrosim -pattern hotspot     # adversarial traffic
//	metrosim -bytes 20 -cycles 20000 -warmup 4000
//	metrosim -detailed            # detailed blocked replies instead of BCB
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"metro"
	"metro/internal/stats"
	"metro/internal/telemetry"
)

func main() {
	network := flag.String("network", "fig3", "topology: fig1, fig3, net32, net32r8")
	loadsArg := flag.String("loads", "0.05,0.15,0.3,0.45,0.6,0.75,0.9", "offered loads")
	pattern := flag.String("pattern", "uniform", "traffic: uniform, hotspot, bitrev, transpose")
	msgBytes := flag.Int("bytes", 20, "message payload bytes")
	width := flag.Int("width", 8, "channel width w")
	dp := flag.Int("dp", 1, "router data pipeline stages")
	vtd := flag.Int("vtd", 1, "link pipeline stages")
	hw := flag.Int("hw", 0, "header words per router")
	cascadeW := flag.Int("cascade", 1, "router width-cascade factor c")
	warmup := flag.Uint64("warmup", 3000, "warmup cycles")
	cycles := flag.Uint64("cycles", 12000, "measured cycles")
	seed := flag.Int64("seed", 1, "simulation seed")
	detailed := flag.Bool("detailed", false, "detailed blocked replies instead of fast reclamation")
	outstanding := flag.Int("outstanding", 1, "messages in flight per endpoint")
	openloop := flag.Bool("openloop", false, "Bernoulli (open-loop) injection instead of processor-stall")
	hist := flag.Bool("hist", false, "print the latency histogram of the highest-load point")
	traceOut := flag.String("trace", "", "rerun the highest-load point with the flight recorder and write its mtr1 trace to this file")
	metrics := flag.Bool("metrics", false, "rerun the highest-load point with the flight recorder and print its telemetry summary")
	workers := flag.Int("workers", 0, "parallel Eval/Commit workers; 0 runs the serial reference engine")
	kernel := flag.Bool("kernel", false, "run on the compiled flat kernel (bit-identical; see docs/KERNEL.md)")
	flag.Parse()

	var spec metro.TopologySpec
	switch *network {
	case "fig1":
		spec = metro.Figure1Topology()
	case "fig3":
		spec = metro.Figure3Topology()
	case "net32":
		spec = metro.Topology32()
	case "net32r8":
		spec = metro.Topology32Radix8()
	default:
		fmt.Fprintf(os.Stderr, "metrosim: unknown network %q\n", *network)
		os.Exit(2)
	}

	var pat metro.TrafficPattern
	switch *pattern {
	case "uniform":
		pat = metro.UniformTraffic{}
	case "hotspot":
		pat = metro.HotspotTraffic{Target: 0, Fraction: 0.3}
	case "bitrev":
		pat = metro.BitReverseTraffic{}
	case "transpose":
		pat = metro.TransposeTraffic{}
	default:
		fmt.Fprintf(os.Stderr, "metrosim: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}

	var loads []float64
	for _, s := range strings.Split(*loadsArg, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrosim: bad load %q\n", s)
			os.Exit(2)
		}
		loads = append(loads, v)
	}

	run := metro.RunSpec{
		Net: metro.NetworkParams{
			Spec:         spec,
			Width:        *width,
			HeaderWords:  *hw,
			DataPipe:     *dp,
			LinkDelay:    *vtd,
			FastReclaim:  !*detailed,
			CascadeWidth: *cascadeW,
			Seed:         *seed,
			RetryLimit:   1000,
			Workers:      *workers,
			Kernel:       *kernel,
		},
		MsgBytes:      *msgBytes,
		Pattern:       pat,
		Outstanding:   *outstanding,
		WarmupCycles:  *warmup,
		MeasureCycles: *cycles,
		Seed:          *seed + 1000,
	}

	model := "processor-stall"
	if *openloop {
		model = "open-loop"
	}
	engine := "serial engine"
	if *workers > 0 {
		engine = fmt.Sprintf("parallel engine, workers=%d", *workers)
	}
	if *kernel {
		engine += ", compiled kernel"
	}
	fmt.Printf("network %s, %d endpoints, %s %s traffic, %d-byte messages, w=%d dp=%d vtd=%d hw=%d c=%d, %s\n",
		*network, spec.Endpoints, model, pat.Name(), *msgBytes, *width, *dp, *vtd, *hw, *cascadeW, engine)
	sweep := metro.LoadSweep
	if *openloop {
		sweep = metro.OpenLoopSweep
	}
	points, err := sweep(run, loads)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metrosim: %v\n", err)
		os.Exit(1)
	}
	t := stats.Table{Header: []string{
		"offered", "accepted", "messages", "mean lat", "p50", "p95", "max", "retries/msg",
	}}
	for _, p := range points {
		t.Add(
			fmt.Sprintf("%.2f", p.OfferedLoad),
			fmt.Sprintf("%.2f", p.AcceptedLoad),
			fmt.Sprintf("%d", p.Messages),
			fmt.Sprintf("%.1f", p.Latency.Mean),
			fmt.Sprintf("%.0f", p.Latency.P50),
			fmt.Sprintf("%.0f", p.Latency.P95),
			fmt.Sprintf("%.0f", p.Latency.Max),
			fmt.Sprintf("%.2f", p.RetriesPerMessage),
		)
	}
	fmt.Print(t.String())
	if *hist && len(points) > 0 {
		last := points[len(points)-1]
		fmt.Printf("\nlatency distribution at offered load %.2f (mean %.1f, p95 %.0f):\n",
			last.OfferedLoad, last.Latency.Mean, last.Latency.P95)
		run.Load = last.OfferedLoad
		printHistogram(run, *openloop)
	}
	if (*traceOut != "" || *metrics) && len(points) > 0 {
		run.Load = points[len(points)-1].OfferedLoad
		recordPoint(run, *openloop, *traceOut, *metrics)
	}
}

// recordPoint reruns one load point with the flight recorder attached,
// writing the recorded trace and/or printing its telemetry summary.
// Reruns are deterministic, so the recorded point is the same
// experiment the sweep's last row reported.
func recordPoint(run metro.RunSpec, openloop bool, traceOut string, metrics bool) {
	rec := telemetry.New(telemetry.Options{})
	run.Net.Recorder = rec
	var err error
	if openloop {
		_, err = metro.RunOpenLoop(run)
	} else {
		_, err = metro.RunClosedLoop(run)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "metrosim: %v\n", err)
		os.Exit(1)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrosim: %v\n", err)
			os.Exit(1)
		}
		if err := telemetry.Encode(f, rec.Snapshot()); err != nil {
			fmt.Fprintf(os.Stderr, "metrosim: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "metrosim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace: %d events written to %s\n", rec.Len(), traceOut)
	}
	if metrics {
		fmt.Printf("\ntelemetry at offered load %.2f:\n", run.Load)
		fmt.Print(telemetry.Summarize(rec.Snapshot()).Render())
	}
}

// printHistogram reruns one load point collecting raw per-message
// latencies and renders their distribution.
func printHistogram(run metro.RunSpec, openloop bool) {
	var lat stats.Sample
	warmup := run.WarmupCycles
	run.Net.OnResult = func(r metro.Result) {
		if r.Done >= warmup {
			lat.Add(float64(r.Done - r.Injected))
		}
	}
	var err error
	if openloop {
		_, err = metro.RunOpenLoop(run)
	} else {
		_, err = metro.RunClosedLoop(run)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "metrosim: %v\n", err)
		return
	}
	fmt.Print(lat.Histogram(12, 44))
}
