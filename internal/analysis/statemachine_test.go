package analysis

import (
	"strings"
	"testing"
)

// loadMachine extracts typeName's machine from an in-memory fixture.
func loadMachine(t *testing.T, typeName string, files map[string]string) *Machine {
	t.Helper()
	p := loadFixture(t, "metro/internal/core", files)
	m, err := ExtractMachine(p, typeName)
	if err != nil {
		t.Fatalf("ExtractMachine: %v", err)
	}
	return m
}

func wantTransitions(t *testing.T, m *Machine, want ...Transition) {
	t.Helper()
	got := map[Transition]bool{}
	for _, tr := range m.Transitions {
		got[tr] = true
	}
	for _, tr := range want {
		if !got[tr] {
			t.Errorf("missing transition %+v\nextracted:\n%s", tr, m.Render("fixture"))
		}
	}
	if len(m.Transitions) != len(want) {
		t.Errorf("got %d transitions, want %d:\n%s", len(m.Transitions), len(want), m.Render("fixture"))
	}
}

func TestExtractMachineDirectWrites(t *testing.T) {
	m := loadMachine(t, "ph", map[string]string{
		"a.go": `package core

type ph uint8

const (
	phA ph = iota
	phB
	phC
)

type box struct{ state ph }

func (b *box) step(hot bool) {
	switch b.state {
	case phA:
		if hot {
			b.state = phB
		}
	case phB:
		b.state = phC
	case phC:
		// terminal
	}
}
`,
	})
	wantTransitions(t, m,
		Transition{From: "phA", Guard: "hot", Next: "phB", Via: "box.step"},
		Transition{From: "phB", Guard: "", Next: "phC", Via: "box.step"},
	)
}

func TestExtractMachineCompositeResetAndInlinedHelper(t *testing.T) {
	m := loadMachine(t, "ph", map[string]string{
		"a.go": `package core

type ph uint8

const (
	phA ph = iota
	phB
	phC
)

type box struct {
	state ph
	n     int
}

// flip threads the target state through a parameter, the router idiom.
func (b *box) flip(to ph) {
	b.n = 0
	b.state = to
}

func (b *box) step() {
	switch b.state {
	case phA:
		b.flip(phB)
	case phB:
		*b = box{state: phC}
	case phC:
		*b = box{n: 1} // absent state field: zero value phA
	}
}
`,
	})
	wantTransitions(t, m,
		Transition{From: "phA", Guard: "", Next: "phB", Via: "box.flip"},
		Transition{From: "phB", Guard: "", Next: "phC", Via: "box.step"},
		Transition{From: "phC", Guard: "", Next: "phA", Via: "box.step"},
	)
}

func TestExtractMachineReturnsAndDefault(t *testing.T) {
	m := loadMachine(t, "ph", map[string]string{
		"a.go": `package core

type ph uint8

const (
	phA ph = iota
	phB
	phC
)

// next is used in value position elsewhere, so it stays a root and its
// returns carry the table (the TAP Next idiom).
func next(s ph, up bool) ph {
	if up {
		switch s {
		case phA:
			return phB
		case phB, phC:
			return phC
		}
	}
	switch s {
	case phC:
		return phA
	default:
		return s // unresolvable: no transition
	}
}
`,
	})
	wantTransitions(t, m,
		Transition{From: "phA", Guard: "up", Next: "phB", Via: "next"},
		Transition{From: "phB", Guard: "up", Next: "phC", Via: "next"},
		Transition{From: "phC", Guard: "up", Next: "phC", Via: "next"},
		Transition{From: "phC", Guard: "", Next: "phA", Via: "next"},
	)
}

func TestExtractMachineGuardSwitchAndOutsideWrite(t *testing.T) {
	m := loadMachine(t, "ph", map[string]string{
		"a.go": `package core

type ph uint8

const (
	phA ph = iota
	phB
)

type kind uint8

const (
	kX kind = iota
	kY
	kZ
)

type box struct{ state ph }

func (b *box) step(k kind) {
	switch b.state {
	case phA:
		switch k {
		case kX:
			b.state = phB
		case kY, kZ:
			// hold
		}
	case phB:
	}
}

// kill writes outside any state switch: recorded with from "*".
func (b *box) kill() { b.state = phA }
`,
	})
	wantTransitions(t, m,
		Transition{From: "phA", Guard: "k == kX", Next: "phB", Via: "box.step"},
		Transition{From: "*", Guard: "", Next: "phA", Via: "box.kill"},
	)
}

func TestMachineRenderAndDiff(t *testing.T) {
	m := loadMachine(t, "ph", map[string]string{
		"a.go": `package core

type ph uint8

const (
	phA ph = iota
	phB
)

type box struct{ state ph }

func (b *box) step() {
	switch b.state {
	case phA:
		b.state = phB
	case phB:
		b.state = phA
	}
}
`,
	})
	text := m.Render("core.ph")
	for _, want := range []string{
		"# metrovet state machine: core.ph",
		"states: phA phB",
		"phA | ",
		"| phB | box.step",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q:\n%s", want, text)
		}
	}
	if d := DiffTables(text, text); d != nil {
		t.Errorf("self-diff not empty: %v", d)
	}
	changed := strings.Replace(text, "phB | box.step", "phA | box.step", 1)
	d := DiffTables(text, changed)
	if len(d) == 0 {
		t.Fatalf("diff of altered table is empty")
	}
	joined := strings.Join(d, "\n")
	if !strings.Contains(joined, "- ") || !strings.Contains(joined, "+ ") {
		t.Errorf("diff lacks both sides:\n%s", joined)
	}
}
