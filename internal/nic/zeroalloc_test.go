package nic

import (
	"testing"

	"metro/internal/link"
)

// BenchmarkEndpointSteadyCycle measures one clock cycle of an endpoint
// streaming a long message out an injection link, then idling in the
// listening state. Per-attempt setup (header build, payload packing)
// happens before the timer starts; every measured cycle must stay off the
// heap, and TestZeroAllocEndpointSteadyCycle gates that.
func BenchmarkEndpointSteadyCycle(b *testing.B) {
	cfg := Config{
		Width: 8,
		Header: HeaderSpec{Width: 8, Stages: []StageHeader{
			{DirBits: 2}, {DirBits: 2},
		}},
		RouteDigits:   func(dest int) []int { return []int{dest & 3, (dest >> 2) & 3} },
		ListenTimeout: 1 << 62, // the quiet listening tail must stay allocation-free
	}
	e, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	l := link.New("inj", 1)
	e.AttachInject(l.A())
	e.Offer(Message{Dest: 1, Payload: make([]byte, 4096)})
	var cycle uint64
	step := func() {
		e.Eval(cycle)
		l.Eval(cycle)
		e.Commit(cycle)
		l.Commit(cycle)
		cycle++
	}
	// First cycles run begin(): per-attempt stream construction allocates
	// by design and must not be counted against the steady state.
	for i := 0; i < 8; i++ {
		step()
	}
	if !e.Busy() {
		b.Fatal("sender did not start")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		step()
	}
}

// TestZeroAllocEndpointSteadyCycle asserts the steady-state endpoint cycle
// performs zero heap allocations per cycle, backing the static
// hot-path-alloc analyzer with a dynamic gate.
func TestZeroAllocEndpointSteadyCycle(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	if testing.Short() {
		t.Skip("benchmark-backed allocation gate; CI runs it in the dedicated -run ZeroAlloc step")
	}
	res := testing.Benchmark(BenchmarkEndpointSteadyCycle)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("endpoint steady cycle: %d allocs/op, want 0", a)
	}
}
