package netsim

import (
	"testing"

	"metro/internal/topo"
)

func TestStageOfParsing(t *testing.T) {
	cases := map[string]int{
		"s0r3":    0,
		"s2r11":   2,
		"s10r0":   10,
		"s1r4.m0": 1,
		"weird":   -1,
		"sxr1":    -1,
		"":        -1,
	}
	//metrovet:ordered independent assertions per table entry
	for name, want := range cases {
		if got := stageOf(name); got != want {
			t.Errorf("stageOf(%q) = %d, want %d", name, got, want)
		}
	}
}

func TestCountersAggregatePerStage(t *testing.T) {
	counters := NewCounters()
	n, err := Build(Params{
		Spec: topo.Figure1(), Width: 8, DataPipe: 1, LinkDelay: 1,
		FastReclaim: true, Seed: 3, RetryLimit: 500, Tracer: counters,
	})
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 16; src++ {
		for d := 1; d <= 4; d++ {
			n.Send(src, (src+d*3)%16, []byte{byte(src)})
		}
	}
	if !n.RunUntilQuiet(500000) {
		t.Fatal("network did not go quiet")
	}
	stats := counters.PerStage(3)
	totalAlloc := uint64(0)
	for _, s := range stats {
		totalAlloc += s.Allocated
		if s.Allocated == 0 {
			t.Errorf("stage %d saw no allocations", s.Stage)
		}
		if s.Allocated < s.Reversed/2 {
			t.Errorf("stage %d reversal count inconsistent: %+v", s.Stage, s)
		}
	}
	// Every successful message allocates once per stage; blocked attempts
	// allocate in their prefix stages. So stage 0 must see at least as
	// many allocations as any later stage.
	if stats[0].Allocated < stats[2].Allocated {
		t.Errorf("allocation counts should not grow downstream: %+v", stats)
	}
	if counters.String() == "" {
		t.Error("String() empty")
	}
	// Blocking rate well-defined.
	for _, s := range stats {
		if r := s.BlockRate(); r < 0 || r >= 1 {
			t.Errorf("stage %d block rate %f out of range", s.Stage, r)
		}
	}
}
