package scan

import (
	"fmt"

	"metro/internal/core"
	"metro/internal/link"
	"metro/internal/word"
)

// MultiTAP is METRO's extension of 1149.1: a component carries sp
// independent TAPs, each a complete controller reaching the same shared
// registers, so a fault in one scan path leaves the component
// configurable and diagnosable through another.
type MultiTAP struct {
	taps     []*TAP
	boundary *Boundary
}

// NewMultiTAP builds sp TAPs for a router, all multiplexed onto one shared
// CONFIG register and one shared boundary register (SAMPLE and EXTEST).
// The component id appears in every TAP's IDCODE with the TAP index in the
// top nibble.
func NewMultiTAP(r *core.Router, id uint32) *MultiTAP {
	sp := r.Config().ScanPaths
	cfg := NewSettingsRegister(r)
	boundary := NewBoundary(r)
	m := &MultiTAP{boundary: boundary}
	for i := 0; i < sp; i++ {
		regs := map[Instruction]Register{
			CONFIG: cfg,
			SAMPLE: boundary,
			EXTEST: boundary,
		}
		tapID := id&0x0fffffff | uint32(i)<<28
		m.taps = append(m.taps, NewTAP(fmt.Sprintf("%s.tap%d", r.Name(), i), tapID, regs))
	}
	return m
}

// Boundary returns the component's boundary-scan register; add it to the
// simulation engine to make EXTEST drives take effect.
func (m *MultiTAP) Boundary() *Boundary { return m.boundary }

// TAPs returns the component's scan paths.
func (m *MultiTAP) TAPs() []*TAP { return m.taps }

// Working returns a driver for the first healthy TAP, or nil if every
// scan path is faulted.
func (m *MultiTAP) Working() *Driver {
	for _, t := range m.taps {
		if !t.Broken() {
			return NewDriver(t)
		}
	}
	return nil
}

// LoadSettings writes router settings through any healthy TAP, returning
// false when no scan path works.
func (m *MultiTAP) LoadSettings(bits []bool) bool {
	d := m.Working()
	if d == nil {
		return false
	}
	d.Reset()
	d.WriteRegister(CONFIG, bits)
	return true
}

// ReadSettings reads the live configuration through any healthy TAP.
func (m *MultiTAP) ReadSettings(n int) ([]bool, bool) {
	d := m.Working()
	if d == nil {
		return nil, false
	}
	d.Reset()
	return d.ReadRegister(CONFIG, n), true
}

// LoopbackResult reports a boundary test of one isolated link.
type LoopbackResult struct {
	// Passed is true when every pattern arrived unmodified.
	Passed bool
	// StuckHigh and StuckLow are masks of payload bits observed stuck.
	StuckHigh, StuckLow uint32
	// Patterns counts test words driven.
	Patterns int
}

// LoopbackTest exercises an isolated link with EXTEST-style patterns: the
// A end drives each pattern while the B end samples, localizing stuck
// payload bits. Both attached ports must have been disabled (via CONFIG)
// first, so the patterns cannot disturb live traffic — this is the
// paper's on-line diagnosis flow. The walking-ones and walking-zeros
// patterns over the given width are always included.
func LoopbackTest(l *link.Link, width int, extra []uint32) LoopbackResult {
	res := LoopbackResult{Passed: true}
	patterns := []uint32{0, word.Mask(width)}
	for b := 0; b < width; b++ {
		patterns = append(patterns, 1<<uint(b))
		patterns = append(patterns, word.Mask(width)&^(1<<uint(b)))
	}
	patterns = append(patterns, extra...)

	stuckHighCand := word.Mask(width)
	stuckLowCand := word.Mask(width)
	for _, p := range patterns {
		l.A().Send(word.MakeData(p, width))
		for i := 0; i < l.Delay(); i++ {
			l.Eval(0)
			l.Commit(0)
		}
		got := l.B().Recv()
		res.Patterns++
		if got.Kind != word.Data || got.Payload != p&word.Mask(width) {
			res.Passed = false
		}
		if got.Kind == word.Data {
			// A bit stuck high reads 1 where we drove 0 and never reads 0.
			stuckHighCand &= got.Payload
			stuckLowCand &= ^got.Payload
		}
	}
	// Only bits that were constant across ALL patterns are stuck.
	res.StuckHigh = stuckHighCand
	res.StuckLow = stuckLowCand & word.Mask(width)
	if res.Passed {
		res.StuckHigh, res.StuckLow = 0, 0
	}
	return res
}
