// Package metrofuzz is the model-based randomized conformance harness
// for the METRO simulator: it generates whole simulation scenarios —
// topology, engine configuration, traffic schedule and dynamic fault
// schedule — from a single seed, executes them under a battery of
// behavioural oracles (exactly-once delivery with payload checksums,
// message conservation, bounded progress, per-cycle router invariants,
// and bit-for-bit serial/parallel differential equality), and shrinks
// any failing scenario to a minimal replayable spec.
//
// The paper's central claim is behavioural: source-responsible endpoints
// plus dilated crossbars deliver every message exactly once under
// arbitrary congestion and dynamic faults (paper, Sections 4-5). The
// hand-picked workloads of the experiment suite sample that space;
// metrofuzz walks it adversarially. Every scenario is a pure function of
// its seed, so a failure anywhere — CI, a nightly fuzz run, a developer
// laptop — reproduces everywhere from a one-line spec.
//
// See docs/FUZZING.md for the oracle catalogue and the replay/shrink
// workflow.
package metrofuzz

import (
	"fmt"
	"strconv"
	"strings"

	"metro/internal/fault"
	"metro/internal/topo"
)

// TrafficKind selects the shape of a scenario's workload schedule.
type TrafficKind uint8

const (
	// Burst offers every message up front: the maximal-contention
	// pattern, all endpoints fighting for paths at once.
	Burst TrafficKind = iota
	// Bernoulli is open-loop injection: each endpoint independently
	// generates a message with fixed probability every cycle, queueing
	// behind its backlog (load beyond saturation builds queues).
	Bernoulli
	// Stall is the closed-loop (processor-stall) model: each endpoint
	// keeps a bounded number of messages outstanding and waits a think
	// time after each completion.
	Stall
)

// String returns the spec mnemonic for the traffic kind.
func (k TrafficKind) String() string {
	switch k {
	case Burst:
		return "burst"
	case Bernoulli:
		return "bernoulli"
	case Stall:
		return "stall"
	default:
		return fmt.Sprintf("TrafficKind(%d)", uint8(k))
	}
}

func trafficKindOf(s string) (TrafficKind, error) {
	switch s {
	case "burst":
		return Burst, nil
	case "bernoulli":
		return Bernoulli, nil
	case "stall":
		return Stall, nil
	default:
		return 0, fmt.Errorf("metrofuzz: unknown traffic kind %q", s)
	}
}

// Scenario is one complete, self-contained simulation configuration: the
// value the generator produces, the runner executes, the shrinker
// minimizes, and the spec codec round-trips. Every field is plain data —
// two runs of the same Scenario are bit-for-bit identical.
type Scenario struct {
	// Preset names a canonical topology ("fig1", "fig3", "net32",
	// "net32r8"); empty means Custom carries a generated spec.
	Preset string
	// Custom is the explicit topology when Preset is empty.
	Custom topo.Spec

	// Network build parameters (see netsim.Params).
	Width            int
	HeaderWords      int
	DataPipe         int
	LinkDelay        int
	CascadeWidth     int
	FastReclaim      bool
	FirstFree        bool
	NetSeed          int64
	MaxActiveSenders int
	RetryLimit       int
	ListenTimeout    int

	// Workers is the shard count for the parallel leg of the
	// differential oracle; 0 runs the serial engine only (no
	// differential).
	Workers int

	// Traffic schedule.
	Traffic      TrafficKind
	TrafficSeed  int64
	Messages     int // total messages the schedule may offer
	RatePerMille int // Bernoulli per-endpoint per-cycle probability, in 1/1000
	Outstanding  int // Stall: in-flight bound per endpoint
	ThinkMax     int // Stall: think-time upper bound after each completion
	PayloadBytes int // fixed payload size; >= MinPayloadBytes
	InjectCycles int // cycles during which the schedule offers messages

	// Faults is the dynamic fault schedule, applied by fault.Injector.
	Faults fault.Plan
}

// MinPayloadBytes is the smallest payload the harness can tag: a 4-byte
// message ID, source, destination, declared length, and an XOR guard
// byte (see payload.go).
const MinPayloadBytes = 8

// Spec returns the scenario's topology, resolving presets.
func (s Scenario) Spec() (topo.Spec, error) {
	switch s.Preset {
	case "":
		return s.Custom, nil
	case "fig1":
		return topo.Figure1(), nil
	case "fig3":
		return topo.Figure3(), nil
	case "net32":
		return topo.Table3Network32(), nil
	case "net32r8":
		return topo.Table3Network32Radix8(), nil
	default:
		return topo.Spec{}, fmt.Errorf("metrofuzz: unknown topology preset %q", s.Preset)
	}
}

// Validate checks that the scenario is executable: the topology builds
// and every knob is inside the range the runner's oracle budget
// computation assumes.
func (s Scenario) Validate() error {
	spec, err := s.Spec()
	if err != nil {
		return err
	}
	if err := topo.Validate(spec); err != nil {
		return err
	}
	switch {
	case s.Width < 2 || s.Width > 16:
		return fmt.Errorf("metrofuzz: width %d outside [2,16]", s.Width)
	case s.HeaderWords < 0 || s.HeaderWords > 2:
		return fmt.Errorf("metrofuzz: header words %d outside [0,2]", s.HeaderWords)
	case s.DataPipe < 1 || s.DataPipe > 4:
		return fmt.Errorf("metrofuzz: data pipe %d outside [1,4]", s.DataPipe)
	case s.LinkDelay < 1 || s.LinkDelay > 4:
		return fmt.Errorf("metrofuzz: link delay %d outside [1,4]", s.LinkDelay)
	case s.CascadeWidth < 1 || s.CascadeWidth > 2:
		return fmt.Errorf("metrofuzz: cascade width %d outside [1,2]", s.CascadeWidth)
	case s.Workers < 0 || s.Workers > 8:
		return fmt.Errorf("metrofuzz: workers %d outside [0,8]", s.Workers)
	case s.MaxActiveSenders < 0 || s.MaxActiveSenders > spec.EndpointLinks:
		return fmt.Errorf("metrofuzz: max active senders %d outside [0,%d]", s.MaxActiveSenders, spec.EndpointLinks)
	case s.RetryLimit < 8 || s.RetryLimit > 1000:
		return fmt.Errorf("metrofuzz: retry limit %d outside [8,1000]", s.RetryLimit)
	case s.ListenTimeout < 50 || s.ListenTimeout > 2000:
		return fmt.Errorf("metrofuzz: listen timeout %d outside [50,2000]", s.ListenTimeout)
	case s.Messages < 1 || s.Messages > 2000:
		return fmt.Errorf("metrofuzz: message budget %d outside [1,2000]", s.Messages)
	case s.RatePerMille < 0 || s.RatePerMille > 1000:
		return fmt.Errorf("metrofuzz: rate %d outside [0,1000] per mille", s.RatePerMille)
	case s.Traffic == Bernoulli && s.RatePerMille == 0:
		return fmt.Errorf("metrofuzz: bernoulli traffic with zero rate")
	case s.Traffic == Stall && s.Outstanding < 1:
		return fmt.Errorf("metrofuzz: stall traffic with outstanding %d", s.Outstanding)
	case s.ThinkMax < 0 || s.ThinkMax > 1000:
		return fmt.Errorf("metrofuzz: think max %d outside [0,1000]", s.ThinkMax)
	case s.PayloadBytes < MinPayloadBytes || s.PayloadBytes > 64:
		return fmt.Errorf("metrofuzz: payload %d bytes outside [%d,64]", s.PayloadBytes, MinPayloadBytes)
	case s.InjectCycles < 1 || s.InjectCycles > 20000:
		return fmt.Errorf("metrofuzz: inject cycles %d outside [1,20000]", s.InjectCycles)
	}
	if len(s.Faults) > 0 {
		t, err := topo.Build(spec)
		if err != nil {
			return err
		}
		for i, e := range s.Faults {
			if err := validFault(t, e); err != nil {
				return fmt.Errorf("metrofuzz: fault %d: %w", i, err)
			}
		}
	}
	return nil
}

// validFault checks a fault event against the elaborated topology.
func validFault(t *topo.Topology, e fault.Event) error {
	spec := t.Spec
	if e.Stage < 0 {
		// Endpoint injection-link fault.
		if e.Index < 0 || e.Index >= spec.Endpoints || e.Port < 0 || e.Port >= spec.EndpointLinks {
			return fmt.Errorf("injection link ep%d.%d out of range", e.Index, e.Port)
		}
		if e.Kind == fault.RouterKill || e.Kind == fault.PortDisable {
			return fmt.Errorf("%v cannot target an injection link", e.Kind)
		}
		return nil
	}
	if e.Stage >= len(spec.Stages) {
		return fmt.Errorf("stage %d out of range", e.Stage)
	}
	if e.Index < 0 || e.Index >= t.RoutersPerStage[e.Stage] {
		return fmt.Errorf("router s%dr%d out of range", e.Stage, e.Index)
	}
	switch e.Kind {
	case fault.RouterKill:
		// Port unused.
	case fault.LinkKill, fault.LinkStuckBit, fault.PortDisable:
		if e.Port < 0 || e.Port >= spec.Stages[e.Stage].Outputs() {
			return fmt.Errorf("port %d out of range for stage %d", e.Port, e.Stage)
		}
	default:
		return fmt.Errorf("unknown fault kind %d", int(e.Kind))
	}
	return nil
}

// --- spec codec --------------------------------------------------------
//
// A scenario serializes to one line of key=value pairs:
//
//	mf1;topo=fig1;w=8;hw=0;dp=1;vtd=1;cas=1;fast=1;ff=0;wk=4;ns=7;
//	mas=1;retry=200;lt=300;tr=burst;ts=11;msgs=64;rate=0;out=0;think=0;
//	pb=12;ic=600;faults=rk@100:1.2|lk@200:0.3.1
//
// Custom topologies encode as endpoints x links : stage list, each stage
// radix.dilation.inputs:
//
//	topo=16x2:2.2.4,2.2.4,4.1.4
//
// The format is the `metrofuzz -replay` currency, so it must round-trip
// exactly (TestSpecRoundTrip) and stay stable across versions: new keys
// may be added with defaults, existing keys never change meaning.

const specVersion = "mf1"

// EncodeSpec renders the scenario as a one-line replayable spec.
func EncodeSpec(s Scenario) string {
	var b strings.Builder
	b.WriteString(specVersion)
	add := func(k, v string) {
		b.WriteByte(';')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
	}
	addInt := func(k string, v int) { add(k, strconv.Itoa(v)) }
	if s.Preset != "" {
		add("topo", s.Preset)
	} else {
		add("topo", encodeTopo(s.Custom))
	}
	addInt("w", s.Width)
	addInt("hw", s.HeaderWords)
	addInt("dp", s.DataPipe)
	addInt("vtd", s.LinkDelay)
	addInt("cas", s.CascadeWidth)
	addInt("fast", boolInt(s.FastReclaim))
	addInt("ff", boolInt(s.FirstFree))
	addInt("wk", s.Workers)
	add("ns", strconv.FormatInt(s.NetSeed, 10))
	addInt("mas", s.MaxActiveSenders)
	addInt("retry", s.RetryLimit)
	addInt("lt", s.ListenTimeout)
	add("tr", s.Traffic.String())
	add("ts", strconv.FormatInt(s.TrafficSeed, 10))
	addInt("msgs", s.Messages)
	addInt("rate", s.RatePerMille)
	addInt("out", s.Outstanding)
	addInt("think", s.ThinkMax)
	addInt("pb", s.PayloadBytes)
	addInt("ic", s.InjectCycles)
	if len(s.Faults) > 0 {
		add("faults", encodeFaults(s.Faults))
	}
	return b.String()
}

// DecodeSpec parses a one-line spec back into a Scenario and validates
// it. Surrounding whitespace is trimmed — this is the CLI `-replay`
// entry point, where the shell or a copy-paste may add a trailing
// newline. Machine submitters (metroserve) use DecodeSpecStrict.
func DecodeSpec(spec string) (Scenario, error) {
	var s Scenario
	parts := strings.Split(strings.TrimSpace(spec), ";")
	if len(parts) == 0 || parts[0] != specVersion {
		return s, fmt.Errorf("metrofuzz: spec must start with %q", specVersion)
	}
	for _, p := range parts[1:] {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			return s, fmt.Errorf("metrofuzz: malformed field %q", p)
		}
		if err := decodeField(&s, k, v); err != nil {
			return s, err
		}
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// DecodeSpecStrict is the library entry point for machine-submitted
// specs: it accepts exactly one spec line and nothing else. Where
// DecodeSpec trims surrounding whitespace (the CLI-buffered `-replay`
// path), strict mode refuses any whitespace or control byte anywhere —
// the mf1 grammar contains none, so their presence means trailing
// garbage after (or wrapped around) a valid line, and a service must
// reject it rather than silently simulate a prefix of what the client
// sent.
func DecodeSpecStrict(spec string) (Scenario, error) {
	if spec == "" {
		return Scenario{}, fmt.Errorf("metrofuzz: empty spec")
	}
	if i := strings.IndexFunc(spec, func(r rune) bool { return r <= ' ' || r == 0x7f }); i >= 0 {
		return Scenario{}, fmt.Errorf("metrofuzz: spec contains whitespace or control byte at offset %d; the mf1 grammar has none (trailing garbage?)", i)
	}
	return DecodeSpec(spec)
}

func decodeField(s *Scenario, k, v string) error {
	atoi := func() (int, error) {
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("metrofuzz: field %s: %w", k, err)
		}
		return n, nil
	}
	var err error
	switch k {
	case "topo":
		if strings.Contains(v, ":") {
			s.Preset = ""
			s.Custom, err = decodeTopo(v)
		} else {
			s.Preset = v
		}
	case "w":
		s.Width, err = atoi()
	case "hw":
		s.HeaderWords, err = atoi()
	case "dp":
		s.DataPipe, err = atoi()
	case "vtd":
		s.LinkDelay, err = atoi()
	case "cas":
		s.CascadeWidth, err = atoi()
	case "fast":
		var n int
		n, err = atoi()
		s.FastReclaim = n != 0
	case "ff":
		var n int
		n, err = atoi()
		s.FirstFree = n != 0
	case "wk":
		s.Workers, err = atoi()
	case "ns":
		s.NetSeed, err = strconv.ParseInt(v, 10, 64)
	case "mas":
		s.MaxActiveSenders, err = atoi()
	case "retry":
		s.RetryLimit, err = atoi()
	case "lt":
		s.ListenTimeout, err = atoi()
	case "tr":
		s.Traffic, err = trafficKindOf(v)
	case "ts":
		s.TrafficSeed, err = strconv.ParseInt(v, 10, 64)
	case "msgs":
		s.Messages, err = atoi()
	case "rate":
		s.RatePerMille, err = atoi()
	case "out":
		s.Outstanding, err = atoi()
	case "think":
		s.ThinkMax, err = atoi()
	case "pb":
		s.PayloadBytes, err = atoi()
	case "ic":
		s.InjectCycles, err = atoi()
	case "faults":
		s.Faults, err = decodeFaults(v)
	default:
		return fmt.Errorf("metrofuzz: unknown spec field %q", k)
	}
	return err
}

// encodeTopo renders a custom spec as endpoints x links : stages, each
// stage radix.dilation.inputs, with an optional @seed suffix for random
// wiring.
func encodeTopo(spec topo.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d:", spec.Endpoints, spec.EndpointLinks)
	for i, st := range spec.Stages {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d.%d.%d", st.Radix, st.Dilation, st.Inputs)
	}
	if spec.Wiring == topo.WiringRandom {
		fmt.Fprintf(&b, "@%d", spec.Seed)
	}
	return b.String()
}

func decodeTopo(v string) (topo.Spec, error) {
	var spec topo.Spec
	var err error
	head, stages, ok := strings.Cut(v, ":")
	if !ok {
		return spec, fmt.Errorf("metrofuzz: malformed topology %q", v)
	}
	if at := strings.IndexByte(stages, '@'); at >= 0 {
		seed, err := strconv.ParseInt(stages[at+1:], 10, 64)
		if err != nil {
			return spec, fmt.Errorf("metrofuzz: topology wiring seed: %w", err)
		}
		spec.Wiring = topo.WiringRandom
		spec.Seed = seed
		stages = stages[:at]
	}
	// Parse with strconv, not Sscanf: %d stops at the first non-digit
	// and Sscanf reports success with input left over, so "16x2junk"
	// used to decode as 16x2 and silently drop the garbage — and a spec
	// that decodes must mean exactly what its bytes say (it is the
	// replay and cache-key currency).
	ep, links, ok := strings.Cut(head, "x")
	if !ok {
		return spec, fmt.Errorf("metrofuzz: malformed topology head %q", head)
	}
	if spec.Endpoints, err = strconv.Atoi(ep); err != nil {
		return spec, fmt.Errorf("metrofuzz: malformed topology head %q", head)
	}
	if spec.EndpointLinks, err = strconv.Atoi(links); err != nil {
		return spec, fmt.Errorf("metrofuzz: malformed topology head %q", head)
	}
	for _, st := range strings.Split(stages, ",") {
		fields := strings.Split(st, ".")
		if len(fields) != 3 {
			return spec, fmt.Errorf("metrofuzz: malformed stage %q", st)
		}
		var ss topo.StageSpec
		for i, dst := range []*int{&ss.Radix, &ss.Dilation, &ss.Inputs} {
			if *dst, err = strconv.Atoi(fields[i]); err != nil {
				return spec, fmt.Errorf("metrofuzz: malformed stage %q", st)
			}
		}
		spec.Stages = append(spec.Stages, ss)
	}
	return spec, nil
}

// encodeFaults renders a plan as |-separated events:
// kind@cycle:stage.index[.port[.bit]].
func encodeFaults(plan fault.Plan) string {
	var b strings.Builder
	for i, e := range plan {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%s@%d:%d.%d", faultCode(e.Kind), e.At, e.Stage, e.Index)
		switch e.Kind {
		case fault.RouterKill:
			// No port.
		case fault.LinkStuckBit:
			fmt.Fprintf(&b, ".%d.%d", e.Port, e.Bit)
		case fault.LinkKill, fault.PortDisable:
			fmt.Fprintf(&b, ".%d", e.Port)
		}
	}
	return b.String()
}

func decodeFaults(v string) (fault.Plan, error) {
	var plan fault.Plan
	for _, item := range strings.Split(v, "|") {
		code, rest, ok := strings.Cut(item, "@")
		if !ok {
			return nil, fmt.Errorf("metrofuzz: malformed fault %q", item)
		}
		kind, err := faultKindOf(code)
		if err != nil {
			return nil, err
		}
		at, loc, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("metrofuzz: malformed fault %q", item)
		}
		cycle, err := strconv.ParseUint(at, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("metrofuzz: fault cycle in %q: %w", item, err)
		}
		fields := strings.Split(loc, ".")
		want := map[fault.Kind]int{
			fault.RouterKill: 2, fault.LinkKill: 3,
			fault.PortDisable: 3, fault.LinkStuckBit: 4,
		}[kind]
		if len(fields) != want {
			return nil, fmt.Errorf("metrofuzz: fault %q wants %d location fields", item, want)
		}
		nums := make([]int, len(fields))
		for i, f := range fields {
			nums[i], err = strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("metrofuzz: fault %q: %w", item, err)
			}
		}
		e := fault.Event{At: cycle, Kind: kind, Stage: nums[0], Index: nums[1]}
		if len(nums) > 2 {
			e.Port = nums[2]
		}
		if len(nums) > 3 {
			e.Bit = uint(nums[3])
		}
		plan = append(plan, e)
	}
	return plan, nil
}

func faultCode(k fault.Kind) string {
	switch k {
	case fault.RouterKill:
		return "rk"
	case fault.LinkKill:
		return "lk"
	case fault.PortDisable:
		return "pd"
	case fault.LinkStuckBit:
		return "sb"
	default:
		return fmt.Sprintf("k%d", int(k))
	}
}

func faultKindOf(code string) (fault.Kind, error) {
	switch code {
	case "rk":
		return fault.RouterKill, nil
	case "lk":
		return fault.LinkKill, nil
	case "pd":
		return fault.PortDisable, nil
	case "sb":
		return fault.LinkStuckBit, nil
	default:
		return 0, fmt.Errorf("metrofuzz: unknown fault code %q", code)
	}
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
