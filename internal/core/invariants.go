package core

import "fmt"

// CheckInvariants audits the router's internal consistency and returns the
// first violation found, or nil. It is intended for simulation test
// harnesses that want continuous structural checking under load:
//
//  1. ownership is bijective: busyBy[bp] == fp implies fwd[fp].bp == bp,
//     and a forward port's bp implies matching busyBy;
//  2. no two forward ports claim the same backward port;
//  3. connected states carry a pipeline of the configured depth;
//  4. an allocated backward port lies within the configured dilation's
//     direction structure;
//  5. detached closers hold only ports marked as flushing (-2).
func (r *Router) CheckInvariants() error {
	seen := make(map[int]int) // bp -> fp
	for fp := range r.fwd {
		p := &r.fwd[fp]
		switch p.state {
		case fpIdle, fpBlockedWait, fpBlockedReply, fpDrain:
			if p.bp != -1 {
				return fmt.Errorf("%s: fp%d in state %v holds bp %d", r.name, fp, p.state, p.bp)
			}
		case fpHeader, fpForward, fpReversed:
			if p.bp < 0 || p.bp >= r.cfg.Outputs {
				return fmt.Errorf("%s: fp%d connected with invalid bp %d", r.name, fp, p.bp)
			}
			if prev, dup := seen[p.bp]; dup {
				return fmt.Errorf("%s: bp %d claimed by fp%d and fp%d", r.name, p.bp, prev, fp)
			}
			seen[p.bp] = fp
			if r.busyBy[p.bp] != fp {
				return fmt.Errorf("%s: fp%d holds bp %d but busyBy says %d",
					r.name, fp, p.bp, r.busyBy[p.bp])
			}
			if len(p.pipe) != r.cfg.DataPipe {
				return fmt.Errorf("%s: fp%d pipe depth %d != dp %d",
					r.name, fp, len(p.pipe), r.cfg.DataPipe)
			}
			if p.bp >= r.Radix()*r.set.Dilation {
				return fmt.Errorf("%s: fp%d bp %d outside the configured radix*dilation window",
					r.name, fp, p.bp)
			}
		}
	}
	for _, c := range r.closers {
		if c.bp < 0 || c.bp >= r.cfg.Outputs {
			return fmt.Errorf("%s: closer with invalid bp %d", r.name, c.bp)
		}
		if r.busyBy[c.bp] != -2 {
			return fmt.Errorf("%s: closer holds bp %d but busyBy says %d",
				r.name, c.bp, r.busyBy[c.bp])
		}
	}
	for bp, owner := range r.busyBy {
		switch {
		case owner >= 0:
			if fp, ok := seen[bp]; !ok || fp != owner {
				return fmt.Errorf("%s: busyBy[%d] = fp%d but no connected port claims it",
					r.name, bp, owner)
			}
		case owner == -2:
			found := false
			for _, c := range r.closers {
				if c.bp == bp {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("%s: bp %d marked flushing with no closer", r.name, bp)
			}
		case owner != -1:
			return fmt.Errorf("%s: busyBy[%d] has invalid marker %d", r.name, bp, owner)
		}
	}
	return nil
}
