package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// The -bce mode is the compiler-verified complement of the MV011
// provable-bounds rule: metrovet's abstract interpreter proves (or the
// author justifies) that hot-path indexing cannot fault, and the gate
// below asks gc's SSA backend which bounds checks it actually managed
// to eliminate. Every check that survives compilation of a hot-path
// package is a branch executed each simulated cycle, so the surviving
// set is pinned in docs/bce_allowlist.txt and CI fails when it grows —
// a change that silently defeats bounds-check elimination has to be
// either restructured or explicitly accepted by regenerating the list.

// bcePackages are the per-cycle hot-path packages: everything executed
// on every simulated clock edge of every router, link, and endpoint.
// Cold-path packages (netsim construction, telemetry export, the CLIs)
// are deliberately out of scope — a bounds check there costs nothing.
var bcePackages = []string{
	"./internal/word",
	"./internal/link",
	"./internal/core",
	"./internal/nic",
	"./internal/cascade",
	"./internal/kernel",
}

// bceCheck is one surviving bounds check: a module-relative position
// plus the SSA op the compiler left behind.
type bceCheck struct {
	pos  string // file:line:col, slash-separated, module-relative
	kind string // IsInBounds or IsSliceInBounds
}

func (c bceCheck) String() string { return c.pos + " " + c.kind }

// bceDiagRe matches the compiler's -d=ssa/check_bce output, e.g.
//
//	internal/core/router.go:123:14: Found IsInBounds
var bceDiagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): Found (IsInBounds|IsSliceInBounds)$`)

// runBCE executes the bounds-check-elimination gate and exits the
// process: 0 when the surviving checks match the allowlist byte for
// byte, 1 on any drift, 2 when the build fails or the allowlist is
// missing. With write set it regenerates the allowlist instead.
func runBCE(root, allowlistPath string, write bool) {
	checks, err := bceSurviving(root)
	if err != nil {
		fatal(err)
	}
	if !filepath.IsAbs(allowlistPath) {
		allowlistPath = filepath.Join(root, allowlistPath)
	}
	rel := allowlistPath
	if r, err := filepath.Rel(root, allowlistPath); err == nil && !strings.HasPrefix(r, "..") {
		rel = filepath.ToSlash(r)
	}

	if write {
		if err := writeBCEAllowlist(allowlistPath, checks); err != nil {
			fatal(err)
		}
		fmt.Printf("metrovet: bce: wrote %d surviving bounds check(s) to %s\n", len(checks), rel)
		return
	}

	want, err := readBCEAllowlist(allowlistPath)
	if err != nil {
		if os.IsNotExist(err) {
			fatal(fmt.Errorf("bce: allowlist %s does not exist; generate it with -bce -bce-write", rel))
		}
		fatal(err)
	}

	newChecks, stale := diffBCE(want, checks)
	if len(newChecks) == 0 && len(stale) == 0 {
		fmt.Printf("metrovet: bce: %d surviving bounds check(s) across %d hot-path package(s) match %s\n",
			len(checks), len(bcePackages), rel)
		return
	}
	for _, c := range newChecks {
		fmt.Fprintf(os.Stderr, "metrovet: bce: new bounds check survives compilation: %s\n", c)
	}
	for _, c := range stale {
		fmt.Fprintf(os.Stderr, "metrovet: bce: stale allowlist entry (check no longer emitted): %s\n", c)
	}
	fmt.Fprintf(os.Stderr, "metrovet: bce: hot-path bounds checks drifted from %s; restructure the indexing so the compiler can eliminate the check, or regenerate with -bce -bce-write and review the new cost\n", rel)
	os.Exit(1)
}

// bceSurviving compiles the hot-path packages with the SSA backend's
// check_bce debug pass and returns every bounds check that survived,
// sorted by position. The diagnostics are part of the compiler's cached
// output, so warm rebuilds replay them byte for byte.
func bceSurviving(root string) ([]bceCheck, error) {
	args := append([]string{"build", "-gcflags=-d=ssa/check_bce"}, bcePackages...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	runErr := cmd.Run()

	var checks []bceCheck
	var unrecognized []string
	for _, line := range strings.Split(stderr.String(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || line == "#" || strings.HasPrefix(line, "# ") {
			continue // package banner lines ("# metro/internal/core")
		}
		m := bceDiagRe.FindStringSubmatch(line)
		if m == nil {
			unrecognized = append(unrecognized, line)
			continue
		}
		pos := filepath.ToSlash(m[1])
		if filepath.IsAbs(m[1]) {
			if r, err := filepath.Rel(root, m[1]); err == nil {
				pos = filepath.ToSlash(r)
			}
		}
		checks = append(checks, bceCheck{pos: pos + ":" + m[2] + ":" + m[3], kind: m[4]})
	}
	if runErr != nil {
		return nil, fmt.Errorf("bce: go build failed: %v\n%s", runErr, stderr.String())
	}
	if len(unrecognized) > 0 {
		return nil, fmt.Errorf("bce: unrecognized compiler output (toolchain drift?):\n%s",
			strings.Join(unrecognized, "\n"))
	}
	sort.Slice(checks, func(i, j int) bool {
		if checks[i].pos != checks[j].pos {
			return bcePosLess(checks[i].pos, checks[j].pos)
		}
		return checks[i].kind < checks[j].kind
	})
	return checks, nil
}

// bcePosLess orders file:line:col strings by file, then numerically by
// line and column, so the allowlist reads in source order rather than
// "10" sorting before "9".
func bcePosLess(a, b string) bool {
	fa, la, ca := splitPos(a)
	fb, lb, cb := splitPos(b)
	if fa != fb {
		return fa < fb
	}
	if la != lb {
		return la < lb
	}
	return ca < cb
}

func splitPos(p string) (file string, line, col int) {
	i := strings.LastIndexByte(p, ':')
	j := strings.LastIndexByte(p[:i], ':')
	file = p[:j]
	fmt.Sscanf(p[j+1:i], "%d", &line)
	fmt.Sscanf(p[i+1:], "%d", &col)
	return
}

const bceHeader = `# metrovet -bce allowlist: bounds checks the Go compiler could NOT
# eliminate on the per-cycle hot path (internal/word, link, core, nic,
# cascade), as reported by -gcflags=-d=ssa/check_bce. Every entry is a
# conditional branch executed each simulated cycle.
#
# The gate fails in both directions: a NEW entry means a hot-path change
# defeated bounds-check elimination (restructure the indexing, or accept
# the cost by regenerating); a STALE entry means the list no longer
# describes reality (regenerate so it does). Line numbers shift with any
# edit to these files — regeneration is expected and cheap; the review
# burden is only the net change in check COUNT.
#
# Regenerate: go run ./cmd/metrovet -bce -bce-write
#
# Format: file:line:col kind   (IsInBounds | IsSliceInBounds)
`

func writeBCEAllowlist(path string, checks []bceCheck) error {
	var b strings.Builder
	b.WriteString(bceHeader)
	b.WriteString("\n")
	for _, c := range checks {
		b.WriteString(c.String())
		b.WriteString("\n")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// readBCEAllowlist parses an allowlist file: comment and blank lines are
// skipped, every other line is "pos kind".
func readBCEAllowlist(path string) ([]bceCheck, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var checks []bceCheck
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		pos, kind, ok := strings.Cut(line, " ")
		if !ok || (kind != "IsInBounds" && kind != "IsSliceInBounds") {
			return nil, fmt.Errorf("bce: %s:%d: malformed allowlist line %q", path, i+1, line)
		}
		checks = append(checks, bceCheck{pos: pos, kind: kind})
	}
	return checks, nil
}

// diffBCE returns the surviving checks absent from the allowlist and
// the allowlist entries no longer emitted by the compiler.
func diffBCE(want, got []bceCheck) (newChecks, stale []bceCheck) {
	wantSet := make(map[bceCheck]bool, len(want))
	for _, c := range want {
		wantSet[c] = true
	}
	gotSet := make(map[bceCheck]bool, len(got))
	for _, c := range got {
		gotSet[c] = true
		if !wantSet[c] {
			newChecks = append(newChecks, c)
		}
	}
	for _, c := range want {
		if !gotSet[c] {
			stale = append(stale, c)
		}
	}
	return newChecks, stale
}
