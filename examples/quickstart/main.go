// Quickstart: build the paper's Figure 1 network (16 endpoints, two
// dilation-2 stages and a dilation-1 final stage), send one reliable
// message across it, and inspect the delivery report.
package main

import (
	"fmt"
	"log"

	"metro"
)

func main() {
	// The 16x16 multipath network of the paper's Figure 1: every endpoint
	// pair is connected by 8 distinct paths.
	top, err := metro.BuildTopology(metro.Figure1Topology())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 1 network: %d endpoints, %d routers, %d links, %d paths between any pair\n",
		top.Spec.Endpoints, top.RouterCount(), top.LinkCount(), top.PathCount(6, 15))

	// Elaborate a cycle-accurate simulation of it: 8-bit channels,
	// single-cycle routers (dp=1), single-stage wires (vtd=1), fast path
	// reclamation everywhere.
	net, err := metro.BuildNetwork(metro.NetworkParams{
		Spec:        metro.Figure1Topology(),
		Width:       8,
		DataPipe:    1,
		LinkDelay:   1,
		FastReclaim: true,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Send 20 bytes from endpoint 6 to endpoint 15. The source interface
	// builds the routing header, streams the payload with an end-to-end
	// checksum, TURNs the connection, and collects each router's STATUS
	// and CHECKSUM plus the destination's acknowledgment.
	payload := []byte("hello, short-haul net")
	res, ok := metro.SendOne(net, 6, 15, payload, 5000)
	if !ok {
		log.Fatal("no result")
	}

	fmt.Printf("delivered: %v\n", res.Delivered)
	fmt.Printf("latency:   %d cycles (injection to acknowledgment receipt)\n", res.Done-res.Injected)
	fmt.Printf("retries:   %d\n", res.Retries)
	if res.SuspectStage >= 0 {
		fmt.Printf("suspect stage: %d\n", res.SuspectStage)
	} else {
		fmt.Println("checksums:  all router checksums consistent")
	}
}
