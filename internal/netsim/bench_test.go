package netsim

import (
	"math/rand"
	"testing"

	"metro/internal/clock"
	"metro/internal/metrics"
	"metro/internal/telemetry"
	"metro/internal/topo"
)

// benchCycles drives a congested Figure 3 network for b.N cycles with
// a fixed two-messages-per-cycle schedule — the whole-network hot loop
// the perf trajectory tracks. The recorder, when non-nil, measures the
// enabled-tracing overhead; metrobench reports the pair side by side.
func benchCycles(b *testing.B, rec *telemetry.Recorder) {
	benchCyclesOn(b, rec, false)
}

func benchCyclesOn(b *testing.B, rec *telemetry.Recorder, kernel bool) {
	benchCyclesObs(b, rec, kernel, nil)
}

// benchEngineMetrics builds a fully-populated engine-metrics block on a
// throwaway registry, sampling every 64 cycles — the operational
// configuration metroserve runs with.
func benchEngineMetrics() *clock.EngineMetrics {
	r := metrics.NewRegistry()
	return &clock.EngineMetrics{
		Every:        64,
		CyclesPerSec: r.Gauge("cps", ""),
		StepNs:       r.Gauge("step_ns", ""),
		ShardNs:      []*metrics.Gauge{r.Gauge("s0", ""), r.Gauge("s1", "")},
		KernelUnits:  r.Gauge("units", ""),
		KernelLinks:  r.Gauge("links", ""),
		KernelArenas: r.Gauge("arenas", ""),
	}
}

func benchCyclesObs(b *testing.B, rec *telemetry.Recorder, kernel bool, em *clock.EngineMetrics) {
	n, err := Build(Params{
		Spec: topo.Figure3(), Width: 8, DataPipe: 2, LinkDelay: 1,
		Seed: 71, RetryLimit: 600, ListenTimeout: 200, Recorder: rec,
		Kernel: kernel, EngineMetrics: em,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer n.Close()
	rng := rand.New(rand.NewSource(17))
	eps := n.Params.Spec.Endpoints
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 2; k++ {
			src, dest := rng.Intn(eps), rng.Intn(eps)
			if dest == src {
				dest = (dest + 1) % eps
			}
			n.Send(src, dest, benchPayload[:])
		}
		n.Engine.Step()
	}
}

var benchPayload [20]byte

// BenchmarkCongestedStep is the untraced baseline: ns per simulated
// cycle of a congested Figure 3 network.
func BenchmarkCongestedStep(b *testing.B) {
	benchCycles(b, nil)
}

// BenchmarkCongestedStepTraced is the same workload with the flight
// recorder attached; the delta against BenchmarkCongestedStep is the
// tracing overhead metrobench records.
func BenchmarkCongestedStepTraced(b *testing.B) {
	benchCycles(b, telemetry.New(telemetry.Options{}))
}

// BenchmarkKernelCongestedStep is the identical congested workload on the
// compiled struct-of-arrays kernel — the number BENCH_4 compares against
// BENCH_1's per-component ~38 µs step. The result streams are proven
// bit-identical by TestKernelDifferentialCongestedFigure3, so the delta
// is pure execution cost.
func BenchmarkKernelCongestedStep(b *testing.B) {
	benchCyclesOn(b, nil, true)
}

// BenchmarkKernelCongestedStepTraced is the kernel path with the flight
// recorder attached.
func BenchmarkKernelCongestedStepTraced(b *testing.B) {
	benchCyclesOn(b, telemetry.New(telemetry.Options{}), true)
}

// BenchmarkCongestedStepMetrics is the untraced congested workload with
// the operational-metrics block attached (cycles/sec and step-time
// sampling every 64 cycles). The delta against BenchmarkCongestedStep
// is the metrics-instrumentation overhead metrobench records — the
// BENCH_5 acceptance bar holds it at or under 2%.
func BenchmarkCongestedStepMetrics(b *testing.B) {
	benchCyclesObs(b, nil, false, benchEngineMetrics())
}

// BenchmarkKernelCongestedStepMetrics is the kernel path with the
// metrics block attached.
func BenchmarkKernelCongestedStepMetrics(b *testing.B) {
	benchCyclesObs(b, nil, true, benchEngineMetrics())
}
