package netsim

import (
	"bytes"
	"reflect"
	"testing"

	"metro/internal/link"
	"metro/internal/topo"
)

// TestKernelDifferentialCongestedFigure3 is the compiled kernel's
// equivalence gate: the congested Figure 3 multibutterfly run by the
// flattened struct-of-arrays kernel — serially and partitioned across
// {1, 2, 4, 8} workers — must produce bit-for-bit the completed-message
// stream of the serial per-component reference engine: same per-message
// latencies, same retry counts, same order, under the same seeds.
func TestKernelDifferentialCongestedFigure3(t *testing.T) {
	cycles := 1500
	if testing.Short() {
		cycles = 600
	}
	params := func(kernel bool, workers int) Params {
		return Params{
			Spec: topo.Figure3(), Width: 8, DataPipe: 2, LinkDelay: 1,
			FastReclaim: false, Seed: 71, RetryLimit: 600, ListenTimeout: 200,
			Kernel: kernel, Workers: workers,
		}
	}
	want := runCongested(t, params(false, 0), 17, 2, cycles)
	if len(want) == 0 {
		t.Fatal("congested run completed no messages; the differential compares nothing")
	}
	for _, workers := range []int{0, 1, 2, 4, 8} {
		got := runCongested(t, params(true, workers), 17, 2, cycles)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("kernel workers=%d: %d results diverge from the reference engine's %d (first divergence: %s)",
				workers, len(got), len(want), firstDivergence(got, want))
		}
	}
}

// TestKernelDifferentialCascade runs the cascade-width-2 co-location gate
// on the kernel path: a cascaded column is a single evaluation unit, so a
// partition that split its members would either race (caught by -race) or
// drift from the shared random stream (caught here) at any worker count.
func TestKernelDifferentialCascade(t *testing.T) {
	cycles := 1200
	if testing.Short() {
		cycles = 500
	}
	params := func(kernel bool, workers int) Params {
		return Params{
			Spec: topo.Figure1(), Width: 4, CascadeWidth: 2, DataPipe: 2,
			LinkDelay: 1, FastReclaim: false, Seed: 29, RetryLimit: 400,
			ListenTimeout: 150, Kernel: kernel, Workers: workers,
		}
	}
	want := runCongested(t, params(false, 0), 23, 1, cycles)
	if len(want) == 0 {
		t.Fatal("cascade run completed no messages; the differential compares nothing")
	}
	for _, workers := range []int{0, 1, 2, 4, 8} {
		got := runCongested(t, params(true, workers), 23, 1, cycles)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("kernel workers=%d: %d results diverge from the reference engine's %d (first divergence: %s)",
				workers, len(got), len(want), firstDivergence(got, want))
		}
	}
}

// TestKernelDifferentialVariableDelays exercises the per-delay-class
// arena carving: a mix of injection and inter-stage link delays forces
// multiple arenas, whose batched shuttles must still be cycle-exact
// against per-link commits.
func TestKernelDifferentialVariableDelays(t *testing.T) {
	cycles := 800
	if testing.Short() {
		cycles = 400
	}
	params := func(kernel bool, workers int) Params {
		return Params{
			Spec: topo.Figure3(), Width: 8, DataPipe: 2, LinkDelay: 1,
			StageLinkDelays: []int{2, 1, 3, 1}, FastReclaim: true,
			Seed: 5, RetryLimit: 500, ListenTimeout: 250,
			Kernel: kernel, Workers: workers,
		}
	}
	want := runCongested(t, params(false, 0), 41, 2, cycles)
	if len(want) == 0 {
		t.Fatal("variable-delay run completed no messages; the differential compares nothing")
	}
	for _, workers := range []int{0, 4} {
		got := runCongested(t, params(true, workers), 41, 2, cycles)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("kernel workers=%d: %d results diverge from the reference engine's %d (first divergence: %s)",
				workers, len(got), len(want), firstDivergence(got, want))
		}
	}
}

// TestKernelTraceIdentityCongestedFigure3 is the kernel's observability
// gate: the flight-recorder stream of a congested Figure 3 run on the
// compiled kernel must be byte-identical to the per-component serial
// engine's at every worker count. Buffer registration order is a pure
// function of the topology on both paths, and a column's buffer is only
// written by that column's unit, so neither the flattened layout nor the
// index-range partition may show through in the trace.
func TestKernelTraceIdentityCongestedFigure3(t *testing.T) {
	cycles := 1200
	if testing.Short() {
		cycles = 500
	}
	params := func(kernel bool, workers int) Params {
		return Params{
			Spec: topo.Figure3(), Width: 8, DataPipe: 2, LinkDelay: 1,
			FastReclaim: false, Seed: 71, RetryLimit: 600, ListenTimeout: 200,
			Kernel: kernel, Workers: workers,
		}
	}
	want := recordCongested(t, params(false, 0), 17, 2, cycles)
	for _, workers := range []int{0, 1, 4} {
		got := recordCongested(t, params(true, workers), 17, 2, cycles)
		if !bytes.Equal(got, want) {
			t.Errorf("kernel workers=%d: recorded trace diverges from the per-component serial engine (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestKernelWiringAudit pins the compile-time adjacency audit: every
// arena-resident link is referenced by exactly two units, the arenas are
// carved exactly full, and the flat link count matches the per-component
// build's link population.
func TestKernelWiringAudit(t *testing.T) {
	p := Params{Spec: topo.Figure3(), Width: 8, Kernel: true}
	n, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if n.Compiled == nil {
		t.Fatal("Kernel build produced no compiled plan")
	}
	ref, err := Build(Params{Spec: topo.Figure3(), Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	perComp := 0
	ref.EachLink(func(*link.Link) { perComp++ })
	if got := n.Compiled.Links(); got != perComp {
		t.Fatalf("compiled plan holds %d links, per-component build %d", got, perComp)
	}
	units := n.Compiled.Units()
	wantUnits := len(n.Endpoints)
	for s := range n.Routers {
		wantUnits += len(n.Routers[s])
	}
	if units != wantUnits {
		t.Fatalf("compiled plan has %d units, want %d (columns + endpoints)", units, wantUnits)
	}
	// Adjacency degree check: summed unit degrees = 2 * links.
	degree := 0
	for u := 0; u < units; u++ {
		degree += len(n.Compiled.UnitLinks(u))
	}
	if degree != 2*n.Compiled.Links() {
		t.Fatalf("adjacency degree sum %d, want %d", degree, 2*n.Compiled.Links())
	}
}
