package clock

import "testing"

// probe records the order and cycle numbers of its Eval/Commit calls.
type probe struct {
	log  *[]string
	name string
}

func (p *probe) Eval(cycle uint64)   { *p.log = append(*p.log, p.name+"E") }
func (p *probe) Commit(cycle uint64) { *p.log = append(*p.log, p.name+"C") }

func TestTwoPhaseOrdering(t *testing.T) {
	var log []string
	e := New()
	e.Add(&probe{&log, "a"}, &probe{&log, "b"})
	e.Step()
	want := []string{"aE", "bE", "aC", "bC"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

func TestCycleCount(t *testing.T) {
	e := New()
	if e.Cycle() != 0 {
		t.Fatalf("fresh engine cycle = %d", e.Cycle())
	}
	e.Run(10)
	if e.Cycle() != 10 {
		t.Fatalf("after Run(10), cycle = %d", e.Cycle())
	}
	e.Step()
	if e.Cycle() != 11 {
		t.Fatalf("after Step, cycle = %d", e.Cycle())
	}
}

type counter struct{ evals int }

func (c *counter) Eval(uint64)   { c.evals++ }
func (c *counter) Commit(uint64) {}

func TestRunUntil(t *testing.T) {
	e := New()
	c := &counter{}
	e.Add(c)
	ok := e.RunUntil(func() bool { return c.evals >= 5 }, 100)
	if !ok {
		t.Fatal("RunUntil should have succeeded")
	}
	if c.evals != 5 {
		t.Fatalf("evals = %d, want 5", c.evals)
	}
	ok = e.RunUntil(func() bool { return false }, 7)
	if ok {
		t.Fatal("RunUntil should have failed")
	}
	if c.evals != 12 {
		t.Fatalf("evals = %d, want 12 (5 + 7 budget)", c.evals)
	}
}

// TestRunUntilBoundary pins RunUntil's documented accounting: the
// predicate is checked before each step and once more after the budget
// is exhausted, so it runs max+1 times when never satisfied, and a
// condition that becomes true exactly on the last budgeted cycle still
// reports success.
func TestRunUntilBoundary(t *testing.T) {
	e := New()
	c := &counter{}
	e.Add(c)

	checks := 0
	ok := e.RunUntil(func() bool { checks++; return false }, 4)
	if ok {
		t.Fatal("unsatisfiable predicate should report false")
	}
	if checks != 5 {
		t.Fatalf("predicate checked %d times, want max+1 = 5", checks)
	}
	if c.evals != 4 {
		t.Fatalf("evals = %d, want the full budget of 4", c.evals)
	}

	// Success on the very last budgeted cycle: the final check observes
	// the state after the last step.
	ok = e.RunUntil(func() bool { return c.evals >= 7 }, 3)
	if !ok {
		t.Fatal("condition satisfied by the last budgeted step should report true")
	}
	if c.evals != 7 {
		t.Fatalf("evals = %d, want 7", c.evals)
	}
}

func TestRunUntilImmediatelyDone(t *testing.T) {
	e := New()
	c := &counter{}
	e.Add(c)
	if !e.RunUntil(func() bool { return true }, 100) {
		t.Fatal("immediately-done predicate should succeed")
	}
	if c.evals != 0 {
		t.Fatalf("no cycles should have run, got %d", c.evals)
	}
}

func TestComponents(t *testing.T) {
	e := New()
	if e.Components() != 0 {
		t.Fatal("fresh engine should have 0 components")
	}
	e.Add(&counter{}, &counter{}, &counter{})
	if e.Components() != 3 {
		t.Fatalf("Components() = %d, want 3", e.Components())
	}
}

// cycleChecker verifies the cycle argument passed to hooks.
type cycleChecker struct {
	t    *testing.T
	next uint64
}

func (c *cycleChecker) Eval(cycle uint64) {
	if cycle != c.next {
		c.t.Errorf("Eval cycle = %d, want %d", cycle, c.next)
	}
}
func (c *cycleChecker) Commit(cycle uint64) {
	if cycle != c.next {
		c.t.Errorf("Commit cycle = %d, want %d", cycle, c.next)
	}
	c.next++
}

func TestCycleArgument(t *testing.T) {
	e := New()
	e.Add(&cycleChecker{t: t})
	e.Run(25)
}
