package core

import (
	"fmt"

	"metro/internal/link"
	"metro/internal/prng"
	"metro/internal/word"
)

// fpState enumerates the forward-port connection states.
type fpState uint8

const (
	// fpIdle: no connection; the port watches for ROUTE words.
	fpIdle fpState = iota
	// fpHeader: connection allocated, consuming remaining setup header
	// words (HeaderWords > 1).
	fpHeader
	// fpForward: connection open, data flowing source → destination.
	fpForward
	// fpReversed: connection open, data flowing destination → source.
	fpReversed
	// fpBlockedWait: blocked in detailed mode, swallowing the stream while
	// waiting for the TURN that will trigger the status reply.
	fpBlockedWait
	// fpBlockedReply: blocked in detailed mode, transmitting
	// STATUS/CHECKSUM/DROP back toward the source.
	fpBlockedReply
	// fpDrain: fast path reclamation — asserting BCB toward the source and
	// swallowing the incoming stream until it ends.
	fpDrain
)

var fpStateNames = [...]string{
	fpIdle:         "IDLE",
	fpHeader:       "HEADER",
	fpForward:      "FORWARD",
	fpReversed:     "REVERSED",
	fpBlockedWait:  "BLOCKED-WAIT",
	fpBlockedReply: "BLOCKED-REPLY",
	fpDrain:        "DRAIN",
}

// String returns the state mnemonic for traces and invariant failures.
func (s fpState) String() string {
	if int(s) < len(fpStateNames) {
		return fpStateNames[s]
	}
	return fmt.Sprintf("fpState(%d)", uint8(s))
}

// SelectionPolicy chooses how a router picks among the available backward
// ports of a direction. The METRO architecture specifies SelectRandom
// (stochastic path selection, the key to congestion and fault avoidance);
// SelectFirstFree is a deterministic ablation used by the experiments to
// quantify what the randomness buys.
type SelectionPolicy int

const (
	// SelectRandom picks uniformly among available ports using the
	// router's random input bits (the architecture's behavior).
	SelectRandom SelectionPolicy = iota
	// SelectFirstFree always picks the lowest-numbered available port.
	SelectFirstFree
)

// maxOutQ bounds the elastic output buffer; exceeding it indicates a
// protocol bug, not a congestion condition (see DESIGN.md).
const maxOutQ = 64

// fwdPort holds the per-forward-port connection state machine.
//
// The pipe, inject and outQ buffers are allocated once (NewRouter sizes
// them to DataPipe, the worst-case injection sequence, and maxOutQ) and
// reused for the life of the port: the per-cycle path must not touch the
// heap. inject and outQ are consumed through head cursors instead of
// re-slicing so the backing arrays survive; see buffer() for the outQ
// compaction that keeps appends within the preallocated capacity.
type fwdPort struct {
	state     fpState
	bp        int // allocated backward port, -1 when none
	hdrLeft   int // header words still to consume (fpHeader)
	pipe      []word.Word
	pipeIn    word.Word // word staged into the pipe this cycle
	inject    []word.Word
	injHead   int // next inject element to transmit
	outQ      []word.Word
	outHead   int // next outQ element to transmit
	ck        word.Checksum
	revActive bool // reversed: downstream has begun transmitting
	closing   bool // a synthesized DROP is flushing through the pipe
	bcbOut    bool // asserting BCB toward the source
}

// reset returns the port to state s with no connection, preserving the
// preallocated buffers (the allocation-free replacement for the old
// whole-struct `*p = fwdPort{...}` resets).
func (p *fwdPort) reset(s fpState) {
	p.state = s
	p.bp = -1
	p.hdrLeft = 0
	p.pipeIn = word.Word{}
	p.inject = p.inject[:0]
	p.injHead = 0
	p.outQ = p.outQ[:0]
	p.outHead = 0
	p.ck.Reset()
	p.revActive = false
	p.closing = false
	p.bcbOut = false
}

// injPending reports whether staged injection words remain.
func (p *fwdPort) injPending() bool { return p.injHead < len(p.inject) }

// clearPipe zeroes the pipeline in place for a fresh connection.
func (p *fwdPort) clearPipe() {
	for i := range p.pipe {
		p.pipe[i] = word.Word{}
	}
}

// stageInject stages a STATUS word, the segment checksum, and optionally a
// closing DROP into the port's preallocated injection buffer.
//
//metrovet:width width is always r.cfg.Width, bounded to [1, 32] by Config.Validate
func (p *fwdPort) stageInject(status word.Word, sum uint8, width int, drop bool) {
	p.inject = p.inject[:0]
	p.injHead = 0
	//metrovet:alloc capacity sized to the worst-case injection sequence in NewRouter
	p.inject = append(p.inject, status)
	p.inject = word.AppendChecksum(p.inject, sum, width)
	if drop {
		//metrovet:alloc capacity sized to the worst-case injection sequence in NewRouter
		p.inject = append(p.inject, word.Word{Kind: word.Drop})
	}
}

// closer is the detached tail of a closing forward connection: when the
// input side of a connection sees its DROP (or the channel go idle), the
// forward port is released immediately so a new connection request can be
// accepted, while the crosspoint keeps flushing the in-flight pipeline
// words — ending with a DROP — out the backward port. The backward port
// stays busy until the flush completes.
type closer struct {
	fp       int // original owner, for tracing
	bp       int
	port     fwdPort
	deadline int
}

// Router is one METRO routing component: a dilated i x o crossbar with
// pipelined, circuit-switched, reversible connections. See the package
// comment for the mechanism inventory.
//
// A Router is a clock.Component. It communicates exclusively through the
// link ends attached to its ports, so any Eval order among routers is
// valid.
type Router struct {
	name   string
	id     RouterID
	cfg    Config
	set    Settings
	rng    prng.Source
	tracer Tracer

	fLinks []*link.End // forward ports: router is the B (downstream) end
	bLinks []*link.End // backward ports: router is the A (upstream) end

	fwd     []fwdPort
	busyBy  []int // per backward port: owner fp, -1 free, -2 flushing close
	closers []closer
	policy  SelectionPolicy

	// Per-cycle scratch, preallocated in NewRouter so the Eval path never
	// allocates: request and candidate collection, plus a pool of spare
	// port buffers handed to forward ports when detach moves their live
	// buffers into a closer (at most Outputs closers can be in flight, one
	// per backward port).
	reqScratch  []request
	candScratch []int
	spareBufs   []portBufs
}

// portBufs is one set of forward-port buffers circulating between ports,
// detached closers, and the router's spare pool.
type portBufs struct {
	pipe   []word.Word
	inject []word.Word
	outQ   []word.Word
}

// NewRouter constructs a router with the given architectural parameters,
// run-time settings, and random bit source. It panics on invalid
// parameters: router construction is network construction time, where
// configuration errors are programming errors.
func NewRouter(name string, cfg Config, set Settings, rng prng.Source) *Router {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("core: %s: %v", name, err))
	}
	if err := set.Validate(cfg); err != nil {
		panic(fmt.Sprintf("core: %s: %v", name, err))
	}
	// Worst-case injection sequence: STATUS + checksum words + DROP.
	injCap := 2 + word.ChecksumWords(cfg.Width)
	r := &Router{
		name:        name,
		id:          FreeID(),
		cfg:         cfg,
		set:         set.Clone(),
		rng:         rng,
		tracer:      NopTracer{},
		fLinks:      make([]*link.End, cfg.Inputs),
		bLinks:      make([]*link.End, cfg.Outputs),
		fwd:         make([]fwdPort, cfg.Inputs),
		busyBy:      make([]int, cfg.Outputs),
		closers:     make([]closer, 0, cfg.Outputs),
		reqScratch:  make([]request, 0, cfg.Inputs),
		candScratch: make([]int, 0, cfg.Outputs),
		spareBufs:   make([]portBufs, cfg.Outputs),
	}
	// All port buffers — live ports and the spare pool — carve out of one
	// backing array, so a router's per-cycle state lands on a handful of
	// cache lines instead of 3*(Inputs+Outputs) scattered allocations. The
	// three-index carves make overflow past a region's capacity a panic
	// rather than silent aliasing; inject and outQ append only up to the
	// capacities reserved here (stageInject's worst case and buffer()'s
	// maxOutQ guard).
	perSet := cfg.DataPipe + injCap + maxOutQ
	backing := make([]word.Word, (cfg.Inputs+cfg.Outputs)*perSet)
	carve := func(length, capacity int) []word.Word {
		s := backing[:length:capacity]
		backing = backing[capacity:]
		return s
	}
	for i := range r.fwd {
		r.fwd[i].bp = -1
		r.fwd[i].pipe = carve(cfg.DataPipe, cfg.DataPipe)
		r.fwd[i].inject = carve(0, injCap)
		r.fwd[i].outQ = carve(0, maxOutQ)
	}
	for i := range r.busyBy {
		r.busyBy[i] = -1
	}
	for i := range r.spareBufs {
		r.spareBufs[i] = portBufs{
			pipe:   carve(cfg.DataPipe, cfg.DataPipe),
			inject: carve(0, injCap),
			outQ:   carve(0, maxOutQ),
		}
	}
	return r
}

// Name returns the router's identifier.
func (r *Router) Name() string { return r.name }

// ID returns the router's structured network identity (FreeID until the
// network that placed the router calls SetID).
func (r *Router) ID() RouterID { return r.id }

// SetID records the router's structured position in its network. Tracer
// events carry this identity, so observers aggregate by stage/index/lane
// instead of parsing names.
//
//metrovet:mutator network construction wiring, before the clock starts
func (r *Router) SetID(id RouterID) { r.id = id }

// Config returns the architectural parameters.
func (r *Router) Config() Config { return r.cfg }

// Settings returns a copy of the current run-time settings.
func (r *Router) Settings() Settings { return r.set.Clone() }

// SetSelectionPolicy overrides the output-selection policy (experiments
// only; the architecture specifies SelectRandom).
//
//metrovet:mutator experiment configuration, applied before the clock starts
func (r *Router) SetSelectionPolicy(p SelectionPolicy) { r.policy = p }

// SetTracer installs an event tracer (nil restores the no-op tracer).
//
//metrovet:mutator observer wiring at network construction time
func (r *Router) SetTracer(t Tracer) {
	if t == nil {
		t = NopTracer{}
	}
	r.tracer = t
}

// AttachForward connects link end e to forward port fp.
//
//metrovet:mutator network construction wiring, before the clock starts
func (r *Router) AttachForward(fp int, e *link.End) { r.fLinks[fp] = e }

// AttachBackward connects link end e to backward port bp.
//
//metrovet:mutator network construction wiring, before the clock starts
func (r *Router) AttachBackward(bp int, e *link.End) { r.bLinks[bp] = e }

// ForwardLink returns the link end attached to forward port fp.
func (r *Router) ForwardLink(fp int) *link.End { return r.fLinks[fp] }

// BackwardLink returns the link end attached to backward port bp.
//
//metrovet:bounds bp is a caller contract; bLinks has len Outputs and callers index within the wiring
func (r *Router) BackwardLink(bp int) *link.End { return r.bLinks[bp] }

// ApplySettings replaces the run-time settings, as a scan UPDATE-DR of the
// configuration register would. Connections already open are unaffected
// except that newly disabled ports stop accepting new connections.
//
//metrovet:mutator models a scan-chain UPDATE-DR, an asynchronous hardware path
func (r *Router) ApplySettings(set Settings) error {
	if err := set.Validate(r.cfg); err != nil {
		return err
	}
	r.set = set.Clone()
	return nil
}

// ForwardEnabled reports whether forward port fp is enabled: the cheap
// per-port read for per-cycle paths that must not deep-copy Settings.
func (r *Router) ForwardEnabled(fp int) bool { return r.set.ForwardEnabled[fp] }

// BackwardEnabled reports whether backward port bp is enabled: the cheap
// per-port read for per-cycle paths that must not deep-copy Settings.
//
//metrovet:bounds bp is a caller contract; Settings slices are sized to the config by NewSettings
func (r *Router) BackwardEnabled(bp int) bool { return r.set.BackwardEnabled[bp] }

// SetForwardEnabled enables or disables forward port fp during operation.
//
//metrovet:mutator models scan-driven port masking (static fault isolation)
//metrovet:bounds fp is a caller contract; Settings slices are sized to the config by NewSettings
func (r *Router) SetForwardEnabled(fp int, on bool) { r.set.ForwardEnabled[fp] = on }

// SetBackwardEnabled enables or disables backward port bp during operation.
//
//metrovet:mutator models scan-driven port masking (static fault isolation)
//metrovet:bounds bp is a caller contract; Settings slices are sized to the config by NewSettings
func (r *Router) SetBackwardEnabled(bp int, on bool) { r.set.BackwardEnabled[bp] = on }

// SetFastReclaim selects the path reclamation mode of forward port fp
// during operation (Section 5.1: the tradeoff may be handled dynamically).
//
//metrovet:mutator models scan-driven reconfiguration of the reclamation mode
func (r *Router) SetFastReclaim(fp int, on bool) { r.set.FastReclaim[fp] = on }

// Dilation returns the configured effective dilation.
func (r *Router) Dilation() int { return r.set.Dilation }

// Radix returns the number of logical output directions at the configured
// dilation.
func (r *Router) Radix() int { return r.cfg.Radix(r.set.Dilation) }

// DirBits returns the routing bits consumed per connection.
func (r *Router) DirBits() int { return r.cfg.DirBits(r.set.Dilation) }

// Direction returns the logical direction served by backward port bp.
func (r *Router) Direction(bp int) int { return bp / r.set.Dilation }

// PortsFor returns the backward port range serving direction dir.
func (r *Router) PortsFor(dir int) (lo, hi int) {
	return dir * r.set.Dilation, (dir + 1) * r.set.Dilation
}

// ConnectionCount returns the number of forward ports holding open or
// in-progress connections (including blocked/draining ones).
func (r *Router) ConnectionCount() int {
	n := 0
	for i := range r.fwd {
		if r.fwd[i].state != fpIdle {
			n++
		}
	}
	return n
}

// ClosingCount returns the number of detached connection flushes in
// progress.
func (r *Router) ClosingCount() int { return len(r.closers) }

// BackwardInUse returns a bitmask of allocated backward ports, the analogue
// of the IN-USE consistency signal used by width cascading (Section 5.1).
func (r *Router) BackwardInUse() uint64 {
	var m uint64
	for bp, fp := range r.busyBy {
		if bp >= 64 {
			break // the IN-USE signal models at most 64 backward ports
		}
		if fp >= 0 {
			m |= 1 << uint(bp)
		}
	}
	return m
}

// OwnerOf returns the forward port owning backward port bp, or -1.
//
//metrovet:bounds bp is a caller contract; busyBy has len Outputs and callers index within the wiring
func (r *Router) OwnerOf(bp int) int { return r.busyBy[bp] }

// KillConnection forcibly shuts down the connection on forward port fp, as
// the cascade consistency check does when the wired-AND IN-USE signal
// detects an allocation disagreement. The backward port is freed and the
// port drains with BCB asserted so the source learns of the failure.
//
//metrovet:mutator invoked by cascade.Group's consistency check inside its own Eval
//metrovet:bounds fp comes from the cascade group's port scan, bounded by the shared config's Inputs
func (r *Router) KillConnection(cycle uint64, fp int) {
	p := &r.fwd[fp]
	if p.state == fpIdle {
		return
	}
	r.freeBackward(fp)
	r.tracer.Released(cycle, r.id, fp, -1)
	p.reset(fpDrain)
	p.bcbOut = true
}

// request records a connection request observed during the input pass.
type request struct {
	fp      int
	dir     int
	recv    word.Word // the route word as received (checksummed pre-strip)
	fwdWord word.Word // the word to forward downstream (Empty if consumed)
}

// Eval implements clock.Component. See DESIGN.md for the three-pass
// structure: input handling, allocation, output staging.
func (r *Router) Eval(cycle uint64) {
	reqs := r.inputPass(cycle)
	r.allocate(cycle, reqs)
	r.outputPass(cycle)
	r.runClosers(cycle)
}

// Commit implements clock.Component; routers latch all state during Eval.
func (r *Router) Commit(cycle uint64) {}

// inputPass reads every forward port's inputs, advances connection state
// machines, and collects new connection requests.
//
//metrovet:bounds fp ranges over fwd; fLinks and the Settings slices share its len Inputs, and p.bp is guarded >= 0 against bLinks of len Outputs (CheckInvariants)
//metrovet:width cfg.Width is bounded to [1, 32] by Config.Validate at construction
func (r *Router) inputPass(cycle uint64) []request {
	reqs := r.reqScratch[:0]
	for fp := range r.fwd {
		p := &r.fwd[fp]
		if !r.set.ForwardEnabled[fp] || r.fLinks[fp] == nil {
			continue
		}
		in := r.fLinks[fp].Recv()

		// BCB arriving from downstream on the allocated backward port
		// tears the connection down regardless of state (fast path
		// reclamation propagating toward the source).
		if p.bp >= 0 && r.bLinks[p.bp] != nil && r.bLinks[p.bp].RecvBCB() {
			r.freeBackward(fp)
			r.tracer.Released(cycle, r.id, fp, -1)
			p.reset(fpDrain)
			p.bcbOut = true
			// Fall through to fpDrain handling with this cycle's input.
		}

		switch p.state {
		case fpIdle:
			if in.Kind == word.Route {
				if req, ok := r.parseRoute(fp, in); ok {
					//metrovet:alloc capacity Inputs preallocated in NewRouter; at most one request per forward port
					reqs = append(reqs, req)
				}
			}
			// HeaderPad and any stray words at an idle port are ignored.

		case fpHeader:
			if in.Kind == word.Drop || in.IsEmpty() {
				// Upstream closed during setup: nothing has been
				// forwarded yet, so release everything at once.
				bp := p.bp
				r.freeBackward(fp)
				p.reset(fpIdle)
				r.tracer.Released(cycle, r.id, fp, bp)
				continue
			}
			p.ck.Add(in)
			p.hdrLeft--
			p.pipeIn = word.Word{}
			if p.hdrLeft == 0 {
				p.state = fpForward
			}

		case fpForward:
			switch {
			case in.Kind == word.Drop:
				// The connection is closing. The input side releases
				// immediately so a new request can arrive next cycle; the
				// in-flight pipeline words flush out the backward port
				// detachedly, terminated by a DROP.
				r.detach(cycle, fp)
			case in.IsEmpty():
				if p.turnInPipe() {
					// Post-TURN quiet: the reversal is in flight, not a
					// dead source.
					p.pipeIn = word.Word{}
				} else {
					// Upstream channel went idle: dead source; close as
					// for a DROP.
					r.detach(cycle, fp)
				}
			default:
				p.ck.Add(in)
				p.pipeIn = in
			}

		case fpReversed:
			// The transmission prerogative lies with the far end, but the
			// receiving end may still close: a DROP arriving on the
			// forward channel tears the reversed path down hop by hop
			// (needed when a source abandons a turned connection).
			if in.Kind == word.Drop {
				if r.bLinks[p.bp] != nil {
					r.bLinks[p.bp].Send(word.Word{Kind: word.Drop})
				}
				bp := p.bp
				r.freeBackward(fp)
				p.reset(fpIdle)
				r.tracer.Released(cycle, r.id, fp, bp)
				continue
			}
			rin := word.Word{}
			if r.bLinks[p.bp] != nil {
				rin = r.bLinks[p.bp].Recv()
			}
			switch {
			case p.closing:
				p.pipeIn = word.Word{}
			case rin.IsEmpty() && p.revActive:
				// Downstream went silent after transmitting: treat as an
				// implicit DROP (robustness against dead components).
				p.pipeIn = word.Word{Kind: word.Drop}
				p.closing = true
			case rin.IsEmpty():
				p.pipeIn = word.Word{} // reversal transient
			default:
				p.revActive = true
				p.ck.Add(rin)
				p.pipeIn = rin
			}

		case fpBlockedWait:
			switch in.Kind {
			case word.Turn:
				flags := word.StatusBlocked
				status := word.Word{Kind: word.Status, Payload: flags & word.Mask(r.cfg.Width)}
				p.stageInject(status, p.ck.Sum(), r.cfg.Width, true)
				p.state = fpBlockedReply
				r.tracer.Reversed(cycle, r.id, fp, true)
			case word.Drop, word.Empty:
				r.tracer.Released(cycle, r.id, fp, -1)
				p.reset(fpIdle)
			case word.Route, word.HeaderPad, word.Data, word.DataIdle,
				word.Status, word.ChecksumWord:
				// Stream content while blocked still feeds the checksum the
				// status reply will report.
				p.ck.Add(in)
			}

		case fpBlockedReply:
			// Input ignored; the reply drains in the output pass.

		case fpDrain:
			switch in.Kind {
			case word.Drop, word.Empty:
				p.reset(fpIdle)
			case word.Route, word.HeaderPad, word.Data, word.DataIdle,
				word.Turn, word.Status, word.ChecksumWord:
				// Swallow the remains of the aborted stream.
			}
		}
	}
	r.reqScratch = reqs
	return reqs
}

// parseRoute interprets a ROUTE word arriving at an idle forward port and
// produces a connection request. It returns false for malformed words
// (fewer routing bits than this router consumes), which are discarded —
// the source-responsible protocol will time out and retry.
//
//metrovet:width DirBits is log2(Radix) with Radix in [1, Outputs], so need is in [0, 31] and below in.Bits at the shifts
//metrovet:truncate need is nonnegative (DirBits of a validated config), so uint(need) is lossless
//metrovet:bounds fp is inputPass's range index over fwd; Swallow shares its len Inputs
func (r *Router) parseRoute(fp int, in word.Word) (request, bool) {
	need := r.DirBits()
	if int(in.Bits) < need {
		return request{}, false
	}
	dir := int(in.Payload) & (r.Radix() - 1)
	rem := int(in.Bits) - need
	fwdWord := word.Word{}
	if r.cfg.HeaderWords == 0 {
		if rem > 0 {
			fwdWord = word.MakeRoute(in.Payload>>uint(need), rem)
		} else if !r.set.Swallow[fp] {
			// Exhausted routing word forwarded as setup padding.
			fwdWord = word.Word{Kind: word.HeaderPad, Payload: in.Payload >> uint(need)}
		}
	}
	// With HeaderWords >= 1 the entire first word is consumed here and
	// hw-1 further words are consumed in fpHeader.
	return request{fp: fp, dir: dir, recv: in, fwdWord: fwdWord}, true
}

// allocate serves the cycle's connection requests: for each request, a
// backward port in the requested direction is chosen uniformly at random
// among the available ones using the router's random input bits. Requests
// are served in forward-port order, which together with the shared random
// stream makes allocation a deterministic function of (requests, random
// bits) — the property width cascading depends on.
//
//metrovet:bounds q.fp and q.dir come from inputPass (fp in [0, Inputs), dir masked below Radix), and PortsFor keeps bp within Outputs for a validated dilation
func (r *Router) allocate(cycle uint64, reqs []request) {
	for _, q := range reqs {
		p := &r.fwd[q.fp]
		lo, hi := r.PortsFor(q.dir)
		candidates := r.candScratch[:0]
		for bp := lo; bp < hi; bp++ {
			if r.busyBy[bp] == -1 && r.set.BackwardEnabled[bp] && r.bLinks[bp] != nil && !r.bLinks[bp].Link().Dead() {
				//metrovet:alloc capacity Outputs preallocated in NewRouter; a direction's port range never exceeds it
				candidates = append(candidates, bp)
			}
		}
		r.candScratch = candidates
		if len(candidates) == 0 {
			r.block(cycle, q)
			continue
		}
		bp := candidates[r.pick(len(candidates))]
		r.busyBy[bp] = q.fp
		p.bp = bp
		p.ck.Reset()
		p.ck.Add(q.recv)
		p.clearPipe()
		p.inject = p.inject[:0]
		p.injHead = 0
		p.outQ = p.outQ[:0]
		p.outHead = 0
		p.revActive = false
		p.closing = false
		p.pipeIn = q.fwdWord
		if r.cfg.HeaderWords > 1 {
			p.state = fpHeader
			p.hdrLeft = r.cfg.HeaderWords - 1
		} else {
			p.state = fpForward
		}
		r.tracer.Allocated(cycle, r.id, q.fp, bp)
	}
}

// pick selects an index in [0, n) using ceil(log2(n)) random input bits
// (or deterministically under the SelectFirstFree ablation).
func (r *Router) pick(n int) int {
	if n <= 1 || r.policy == SelectFirstFree {
		return 0
	}
	bits := log2(n)
	return int(r.rng.NextBits(bits)) % n
}

// block handles an unservable request according to the forward port's
// reclamation mode.
//
//metrovet:bounds q.fp originated as a range index over fwd; FastReclaim shares its len Inputs
func (r *Router) block(cycle uint64, q request) {
	p := &r.fwd[q.fp]
	fast := r.set.FastReclaim[q.fp]
	r.tracer.Blocked(cycle, r.id, q.fp, q.dir, fast)
	if fast {
		p.reset(fpDrain)
		p.bcbOut = true
		return
	}
	p.reset(fpBlockedWait)
	p.ck.Add(q.recv)
}

// outputPass shifts connection pipelines and stages this cycle's link
// outputs for every active forward port.
//
//metrovet:bounds fp ranges over fwd (fLinks shares its len Inputs); p.bp is only read in states that hold an allocated backward port in [0, Outputs), and injHead < len(inject) is the injPending contract
func (r *Router) outputPass(cycle uint64) {
	for fp := range r.fwd {
		p := &r.fwd[fp]
		switch p.state {
		case fpIdle, fpBlockedWait:
			// No connection output: an idle port transmits nothing, and a
			// blocked port swallows its stream until the TURN arrives.

		case fpHeader:
			// Nothing flows downstream during setup consumption; keep the
			// pipe shifting so residency stays dp cycles.
			p.shiftPipe()

		case fpForward:
			out := p.shiftPipe()
			// Idle fill is Empty here: during initial pipe priming the
			// downstream port may be draining an aborted predecessor
			// connection and needs to observe the channel go idle before
			// the new stream begins. Established hops never see Empty
			// because a post-reversal pipe is primed with DATA-IDLE.
			sent := p.selectOutput(out, word.Word{})
			if !sent.IsEmpty() && r.bLinks[p.bp] != nil {
				r.bLinks[p.bp].Send(sent)
			}
			//metrovet:nonexhaustive only TURN and DROP alter connection state here; data flows through
			switch sent.Kind {
			case word.Turn:
				r.flip(cycle, fp, fpReversed)
			case word.Drop:
				r.release(cycle, fp)
			}

		case fpReversed:
			out := p.shiftPipe()
			sent := p.selectOutput(out, word.Word{Kind: word.DataIdle})
			if r.fLinks[fp] != nil {
				r.fLinks[fp].Send(sent)
			}
			// Hold the downstream half of the connection open.
			if p.state == fpReversed && r.bLinks[p.bp] != nil {
				r.bLinks[p.bp].Send(word.Word{Kind: word.DataIdle})
			}
			//metrovet:nonexhaustive only TURN and DROP alter connection state here; data flows through
			switch sent.Kind {
			case word.Turn:
				r.flip(cycle, fp, fpForward)
			case word.Drop:
				r.release(cycle, fp)
			}

		case fpBlockedReply:
			if p.injPending() {
				w := p.inject[p.injHead]
				p.injHead++
				if r.fLinks[fp] != nil {
					r.fLinks[fp].Send(w)
				}
				if w.Kind == word.Drop {
					r.tracer.Released(cycle, r.id, fp, -1)
					p.reset(fpIdle)
				}
			}

		case fpDrain:
			if p.bcbOut && r.fLinks[fp] != nil {
				r.fLinks[fp].SendBCB(true)
			}
		}
	}
}

// turnInPipe reports whether a TURN is still flowing through the port's
// pipeline (a reversal is in flight).
func (p *fwdPort) turnInPipe() bool {
	if p.pipeIn.Kind == word.Turn {
		return true
	}
	for _, w := range p.pipe {
		if w.Kind == word.Turn {
			return true
		}
	}
	for _, w := range p.outQ[p.outHead:] {
		if w.Kind == word.Turn {
			return true
		}
	}
	return false
}

// shiftPipe advances the port's dp-stage pipeline by one cycle, inserting
// the staged input and returning the word leaving the pipe.
//
//metrovet:bounds pipe has len DataPipe, which Config.Validate requires >= 1
func (p *fwdPort) shiftPipe() word.Word {
	n := len(p.pipe)
	out := p.pipe[n-1]
	// dp is small (typically 1-2), so an explicit backward walk beats the
	// copy-call overhead in this per-port per-cycle path.
	for i := n - 1; i > 0; i-- {
		p.pipe[i] = p.pipe[i-1]
	}
	p.pipe[0] = p.pipeIn
	p.pipeIn = word.Word{}
	return out
}

// selectOutput picks the word to transmit this cycle: pending injected
// words (STATUS/CHECKSUM) first, then buffered stream words, then the pipe
// output. A displaced pipe word is buffered; an absent word becomes idle
// fill so the connection stays open.
//
//metrovet:bounds injHead < len(inject) is the injPending contract, and outHead < len(outQ) is checked inline
func (p *fwdPort) selectOutput(pipeOut, idle word.Word) word.Word {
	if p.injPending() {
		w := p.inject[p.injHead]
		p.injHead++
		p.buffer(pipeOut)
		return w
	}
	if p.outHead < len(p.outQ) {
		w := p.outQ[p.outHead]
		p.outHead++
		p.buffer(pipeOut)
		return w
	}
	if pipeOut.IsEmpty() {
		return idle
	}
	return pipeOut
}

func (p *fwdPort) buffer(w word.Word) {
	if w.IsEmpty() {
		return
	}
	if len(p.outQ)-p.outHead >= maxOutQ {
		panic("core: output elastic buffer overflow — protocol bug")
	}
	if len(p.outQ) == cap(p.outQ) && p.outHead > 0 {
		// Slide the pending words to the front so the append below stays
		// within the preallocated backing array.
		n := copy(p.outQ, p.outQ[p.outHead:])
		p.outQ = p.outQ[:n]
		p.outHead = 0
	}
	//metrovet:alloc bounded by the maxOutQ capacity preallocated in NewRouter
	p.outQ = append(p.outQ, w)
}

// flip completes a connection reversal at this router: the just-ended
// receive segment's status and checksum are queued for injection into the
// new stream, and a fresh pipeline is started for the new direction.
//
//metrovet:bounds fp originated as a range index over fwd in outputPass
//metrovet:width cfg.Width is bounded to [1, 32] by Config.Validate at construction
func (r *Router) flip(cycle uint64, fp int, to fpState) {
	p := &r.fwd[fp]
	sum := p.ck.Sum()
	p.ck.Reset()
	p.stageInject(word.Word{Kind: word.Status, Payload: 0}, sum, r.cfg.Width, false)
	p.outQ = p.outQ[:0]
	p.outHead = 0
	if to == fpForward {
		// The downstream hop is an established connection: filling the
		// pipe with DATA-IDLE keeps the stream contiguous so the hop
		// never mistakes the reversal transient for a closed channel.
		for i := range p.pipe {
			p.pipe[i] = word.Word{Kind: word.DataIdle}
		}
	} else {
		p.clearPipe()
	}
	p.pipeIn = word.Word{}
	p.revActive = false
	p.closing = false
	p.state = to
	r.tracer.Reversed(cycle, r.id, fp, to == fpReversed)
}

// detach moves forward port fp's connection tail to a detached closer and
// frees the port for new requests. The backward port stays busy (marked
// -2) until the closer's DROP has been transmitted downstream.
//
//metrovet:bounds fp ranges over fwd; c.bp is guarded >= 0 and below Outputs like every allocated backward port, and the spare-pool read is guarded by n > 0
func (r *Router) detach(cycle uint64, fp int) {
	p := &r.fwd[fp]
	c := closer{fp: fp, bp: p.bp, port: *p,
		deadline: r.cfg.DataPipe + (len(p.inject) - p.injHead) + (len(p.outQ) - p.outHead) + 4}
	c.port.pipeIn = word.Word{Kind: word.Drop}
	if c.bp >= 0 {
		r.busyBy[c.bp] = -2
		// The closer took the port's live buffers (the struct copy shares
		// the backing arrays), so hand the port a spare set from the pool
		// instead of letting the two alias.
		if n := len(r.spareBufs); n > 0 {
			b := r.spareBufs[n-1]
			r.spareBufs = r.spareBufs[:n-1]
			p.pipe, p.inject, p.outQ = b.pipe, b.inject, b.outQ
		} else {
			// Unreachable: at most one closer per backward port can be in
			// flight and the pool holds Outputs sets. Kept as a safe
			// fallback rather than a panic.
			//metrovet:alloc unreachable fallback; the spare pool is sized to the closer bound
			p.pipe = make([]word.Word, r.cfg.DataPipe)
			p.inject = nil
			p.outQ = nil
		}
		//metrovet:alloc capacity Outputs preallocated in NewRouter; at most one closer per backward port
		r.closers = append(r.closers, c)
	}
	p.reset(fpIdle)
}

// runClosers advances every detached connection flush, freeing backward
// ports as their DROPs go out.
//
//metrovet:bounds c.bp was an allocated backward port in [0, Outputs) when the closer detached
func (r *Router) runClosers(cycle uint64) {
	kept := r.closers[:0]
	for i := range r.closers {
		c := &r.closers[i]
		out := c.port.shiftPipe()
		sent := c.port.selectOutput(out, word.Word{})
		if !sent.IsEmpty() && r.bLinks[c.bp] != nil {
			r.bLinks[c.bp].Send(sent)
		}
		c.deadline--
		if sent.Kind == word.Drop || c.deadline <= 0 {
			r.busyBy[c.bp] = -1
			r.tracer.Released(cycle, r.id, c.fp, c.bp)
			// Return the retired closer's buffers to the spare pool.
			//metrovet:alloc the pool never exceeds the Outputs capacity preallocated in NewRouter
			r.spareBufs = append(r.spareBufs, portBufs{
				pipe:   c.port.pipe,
				inject: c.port.inject[:0],
				outQ:   c.port.outQ[:0],
			})
			continue
		}
		//metrovet:alloc in-place compaction re-slicing the closers backing array
		kept = append(kept, *c)
	}
	r.closers = kept
}

// release closes the connection on forward port fp after its DROP has been
// transmitted.
//
//metrovet:bounds fp originated as a range index over fwd in outputPass
func (r *Router) release(cycle uint64, fp int) {
	p := &r.fwd[fp]
	bp := p.bp
	r.freeBackward(fp)
	p.reset(fpIdle)
	r.tracer.Released(cycle, r.id, fp, bp)
}

//metrovet:bounds fp is a valid forward port wherever a connection exists, and p.bp is guarded >= 0 against busyBy of len Outputs
func (r *Router) freeBackward(fp int) {
	p := &r.fwd[fp]
	if p.bp >= 0 {
		r.busyBy[p.bp] = -1
		p.bp = -1
	}
}
