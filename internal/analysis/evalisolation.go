package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// componentStatePackages names the internal packages whose concrete
// types carry per-component simulation state. A method call on one of
// their types from another package's Eval tree reaches into foreign
// component state and breaks shard isolation. Package link is
// deliberately absent: link ends are the sanctioned inter-component
// interface — each writer stages into its own field and values move
// only at Commit, so Eval-phase link calls are race-free by design.
var componentStatePackages = map[string]bool{
	"core":    true,
	"nic":     true,
	"cascade": true,
	"netsim":  true,
	"fault":   true,
	"scan":    true,
	"traffic": true,
}

// EvalIsolation returns the eval-isolation analyzer. The parallel clock
// engine evaluates components concurrently; its bit-for-bit equivalence
// with the serial engine holds only if no component's Eval touches
// state owned by another registered component (link endpoints exempt —
// their staged/registered split is the inter-component interface). The
// rule walks every component's Eval call tree — over the whole-program
// call graph, so helpers in other packages are on the hook too — and
// flags writes through another component-shaped value, method calls on
// other components (same package) or on component-state types from
// other internal packages (cross package, where the syntactic rule
// assumes mutation; shard-purity is the rule that proves it), and
// writes to package-level state. Legitimate sharing — cascade members
// co-located by construction, drivers and injectors running in the
// serialized epilogue — is declared with `//metrovet:shared <reason>`
// on the line or the enclosing function's doc comment, so every
// crossing of the isolation boundary is enumerable and justified.
func EvalIsolation() *Analyzer {
	return &Analyzer{
		Name: "eval-isolation",
		Doc:  "flag Eval-phase call trees (components and telemetry sinks) that touch another component's non-link state; annotate //metrovet:shared <reason> for co-located or serialized components",
		Run: func(p *Package) []Finding {
			return runEvalIsolation(NewProgram([]*Package{p}))
		},
		RunProgram: runEvalIsolation,
	}
}

func runEvalIsolation(prog *Program) []Finding {
	roots := isolationRoots(prog)
	if len(roots) == 0 {
		return nil
	}
	reached := prog.CallGraph().Reachable(roots, nil)
	var out []Finding
	for _, node := range reachedNodes(reached) {
		p, fd := node.Pkg, node.Decl
		if p.Types == nil || p.Info == nil || !isInternal(p.ImportPath) {
			continue
		}
		if internalName(p.ImportPath) == "link" {
			continue // the exempt package: link state IS the component interface
		}
		if docDirective(fd.Doc, "shared") {
			continue // whole function declared shared, with its reason
		}
		ri := reached[node]
		report := func(pos token.Position, root, what string) {
			if p.suppressed("eval-isolation", "shared", pos) {
				return
			}
			contract := "a sharded component may touch only its own state and link ends"
			if ri.Kind == "sink" {
				contract = "a telemetry sink observes the simulation and may write only its own buffers"
			}
			out = append(out, Finding{
				Pos:  pos,
				Rule: "eval-isolation",
				Msg: fmt.Sprintf("%s in Eval path (reachable from %s); %s — annotate //metrovet:shared <reason> if co-located or serialized",
					what, root, contract),
			})
		}
		checkIsolation(p, fd.Body, ri.Root, ri.Type, node.RecvName, report)
	}
	SortFindings(out)
	return out
}

// isolationRoots collects the Eval methods of component-shaped types
// plus the callback methods of telemetry sinks, from every internal
// non-link package. (Commit latches a component's own registers; the
// isolation contract is about Eval. Tracer implementations run inside a
// router's or endpoint's Eval on a worker shard, so their call trees are
// held to the same contract — a sink observes the simulation, it must
// not mutate it. Sink types are detected structurally: the router
// tracer's four-callback vocabulary or the endpoint tracer's Message,
// each with the cycle as its leading uint64 parameter; and Sink
// methods with the Recorder streaming-tap shape, one slice parameter
// and no results.)
func isolationRoots(prog *Program) []RootedNode {
	keep := func(p *Package) bool {
		return isInternal(p.ImportPath) && internalName(p.ImportPath) != "link"
	}
	roots := componentRoots(prog, keep, "Eval")
	for _, p := range prog.Packages {
		if p.Types == nil || !keep(p) {
			continue
		}
		byRecv := map[string]map[string]*ast.FuncDecl{}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
					continue
				}
				if tname := recvTypeName(fd); tname != "" {
					if byRecv[tname] == nil {
						byRecv[tname] = map[string]*ast.FuncDecl{}
					}
					byRecv[tname][fd.Name.Name] = fd
				}
			}
		}
		tnames := make([]string, 0, len(byRecv))
		for tname := range byRecv {
			tnames = append(tnames, tname)
		}
		sort.Strings(tnames)
		for _, tname := range tnames {
			for _, name := range tracerRoots(byRecv[tname]) {
				node := prog.FuncByKey(p.ImportPath + "." + tname + "." + name)
				if node == nil {
					continue
				}
				roots = append(roots, RootedNode{
					Node: node,
					Root: fmt.Sprintf("(%s.%s).%s", pkgLabel(p), tname, name),
					Type: tname,
					Kind: "sink",
				})
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Root < roots[j].Root })
	return roots
}

// routerTracerMethods is the core.Tracer callback vocabulary; a type
// declaring all four with tracer shape is a router-event sink.
var routerTracerMethods = [...]string{"Allocated", "Blocked", "Released", "Reversed"}

// tracerRoots returns the method names of methods that make the
// receiver type a telemetry sink: the full router-tracer vocabulary,
// and/or an endpoint-tracer Message.
func tracerRoots(methods map[string]*ast.FuncDecl) []string {
	var roots []string
	all := true
	for _, name := range routerTracerMethods {
		if fd := methods[name]; fd == nil || !tracerShape(fd) {
			all = false
			break
		}
	}
	if all {
		roots = append(roots, routerTracerMethods[:]...)
	}
	// Message alone is a generic name; demand the endpoint tracer's
	// wide parameter list too (cycle, endpoint, kind, id, payloads).
	if fd := methods["Message"]; fd != nil && tracerShape(fd) && fd.Type.Params.NumFields() >= 4 {
		roots = append(roots, "Message")
	}
	// A Sink with the Recorder streaming-tap shape consumes drained
	// event batches on the engine's flushing goroutine; like the tracer
	// callbacks it observes a run in flight and is held to the same
	// observe-only contract (telemetry.MetricsSink is the canonical
	// instance).
	if fd := methods["Sink"]; fd != nil && sinkShape(fd) {
		roots = append(roots, "Sink")
	}
	return roots
}

// sinkShape reports whether fd has the Recorder streaming-tap shape: a
// single slice parameter (the drained event batch) and no results.
func sinkShape(fd *ast.FuncDecl) bool {
	ft := fd.Type
	if ft.Results != nil && len(ft.Results.List) > 0 {
		return false
	}
	if ft.Params == nil || len(ft.Params.List) != 1 || len(ft.Params.List[0].Names) > 1 {
		return false
	}
	arr, ok := ft.Params.List[0].Type.(*ast.ArrayType)
	return ok && arr.Len == nil
}

// tracerShape reports whether fd has the tracer-callback shape: a
// leading uint64 cycle parameter and no results. The check is
// syntactic (the literal token "uint64"), so it works identically on
// compiled and fixture packages.
func tracerShape(fd *ast.FuncDecl) bool {
	ft := fd.Type
	if ft.Results != nil && len(ft.Results.List) > 0 {
		return false
	}
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	first, ok := ft.Params.List[0].Type.(*ast.Ident)
	return ok && first.Name == "uint64"
}

// checkIsolation walks one function body for isolation violations.
// ownRecv is the receiver type of the function being inspected;
// rootType is the component type whose Eval roots the tree — calls and
// writes to either are the component's own state (a sender helper
// calling back into its parent Endpoint stays inside the component).
func checkIsolation(p *Package, body *ast.BlockStmt, root, rootType, ownRecv string, report func(token.Position, string, string)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkWrite(p, lhs, root, rootType, ownRecv, report)
			}
		case *ast.IncDecStmt:
			checkWrite(p, s.X, root, rootType, ownRecv, report)
		case *ast.CallExpr:
			switch fun := ast.Unparen(s.Fun).(type) {
			case *ast.Ident:
				if (fun.Name == "delete" || fun.Name == "copy") && len(s.Args) > 0 && isBuiltin(p, fun) {
					checkWrite(p, s.Args[0], root, rootType, ownRecv, report)
				}
			case *ast.SelectorExpr:
				checkMethodCall(p, s, fun, root, rootType, ownRecv, report)
			}
		}
		return true
	})
}

// checkWrite flags assignment targets whose selector chain passes
// through another component-shaped value or roots at a package-level
// variable.
func checkWrite(p *Package, lhs ast.Expr, root, rootType, ownRecv string, report func(token.Position, string, string)) {
	for e := ast.Unparen(lhs); ; {
		switch ee := e.(type) {
		case *ast.SelectorExpr:
			if tn := componentTypeName(p, ee.X); tn != "" && tn != ownRecv && tn != rootType {
				report(p.Fset.Position(lhs.Pos()), root,
					fmt.Sprintf("write to state of component type %s", tn))
				return
			}
			e = ast.Unparen(ee.X)
		case *ast.IndexExpr:
			e = ast.Unparen(ee.X)
		case *ast.StarExpr:
			e = ast.Unparen(ee.X)
		case *ast.Ident:
			if obj := p.ObjectOf(ee); obj != nil {
				if v, ok := obj.(*types.Var); ok && v.Parent() == p.Types.Scope() {
					report(p.Fset.Position(lhs.Pos()), root,
						fmt.Sprintf("write to package-level state %s", ee.Name))
				}
			}
			return
		default:
			return
		}
	}
}

// checkMethodCall flags method calls on other components: same-package
// component-shaped types other than the function's own receiver, and
// concrete types from other internal component-state packages (where
// the callee's body is out of reach, so mutation is assumed).
func checkMethodCall(p *Package, call *ast.CallExpr, fun *ast.SelectorExpr, root, rootType, ownRecv string, report func(token.Position, string, string)) {
	if !isMethodCall(p, fun) {
		return // field-func call, package-qualified call, or unresolved
	}
	named := namedTypeOf(p.TypeOf(fun.X))
	if named == nil {
		return // interface, unnamed, or unknown receiver: not traceable
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return
	}
	path := obj.Pkg().Path()
	switch {
	case path == p.ImportPath || obj.Pkg() == p.Types:
		// Same package: only other component-shaped types are foreign
		// state; helpers and sub-structs of the receiver, and calls back
		// into the tree's own root component, are its own.
		if obj.Name() != ownRecv && obj.Name() != rootType && isComponentShaped(named) {
			report(p.Fset.Position(call.Pos()), root,
				fmt.Sprintf("call to (%s).%s, another component in this package", obj.Name(), fun.Sel.Name))
		}
	case isInternal(path) && internalName(path) != "link" && componentStatePackages[internalName(path)]:
		report(p.Fset.Position(call.Pos()), root,
			fmt.Sprintf("call to (%s.%s).%s, component state in another package", internalName(path), obj.Name(), fun.Sel.Name))
	}
}

// isMethodCall reports whether sel is a method value selection (not a
// struct field holding a func, and not a package-qualified function).
func isMethodCall(p *Package, sel *ast.SelectorExpr) bool {
	for _, info := range []*types.Info{p.Info, p.XInfo} {
		if info == nil {
			continue
		}
		if s, ok := info.Selections[sel]; ok {
			return s.Kind() == types.MethodVal
		}
	}
	return false
}

// namedTypeOf unwraps pointers to the named type, or nil.
func namedTypeOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// componentTypeName returns the named type of e when it is
// component-shaped (declares the Eval/Commit pair), else "".
func componentTypeName(p *Package, e ast.Expr) string {
	named := namedTypeOf(p.TypeOf(e))
	if named == nil || !isComponentShaped(named) {
		return ""
	}
	return named.Obj().Name()
}

// isComponentShaped reports whether *T declares the clock.Component
// method pair: Eval(uint64) and Commit(uint64).
func isComponentShaped(named *types.Named) bool {
	ms := types.NewMethodSet(types.NewPointer(named))
	found := 0
	for _, name := range []string{"Eval", "Commit"} {
		sel := ms.Lookup(named.Obj().Pkg(), name)
		if sel == nil {
			// Exported methods are visible from any package.
			sel = ms.Lookup(nil, name)
		}
		if sel == nil {
			continue
		}
		sig, ok := sel.Obj().Type().(*types.Signature)
		if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
			continue
		}
		if b, ok := sig.Params().At(0).Type().(*types.Basic); ok && b.Kind() == types.Uint64 {
			found++
		}
	}
	return found == 2
}
