package nic

import (
	"fmt"

	"metro/internal/word"
)

// Channel is the endpoint's view of a network attachment point: one
// word-wide, bidirectional, BCB-carrying connection per clock cycle. A
// plain link end satisfies it directly; a width-cascaded group of links is
// presented as a single logical Channel by cascade.WideChannel.
type Channel interface {
	Send(word.Word)
	Recv() word.Word
	SendBCB(bool)
	RecvBCB() bool
}

// Config parameterizes an endpoint's network interface.
type Config struct {
	// ID is the endpoint number.
	ID int
	// Width is the physical channel width w of one routing component.
	Width int
	// Lanes is the width-cascade factor c: the number of parallel
	// components each logical channel spans (default 1). Payload words
	// are Width*Lanes bits; routing and control words are replicated
	// across lanes (paper, Section 5.1, Router Width Cascading).
	Lanes int
	// Header describes the per-stage routing header consumption.
	Header HeaderSpec
	// RouteDigits maps a destination endpoint to per-stage directions.
	RouteDigits func(dest int) []int
	// AppendRouteDigits, when set, is the allocation-free variant of
	// RouteDigits: it appends the per-stage directions to dst and returns
	// it. RouteDigits remains required (validation and tooling use it);
	// senders prefer this one so the steady-state retry loop stays off the
	// heap.
	AppendRouteDigits func(dst []int, dest int) []int
	// MaxActiveSenders bounds concurrently transmitting injection links
	// (Figure 3 restricts each endpoint to one; 0 means no limit).
	MaxActiveSenders int
	// RetryLimit bounds connection attempts per message before the
	// message is reported undeliverable.
	RetryLimit int
	// ListenTimeout is the watchdog on reply arrival, in cycles.
	ListenTimeout uint64
	// CloseGap is how many cycles an injection link stays quiet after a
	// DROP before carrying a new ROUTE, so the request never chases the
	// DROP into a router that has not yet released (>= max dp + 2).
	CloseGap int
	// Responder, when set, produces a reply payload for each received
	// message (destination side), enabling request-reply transactions
	// over a single reversed connection.
	Responder func(payload []byte) []byte
	// ResponderDelay, when set, returns how many cycles the destination
	// needs before its reply data is ready (e.g. a memory access vs a
	// cache hit). The endpoint holds the reversed connection open with
	// DATA-IDLE words for that long — the paper's first DATA-IDLE use
	// case (Section 5.1).
	ResponderDelay func(payload []byte) int
	// Tracer, when set, observes the message lifecycle (queued, attempt,
	// blocked, retried, delivered...). See TraceKind for the event
	// alphabet.
	Tracer Tracer
	// OnResult receives the final fate of each message this endpoint
	// sourced.
	OnResult func(Result)
	// OnDeliver is invoked when a message is received (destination side).
	OnDeliver func(payload []byte, intact bool)
}

func (c Config) withDefaults() Config {
	if c.Lanes <= 0 {
		c.Lanes = 1
	}
	if c.RetryLimit == 0 {
		c.RetryLimit = 64
	}
	if c.ListenTimeout == 0 {
		c.ListenTimeout = 1000
	}
	if c.CloseGap == 0 {
		c.CloseGap = 4
	}
	return c
}

// Endpoint is a network endpoint: a message source driving one or more
// injection links and a destination served by one or more delivery links.
// It implements clock.Component.
type Endpoint struct {
	cfg       Config
	senders   []*sender
	receivers []*receiver
	queue     []*pending
	qHead     int        // next queued message; the backing array is reused
	free      []*pending // recycled bookkeeping records for future Offers
	nextSend  int
}

// pending is a message queued for (re)transmission together with its
// accumulated attempt telemetry.
type pending struct {
	msg Message
	res Result

	// Cached attempt stream: a retry retransmits the identical words (the
	// routers' stochastic output selection is what varies the path, not the
	// source's stream), so the header build, payload packing and expected
	// per-stage checksums happen once per message rather than once per
	// attempt. The buffers recycle with the record through the freelist.
	built    bool
	words    []word.Word
	expected [][]uint8 // per lane, per stage
	sentCRC  uint8
	stages   int
}

// New constructs an endpoint. Links are attached afterward.
func New(cfg Config) (*Endpoint, error) {
	cfg = cfg.withDefaults()
	if cfg.Width < 1 || cfg.Width > 32 {
		return nil, fmt.Errorf("nic: width %d outside [1,32]", cfg.Width)
	}
	if lw := cfg.logicalWidth(); lw > 32 {
		return nil, fmt.Errorf("nic: cascaded width %d x %d lanes exceeds 32 bits", cfg.Width, cfg.Lanes)
	}
	if err := cfg.Header.Validate(); err != nil {
		return nil, err
	}
	if cfg.RouteDigits == nil {
		return nil, fmt.Errorf("nic: RouteDigits is required")
	}
	return &Endpoint{cfg: cfg}, nil
}

// logicalWidth returns the payload word width of the (possibly cascaded)
// logical channel.
func (c Config) logicalWidth() int { return c.Width * c.Lanes }

// AttachInject adds an injection channel (the upstream end of a link, or
// a cascaded wide channel).
//
//metrovet:mutator network construction wiring, before the clock starts
func (e *Endpoint) AttachInject(ch Channel) {
	e.senders = append(e.senders, &sender{e: e, link: ch})
}

// AttachDeliver adds a delivery channel.
//
//metrovet:mutator network construction wiring, before the clock starts
func (e *Endpoint) AttachDeliver(ch Channel) {
	e.receivers = append(e.receivers, &receiver{e: e, link: ch})
}

// ID returns the endpoint number.
func (e *Endpoint) ID() int { return e.cfg.ID }

// SetTracer installs (or, with nil, removes) the message-lifecycle
// observer. Equivalent to setting Config.Tracer before New.
//
//metrovet:mutator network construction wiring, before the clock starts
func (e *Endpoint) SetTracer(t Tracer) { e.cfg.Tracer = t }

// Offer enqueues a message for delivery.
//
//metrovet:mutator traffic injection between cycles; drivers call this before Step
//metrovet:alloc per-message queue bookkeeping at injection, amortized by the message rather than the cycle
func (e *Endpoint) Offer(msg Message) {
	p := e.newPending()
	p.msg = msg
	p.res = Result{Msg: msg, LastBlockedStage: -1, SuspectStage: -1}
	e.queue = append(e.queue, p)
	e.trace(msg.Created, TraceQueued, msg.ID, msg.Dest, 0)
}

// newPending pops a recycled bookkeeping record, or allocates the first
// time a queue depth is reached.
//
//metrovet:alloc grows the record pool to the peak in-flight count, then recycles
//metrovet:bounds n >= 1 inside the branch, so n-1 indexes the freelist tail
func (e *Endpoint) newPending() *pending {
	if n := len(e.free); n > 0 {
		p := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return p
	}
	return new(pending)
}

// QueueLen reports messages waiting for an injection link.
func (e *Endpoint) QueueLen() int { return len(e.queue) - e.qHead }

// Busy reports whether any sender is mid-message.
func (e *Endpoint) Busy() bool {
	for _, s := range e.senders {
		if s.state != sIdle && s.state != sCooldown {
			return true
		}
	}
	return false
}

// Receiving reports whether any delivery link has a connection in
// progress.
func (e *Endpoint) Receiving() bool {
	for _, r := range e.receivers {
		if r.state != rIdle {
			return true
		}
	}
	return false
}

// Eval implements clock.Component.
//
//metrovet:bounds qHead stays within [0, len(queue)]: the pop loop rechecks qHead < len(queue) every iteration and idleSender touches only nextSend
func (e *Endpoint) Eval(cycle uint64) {
	for _, r := range e.receivers {
		r.eval(cycle)
	}
	active := 0
	for _, s := range e.senders {
		if s.state != sIdle && s.state != sCooldown {
			active++
		}
	}
	// Assign queued messages to idle senders, rotating so retries spread
	// across the endpoint's injection links.
	max := e.cfg.MaxActiveSenders
	if max <= 0 {
		max = len(e.senders)
	}
	for e.qHead < len(e.queue) && active < max {
		s := e.idleSender()
		if s == nil {
			break
		}
		p := e.queue[e.qHead]
		e.queue[e.qHead] = nil // release the reference; the array is reused
		e.qHead++
		s.begin(cycle, p)
		active++
	}
	if e.qHead == len(e.queue) {
		// Drained: rewind so future Offers reuse the backing array.
		e.queue = e.queue[:0]
		e.qHead = 0
	}
	for _, s := range e.senders {
		s.eval(cycle)
	}
}

// Commit implements clock.Component.
func (e *Endpoint) Commit(cycle uint64) {}

// idleSender returns the next idle sender in rotation, or nil.
//
//metrovet:bounds n >= 1 inside the loop and nextSend is only ever stored reduced mod n, so (nextSend+i)%n lands in [0, n-1]
func (e *Endpoint) idleSender() *sender {
	n := len(e.senders)
	for i := 0; i < n; i++ {
		s := e.senders[(e.nextSend+i)%n]
		if s.state == sIdle {
			e.nextSend = (e.nextSend + i + 1) % n
			return s
		}
	}
	return nil
}

// retry requeues a message at the head of the queue. A retried message was
// popped earlier, so the freed slot before qHead is normally available and
// the requeue is allocation-free.
//
//metrovet:bounds qHead <= len(queue) is the pop-cursor invariant, so qHead-1 indexes the freed slot
func (e *Endpoint) retry(p *pending) {
	if e.qHead > 0 {
		e.qHead--
		e.queue[e.qHead] = p
		return
	}
	//metrovet:alloc front-insert fallback; grows only when no popped slot has been freed
	e.queue = append(e.queue, nil)
	copy(e.queue[1:], e.queue)
	e.queue[0] = p
}

func (e *Endpoint) finish(p *pending, delivered bool, cycle uint64) {
	p.res.Delivered = delivered
	if p.res.Done == 0 {
		p.res.Done = cycle
	}
	kind := TraceFailed
	if delivered {
		kind = TraceDelivered
	}
	e.trace(p.res.Done, kind, p.msg.ID, p.res.Retries, p.msg.Dest)
	if e.cfg.OnResult != nil {
		e.cfg.OnResult(p.res)
	}
	// Recycle the record: Result was handed out by value, so dropping the
	// payload and reply references here cannot disturb the receiver. The
	// stream buffers stay with the record for the next message.
	words, expected := p.words, p.expected
	*p = pending{}
	p.words = words[:0]
	p.expected = expected
	//metrovet:alloc freelist push; bounded by the peak in-flight count
	e.free = append(e.free, p)
}

// --- sender -----------------------------------------------------------

type sState uint8

const (
	sIdle sState = iota
	sSending
	sListening
	sDropping // transmit a DROP this cycle, then cool down
	sCooldown
)

var sStateNames = [...]string{
	sIdle:      "IDLE",
	sSending:   "SENDING",
	sListening: "LISTENING",
	sDropping:  "DROPPING",
	sCooldown:  "COOLDOWN",
}

// String returns the state mnemonic for logs and test failures.
func (s sState) String() string {
	if int(s) < len(sStateNames) {
		return sStateNames[s]
	}
	return fmt.Sprintf("sState(%d)", uint8(s))
}

// dropAction is the disposition a sender applies once its DROP word is on
// the wire: nothing (the fast-blocked paths dispose inline), finish the
// dropped message as delivered, or send it around the retry loop.
type dropAction uint8

const (
	dropNone dropAction = iota
	dropFinish
	dropRetry
)

type sender struct {
	e     *Endpoint
	link  Channel
	state sState

	p     *pending
	idx   int
	parse parser

	// Per-build scratch, reused so steady-state builds never allocate.
	digits    []int       // route digits (AppendRouteDigits path)
	laneBuf   []word.Word // one lane's projection of the stream (Lanes > 1)
	ckScratch []word.Word // working copy for expected-checksum stripping

	listenStart uint64
	cooldown    int
	afterDrop   dropAction // disposition applied once the DROP is out
	dropped     *pending   // the message that disposition applies to
}

// begin starts a transmission attempt for p, building the attempt stream
// on the first attempt and replaying the cached one on retries.
//
//metrovet:width logicalWidth = Width*Lanes is validated into [1,32] by New
func (s *sender) begin(cycle uint64, p *pending) {
	cfg := s.e.cfg
	s.p = p
	if !p.built {
		s.build(p)
		p.built = true
	}
	s.idx = 0
	s.parse.reset(cfg.Width, cfg.logicalWidth(), cfg.Lanes, p.stages)
	s.state = sSending
	if p.res.Injected == 0 && p.res.Retries == 0 {
		p.res.Injected = cycle
	}
	s.e.trace(cycle, TraceAttempt, p.msg.ID, p.res.Retries+1, 0)
}

// build constructs the message's attempt stream into the pending record.
// Payload words are packed at the logical channel width; routing words
// were already sized to the physical component width by the HeaderSpec and
// are replicated across lanes by the channel. Every buffer involved is
// record- or sender-owned scratch, so a warmed endpoint builds messages
// without touching the heap.
//
//metrovet:alloc scratch buffers grow to the message size once, then recycle across messages
//metrovet:width logicalWidth = Width*Lanes is validated into [1,32] by New
//metrovet:bounds headerLen = len(words) at the split, so words[headerLen:] is the appended payload suffix
func (s *sender) build(p *pending) {
	cfg := s.e.cfg
	lw := cfg.logicalWidth()
	var digits []int
	if cfg.AppendRouteDigits != nil {
		s.digits = cfg.AppendRouteDigits(s.digits[:0], p.msg.Dest)
		digits = s.digits
	} else {
		digits = cfg.RouteDigits(p.msg.Dest)
	}
	p.stages = len(digits)
	words := cfg.Header.AppendBuild(p.words[:0], digits)
	headerLen := len(words)
	words = AppendPackBytes(words, p.msg.Payload, lw)
	var ck word.Checksum
	for _, w := range words[headerLen:] {
		ck.Add(w)
	}
	p.sentCRC = ck.Sum()
	words = word.AppendChecksum(words, p.sentCRC, lw)
	p.words = append(words, word.Word{Kind: word.Turn})
	// Expected per-stage checksums, one set per lane: each routing
	// component checksums the slice of the stream its lane carries.
	if len(p.expected) != cfg.Lanes {
		p.expected = make([][]uint8, cfg.Lanes)
	}
	for lane := 0; lane < cfg.Lanes; lane++ {
		laneStream := p.words
		if cfg.Lanes > 1 {
			s.laneBuf = appendLaneSlice(s.laneBuf[:0], p.words, lane, cfg.Width)
			laneStream = s.laneBuf
		}
		p.expected[lane], s.ckScratch =
			cfg.Header.AppendExpectedStageChecksums(p.expected[lane][:0], laneStream, s.ckScratch)
	}
}

// laneSlice projects a logical word stream onto one cascade lane: payload
// bits are sliced, control words replicated — exactly what the lane's
// routing component receives.
//
//metrovet:alloc per-attempt lane projection, not a per-cycle path
func laneSlice(stream []word.Word, lane, lanes, width int) []word.Word {
	if lanes == 1 {
		return stream
	}
	return appendLaneSlice(make([]word.Word, 0, len(stream)), stream, lane, width)
}

// appendLaneSlice is the allocation-free core of laneSlice: the lane's
// projection appends to dst, which is returned.
//
//metrovet:alloc appends into caller-owned scratch; steady state reuses capacity
//metrovet:width lane < Lanes and width = cfg.Width, so lane*width < Width*Lanes <= 32 (validated by New)
//metrovet:truncate lane and width are nonnegative (lane is a loop index, width a validated channel width)
func appendLaneSlice(dst []word.Word, stream []word.Word, lane, width int) []word.Word {
	for _, w := range stream {
		switch w.Kind {
		case word.Data, word.ChecksumWord:
			dst = append(dst, word.Word{Kind: w.Kind,
				Payload: (w.Payload >> uint(lane*width)) & word.Mask(width)})
		case word.Empty, word.Route, word.HeaderPad, word.DataIdle,
			word.Turn, word.Status, word.Drop:
			// Control words are replicated across lanes.
			dst = append(dst, w)
		}
	}
	return dst
}

// eval advances the sender's per-cycle state machine.
//
//metrovet:bounds idx < len(words) is the streaming invariant: idx resets to 0 per attempt and sSending exits the moment idx reaches len(words)
func (s *sender) eval(cycle uint64) {
	switch s.state {
	case sIdle:
		return

	case sCooldown:
		s.cooldown--
		if s.cooldown <= 0 {
			s.state = sIdle
		}
		return

	case sDropping:
		s.link.Send(word.Word{Kind: word.Drop})
		s.state = sCooldown
		s.cooldown = s.e.cfg.CloseGap
		p := s.dropped
		s.dropped = nil
		switch s.afterDrop {
		case dropFinish:
			s.e.finish(p, true, cycle)
		case dropRetry:
			s.retryOrFailPending(p, cycle)
		case dropNone:
			// Disposition already applied when the drop was decided.
		}
		s.afterDrop = dropNone
		return

	case sSending:
		if s.link.RecvBCB() {
			s.p.res.BlockedFast++
			s.e.trace(cycle, TraceBlockedFast, s.p.msg.ID, 0, 0)
			s.retryOrFail(cycle)
			s.link.Send(word.Word{Kind: word.Drop})
			s.state = sCooldown
			s.cooldown = s.e.cfg.CloseGap
			return
		}
		s.link.Send(s.p.words[s.idx])
		s.idx++
		if s.idx == len(s.p.words) {
			s.state = sListening
			s.listenStart = cycle
			s.e.trace(cycle, TraceTurnSent, s.p.msg.ID, s.p.res.Retries+1, 0)
		}
		return

	case sListening:
		// Hold the connection open while receiving.
		s.link.Send(word.Word{Kind: word.DataIdle})
		if s.link.RecvBCB() {
			s.p.res.BlockedFast++
			s.e.trace(cycle, TraceBlockedFast, s.p.msg.ID, 0, 0)
			s.abortNow(cycle)
			return
		}
		w := s.link.Recv()
		s.parse.feed(w)
		switch {
		case s.parse.done:
			s.complete(cycle)
		case s.parse.closed:
			// Detailed blocked reply (or far-end close): retry.
			s.p.res.BlockedDetailed++
			s.p.res.LastBlockedStage = s.parse.blockedStage
			s.e.trace(cycle, TraceBlockedDetailed, s.p.msg.ID, s.parse.blockedStage, 0)
			p := s.p
			s.p = nil
			s.retryOrFailPending(p, cycle)
			s.state = sCooldown
			s.cooldown = s.e.cfg.CloseGap
		case s.parse.failed:
			s.p.res.ChecksumFailures++
			s.e.trace(cycle, TraceChecksumFail, s.p.msg.ID, 0, 0)
			s.abortNow(cycle)
		case cycle-s.listenStart > s.e.cfg.ListenTimeout:
			s.p.res.Timeouts++
			s.e.trace(cycle, TraceTimeout, s.p.msg.ID, 0, 0)
			s.abortNow(cycle)
		}
	}
}

// abortNow transmits a DROP next cycle and retries (or fails) the message.
func (s *sender) abortNow(cycle uint64) {
	s.state = sDropping
	s.afterDrop = dropNone
	s.dropped = nil
	s.retryOrFail(cycle)
}

// complete finishes a successful parse: verify checksums, close the
// connection, and report.
//
//metrovet:bounds the localization condition checks lane < len(expected) and stage < len(expected[lane]) before indexing expected; stage*lanes+lane < stages*lanes = len(routerCks) by stageCount's definition
func (s *sender) complete(cycle uint64) {
	p := s.p
	s.p = nil
	// Fault localization: first stage whose reported checksum (any lane)
	// disagrees with the expected value for that lane's slice.
	lanes := s.parse.lanes
	stages := s.parse.stageCount()
localize:
	for stage := 0; stage < stages; stage++ {
		for lane := 0; lane < lanes; lane++ {
			got := s.parse.routerCks[stage*lanes+lane]
			if lane < len(p.expected) && stage < len(p.expected[lane]) &&
				got != p.expected[lane][stage] {
				p.res.SuspectStage = stage
				break localize
			}
		}
	}
	nack := s.parse.destStatus&word.StatusNack != 0
	e2eOK := s.parse.destCk == p.sentCRC
	replyOK := true
	if s.parse.gotReplyCk {
		var ck word.Checksum
		for _, w := range s.parse.reply {
			ck.Add(w)
		}
		replyOK = ck.Sum() == s.parse.replyCk
	}
	delivered := !nack && e2eOK && replyOK
	p.res.Done = cycle
	// Close the connection.
	s.state = sDropping
	s.dropped = p
	if delivered {
		p.res.Reply = UnpackBytes(s.parse.reply, s.e.cfg.logicalWidth())
		s.afterDrop = dropFinish
	} else {
		p.res.ChecksumFailures++
		s.e.trace(cycle, TraceChecksumFail, p.msg.ID, 0, 0)
		s.afterDrop = dropRetry
	}
}

func (s *sender) retryOrFail(cycle uint64) {
	p := s.p
	s.p = nil
	s.retryOrFailPending(p, cycle)
}

func (s *sender) retryOrFailPending(p *pending, cycle uint64) {
	p.res.Retries++
	if p.res.Retries > s.e.cfg.RetryLimit {
		s.e.finish(p, false, cycle)
		return
	}
	s.e.trace(cycle, TraceRetried, p.msg.ID, p.res.Retries, 0)
	s.e.retry(p)
}

// --- receiver ---------------------------------------------------------

type rState uint8

const (
	rIdle rState = iota
	rAssemble
	rReply
	rClosing
)

var rStateNames = [...]string{
	rIdle:     "IDLE",
	rAssemble: "ASSEMBLE",
	rReply:    "REPLY",
	rClosing:  "CLOSING",
}

// String returns the state mnemonic for logs and test failures.
func (s rState) String() string {
	if int(s) < len(rStateNames) {
		return rStateNames[s]
	}
	return fmt.Sprintf("rState(%d)", uint8(s))
}

type receiver struct {
	e     *Endpoint
	link  Channel
	state rState

	payload []word.Word
	ckbuf   []word.Word
	gotCk   bool
	e2e     uint8

	reply      []word.Word
	replyIdx   int
	replyDelay int
	skipCk     int
	intact     bool
}

// reset returns the receiver to rIdle while preserving the assembled-word
// and reply buffers, which are reused across messages.
func (r *receiver) reset() {
	r.state = rIdle
	r.payload = r.payload[:0]
	r.ckbuf = r.ckbuf[:0]
	r.gotCk = false
	r.e2e = 0
	r.reply = r.reply[:0]
	r.replyIdx = 0
	r.replyDelay = 0
	r.skipCk = 0
	r.intact = false
}

// eval advances the receiver's per-cycle state machine.
//
//metrovet:width Width and logicalWidth are validated into [1,32] by New
//metrovet:bounds replyIdx < len(reply) is the rReply invariant: replyIdx resets with the buffer and the state leaves rReply when it reaches len(reply)
func (r *receiver) eval(cycle uint64) {
	w := r.link.Recv()
	// End-to-end checksum groups are sized to the logical width; the
	// router-injected status checksums skipped in rClosing are sized to
	// the physical component width.
	cw := word.ChecksumWords(r.e.cfg.logicalWidth())

	switch r.state {
	case rIdle:
		switch w.Kind {
		case word.Data, word.ChecksumWord, word.Turn:
			r.state = rAssemble
			r.assemble(w, cw, cycle)
		case word.Empty, word.Route, word.HeaderPad, word.DataIdle,
			word.Status, word.Drop:
			// Idle channel, idle fill, and stray control words are ignored;
			// ROUTE and HeaderPad words were consumed by the routers.
		}

	case rAssemble:
		r.assemble(w, cw, cycle)

	case rReply:
		if w.Kind == word.Drop {
			r.reset() // source abandoned the connection mid-reply
			return
		}
		if r.replyDelay > 0 {
			// Reply data not ready yet (memory access in flight): hold
			// the connection open with idle fill.
			r.replyDelay--
			r.link.Send(word.Word{Kind: word.DataIdle})
			return
		}
		r.link.Send(r.reply[r.replyIdx])
		r.replyIdx++
		if r.replyIdx == len(r.reply) {
			r.state = rClosing
		}

	case rClosing:
		r.link.Send(word.Word{Kind: word.DataIdle})
		switch w.Kind {
		case word.Status:
			// Router-injected status toward us; skip its checksum words.
			r.skipCk = word.ChecksumWords(r.e.cfg.Width)
		case word.ChecksumWord:
			if r.skipCk > 0 {
				r.skipCk--
			}
		case word.Drop, word.Empty:
			// Either an explicit close or the upstream going silent ends
			// the connection; the message was verified at the TURN, so
			// deliver it.
			r.deliver()
			r.reset()
		case word.Route, word.HeaderPad, word.Data, word.DataIdle, word.Turn:
			// Residual stream words while the close propagates are ignored.
		}
	}
}

// assemble accumulates the forward stream of one message.
//
//metrovet:width logicalWidth is validated into [1,32] by New
func (r *receiver) assemble(w word.Word, cw int, cycle uint64) {
	switch w.Kind {
	case word.Data:
		//metrovet:alloc buffer reused across messages; grows only until the largest message size
		r.payload = append(r.payload, w)
	case word.ChecksumWord:
		//metrovet:alloc buffer reused across messages; bounded by the checksum word count
		r.ckbuf = append(r.ckbuf, w)
		if len(r.ckbuf) == cw {
			r.e2e = word.JoinChecksum(r.ckbuf, r.e.cfg.logicalWidth())
			r.gotCk = true
		}
	case word.Turn:
		r.turn(cycle)
	case word.Drop:
		r.reset() // aborted before the turn; nothing to deliver
	case word.Empty:
		r.reset() // upstream vanished
	case word.Route, word.HeaderPad, word.DataIdle, word.Status:
		// Idle fill and stray control words are skipped.
	}
}

// turn handles the reversal request: verify the message and transmit the
// reply (status, checksum of what we received, optional responder payload,
// and a TURN handing the channel back).
//
//metrovet:alloc per-message reply construction, not a per-cycle path
//metrovet:width logicalWidth is validated into [1,32] by New
func (r *receiver) turn(cycle uint64) {
	var ck word.Checksum
	for _, w := range r.payload {
		ck.Add(w)
	}
	computed := ck.Sum()
	intact := r.gotCk && computed == r.e2e
	arrived := 0
	if intact {
		arrived = 1
	}
	r.e.trace(cycle, TraceArrived, 0, arrived, 0)
	flags := word.StatusDest
	if !intact {
		flags |= word.StatusNack
	}
	width := r.e.cfg.logicalWidth()
	// The reply buffer is reused across messages (reset re-slices it).
	reply := append(r.reply[:0], word.Word{Kind: word.Status, Payload: flags & word.Mask(width)})
	reply = word.AppendChecksum(reply, computed, width)
	if intact && r.e.cfg.Responder != nil {
		data := r.e.cfg.Responder(UnpackBytes(r.payload, width))
		if len(data) > 0 {
			dw := PackBytes(data, width)
			var rck word.Checksum
			for _, w := range dw {
				rck.Add(w)
			}
			reply = append(reply, dw...)
			reply = word.AppendChecksum(reply, rck.Sum(), width)
		}
	}
	reply = append(reply, word.Word{Kind: word.Turn})
	r.reply = reply
	r.replyIdx = 0
	r.replyDelay = 0
	if intact && r.e.cfg.ResponderDelay != nil {
		r.replyDelay = r.e.cfg.ResponderDelay(UnpackBytes(r.payload, width))
	}
	r.state = rReply
	r.intact = intact
}

func (r *receiver) deliver() {
	if r.e.cfg.OnDeliver != nil {
		r.e.cfg.OnDeliver(UnpackBytes(r.payload, r.e.cfg.logicalWidth()), r.intact)
	}
}
