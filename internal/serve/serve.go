// Package serve is the metroserve daemon's engine room: a multi-tenant
// simulation service that accepts scenario specs in the versioned mf1
// codec (the same wire format `metrofuzz -replay` consumes), executes
// them on a bounded worker fleet under the full oracle battery, streams
// cycle-stamped progress and telemetry gauges over Server-Sent Events,
// and memoizes results in a content-addressed cache.
//
// The cache is sound because the engine is deterministic: metrovet
// enforces (and metrofuzz's differentials prove) that a run is a pure
// function of its spec, so equal canonical specs — under the same
// execution options and engine revision — have equal results, and a
// repeat submission can be served from stored bytes without
// simulating. Degradation is explicit rather than accidental: a full
// queue answers 429, a per-job deadline cancels cooperatively through
// the metrofuzz Progress hook and reports 504, and a draining server
// refuses new work with 503 while finishing what it accepted.
//
// See docs/SERVING.md for the HTTP API and the soundness argument in
// full.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"metro/internal/metrofuzz"
	"metro/internal/telemetry"
)

// Config sizes the daemon.
type Config struct {
	// Workers is the simulation worker fleet size; 0 starts no workers
	// (useful in tests that need jobs to stay queued).
	Workers int
	// QueueDepth bounds the admission queue; a submission beyond it is
	// refused with 429. Defaults to 64 when 0.
	QueueDepth int
	// CacheBytes is the result cache's LRU byte budget. Defaults to
	// 64 MiB when 0.
	CacheBytes int64
	// JobTimeout is the per-job execution deadline; 0 means no deadline.
	JobTimeout time.Duration
	// ProgressPeriod is the cycle period of progress frames (and
	// cancellation polls); 0 selects metrofuzz.DefaultProgressPeriod.
	ProgressPeriod uint64
	// TraceCapacity bounds each job's flight-recorder ring in events;
	// defaults to 1<<14 (≈400 KiB per running job).
	TraceCapacity int
	// GaugeEvery forwards only gauge samples whose cycle is a multiple
	// of this period to SSE subscribers; 0 forwards every sample.
	GaugeEvery uint64
	// Retention bounds completed-job records kept for polling beyond
	// the result cache (deadline results are never cached, so their
	// records are the only place to poll them). Defaults to 4096.
	Retention int
	// Logger receives structured request and job-state-transition logs
	// (one line each, carrying the job ID that names the SSE stream and
	// cache key). Nil discards logs — the library is silent unless the
	// embedder wires a logger; cmd/metroserve always does, selecting the
	// handler with its -log-format flag.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.TraceCapacity == 0 {
		c.TraceCapacity = 1 << 14
	}
	if c.Retention == 0 {
		c.Retention = 4096
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Counters is the queue/worker side of /v1/stats.
type Counters struct {
	Submitted        uint64 `json:"submitted"`        // accepted submissions, including coalesced and cache hits
	CacheServed      uint64 `json:"cacheServed"`      // submissions answered from the cache
	Coalesced        uint64 `json:"coalesced"`        // submissions attached to an in-flight duplicate
	Enqueued         uint64 `json:"enqueued"`         // jobs admitted to the queue
	Executed         uint64 `json:"executed"`         // jobs a worker actually simulated
	Deadline         uint64 `json:"deadline"`         // jobs canceled by deadline or drain
	RejectedFull     uint64 `json:"rejectedFull"`     // 429s
	RejectedDraining uint64 `json:"rejectedDraining"` // 503s
}

// Server is the HTTP front end plus the worker fleet. Create with New,
// mount as an http.Handler, and call Drain to shut down gracefully.
type Server struct {
	cfg   Config
	cache *Cache
	mux   *http.ServeMux
	met   *serveMetrics
	log   *slog.Logger

	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*job
	retained  []string // completed job IDs, oldest first
	queue     chan *job
	draining  bool
	counters  Counters
	queuedNow int
}

// New builds a server and starts its worker fleet.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		cache:     NewCache(cfg.CacheBytes),
		runCtx:    ctx,
		cancelRun: cancel,
		jobs:      make(map[string]*job),
		queue:     make(chan *job, cfg.QueueDepth),
	}
	s.log = cfg.Logger
	s.met = newServeMetrics(s)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// ServeHTTP implements http.Handler: dispatch wrapped in the
// request-observability layer — one route/code counter increment and
// one structured log line per request, carrying the job ID when the
// handler assigned one (the X-Job header names the SSE stream and
// cache key too).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now() //metrovet:ignore no-wallclock request-latency observability; never reaches simulation state
	_, route := s.mux.Handler(r)
	if route == "" {
		route = "unmatched"
	}
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	elapsed := time.Since(start) //metrovet:ignore no-wallclock request-latency observability; never reaches simulation state
	s.met.httpRequests.With(route, formatCode(sw.code)).Inc()
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
		slog.String("method", r.Method),
		slog.String("route", route),
		slog.Int("status", sw.code),
		slog.Int("bytes", sw.bytes),
		slog.Int64("dur_us", elapsed.Microseconds()),
		slog.String("job", sw.Header().Get("X-Job")),
	)
}

// Drain shuts the server down gracefully: new submissions are refused
// with 503, queued and running jobs are given until ctx expires to
// finish, then the remaining runs are canceled cooperatively (their
// submitters see status "deadline"). Drain returns once every worker
// has exited. It is idempotent; only the first call closes the queue.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.queue)
	}

	finished := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		s.cancelRun()
		return nil
	case <-ctx.Done():
		s.cancelRun() // cancel in-flight jobs at their next progress poll
		<-finished
		return ctx.Err()
	}
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		s.queuedNow--
		j.mu.Lock()
		j.state = StatusRunning
		j.mu.Unlock()
		s.mu.Unlock()
		wait := time.Since(j.enqueuedAt) //metrovet:ignore no-wallclock queue-wait histogram; never reaches simulation state
		s.met.queueWait.Observe(wait.Seconds())
		s.met.inflight.Add(1)
		s.log.LogAttrs(s.runCtx, slog.LevelInfo, "job",
			slog.String("job", j.id), slog.String("state", StatusRunning),
			slog.Int64("wait_us", wait.Microseconds()))
		s.runJob(j)
		s.met.inflight.Add(-1)
	}
}

// runJob executes one job under the oracle battery and publishes its
// result.
func (s *Server) runJob(j *job) {
	start := time.Now() //metrovet:ignore no-wallclock job-duration histogram; never reaches simulation state
	ctx := s.runCtx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	rec := telemetry.New(telemetry.Options{Capacity: s.cfg.TraceCapacity})
	// Compose the two streaming taps on the flight recorder: the SSE
	// gauge forwarder and the telemetry→metrics bridge both observe the
	// flusher's drain without blocking it.
	bridge := &telemetry.MetricsSink{
		Delivered: s.met.simDelivered,
		Retried:   s.met.simRetried,
		Failed:    s.met.simFailed,
	}
	gauges := j.gaugeSink(s.cfg.GaugeEvery)
	rec.SetSink(func(events []telemetry.Event) {
		bridge.Sink(events)
		gauges(events)
	})
	hooks := metrofuzz.Hooks{
		Recorder:       rec,
		EngineMetrics:  s.met.engineMetrics,
		KernelOracle:   j.engine == EngineKernel,
		ProgressPeriod: s.cfg.ProgressPeriod,
		Progress: func(cycle uint64, offered, completed, delivered int) bool {
			j.publishProgress(cycle, offered, completed, delivered)
			return ctx.Err() == nil
		},
	}
	rep := metrofuzz.Run(j.scn, hooks)

	res := buildResult(j, rep, rec)
	body := marshalResult(res)
	if res.Status != StatusDeadline {
		// Deadline outcomes are a property of this server's load, not
		// of the spec — caching one would serve a timing accident as if
		// it were the deterministic result.
		s.cache.Put(j.id, body)
	}
	j.complete(res, body)

	elapsed := time.Since(start) //metrovet:ignore no-wallclock job-duration histogram; never reaches simulation state
	s.met.executed.Inc()
	switch res.Status {
	case StatusFailed:
		s.met.durFailed.Observe(elapsed.Seconds())
	case StatusDeadline:
		s.met.durDeadline.Observe(elapsed.Seconds())
	default:
		s.met.durPassed.Observe(elapsed.Seconds())
	}
	s.met.publishJobSim(j.engine, res.Cycles, bridge.Stats())
	s.log.LogAttrs(s.runCtx, slog.LevelInfo, "job",
		slog.String("job", j.id), slog.String("state", res.Status),
		slog.Uint64("cycles", res.Cycles),
		slog.Int("offered", res.Offered), slog.Int("delivered", res.Delivered),
		slog.Int64("dur_us", elapsed.Microseconds()))

	s.mu.Lock()
	s.counters.Executed++
	if res.Status == StatusDeadline {
		s.counters.Deadline++
	}
	s.retain(j.id)
	s.mu.Unlock()
}

// retain records a completed job for polling and expires the oldest
// records beyond the retention bound. Callers hold s.mu.
func (s *Server) retain(id string) {
	s.retained = append(s.retained, id)
	for len(s.retained) > s.cfg.Retention {
		old := s.retained[0]
		s.retained = s.retained[1:]
		delete(s.jobs, old)
	}
}

// --- handlers ----------------------------------------------------------

// maxSpecBytes bounds a submission body: the longest legal mf1 line
// (custom topology plus a full fault plan) is far below this.
const maxSpecBytes = 1 << 16

// errorPayload is the JSON error body.
type errorPayload struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.Marshal(errorPayload{Error: fmt.Sprintf(format, args...)})
	w.Write(append(data, '\n'))
}

// writeResult serves a completed result body: 200 for settled runs,
// 504 for deadline outcomes (the job consumed its budget without
// finishing — the serving-path analogue of a gateway timeout).
func writeResult(w http.ResponseWriter, status string, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if status == StatusDeadline {
		w.WriteHeader(http.StatusGatewayTimeout)
	}
	w.Write(body)
}

// handleSubmit admits one spec: cache hit → stored bytes; duplicate of
// an in-flight job → coalesce; otherwise validate, enqueue (429 when
// full, 503 when draining) and either return 202 with the job ID or,
// with ?wait=1, block until the result (504 on request-context
// deadline).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(raw) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "spec exceeds %d bytes", maxSpecBytes)
		return
	}
	engine := EngineReference
	switch v := r.URL.Query().Get("engine"); v {
	case "", string(EngineReference):
	case string(EngineKernel):
		engine = EngineKernel
	default:
		writeError(w, http.StatusBadRequest, "unknown engine %q (want %q or %q)", v, EngineReference, EngineKernel)
		return
	}
	trace := r.URL.Query().Get("trace") == "1"

	// Strict decode: the body must be exactly one mf1 line. The error
	// text distinguishes the unknown-version case (it names the
	// expected magic) from malformed fields and trailing garbage.
	scn, err := metrofuzz.DecodeSpecStrict(strings.TrimSuffix(string(raw), "\n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec := metrofuzz.EncodeSpec(scn) // canonical form
	id := Key(spec, engine, trace)
	w.Header().Set("X-Job", id)

	s.mu.Lock()
	s.counters.Submitted++
	s.mu.Unlock()

	if body, ok := s.cache.Get(id); ok {
		s.mu.Lock()
		s.counters.CacheServed++
		s.mu.Unlock()
		s.met.admCacheHit.Inc()
		w.Header().Set("X-Cache", "hit")
		var res Result
		status := StatusPassed
		if json.Unmarshal(body, &res) == nil {
			status = res.Status
		}
		writeResult(w, status, body)
		return
	}
	w.Header().Set("X-Cache", "miss")

	s.mu.Lock()
	j, exists := s.jobs[id]
	if exists {
		j.mu.Lock()
		j.coalesced++
		j.mu.Unlock()
		s.counters.Coalesced++
		s.mu.Unlock()
		s.met.admCoalesced.Inc()
		w.Header().Set("X-Coalesced", "true")
	} else {
		if s.draining {
			s.counters.RejectedDraining++
			s.mu.Unlock()
			s.met.admRejectedDraining.Inc()
			writeError(w, http.StatusServiceUnavailable, "server is draining; resubmit elsewhere")
			return
		}
		j = newJob(id, spec, scn, engine, trace, s.jobObs())
		j.enqueuedAt = time.Now() //metrovet:ignore no-wallclock queue-wait histogram origin; never reaches simulation state
		select {
		case s.queue <- j:
			s.jobs[id] = j
			s.queuedNow++
			s.counters.Enqueued++
			s.mu.Unlock()
			s.met.admEnqueued.Inc()
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "job",
				slog.String("job", id), slog.String("state", StatusQueued),
				slog.String("engine", string(engine)), slog.Bool("trace", trace))
		default:
			s.counters.RejectedFull++
			s.mu.Unlock()
			s.met.admRejectedFull.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "queue full (%d jobs deep); retry later", s.cfg.QueueDepth)
			return
		}
	}

	if r.URL.Query().Get("wait") != "1" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		data, _ := json.Marshal(struct {
			ID     string `json:"id"`
			Status string `json:"status"`
		}{ID: id, Status: j.status()})
		w.Write(append(data, '\n'))
		return
	}

	select {
	case <-j.done:
		res, body, _ := j.snapshot()
		writeResult(w, res.Status, body)
	case <-r.Context().Done():
		writeError(w, http.StatusGatewayTimeout, "deadline exceeded waiting for job %s (still %s)", id, j.status())
	}
}

// handleJob reports a job's status or completed result.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		if res, body, done := j.snapshot(); done {
			w.Header().Set("X-Cache", "hit")
			writeResult(w, res.Status, body)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		data, _ := json.Marshal(struct {
			ID     string `json:"id"`
			Status string `json:"status"`
		}{ID: id, Status: j.status()})
		w.Write(append(data, '\n'))
		return
	}
	if body, ok := s.cache.Get(id); ok {
		w.Header().Set("X-Cache", "hit")
		var res Result
		status := StatusPassed
		if json.Unmarshal(body, &res) == nil {
			status = res.Status
		}
		writeResult(w, status, body)
		return
	}
	writeError(w, http.StatusNotFound, "unknown job %s", id)
}

// handleEvents streams a job's progress/gauge/done frames as SSE.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %s (completed jobs past retention have no event stream)", id)
		return
	}
	serveEvents(w, r, j)
}

// handleTrace serves a job's recorded mtr1 telemetry stream.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var res *Result
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		if got, _, done := j.snapshot(); done {
			res = got
		} else {
			writeError(w, http.StatusConflict, "job %s is still %s", id, j.status())
			return
		}
	} else if body, ok := s.cache.Get(id); ok {
		var parsed Result
		if err := json.Unmarshal(body, &parsed); err != nil {
			writeError(w, http.StatusInternalServerError, "corrupt cached result for %s", id)
			return
		}
		res = &parsed
	} else {
		writeError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	if res.Trace == "" {
		writeError(w, http.StatusNotFound, "job %s recorded no trace; submit with ?trace=1", id)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, res.Trace)
}

// statsPayload is the /v1/stats body.
type statsPayload struct {
	Workers    int        `json:"workers"`
	QueueDepth int        `json:"queueDepth"`
	Queued     int        `json:"queued"`
	Draining   bool       `json:"draining"`
	Counters   Counters   `json:"counters"`
	Cache      CacheStats `json:"cache"`
}

// handleStats reports the serving counters — the cache-hit counter here
// is the timing-independent witness that repeat submissions skip
// simulation.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	p := statsPayload{
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		Queued:     s.queuedNow,
		Draining:   s.draining,
		Counters:   s.counters,
	}
	s.mu.Unlock()
	p.Cache = s.cache.Stats()
	w.Header().Set("Content-Type", "application/json")
	data, _ := json.Marshal(p)
	w.Write(append(data, '\n'))
}

// handleHealthz is the pure liveness probe: 200 whenever the process
// can serve HTTP, regardless of drain or load. Restart-deciders watch
// this; traffic-routers watch /v1/readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, "{\"ok\":true}\n")
}

// readyzPayload is the /v1/readyz body.
type readyzPayload struct {
	Ready    bool `json:"ready"`
	Draining bool `json:"draining"`
	Queued   int  `json:"queued"`
	Capacity int  `json:"queueDepth"`
}

// handleReadyz is the readiness probe: 503 while draining (the server
// is leaving the fleet) or while the admission queue is saturated (the
// next submission would see 429 — route it elsewhere instead). Distinct
// from liveness so load balancers can pull a replica without anything
// restarting it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	p := readyzPayload{
		Draining: s.draining,
		Queued:   s.queuedNow,
		Capacity: s.cfg.QueueDepth,
	}
	s.mu.Unlock()
	p.Ready = !p.Draining && p.Queued < p.Capacity
	w.Header().Set("Content-Type", "application/json")
	if !p.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	data, _ := json.Marshal(p)
	w.Write(append(data, '\n'))
}
