package serve

import (
	"net/http"
	"strconv"

	"metro/internal/clock"
	"metro/internal/metrics"
	"metro/internal/telemetry"
)

// Histogram bucket layouts. Seconds-scaled, tuned to the serving SLOs:
// queue waits should sit in the low milliseconds on a healthy server,
// job durations span quick smoke specs to multi-second congested runs.
var (
	queueWaitBuckets   = []float64{0.001, 0.005, 0.02, 0.1, 0.5, 2, 10}
	jobDurationBuckets = []float64{0.01, 0.05, 0.25, 1, 5, 30, 120}
)

// jobSimGauges is the per-engine set of last-completed-job simulation
// gauges derived from the telemetry→metrics bridge: a live degradation
// signal (ROADMAP item 5), not a per-run archive — each completed job
// overwrites its engine's cells.
type jobSimGauges struct {
	throughput *metrics.Gauge // delivered messages per simulated cycle
	retryRate  *metrics.Gauge // retries per offered message
	dropRate   *metrics.Gauge // failures per offered message
	maxQueue   *metrics.Gauge // peak network-wide send-queue occupancy
}

// serveMetrics bundles everything the server exports on /v1/metrics.
// All handles are resolved at construction, so request- and job-path
// updates are single atomic operations; only the per-request route/code
// counter resolves labels dynamically (off the simulation path, where a
// map lookup is acceptable).
type serveMetrics struct {
	reg *metrics.Registry

	// HTTP plane.
	httpRequests *metrics.CounterVec // route, code

	// Admission plane. Submissions = cacheHit + coalesced + enqueued +
	// rejectedFull + rejectedDraining.
	admCacheHit         *metrics.Counter
	admCoalesced        *metrics.Counter
	admEnqueued         *metrics.Counter
	admRejectedFull     *metrics.Counter
	admRejectedDraining *metrics.Counter

	// Queue and worker plane.
	queueWait   *metrics.Histogram
	inflight    *metrics.Gauge
	executed    *metrics.Counter
	durPassed   *metrics.Histogram
	durFailed   *metrics.Histogram
	durDeadline *metrics.Histogram

	// SSE plane.
	sseSubscribers *metrics.Gauge
	sseDropped     *metrics.Counter

	// Simulation plane: fleet-wide message totals (fed by the
	// telemetry→metrics bridge on every job), per-engine last-job
	// gauges, and the engine's own throughput gauges.
	simDelivered  *metrics.Counter
	simRetried    *metrics.Counter
	simFailed     *metrics.Counter
	jobSim        map[Engine]*jobSimGauges // lookup only; never ranged over
	engineMetrics *clock.EngineMetrics
}

// newServeMetrics registers the full metric surface. Registration order
// is irrelevant to exposition (families serialize name-sorted); the
// grouping here mirrors the serving pipeline for readers.
func newServeMetrics(s *Server) *serveMetrics {
	r := metrics.NewRegistry()
	m := &serveMetrics{reg: r}

	m.httpRequests = r.CounterVec("serve_http_requests_total",
		"HTTP requests by mux route pattern and status code.", "route", "code")

	adm := r.CounterVec("serve_admission_total",
		"Submission admission outcomes; the sum is total submissions.", "outcome")
	m.admCacheHit = adm.With("cache_hit")
	m.admCoalesced = adm.With("coalesced")
	m.admEnqueued = adm.With("enqueued")
	m.admRejectedFull = adm.With("rejected_full")
	m.admRejectedDraining = adm.With("rejected_draining")

	r.GaugeFunc("serve_queue_depth", "Jobs waiting in the admission queue.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.queuedNow)
	})
	r.GaugeFunc("serve_draining", "1 while the server is draining, else 0.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.draining {
			return 1
		}
		return 0
	})
	r.Gauge("serve_queue_capacity", "Admission queue bound; submissions beyond it see 429.").
		Set(float64(s.cfg.QueueDepth))
	r.Gauge("serve_workers", "Configured simulation worker fleet size.").
		Set(float64(s.cfg.Workers))
	m.queueWait = r.Histogram("serve_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up.", queueWaitBuckets)
	m.inflight = r.Gauge("serve_jobs_inflight",
		"Jobs currently executing on workers (busy workers).")
	m.executed = r.Counter("serve_jobs_executed_total",
		"Jobs a worker actually simulated (cache hits and coalesced submissions excluded).")
	dur := r.HistogramVec("serve_job_duration_seconds",
		"Wall time per executed job by outcome; bucket counts double as per-outcome job totals.",
		jobDurationBuckets, "outcome")
	m.durPassed = dur.With(StatusPassed)
	m.durFailed = dur.With(StatusFailed)
	m.durDeadline = dur.With(StatusDeadline)

	r.CounterFunc("serve_cache_hits_total", "Result-cache hits.", func() float64 {
		return float64(s.cache.Stats().Hits)
	})
	r.CounterFunc("serve_cache_misses_total", "Result-cache misses.", func() float64 {
		return float64(s.cache.Stats().Misses)
	})
	r.CounterFunc("serve_cache_evictions_total", "Result-cache LRU evictions.", func() float64 {
		return float64(s.cache.Stats().Evictions)
	})
	r.GaugeFunc("serve_cache_entries", "Results currently cached.", func() float64 {
		return float64(s.cache.Stats().Entries)
	})
	r.GaugeFunc("serve_cache_bytes", "Bytes of cached result bodies.", func() float64 {
		return float64(s.cache.Stats().Bytes)
	})
	r.Gauge("serve_cache_budget_bytes", "Result-cache LRU byte budget.").
		Set(float64(s.cfg.CacheBytes))

	m.sseSubscribers = r.Gauge("serve_sse_subscribers",
		"Open SSE event-stream subscriptions across all jobs.")
	m.sseDropped = r.Counter("serve_sse_dropped_frames_total",
		"SSE frames dropped because a subscriber's buffer was full (slow client).")

	m.simDelivered = r.Counter("sim_messages_delivered_total",
		"Messages delivered and verified across all executed jobs (telemetry bridge).")
	m.simRetried = r.Counter("sim_messages_retried_total",
		"Message retries across all executed jobs (telemetry bridge).")
	m.simFailed = r.Counter("sim_messages_failed_total",
		"Messages that exhausted their retry budget across all executed jobs (telemetry bridge).")

	m.jobSim = make(map[Engine]*jobSimGauges)
	thr := r.GaugeVec("sim_job_delivered_throughput",
		"Last completed job: delivered messages per simulated cycle.", "engine")
	rr := r.GaugeVec("sim_job_retry_rate",
		"Last completed job: retries per offered message.", "engine")
	dr := r.GaugeVec("sim_job_drop_rate",
		"Last completed job: failed deliveries per offered message.", "engine")
	mq := r.GaugeVec("sim_job_max_queue_depth",
		"Last completed job: peak network-wide send-queue occupancy.", "engine")
	for _, eng := range []Engine{EngineReference, EngineKernel} {
		m.jobSim[eng] = &jobSimGauges{
			throughput: thr.With(string(eng)),
			retryRate:  rr.With(string(eng)),
			dropRate:   dr.With(string(eng)),
			maxQueue:   mq.With(string(eng)),
		}
	}

	m.engineMetrics = &clock.EngineMetrics{
		CyclesPerSec: r.Gauge("sim_cycles_per_second",
			"Engine throughput in simulated cycles per second, sampled on the metrics cycle grid; last-writer-wins across concurrent jobs."),
		StepNs: r.Gauge("sim_step_ns",
			"Mean wall nanoseconds per simulated cycle over the last sampling window; last-writer-wins across concurrent jobs."),
		KernelUnits: r.Gauge("sim_kernel_units",
			"Evaluation units in the most recently compiled kernel plane."),
		KernelLinks: r.Gauge("sim_kernel_links",
			"Arena-resident links in the most recently compiled kernel plane."),
		KernelArenas: r.Gauge("sim_kernel_arenas",
			"Delay-class link arenas in the most recently compiled kernel plane."),
	}

	return m
}

// publishJobSim stores one completed job's bridge tallies into its
// engine's last-job gauges and fleet-wide rate inputs.
func (m *serveMetrics) publishJobSim(engine Engine, cycles uint64, st telemetry.SinkStats) {
	g, ok := m.jobSim[engine]
	if !ok {
		return
	}
	if cycles > 0 {
		g.throughput.Set(float64(st.Delivered) / float64(cycles))
	}
	if st.Offered > 0 {
		g.retryRate.Set(float64(st.Retried) / float64(st.Offered))
		g.dropRate.Set(float64(st.Failed) / float64(st.Offered))
	}
	g.maxQueue.Set(float64(st.MaxQueueDepth))
}

// statusWriter captures the response code and size for the request log
// and the route/code counter, passing flushes through so SSE streaming
// works unchanged behind it.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleMetrics serves the Prometheus text exposition of a registry
// snapshot. The body carries no timestamps: byte differences between
// scrapes are value changes, nothing else.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.ContentType)
	s.met.reg.Snapshot().WriteText(w)
}

// formatCode renders an HTTP status for the route/code counter label.
func formatCode(code int) string { return strconv.Itoa(code) }
