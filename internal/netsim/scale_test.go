package netsim

import (
	"testing"

	"metro/internal/topo"
)

// TestRandomlyWiredNetworkDelivers runs traffic over the randomly wired
// multibutterfly variant (Leighton/Lisinski/Maggs-style wiring).
func TestRandomlyWiredNetworkDelivers(t *testing.T) {
	spec := topo.Figure1()
	spec.Wiring = topo.WiringRandom
	spec.Seed = 1234
	n, err := Build(Params{
		Spec: spec, Width: 8, DataPipe: 1, LinkDelay: 1,
		FastReclaim: true, Seed: 2, RetryLimit: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for src := 0; src < 16; src++ {
		for d := 1; d <= 4; d++ {
			n.Send(src, (src+d*3)%16, []byte{byte(src)})
			want++
		}
	}
	if !n.RunUntilQuiet(500000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != want {
		t.Fatalf("completed %d of %d", len(res), want)
	}
	for _, r := range res {
		if !r.Delivered {
			t.Fatalf("undelivered on random wiring: %+v", r)
		}
	}
}

// TestFourStageNetwork32 runs the 32-node, 4-stage network assumed by the
// Table 3 t20,32 estimates (radix-2 dilation-2 stages, METROJR routers).
func TestFourStageNetwork32(t *testing.T) {
	n, err := Build(Params{
		Spec: topo.Table3Network32(), Width: 4, DataPipe: 1, LinkDelay: 1,
		FastReclaim: true, Seed: 3, RetryLimit: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 32; src += 3 {
		n.Send(src, (src+11)%32, make([]byte, 20))
	}
	if !n.RunUntilQuiet(500000) {
		t.Fatal("network did not go quiet")
	}
	for _, r := range n.Results() {
		if !r.Delivered {
			t.Fatalf("undelivered: %+v", r)
		}
	}
}

// TestTwoStageRadix8Network runs the 2-stage 32-node network for 8x8
// routers (the METRO i=o=8 rows of Table 3).
func TestTwoStageRadix8Network(t *testing.T) {
	n, err := Build(Params{
		Spec: topo.Table3Network32Radix8(), Width: 4, DataPipe: 1, LinkDelay: 1,
		FastReclaim: true, Seed: 4, RetryLimit: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 32; src++ {
		n.Send(src, 31-src, []byte{byte(src), byte(src + 1)})
	}
	if !n.RunUntilQuiet(500000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != 32 {
		t.Fatalf("completed %d of 32", len(res))
	}
	for _, r := range res {
		if !r.Delivered {
			t.Fatalf("undelivered: %+v", r)
		}
	}
}

// TestLargeNetwork256 scales the construction to 256 endpoints (four
// radix-4 stages) and checks deliveries complete.
func TestLargeNetwork256(t *testing.T) {
	spec := topo.Spec{
		Endpoints:     256,
		EndpointLinks: 2,
		Stages: []topo.StageSpec{
			{Inputs: 8, Radix: 4, Dilation: 2},
			{Inputs: 8, Radix: 4, Dilation: 2},
			{Inputs: 8, Radix: 4, Dilation: 2},
			{Inputs: 4, Radix: 4, Dilation: 1},
		},
		Wiring: topo.WiringInterleave,
	}
	if err := topo.Validate(spec); err != nil {
		t.Fatal(err)
	}
	n, err := Build(Params{
		Spec: spec, Width: 8, DataPipe: 1, LinkDelay: 1,
		FastReclaim: true, Seed: 5, RetryLimit: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 256; src += 7 {
		n.Send(src, (src+101)%256, make([]byte, 20))
	}
	if !n.RunUntilQuiet(500000) {
		t.Fatal("network did not go quiet")
	}
	for _, r := range n.Results() {
		if !r.Delivered {
			t.Fatalf("undelivered at scale: %+v", r)
		}
	}
}

// TestSingleLinkEndpointVariant exercises the reduced-redundancy network
// with one network connection per endpoint: still functional, fewer
// paths.
func TestSingleLinkEndpointVariant(t *testing.T) {
	spec := topo.Spec{
		Endpoints:     64,
		EndpointLinks: 1,
		Stages: []topo.StageSpec{
			{Inputs: 8, Radix: 4, Dilation: 2},
			{Inputs: 8, Radix: 4, Dilation: 2},
			{Inputs: 4, Radix: 4, Dilation: 1},
		},
		Wiring: topo.WiringInterleave,
	}
	top, err := topo.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := topo.Build(topo.Figure3())
	if top.PathCount(0, 63)*2 != full.PathCount(0, 63) {
		t.Fatalf("ne=1 paths %d should be half of ne=2 paths %d",
			top.PathCount(0, 63), full.PathCount(0, 63))
	}
	n, err := Build(Params{
		Spec: spec, Width: 8, DataPipe: 1, LinkDelay: 1,
		FastReclaim: true, Seed: 6, RetryLimit: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 64; src += 5 {
		n.Send(src, (src+33)%64, []byte("one-link"))
	}
	if !n.RunUntilQuiet(500000) {
		t.Fatal("network did not go quiet")
	}
	for _, r := range n.Results() {
		if !r.Delivered {
			t.Fatalf("undelivered: %+v", r)
		}
	}
}
