package netsim

import (
	"math/rand"
	"testing"

	"metro/internal/nic"
	"metro/internal/topo"
)

// TestSoakRandomTrafficAndFaults is the long-haul robustness check:
// sustained random traffic on the Figure 3 network while links die, ports
// are disabled and re-enabled, and a router is lost — with router
// invariants audited throughout and liveness (completions keep happening)
// asserted per phase.
func TestSoakRandomTrafficAndFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	completed := 0
	delivered := 0
	n, err := Build(Params{
		Spec:          topo.Figure3(),
		Width:         8,
		DataPipe:      1,
		LinkDelay:     1,
		FastReclaim:   true,
		Seed:          67,
		RetryLimit:    800,
		ListenTimeout: 250,
		OnResult: func(r nic.Result) {
			completed++
			if r.Delivered {
				delivered++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	eps := n.Params.Spec.Endpoints

	phaseEnd := map[int]string{
		6000:  "healthy",
		12000: "degraded (links + router dead, ports flapped)",
		18000: "recovered (ports re-enabled)",
	}
	lastCompleted := 0
	audit := func(cycle int) {
		for s := range n.Routers {
			for _, r := range n.Routers[s] {
				if err := r.CheckInvariants(); err != nil {
					t.Fatalf("cycle %d: %v", cycle, err)
				}
			}
		}
	}
	for cycle := 0; cycle < 18000; cycle++ {
		// Steady random injection, roughly one message per three cycles.
		if rng.Intn(3) == 0 {
			src := rng.Intn(eps)
			dest := rng.Intn(eps)
			if dest == src {
				dest = (dest + 1) % eps
			}
			n.Send(src, dest, []byte{byte(cycle), byte(src), byte(dest)})
		}
		switch cycle {
		case 6000:
			// Degrade: kill three links and one router, flap some ports.
			n.OutLink(0, 3, 1).Kill()
			n.OutLink(1, 7, 4).Kill()
			n.OutLink(0, 12, 6).Kill()
			n.KillRouter(1, 2)
			n.RouterAt(0, 5).SetBackwardEnabled(0, false)
			n.RouterAt(0, 9).SetBackwardEnabled(3, false)
		case 12000:
			// Recover the flapped ports (the dead hardware stays dead).
			n.RouterAt(0, 5).SetBackwardEnabled(0, true)
			n.RouterAt(0, 9).SetBackwardEnabled(3, true)
		}
		n.Engine.Step()
		if cycle%500 == 499 {
			audit(cycle)
		}
		if label, ok := phaseEnd[cycle]; ok {
			if completed == lastCompleted {
				t.Fatalf("no completions during phase %q", label)
			}
			lastCompleted = completed
		}
	}
	if completed < 2000 {
		t.Fatalf("only %d messages completed in the soak", completed)
	}
	if delivered != completed {
		t.Fatalf("%d of %d messages failed permanently despite multipath redundancy",
			completed-delivered, completed)
	}
	t.Logf("soak: %d messages delivered across healthy/degraded/recovered phases", delivered)
}
