package analysis

import (
	"testing"
)

// callGraphFixture is a two-package program exercising every edge kind:
// a static cross-package call, a CHA-resolved interface dispatch, and a
// method-value reference.
func callGraphFixture(t *testing.T) *Program {
	t.Helper()
	return loadFixtureProgram(t,
		fixturePkg{path: "metro/internal/sink", files: map[string]string{
			"sink.go": `package sink

// Poker is dispatched through by the router package.
type Poker interface{ Poke(uint64) }

// Counter implements Poker.
type Counter struct{ n uint64 }

func (c *Counter) Poke(cycle uint64) { c.n++ }

// Helper is called statically across packages.
func Helper(x int) int { return x + 1 }
`,
		}},
		fixturePkg{path: "metro/internal/rtr", files: map[string]string{
			"rtr.go": `package rtr

import "metro/internal/sink"

type Router struct {
	p sink.Poker
	v int
}

func (r *Router) Eval(cycle uint64) {
	r.v = sink.Helper(r.v) // static cross-package edge
	r.p.Poke(cycle)        // interface edge, CHA -> (*sink.Counter).Poke
	f := r.helper          // method-value reference edge
	f()
}

func (r *Router) Commit(cycle uint64) {}

func (r *Router) helper() {}
`,
		}},
	)
}

func TestCallGraphEdges(t *testing.T) {
	prog := callGraphFixture(t)
	cg := BuildCallGraph(prog)

	eval := prog.FuncByKey("metro/internal/rtr.Router.Eval")
	if eval == nil {
		t.Fatal("Eval not indexed")
	}
	want := map[string]EdgeKind{
		"metro/internal/sink.Helper":       EdgeStatic,
		"metro/internal/sink.Counter.Poke": EdgeIface,
		"metro/internal/rtr.Router.helper": EdgeRef,
	}
	got := map[string]EdgeKind{}
	for _, e := range cg.Edges[eval] {
		got[e.Callee.Key] = e.Kind
		if e.Kind == EdgeIface {
			if e.IfaceRecv == nil || e.IfaceRecv.Obj().Name() != "Counter" {
				t.Errorf("iface edge recv = %v, want Counter", e.IfaceRecv)
			}
			if e.IfaceName != "sink.Poker" {
				t.Errorf("iface edge name = %q, want sink.Poker", e.IfaceName)
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
	for key, kind := range want {
		if got[key] != kind {
			t.Errorf("edge to %s = %v, want %v", key, got[key], kind)
		}
	}
}

func TestCallGraphReachable(t *testing.T) {
	prog := callGraphFixture(t)
	cg := BuildCallGraph(prog)
	eval := prog.FuncByKey("metro/internal/rtr.Router.Eval")
	reached := cg.Reachable([]RootedNode{{Node: eval, Root: "(*Router).Eval"}}, nil)

	poke := prog.FuncByKey("metro/internal/sink.Counter.Poke")
	ri, ok := reached[poke]
	if !ok {
		t.Fatal("interface-dispatched Poke not reached from Eval")
	}
	if ri.Root != "(*Router).Eval" || ri.Via != "sink.Poker" {
		t.Errorf("RootInfo = %+v, want root (*Router).Eval via sink.Poker", ri)
	}
	if _, ok := reached[prog.FuncByKey("metro/internal/rtr.Router.helper")]; !ok {
		t.Error("method-value helper not reached")
	}
	if _, ok := reached[prog.FuncByKey("metro/internal/rtr.Router.Commit")]; ok {
		t.Error("Commit reached without an edge")
	}
}

// TestTransitiveAnalyzers proves the rewired hot-path-alloc and
// eval-isolation rules follow the call graph across packages: a helper
// two packages away from Eval is on the hook.
func TestTransitiveAnalyzers(t *testing.T) {
	prog := loadFixtureProgram(t,
		fixturePkg{path: "metro/internal/util", files: map[string]string{
			"u.go": `package util

var registry = map[string]int{}

// Scratch allocates on every call.
func Scratch(n int) []int { return make([]int, n) }

// Register writes package-level state.
func Register(name string) { registry[name] = 1 }
`,
		}},
		fixturePkg{path: "metro/internal/comp2", files: map[string]string{
			"c.go": `package comp2

import "metro/internal/util"

type C struct{ buf []int }

func (c *C) Eval(cycle uint64) {
	c.buf = util.Scratch(4)
	util.Register("c")
}

func (c *C) Commit(cycle uint64) {}
`,
		}},
	)
	alloc := runHotPathAlloc(prog)
	found := false
	for _, f := range alloc {
		if f.Pos.Filename == "metro/internal/util/u.go" && f.Pos.Line == 6 {
			found = true
		}
	}
	if !found {
		t.Errorf("hot-path-alloc missed the cross-package make: %v", alloc)
	}

	iso := runEvalIsolation(prog)
	found = false
	for _, f := range iso {
		if f.Pos.Filename == "metro/internal/util/u.go" && f.Pos.Line == 9 {
			found = true
		}
	}
	if !found {
		t.Errorf("eval-isolation missed the cross-package global write: %v", iso)
	}
}
