//go:build !race

package metrofuzz

// raceEnabled reports that the race detector is not active, so the
// ensemble tests run at full size.
const raceEnabled = false
