package analysis

import "testing"

func TestHotPathAllocFlagsDirectAllocations(t *testing.T) {
	got := runRule(t, HotPathAlloc(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct {
	buf  []int
	pipe []int
}

func (c *comp) Eval(cycle uint64) {
	c.buf = append(c.buf, 1)
	c.pipe = make([]int, 4)
}

func (c *comp) Commit(cycle uint64) {
	c.buf = []int{1, 2}
}
`,
	})
	wantFindings(t, got, "hot-path-alloc",
		[2]any{"a.go", 9},  // append
		[2]any{"a.go", 10}, // make
		[2]any{"a.go", 14}, // slice literal
	)
}

func TestHotPathAllocFollowsIntraPackageCalls(t *testing.T) {
	got := runRule(t, HotPathAlloc(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct{ buf []int }

func (c *comp) Eval(cycle uint64)   { c.step() }
func (c *comp) Commit(cycle uint64) {}

func (c *comp) step() { c.buf = grow(c.buf) }

func grow(s []int) []int { return append(s, 1) }
`,
	})
	wantFindings(t, got, "hot-path-alloc", [2]any{"a.go", 10})
}

func TestHotPathAllocBoxingAndStrings(t *testing.T) {
	got := runRule(t, HotPathAlloc(), "metro/internal/core", map[string]string{
		"a.go": `package core

import "fmt"

type comp struct {
	last interface{}
	name string
}

func (c *comp) Eval(cycle uint64) {
	c.last = cycle
	c.name = c.name + "x"
	fmt.Println(c.name)
}

func (c *comp) Commit(cycle uint64) {}
`,
	})
	wantFindings(t, got, "hot-path-alloc",
		[2]any{"a.go", 11}, // interface boxing
		[2]any{"a.go", 12}, // string concat
		[2]any{"a.go", 13}, // fmt call (reported once, not also as boxing)
	)
}

func TestHotPathAllocCleanAndSuppressed(t *testing.T) {
	got := runRule(t, HotPathAlloc(), "metro/internal/core", map[string]string{
		"a.go": `package core

type comp struct {
	buf   []int
	state int
	peer  *comp
}

func (c *comp) Eval(cycle uint64) {
	// In-place work: indexing, reslicing, copy, pointer handoff.
	c.buf = c.buf[:0]
	for i := 0; i < 4 && i < cap(c.buf); i++ {
		c.state += i
	}
	copy(c.buf[:cap(c.buf)], c.buf)
	c.peer = &*c.peer
	//metrovet:alloc retry path runs at most once per delivered message
	c.buf = append(c.buf, c.state)
}

func (c *comp) Commit(cycle uint64) { c.drain() }

// drain hands the assembled message to the consumer.
//
//metrovet:alloc per-message delivery, not per-cycle
func (c *comp) drain() {
	out := make([]int, len(c.buf))
	copy(out, c.buf)
}

// helper is NOT reachable from Eval/Commit: allocation is fine here.
func (c *comp) helper() []int { return make([]int, 8) }
`,
	})
	wantFindings(t, got, "hot-path-alloc")
}

func TestHotPathAllocIgnoresNonComponents(t *testing.T) {
	// A type with only Eval (no Commit) is not a clock.Component.
	got := runRule(t, HotPathAlloc(), "metro/internal/core", map[string]string{
		"a.go": `package core

type half struct{ buf []int }

func (h *half) Eval(cycle uint64) { h.buf = make([]int, 8) }
`,
	})
	wantFindings(t, got, "hot-path-alloc")
}
