package latmodel

// Baseline models one contemporary routing technology from the paper's
// Table 5, with the assumptions needed to reproduce its t20,32 estimate: a
// per-hop (or per-fabric) switching latency, a hop-count range for a
// 32-node configuration, per-bit transfer time, and any fixed protocol
// overhead (e.g. a software acknowledgment crossing).
type Baseline struct {
	// Name and Reference label the row.
	Name string
	// LatencyDesc reproduces the paper's "Latency" column.
	LatencyDesc string
	// TBitDesc reproduces the paper's t_bit column.
	TBitDesc string
	// HopNS is the switching latency per hop (ns).
	HopNS float64
	// MinHops and MaxHops bound the path length in a 32-node machine.
	MinHops, MaxHops int
	// TBitNS is the per-bit transfer time (ns/bit).
	TBitNS float64
	// MsgBits is the bits transferred for a 20-byte message including any
	// technology-specific header overhead.
	MsgBits int
	// FixedNS is fixed per-message overhead independent of hops (ns).
	FixedNS float64
	// AckNS is additional high-end overhead for technologies whose
	// reliable delivery requires a software acknowledgment (an extra
	// message-transfer time, as for the CM-5's active messages).
	AckNS float64
	// PaperMin and PaperMax are the t20,32 values (ns) Table 5 prints
	// (equal when the paper gives a single number).
	PaperMin, PaperMax float64
	// Assumption documents the modeling choices for the row.
	Assumption string
}

// Min returns the computed low t20,32 estimate (ns): nearest placement,
// single crossing.
func (b Baseline) Min() float64 {
	return float64(b.MinHops)*b.HopNS + float64(b.MsgBits)*b.TBitNS + b.FixedNS
}

// Max returns the computed high t20,32 estimate (ns): farthest placement
// plus, where the technology needs one, the acknowledgment overhead.
func (b Baseline) Max() float64 {
	return float64(b.MaxHops)*b.HopNS + float64(b.MsgBits)*b.TBitNS + b.FixedNS + b.AckNS
}

// Table5 returns the contemporary-technology rows of the paper's Table 5.
// Computed Min/Max land within a few percent of the paper's estimates;
// per-row assumptions record how hop counts and overheads were derived.
func Table5() []Baseline {
	return []Baseline{
		{
			Name:        "DEC GIGAswitch",
			LatencyDesc: "<15 us/22-port xbar",
			TBitDesc:    "10 ns/1 b",
			HopNS:       15000, MinHops: 1, MaxHops: 1,
			TBitNS: 10, MsgBits: 160,
			PaperMin: 16000, PaperMax: 16000,
			Assumption: "single FDDI crossbar hop at the quoted worst-case fabric latency plus serial transfer of 160 bits",
		},
		{
			Name:        "KSR KSR-1",
			LatencyDesc: "3 us/32-node ring",
			TBitDesc:    "30 ns/8 b",
			HopNS:       3000, MinHops: 1, MaxHops: 1,
			TBitNS: 30.0 / 8, MsgBits: 160,
			PaperMin: 3500, PaperMax: 3500,
			Assumption: "one traversal of the 32-node ring plus 20 byte-times on the 8-bit ring channel",
		},
		{
			Name:        "TMC CM-5 Router",
			LatencyDesc: "250 ns/4-ary switch",
			TBitDesc:    "25 ns/4 b",
			HopNS:       250, MinHops: 2, MaxHops: 6,
			TBitNS: 25.0 / 4, MsgBits: 160,
			AckNS:    1000,
			PaperMin: 1500, PaperMax: 3500,
			Assumption: "height-3 4-ary fat tree for 32 nodes: 2 switch hops nearest, 6 farthest; reliable delivery adds a software-acknowledgment transfer time at the high end",
		},
		{
			Name:        "INMOS C104",
			LatencyDesc: "<1 us/32-port xbar",
			TBitDesc:    "10 ns/1 b",
			HopNS:       900, MinHops: 1, MaxHops: 1,
			TBitNS: 10, MsgBits: 160,
			PaperMin: 2500, PaperMax: 2500,
			Assumption: "single 32-port crossbar hop near the quoted bound plus bit-serial transfer of 160 bits",
		},
		{
			Name:        "MIT J-Machine",
			LatencyDesc: "60 ns/3D router",
			TBitDesc:    "30 ns/8 b",
			HopNS:       60, MinHops: 1, MaxHops: 7,
			TBitNS: 30.0 / 8, MsgBits: 160,
			PaperMin: 660, PaperMax: 1020,
			Assumption: "4x4x2 mesh for 32 nodes: 1 hop nearest, 3+3+1=7 farthest; 20 byte-times on the 8-bit channel",
		},
		{
			Name:        "Caltech MRC",
			LatencyDesc: "50-100 ns/2D router",
			TBitDesc:    "11 ns/8 b",
			HopNS:       55, MinHops: 1, MaxHops: 10,
			TBitNS: 11.0 / 8, MsgBits: 176,
			PaperMin: 300, PaperMax: 800,
			Assumption: "8x4 mesh for 32 nodes: 1 hop nearest, 7+3=10 farthest at the mid-range per-hop latency; two header flits join the 20 payload bytes",
		},
		{
			Name:        "Mercury RACE",
			LatencyDesc: "100 ns/6-port xbar",
			TBitDesc:    "5 ns/8 b",
			HopNS:       100, MinHops: 4, MaxHops: 4,
			TBitNS: 5.0 / 8, MsgBits: 160,
			PaperMin: 500, PaperMax: 500,
			Assumption: "four 6-port crossbar hops across a 32-node RACE fat-tree fabric plus 20 byte-times",
		},
	}
}
