package nic

import (
	"testing"

	"metro/internal/word"
)

func feedAll(p *parser, ws ...word.Word) {
	for _, w := range ws {
		p.feed(w)
	}
}

func statusWord(flags uint32) word.Word { return word.Word{Kind: word.Status, Payload: flags} }

func TestParserHappyPath(t *testing.T) {
	p := newParser(8, 8, 1, 2)
	var ck word.Checksum
	ck.AddByte(0x11)
	feedAll(&p,
		word.Word{Kind: word.DataIdle}, // idle fill is transparent
		statusWord(0),                  // router 0
		word.SplitChecksum(0xAA, 8)[0],
		word.Word{Kind: word.DataIdle},
		statusWord(0), // router 1
		word.SplitChecksum(0xBB, 8)[0],
		statusWord(word.StatusDest), // destination ack
		word.SplitChecksum(0xCC, 8)[0],
		word.Word{Kind: word.Turn},
	)
	if !p.done || p.failed || p.closed {
		t.Fatalf("parser state: %+v", p)
	}
	if len(p.routerCks) != 2 || p.routerCks[0] != 0xAA || p.routerCks[1] != 0xBB {
		t.Fatalf("router checksums = %#x", p.routerCks)
	}
	if p.destCk != 0xCC {
		t.Fatalf("dest checksum = %#x", p.destCk)
	}
	if len(p.reply) != 0 {
		t.Fatalf("unexpected reply words: %v", p.reply)
	}
}

func TestParserWithReply(t *testing.T) {
	p := newParser(8, 8, 1, 1)
	feedAll(&p,
		statusWord(0),
		word.SplitChecksum(0x01, 8)[0],
		statusWord(word.StatusDest),
		word.SplitChecksum(0x02, 8)[0],
		word.MakeData(0x10, 8),
		word.MakeData(0x20, 8),
		word.SplitChecksum(0x7F, 8)[0],
		word.Word{Kind: word.Turn},
	)
	if !p.done {
		t.Fatalf("parser not done: %+v", p)
	}
	if len(p.reply) != 2 || p.reply[0].Payload != 0x10 {
		t.Fatalf("reply = %v", p.reply)
	}
	if !p.gotReplyCk || p.replyCk != 0x7F {
		t.Fatalf("reply checksum = %#x (got=%v)", p.replyCk, p.gotReplyCk)
	}
}

func TestParserBlockedAtStage(t *testing.T) {
	p := newParser(8, 8, 1, 3)
	feedAll(&p,
		statusWord(0), // stage 0 fine
		word.SplitChecksum(0x11, 8)[0],
		statusWord(word.StatusBlocked), // stage 1 blocked
		word.SplitChecksum(0x22, 8)[0],
		word.Word{Kind: word.Drop},
	)
	if !p.closed {
		t.Fatalf("parser should be closed: %+v", p)
	}
	if p.blockedStage != 1 {
		t.Fatalf("blockedStage = %d, want 1", p.blockedStage)
	}
	if p.done {
		t.Fatal("blocked parse must not be done")
	}
}

func TestParserNackRecorded(t *testing.T) {
	p := newParser(8, 8, 1, 1)
	feedAll(&p,
		statusWord(0),
		word.SplitChecksum(0, 8)[0],
		statusWord(word.StatusDest|word.StatusNack),
		word.SplitChecksum(0, 8)[0],
		word.Word{Kind: word.Turn},
	)
	if !p.done {
		t.Fatalf("parser not done: %+v", p)
	}
	if p.destStatus&word.StatusNack == 0 {
		t.Fatal("nack flag lost")
	}
}

func TestParserSplitChecksumWidth4(t *testing.T) {
	p := newParser(4, 4, 1, 1)
	cks := word.SplitChecksum(0x5A, 4)
	feedAll(&p, statusWord(0))
	feedAll(&p, cks...)
	if len(p.routerCks) != 1 || p.routerCks[0] != 0x5A {
		t.Fatalf("router cks = %#x", p.routerCks)
	}
}

func TestParserProtocolViolation(t *testing.T) {
	p := newParser(8, 8, 1, 1)
	feedAll(&p, word.MakeData(1, 8)) // data before any status
	if !p.failed {
		t.Fatal("data before status should fail the parse")
	}
}

func TestParserDropAnywhereCloses(t *testing.T) {
	p := newParser(8, 8, 1, 2)
	feedAll(&p, statusWord(0), word.Word{Kind: word.Drop})
	if !p.closed {
		t.Fatal("drop should close the parse")
	}
}

func TestParserNoiseAfterBlockedIgnored(t *testing.T) {
	p := newParser(8, 8, 1, 2)
	feedAll(&p,
		statusWord(word.StatusBlocked),
		word.SplitChecksum(0x10, 8)[0],
		word.MakeData(0xFF, 8), // garbage on a dying connection
		word.Word{Kind: word.Drop},
	)
	if p.failed {
		t.Fatal("noise after blocked status must not fail the parse")
	}
	if !p.closed {
		t.Fatal("drop should still close")
	}
}
