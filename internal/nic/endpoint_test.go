package nic

import (
	"bytes"
	"testing"

	"metro/internal/clock"
	"metro/internal/link"
	"metro/internal/word"
)

// loopback wires a source endpoint directly to a destination endpoint over
// one link with no routers: a zero-stage network. The header is empty and
// the reply parser expects the destination status immediately, which
// isolates the endpoint state machines from the router model.
type loopback struct {
	eng      *clock.Engine
	src, dst *Endpoint
	wire     *link.Link
	results  []Result
	delivers [][]byte
	intact   []bool
}

func newLoopback(t *testing.T, mutateSrc, mutateDst func(*Config)) *loopback {
	t.Helper()
	lb := &loopback{eng: clock.New()}
	srcCfg := Config{
		ID:    0,
		Width: 8,
		Header: HeaderSpec{
			Width: 8, Stages: nil, // zero routing stages
		},
		RouteDigits:   func(dest int) []int { return nil },
		RetryLimit:    5,
		ListenTimeout: 100,
		CloseGap:      3,
		OnResult:      func(r Result) { lb.results = append(lb.results, r) },
	}
	dstCfg := srcCfg
	dstCfg.ID = 1
	dstCfg.OnResult = nil
	dstCfg.OnDeliver = func(p []byte, ok bool) {
		lb.delivers = append(lb.delivers, append([]byte(nil), p...))
		lb.intact = append(lb.intact, ok)
	}
	if mutateSrc != nil {
		mutateSrc(&srcCfg)
	}
	if mutateDst != nil {
		mutateDst(&dstCfg)
	}
	var err error
	lb.src, err = New(srcCfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.dst, err = New(dstCfg)
	if err != nil {
		t.Fatal(err)
	}
	lb.wire = link.New("loop", 1)
	lb.src.AttachInject(lb.wire.A())
	lb.dst.AttachDeliver(lb.wire.B())
	lb.eng.Add(lb.wire, lb.src, lb.dst)
	return lb
}

func (lb *loopback) run(cycles int) {
	for i := 0; i < cycles; i++ {
		lb.eng.Step()
	}
}

func TestLoopbackDelivery(t *testing.T) {
	lb := newLoopback(t, nil, nil)
	lb.src.Offer(Message{ID: 1, Dest: 1, Payload: []byte("direct")})
	lb.run(60)
	if len(lb.results) != 1 || !lb.results[0].Delivered {
		t.Fatalf("results = %+v", lb.results)
	}
	if len(lb.delivers) != 1 || !bytes.Equal(lb.delivers[0], []byte("direct")) {
		t.Fatalf("delivers = %q", lb.delivers)
	}
	if !lb.intact[0] {
		t.Fatal("checksum flagged on a clean wire")
	}
}

func TestLoopbackRequestReply(t *testing.T) {
	lb := newLoopback(t, nil, func(c *Config) {
		c.Responder = func(p []byte) []byte { return append([]byte("re:"), p...) }
	})
	lb.src.Offer(Message{ID: 1, Dest: 1, Payload: []byte("q")})
	lb.run(80)
	if len(lb.results) != 1 || !lb.results[0].Delivered {
		t.Fatalf("results = %+v", lb.results)
	}
	if got := string(lb.results[0].Reply); got != "re:q" {
		t.Fatalf("reply = %q", got)
	}
}

func TestCorruptionNackAndRetry(t *testing.T) {
	// Corrupt the first two attempts' data; the destination NACKs, the
	// source retries, and the third attempt (wire healed) succeeds.
	attempts := 0
	lb := newLoopback(t, nil, nil)
	lb.wire.SetCorruptor(func(w word.Word) word.Word {
		if w.Kind == word.Data && attempts < 2 {
			w.Payload ^= 0x1
		}
		return w
	}, nil)
	// Count attempts by watching TURN words cross.
	lb.wire.SetCorruptor(func(w word.Word) word.Word {
		if w.Kind == word.Turn {
			attempts++
		}
		if w.Kind == word.Data && attempts < 2 {
			w.Payload ^= 0x1
		}
		return w
	}, nil)
	lb.src.Offer(Message{ID: 1, Dest: 1, Payload: []byte{0x10, 0x20}})
	lb.run(300)
	if len(lb.results) != 1 {
		t.Fatalf("results = %+v", lb.results)
	}
	r := lb.results[0]
	if !r.Delivered {
		t.Fatalf("never delivered: %+v", r)
	}
	if r.Retries < 1 || r.ChecksumFailures < 1 {
		t.Fatalf("corruption not recorded: %+v", r)
	}
}

func TestRetryLimitExhaustion(t *testing.T) {
	// Permanently corrupt the wire: every attempt NACKs until the retry
	// limit reports the message undeliverable.
	lb := newLoopback(t, func(c *Config) { c.RetryLimit = 3 }, nil)
	lb.wire.SetCorruptor(func(w word.Word) word.Word {
		if w.Kind == word.Data {
			w.Payload ^= 0x1
		}
		return w
	}, nil)
	lb.src.Offer(Message{ID: 1, Dest: 1, Payload: []byte{0xF0}})
	lb.run(600)
	if len(lb.results) != 1 {
		t.Fatalf("results = %+v", lb.results)
	}
	r := lb.results[0]
	if r.Delivered {
		t.Fatal("corrupted message reported delivered")
	}
	if r.Retries != 4 { // RetryLimit 3 allows 4 attempts total
		t.Fatalf("retries = %d, want 4", r.Retries)
	}
}

func TestWatchdogTimeoutOnDeadWire(t *testing.T) {
	lb := newLoopback(t, func(c *Config) {
		c.RetryLimit = 2
		c.ListenTimeout = 50
	}, nil)
	lb.wire.Kill()
	lb.src.Offer(Message{ID: 1, Dest: 1, Payload: []byte{1, 2, 3}})
	lb.run(1000)
	if len(lb.results) != 1 {
		t.Fatalf("results = %+v", lb.results)
	}
	r := lb.results[0]
	if r.Delivered {
		t.Fatal("dead wire delivered")
	}
	if r.Timeouts == 0 {
		t.Fatalf("watchdog never fired: %+v", r)
	}
}

func TestQueueDrainsInOrder(t *testing.T) {
	var order []uint64
	lb := newLoopback(t, func(c *Config) {
		c.OnResult = func(r Result) { order = append(order, r.Msg.ID) }
	}, nil)
	for i := 1; i <= 4; i++ {
		lb.src.Offer(Message{ID: uint64(i), Dest: 1, Payload: []byte{byte(i)}})
	}
	if lb.src.QueueLen() != 4 {
		t.Fatalf("queue = %d", lb.src.QueueLen())
	}
	lb.run(400)
	if len(order) != 4 {
		t.Fatalf("completed %d of 4", len(order))
	}
	for i, id := range order {
		if id != uint64(i+1) {
			t.Fatalf("completion order %v", order)
		}
	}
	if lb.src.Busy() || lb.src.QueueLen() != 0 {
		t.Fatal("endpoint not idle after drain")
	}
}

func TestReceivingReflectsActivity(t *testing.T) {
	lb := newLoopback(t, nil, nil)
	if lb.dst.Receiving() {
		t.Fatal("fresh endpoint should not be receiving")
	}
	lb.src.Offer(Message{ID: 1, Dest: 1, Payload: make([]byte, 16)})
	sawReceiving := false
	for i := 0; i < 80; i++ {
		lb.eng.Step()
		if lb.dst.Receiving() {
			sawReceiving = true
		}
	}
	if !sawReceiving {
		t.Fatal("receiver never reported activity")
	}
	if lb.dst.Receiving() {
		t.Fatal("receiver stuck active after close")
	}
}

func TestConfigValidationErrors(t *testing.T) {
	_, err := New(Config{Width: 8, Header: HeaderSpec{Width: 8}})
	if err == nil {
		t.Fatal("missing RouteDigits accepted")
	}
	_, err = New(Config{
		Width:       8,
		Header:      HeaderSpec{Width: 99},
		RouteDigits: func(int) []int { return nil },
	})
	if err == nil {
		t.Fatal("invalid header accepted")
	}
}

func TestEmptyPayloadMessage(t *testing.T) {
	lb := newLoopback(t, nil, nil)
	lb.src.Offer(Message{ID: 1, Dest: 1, Payload: nil})
	lb.run(60)
	if len(lb.results) != 1 || !lb.results[0].Delivered {
		t.Fatalf("empty payload failed: %+v", lb.results)
	}
}

func TestLargeMessage(t *testing.T) {
	payload := make([]byte, 500)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	lb := newLoopback(t, nil, nil)
	lb.src.Offer(Message{ID: 1, Dest: 1, Payload: payload})
	lb.run(1200)
	if len(lb.results) != 1 || !lb.results[0].Delivered {
		t.Fatalf("large message failed: %+v", lb.results)
	}
	if !bytes.Equal(lb.delivers[0], payload) {
		t.Fatal("large payload corrupted")
	}
}

func TestEndpointID(t *testing.T) {
	lb := newLoopback(t, nil, nil)
	if lb.src.ID() != 0 || lb.dst.ID() != 1 {
		t.Fatalf("IDs = %d/%d", lb.src.ID(), lb.dst.ID())
	}
	lb.src.Commit(0) // no-op, for interface completeness
}

func TestLaneSliceProjection(t *testing.T) {
	stream := []word.Word{
		word.MakeRoute(0b11, 2),
		{Kind: word.Data, Payload: 0xAB},
		{Kind: word.ChecksumWord, Payload: 0xCD},
		{Kind: word.Turn},
	}
	lane0 := laneSlice(stream, 0, 2, 4)
	lane1 := laneSlice(stream, 1, 2, 4)
	if lane0[0] != stream[0] || lane1[0] != stream[0] {
		t.Fatal("route word not replicated")
	}
	if lane0[1].Payload != 0xB || lane1[1].Payload != 0xA {
		t.Fatalf("data slices wrong: %v / %v", lane0[1], lane1[1])
	}
	if lane0[2].Payload != 0xD || lane1[2].Payload != 0xC {
		t.Fatalf("checksum slices wrong: %v / %v", lane0[2], lane1[2])
	}
	if lane0[3].Kind != word.Turn {
		t.Fatal("turn not replicated")
	}
	// lanes == 1 returns the stream unchanged.
	same := laneSlice(stream, 0, 1, 8)
	for i := range stream {
		if same[i] != stream[i] {
			t.Fatal("single-lane slice should be identity")
		}
	}
}
