package word

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Empty:        "EMPTY",
		Route:        "ROUTE",
		HeaderPad:    "HDRPAD",
		Data:         "DATA",
		DataIdle:     "IDLE",
		Turn:         "TURN",
		Status:       "STATUS",
		ChecksumWord: "CKSUM",
		Drop:         "DROP",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "Kind(200)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestWordString(t *testing.T) {
	w := MakeRoute(0b1011, 4)
	if got := w.String(); got != "ROUTE(0xb/4b)" {
		t.Errorf("route word String() = %q", got)
	}
	d := MakeData(0x5, 4)
	if got := d.String(); got != "DATA(0x5)" {
		t.Errorf("data word String() = %q", got)
	}
	if got := (Word{Kind: Turn}).String(); got != "TURN" {
		t.Errorf("turn word String() = %q", got)
	}
}

func TestMakeDataMasks(t *testing.T) {
	w := MakeData(0xabcd, 8)
	if w.Payload != 0xcd {
		t.Errorf("MakeData did not mask to width: %#x", w.Payload)
	}
	w = MakeData(0xffffffff, 32)
	if w.Payload != 0xffffffff {
		t.Errorf("MakeData(width 32) clipped payload: %#x", w.Payload)
	}
}

func TestMask(t *testing.T) {
	if Mask(4) != 0xf {
		t.Errorf("Mask(4) = %#x", Mask(4))
	}
	if Mask(8) != 0xff {
		t.Errorf("Mask(8) = %#x", Mask(8))
	}
	if Mask(32) != 0xffffffff {
		t.Errorf("Mask(32) = %#x", Mask(32))
	}
	if Mask(33) != 0xffffffff {
		t.Errorf("Mask(33) = %#x", Mask(33))
	}
}

func TestIsEmpty(t *testing.T) {
	if !(Word{}).IsEmpty() {
		t.Error("zero Word should be empty")
	}
	if (Word{Kind: DataIdle}).IsEmpty() {
		t.Error("DataIdle should not be empty")
	}
}

func TestChecksumKnownValue(t *testing.T) {
	// CRC-8 poly 0x07, init 0, of "123456789" is 0xF4 (CRC-8/SMBUS check value).
	var c Checksum
	for _, b := range []byte("123456789") {
		c.AddByte(b)
	}
	if c.Sum() != 0xF4 {
		t.Errorf("CRC-8 check value = %#x, want 0xf4", c.Sum())
	}
}

func TestChecksumCoverage(t *testing.T) {
	var c Checksum
	c.Add(Word{Kind: Data, Payload: 0x12})
	withData := c.Sum()
	// Control words must not perturb the checksum.
	c.Add(Word{Kind: DataIdle, Payload: 0xff})
	c.Add(Word{Kind: Turn})
	c.Add(Word{Kind: Status, Payload: 1})
	c.Add(Word{Kind: Drop})
	c.Add(Word{})
	if c.Sum() != withData {
		t.Error("control words changed the checksum")
	}
	// Content words must.
	c.Add(Word{Kind: Route, Payload: 0x3, Bits: 2})
	if c.Sum() == withData {
		t.Error("route word did not change the checksum")
	}
}

func TestChecksumReset(t *testing.T) {
	var c Checksum
	c.AddByte(0xaa)
	c.Reset()
	if c.Sum() != 0 {
		t.Errorf("Sum after Reset = %#x", c.Sum())
	}
}

func TestChecksumWords(t *testing.T) {
	cases := []struct{ width, want int }{
		{1, 8}, {2, 4}, {3, 3}, {4, 2}, {8, 1}, {16, 1}, {32, 1},
	}
	for _, tc := range cases {
		if got := ChecksumWords(tc.width); got != tc.want {
			t.Errorf("ChecksumWords(%d) = %d, want %d", tc.width, got, tc.want)
		}
	}
	if ChecksumWords(0) != 0 {
		t.Error("ChecksumWords(0) should be 0")
	}
}

func TestSplitJoinChecksumRoundTrip(t *testing.T) {
	f := func(sum uint8, widthSeed uint8) bool {
		widths := []int{1, 2, 4, 8, 16}
		width := widths[int(widthSeed)%len(widths)]
		words := SplitChecksum(sum, width)
		if len(words) != ChecksumWords(width) {
			return false
		}
		for _, w := range words {
			if w.Kind != ChecksumWord {
				return false
			}
			if w.Payload&^Mask(width) != 0 {
				return false
			}
		}
		return JoinChecksum(words, width) == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJoinChecksumIgnoresExtraWords(t *testing.T) {
	words := SplitChecksum(0x5a, 4)
	words = append(words, Word{Kind: ChecksumWord, Payload: 0xf})
	if got := JoinChecksum(words, 4); got != 0x5a {
		t.Errorf("JoinChecksum with extra words = %#x, want 0x5a", got)
	}
}

func TestChecksumOrderSensitivity(t *testing.T) {
	var a, b Checksum
	a.AddByte(1)
	a.AddByte(2)
	b.AddByte(2)
	b.AddByte(1)
	if a.Sum() == b.Sum() {
		t.Error("CRC should be order sensitive for these inputs")
	}
}
