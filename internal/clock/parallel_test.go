package clock

import (
	"sync/atomic"
	"testing"
)

// barrierProbe checks the two-phase contract under concurrency: every
// Eval of cycle c must complete before any Commit of cycle c starts, and
// every Commit of cycle c before any Eval of cycle c+1. All probes share
// the counters; violations are recorded atomically and asserted after
// the run.
type barrierProbe struct {
	n          int64 // total probes registered
	evals      *atomic.Int64
	commits    *atomic.Int64
	violations *atomic.Int64
}

func (b *barrierProbe) Eval(cycle uint64) {
	if b.commits.Load() != int64(cycle)*b.n {
		b.violations.Add(1)
	}
	b.evals.Add(1)
}

func (b *barrierProbe) Commit(cycle uint64) {
	if b.evals.Load() != int64(cycle+1)*b.n {
		b.violations.Add(1)
	}
	b.commits.Add(1)
}

func TestParallelPhaseBarrier(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		e := New()
		var evals, commits, violations atomic.Int64
		const sharded, epilogue = 13, 3
		probes := make([]*barrierProbe, 0, sharded+epilogue)
		for i := 0; i < sharded+epilogue; i++ {
			probes = append(probes, &barrierProbe{
				n: sharded + epilogue, evals: &evals, commits: &commits, violations: &violations,
			})
		}
		for i := 0; i < sharded; i++ {
			e.AddSharded(e.NewShardAffinity(), probes[i])
		}
		for i := sharded; i < sharded+epilogue; i++ {
			e.Add(probes[i])
		}
		e.SetWorkers(workers)
		e.Run(50)
		e.StopWorkers()
		if v := violations.Load(); v != 0 {
			t.Errorf("workers=%d: %d phase-barrier violations", workers, v)
		}
		if got := evals.Load(); got != 50*(sharded+epilogue) {
			t.Errorf("workers=%d: evals = %d", workers, got)
		}
	}
}

// orderProbe appends to an unsynchronized log. Safe only when every
// probe sharing a log is pinned to one shard (co-location) or runs in
// the serialized epilogue — which is exactly what the tests assert,
// with the race detector watching.
type orderProbe struct {
	log  *[]string
	name string
}

func (p *orderProbe) Eval(cycle uint64)   { *p.log = append(*p.log, p.name+"E") }
func (p *orderProbe) Commit(cycle uint64) { *p.log = append(*p.log, p.name+"C") }

func TestColocationPreservesOrder(t *testing.T) {
	e := New()
	var log []string
	aff := e.NewShardAffinity()
	e.AddSharded(aff, &orderProbe{&log, "a"}, &orderProbe{&log, "b"})
	e.AddSharded(aff, &orderProbe{&log, "c"})
	// Unrelated shards keep the workers busy around the co-located group.
	for i := 0; i < 5; i++ {
		e.AddColocated(&counter{})
	}
	e.SetWorkers(8)
	e.Run(3)
	e.StopWorkers()
	want := []string{"aE", "bE", "cE", "aC", "bC", "cC"}
	if len(log) != 3*len(want) {
		t.Fatalf("log length = %d, want %d", len(log), 3*len(want))
	}
	for i, entry := range log {
		if entry != want[i%len(want)] {
			t.Fatalf("log[%d] = %q, want %q (log %v)", i, entry, want[i%len(want)], log)
		}
	}
}

func TestSerializedEpilogueOrder(t *testing.T) {
	e := New()
	var log []string
	for i := 0; i < 6; i++ {
		e.AddColocated(&counter{})
	}
	// Plain Add components share a log with no locking: the epilogue
	// must serialize them in registration order.
	e.Add(&orderProbe{&log, "x"}, &orderProbe{&log, "y"})
	e.SetWorkers(4)
	e.Run(10)
	e.StopWorkers()
	want := []string{"xE", "yE", "xC", "yC"}
	if len(log) != 10*len(want) {
		t.Fatalf("log length = %d, want %d", len(log), 10*len(want))
	}
	for i, entry := range log {
		if entry != want[i%len(want)] {
			t.Fatalf("log[%d] = %q, want %q", i, entry, want[i%len(want)])
		}
	}
}

// latch is a synthetic two-phase register network node: Eval computes a
// mix of the committed outputs of its inputs (previous cycle's values),
// Commit latches it. Identical to how routers read link registers.
type latch struct {
	inputs []*latch
	q, d   uint64
}

func (l *latch) Eval(cycle uint64) {
	acc := l.q*6364136223846793005 + 1442695040888963407
	for _, in := range l.inputs {
		acc ^= in.q + cycle
	}
	l.d = acc
}

func (l *latch) Commit(cycle uint64) { l.q = l.d }

// buildLatchRing wires n latches where node i reads nodes i-1 and i+1.
func buildLatchRing(n int) []*latch {
	ls := make([]*latch, n)
	for i := range ls {
		ls[i] = &latch{q: uint64(i) * 2654435761}
	}
	for i := range ls {
		ls[i].inputs = []*latch{ls[(i+n-1)%n], ls[(i+1)%n]}
	}
	return ls
}

// TestParallelMatchesSerial is the kernel-level differential test: the
// same register network stepped by the serial engine and by the parallel
// engine at several worker counts must produce bit-identical state.
func TestParallelMatchesSerial(t *testing.T) {
	const n, cycles = 24, 200
	run := func(workers int) []uint64 {
		e := New()
		ls := buildLatchRing(n)
		for _, l := range ls {
			e.AddSharded(e.NewShardAffinity(), l)
		}
		e.SetWorkers(workers)
		e.Run(cycles)
		e.StopWorkers()
		out := make([]uint64, n)
		for i, l := range ls {
			out[i] = l.q
		}
		return out
	}
	want := run(0)
	for _, workers := range []int{1, 2, 4, 8} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: latch %d state %#x, want %#x", workers, i, got[i], want[i])
			}
		}
	}
}

// TestSetWorkersMidRun switches execution modes mid-simulation; the
// final state must match an uninterrupted serial run.
func TestSetWorkersMidRun(t *testing.T) {
	const n = 16
	serial := New()
	sls := buildLatchRing(n)
	for _, l := range sls {
		serial.Add(l)
	}
	serial.Run(90)

	e := New()
	ls := buildLatchRing(n)
	for _, l := range ls {
		e.AddSharded(e.NewShardAffinity(), l)
	}
	e.Run(30) // serial mode
	e.SetWorkers(4)
	e.Run(30) // parallel
	e.SetWorkers(0)
	e.Run(15)
	e.SetWorkers(2)
	e.Run(15)
	e.StopWorkers()

	if e.Cycle() != serial.Cycle() {
		t.Fatalf("cycle = %d, want %d", e.Cycle(), serial.Cycle())
	}
	for i := range ls {
		if ls[i].q != sls[i].q {
			t.Fatalf("latch %d state %#x, want %#x", i, ls[i].q, sls[i].q)
		}
	}
}

func TestAddAfterParallelStepRebuildsPool(t *testing.T) {
	e := New()
	c1 := &counter{}
	e.AddColocated(c1)
	e.SetWorkers(2)
	e.Run(5)
	c2 := &counter{}
	e.AddColocated(c2) // tears down and lazily rebuilds the pool
	e.Run(5)
	e.StopWorkers()
	if c1.evals != 10 || c2.evals != 5 {
		t.Fatalf("evals = %d, %d; want 10, 5", c1.evals, c2.evals)
	}
}

func TestStopWorkersIdempotent(t *testing.T) {
	e := New()
	e.AddColocated(&counter{})
	e.StopWorkers() // no pool yet
	e.SetWorkers(3)
	e.Run(2)
	e.StopWorkers()
	e.StopWorkers() // second stop is a no-op
	e.Run(2)        // pool restarts lazily
	e.StopWorkers()
}

func TestAddShardedRejectsForeignAffinity(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("AddSharded with a made-up affinity should panic")
		}
	}()
	e.AddSharded(ShardAffinity(7), &counter{})
}

func TestWorkersAccessor(t *testing.T) {
	e := New()
	if e.Workers() != 0 {
		t.Fatalf("fresh engine workers = %d", e.Workers())
	}
	e.SetWorkers(6)
	if e.Workers() != 6 {
		t.Fatalf("workers = %d, want 6", e.Workers())
	}
	e.SetWorkers(-3)
	if e.Workers() != 0 {
		t.Fatalf("negative worker count should clamp to 0, got %d", e.Workers())
	}
}
