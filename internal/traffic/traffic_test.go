package traffic

import (
	"math/rand"
	"testing"

	"metro/internal/netsim"
	"metro/internal/topo"
)

func TestPatternsNeverSelfSend(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	patterns := []Pattern{Uniform{}, Hotspot{Target: 3, Fraction: 0.5}, BitReverse{}, Transpose{}}
	for _, p := range patterns {
		for src := 0; src < 16; src++ {
			for trial := 0; trial < 50; trial++ {
				d := p.Dest(src, 16, rng)
				if d == src {
					t.Fatalf("%s: self-send from %d", p.Name(), src)
				}
				if d < 0 || d >= 16 {
					t.Fatalf("%s: dest %d out of range", p.Name(), d)
				}
			}
		}
	}
}

func TestUniformCoversDestinations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[Uniform{}.Dest(0, 8, rng)] = true
	}
	if len(seen) != 7 {
		t.Fatalf("uniform covered %d destinations, want 7", len(seen))
	}
}

func TestHotspotBias(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := Hotspot{Target: 5, Fraction: 0.8}
	hits := 0
	for i := 0; i < 1000; i++ {
		if h.Dest(0, 16, rng) == 5 {
			hits++
		}
	}
	if hits < 700 {
		t.Fatalf("hotspot hit rate %d/1000, want >= 700", hits)
	}
}

func TestBitReverseIsPermutationLike(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	counts := map[int]int{}
	for src := 0; src < 16; src++ {
		counts[BitReverse{}.Dest(src, 16, rng)]++
	}
	for d, c := range counts {
		if c > 2 {
			t.Fatalf("bit-reverse maps %d sources to %d", c, d)
		}
	}
}

func fig1Run(load float64, cycles uint64) (RunSpec, error) {
	spec := RunSpec{
		Net: netsim.Params{
			Spec:        topo.Figure1(),
			Width:       8,
			DataPipe:    1,
			LinkDelay:   1,
			FastReclaim: true,
			Seed:        1,
			RetryLimit:  200,
		},
		Load:          load,
		MsgBytes:      8,
		Outstanding:   1,
		WarmupCycles:  500,
		MeasureCycles: cycles,
		Seed:          11,
	}
	return spec, nil
}

func TestClosedLoopLightLoad(t *testing.T) {
	spec, _ := fig1Run(0.1, 4000)
	p, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Messages < 20 {
		t.Fatalf("too few messages measured: %d", p.Messages)
	}
	if p.Delivered != p.Messages {
		t.Fatalf("light load dropped messages: %d/%d", p.Delivered, p.Messages)
	}
	if p.Latency.Mean <= 0 {
		t.Fatal("latency not measured")
	}
}

func TestLoadLatencyMonotone(t *testing.T) {
	spec, _ := fig1Run(0, 6000)
	points, err := Sweep(spec, []float64{0.05, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	low, high := points[0], points[1]
	if high.Latency.Mean <= low.Latency.Mean {
		t.Fatalf("latency did not grow with load: %.1f (5%%) vs %.1f (80%%)",
			low.Latency.Mean, high.Latency.Mean)
	}
	if high.RetriesPerMessage <= low.RetriesPerMessage {
		t.Fatalf("retries did not grow with load: %.2f vs %.2f",
			low.RetriesPerMessage, high.RetriesPerMessage)
	}
}

func TestThinkTimeCalibration(t *testing.T) {
	// Mean of the sampled geometric think time should approximate the
	// calibrated mean.
	c := &ClosedLoop{Load: 0.5, MsgBytes: 8, Seed: 9}
	n, err := netsim.Build(netsim.Params{Spec: topo.Figure1(), Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	c.Bind(n)
	want := c.thinkMean
	sum := 0.0
	const trials = 20000
	for i := 0; i < trials; i++ {
		sum += float64(c.sampleThink())
	}
	got := sum / trials
	if got < want*0.9 || got > want*1.1 {
		t.Fatalf("think mean %f, want ~%f", got, want)
	}
}
