package scan

import (
	"testing"

	"metro/internal/clock"
	"metro/internal/link"
	"metro/internal/word"
)

// boundaryPair wires router A's backward port 2 to router B's forward
// port 1 and returns everything a cross-chip boundary test needs.
func boundaryPair(t *testing.T) (eng *clock.Engine, mtA, mtB *MultiTAP, wire *link.Link) {
	t.Helper()
	a := testRouter()
	b := testRouter()
	wire = link.New("a.b2->b.f1", 1)
	a.AttachBackward(2, wire.A())
	b.AttachForward(1, wire.B())
	mtA = NewMultiTAP(a, 0xA)
	mtB = NewMultiTAP(b, 0xB)
	eng = clock.New()
	eng.Add(wire, mtA.Boundary(), mtB.Boundary())
	// Isolate the port pair, as the diagnosis flow requires.
	a.SetBackwardEnabled(2, false)
	b.SetForwardEnabled(1, false)
	return eng, mtA, mtB, wire
}

func TestExtestDrivesAndSampleObserves(t *testing.T) {
	eng, mtA, mtB, _ := boundaryPair(t)
	// Load the EXTEST pattern into A through its TAP.
	dA := NewDriver(mtA.TAPs()[0])
	dA.Reset()
	pattern := mtA.Boundary().OutputCellBits(map[int]uint32{2: 0x9})
	dA.WriteRegister(EXTEST, pattern)
	if !mtA.Boundary().Driving() {
		t.Fatal("EXTEST update did not start driving")
	}
	eng.Run(3) // let the drive propagate across the wire
	// Sample B's boundary through its TAP.
	dB := NewDriver(mtB.TAPs()[0])
	dB.Reset()
	img := dB.ReadRegister(SAMPLE, mtB.Boundary().Len())
	if got := mtB.Boundary().InputCell(img, 1); got != 0x9 {
		t.Fatalf("sampled %#x at B.f1, want the driven 0x9", got)
	}
}

func TestExtestLocalizesStuckBitAcrossChips(t *testing.T) {
	eng, mtA, mtB, wire := boundaryPair(t)
	wire.SetCorruptor(func(w word.Word) word.Word {
		w.Payload |= 0x4
		return w
	}, nil)
	dA := NewDriver(mtA.TAPs()[0])
	dA.Reset()
	dB := NewDriver(mtB.TAPs()[0])
	dB.Reset()

	var stuckHigh uint32 = word.Mask(4)
	for _, p := range []uint32{0x0, 0xF, 0x1, 0x2, 0x4, 0x8} {
		dA.WriteRegister(EXTEST, mtA.Boundary().OutputCellBits(map[int]uint32{2: p}))
		eng.Run(3)
		img := dB.ReadRegister(SAMPLE, mtB.Boundary().Len())
		got := mtB.Boundary().InputCell(img, 1)
		stuckHigh &= got // a stuck-high bit reads 1 under every pattern
	}
	if stuckHigh != 0x4 {
		t.Fatalf("cross-chip localization found %#x, want 0x4", stuckHigh)
	}
}

func TestExtestNeverDrivesEnabledPorts(t *testing.T) {
	eng, mtA, _, wire := boundaryPair(t)
	// Re-enable the port: EXTEST must leave it alone.
	mtA.Boundary().router.SetBackwardEnabled(2, true)
	dA := NewDriver(mtA.TAPs()[0])
	dA.Reset()
	dA.WriteRegister(EXTEST, mtA.Boundary().OutputCellBits(map[int]uint32{2: 0xF}))
	eng.Run(3)
	if got := wire.B().Recv(); !got.IsEmpty() {
		t.Fatalf("EXTEST drove an enabled port: %v", got)
	}
}

func TestBoundaryRelease(t *testing.T) {
	eng, mtA, _, wire := boundaryPair(t)
	dA := NewDriver(mtA.TAPs()[0])
	dA.Reset()
	dA.WriteRegister(EXTEST, mtA.Boundary().OutputCellBits(map[int]uint32{2: 0x5}))
	eng.Run(2)
	if wire.B().Recv().IsEmpty() {
		t.Fatal("drive not visible")
	}
	mtA.Boundary().Release()
	eng.Run(2)
	if !wire.B().Recv().IsEmpty() {
		t.Fatal("drive persisted after Release")
	}
}

func TestSampleWhileIdleReadsZero(t *testing.T) {
	_, _, mtB, _ := boundaryPair(t)
	dB := NewDriver(mtB.TAPs()[0])
	dB.Reset()
	img := dB.ReadRegister(SAMPLE, mtB.Boundary().Len())
	if got := mtB.Boundary().InputCell(img, 1); got != 0 {
		t.Fatalf("idle sample = %#x", got)
	}
}
