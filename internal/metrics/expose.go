package metrics

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// WriteText renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). The output is a pure function of the
// snapshot: families sorted by name, label sets sorted, histogram
// buckets cumulative, and no timestamps — the same snapshot always
// produces the same bytes.
func (s *Snapshot) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range s.Families {
		if f.Help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.Name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.Help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.Name)
		bw.WriteByte(' ')
		bw.WriteString(f.Kind.typeName())
		bw.WriteByte('\n')
		for _, series := range f.Series {
			if f.Kind == KindHistogram {
				writeHistogram(bw, f, series)
				continue
			}
			bw.WriteString(f.Name)
			writeLabels(bw, series.Labels, "")
			bw.WriteByte(' ')
			bw.WriteString(formatValue(series.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// ContentType is the HTTP Content-Type for WriteText output.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func writeHistogram(bw *bufio.Writer, f FamilySnapshot, s SeriesSnapshot) {
	for i, upper := range f.Upper {
		bw.WriteString(f.Name)
		bw.WriteString("_bucket")
		writeLabels(bw, s.Labels, formatValue(upper))
		bw.WriteByte(' ')
		bw.WriteString(strconv.FormatUint(s.Buckets[i], 10))
		bw.WriteByte('\n')
	}
	bw.WriteString(f.Name)
	bw.WriteString("_bucket")
	writeLabels(bw, s.Labels, "+Inf")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(s.Count, 10))
	bw.WriteByte('\n')

	bw.WriteString(f.Name)
	bw.WriteString("_sum")
	writeLabels(bw, s.Labels, "")
	bw.WriteByte(' ')
	bw.WriteString(formatValue(s.Sum))
	bw.WriteByte('\n')

	bw.WriteString(f.Name)
	bw.WriteString("_count")
	writeLabels(bw, s.Labels, "")
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatUint(s.Count, 10))
	bw.WriteByte('\n')
}

// writeLabels renders {a="x",b="y"} with an optional trailing le bucket
// label; nothing at all when there are no labels and no le.
func writeLabels(bw *bufio.Writer, labels []Label, le string) {
	if len(labels) == 0 && le == "" {
		return
	}
	bw.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(l.Name)
		bw.WriteString(`="`)
		bw.WriteString(escapeLabel(l.Value))
		bw.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString(`le="`)
		bw.WriteString(le)
		bw.WriteByte('"')
	}
	bw.WriteByte('}')
}

// formatValue renders a sample value: integers without a fraction,
// everything else in Go's shortest round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) && v >= -1e15 && v <= 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
