package metrofuzz

import (
	"fmt"
	"math/rand"

	"metro/internal/fault"
	"metro/internal/topo"
)

// Generate derives a complete Scenario from a seed. The mapping is a
// pure function — same seed, same scenario, on every machine — so an
// ensemble is just a seed range and a repro is just a seed (or the spec
// line, which survives generator evolution).
//
// The distribution is tuned toward adversarial-but-convergent runs:
// roughly half the scenarios carry dynamic faults, loads span burst
// (maximal contention), open-loop Bernoulli and closed-loop stall
// models, and retry/timeout budgets are generous enough that a healthy
// simulator delivers every reachable message — so the delivery oracle
// can treat a reachable-but-undelivered message as a failure rather
// than noise.
func Generate(seed int64) Scenario {
	rng := rand.New(rand.NewSource(seed))
	var s Scenario

	// Topology: presets cover the paper's networks; custom specs walk the
	// wider family of valid multibutterflies.
	switch rng.Intn(10) {
	case 0, 1, 2:
		s.Preset = "fig1"
	case 3:
		s.Preset = "fig3"
	case 4:
		s.Preset = "net32"
	case 5:
		s.Preset = "net32r8"
	default:
		s.Custom = genTopology(rng)
	}
	spec, err := s.Spec()
	if err != nil {
		panic(err) // unreachable: presets and genTopology are valid
	}
	t, err := topo.Build(spec)
	if err != nil {
		panic(fmt.Sprintf("metrofuzz: generated topology invalid: %v", err))
	}
	n := spec.Endpoints

	// Network knobs.
	s.Width = []int{4, 8, 8, 8, 16}[rng.Intn(5)]
	s.HeaderWords = []int{0, 0, 0, 1, 2}[rng.Intn(5)]
	s.DataPipe = []int{1, 1, 1, 2}[rng.Intn(4)]
	s.LinkDelay = []int{1, 1, 2}[rng.Intn(3)]
	if rng.Intn(6) == 0 {
		s.CascadeWidth = 2
	} else {
		s.CascadeWidth = 1
	}
	s.FastReclaim = rng.Intn(4) != 0
	s.FirstFree = rng.Intn(5) == 0
	s.Workers = []int{0, 1, 2, 4, 8}[rng.Intn(5)]
	s.NetSeed = 1 + rng.Int63n(1<<31)
	if rng.Intn(4) == 0 && spec.EndpointLinks > 1 {
		s.MaxActiveSenders = 1
	}

	// Traffic. Fault runs carry lighter load and larger retry budgets:
	// the oracle demands delivery for every reachable pair, and the
	// budget is what makes that demand sound under congestion + faults.
	faulty := rng.Intn(2) == 0
	if faulty {
		// First-free selection starves reachable pairs under faults (the
		// oracle excuses it — see checkDelivery), and those runs drain
		// through full retry exhaustion, costing 100k+ cycles for no
		// additional oracle coverage. Keep the ablation to fault-free
		// scenarios; replayed specs may still combine the two.
		s.FirstFree = false
	}
	perEp := 1 + rng.Intn(8)
	msgCap := 300
	if faulty {
		perEp = 1 + rng.Intn(4)
		msgCap = 150
	}
	s.Messages = minInt(n*perEp, msgCap)
	s.TrafficSeed = 1 + rng.Int63n(1<<31)
	s.PayloadBytes = MinPayloadBytes + rng.Intn(33)
	s.Traffic = []TrafficKind{Burst, Burst, Bernoulli, Stall}[rng.Intn(4)]
	switch s.Traffic {
	case Burst:
		s.InjectCycles = 1
	case Bernoulli:
		s.RatePerMille = 10 + rng.Intn(111)
		// Enough cycles for the expected offer count to exhaust the
		// message budget with slack.
		ic := 2 * s.Messages * 1000 / (n * s.RatePerMille)
		s.InjectCycles = clampInt(ic, 100, 5000)
	case Stall:
		s.Outstanding = 1 + rng.Intn(2)
		s.ThinkMax = rng.Intn(61)
		s.InjectCycles = 300 + rng.Intn(1200)
	}
	if faulty {
		s.RetryLimit = 200 + rng.Intn(301)
		s.ListenTimeout = 250 + rng.Intn(250)
	} else {
		s.RetryLimit = 60 + rng.Intn(341)
		s.ListenTimeout = 150 + rng.Intn(250)
	}

	if faulty {
		s.Faults = genFaults(rng, t, uint64(s.InjectCycles))
	}
	return s
}

// genTopology constructs a random valid multistage spec. With radix
// logs r_s, dilation logs d_s (d of the final stage 0) and inputs
// i_s = 2^(r_s+d_s), the wire-conservation chain of topo.Validate holds
// by construction: each stage consumes exactly the wires the previous
// one produced, and the final stage delivers EndpointLinks wires per
// endpoint.
func genTopology(rng *rand.Rand) topo.Spec {
	nLog := 2 + rng.Intn(4) // 4..32 endpoints
	spec := topo.Spec{
		Endpoints:     1 << nLog,
		EndpointLinks: 1 + rng.Intn(2),
	}
	// Split nLog into per-stage radix logs of 1..3 (radix 2..8).
	var radixLogs []int
	for rem := nLog; rem > 0; {
		r := 1 + rng.Intn(minInt(3, rem))
		radixLogs = append(radixLogs, r)
		rem -= r
	}
	for i, r := range radixLogs {
		d := 0
		if i < len(radixLogs)-1 && rng.Intn(2) == 0 {
			d = 1 // dilation-2 stage: the multipath ingredient
		}
		spec.Stages = append(spec.Stages, topo.StageSpec{
			Inputs:   1 << (r + d),
			Radix:    1 << r,
			Dilation: 1 << d,
		})
	}
	if rng.Intn(4) == 0 {
		spec.Wiring = topo.WiringRandom
		spec.Seed = 1 + rng.Int63n(1<<31)
	}
	return spec
}

// genFaults schedules 1..3 distinct faults inside the fault window:
// injection through drain. LinkStuckBit is deliberately absent — an
// 8-bit CRC has a 1/256 collision probability per corrupted attempt, so
// stuck-bit ensembles would produce rare-but-legitimate silent
// corruption that the payload oracle (correctly) flags; the stuck-at
// behaviour keeps its own deterministic coverage in internal/fault
// tests and replay-only specs.
func genFaults(rng *rand.Rand, t *topo.Topology, injectCycles uint64) fault.Plan {
	spec := t.Spec
	window := injectCycles + 200
	count := 1 + rng.Intn(3)
	seen := map[[4]int]bool{}
	var plan fault.Plan
	for len(plan) < count {
		e := fault.Event{At: uint64(rng.Int63n(int64(window)))}
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // router loss
			e.Kind = fault.RouterKill
			e.Stage = rng.Intn(len(spec.Stages))
			e.Index = rng.Intn(t.RoutersPerStage[e.Stage])
		case 4, 5, 6: // inter-stage link loss
			e.Kind = fault.LinkKill
			e.Stage = rng.Intn(len(spec.Stages))
			e.Index = rng.Intn(t.RoutersPerStage[e.Stage])
			e.Port = rng.Intn(spec.Stages[e.Stage].Outputs())
		case 7, 8: // scan-style port disable
			e.Kind = fault.PortDisable
			e.Stage = rng.Intn(len(spec.Stages))
			e.Index = rng.Intn(t.RoutersPerStage[e.Stage])
			e.Port = rng.Intn(spec.Stages[e.Stage].Outputs())
		case 9: // injection link loss
			e.Kind = fault.LinkKill
			e.Stage = -1
			e.Index = rng.Intn(spec.Endpoints)
			e.Port = rng.Intn(spec.EndpointLinks)
		}
		key := [4]int{int(e.Kind), e.Stage, e.Index, e.Port}
		if seen[key] {
			continue
		}
		seen[key] = true
		plan = append(plan, e)
	}
	// The injector fires events in slice order and expects non-decreasing
	// At cycles.
	for i := 1; i < len(plan); i++ {
		for j := i; j > 0 && plan[j].At < plan[j-1].At; j-- {
			plan[j], plan[j-1] = plan[j-1], plan[j]
		}
	}
	return plan
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
