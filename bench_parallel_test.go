// Benchmark for the partitioned parallel two-phase engine: steady-state
// cycle throughput of the congested Figure 3 workload across worker
// counts, with workers=0 as the serial reference. Every configuration
// computes bit-for-bit identical results (see the differential tests in
// internal/netsim and internal/traffic); this benchmark measures only
// how fast the cycles go by.
//
//	go test -bench EngineWorkers -benchtime 2s .
//
// ns/op is the cost of one full simulation cycle (Eval barrier + Commit
// barrier + serialized epilogue) for the whole 64-endpoint network.
package metro_test

import (
	"fmt"
	"runtime"
	"testing"

	"metro"
	"metro/internal/traffic"
)

func BenchmarkEngineWorkers(b *testing.B) {
	once("engineworkers", func() {
		fmt.Printf("\n=== Parallel engine cycle throughput (GOMAXPROCS=%d) ===\n",
			runtime.GOMAXPROCS(0))
	})
	for _, workers := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			driver := &traffic.ClosedLoop{
				Load:        0.75,
				MsgBytes:    20,
				Pattern:     traffic.Uniform{},
				Outstanding: 2,
				Seed:        11,
			}
			n, err := metro.BuildNetwork(metro.NetworkParams{
				Spec:        metro.Figure3Topology(),
				Width:       8,
				DataPipe:    1,
				LinkDelay:   1,
				FastReclaim: true,
				Seed:        3,
				RetryLimit:  1000,
				Workers:     workers,
				OnResult:    driver.OnResult,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer n.Close()
			driver.Bind(n)
			n.Run(500) // reach steady congestion before timing
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.Engine.Step()
			}
		})
	}
}
