package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the repository's packages using only the
// standard library: module-local imports ("metro/...") are resolved
// recursively from source, and standard-library imports are compiled from
// GOROOT source via go/importer's source importer. Type errors do not
// abort loading — they are recorded on the Package and the analyzers
// tolerate the resulting holes in type information.
type Loader struct {
	Fset       *token.FileSet
	RootDir    string
	ModulePath string

	std     types.ImporterFrom
	pkgs    map[string]*Package // keyed by import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader builds a loader rooted at the module directory containing
// go.mod.
func NewLoader(rootDir string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(rootDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		Fset:       fset,
		RootDir:    rootDir,
		ModulePath: modPath,
		std:        std,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// Load resolves the given patterns to packages. The only pattern forms
// supported are "./..." (every package under the module root), "./dir"
// and "./dir/..." (a directory, optionally recursive).
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.Dirs(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		p, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Dirs resolves patterns to the sorted package directories they match,
// without parsing or type-checking anything (the analysis cache hashes
// sources from this listing before deciding whether to load at all).
func (l *Loader) Dirs(patterns ...string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirSet := map[string]bool{}
	for _, orig := range patterns {
		pat := orig
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		dir := filepath.Join(l.RootDir, filepath.FromSlash(pat))
		if !recursive {
			if !hasGoFiles(dir) {
				// A typo'd pattern must not pass vacuously in CI.
				return nil, fmt.Errorf("analysis: pattern %q matches no Go package", orig)
			}
			dirSet[dir] = true
			continue
		}
		found := 0
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				dirSet[path] = true
				found++
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if found == 0 {
			return nil, fmt.Errorf("analysis: pattern %q matches no Go package", orig)
		}
	}
	dirs := make([]string, 0, len(dirSet))
	for d := range dirSet {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.RootDir, dir)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module root %s", dir, l.RootDir)
	}
	return l.ModulePath + "/" + rel, nil
}

// dirFor inverts importPathFor for module-local import paths.
func (l *Loader) dirFor(importPath string) string {
	if importPath == l.ModulePath {
		return l.RootDir
	}
	rel := strings.TrimPrefix(importPath, l.ModulePath+"/")
	return filepath.Join(l.RootDir, filepath.FromSlash(rel))
}

// LoadDir loads, parses and type-checks the package in dir (caching by
// import path).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	importPath, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var files, tfiles, xfiles []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		switch {
		case strings.HasSuffix(f.Name.Name, "_test"):
			xfiles = append(xfiles, f)
		case strings.HasSuffix(name, "_test.go"):
			tfiles = append(tfiles, f)
		default:
			files = append(files, f)
		}
	}

	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		TestFiles:  tfiles,
		XTestFiles: xfiles,
	}
	collect := func(err error) { p.TypeErrs = append(p.TypeErrs, err) }
	// The base unit (compiled files only) is what imports see; it must be
	// checked and cached first so that test files — which may transitively
	// re-import this package — do not manufacture spurious cycles.
	p.Info = newInfo()
	p.Types, _ = (&types.Config{Importer: l, Error: collect}).Check(importPath, l.Fset, files, p.Info)
	l.pkgs[importPath] = p
	if len(tfiles) > 0 {
		// Re-check compiled + in-package test files as one unit so Info
		// covers both; the base Types above stays the import surface.
		info := newInfo()
		(&types.Config{Importer: l, Error: func(error) {}}).Check(
			importPath, l.Fset, append(append([]*ast.File{}, files...), tfiles...), info)
		p.Info = info
	}
	if len(xfiles) > 0 {
		p.XInfo = newInfo()
		(&types.Config{Importer: l, Error: collect}).Check(importPath+"_test", l.Fset, xfiles, p.XInfo)
	}
	return p, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// Import implements types.Importer: module-local paths load from source,
// everything else falls back to the GOROOT source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.LoadDir(l.dirFor(path))
		if err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, fmt.Errorf("analysis: no type information for %s", path)
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	return l.Import(path)
}
