// metrobench runs the repository's benchmarks and appends one
// BENCH_<n>.json snapshot to the perf trajectory directory. Each
// snapshot records every parsed benchmark (ns/op, B/op, allocs/op)
// plus the derived tracing overhead — the congested-network cycle cost
// with the flight recorder attached versus without — so performance
// history accumulates as reviewable files instead of folklore.
//
// Usage:
//
//	metrobench                          # full benchmark sweep into perf/
//	metrobench -bench SteadyCycle       # subset by benchmark name
//	metrobench -benchtime 100x -count 3 # quick, or statistically sturdier
//	metrobench -stdout                  # print the JSON, write nothing
//	metrobench -scale 4096,65536        # kernel scaling curve (topo.Scale)
//	metrobench -bench none -scale 4096  # curve only, skip the bench sweep
//	metrobench -index 4 -force          # pin the index, overwrite existing
//
// Snapshots never overwrite silently: writing to an existing
// BENCH_<n>.json (only reachable by pinning -index) fails unless -force
// is given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name       string  `json:"name"` // includes the -<GOMAXPROCS> suffix
	Package    string  `json:"package"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BytesPerOp int64   `json:"bytes_per_op"`
	AllocsOp   int64   `json:"allocs_per_op"`
}

// TracingOverhead compares the congested-network step benchmarks with
// and without the flight recorder.
type TracingOverhead struct {
	DisabledNsPerCycle float64 `json:"disabled_ns_per_cycle"`
	EnabledNsPerCycle  float64 `json:"enabled_ns_per_cycle"`
	OverheadPct        float64 `json:"overhead_pct"`
}

// MetricsOverhead compares the congested-network step benchmarks with
// and without the operational-metrics block (engine gauges sampled on
// the cycle grid) attached.
type MetricsOverhead struct {
	DisabledNsPerCycle float64 `json:"disabled_ns_per_cycle"`
	EnabledNsPerCycle  float64 `json:"enabled_ns_per_cycle"`
	OverheadPct        float64 `json:"overhead_pct"`
}

// Snapshot is one BENCH_<n>.json file.
type Snapshot struct {
	Index      int              `json:"index"`
	Date       string           `json:"date"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	CPUs       int              `json:"cpus"`
	Bench      string           `json:"bench_pattern"`
	Benchtime  string           `json:"benchtime"`
	Count      int              `json:"count"`
	Benchmarks []Benchmark      `json:"benchmarks"`
	Tracing    *TracingOverhead `json:"tracing_overhead,omitempty"`
	Metrics    *MetricsOverhead `json:"metrics_overhead,omitempty"`
	Scale      []ScalePoint     `json:"scale,omitempty"`
}

func main() {
	bench := flag.String("bench", ".", "benchmark name pattern (go test -bench)")
	pkgs := flag.String("pkgs", "metro/...", "packages to benchmark (import paths)")
	benchtime := flag.String("benchtime", "1s", "per-benchmark budget (go test -benchtime)")
	count := flag.Int("count", 1, "repetitions per benchmark (go test -count)")
	dir := flag.String("dir", "perf", "perf trajectory directory")
	stdout := flag.Bool("stdout", false, "print the snapshot JSON instead of writing a file")
	scale := flag.String("scale", "", "comma-separated endpoint counts for the kernel scaling curve (empty = off)")
	scaleRadix := flag.Int("scale-radix", 4, "router radix for the scaling curve (topo.Scale)")
	scaleCycles := flag.Int("scale-cycles", 256, "measured cycles per scaling point")
	scaleWorkers := flag.String("scale-workers", "0,1,2,4,8", "comma-separated worker counts swept per scaling size (0 = serial engine)")
	index := flag.Int("index", 0, "snapshot index to write (0 = next free BENCH_<n>.json)")
	force := flag.Bool("force", false, "allow overwriting an existing BENCH_<n>.json")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "metrobench: unexpected arguments %v\n", flag.Args())
		os.Exit(2)
	}

	var benchmarks []Benchmark
	if *bench != "none" {
		args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
			"-benchtime", *benchtime, "-count", strconv.Itoa(*count)}
		args = append(args, strings.Fields(*pkgs)...)
		out, err := exec.Command("go", args...).CombinedOutput()
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrobench: go %s: %v\n%s", strings.Join(args, " "), err, out)
			os.Exit(1)
		}
		benchmarks = parse(string(out))
		if len(benchmarks) == 0 {
			fmt.Fprintf(os.Stderr, "metrobench: no benchmarks matched %q in %s\n%s", *bench, *pkgs, out)
			os.Exit(1)
		}
	} else if *scale == "" {
		fmt.Fprintf(os.Stderr, "metrobench: -bench none without -scale would write an empty snapshot\n")
		os.Exit(2)
	}

	var scalePoints []ScalePoint
	if *scale != "" {
		sizes, err := parseIntList("scale", *scale)
		if err == nil {
			var workers []int
			workers, err = parseIntList("scale-workers", *scaleWorkers)
			if err == nil {
				scalePoints, err = runScale(sizes, *scaleRadix, *scaleCycles, workers)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrobench: %v\n", err)
			os.Exit(1)
		}
	}

	snap := Snapshot{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		Bench:      *bench,
		Benchtime:  *benchtime,
		Count:      *count,
		Benchmarks: benchmarks,
		Tracing:    overhead(benchmarks),
		Metrics:    metricsOverhead(benchmarks),
		Scale:      scalePoints,
	}

	if *stdout {
		snap.Index = pickIndex(*index, *dir)
		emit(os.Stdout, snap)
		report(snap)
		return
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "metrobench: %v\n", err)
		os.Exit(1)
	}
	snap.Index = pickIndex(*index, *dir)
	path := filepath.Join(*dir, fmt.Sprintf("BENCH_%d.json", snap.Index))
	if _, err := os.Stat(path); err == nil && !*force {
		fmt.Fprintf(os.Stderr, "metrobench: %s exists; pass -force to overwrite\n", path)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metrobench: %v\n", err)
		os.Exit(1)
	}
	emit(f, snap)
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "metrobench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
	report(snap)
}

func emit(f *os.File, snap Snapshot) {
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(snap); err != nil {
		fmt.Fprintf(os.Stderr, "metrobench: %v\n", err)
		os.Exit(1)
	}
}

// report prints the human summary table.
func report(snap Snapshot) {
	for _, b := range snap.Benchmarks {
		fmt.Printf("  %-44s %12.1f ns/op %8d B/op %6d allocs/op\n",
			b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsOp)
	}
	if snap.Tracing != nil {
		fmt.Printf("  tracing overhead: %.1f ns/cycle -> %.1f ns/cycle (%+.1f%%)\n",
			snap.Tracing.DisabledNsPerCycle, snap.Tracing.EnabledNsPerCycle,
			snap.Tracing.OverheadPct)
	}
	if snap.Metrics != nil {
		fmt.Printf("  metrics overhead: %.1f ns/cycle -> %.1f ns/cycle (%+.1f%%)\n",
			snap.Metrics.DisabledNsPerCycle, snap.Metrics.EnabledNsPerCycle,
			snap.Metrics.OverheadPct)
	}
	for _, p := range snap.Scale {
		fmt.Printf("  scale %6d eps (radix %d, %d routers) w=%d: %10.0f ns/cycle %8.1f cycles/s %6.2f ns/ep/cycle %6d B/ep\n",
			p.Endpoints, p.Radix, p.Routers, p.Workers,
			p.NsPerCycle, p.CyclesPerSec, p.NsPerEndpointCycle, p.BytesPerEndpoint)
	}
}

// benchLine matches `BenchmarkName-8  1000  123 ns/op  45 B/op  6 allocs/op`
// (the -benchmem columns are optional for benchmarks reporting none).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

// parse extracts benchmark results from go test output, attributing
// each to the preceding `pkg:` header. Repeated runs (-count > 1) of
// one benchmark record the minimum ns/op — on a shared box the noise
// is one-sided (contention only ever slows a run down), so the
// fastest repetition is the least-contended estimate of the true
// cost; the memory columns, which timing noise cannot perturb, are
// averaged.
func parse(out string) []Benchmark {
	type acc struct {
		Benchmark
		runs int64
	}
	byKey := map[string]*acc{}
	var order []string
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		key := pkg + "." + m[1]
		a := byKey[key]
		if a == nil {
			a = &acc{Benchmark: Benchmark{Name: m[1], Package: pkg}}
			byKey[key] = a
			order = append(order, key)
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		a.Iterations += iters
		if a.runs == 0 || ns < a.NsPerOp {
			a.NsPerOp = ns
		}
		if m[4] != "" {
			bpo, _ := strconv.ParseInt(m[4], 10, 64)
			apo, _ := strconv.ParseInt(m[5], 10, 64)
			a.BytesPerOp += bpo
			a.AllocsOp += apo
		}
		a.runs++
	}
	sort.Strings(order)
	benchmarks := make([]Benchmark, 0, len(order))
	for _, key := range order {
		a := byKey[key]
		a.Iterations /= a.runs
		a.BytesPerOp /= a.runs
		a.AllocsOp /= a.runs
		benchmarks = append(benchmarks, a.Benchmark)
	}
	return benchmarks
}

// benchPair finds the ns/op of a baseline/variant benchmark pair by
// bare name (GOMAXPROCS suffix stripped); either is 0 when absent.
func benchPair(benchmarks []Benchmark, base, variant string) (disabled, enabled float64) {
	for _, b := range benchmarks {
		name := strings.SplitN(b.Name, "-", 2)[0]
		switch name {
		case base:
			disabled = b.NsPerOp
		case variant:
			enabled = b.NsPerOp
		}
	}
	return disabled, enabled
}

// overhead derives the tracing cost from the congested-step benchmark
// pair when both ran.
func overhead(benchmarks []Benchmark) *TracingOverhead {
	disabled, enabled := benchPair(benchmarks,
		"BenchmarkCongestedStep", "BenchmarkCongestedStepTraced")
	if disabled == 0 || enabled == 0 {
		return nil
	}
	return &TracingOverhead{
		DisabledNsPerCycle: disabled,
		EnabledNsPerCycle:  enabled,
		OverheadPct:        (enabled - disabled) / disabled * 100,
	}
}

// metricsOverhead derives the operational-metrics cost from the
// congested-step benchmark pair when both ran — the BENCH_5 acceptance
// bar holds it at or under 2%.
func metricsOverhead(benchmarks []Benchmark) *MetricsOverhead {
	disabled, enabled := benchPair(benchmarks,
		"BenchmarkCongestedStep", "BenchmarkCongestedStepMetrics")
	if disabled == 0 || enabled == 0 {
		return nil
	}
	return &MetricsOverhead{
		DisabledNsPerCycle: disabled,
		EnabledNsPerCycle:  enabled,
		OverheadPct:        (enabled - disabled) / disabled * 100,
	}
}

// pickIndex resolves the snapshot index: a pinned -index wins, otherwise
// the next free slot in the trajectory.
func pickIndex(pinned int, dir string) int {
	if pinned > 0 {
		return pinned
	}
	return nextIndex(dir)
}

// nextIndex returns 1 + the highest existing BENCH_<n>.json index.
func nextIndex(dir string) int {
	next := 1
	entries, err := os.ReadDir(dir)
	if err != nil {
		return next
	}
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n >= next {
			next = n + 1
		}
	}
	return next
}
