package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"strconv"
	"strings"
	"time"

	"metro/internal/netsim"
	"metro/internal/nic"
	"metro/internal/topo"
)

// ScalePoint is one measured point of the kernel scaling curve: a
// Figure 3-family network (topo.Scale) at a given endpoint count,
// stepped on the compiled kernel under closed-loop load with a given
// worker count. The curve answers the METRO scaling question directly:
// how much wall clock does one network cycle cost as the machine grows,
// and how much of it the partitioned engine claws back per worker.
type ScalePoint struct {
	Endpoints          int     `json:"endpoints"`
	Radix              int     `json:"radix"`
	Stages             int     `json:"stages"`
	Routers            int     `json:"routers"`
	Links              int     `json:"links"`
	Workers            int     `json:"workers"`
	Cycles             int     `json:"cycles"`
	Delivered          int     `json:"delivered"`
	BuildMs            float64 `json:"build_ms"`
	BytesPerEndpoint   int64   `json:"bytes_per_endpoint"`
	NsPerCycle         float64 `json:"ns_per_cycle"`
	CyclesPerSec       float64 `json:"cycles_per_sec"`
	NsPerEndpointCycle float64 `json:"ns_per_endpoint_cycle"`
}

var scalePayload = [4]byte{0xa5, 0x3c, 0x96, 0x0f}

// runScale measures the kernel scaling curve: for each endpoint count it
// builds one compiled-kernel network, charges the build's heap growth to
// the size (bytes/endpoint), then sweeps the worker counts over the same
// warm network. Load is closed-loop — endpoints/8 messages stay in
// flight, every completion immediately replaced — so each measured cycle
// sees the same steady congestion regardless of size.
func runScale(sizes []int, radix, cycles int, workers []int) ([]ScalePoint, error) {
	points := make([]ScalePoint, 0, len(sizes)*len(workers))
	for _, endpoints := range sizes {
		spec, err := topo.Scale(endpoints, radix)
		if err != nil {
			return nil, err
		}
		completed := 0
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		buildStart := time.Now()
		n, err := netsim.Build(netsim.Params{
			Spec: spec, Width: 8, DataPipe: 2, LinkDelay: 1,
			Seed: 71, RetryLimit: 600, ListenTimeout: 200, Kernel: true,
			OnResult: func(nic.Result) { completed++ },
		})
		if err != nil {
			return nil, fmt.Errorf("scale %d: %v", endpoints, err)
		}
		buildMs := float64(time.Since(buildStart).Nanoseconds()) / 1e6
		runtime.GC()
		runtime.ReadMemStats(&after)
		bytesPerEndpoint := int64(after.HeapAlloc-before.HeapAlloc) / int64(endpoints)

		rng := rand.New(rand.NewSource(17))
		send := func() {
			src, dest := rng.Intn(endpoints), rng.Intn(endpoints)
			if dest == src {
				dest = (dest + 1) % endpoints
			}
			n.Send(src, dest, scalePayload[:])
		}
		inflight := endpoints / 8
		if inflight < 64 {
			inflight = 64
		}
		for i := 0; i < inflight; i++ {
			send()
		}
		warmup := cycles / 4
		if warmup < 64 {
			warmup = 64
		}
		step := func(count int) (delivered int) {
			for i := 0; i < count; i++ {
				n.Engine.Step()
				for ; completed > 0; completed-- {
					delivered++
					send()
				}
				n.ResetResults()
			}
			return delivered
		}
		for _, w := range workers {
			n.Engine.SetWorkers(w)
			step(warmup)
			start := time.Now()
			delivered := step(cycles)
			elapsed := time.Since(start)
			nsPerCycle := float64(elapsed.Nanoseconds()) / float64(cycles)
			points = append(points, ScalePoint{
				Endpoints:          endpoints,
				Radix:              radix,
				Stages:             len(spec.Stages),
				Routers:            n.Topo.RouterCount(),
				Links:              n.Topo.LinkCount(),
				Workers:            w,
				Cycles:             cycles,
				Delivered:          delivered,
				BuildMs:            buildMs,
				BytesPerEndpoint:   bytesPerEndpoint,
				NsPerCycle:         nsPerCycle,
				CyclesPerSec:       1e9 / nsPerCycle,
				NsPerEndpointCycle: nsPerCycle / float64(endpoints),
			})
		}
		n.Close()
	}
	return points, nil
}

// parseIntList parses a comma-separated list of non-negative integers.
func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("-%s: bad value %q", flagName, part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s: empty list", flagName)
	}
	return out, nil
}
