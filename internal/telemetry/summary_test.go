package telemetry

import (
	"strings"
	"testing"
)

// lifecycleTrace builds a two-message stream: message 1 delivered after
// one blocked retry, message 2 failed after exhausting its budget.
func lifecycleTrace() Trace {
	events := []Event{
		// Message 1: queued@10, attempt@12 blocked fast, retried, attempt@20,
		// turn@30, delivered@38.
		ev(10, EvMsgQueued, EndpointSource(0), 1, 7, 0),
		ev(12, EvMsgAttempt, EndpointSource(0), 1, 1, 0),
		ev(14, EvMsgBlockedFast, EndpointSource(0), 1, 0, 0),
		ev(14, EvMsgRetried, EndpointSource(0), 1, 1, 0),
		ev(20, EvMsgAttempt, EndpointSource(0), 1, 2, 0),
		ev(30, EvMsgTurnSent, EndpointSource(0), 1, 2, 0),
		ev(38, EvMsgDelivered, EndpointSource(0), 1, 1, 7),
		// Message 2: queued@11, attempt@13, checksum fail, failed@50.
		ev(11, EvMsgQueued, EndpointSource(3), 2, 5, 0),
		ev(13, EvMsgAttempt, EndpointSource(3), 2, 1, 0),
		ev(25, EvMsgTurnSent, EndpointSource(3), 2, 1, 0),
		ev(33, EvMsgChecksumFail, EndpointSource(3), 2, 0, 0),
		ev(50, EvMsgFailed, EndpointSource(3), 2, 3, 5),
		// Router activity across two stages.
		ev(12, EvConnSetup, RouterSource(0, 1, 0), 0, 0, 2),
		ev(13, EvConnBlockedFast, RouterSource(1, 4, 0), 0, 1, 0),
		ev(21, EvConnSetup, RouterSource(1, 4, 0), 0, 1, 3),
		ev(30, EvConnTurned, RouterSource(1, 4, 0), 0, 1, 1),
		ev(37, EvConnReleased, RouterSource(0, 1, 0), 0, 0, 2),
		// Arrival at the destination.
		ev(30, EvMsgArrived, EndpointSource(7), 0, 1, 0),
		// Gauges.
		ev(15, EvGaugeConns, NetworkSource(0), 0, 2, 0),
		ev(16, EvGaugeConns, NetworkSource(0), 0, 4, 0),
		ev(15, EvGaugeQueueDepth, NetworkSource(-1), 0, 6, 2),
	}
	return Trace{Events: events, Total: uint64(len(events))}
}

func TestSummarizeMessageLifecycles(t *testing.T) {
	s := Summarize(lifecycleTrace())
	if s.Delivered != 1 || s.Failed != 1 {
		t.Fatalf("delivered/failed = %d/%d, want 1/1", s.Delivered, s.Failed)
	}
	if len(s.Msgs) != 2 {
		t.Fatalf("traced %d messages, want 2", len(s.Msgs))
	}
	m1 := s.Msgs[0]
	if m1.ID != 1 || !m1.Delivered || !m1.Complete {
		t.Fatalf("message 1 state wrong: %+v", m1)
	}
	if m1.Src != 0 || m1.Dest != 7 {
		t.Errorf("message 1 src/dest = %d/%d, want 0/7", m1.Src, m1.Dest)
	}
	if got := m1.TotalLatency(); got != 28 {
		t.Errorf("total latency = %d, want 28", got)
	}
	if got := m1.QueueWait(); got != 2 {
		t.Errorf("queue wait = %d, want 2", got)
	}
	if got := m1.RetryWait(); got != 8 {
		t.Errorf("retry wait = %d, want 8", got)
	}
	if got := m1.Transmit(); got != 10 {
		t.Errorf("transmit = %d, want 10", got)
	}
	if got := m1.Turnaround(); got != 8 {
		t.Errorf("turnaround = %d, want 8", got)
	}
	if m1.Attempts != 2 || m1.Retries != 1 || m1.BlockedFast != 1 {
		t.Errorf("message 1 counts wrong: %+v", m1)
	}
	m2 := s.Msgs[1]
	if m2.Delivered || m2.ChecksumFails != 1 || m2.Retries != 3 {
		t.Errorf("message 2 state wrong: %+v", m2)
	}
	if s.Arrived != 1 || s.ArrivedIntact != 1 {
		t.Errorf("arrivals = %d/%d, want 1/1", s.Arrived, s.ArrivedIntact)
	}
	// Latency samples include both complete messages.
	if s.TotalLat.Count() != 2 {
		t.Errorf("latency sample count = %d, want 2", s.TotalLat.Count())
	}
}

func TestSummarizeConnStages(t *testing.T) {
	s := Summarize(lifecycleTrace())
	if len(s.Conn) != 2 {
		t.Fatalf("conn stages = %d, want 2", len(s.Conn))
	}
	s0, s1 := s.Conn[0], s.Conn[1]
	if s0.Stage != 0 || s0.Setup != 1 || s0.Released != 1 {
		t.Errorf("stage 0 stats wrong: %+v", s0)
	}
	if s1.Stage != 1 || s1.Setup != 1 || s1.BlockedFast != 1 || s1.Turned != 1 {
		t.Errorf("stage 1 stats wrong: %+v", s1)
	}
	if got := s1.BlockRate(); got != 0.5 {
		t.Errorf("stage 1 block rate = %f, want 0.5", got)
	}
}

func TestSummarizeGauges(t *testing.T) {
	s := Summarize(lifecycleTrace())
	if len(s.Gauges) != 2 {
		t.Fatalf("gauge series = %d, want 2", len(s.Gauges))
	}
	conns := s.Gauges[0]
	if conns.Kind != EvGaugeConns || conns.Stage != 0 || conns.Samples != 2 {
		t.Errorf("conns gauge wrong: %+v", conns)
	}
	if conns.Mean != 3 || conns.Max != 4 {
		t.Errorf("conns gauge mean/max = %f/%f, want 3/4", conns.Mean, conns.Max)
	}
}

func TestSummaryWindowClipping(t *testing.T) {
	// A message whose QUEUED event was overwritten by the ring: it must
	// be counted incomplete and excluded from latency samples.
	tr := Trace{
		Total: 5, // 2 events lost to the window
		Events: []Event{
			ev(90, EvMsgTurnSent, EndpointSource(1), 9, 1, 0),
			ev(99, EvMsgDelivered, EndpointSource(1), 9, 0, 4),
			ev(95, EvMsgQueued, EndpointSource(2), 10, 1, 0),
		},
	}
	s := Summarize(tr)
	if s.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", s.Dropped)
	}
	if s.Incomplete != 2 {
		t.Errorf("Incomplete = %d, want 2 (both lifecycles clipped)", s.Incomplete)
	}
	if s.TotalLat.Count() != 0 {
		t.Errorf("clipped messages leaked into latency samples: %d", s.TotalLat.Count())
	}
}

func TestSummaryRender(t *testing.T) {
	out := Summarize(lifecycleTrace()).Render()
	for _, want := range []string{
		"trace: 21 events",
		"MSG-DELIVERED",
		"connections per stage:",
		"latency breakdown",
		"queue-wait",
		"turnaround",
		"gauges:",
		"GAUGE-CONNS.s0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}
