// Package link models the point-to-point interconnect between METRO routing
// components and network endpoints.
//
// METRO pipelines data across the wires between routers: each link behaves
// as a configurable number of pipeline registers in each direction (the
// paper's Variable Turn Delay, Section 5.1 — "we can model the wire between
// two components as a number of pipeline registers"). A Link therefore
// carries, per clock cycle and per direction, one word.Word plus the
// out-of-band backward control bit (BCB) used for fast path reclamation.
//
// A Link has two ends, A and B. By convention the A end attaches to the
// upstream element (an endpoint's injection port or a router's backward
// port) and the B end to the downstream element (a router's forward port or
// an endpoint's delivery port). Forward traffic (source toward destination)
// flows A→B; reversed-connection traffic and the BCB flow B→A.
//
// Links implement clock.Component: ends stage values during Eval via Send /
// SendBCB, and the pipelines shift at Commit, so values become visible to
// the far end after the configured delay.
//
// Fault injection hooks (Corruptor functions and Kill) model broken or
// noisy wires for the fault-tolerance experiments.
package link

import (
	"fmt"

	"metro/internal/word"
)

// Corruptor transforms words as they exit a link, modeling a faulty wire.
// A nil Corruptor leaves the link healthy.
type Corruptor func(word.Word) word.Word

// slot is the content of one pipeline register: a word plus the BCB.
type slot struct {
	w   word.Word
	bcb bool
}

// pipe is one direction of a link: the input slot staged during the current
// cycle followed by delay pipeline registers, stored contiguously. regs[0]
// is the staged slot and regs[len-1] is the output register, so a commit is
// a single forward copy — the same operation whether the backing array is a
// private allocation (New) or a region of a shared Arena (Arena.New).
type pipe struct {
	regs []slot
}

func newPipe(delay int) pipe { return pipe{regs: make([]slot, delay+1)} }

// out reads the register at the far end of the pipeline.
//
//metrovet:bounds New panics on delay < 1, so regs has at least two slots
func (p *pipe) out() slot { return p.regs[len(p.regs)-1] }

// shift advances the pipeline by one cycle: every slot moves one place
// toward the output and the staged slot clears to Empty.
//
//metrovet:bounds New panics on delay < 1, so regs has at least two slots
func (p *pipe) shift() {
	copy(p.regs[1:], p.regs[:len(p.regs)-1])
	p.regs[0] = slot{}
}

// Link is a bidirectional, pipelined chip-to-chip connection.
type Link struct {
	name      string
	ab        pipe // words and BCB traveling A→B
	ba        pipe // words and BCB traveling B→A
	endA      End  // embedded so an arena of links keeps ends contiguous
	endB      End
	corruptAB Corruptor
	corruptBA Corruptor
	dead      bool
}

// initEnds wires the embedded ends' cached register addresses; it must run
// after the pipes are in place and before A or B is called.
func (l *Link) initEnds() {
	l.endA = End{l: l, atA: true, in: l.ba.outReg(), stage: &l.ab.regs[0], corrupt: &l.corruptBA}
	l.endB = End{l: l, atA: false, in: l.ab.outReg(), stage: &l.ba.regs[0], corrupt: &l.corruptAB}
}

// New returns a link whose wires contribute delay pipeline stages in each
// direction (the paper's vtd; delay must be >= 1).
func New(name string, delay int) *Link {
	if delay < 1 {
		panic(fmt.Sprintf("link %s: delay must be >= 1, got %d", name, delay))
	}
	l := &Link{name: name, ab: newPipe(delay), ba: newPipe(delay)}
	l.initEnds()
	return l
}

// Name returns the link's identifier (used in traces and fault plans).
func (l *Link) Name() string { return l.name }

// Delay returns the pipeline depth per direction.
func (l *Link) Delay() int { return len(l.ab.regs) - 1 }

// Eval implements clock.Component; links have no evaluation work.
func (l *Link) Eval(cycle uint64) {}

// Commit shifts both pipelines, latching the values staged during Eval.
func (l *Link) Commit(cycle uint64) {
	l.ab.shift()
	l.ba.shift()
}

// SetCorruptor installs fault hooks applied to words exiting the link in
// each direction. Either may be nil.
func (l *Link) SetCorruptor(ab, ba Corruptor) {
	l.corruptAB, l.corruptBA = ab, ba
}

// Kill marks the link dead: both directions deliver only Empty words and a
// deasserted BCB, as a severed wire would.
func (l *Link) Kill() { l.dead = true }

// Revive clears a previous Kill. In-flight contents were lost.
func (l *Link) Revive() { l.dead = false }

// Dead reports whether the link has been killed.
func (l *Link) Dead() bool { return l.dead }

// A returns the upstream end of the link.
func (l *Link) A() *End { return &l.endA }

// B returns the downstream end of the link.
func (l *Link) B() *End { return &l.endB }

// outReg returns the address of the pipeline's output register. Register
// storage is fixed for the life of a link (shifts move values, never the
// backing array), so ends cache these addresses at wiring time and the
// per-cycle read path is a single load.
//
//metrovet:bounds New panics on delay < 1, so regs has at least two slots
func (p *pipe) outReg() *slot { return &p.regs[len(p.regs)-1] }

// End is one side's interface to a link. All methods follow the two-phase
// clock discipline: Send/SendBCB stage values for the current cycle, while
// Recv/RecvBCB observe values committed at the end of the previous cycle.
type End struct {
	l       *Link
	atA     bool
	in      *slot      // far pipe's output register (fixed address)
	stage   *slot      // near pipe's staged slot (fixed address)
	corrupt *Corruptor // the arriving direction's fault hook (fixed field address)
}

// Link returns the underlying link.
func (e *End) Link() *Link { return e.l }

// Send stages the word this end drives onto the link this cycle. If Send is
// not called during a cycle the end drives Empty.
func (e *End) Send(w word.Word) { e.stage.w = w }

// SendBCB stages the backward control bit this end drives this cycle.
// The BCB is only meaningful traveling B→A (toward the source), but both
// directions carry it for symmetry.
func (e *End) SendBCB(b bool) { e.stage.bcb = b }

// Recv returns the word arriving at this end this cycle.
func (e *End) Recv() word.Word {
	if e.l.dead || *e.corrupt != nil {
		return e.recvSlow().w
	}
	return e.in.w
}

// RecvBCB returns the backward control bit arriving at this end this cycle.
func (e *End) RecvBCB() bool {
	if e.l.dead || *e.corrupt != nil {
		// The fault hook still observes the word (stateful corruptors count
		// on seeing every exiting word exactly as incoming delivers it).
		return e.recvSlow().bcb
	}
	return e.in.bcb
}

// recvSlow is the dead-link / fault-hook receive path, kept out of the
// per-cycle fast path so Recv and RecvBCB inline.
func (e *End) recvSlow() slot { return e.incoming() }

// Arena is a flat struct-of-arrays backing store for the pipeline registers
// of many same-delay links. Each link occupies 2*(delay+1) contiguous slots
// — the A→B pipe (staged slot then delay registers) followed by the B→A
// pipe — so committing every link in the arena is a strided sweep over one
// slice instead of a virtual Commit call per Link.
//
// Links carved from an arena behave exactly like ones from New: the Link
// struct is a view whose pipes alias arena memory, so Kill, corruptors, and
// telemetry keep working. The one discipline change is that the owner calls
// Arena.Shuttle for the commit phase and must not also register the links
// with the clock engine (double-shifting would advance a wire two cycles).
type Arena struct {
	delay  int
	stride int // slots per pipe: staged + delay registers
	slots  []slot
	links  []Link // backing array; Len() of these are initialized
	used   int
}

// NewArena returns an arena with room for capacity links of the given
// pipeline delay (delay must be >= 1, matching New).
func NewArena(delay, capacity int) *Arena {
	if delay < 1 {
		panic(fmt.Sprintf("link arena: delay must be >= 1, got %d", delay))
	}
	stride := delay + 1
	return &Arena{
		delay:  delay,
		stride: stride,
		slots:  make([]slot, 2*stride*capacity),
		links:  make([]Link, capacity),
	}
}

// Delay returns the pipeline depth shared by every link in the arena.
func (a *Arena) Delay() int { return a.delay }

// Len returns the number of links carved so far.
func (a *Arena) Len() int { return a.used }

// Cap returns the arena's fixed capacity in links.
func (a *Arena) Cap() int { return len(a.links) }

// New carves the next link out of the arena. It panics when the arena is
// full: capacities are computed exactly at assembly time, so running out
// is a compiler bug, not an operational condition.
func (a *Arena) New(name string) *Link {
	if a.used == len(a.links) {
		panic(fmt.Sprintf("link arena: capacity %d exhausted at %s", len(a.links), name))
	}
	base := 2 * a.stride * a.used
	l := &a.links[a.used]
	a.used++
	*l = Link{
		name: name,
		ab:   pipe{regs: a.slots[base : base+a.stride : base+a.stride]},
		ba:   pipe{regs: a.slots[base+a.stride : base+2*a.stride : base+2*a.stride]},
	}
	l.initEnds()
	return l
}

// At returns the i'th carved link (creation order).
func (a *Arena) At(i int) *Link { return &a.links[i] }

// Shuttle advances the pipelines of links [lo, hi) by one cycle, exactly as
// if each link's Commit had run. Dead links shuttle like live ones (Kill
// suppresses delivery at the reading end, not propagation), so the sweep is
// branch-free. Disjoint ranges touch disjoint slot regions, which is what
// makes the commit phase safe to partition across workers.
//
//metrovet:bounds the delay-1 sweep walks s two slots at a time with i+1 < i+2 <= len(s), and the slice bounds 4*lo:4*hi cover exactly links [lo,hi) at stride 2
func (a *Arena) Shuttle(lo, hi int) {
	stride := a.stride
	if stride == 2 {
		// Delay-1 links (the overwhelmingly common configuration): each
		// pipe is just staged slot then output register, so the shuttle is
		// a pairwise move without the copy-call overhead. One iteration
		// handles a whole link — both pipes — to halve the loop overhead.
		s := a.slots[4*lo : 4*hi]
		for len(s) >= 4 {
			s[1] = s[0]
			s[0] = slot{}
			s[3] = s[2]
			s[2] = slot{}
			s = s[4:]
		}
		return
	}
	for p := 2 * lo; p < 2*hi; p++ {
		base := p * stride
		regs := a.slots[base : base+stride]
		copy(regs[1:], regs[:stride-1])
		regs[0] = slot{}
	}
}

func (e *End) incoming() slot {
	if e.l.dead {
		return slot{}
	}
	var s slot
	var c Corruptor
	if e.atA {
		s = e.l.ba.out()
		c = e.l.corruptBA
	} else {
		s = e.l.ab.out()
		c = e.l.corruptAB
	}
	if c != nil && !s.w.IsEmpty() {
		s.w = c(s.w)
	}
	return s
}
