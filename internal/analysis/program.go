package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Program is the whole-program view the interprocedural analyzers work
// on: every loaded package plus an index of all compiled function
// declarations. Per-package analyzers see one Package at a time;
// whole-program analyzers (hot-path-alloc, eval-isolation,
// shard-purity) see the Program, so an Eval that calls an allocating or
// impure helper three packages away is still on the hook.
//
// Functions are indexed by a path-based key, not by types.Object
// identity: the loader type-checks a package's compiled files once as
// the import surface and once more together with its in-package test
// files, so the "same" function is represented by two distinct objects
// depending on which side of an import a reference sits. Keying on
// (package path, receiver type, name) makes both resolve to one node.
type Program struct {
	Packages []*Package // sorted by import path

	byPath map[string]*Package
	funcs  map[string]*FuncNode
	// named collects every named type declared in the compiled files of
	// the loaded packages, for CHA interface resolution.
	named []*types.Named
	// cg caches the call graph so the whole-program analyzers share one
	// build per tree.
	cg *CallGraph
	// vr caches the value-range analysis shared by the
	// truncating-conversion, provable-bounds, and width-contract rules.
	vr *valueRange
}

// CallGraph returns the program's call graph, building it on first use.
func (prog *Program) CallGraph() *CallGraph {
	if prog.cg == nil {
		prog.cg = BuildCallGraph(prog)
	}
	return prog.cg
}

// FuncNode is one compiled function or method declaration.
type FuncNode struct {
	Key  string // "pkgpath.Recv.Name" or "pkgpath.Name"
	Decl *ast.FuncDecl
	Pkg  *Package
	// RecvName is the receiver's named type ("" for plain functions).
	RecvName string
}

// NewProgram indexes the given packages. The same package list always
// produces the same index order.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		byPath: map[string]*Package{},
		funcs:  map[string]*FuncNode{},
	}
	prog.Packages = append(prog.Packages, pkgs...)
	sort.Slice(prog.Packages, func(i, j int) bool {
		return prog.Packages[i].ImportPath < prog.Packages[j].ImportPath
	})
	seenNamed := map[*types.TypeName]bool{}
	for _, p := range prog.Packages {
		prog.byPath[p.ImportPath] = p
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := declKey(p, fd)
				if key == "" {
					continue
				}
				if _, dup := prog.funcs[key]; !dup {
					prog.funcs[key] = &FuncNode{Key: key, Decl: fd, Pkg: p, RecvName: recvNameOf(fd)}
				}
			}
		}
		// Collect named types from the base (import-surface) scope: the
		// analyzers only ever dispatch CHA edges onto compiled types.
		if p.Types == nil {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() || seenNamed[tn] {
				continue
			}
			seenNamed[tn] = true
			if named, ok := tn.Type().(*types.Named); ok {
				prog.named = append(prog.named, named)
			}
		}
	}
	return prog
}

// PackageOf returns the loaded package with the given import path.
func (prog *Program) PackageOf(path string) *Package { return prog.byPath[path] }

// FuncByKey returns the indexed declaration for key, or nil.
func (prog *Program) FuncByKey(key string) *FuncNode { return prog.funcs[key] }

// recvNameOf is recvTypeName tolerant of plain functions.
func recvNameOf(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	return recvTypeName(fd)
}

// declKey builds the index key for a declaration in package p.
func declKey(p *Package, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if recv := recvNameOf(fd); recv != "" {
		return p.ImportPath + "." + recv + "." + name
	}
	if fd.Recv != nil {
		return "" // malformed receiver; nothing can call it by key
	}
	return p.ImportPath + "." + name
}

// funcObjKey builds the same key from a resolved function object, so a
// call site in any check unit maps to the declaration's node. Returns
// "" for objects that cannot be indexed (builtins, interface methods —
// those take the CHA path — and functions outside the program).
func (prog *Program) funcObjKey(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	path := strings.TrimSuffix(pkg.Path(), "_test")
	if prog.byPath[path] == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		named := namedTypeOf(recv.Type())
		if named == nil {
			// Interface-method object or unnamed receiver: not a
			// concrete declaration.
			return ""
		}
		return path + "." + named.Obj().Name() + "." + fn.Name()
	}
	return path + "." + fn.Name()
}

// nodeFor resolves a function object to its compiled declaration, or
// nil when the body is outside the program (stdlib, test files,
// interface methods).
func (prog *Program) nodeFor(fn *types.Func) *FuncNode {
	key := prog.funcObjKey(fn)
	if key == "" {
		return nil
	}
	return prog.funcs[key]
}

// implementersOf returns the named types declared in internal packages
// of the program whose pointer method set satisfies iface, sorted by
// (package path, type name) for deterministic edge order. CHA
// deliberately stops at the model boundary: an example program's
// printing tracer satisfies core.Tracer too, but it is not part of the
// sharded simulation the purity rules protect (and the zero-alloc
// benchmarks gate the real configurations at runtime).
func (prog *Program) implementersOf(iface *types.Interface) []*types.Named {
	if iface == nil || iface.Empty() {
		return nil
	}
	var out []*types.Named
	for _, named := range prog.named {
		obj := named.Obj()
		if obj.Pkg() == nil || !isInternal(obj.Pkg().Path()) {
			continue
		}
		if types.IsInterface(named) {
			continue
		}
		if types.Implements(types.NewPointer(named), iface) || types.Implements(named, iface) {
			out = append(out, named)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Obj(), out[j].Obj()
		if a.Pkg().Path() != b.Pkg().Path() {
			return a.Pkg().Path() < b.Pkg().Path()
		}
		return a.Name() < b.Name()
	})
	return out
}

// methodNodeOf resolves named's method (or promoted method) by name to
// its compiled declaration, or nil.
func (prog *Program) methodNodeOf(named *types.Named, name string) *FuncNode {
	ms := types.NewMethodSet(types.NewPointer(named))
	var sel *types.Selection
	if s := ms.Lookup(named.Obj().Pkg(), name); s != nil {
		sel = s
	} else if s := ms.Lookup(nil, name); s != nil {
		sel = s
	}
	if sel == nil {
		return nil
	}
	fn, ok := sel.Obj().(*types.Func)
	if !ok {
		return nil
	}
	return prog.nodeFor(fn)
}

// componentRoots collects the given methods of every component-shaped
// type in the program as reachability roots, labeled "(pkg.Type).Method"
// and sorted by label for deterministic first-root attribution. Packages
// for which keep returns false are skipped (nil keeps everything).
func componentRoots(prog *Program, keep func(*Package) bool, methods ...string) []RootedNode {
	var roots []RootedNode
	for _, p := range prog.Packages {
		if p.Types == nil || (keep != nil && !keep(p)) {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || !isComponentShaped(named) {
				continue
			}
			for _, m := range methods {
				node := prog.methodNodeOf(named, m)
				if node == nil {
					continue
				}
				roots = append(roots, RootedNode{
					Node: node,
					Root: fmt.Sprintf("(%s.%s).%s", pkgLabel(p), name, m),
					Type: name,
					Kind: "component",
				})
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Root < roots[j].Root })
	return roots
}

// pkgLabel is the short package name used in finding messages: the
// internal/ segment when there is one, else the package name.
func pkgLabel(p *Package) string {
	if n := internalName(p.ImportPath); n != "" {
		return n
	}
	if p.Types != nil {
		return p.Types.Name()
	}
	return p.ImportPath
}

// componentNamed reports whether t (after unwrapping pointers) is a
// named type declaring the clock.Component Eval/Commit pair.
func componentNamed(t types.Type) *types.Named {
	named := namedTypeOf(t)
	if named == nil || !isComponentShaped(named) {
		return nil
	}
	return named
}

// String renders a short description for debugging and tests.
func (n *FuncNode) String() string {
	if n.RecvName != "" {
		return fmt.Sprintf("(%s.%s).%s", n.Pkg.ImportPath, n.RecvName, n.Decl.Name.Name)
	}
	return fmt.Sprintf("%s.%s", n.Pkg.ImportPath, n.Decl.Name.Name)
}
