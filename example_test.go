package metro_test

import (
	"fmt"

	"metro"
)

// Build the paper's Figure 1 network and deliver one reliable message.
func ExampleBuildNetwork() {
	net, err := metro.BuildNetwork(metro.NetworkParams{
		Spec:        metro.Figure1Topology(),
		Width:       8,
		FastReclaim: true,
		Seed:        42,
	})
	if err != nil {
		panic(err)
	}
	res, _ := metro.SendOne(net, 6, 15, []byte("hello"), 5000)
	fmt.Println("delivered:", res.Delivered, "retries:", res.Retries)
	// Output: delivered: true retries: 0
}

// Inspect a topology's multipath structure.
func ExampleBuildTopology() {
	top, err := metro.BuildTopology(metro.Figure1Topology())
	if err != nil {
		panic(err)
	}
	fmt.Println("routers:", top.RouterCount())
	fmt.Println("paths 6->15:", top.PathCount(6, 15))
	// Output:
	// routers: 24
	// paths 6->15: 8
}

// Evaluate the paper's Table 4 latency model for an implementation point.
func ExampleImplementation() {
	orbit := metro.Table3()[0] // METROJR-ORBIT, 1.2u gate array
	fmt.Printf("t_stg = %g ns\n", orbit.TStg())
	fmt.Printf("t20,32 = %g ns\n", orbit.T2032())
	fmt.Printf("t20,1024 = %g ns\n", orbit.Scaled(1024).T2032())
	// Output:
	// t_stg = 50 ns
	// t20,32 = 1250 ns
	// t20,1024 = 1525 ns
}

// Run a closed-loop load point on the Figure 3 network.
func ExampleRunClosedLoop() {
	point, err := metro.RunClosedLoop(metro.RunSpec{
		Net: metro.NetworkParams{
			Spec:        metro.Figure3Topology(),
			Width:       8,
			FastReclaim: true,
			Seed:        17,
		},
		Load:          0.05,
		MsgBytes:      20,
		Pattern:       metro.UniformTraffic{},
		Outstanding:   1,
		WarmupCycles:  1000,
		MeasureCycles: 3000,
		Seed:          3,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("all delivered:", point.Delivered == point.Messages)
	fmt.Println("latency within expectation:", point.Latency.Mean > 30 && point.Latency.Mean < 50)
	// Output:
	// all delivered: true
	// latency within expectation: true
}

// Tear a network apart mid-run and watch source-responsible retry recover.
func ExampleInjectFaults() {
	net, err := metro.BuildNetwork(metro.NetworkParams{
		Spec:        metro.Figure1Topology(),
		Width:       8,
		FastReclaim: true,
		Seed:        7,
		RetryLimit:  300,
	})
	if err != nil {
		panic(err)
	}
	metro.InjectFaults(net, metro.FaultPlan{
		{At: 0, Kind: metro.FaultRouterKill, Stage: 0, Index: 1},
		{At: 0, Kind: metro.FaultRouterKill, Stage: 1, Index: 2},
	})
	res, _ := metro.SendOne(net, 0, 9, []byte("x"), 50000)
	fmt.Println("delivered despite two dead routers:", res.Delivered)
	// Output: delivered despite two dead routers: true
}
