package telemetry

import "metro/internal/metrics"

// MetricsSink bridges the telemetry bus into the operational-metrics
// layer: install its Sink method as (or inside) a Recorder streaming
// tap and it tallies message dispositions and queue-occupancy peaks as
// the flusher drains each cycle's events.
//
// Like every telemetry sink it is observe-only: Sink writes nothing but
// its own tallies and the wired metric cells. It runs on the flushing
// goroutine in the serialized epilogue, does no allocation and never
// blocks, so recording stays zero-alloc with the bridge attached.
//
// The optional counter fields accumulate across runs (a service's
// fleet-wide totals); the per-run tallies returned by Stats reset with
// each new MetricsSink. Stats must be read only after the run
// completes: the engine's phase barrier orders the flusher's writes
// before the driving goroutine's reads, but nothing orders them during
// a run.
type MetricsSink struct {
	// Delivered, Retried, and Failed count final and intermediate
	// message dispositions across the sink's lifetime. Nil counters
	// discard updates.
	Delivered *metrics.Counter
	Retried   *metrics.Counter
	Failed    *metrics.Counter

	offered   uint64
	delivered uint64
	retried   uint64
	failed    uint64
	maxQueue  int32 // peak network-wide queued messages
	deepest   int32 // peak single-endpoint queue depth
}

// SinkStats is a per-run summary of what the bridge observed.
type SinkStats struct {
	// Offered counts EvMsgQueued events: messages entering send queues.
	Offered uint64
	// Delivered, Retried, and Failed count the corresponding message
	// events.
	Delivered uint64
	Retried   uint64
	Failed    uint64
	// MaxQueueDepth is the peak network-wide queued-message count seen
	// by the EvGaugeQueueDepth sampler; MaxSingleQueue is the deepest
	// single endpoint queue. Both require a gauge-sampling Recorder
	// build (netsim wires the sampler whenever a Recorder is attached).
	MaxQueueDepth  int32
	MaxSingleQueue int32
}

// Sink consumes one buffer's drained events. It is shaped for
// Recorder.SetSink — compose it with other taps by calling it from a
// closure. The slice is only valid during the call; Sink reads it
// without retaining.
func (s *MetricsSink) Sink(events []Event) {
	for i := range events {
		k := events[i].Kind
		if k == EvMsgQueued {
			s.offered++
		} else if k == EvMsgDelivered {
			s.delivered++
			s.Delivered.Inc()
		} else if k == EvMsgRetried {
			s.retried++
			s.Retried.Inc()
		} else if k == EvMsgFailed {
			s.failed++
			s.Failed.Inc()
		} else if k == EvGaugeQueueDepth {
			if a := events[i].A; a > s.maxQueue {
				s.maxQueue = a
			}
			if b := events[i].B; b > s.deepest {
				s.deepest = b
			}
		}
	}
}

// Stats returns the per-run tallies. Call only after the run has
// completed (see the type comment for the ordering argument).
func (s *MetricsSink) Stats() SinkStats {
	return SinkStats{
		Offered:        s.offered,
		Delivered:      s.delivered,
		Retried:        s.retried,
		Failed:         s.failed,
		MaxQueueDepth:  s.maxQueue,
		MaxSingleQueue: s.deepest,
	}
}
