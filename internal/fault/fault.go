// Package fault injects static and dynamic faults into simulated METRO
// networks.
//
// The paper's reliability story rests on two mechanisms this package
// exercises: stochastic path selection with source-responsible retry
// (dynamic fault avoidance — Section 4) and scan-driven port disabling
// (static fault masking — Section 5.1). Fault plans schedule link kills,
// stuck-at corruption, router losses and port disables at specific cycles
// of a running simulation.
package fault

import (
	"fmt"
	"math/rand"

	"metro/internal/link"
	"metro/internal/netsim"
	"metro/internal/telemetry"
	"metro/internal/word"
)

// Kind enumerates the supported fault types.
type Kind int

const (
	// LinkKill severs a link completely: both directions deliver nothing.
	LinkKill Kind = iota
	// LinkStuckBit forces one payload bit of every forward word on a link
	// to 1, a classic stuck-at fault that corrupts data without killing
	// the channel.
	LinkStuckBit
	// RouterKill disables every port of a router and severs its output
	// links, modeling complete component loss.
	RouterKill
	// PortDisable turns off a single backward port, as a scan-driven
	// reconfiguration masking a localized fault would.
	PortDisable
)

// String names the fault kind.
func (k Kind) String() string {
	switch k {
	case LinkKill:
		return "link-kill"
	case LinkStuckBit:
		return "link-stuck-bit"
	case RouterKill:
		return "router-kill"
	case PortDisable:
		return "port-disable"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	// At is the cycle the fault manifests (0 = static, present from the
	// start).
	At uint64
	// Kind selects the fault type.
	Kind Kind
	// Stage and Index identify the router; for link faults, the link is
	// the router's backward-port link selected by Port. Stage -1 selects
	// endpoint injection links (Index = endpoint, Port = link index).
	Stage, Index, Port int
	// Bit is the stuck bit position for LinkStuckBit.
	Bit uint
}

// String renders the event for reports.
func (e Event) String() string {
	if e.Stage < 0 {
		return fmt.Sprintf("@%d %v ep%d.link%d", e.At, e.Kind, e.Index, e.Port)
	}
	return fmt.Sprintf("@%d %v s%dr%d.p%d", e.At, e.Kind, e.Stage, e.Index, e.Port)
}

// Plan is a schedule of faults.
type Plan []Event

// Injector applies a Plan to a network as the simulation advances. It
// implements clock.Component and must be added to the network's engine.
type Injector struct {
	net   *netsim.Network
	plan  Plan
	next  int
	fired []Event
}

// NewInjector binds a plan to a network and registers it with the engine.
// Events fire in slice order; their At cycles should be non-decreasing.
func NewInjector(n *netsim.Network, plan Plan) *Injector {
	inj := &Injector{net: n, plan: plan}
	n.Engine.Add(inj)
	return inj
}

// Eval fires any events scheduled at or before the current cycle.
//
//metrovet:bounds the loop rechecks next < len(plan) every iteration; apply and record never touch next or plan
func (i *Injector) Eval(cycle uint64) {
	for i.next < len(i.plan) && i.plan[i.next].At <= cycle {
		e := i.plan[i.next]
		i.apply(e)
		i.record(cycle, e)
		//metrovet:alloc per-fault-event telemetry, bounded by the plan length
		i.fired = append(i.fired, e)
		i.next++
	}
}

// record emits the fault into the network's flight recorder, when one is
// attached: Src locates the victim (router, or endpoint for
// injection-link faults), A is the fault kind code and B the port.
//
//metrovet:shared injector runs in the serialized epilogue; the network-scope telemetry buffer is its sanctioned sink
//metrovet:truncate Kind is a tiny enum and Port a port index, both far below 2^31
func (i *Injector) record(cycle uint64, e Event) {
	buf := i.net.FaultSink()
	if buf == nil {
		return
	}
	src := telemetry.RouterSource(e.Stage, e.Index, 0)
	if e.Stage < 0 {
		src = telemetry.EndpointSource(e.Index)
	}
	buf.Emit(telemetry.Event{
		Cycle: cycle, Src: src, Kind: telemetry.EvFault,
		A: int32(e.Kind), B: int32(e.Port),
	})
}

// Commit implements clock.Component.
func (i *Injector) Commit(cycle uint64) {}

// Fired returns the events applied so far.
func (i *Injector) Fired() []Event { return i.fired }

// apply mutates links and routers across the whole network.
//
//metrovet:shared injector registers via Engine.Add, so it runs in the serialized epilogue after the worker barrier
func (i *Injector) apply(e Event) {
	switch e.Kind {
	case LinkKill:
		i.linkOf(e).Kill()
	case LinkStuckBit:
		// Payloads are at most 32 bits; masking the position keeps an
		// out-of-range Bit (e.g. from a hand-edited repro string) from
		// silently zeroing the fault instead of sticking a bit.
		bit := uint32(1) << (e.Bit & 31)
		i.linkOf(e).SetCorruptor(func(w word.Word) word.Word {
			w.Payload |= bit
			return w
		}, nil)
	case RouterKill:
		i.net.KillRouter(e.Stage, e.Index)
	case PortDisable:
		i.net.RouterAt(e.Stage, e.Index).SetBackwardEnabled(e.Port, false)
	}
}

//metrovet:shared injector registers via Engine.Add, so it runs in the serialized epilogue after the worker barrier
func (i *Injector) linkOf(e Event) *link.Link {
	if e.Stage < 0 {
		return i.net.InjectLink(e.Index, e.Port)
	}
	return i.net.OutLink(e.Stage, e.Index, e.Port)
}

// RandomRouterKills builds a plan killing count distinct routers drawn
// uniformly from the first `stages` stages (the dilated stages; killing
// final-stage dilation-1 routers is survivable too but halves delivery
// bandwidth), spread evenly across the window [start, end).
func RandomRouterKills(n *netsim.Network, count int, stages int, seed int64, start, end uint64) Plan {
	rng := rand.New(rand.NewSource(seed))
	type rid struct{ s, j int }
	var all []rid
	for s := 0; s < stages && s < len(n.Routers); s++ {
		for j := range n.Routers[s] {
			all = append(all, rid{s, j})
		}
	}
	rng.Shuffle(len(all), func(a, b int) { all[a], all[b] = all[b], all[a] })
	if count > len(all) {
		count = len(all)
	}
	plan := make(Plan, 0, count)
	for i := 0; i < count; i++ {
		at := start
		if end > start && count > 0 {
			at = start + uint64(i)*(end-start)/uint64(count)
		}
		plan = append(plan, Event{At: at, Kind: RouterKill, Stage: all[i].s, Index: all[i].j})
	}
	return plan
}

// RandomLinkKills builds a plan severing count distinct inter-stage links.
func RandomLinkKills(n *netsim.Network, count int, seed int64, start, end uint64) Plan {
	rng := rand.New(rand.NewSource(seed))
	type lid struct{ s, j, bp int }
	var all []lid
	for s := range n.Routers {
		for j, r := range n.Routers[s] {
			for bp := 0; bp < r.Config().Outputs; bp++ {
				all = append(all, lid{s, j, bp})
			}
		}
	}
	rng.Shuffle(len(all), func(a, b int) { all[a], all[b] = all[b], all[a] })
	if count > len(all) {
		count = len(all)
	}
	plan := make(Plan, 0, count)
	for i := 0; i < count; i++ {
		at := start
		if end > start && count > 0 {
			at = start + uint64(i)*(end-start)/uint64(count)
		}
		plan = append(plan, Event{At: at, Kind: LinkKill,
			Stage: all[i].s, Index: all[i].j, Port: all[i].bp})
	}
	return plan
}
