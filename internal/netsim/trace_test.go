package netsim

import (
	"bytes"
	"math/rand"
	"testing"

	"metro/internal/telemetry"
	"metro/internal/topo"
)

// recordCongested runs the congested fixed-schedule workload with the
// flight recorder attached and returns the canonical mtr1 encoding of
// the recorded trace — the byte-identity currency of the differential.
func recordCongested(t *testing.T, p Params, injectSeed int64, perCycle, cycles int) []byte {
	t.Helper()
	rec := telemetry.New(telemetry.Options{Capacity: 1 << 20})
	p.Recorder = rec
	n, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	rng := rand.New(rand.NewSource(injectSeed))
	eps := p.Spec.Endpoints
	for cycle := 0; cycle < cycles; cycle++ {
		for k := 0; k < perCycle; k++ {
			src := rng.Intn(eps)
			dest := rng.Intn(eps)
			if dest == src {
				dest = (dest + 1) % eps
			}
			n.Send(src, dest, []byte{byte(cycle), byte(src), byte(dest)})
		}
		n.Engine.Step()
	}
	var buf bytes.Buffer
	if err := telemetry.Encode(&buf, rec.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelTraceIdentityCongestedFigure3 is the observability
// acceptance gate: the full recorded event stream of a congested
// Figure 3 run — message lifecycle, connection lifecycle, per-cycle
// gauges — must be byte-identical between the serial reference engine
// and the parallel engine at every worker count. Event buffering is
// per-shard and the merge happens at the cycle barrier in registration
// order, so no goroutine interleaving may show through.
func TestParallelTraceIdentityCongestedFigure3(t *testing.T) {
	cycles := 1200
	if testing.Short() {
		cycles = 500
	}
	params := func(workers int) Params {
		return Params{
			Spec: topo.Figure3(), Width: 8, DataPipe: 2, LinkDelay: 1,
			FastReclaim: false, Seed: 71, RetryLimit: 600, ListenTimeout: 200,
			Workers: workers,
		}
	}
	want := recordCongested(t, params(0), 17, 2, cycles)
	ref, err := telemetry.Decode(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("serial trace does not decode: %v", err)
	}
	if len(ref.Events) == 0 {
		t.Fatal("congested run recorded no events; the differential compares nothing")
	}
	// The stream must cover all four event families.
	var msgs, conns, gauges int
	for _, e := range ref.Events {
		switch {
		case e.Kind >= telemetry.EvMsgQueued && e.Kind <= telemetry.EvMsgArrived:
			msgs++
		case e.Kind >= telemetry.EvConnSetup && e.Kind <= telemetry.EvConnReleased:
			conns++
		case e.Kind >= telemetry.EvGaugeConns:
			gauges++
		}
	}
	if msgs == 0 || conns == 0 || gauges == 0 {
		t.Fatalf("trace families missing: %d message, %d connection, %d gauge events", msgs, conns, gauges)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		got := recordCongested(t, params(workers), 17, 2, cycles)
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: recorded trace diverges from the serial engine (%d vs %d bytes)",
				workers, len(got), len(want))
		}
	}
}

// TestParallelTraceIdentityCascade covers the cascade lanes: with
// CascadeWidth = 2 every logical router contributes two event sources
// (lane IDs distinguish them), all sharing one column buffer. Worker
// counts must still not show through.
func TestParallelTraceIdentityCascade(t *testing.T) {
	cycles := 400
	if testing.Short() {
		cycles = 200
	}
	params := func(workers int) Params {
		return Params{
			Spec: topo.Figure1(), Width: 4, DataPipe: 1, LinkDelay: 1,
			CascadeWidth: 2, FastReclaim: true, Seed: 5, RetryLimit: 300,
			ListenTimeout: 300, Workers: workers,
		}
	}
	want := recordCongested(t, params(0), 23, 1, cycles)
	for _, workers := range []int{1, 4} {
		got := recordCongested(t, params(workers), 23, 1, cycles)
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: cascade trace diverges from the serial engine", workers)
		}
	}
}

// TestTraceCapturesEndToEndLifecycle sends one message through a quiet
// network and checks the recorded stream tells its whole story: queued,
// attempt, connection setups along the path, turn, arrival, delivery —
// and that Summarize reconstructs a complete lifecycle from it.
func TestTraceCapturesEndToEndLifecycle(t *testing.T) {
	rec := telemetry.New(telemetry.Options{})
	n, err := Build(Params{
		Spec: topo.Figure1(), Width: 8, DataPipe: 1, LinkDelay: 1,
		FastReclaim: true, Seed: 3, RetryLimit: 50, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	n.Send(2, 11, []byte("hello metro"))
	if !n.RunUntilQuiet(20000) {
		t.Fatal("network did not go quiet")
	}
	s := telemetry.Summarize(rec.Snapshot())
	if s.Delivered != 1 {
		t.Fatalf("summary sees %d delivered messages, want 1\n%s", s.Delivered, s.Render())
	}
	for _, k := range []telemetry.Kind{
		telemetry.EvMsgQueued, telemetry.EvMsgAttempt, telemetry.EvMsgTurnSent,
		telemetry.EvMsgDelivered, telemetry.EvMsgArrived,
		telemetry.EvConnSetup, telemetry.EvConnTurned, telemetry.EvConnReleased,
		telemetry.EvGaugeConns, telemetry.EvGaugeInFlight,
	} {
		if s.Counts[k] == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
	m := s.Msgs[0]
	if !m.Complete {
		t.Fatalf("lifecycle incomplete: %+v", m)
	}
	if m.Src != 2 || m.Dest != 11 {
		t.Errorf("src/dest = %d/%d, want 2/11", m.Src, m.Dest)
	}
	if m.TotalLatency() == 0 || m.Transmit() == 0 || m.Turnaround() == 0 {
		t.Errorf("zero-width phases in a real delivery: %+v", m)
	}
	// The per-stage connection structure must cover every stage the path
	// crossed (Figure 1 has 3 stages).
	if len(s.Conn) != 3 {
		t.Errorf("conn stats cover %d stages, want 3", len(s.Conn))
	}
}

// TestGaugePeriodThinsSampling checks GaugePeriod: sampling every 8th
// cycle must record about an eighth of the gauge events.
func TestGaugePeriodThinsSampling(t *testing.T) {
	run := func(period uint64) int {
		rec := telemetry.New(telemetry.Options{})
		n, err := Build(Params{
			Spec: topo.Figure1(), Width: 8, Seed: 3, RetryLimit: 50,
			Recorder: rec, GaugePeriod: period,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		n.Run(64)
		s := telemetry.Summarize(rec.Snapshot())
		return s.Counts[telemetry.EvGaugeInFlight]
	}
	every, eighth := run(0), run(8)
	if every != 64 {
		t.Errorf("default sampling recorded %d in-flight gauges over 64 cycles, want 64", every)
	}
	if eighth != 8 {
		t.Errorf("period-8 sampling recorded %d in-flight gauges over 64 cycles, want 8", eighth)
	}
}
