package netsim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"metro/internal/core"
	"metro/internal/nic"
	"metro/internal/topo"
)

// runCongested drives a network far past saturation with a fixed
// injection schedule and returns every completed-message report in
// observation order, after auditing every router lane's invariants on
// every cycle. The returned slice is the differential-test currency:
// per-message latencies (Injected/Done), retry counts, delivery flags
// and their exact order, all in one comparable value.
func runCongested(t *testing.T, p Params, injectSeed int64, perCycle, cycles int) []nic.Result {
	t.Helper()
	n, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	rng := rand.New(rand.NewSource(injectSeed))
	eps := p.Spec.Endpoints
	for cycle := 0; cycle < cycles; cycle++ {
		for k := 0; k < perCycle; k++ {
			src := rng.Intn(eps)
			dest := rng.Intn(eps)
			if dest == src {
				dest = (dest + 1) % eps
			}
			n.Send(src, dest, []byte{byte(cycle), byte(src), byte(dest)})
		}
		n.Engine.Step()
		for s := range n.Routers {
			for j := range n.Routers[s] {
				if g := n.Cascades[s][j]; g != nil {
					for k := 0; k < g.Width(); k++ {
						if err := g.Member(k).CheckInvariants(); err != nil {
							t.Fatalf("workers=%d cycle %d lane %d: %v", p.Workers, cycle, k, err)
						}
					}
				} else if err := n.Routers[s][j].CheckInvariants(); err != nil {
					t.Fatalf("workers=%d cycle %d: %v", p.Workers, cycle, err)
				}
			}
		}
	}
	return n.Results()
}

// TestParallelDifferentialCongestedFigure3 is the tentpole's equivalence
// gate: the congested Figure 3 multibutterfly run by the serial
// reference engine and by the parallel engine at 2, 4 and 8 workers
// must produce bit-for-bit identical completed-message streams — same
// per-message latencies, same retry counts, same order — under the same
// seeds.
func TestParallelDifferentialCongestedFigure3(t *testing.T) {
	cycles := 1500
	if testing.Short() {
		cycles = 600
	}
	params := func(workers int) Params {
		return Params{
			Spec: topo.Figure3(), Width: 8, DataPipe: 2, LinkDelay: 1,
			FastReclaim: false, Seed: 71, RetryLimit: 600, ListenTimeout: 200,
			Workers: workers,
		}
	}
	want := runCongested(t, params(0), 17, 2, cycles)
	if len(want) == 0 {
		t.Fatal("congested run completed no messages; the differential compares nothing")
	}
	for _, workers := range []int{2, 4, 8} {
		got := runCongested(t, params(workers), 17, 2, cycles)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: %d results diverge from the serial engine's %d (first divergence: %s)",
				workers, len(got), len(want), firstDivergence(got, want))
		}
	}
}

// TestParallelDifferentialCascade is the shard co-location gate
// (cascade-width-2): every member router shares a random stream with
// its group, so a mis-sharded cascade would either race (caught by
// -race) or drift (caught here). Runs with 1, 2 and 8 workers must
// match the serial engine bit for bit and never trip CheckInvariants.
func TestParallelDifferentialCascade(t *testing.T) {
	cycles := 1200
	if testing.Short() {
		cycles = 500
	}
	params := func(workers int) Params {
		return Params{
			Spec: topo.Figure1(), Width: 4, CascadeWidth: 2, DataPipe: 2,
			LinkDelay: 1, FastReclaim: false, Seed: 29, RetryLimit: 400,
			ListenTimeout: 150, Workers: workers,
		}
	}
	want := runCongested(t, params(0), 23, 1, cycles)
	if len(want) == 0 {
		t.Fatal("cascade run completed no messages; the differential compares nothing")
	}
	for _, workers := range []int{1, 2, 8} {
		got := runCongested(t, params(workers), 23, 1, cycles)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: %d results diverge from the serial engine's %d (first divergence: %s)",
				workers, len(got), len(want), firstDivergence(got, want))
		}
	}
}

// firstDivergence renders the first position where two result streams
// disagree, for readable failure messages.
func firstDivergence(got, want []nic.Result) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if !reflect.DeepEqual(got[i], want[i]) {
			return fmt.Sprintf("index %d: got {id %d done %d retries %d}, want {id %d done %d retries %d}",
				i, got[i].Msg.ID, got[i].Done, got[i].Retries,
				want[i].Msg.ID, want[i].Done, want[i].Retries)
		}
	}
	return fmt.Sprintf("lengths differ: got %d, want %d", len(got), len(want))
}

// TestTracerRequiresSerialEngine pins the Build-time guard: router
// tracing has no deterministic order under parallel evaluation, so the
// combination is rejected up front.
func TestTracerRequiresSerialEngine(t *testing.T) {
	_, err := Build(Params{Spec: topo.Figure1(), Workers: 2, Tracer: core.NopTracer{}})
	if err == nil {
		t.Fatal("Build should reject Tracer with Workers > 0")
	}
	if _, err := Build(Params{Spec: topo.Figure1(), Workers: 0, Tracer: core.NopTracer{}}); err != nil {
		t.Fatalf("Tracer with the serial engine should build: %v", err)
	}
}
