package core_test

import (
	"testing"

	"metro/internal/word"
)

// TestMultipleReversals exercises the paper's guarantee that a connection
// may be reversed any number of times: the source and destination exchange
// two request/reply rounds over one connection (four reversals) before the
// source closes it. At every reversal the router injects a STATUS +
// CHECKSUM pair toward the new receiver.
func TestMultipleReversals(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 31)

	// Scripted endpoints: nil entries mean "hold with DATA-IDLE".
	turn := word.Word{Kind: word.Turn}
	srcScript := map[int]word.Word{
		0: word.MakeRoute(1, 2),
		1: word.MakeData(0x1, 4),
		2: turn, // reversal 1: listen for reply A
		// reply A takes ~6 cycles to come back; then round 2:
		14: word.MakeData(0x2, 4),
		15: turn, // reversal 3: listen for reply B
		30: {Kind: word.Drop},
	}
	var srcGot, dstGot []word.Word
	replied := 0
	var pendingReply []word.Word

	for i := 0; i < 44; i++ {
		// Source side.
		if w, ok := srcScript[i]; ok {
			h.src[0].Send(w)
		} else {
			h.src[0].Send(word.Word{Kind: word.DataIdle})
		}
		if w := h.src[0].Recv(); !w.IsEmpty() && w.Kind != word.DataIdle {
			srcGot = append(srcGot, w)
		}
		// Destination side: on each TURN, reply with one data word and
		// hand the channel back.
		dw := h.dst[1].Recv()
		if !dw.IsEmpty() && dw.Kind != word.DataIdle {
			dstGot = append(dstGot, dw)
		}
		if dw.Kind == word.Turn {
			replied++
			pendingReply = []word.Word{word.MakeData(uint32(0xA+replied), 4), turn}
		}
		if len(pendingReply) > 0 {
			h.dst[1].Send(pendingReply[0])
			pendingReply = pendingReply[1:]
		} else {
			h.dst[1].Send(word.Word{Kind: word.DataIdle})
		}
		h.run()
	}

	// The destination must have seen: data 1, TURN, (status+cksum toward
	// it), data 2, TURN, (status+cksum), DROP.
	var dstData []uint32
	turns, drops := 0, 0
	for _, w := range dstGot {
		switch w.Kind {
		case word.Data:
			dstData = append(dstData, w.Payload)
		case word.Turn:
			turns++
		case word.Drop:
			drops++
		}
	}
	if len(dstData) != 2 || dstData[0] != 0x1 || dstData[1] != 0x2 {
		t.Fatalf("destination data = %#v, want [1 2]; full stream %v", dstData, dstGot)
	}
	if turns != 2 {
		t.Fatalf("destination saw %d TURNs, want 2", turns)
	}
	if drops != 1 {
		t.Fatalf("destination saw %d DROPs, want 1", drops)
	}

	// The source must have received both replies (0xB then 0xC) with a
	// status+checksum pair before each.
	var srcData []uint32
	statuses := 0
	for _, w := range srcGot {
		switch w.Kind {
		case word.Data:
			srcData = append(srcData, w.Payload)
		case word.Status:
			statuses++
		}
	}
	if len(srcData) != 2 || srcData[0] != 0xB || srcData[1] != 0xC {
		t.Fatalf("source replies = %#v, want [0xB 0xC]; full stream %v", srcData, srcGot)
	}
	if statuses != 2 {
		t.Fatalf("source saw %d router status words, want one per reversal toward it (2)", statuses)
	}
	// Connection fully closed.
	if h.r.ConnectionCount() != 0 {
		t.Fatalf("connection not closed after multi-turn exchange")
	}
}

// TestReversalStatusEveryTime verifies a status/checksum pair is injected
// at every reversal, in both directions, across three rounds.
func TestReversalStatusEveryTime(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 33)

	turn := word.Word{Kind: word.Turn}
	srcTurns := map[int]bool{2: true, 16: true, 30: true}
	statusToSrc, statusToDst := 0, 0
	var pendingReply []word.Word

	for i := 0; i < 44; i++ {
		switch {
		case i == 0:
			h.src[0].Send(word.MakeRoute(0, 2))
		case i == 1:
			h.src[0].Send(word.MakeData(9, 4))
		case srcTurns[i]:
			h.src[0].Send(turn)
		case i == 42:
			h.src[0].Send(word.Word{Kind: word.Drop})
		default:
			h.src[0].Send(word.Word{Kind: word.DataIdle})
		}
		if w := h.src[0].Recv(); w.Kind == word.Status {
			statusToSrc++
		}
		dw := h.dst[0].Recv()
		if dw.Kind == word.Status {
			statusToDst++
		}
		if dw.Kind == word.Turn {
			pendingReply = []word.Word{word.MakeData(5, 4), turn}
		}
		if len(pendingReply) > 0 {
			h.dst[0].Send(pendingReply[0])
			pendingReply = pendingReply[1:]
		} else {
			h.dst[0].Send(word.Word{Kind: word.DataIdle})
		}
		h.run()
	}
	// Three forward->reverse reversals inject status toward the source;
	// the turn-backs inject toward the destination.
	if statusToSrc != 3 {
		t.Fatalf("statuses toward source = %d, want 3", statusToSrc)
	}
	if statusToDst < 2 {
		t.Fatalf("statuses toward destination = %d, want >= 2", statusToDst)
	}
}
