package main_test

import (
	"testing"

	"metro/internal/clitest"
)

// TestGoldenDegradation pins a short router-kill degradation sweep:
// the graceful-degradation table is the experiment backing the paper's
// fault-tolerance claim, so its numbers must stay reproducible.
func TestGoldenDegradation(t *testing.T) {
	clitest.Golden(t, "degradation", "metrofault",
		"-counts", "0,1", "-measure", "1500", "-window", "500", "-warmup", "300")
}
