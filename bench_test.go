// Benchmark harness regenerating every table and figure of the paper's
// evaluation. Each benchmark times the underlying computation and, on its
// first run, prints the regenerated rows or series next to the paper's
// values. Run with:
//
//	go test -bench=. -benchmem
//
// See EXPERIMENTS.md for the recorded paper-versus-measured comparison.
package metro_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"metro"
	"metro/internal/stats"
)

var printOnce sync.Map

func once(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

// BenchmarkTable3Implementations regenerates the paper's Table 3: the
// t20,32 figure of merit for all sixteen METRO implementation points. The
// model reproduces every printed value exactly.
func BenchmarkTable3Implementations(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, im := range metro.Table3() {
			sink += im.T2032()
		}
	}
	_ = sink
	once("table3", func() {
		t := stats.Table{Header: []string{"instance", "technology", "t_stg", "stages", "model", "paper", "match"}}
		paper := metro.PaperT2032()
		for i, im := range metro.Table3() {
			match := "EXACT"
			if math.Abs(im.T2032()-paper[i]) > 1e-9 {
				match = "DIFFERS"
			}
			t.Add(im.Name, im.Tech,
				fmt.Sprintf("%g", im.TStg()),
				fmt.Sprintf("%d", im.Stages()),
				fmt.Sprintf("%.0f ns", im.T2032()),
				fmt.Sprintf("%.0f ns", paper[i]),
				match)
		}
		fmt.Printf("\n=== Table 3: METRO implementation examples (t20,32) ===\n%s\n", t.String())
	})
}

// BenchmarkTable4Equations exercises each relation of the latency model
// and prints the component values for every Table 3 row.
func BenchmarkTable4Equations(b *testing.B) {
	var sink float64
	rows := metro.Table3()
	for i := 0; i < b.N; i++ {
		for _, im := range rows {
			sink += float64(im.VTD()) + im.TOnChip() + im.TStg() + float64(im.HBits()) + im.TBit()
		}
	}
	_ = sink
	once("table4", func() {
		t := stats.Table{Header: []string{"instance", "vtd", "t_on_chip", "t_stg", "hbits", "t_bit/b"}}
		for _, im := range rows {
			t.Add(im.Name,
				fmt.Sprintf("%d", im.VTD()),
				fmt.Sprintf("%g ns", im.TOnChip()),
				fmt.Sprintf("%g ns", im.TStg()),
				fmt.Sprintf("%d", im.HBits()),
				fmt.Sprintf("%.3f ns", im.TBit()))
		}
		fmt.Printf("\n=== Table 4: latency model components ===\n%s\n", t.String())
	})
}

// BenchmarkTable5Baselines regenerates the contemporary-technology
// comparison.
func BenchmarkTable5Baselines(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, base := range metro.Table5() {
			sink += base.Min() + base.Max()
		}
	}
	_ = sink
	once("table5", func() {
		t := stats.Table{Header: []string{"router", "model t20,32", "paper t20,32"}}
		for _, base := range metro.Table5() {
			model := fmt.Sprintf("%.0f", base.Min())
			paper := fmt.Sprintf("%.0f", base.PaperMin)
			if base.PaperMax != base.PaperMin {
				model = fmt.Sprintf("%.0f -> %.0f", base.Min(), base.Max())
				paper = fmt.Sprintf("%.0f -> %.0f", base.PaperMin, base.PaperMax)
			}
			t.Add(base.Name, model+" ns", paper+" ns")
		}
		orbit := metro.Table3()[0]
		fmt.Printf("\n=== Table 5: contemporary routing technologies ===\n%s"+
			"METROJR-ORBIT for comparison: %.0f ns\n\n", t.String(), orbit.T2032())
	})
}

// BenchmarkFigure1Topology builds the paper's Figure 1 network and
// verifies its multipath structure: 8 distinct paths between every
// endpoint pair and tolerance of any single router loss.
func BenchmarkFigure1Topology(b *testing.B) {
	var sink int
	for i := 0; i < b.N; i++ {
		top, err := metro.BuildTopology(metro.Figure1Topology())
		if err != nil {
			b.Fatal(err)
		}
		sink += top.PathCount(6, 15)
	}
	_ = sink
	once("fig1", func() {
		top, _ := metro.BuildTopology(metro.Figure1Topology())
		minPaths, maxPaths := 1<<30, 0
		for src := 0; src < 16; src++ {
			for dest := 0; dest < 16; dest++ {
				n := top.PathCount(src, dest)
				if n < minPaths {
					minPaths = n
				}
				if n > maxPaths {
					maxPaths = n
				}
			}
		}
		fmt.Printf("\n=== Figure 1: 16x16 multipath network ===\n")
		fmt.Printf("routers per stage %v (total %d), links %d\n",
			top.RoutersPerStage, top.RouterCount(), top.LinkCount())
		fmt.Printf("paths per endpoint pair: %d (uniform: min=max=%d)\n", maxPaths, minPaths)
		fmt.Printf("single final-stage router loss isolates no endpoint (verified in topo tests)\n\n")
	})
}

// BenchmarkFigure3LoadLatency reproduces the paper's Figure 3: effective
// latency versus network loading for randomly distributed 20-byte
// messages on the 3-stage radix-4 network under the processor-stall
// model. The paper's unloaded latency is 28 cycles; the shape — flat at
// low load, rising smoothly as blocked connections retry — is the
// reproduction target.
func BenchmarkFigure3LoadLatency(b *testing.B) {
	loads := []float64{0.05, 0.2, 0.4, 0.6, 0.8}
	spec := metro.RunSpec{
		Net: metro.NetworkParams{
			Spec:        metro.Figure3Topology(),
			Width:       8,
			DataPipe:    1,
			LinkDelay:   1,
			FastReclaim: true,
			Seed:        17,
			RetryLimit:  1000,
		},
		MsgBytes:      20,
		Pattern:       metro.UniformTraffic{},
		Outstanding:   1,
		WarmupCycles:  1500,
		MeasureCycles: 5000,
		Seed:          3,
	}
	var points []metro.LoadPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		points, err = metro.LoadSweep(spec, loads)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	once("fig3", func() {
		t := stats.Table{Header: []string{"offered", "accepted", "mean lat", "p50", "p95", "retries/msg"}}
		for _, p := range points {
			t.Add(
				fmt.Sprintf("%.2f", p.OfferedLoad),
				fmt.Sprintf("%.2f", p.AcceptedLoad),
				fmt.Sprintf("%.1f", p.Latency.Mean),
				fmt.Sprintf("%.0f", p.Latency.P50),
				fmt.Sprintf("%.0f", p.Latency.P95),
				fmt.Sprintf("%.2f", p.RetriesPerMessage))
		}
		fmt.Printf("\n=== Figure 3: latency vs network loading (20-byte uniform traffic) ===\n%s"+
			"unloaded latency %.1f cycles (paper: 28); monotone rise with load\n\n",
			t.String(), points[0].Latency.Mean)
	})
}

// BenchmarkFaultDegradation extends Section 6.2: latency and delivery
// under increasing numbers of dynamic router losses, demonstrating the
// robust degradation the paper cites from the companion studies.
func BenchmarkFaultDegradation(b *testing.B) {
	counts := []int{0, 2, 4, 8}
	type row struct {
		faults int
		p      metro.LoadPoint
		failed int
	}
	var rows []row
	run := func() {
		rows = rows[:0]
		for _, count := range counts {
			p, failed := faultRun(b, count)
			rows = append(rows, row{count, p, failed})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	once("faults", func() {
		t := stats.Table{Header: []string{"router kills", "delivered", "failed", "mean lat", "p95", "retries/msg"}}
		for _, r := range rows {
			t.Add(
				fmt.Sprintf("%d", r.faults),
				fmt.Sprintf("%d", r.p.Delivered),
				fmt.Sprintf("%d", r.failed),
				fmt.Sprintf("%.1f", r.p.Latency.Mean),
				fmt.Sprintf("%.0f", r.p.Latency.P95),
				fmt.Sprintf("%.2f", r.p.RetriesPerMessage))
		}
		fmt.Printf("\n=== Fault degradation (Section 6.2): dynamic router losses under load 0.3 ===\n%s\n", t.String())
	})
}

func faultRun(b *testing.B, kills int) (metro.LoadPoint, int) {
	b.Helper()
	p, failed, err := runFaultedSweepPoint(kills)
	if err != nil {
		b.Fatal(err)
	}
	return p, failed
}

// BenchmarkSelectionPolicyAblation quantifies what stochastic path
// selection buys: with a stuck bit corrupting one router's outputs,
// random selection lets retries find clean paths, while deterministic
// first-free selection re-takes the corrupted path again and again.
func BenchmarkSelectionPolicyAblation(b *testing.B) {
	type outcome struct {
		policy            string
		delivered, failed int
		retries           int
	}
	var outcomes []outcome
	run := func() {
		outcomes = outcomes[:0]
		for _, firstFree := range []bool{false, true} {
			n, err := metro.BuildNetwork(metro.NetworkParams{
				Spec:               metro.Figure1Topology(),
				Width:              8,
				DataPipe:           1,
				LinkDelay:          1,
				FastReclaim:        true,
				FirstFreeSelection: firstFree,
				Seed:               23,
				RetryLimit:         40,
				ListenTimeout:      200,
			})
			if err != nil {
				b.Fatal(err)
			}
			// Bit 0 of every output of stage-1 router 0 is stuck high.
			var plan metro.FaultPlan
			for port := 0; port < 4; port++ {
				plan = append(plan, metro.FaultEvent{
					Kind: metro.FaultLinkStuckBit, Stage: 1, Index: 0, Port: port, Bit: 0,
				})
			}
			metro.InjectFaults(n, plan)
			o := outcome{policy: "random (METRO)"}
			if firstFree {
				o.policy = "first-free"
			}
			// One message at a time: without interfering traffic, the
			// deterministic policy re-takes the identical path on every
			// retry, so a message whose path crosses the corrupted
			// router can never deliver.
			for src := 0; src < 16; src++ {
				for d := 1; d <= 3; d++ {
					res, ok := metro.SendOne(n, src, (src+d*4)%16,
						[]byte{0x00, 0x02, 0x04, 0x06}, 50000)
					if !ok {
						b.Fatal("no result")
					}
					if res.Delivered {
						o.delivered++
					} else {
						o.failed++
					}
					o.retries += res.Retries
				}
			}
			outcomes = append(outcomes, o)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	once("selection", func() {
		t := stats.Table{Header: []string{"selection", "delivered", "failed", "total retries"}}
		for _, o := range outcomes {
			t.Add(o.policy,
				fmt.Sprintf("%d", o.delivered),
				fmt.Sprintf("%d", o.failed),
				fmt.Sprintf("%d", o.retries))
		}
		fmt.Printf("\n=== Ablation: stochastic vs deterministic output selection"+
			" (stuck bit on one router's outputs) ===\n%s\n", t.String())
	})
}

// BenchmarkReclamationAblation compares fast path reclamation (BCB) with
// detailed blocked replies under load: fast reclamation frees blocked
// resources immediately and sustains lower latency (Section 5.1).
func BenchmarkReclamationAblation(b *testing.B) {
	type outcome struct {
		mode string
		p    metro.LoadPoint
	}
	var outcomes []outcome
	run := func() {
		outcomes = outcomes[:0]
		for _, fast := range []bool{true, false} {
			spec := metro.RunSpec{
				Net: metro.NetworkParams{
					Spec:        metro.Figure3Topology(),
					Width:       8,
					DataPipe:    1,
					LinkDelay:   1,
					FastReclaim: fast,
					Seed:        29,
					RetryLimit:  1000,
				},
				Load:          0.6,
				MsgBytes:      20,
				Pattern:       metro.UniformTraffic{},
				Outstanding:   1,
				WarmupCycles:  1500,
				MeasureCycles: 5000,
				Seed:          7,
			}
			p, err := metro.RunClosedLoop(spec)
			if err != nil {
				b.Fatal(err)
			}
			name := "fast reclamation (BCB)"
			if !fast {
				name = "detailed reply"
			}
			outcomes = append(outcomes, outcome{name, p})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	once("reclaim", func() {
		t := stats.Table{Header: []string{"blocked handling", "mean lat", "p95", "retries/msg", "accepted"}}
		for _, o := range outcomes {
			t.Add(o.mode,
				fmt.Sprintf("%.1f", o.p.Latency.Mean),
				fmt.Sprintf("%.0f", o.p.Latency.P95),
				fmt.Sprintf("%.2f", o.p.RetriesPerMessage),
				fmt.Sprintf("%.2f", o.p.AcceptedLoad))
		}
		fmt.Printf("\n=== Ablation: fast path reclamation vs detailed blocked replies (load 0.6) ===\n%s\n", t.String())
	})
}
