// Package telemetry is the deterministic, cycle-stamped event bus of the
// simulator: routers, endpoints, the fault injector and netsim's gauge
// sampler emit fixed-size events into per-shard buffers, and a central
// flight recorder merges them in a deterministic order at the cycle
// barrier. The same buffered path runs under the serial and the
// partitioned parallel engine, so recorded traces are byte-identical
// across worker counts (the differential tests in internal/netsim prove
// it). Exporters turn a recorded trace into Perfetto/Chrome trace-event
// JSON, CSV, and aggregate latency summaries comparable to the paper's
// Table 5.
package telemetry

import "fmt"

// Kind enumerates the event alphabet. Events fall into four families:
// message lifecycle (EvMsg*, sourced by endpoints), connection lifecycle
// (EvConn*, sourced by routers), fault injection (EvFault), and periodic
// gauges (EvGauge*, sourced by netsim's sampler). The A/B payloads are
// kind-specific and documented per constant.
type Kind uint8

const (
	// EvNone is the zero event; it never appears in a recorded trace.
	EvNone Kind = iota

	// EvMsgQueued: a message entered its source endpoint's send queue.
	// Src = endpoint, Msg = id, A = destination endpoint.
	EvMsgQueued
	// EvMsgAttempt: a transmission attempt began. A = attempt (1-based).
	EvMsgAttempt
	// EvMsgTurnSent: header, payload, checksum and TURN are fully
	// transmitted; the source is listening for the reply. A = attempt.
	EvMsgTurnSent
	// EvMsgBlockedFast: the attempt died to backward-channel-busy (fast
	// path reclamation).
	EvMsgBlockedFast
	// EvMsgBlockedDetailed: a detailed blocked reply ended the attempt.
	// A = blocking stage, -1 when unknown.
	EvMsgBlockedDetailed
	// EvMsgChecksumFail: reply verification failed (corrupt reply, NACK,
	// or end-to-end checksum mismatch).
	EvMsgChecksumFail
	// EvMsgTimeout: the per-attempt reply watchdog expired.
	EvMsgTimeout
	// EvMsgRetried: the message went back on the send queue. A = retries
	// so far.
	EvMsgRetried
	// EvMsgDelivered: final disposition — delivered and verified.
	// A = total retries, B = destination endpoint.
	EvMsgDelivered
	// EvMsgFailed: final disposition — retry budget exhausted.
	// A = total retries, B = destination endpoint.
	EvMsgFailed
	// EvMsgArrived: destination side — a TURN arrived and was verified.
	// Src = destination endpoint, Msg = 0 (receivers see no IDs),
	// A = 1 intact / 0 corrupt.
	EvMsgArrived

	// EvConnSetup: a router switched forward port A to backward port B.
	// Src = router.
	EvConnSetup
	// EvConnBlockedFast: a connection request on forward port A found no
	// backward port in direction B; fast path reclamation (BCB) handles
	// it.
	EvConnBlockedFast
	// EvConnBlockedDetailed: as EvConnBlockedFast, but a detailed blocked
	// reply handles it.
	EvConnBlockedDetailed
	// EvConnTurned: a connection reversal completed at this router on
	// forward port A. B = 1 when data now flows toward the source.
	EvConnTurned
	// EvConnReleased: forward port A's connection closed, freeing
	// backward port B (-1 when the connection was blocked).
	EvConnReleased

	// EvFault: the fault injector fired. Src locates the victim (router,
	// or endpoint for injection-link faults), A = fault kind code,
	// B = port/link index (-1 when not applicable).
	EvFault

	// EvGaugeConns: per-stage open-connection count. Src = stage
	// (SrcNetwork), A = count.
	EvGaugeConns
	// EvGaugeBusyPorts: per-stage busy backward-port count (lane 0).
	// Src = stage (SrcNetwork), A = count.
	EvGaugeBusyPorts
	// EvGaugeQueueDepth: endpoint send-queue depth across the network.
	// A = total queued messages, B = deepest single queue.
	EvGaugeQueueDepth
	// EvGaugeInFlight: endpoints with a message mid-flight. A = count.
	EvGaugeInFlight
)

var kindNames = [...]string{
	EvNone:                "NONE",
	EvMsgQueued:           "MSG-QUEUED",
	EvMsgAttempt:          "MSG-ATTEMPT",
	EvMsgTurnSent:         "MSG-TURN-SENT",
	EvMsgBlockedFast:      "MSG-BLOCKED-FAST",
	EvMsgBlockedDetailed:  "MSG-BLOCKED-DETAILED",
	EvMsgChecksumFail:     "MSG-CHECKSUM-FAIL",
	EvMsgTimeout:          "MSG-TIMEOUT",
	EvMsgRetried:          "MSG-RETRIED",
	EvMsgDelivered:        "MSG-DELIVERED",
	EvMsgFailed:           "MSG-FAILED",
	EvMsgArrived:          "MSG-ARRIVED",
	EvConnSetup:           "CONN-SETUP",
	EvConnBlockedFast:     "CONN-BLOCKED-FAST",
	EvConnBlockedDetailed: "CONN-BLOCKED-DETAILED",
	EvConnTurned:          "CONN-TURNED",
	EvConnReleased:        "CONN-RELEASED",
	EvFault:               "FAULT",
	EvGaugeConns:          "GAUGE-CONNS",
	EvGaugeBusyPorts:      "GAUGE-BUSY-PORTS",
	EvGaugeQueueDepth:     "GAUGE-QUEUE-DEPTH",
	EvGaugeInFlight:       "GAUGE-IN-FLIGHT",
}

// String returns the kind mnemonic used by the text codec and metrotrace.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Family groups kinds into the four event families: "msg", "conn",
// "fault", "gauge". metrotrace's filter and the Perfetto category
// labels both select on it.
func (k Kind) Family() string {
	switch {
	case k >= EvMsgQueued && k <= EvMsgArrived:
		return "msg"
	case k >= EvConnSetup && k <= EvConnReleased:
		return "conn"
	case k == EvFault:
		return "fault"
	case k >= EvGaugeConns && k <= EvGaugeInFlight:
		return "gauge"
	}
	return "none"
}

// KindByName resolves a codec mnemonic ("MSG-QUEUED") to its Kind.
func KindByName(name string) (Kind, bool) {
	k, ok := kindByName[name]
	if k == EvNone {
		return EvNone, false
	}
	return k, ok
}

// kindByName inverts the mnemonic table for the text codec.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, name := range kindNames {
		m[name] = Kind(k)
	}
	return m
}()

// SourceKind classifies what emitted an event.
type SourceKind uint8

const (
	// SrcNetwork: network-scope emitters — the gauge sampler (Stage set
	// for per-stage gauges, -1 otherwise).
	SrcNetwork SourceKind = iota
	// SrcRouter: a router, located by Stage/Index/Lane.
	SrcRouter
	// SrcEndpoint: an endpoint, located by Index.
	SrcEndpoint
)

var sourceKindNames = [...]string{
	SrcNetwork:  "net",
	SrcRouter:   "router",
	SrcEndpoint: "ep",
}

// String returns the source-kind mnemonic.
func (k SourceKind) String() string {
	if int(k) < len(sourceKindNames) {
		return sourceKindNames[k]
	}
	return fmt.Sprintf("SourceKind(%d)", uint8(k))
}

// Source locates an event's emitter. It is a fixed-size value type so
// events stay pointer-free (the flight recorder ring imposes no GC
// load).
type Source struct {
	Kind  SourceKind
	Lane  uint8
	Stage int16
	Index int32
}

// RouterSource locates a router by its structured identity.
//
//metrovet:truncate stage and lane counts are single digits and router indices stay far below 2^31 for any buildable topology
func RouterSource(stage, index, lane int) Source {
	return Source{Kind: SrcRouter, Stage: int16(stage), Index: int32(index), Lane: uint8(lane)}
}

// EndpointSource locates an endpoint.
//
//metrovet:truncate endpoint counts stay far below 2^31 for any buildable topology
func EndpointSource(ep int) Source {
	return Source{Kind: SrcEndpoint, Stage: -1, Index: int32(ep)}
}

// NetworkSource locates a network-scope emitter; stage is -1 for
// whole-network gauges.
//
//metrovet:truncate stage counts are single digits (-1 means whole-network)
func NetworkSource(stage int) Source {
	return Source{Kind: SrcNetwork, Stage: int16(stage), Index: -1}
}

// String renders the source the way netsim names components
// ("s2r5.m1", "ep3", "net", "net.s0").
func (s Source) String() string {
	switch s.Kind {
	case SrcRouter:
		if s.Lane > 0 {
			return fmt.Sprintf("s%dr%d.m%d", s.Stage, s.Index, s.Lane)
		}
		return fmt.Sprintf("s%dr%d", s.Stage, s.Index)
	case SrcEndpoint:
		return fmt.Sprintf("ep%d", s.Index)
	case SrcNetwork:
		if s.Stage >= 0 {
			return fmt.Sprintf("net.s%d", s.Stage)
		}
		return "net"
	}
	return fmt.Sprintf("src(%d)", uint8(s.Kind))
}

// Event is one cycle-stamped telemetry record. It is a fixed-size,
// pointer-free value: the recorder ring holds Events by value and the
// steady-state recording path performs no heap allocation.
type Event struct {
	// Cycle is the simulation cycle the event was observed on.
	Cycle uint64
	// Msg is the message ID for EvMsg* events (0 when not applicable —
	// receivers see no IDs).
	Msg uint64
	// Src locates the emitter.
	Src Source
	// Kind selects the event; A and B carry the kind-specific payload.
	Kind Kind
	A, B int32
}

// String renders one event as the text codec line body.
func (e Event) String() string {
	return fmt.Sprintf("%d %s %s %d %d %d", e.Cycle, e.Kind, e.Src, e.Msg, e.A, e.B)
}
