package telemetry

// Buf is a shard-local event buffer. Every emitter group that may run on
// its own engine shard (a router column, an endpoint, the network-scope
// epilogue emitters) appends into its own Buf during Eval — no locks, no
// cross-shard traffic — and the Recorder drains every Buf in its fixed
// registration order at the cycle barrier. Because the drain order is a
// pure function of network construction (never of goroutine timing), the
// merged stream is identical under the serial and parallel engines.
//
// Emit may grow the buffer's backing array while the simulation warms
// up; once the high-water mark is reached the append stays within
// capacity and the recording path allocates nothing.
type Buf struct {
	events []Event
}

// Emit appends one event.
//
//metrovet:alloc amortized growth to the per-cycle high-water mark; steady state appends within capacity
func (b *Buf) Emit(e Event) {
	b.events = append(b.events, e)
}

// Len reports buffered events not yet drained.
func (b *Buf) Len() int { return len(b.events) }

// Options configures a Recorder.
type Options struct {
	// Capacity bounds the flight-recorder ring in events; when full, the
	// oldest events are overwritten. 0 selects DefaultCapacity.
	Capacity int
}

// DefaultCapacity is the flight-recorder ring size when Options.Capacity
// is 0: large enough to hold the full event stream of the repo's
// standard experiment runs, small enough to stay cheap (24 B/event).
const DefaultCapacity = 1 << 18

// Recorder is the flight recorder: a bounded ring of the most recent
// events, fed by per-shard Bufs. NewBuf registers buffers at network
// construction time; Flush (driven by a Flusher component in the
// engine's serialized epilogue) drains them in registration order.
//
// The ring and every Buf are preallocated or grow only to the workload's
// high-water mark, so steady-state recording is allocation-free — the
// zero-alloc gate in this package proves it.
type Recorder struct {
	ring  []Event
	head  int    // next write position
	count int    // live events in the ring
	total uint64 // events ever recorded, including overwritten ones
	bufs  []*Buf
	sink  func([]Event)
}

// New constructs a Recorder with a preallocated ring.
func New(opts Options) *Recorder {
	c := opts.Capacity
	if c <= 0 {
		c = DefaultCapacity
	}
	return &Recorder{ring: make([]Event, c)}
}

// NewBuf registers and returns a new shard-local buffer. Registration
// order defines the within-cycle merge order of the recorded stream, so
// callers must register in a deterministic order (netsim registers
// router columns stage-major, then endpoints, then the network buf).
//
//metrovet:mutator network construction wiring, before the clock starts
func (r *Recorder) NewBuf() *Buf {
	b := &Buf{events: make([]Event, 0, 64)}
	r.bufs = append(r.bufs, b)
	return b
}

// SetSink registers fn as the streaming sink: every Flush hands it each
// drained buffer's events (in the same deterministic registration-order
// merge the ring sees) before the buffer is reset. The slice is only
// valid for the duration of the call — the buffer backing it is reused
// next cycle — so a sink that retains events must copy them. The sink
// runs on the flushing goroutine (the serialized epilogue under the
// parallel engine), so it must be fast and must never block on the
// simulation's own output; metroserve's adapter copies into a bounded
// channel and drops on overflow. Set it before the clock starts and
// leave it in place: with no sink the recording path stays
// allocation-free exactly as before.
//
//metrovet:mutator recorder wiring, before the clock starts
func (r *Recorder) SetSink(fn func([]Event)) { r.sink = fn }

// Flush drains every registered Buf, in registration order, into the
// ring. A Flusher component calls it once per cycle at the barrier.
//
//metrovet:bounds head wraps to 0 the moment it reaches len(ring), so it always indexes inside the ring
func (r *Recorder) Flush() {
	for _, b := range r.bufs {
		if r.sink != nil && len(b.events) > 0 {
			r.sink(b.events)
		}
		for i := range b.events {
			r.ring[r.head] = b.events[i]
			r.head++
			if r.head == len(r.ring) {
				r.head = 0
			}
			if r.count < len(r.ring) {
				r.count++
			}
		}
		r.total += uint64(len(b.events))
		b.events = b.events[:0]
	}
}

// Len reports live events in the ring.
func (r *Recorder) Len() int { return r.count }

// Capacity reports the ring size.
func (r *Recorder) Capacity() int { return len(r.ring) }

// Total reports events ever recorded, including those the ring has since
// overwritten.
func (r *Recorder) Total() uint64 { return r.total }

// Dropped reports events lost to ring overwrite.
func (r *Recorder) Dropped() uint64 { return r.total - uint64(r.count) }

// Snapshot copies the live ring contents, oldest first, together with
// the lifetime totals. Pending (unflushed) Buf events are not included;
// snapshot between cycles or after a final Flush.
func (r *Recorder) Snapshot() Trace {
	out := make([]Event, r.count)
	start := r.head - r.count
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < r.count; i++ {
		out[i] = r.ring[(start+i)%len(r.ring)]
	}
	return Trace{Events: out, Total: r.total}
}

// Trace is a recorded event stream: the flight recorder's live window
// plus the lifetime event count (Total - len(Events) were overwritten).
type Trace struct {
	Events []Event
	Total  uint64
}

// Flusher adapts a Recorder to the simulation clock. Register it with
// plain Engine.Add after every sharded component (netsim does this
// during Build): under the parallel engine it then runs in the
// serialized epilogue, after the barrier, where every shard's Buf is
// quiescent.
type Flusher struct {
	R *Recorder
}

// Eval implements clock.Component.
func (f Flusher) Eval(cycle uint64) { f.R.Flush() }

// Commit implements clock.Component.
func (f Flusher) Commit(cycle uint64) {}
