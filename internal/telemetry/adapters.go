package telemetry

import (
	"metro/internal/core"
	"metro/internal/nic"
)

// RouterTracer returns a core.Tracer that records the connection
// lifecycle into buf. Attach one per shard-local Buf: netsim gives every
// router column (all cascade lanes, which are co-located by
// construction) one buffer.
func RouterTracer(buf *Buf) core.Tracer { return routerTracer{buf} }

type routerTracer struct{ b *Buf }

func (t routerTracer) src(id core.RouterID) Source {
	return RouterSource(id.Stage, id.Index, id.Lane)
}

// Allocated implements core.Tracer.
func (t routerTracer) Allocated(cycle uint64, id core.RouterID, fp, bp int) {
	t.b.Emit(Event{Cycle: cycle, Src: t.src(id), Kind: EvConnSetup, A: int32(fp), B: int32(bp)})
}

// Blocked implements core.Tracer.
func (t routerTracer) Blocked(cycle uint64, id core.RouterID, fp, dir int, fast bool) {
	kind := EvConnBlockedDetailed
	if fast {
		kind = EvConnBlockedFast
	}
	t.b.Emit(Event{Cycle: cycle, Src: t.src(id), Kind: kind, A: int32(fp), B: int32(dir)})
}

// Released implements core.Tracer.
func (t routerTracer) Released(cycle uint64, id core.RouterID, fp, bp int) {
	t.b.Emit(Event{Cycle: cycle, Src: t.src(id), Kind: EvConnReleased, A: int32(fp), B: int32(bp)})
}

// Reversed implements core.Tracer.
func (t routerTracer) Reversed(cycle uint64, id core.RouterID, fp int, towardSource bool) {
	to := int32(0)
	if towardSource {
		to = 1
	}
	t.b.Emit(Event{Cycle: cycle, Src: t.src(id), Kind: EvConnTurned, A: int32(fp), B: to})
}

// EndpointTracer returns a nic.Tracer that records the message lifecycle
// into buf. Attach one per endpoint (each endpoint is its own shard
// co-location group).
func EndpointTracer(buf *Buf) nic.Tracer { return endpointTracer{buf} }

type endpointTracer struct{ b *Buf }

// Message implements nic.Tracer.
func (t endpointTracer) Message(cycle uint64, ep int, kind nic.TraceKind, id uint64, a, b int) {
	var k Kind
	switch kind {
	case nic.TraceQueued:
		k = EvMsgQueued
	case nic.TraceAttempt:
		k = EvMsgAttempt
	case nic.TraceTurnSent:
		k = EvMsgTurnSent
	case nic.TraceBlockedFast:
		k = EvMsgBlockedFast
	case nic.TraceBlockedDetailed:
		k = EvMsgBlockedDetailed
	case nic.TraceChecksumFail:
		k = EvMsgChecksumFail
	case nic.TraceTimeout:
		k = EvMsgTimeout
	case nic.TraceRetried:
		k = EvMsgRetried
	case nic.TraceDelivered:
		k = EvMsgDelivered
	case nic.TraceFailed:
		k = EvMsgFailed
	case nic.TraceArrived:
		k = EvMsgArrived
	default:
		panic("telemetry: unknown nic.TraceKind")
	}
	t.b.Emit(Event{Cycle: cycle, Msg: id, Src: EndpointSource(ep), Kind: k, A: int32(a), B: int32(b)})
}
