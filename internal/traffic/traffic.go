// Package traffic generates workloads for METRO network simulations.
//
// The paper's Figure 3 measures latency versus network loading for
// randomly distributed, fixed-size message traffic under a
// parallelism-limited model: processors stall waiting for message
// completion. ClosedLoop models exactly that — each endpoint keeps at most
// a fixed number of messages outstanding and, after each completion, waits
// a geometrically distributed think time calibrated to the target offered
// load before issuing the next message.
package traffic

import (
	"math/rand"

	"metro/internal/netsim"
	"metro/internal/nic"
	"metro/internal/stats"
)

// Pattern selects message destinations.
type Pattern interface {
	// Dest returns the destination for a message from src in an n-endpoint
	// network. It must not return src.
	Dest(src, n int, rng *rand.Rand) int
	// Name identifies the pattern in reports.
	Name() string
}

// Uniform selects destinations uniformly at random (the paper's "randomly
// distributed" traffic).
type Uniform struct{}

// Dest implements Pattern.
func (Uniform) Dest(src, n int, rng *rand.Rand) int {
	d := rng.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// Name implements Pattern.
func (Uniform) Name() string { return "uniform" }

// Hotspot sends a fraction of traffic to a single hot endpoint and the
// rest uniformly.
type Hotspot struct {
	Target   int
	Fraction float64
}

// Dest implements Pattern.
func (h Hotspot) Dest(src, n int, rng *rand.Rand) int {
	if rng.Float64() < h.Fraction && h.Target != src {
		return h.Target
	}
	return Uniform{}.Dest(src, n, rng)
}

// Name implements Pattern.
func (h Hotspot) Name() string { return "hotspot" }

// BitReverse sends each source to the bit-reversal of its own index, a
// classically adversarial permutation for butterflies.
type BitReverse struct{}

// Dest implements Pattern.
//
//metrovet:width n is the endpoint count, a power of two far below 2^31, so bits stays below 31
//metrovet:truncate bits-1-i is nonnegative inside the i < bits loop
func (BitReverse) Dest(src, n int, rng *rand.Rand) int {
	bits := 0
	for 1<<uint(bits) < n {
		bits++
	}
	rev := 0
	for i := 0; i < bits; i++ {
		if src&(1<<uint(i)) != 0 {
			rev |= 1 << uint(bits-1-i)
		}
	}
	if rev == src {
		return (src + n/2) % n
	}
	return rev
}

// Name implements Pattern.
func (BitReverse) Name() string { return "bit-reverse" }

// Transpose sends src = (r, c) to (c, r) on a sqrt(n) grid.
type Transpose struct{}

// Dest implements Pattern.
func (Transpose) Dest(src, n int, rng *rand.Rand) int {
	side := 1
	for side*side < n {
		side++
	}
	r, c := src/side, src%side
	d := c*side + r
	if d == src || d >= n {
		return (src + 1) % n
	}
	return d
}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// ClosedLoop is the Figure-3 workload driver. Create it, reference its
// OnResult from the netsim.Params, Bind it to the built network, and add
// it to the engine via Drive.
type ClosedLoop struct {
	// Load is the target offered load: the fraction of each endpoint's
	// injection bandwidth occupied by message words when the network
	// imposes no waiting.
	Load float64
	// MsgBytes is the fixed message payload size (20 in Figure 3).
	MsgBytes int
	// Pattern picks destinations (Uniform for Figure 3).
	Pattern Pattern
	// Outstanding bounds in-flight messages per endpoint (1 models the
	// processor-stall case).
	Outstanding int
	// Seed drives think times and destinations.
	Seed int64

	// Warmup discards results completing before this cycle.
	Warmup uint64

	net       *netsim.Network
	rng       *rand.Rand
	thinkMean float64
	state     []epState
	measured  []nic.Result
	injected  int
}

type epState struct {
	outstanding int
	think       int
}

// Bind attaches the driver to a built network and registers it with the
// engine. The network's Params.OnResult must have been set to the driver's
// OnResult.
func (c *ClosedLoop) Bind(n *netsim.Network) {
	c.net = n
	c.rng = rand.New(rand.NewSource(c.Seed))
	if c.Outstanding <= 0 {
		c.Outstanding = 1
	}
	if c.Pattern == nil {
		c.Pattern = Uniform{}
	}
	msgWords := float64(n.MessageWords(c.MsgBytes))
	if c.Load >= 1 {
		c.thinkMean = 0
	} else if c.Load > 0 {
		c.thinkMean = msgWords * (1 - c.Load) / c.Load
	} else {
		c.thinkMean = 1e12
	}
	c.state = make([]epState, len(n.Endpoints))
	n.Engine.Add(c)
}

// OnResult is the completion callback to wire into netsim.Params.
func (c *ClosedLoop) OnResult(r nic.Result) {
	src := r.Msg.Src
	c.state[src].outstanding--
	c.state[src].think = c.sampleThink()
	if r.Done >= c.Warmup {
		c.measured = append(c.measured, r)
	}
}

// sampleThink draws a geometric think time with the calibrated mean.
func (c *ClosedLoop) sampleThink() int {
	if c.thinkMean <= 0 {
		return 0
	}
	p := 1 / (1 + c.thinkMean)
	// Geometric via inverse transform on a capped number of trials.
	t := 0
	for c.rng.Float64() >= p {
		t++
		if t > 1<<20 {
			break
		}
	}
	return t
}

// Eval implements clock.Component: issue new messages when endpoints are
// free and their think time has elapsed.
//
//metrovet:shared driver registers via Engine.Add, so it runs in the serialized epilogue after every endpoint has evaluated
//metrovet:truncate rng.Intn(256) yields [0,255], which fits a byte exactly
func (c *ClosedLoop) Eval(cycle uint64) {
	n := len(c.state)
	for e := 0; e < n; e++ {
		s := &c.state[e]
		if s.think > 0 {
			s.think--
			continue
		}
		if s.outstanding >= c.Outstanding {
			continue
		}
		dest := c.Pattern.Dest(e, n, c.rng)
		//metrovet:alloc per-injected-message payload; ownership transfers to the endpoint queue
		payload := make([]byte, c.MsgBytes)
		for i := range payload {
			payload[i] = byte(c.rng.Intn(256))
		}
		c.net.Send(e, dest, payload)
		s.outstanding++
		c.injected++
	}
}

// Commit implements clock.Component.
func (c *ClosedLoop) Commit(cycle uint64) {}

// Point summarizes the measured interval as a load-latency point.
func (c *ClosedLoop) Point() stats.LoadPoint {
	var lat, qlat stats.Sample
	delivered := 0
	retries := 0
	words := 0
	var firstDone, lastDone uint64
	for _, r := range c.measured {
		lat.Add(float64(r.Done - r.Injected))
		qlat.Add(float64(r.Done - r.Msg.Created))
		if r.Delivered {
			delivered++
		}
		retries += r.Retries
		words += len(r.Msg.Payload)
		if firstDone == 0 || r.Done < firstDone {
			firstDone = r.Done
		}
		if r.Done > lastDone {
			lastDone = r.Done
		}
	}
	p := stats.LoadPoint{
		OfferedLoad:  c.Load,
		Latency:      lat.Summarize(),
		QueueLatency: qlat.Summarize(),
		Messages:     len(c.measured),
		Delivered:    delivered,
	}
	if len(c.measured) > 0 {
		p.RetriesPerMessage = float64(retries) / float64(len(c.measured))
		if lastDone > firstDone {
			msgWords := float64(c.net.MessageWords(c.MsgBytes))
			perEndpoint := float64(len(c.measured)) / float64(len(c.state))
			p.AcceptedLoad = perEndpoint * msgWords / float64(lastDone-firstDone)
		}
	}
	return p
}

// Measured returns the raw results gathered after warmup.
func (c *ClosedLoop) Measured() []nic.Result { return c.measured }

// Injected returns the total number of messages issued.
func (c *ClosedLoop) Injected() int { return c.injected }
