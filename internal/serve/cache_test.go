package serve

import (
	"fmt"
	"strings"
	"testing"

	"metro/internal/metrofuzz"
)

func body(n int, fill byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return b
}

// TestCacheLRUEviction pins the eviction discipline: least-recently-used
// entries go first, a Get promotes, and the newest entry always lands
// even when it alone exceeds the budget.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(300)
	c.Put("a", body(100, 'a'))
	c.Put("b", body(100, 'b'))
	c.Put("c", body(100, 'c'))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted within budget")
	}
	// a is now MRU; d's arrival must evict b, the LRU.
	c.Put("d", body(100, 'd'))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived past the byte budget")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted, want only b gone", k)
		}
	}
	// An oversized entry still lands, alone.
	c.Put("huge", body(1000, 'h'))
	if _, ok := c.Get("huge"); !ok {
		t.Fatal("oversized entry rejected; Put must always land the newest entry")
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 1000 {
		t.Fatalf("after oversized Put: %+v, want 1 entry of 1000 bytes", st)
	}
	if st.Evictions == 0 {
		t.Fatal("eviction counter never advanced")
	}
}

// TestCacheReplace asserts re-putting a key replaces the body and keeps
// the byte accounting consistent.
func TestCacheReplace(t *testing.T) {
	c := NewCache(1000)
	c.Put("k", body(100, 'x'))
	c.Put("k", body(40, 'y'))
	got, ok := c.Get("k")
	if !ok || len(got) != 40 || got[0] != 'y' {
		t.Fatalf("replace failed: ok=%v len=%d", ok, len(got))
	}
	if st := c.Stats(); st.Bytes != 40 || st.Entries != 1 {
		t.Fatalf("accounting after replace: %+v", st)
	}
}

// TestKeyDeterminism is the cache-key regression test: the content
// address must be a pure function of the scenario, not of the spec
// line's field order, and must separate every dimension that changes
// the response body.
func TestKeyDeterminism(t *testing.T) {
	scn := metrofuzz.Generate(1)
	canonical := metrofuzz.EncodeSpec(scn)

	// Every rotation of the field list decodes to the same scenario and
	// therefore the same key.
	fields := strings.Split(canonical, ";")
	if fields[0] != "mf1" {
		t.Fatalf("canonical spec does not start with the magic: %q", canonical)
	}
	want := Key(canonical, EngineReference, false)
	for r := 1; r < len(fields)-1; r++ {
		perm := append([]string{"mf1"}, fields[1+r:]...)
		perm = append(perm, fields[1:1+r]...)
		line := strings.Join(perm, ";")
		got, err := metrofuzz.DecodeSpecStrict(line)
		if err != nil {
			t.Fatalf("rotation %d: %v\nline: %q", r, err, line)
		}
		if k := KeyOf(got, EngineReference, false); k != want {
			t.Fatalf("rotation %d changed the key:\n%s\n%s", r, canonical, metrofuzz.EncodeSpec(got))
		}
	}

	// Distinct option axes are distinct addresses.
	keys := map[string]string{
		"ref":          Key(canonical, EngineReference, false),
		"kernel":       Key(canonical, EngineKernel, false),
		"ref+trace":    Key(canonical, EngineReference, true),
		"kernel+trace": Key(canonical, EngineKernel, true),
	}
	seen := map[string]string{}
	for name, k := range keys {
		if prev, dup := seen[k]; dup {
			t.Fatalf("options %s and %s collide on %s", prev, name, k)
		}
		seen[k] = name
	}

	// Distinct scenarios are distinct addresses.
	other := metrofuzz.EncodeSpec(metrofuzz.Generate(2))
	if Key(other, EngineReference, false) == want {
		t.Fatal("distinct specs collide")
	}

	// The engine/trace separator cannot be confused with spec content:
	// keys embed NUL delimiters and specs cannot contain NUL (strict
	// decode rejects control bytes).
	if _, err := metrofuzz.DecodeSpecStrict(canonical + "\x00"); err == nil {
		t.Fatal("strict decode accepted a NUL byte; key delimiting depends on rejecting it")
	}
}

// FuzzCanonicalKey fuzzes the canonical-hashing invariant against the
// spec-codec corpus: any line the strict decoder accepts must produce
// the same cache key as its canonical re-encoding — field order, noise
// fields, and formatting must never split the cache.
func FuzzCanonicalKey(f *testing.F) {
	// The same seeds as metrofuzz's FuzzSpecCodec, so the corpora explore
	// the same grammar corners.
	f.Add(metrofuzz.EncodeSpec(metrofuzz.Generate(0)))
	f.Add(metrofuzz.EncodeSpec(metrofuzz.Generate(3)))
	f.Add("mf1;topo=16x2:2.2.4,2.2.4,4.1.4@99;w=8")
	f.Add("mf1;faults=rk@1:0.0|sb@2:0.1.0.3")
	f.Add("mf1;w=8;topo=fig1")
	f.Fuzz(func(t *testing.T, line string) {
		s, err := metrofuzz.DecodeSpecStrict(line)
		if err != nil {
			return // rejected lines have no key
		}
		canonical := metrofuzz.EncodeSpec(s)
		k1 := Key(canonical, EngineReference, false)
		k2 := KeyOf(s, EngineReference, false)
		if k1 != k2 {
			t.Fatalf("KeyOf disagrees with Key over the canonical encoding for %q", line)
		}
		// Round-tripping the canonical form must be a fixed point.
		again, err := metrofuzz.DecodeSpecStrict(canonical)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v (%q)", err, canonical)
		}
		if KeyOf(again, EngineReference, false) != k1 {
			t.Fatalf("key not stable across canonical round-trip for %q", line)
		}
	})
}

// TestKeyRevisionSeparation documents that the engine revision is part
// of the address: the same spec under a different revision string would
// miss rather than serve stale bytes. (The constant itself cannot be
// varied here, so the test hashes the construction directly.)
func TestKeyRevisionSeparation(t *testing.T) {
	spec := metrofuzz.EncodeSpec(metrofuzz.Generate(1))
	k := Key(spec, EngineReference, false)
	if len(k) != 64 {
		t.Fatalf("key %q is not a hex SHA-256", k)
	}
	if !strings.Contains(fmt.Sprintf("%q", EngineRevision), "metro-") {
		t.Fatalf("EngineRevision %q lost its naming convention", EngineRevision)
	}
}
