package scan

// Driver provides the host-side sequences a test controller clocks into a
// TAP: instruction loads, data-register reads and writes. All sequences
// leave the TAP in Run-Test/Idle.
type Driver struct {
	tap *TAP
}

// NewDriver wraps a TAP.
func NewDriver(t *TAP) *Driver { return &Driver{tap: t} }

// Reset forces Test-Logic-Reset (five TMS=1 clocks) and settles in
// Run-Test/Idle.
func (d *Driver) Reset() {
	for i := 0; i < 5; i++ {
		d.tap.Step(true, false)
	}
	d.tap.Step(false, false)
}

// LoadInstruction shifts an instruction into the IR.
func (d *Driver) LoadInstruction(ins Instruction) {
	// Run-Test/Idle -> Select-DR -> Select-IR -> Capture-IR -> Shift-IR.
	d.tap.Step(true, false)
	d.tap.Step(true, false)
	d.tap.Step(false, false)
	d.tap.Step(false, false)
	for i := 0; i < irLen; i++ {
		bit := uint8(ins)&(1<<uint(i)) != 0
		tms := i == irLen-1 // exit on the last bit
		d.tap.Step(tms, bit)
	}
	// Exit1-IR -> Update-IR -> Run-Test/Idle.
	d.tap.Step(true, false)
	d.tap.Step(false, false)
}

// ShiftData shifts n bits through the selected data register, writing the
// given bits and returning the bits captured from the register. in may be
// nil to shift zeros.
func (d *Driver) ShiftData(n int, in []bool) []bool {
	// Run-Test/Idle -> Select-DR -> Capture-DR -> Shift-DR.
	d.tap.Step(true, false)
	d.tap.Step(false, false)
	d.tap.Step(false, false)
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		bit := false
		if in != nil && i < len(in) {
			bit = in[i]
		}
		tms := i == n-1
		out[i] = d.tap.Step(tms, bit)
	}
	// Exit1-DR -> Update-DR -> Run-Test/Idle.
	d.tap.Step(true, false)
	d.tap.Step(false, false)
	return out
}

// ReadRegister loads an instruction and reads back its register contents.
// Because every DR scan passes Update-DR, a read inherently rewrites the
// register with whatever was shifted in; like a real test controller, the
// driver therefore performs a second scan writing the captured value back,
// leaving the register unchanged.
func (d *Driver) ReadRegister(ins Instruction, n int) []bool {
	d.LoadInstruction(ins)
	out := d.ShiftData(n, nil)
	d.ShiftData(n, out)
	return out
}

// WriteRegister loads an instruction and writes the register (the old
// contents are returned).
func (d *Driver) WriteRegister(ins Instruction, bits []bool) []bool {
	d.LoadInstruction(ins)
	return d.ShiftData(len(bits), bits)
}

// ReadIDCode returns the component's 32-bit identification code.
func (d *Driver) ReadIDCode() uint32 {
	bits := d.ReadRegister(IDCODE, 32)
	var v uint32
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

// BitsToUint packs LSB-first bits into an integer.
func BitsToUint(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b && i < 64 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// UintToBits unpacks an integer into n LSB-first bits.
func UintToBits(v uint64, n int) []bool {
	bits := make([]bool, n)
	for i := 0; i < n && i < 64; i++ {
		bits[i] = v&(1<<uint(i)) != 0
	}
	return bits
}
