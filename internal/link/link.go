// Package link models the point-to-point interconnect between METRO routing
// components and network endpoints.
//
// METRO pipelines data across the wires between routers: each link behaves
// as a configurable number of pipeline registers in each direction (the
// paper's Variable Turn Delay, Section 5.1 — "we can model the wire between
// two components as a number of pipeline registers"). A Link therefore
// carries, per clock cycle and per direction, one word.Word plus the
// out-of-band backward control bit (BCB) used for fast path reclamation.
//
// A Link has two ends, A and B. By convention the A end attaches to the
// upstream element (an endpoint's injection port or a router's backward
// port) and the B end to the downstream element (a router's forward port or
// an endpoint's delivery port). Forward traffic (source toward destination)
// flows A→B; reversed-connection traffic and the BCB flow B→A.
//
// Links implement clock.Component: ends stage values during Eval via Send /
// SendBCB, and the pipelines shift at Commit, so values become visible to
// the far end after the configured delay.
//
// Fault injection hooks (Corruptor functions and Kill) model broken or
// noisy wires for the fault-tolerance experiments.
package link

import (
	"fmt"

	"metro/internal/word"
)

// Corruptor transforms words as they exit a link, modeling a faulty wire.
// A nil Corruptor leaves the link healthy.
type Corruptor func(word.Word) word.Word

// slot is the content of one pipeline register: a word plus the BCB.
type slot struct {
	w   word.Word
	bcb bool
}

// pipe is one direction of a link: delay pipeline registers plus the input
// value staged during the current cycle.
type pipe struct {
	regs   []slot
	staged slot
}

func newPipe(delay int) pipe { return pipe{regs: make([]slot, delay)} }

// out reads the register at the far end of the pipeline.
//
//metrovet:bounds New panics on delay < 1, so regs is never empty
func (p *pipe) out() slot { return p.regs[len(p.regs)-1] }

// shift advances the pipeline by one cycle.
//
//metrovet:bounds New panics on delay < 1, so regs is never empty
func (p *pipe) shift() {
	copy(p.regs[1:], p.regs[:len(p.regs)-1])
	p.regs[0] = p.staged
	p.staged = slot{}
}

// Link is a bidirectional, pipelined chip-to-chip connection.
type Link struct {
	name      string
	ab        pipe // words and BCB traveling A→B
	ba        pipe // words and BCB traveling B→A
	corruptAB Corruptor
	corruptBA Corruptor
	dead      bool
}

// New returns a link whose wires contribute delay pipeline stages in each
// direction (the paper's vtd; delay must be >= 1).
func New(name string, delay int) *Link {
	if delay < 1 {
		panic(fmt.Sprintf("link %s: delay must be >= 1, got %d", name, delay))
	}
	return &Link{name: name, ab: newPipe(delay), ba: newPipe(delay)}
}

// Name returns the link's identifier (used in traces and fault plans).
func (l *Link) Name() string { return l.name }

// Delay returns the pipeline depth per direction.
func (l *Link) Delay() int { return len(l.ab.regs) }

// Eval implements clock.Component; links have no evaluation work.
func (l *Link) Eval(cycle uint64) {}

// Commit shifts both pipelines, latching the values staged during Eval.
func (l *Link) Commit(cycle uint64) {
	l.ab.shift()
	l.ba.shift()
}

// SetCorruptor installs fault hooks applied to words exiting the link in
// each direction. Either may be nil.
func (l *Link) SetCorruptor(ab, ba Corruptor) {
	l.corruptAB, l.corruptBA = ab, ba
}

// Kill marks the link dead: both directions deliver only Empty words and a
// deasserted BCB, as a severed wire would.
func (l *Link) Kill() { l.dead = true }

// Revive clears a previous Kill. In-flight contents were lost.
func (l *Link) Revive() { l.dead = false }

// Dead reports whether the link has been killed.
func (l *Link) Dead() bool { return l.dead }

// A returns the upstream end of the link.
func (l *Link) A() *End { return &End{l: l, atA: true} }

// B returns the downstream end of the link.
func (l *Link) B() *End { return &End{l: l, atA: false} }

// End is one side's interface to a link. All methods follow the two-phase
// clock discipline: Send/SendBCB stage values for the current cycle, while
// Recv/RecvBCB observe values committed at the end of the previous cycle.
type End struct {
	l   *Link
	atA bool
}

// Link returns the underlying link.
func (e *End) Link() *Link { return e.l }

// Send stages the word this end drives onto the link this cycle. If Send is
// not called during a cycle the end drives Empty.
func (e *End) Send(w word.Word) {
	if e.atA {
		e.l.ab.staged.w = w
	} else {
		e.l.ba.staged.w = w
	}
}

// SendBCB stages the backward control bit this end drives this cycle.
// The BCB is only meaningful traveling B→A (toward the source), but both
// directions carry it for symmetry.
func (e *End) SendBCB(b bool) {
	if e.atA {
		e.l.ab.staged.bcb = b
	} else {
		e.l.ba.staged.bcb = b
	}
}

// Recv returns the word arriving at this end this cycle.
func (e *End) Recv() word.Word {
	s := e.incoming()
	return s.w
}

// RecvBCB returns the backward control bit arriving at this end this cycle.
func (e *End) RecvBCB() bool {
	return e.incoming().bcb
}

func (e *End) incoming() slot {
	if e.l.dead {
		return slot{}
	}
	var s slot
	var c Corruptor
	if e.atA {
		s = e.l.ba.out()
		c = e.l.corruptBA
	} else {
		s = e.l.ab.out()
		c = e.l.corruptAB
	}
	if c != nil && !s.w.IsEmpty() {
		s.w = c(s.w)
	}
	return s
}
