// Package stats provides the small statistics toolkit used by the
// experiment harnesses: sample accumulation with percentiles, load-latency
// series, and plain-text table rendering for the regenerated paper tables
// and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates scalar observations.
type Sample struct {
	values []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddAll records a batch of observations.
func (s *Sample) AddAll(vs []float64) {
	s.values = append(s.values, vs...)
	s.sorted = false
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.values) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the population standard deviation.
func (s *Sample) StdDev() float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using
// nearest-rank on the sorted sample.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[n-1]
	}
	rank := int(math.Ceil(p/100*float64(n))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return s.values[rank]
}

// Min returns the smallest observation.
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation.
func (s *Sample) Max() float64 { return s.Percentile(100) }

// Summary condenses a sample for reporting.
type Summary struct {
	Count         int
	Mean, StdDev  float64
	Min, P50, P95 float64
	Max           float64
}

// Summarize computes a Summary.
func (s *Sample) Summarize() Summary {
	return Summary{
		Count:  s.Count(),
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		Min:    s.Min(),
		P50:    s.Percentile(50),
		P95:    s.Percentile(95),
		Max:    s.Max(),
	}
}

// LoadPoint is one point of a load-latency curve (the paper's Figure 3).
type LoadPoint struct {
	// OfferedLoad is the target fraction of injection-channel bandwidth.
	OfferedLoad float64
	// AcceptedLoad is the measured delivered fraction.
	AcceptedLoad float64
	// Latency summarizes injection-to-acknowledgment latency in cycles.
	Latency Summary
	// QueueLatency summarizes creation-to-acknowledgment latency.
	QueueLatency Summary
	// Messages is the number of completed messages measured.
	Messages int
	// Delivered counts successful deliveries among them.
	Delivered int
	// RetriesPerMessage is the mean number of retries.
	RetriesPerMessage float64
}

// Table renders rows of columns with aligned plain-text output, the format
// the benchmark harnesses print.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		sep := make([]string, cols)
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// Bucket is one equal-width histogram bin over [Lo, Hi).
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// Buckets partitions the sample range into n equal-width bins and counts
// the samples in each — the data behind Histogram, exposed for exporters
// (CSV histograms, plotting scripts). A degenerate sample (empty, or all
// values equal) returns a single bucket.
func (s *Sample) Buckets(n int) []Bucket {
	if len(s.values) == 0 || n < 1 {
		return nil
	}
	lo, hi := s.Min(), s.Max()
	if hi == lo {
		return []Bucket{{Lo: lo, Hi: hi, Count: len(s.values)}}
	}
	span := (hi - lo) / float64(n)
	out := make([]Bucket, n)
	for i := range out {
		out[i] = Bucket{Lo: lo + float64(i)*span, Hi: lo + float64(i+1)*span}
	}
	for _, v := range s.values {
		b := int((v - lo) / span)
		if b >= n {
			b = n - 1
		}
		out[b].Count++
	}
	return out
}

// Histogram renders the sample's distribution as a fixed-bucket text
// histogram with proportional bars, for terminal experiment output.
func (s *Sample) Histogram(buckets, barWidth int) string {
	bins := s.Buckets(buckets)
	if bins == nil {
		return "(no samples)\n"
	}
	if len(bins) == 1 && bins[0].Lo == bins[0].Hi {
		return fmt.Sprintf("%10.1f  all %d samples\n", bins[0].Lo, bins[0].Count)
	}
	maxCount := 0
	for _, bin := range bins {
		if bin.Count > maxCount {
			maxCount = bin.Count
		}
	}
	var b strings.Builder
	for _, bin := range bins {
		bar := ""
		if maxCount > 0 && barWidth > 0 {
			n := bin.Count * barWidth / maxCount
			if bin.Count > 0 && n == 0 {
				n = 1
			}
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(&b, "%10.1f..%-10.1f %6d %s\n", bin.Lo, bin.Hi, bin.Count, bar)
	}
	return b.String()
}
