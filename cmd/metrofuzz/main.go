// metrofuzz is the model-based randomized conformance harness: it
// generates whole simulation scenarios (topology, engine configuration,
// traffic schedule, dynamic fault schedule) from seeds, runs each one
// under the oracle battery of internal/metrofuzz — exactly-once
// delivery with payload checksums, message conservation, bounded
// progress, per-cycle router invariants, serial-vs-parallel
// differential equality — and, on failure, shrinks the scenario to a
// minimal failing configuration with a one-line replayable repro.
//
// Usage:
//
//	metrofuzz -seeds 100            # ensemble over seeds 0..99
//	metrofuzz -seeds 100 -start 500 # ensemble over seeds 500..599
//	metrofuzz -seed 42 -v           # one generated scenario, verbosely
//	metrofuzz -replay 'mf1;...'     # re-run a reported repro spec
//	metrofuzz -seeds 50 -kernel     # arm the kernel-vs-reference oracle
//
// Every scenario is a pure function of its seed, so a failure seen
// anywhere reproduces everywhere. Exit status is 1 when any oracle
// fires.
package main

import (
	"flag"
	"fmt"
	"os"

	"metro/internal/metrofuzz"
	"metro/internal/stats"
	"metro/internal/telemetry"
)

func main() {
	seeds := flag.Int("seeds", 0, "ensemble size: run generated scenarios for seeds [start, start+seeds)")
	start := flag.Int64("start", 0, "first seed of the ensemble")
	seed := flag.Int64("seed", -1, "run the single generated scenario for this seed")
	replay := flag.String("replay", "", "run one scenario from a replay spec line")
	shrink := flag.Bool("shrink", true, "on failure, shrink to a minimal failing scenario before reporting")
	shrinkRuns := flag.Int("shrink-runs", 150, "run budget for the shrinker")
	verbose := flag.Bool("v", false, "print one line per scenario")
	traceOut := flag.String("trace", "", "single-scenario mode: record the serial reference leg's telemetry to this mtr1 file")
	metrics := flag.Bool("metrics", false, "single-scenario mode: print the serial reference leg's telemetry summary")
	kernel := flag.Bool("kernel", false, "also run every scenario on the compiled flat kernel and demand bit-identity with the serial reference")
	flag.Parse()

	switch {
	case *replay != "":
		s, err := metrofuzz.DecodeSpec(*replay)
		if err != nil {
			fmt.Fprintln(os.Stderr, err) // decode errors carry the metrofuzz: prefix
			os.Exit(2)
		}
		os.Exit(runOne(s, *shrink, *shrinkRuns, true, *traceOut, *metrics, *kernel))
	case *seed >= 0:
		os.Exit(runOne(metrofuzz.Generate(*seed), *shrink, *shrinkRuns, true, *traceOut, *metrics, *kernel))
	default:
		if *traceOut != "" || *metrics {
			fmt.Fprintln(os.Stderr, "metrofuzz: -trace/-metrics need a single scenario (-seed or -replay)")
			os.Exit(2)
		}
		n := *seeds
		if n <= 0 {
			n = 20
		}
		os.Exit(runEnsemble(*start, n, *shrink, *shrinkRuns, *verbose, *kernel))
	}
}

// runOne executes a single scenario and reports it in full.
func runOne(s metrofuzz.Scenario, shrink bool, shrinkRuns int, verbose bool, traceOut string, metrics bool, kernel bool) int {
	hooks := metrofuzz.Hooks{KernelOracle: kernel}
	if traceOut != "" || metrics {
		hooks.Recorder = telemetry.New(telemetry.Options{})
	}
	rep := metrofuzz.Run(s, hooks)
	if verbose {
		fmt.Printf("scenario: %s\n", metrofuzz.Describe(rep))
		fmt.Printf("spec:     %s\n", rep.Spec)
	}
	if hooks.Recorder != nil {
		if traceOut != "" {
			f, err := os.Create(traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "metrofuzz: %v\n", err)
				os.Exit(1)
			}
			if err := telemetry.Encode(f, hooks.Recorder.Snapshot()); err != nil {
				fmt.Fprintf(os.Stderr, "metrofuzz: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "metrofuzz: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("trace: %d events written to %s\n", hooks.Recorder.Len(), traceOut)
		}
		if metrics {
			fmt.Print(telemetry.Summarize(hooks.Recorder.Snapshot()).Render())
		}
	}
	if !rep.Failed() {
		fmt.Printf("ok: all oracles passed (%d messages, %d cycles)\n", rep.Offered, rep.Cycles)
		return 0
	}
	reportFailure(rep, shrink, shrinkRuns, kernel)
	return 1
}

// runEnsemble sweeps generated scenarios and prints an oracle summary.
func runEnsemble(start int64, n int, shrink bool, shrinkRuns int, verbose bool, kernel bool) int {
	checked := map[string]int{}
	fired := map[string]int{}
	var failed []*metrofuzz.Report
	offered, delivered, duplicates, faults := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		s := metrofuzz.Generate(start + int64(i))
		rep := metrofuzz.Run(s, metrofuzz.Hooks{KernelOracle: kernel})
		offered += rep.Offered
		delivered += rep.Delivered
		duplicates += rep.Duplicates
		faults += rep.FaultsFired
		for _, o := range metrofuzz.OracleNames {
			if o == "differential" && s.Workers == 0 {
				continue
			}
			if o == "kernel" && !kernel {
				continue
			}
			checked[o]++
		}
		seenOracle := map[string]bool{}
		for _, f := range rep.Failures {
			if !seenOracle[f.Oracle] {
				seenOracle[f.Oracle] = true
				fired[f.Oracle]++
			}
		}
		if verbose {
			status := "ok"
			if rep.Failed() {
				status = "FAIL " + rep.Failures[0].String()
			}
			fmt.Printf("seed %4d: %-40s %s\n", start+int64(i), metrofuzz.Describe(rep), status)
		}
		if rep.Failed() {
			failed = append(failed, rep)
		}
	}

	fmt.Printf("metrofuzz: %d scenarios (seeds %d..%d), %d passed, %d failed\n",
		n, start, start+int64(n)-1, n-len(failed), len(failed))
	fmt.Printf("traffic: %d messages offered, %d delivered, %d duplicate arrivals, %d faults fired\n",
		offered, delivered, duplicates, faults)
	t := stats.Table{Header: []string{"oracle", "checked", "failed"}}
	for _, o := range metrofuzz.OracleNames {
		t.Add(o, fmt.Sprintf("%d", checked[o]), fmt.Sprintf("%d", fired[o]))
	}
	fmt.Print(t.String())

	if len(failed) == 0 {
		return 0
	}
	fmt.Println()
	for _, rep := range failed {
		reportFailure(rep, shrink, shrinkRuns, kernel)
	}
	return 1
}

// reportFailure prints a failing report and its shrunk repro. The
// shrinker re-arms the kernel oracle so kernel-divergence failures
// still reproduce while shrinking.
func reportFailure(rep *metrofuzz.Report, shrink bool, shrinkRuns int, kernel bool) {
	fmt.Printf("FAIL: %s\n", metrofuzz.Describe(rep))
	fmt.Printf("  spec: %s\n", rep.Spec)
	for _, f := range rep.Failures {
		fmt.Printf("  %s\n", f)
	}
	if shrink {
		min, minRep := metrofuzz.Shrink(rep.Scenario, metrofuzz.Hooks{KernelOracle: kernel}, shrinkRuns)
		_ = min
		fmt.Printf("  shrunk: %s\n", metrofuzz.Describe(minRep))
		for _, f := range minRep.Failures {
			fmt.Printf("    %s\n", f)
		}
		fmt.Printf("  repro: %s\n", minRep.Repro())
	} else {
		fmt.Printf("  repro: %s\n", rep.Repro())
	}
}
