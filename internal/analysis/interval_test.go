package analysis

import (
	"math"
	"testing"
)

func TestAbsValBasics(t *testing.T) {
	if v, ok := absConst(7).IsConst(); !ok || v != 7 {
		t.Fatalf("absConst(7).IsConst() = %d, %v", v, ok)
	}
	if !absConst(7).In(0, 10) || absConst(7).In(0, 6) {
		t.Fatal("In() wrong on constants")
	}
	if absWide().In(0, math.MaxInt64) {
		t.Fatal("Wide must never prove an interval")
	}
	if !absBottom().In(5, 5) {
		t.Fatal("bottom proves everything")
	}
	if absRange(3, 1).Bot != true {
		t.Fatal("inverted range is bottom")
	}
	if got := absRange(0, 31).String(); got != "[0, 31]" {
		t.Fatalf("String() = %q", got)
	}
	if got := absAny().String(); got != "[-inf, +inf]" {
		t.Fatalf("String() = %q", got)
	}
}

func TestAbsJoinMeet(t *testing.T) {
	a, b := absRange(0, 5), absRange(10, 20)
	j := a.Join(b)
	if !j.In(0, 20) || j.In(0, 19) {
		t.Fatalf("join = %v", j)
	}
	if got := absBottom().Join(a); got != a.normalize() {
		t.Fatalf("bottom is not join identity: %v", got)
	}
	m := absRange(0, 15).Meet(absRange(10, 40))
	if !m.In(10, 15) || m.In(11, 15) || m.In(10, 14) {
		t.Fatalf("meet = %v", m)
	}
	if !absRange(0, 5).Meet(absRange(10, 20)).Bot {
		t.Fatal("disjoint meet must be bottom")
	}
	// Wide meets a finite interval: the finite side wins.
	if got := absWide().Meet(absRange(0, 9)); !got.In(0, 9) {
		t.Fatalf("wide∧[0,9] = %v", got)
	}
	// Join of constants keeps agreeing bits: 4|x and 6|x share bit 2.
	j2 := absConst(4).Join(absConst(6))
	if j2.Mask&(1<<2) == 0 || j2.Bits&(1<<2) == 0 {
		t.Fatalf("join(4,6) lost known bit 2: mask=%x bits=%x", j2.Mask, j2.Bits)
	}
	if j2.Mask&(1<<1) != 0 {
		t.Fatalf("join(4,6) must not know bit 1: mask=%x", j2.Mask)
	}
}

func TestAbsArith(t *testing.T) {
	add := absAdd(absRange(1, 3), absRange(10, 20))
	if !add.In(11, 23) || add.In(12, 23) {
		t.Fatalf("add = %v", add)
	}
	sub := absSub(absRange(10, 20), absRange(1, 3))
	if !sub.In(7, 19) {
		t.Fatalf("sub = %v", sub)
	}
	mul := absMul(absRange(-2, 3), absRange(4, 5))
	if !mul.In(-10, 15) {
		t.Fatalf("mul = %v", mul)
	}
	// Overflow: MaxInt64 + 1 wraps concretely (to MinInt64), so the
	// abstraction must degrade to top — a saturated [MaxInt64, MaxInt64]
	// would exclude the wrapped value (FuzzIntervalSoundness caught
	// exactly this shape). The exact boundary is different: MaxInt64-1 + 1
	// is a legal value and stays precise.
	sat := absAdd(absConst(math.MaxInt64), absConst(1))
	if sat.Lo != math.MinInt64 || sat.Hi != math.MaxInt64 {
		t.Fatalf("overflowing add should be top, got %v", sat)
	}
	edge := absAdd(absConst(math.MaxInt64-1), absConst(1))
	if v, ok := edge.IsConst(); !ok || v != math.MaxInt64 {
		t.Fatalf("exact boundary add should stay [MaxInt64, MaxInt64], got %v", edge)
	}
	div := absDiv(absRange(10, 20), absRange(2, 5))
	if !div.In(2, 10) {
		t.Fatalf("div = %v", div)
	}
	// Divisor interval containing zero: only the nonzero part counts.
	div0 := absDiv(absRange(8, 8), absRange(0, 2))
	if !div0.In(4, 8) {
		t.Fatalf("div with zero-straddling divisor = %v", div0)
	}
	if !absDiv(absConst(1), absConst(0)).Bot {
		t.Fatal("division by constant zero is bottom (always panics)")
	}
	mod := absMod(absRange(0, 100), absConst(8))
	if !mod.In(0, 7) {
		t.Fatalf("mod = %v", mod)
	}
	modneg := absMod(absRange(-5, 100), absConst(8))
	if !modneg.In(-5, 7) {
		t.Fatalf("mod with negative dividend = %v", modneg)
	}
	neg := absNeg(absRange(3, 9))
	if !neg.In(-9, -3) {
		t.Fatalf("neg = %v", neg)
	}
	not := absNot(absRange(0, 7))
	if !not.In(-8, -1) {
		t.Fatalf("not = %v", not)
	}
}

func TestAbsShifts(t *testing.T) {
	shl := absShl(absRange(1, 3), absConst(4))
	if !shl.In(16, 48) {
		t.Fatalf("shl = %v", shl)
	}
	// Exact shift keeps known low zero bits.
	if shl.Mask&0xf != 0xf || shl.Bits&0xf != 0 {
		t.Fatalf("shl should know low 4 bits are zero: mask=%x bits=%x", shl.Mask, shl.Bits)
	}
	shr := absShr(absRange(16, 48), absConst(4))
	if !shr.In(1, 3) {
		t.Fatalf("shr = %v", shr)
	}
	// Variable shift amount: interval over both corners.
	shv := absShl(absConst(1), absRange(0, 5))
	if !shv.In(1, 32) {
		t.Fatalf("1 << [0,5] = %v", shv)
	}
	// A wide value shifted right by >= 1 comes back into interval range.
	w := absShr(absWide(), absConst(32))
	if w.Wide || !w.In(0, int64(^uint64(0)>>32)) {
		t.Fatalf("wide >> 32 = %v", w)
	}
	// Saturating overflow on left shift.
	big := absShl(absConst(1), absConst(63))
	if big.Hi != math.MaxInt64 {
		t.Fatalf("1<<63 should saturate: %v", big)
	}
}

func TestAbsBitwise(t *testing.T) {
	and := absAnd(absAny(), absConst(0xff))
	if !and.In(0, 255) {
		t.Fatalf("x & 0xff = %v", and)
	}
	if and.Mask&^uint64(0xff) != ^uint64(0xff) {
		t.Fatalf("x & 0xff should know the high bits are zero: mask=%x", and.Mask)
	}
	and2 := absAnd(absWide(), absConst(31))
	if !and2.In(0, 31) {
		t.Fatalf("wide & 31 = %v", and2)
	}
	or := absOr(absRange(0, 7), absRange(0, 3))
	if !or.In(0, 7) {
		t.Fatalf("[0,7] | [0,3] = %v", or)
	}
	or2 := absOr(absConst(8), absConst(4))
	if v, ok := or2.IsConst(); !ok || v != 12 {
		t.Fatalf("8|4 = %v", or2)
	}
	xor := absXor(absRange(0, 7), absRange(0, 7))
	if !xor.In(0, 7) {
		t.Fatalf("[0,7] ^ [0,7] = %v", xor)
	}
	andnot := absAndNot(absRange(0, 255), absConst(0x0f))
	if !andnot.In(0, 255) {
		t.Fatalf("andnot = %v", andnot)
	}
	if andnot.Mask&0xf != 0xf || andnot.Bits&0xf != 0 {
		t.Fatalf("x &^ 0x0f should know low 4 bits zero: mask=%x bits=%x", andnot.Mask, andnot.Bits)
	}
}

func TestAbsMinMax(t *testing.T) {
	mn := absMin(absRange(0, 10), absConst(5))
	if !mn.In(0, 5) {
		t.Fatalf("min = %v", mn)
	}
	mx := absMax(absRange(0, 10), absConst(5))
	if !mx.In(5, 10) {
		t.Fatalf("max = %v", mx)
	}
	// min(wide, 32) is bounded by 32.
	mw := absMin(absWide(), absConst(32))
	if !mw.In(0, 32) {
		t.Fatalf("min(wide, 32) = %v", mw)
	}
}

func TestAbsConvert(t *testing.T) {
	u8 := intType{8, false}
	i8 := intType{8, true}
	u32 := intType{32, false}
	i64 := intType{64, true}
	u64 := intType{64, false}

	// Fitting conversions are value-preserving.
	if got := absConvert(absRange(0, 200), i64, u8); !got.In(0, 200) {
		t.Fatalf("[0,200] -> uint8 = %v", got)
	}
	// Truncation wraps: uint8 can be anything in [0, 255].
	if got := absConvert(absRange(0, 300), i64, u8); !got.In(0, 255) || got.In(0, 254) {
		t.Fatalf("[0,300] -> uint8 = %v", got)
	}
	// Negative into unsigned wraps high.
	if got := absConvert(absRange(-1, 5), i64, u8); !got.In(0, 255) {
		t.Fatalf("[-1,5] -> uint8 = %v", got)
	}
	// Known bits survive truncation: a multiple of 16 stays one.
	mul16 := absShl(absRange(0, 100), absConst(4))
	tr := absConvert(mul16, i64, u8)
	if tr.Mask&0xf != 0xf || tr.Bits&0xf != 0 {
		t.Fatalf("truncation should keep low known bits: %+v", tr)
	}
	// Signed narrow with known-clear sign bit.
	if got := absConvert(absConst(0x7f), i64, i8); !got.In(127, 127) {
		t.Fatalf("0x7f -> int8 = %v", got)
	}
	if got := absConvert(absConst(0x80), i64, i8); got.In(-127, 127) {
		t.Fatalf("0x80 -> int8 should cover -128: %v", got)
	}
	// Wide into uint32 truncates; into int64 is top.
	if got := absConvert(absWide(), u64, u32); !got.In(0, math.MaxUint32) {
		t.Fatalf("wide -> uint32 = %v", got)
	}
	if got := absConvert(absWide(), u64, i64); got.In(0, math.MaxInt64) {
		t.Fatalf("wide -> int64 must include negatives: %v", got)
	}
	// int64 -> uint64 with possible negatives is Wide top.
	if got := absConvert(absRange(-3, 3), i64, u64); !got.Wide {
		t.Fatalf("[-3,3] -> uint64 should be wide: %v", got)
	}
	// fits() for wide into u64.
	if !absWide().fits(u64) || absWide().fits(i64) {
		t.Fatal("fits() wrong for wide values")
	}
}

func TestAbsClamp(t *testing.T) {
	u8 := intType{8, false}
	// In-range computation passes through.
	if got := absRange(0, 200).clamp(u8); !got.In(0, 200) {
		t.Fatalf("clamp in-range = %v", got)
	}
	// Possible overflow degrades to the type's range.
	if got := absRange(0, 300).clamp(u8); !got.In(0, 255) || got.In(0, 254) {
		t.Fatalf("clamp overflow = %v", got)
	}
	if got := rangeOf(intType{64, false}); !got.Wide {
		t.Fatalf("rangeOf(uint64) = %v", got)
	}
	if got := rangeOf(intType{16, true}); !got.In(-32768, 32767) || got.In(-32767, 32767) {
		t.Fatalf("rangeOf(int16) = %v", got)
	}
}
