package metrics

import "testing"

// Hot-path benchmarks: one update on a pre-resolved handle, the shape
// every instrumented cycle path uses. Each must be zero-alloc.

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkGaugeSet(b *testing.B) {
	r := NewRegistry()
	g := r.Gauge("bench_gauge", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "", []float64{0.001, 0.01, 0.1, 1, 10})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 16))
	}
}

func BenchmarkVecResolvedCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.CounterVec("bench_vec_total", "", "outcome").With("passed")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// TestZeroAllocHotPath gates the zero-allocation contract for every
// hot-path update, matching the simulator's steady-cycle gates.
// Skipped under -race (instrumentation allocates) and -short.
func TestZeroAllocHotPath(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping benchmark-driven gate in short mode")
	}
	benches := []struct {
		name  string
		bench func(*testing.B)
	}{
		{"CounterInc", BenchmarkCounterInc},
		{"GaugeSet", BenchmarkGaugeSet},
		{"HistogramObserve", BenchmarkHistogramObserve},
		{"VecResolvedCounterInc", BenchmarkVecResolvedCounterInc},
	}
	for _, bc := range benches {
		res := testing.Benchmark(bc.bench)
		if res.AllocsPerOp() != 0 {
			t.Errorf("%s allocates %d allocs/op (%d bytes/op); hot-path updates must be zero-alloc",
				bc.name, res.AllocsPerOp(), res.AllocedBytesPerOp())
		}
	}
}
