package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// clockRootNames are the methods that constitute the clocked cycle path:
// a clock.Component's Eval/Commit pair plus the engine-wrapper entry
// points that drive them.
var clockRootNames = map[string]bool{
	"Eval":          true,
	"Commit":        true,
	"Step":          true,
	"Run":           true,
	"RunUntil":      true,
	"RunUntilQuiet": true,
}

// ClockedMutation returns the clocked-mutation analyzer. In a two-phase
// clocked simulation every state change is supposed to happen inside the
// Eval/Commit cycle path; an exported method that mutates receiver state
// from outside that path is a mid-cycle mutation footgun — callers can
// invoke it between Eval and Commit and produce states no hardware
// schedule could reach. Deliberate out-of-cycle entry points (scan-driven
// reconfiguration, fault injection, test scaffolding) must say so with a
// `//metrovet:mutator <reason>` annotation, so that every such door into
// the model is enumerable and justified.
func ClockedMutation() *Analyzer {
	return &Analyzer{
		Name: "clocked-mutation",
		Doc:  "flag exported methods on clocked types that mutate receiver state outside the Eval/Commit path; annotate deliberate entry points //metrovet:mutator <reason>",
		Run:  runClockedMutation,
	}
}

// methodFacts holds the per-method analysis results for one receiver type.
type methodFacts struct {
	decl    *ast.FuncDecl
	mutates bool            // assigns through the receiver
	calls   map[string]bool // same-type methods invoked on the receiver
}

func runClockedMutation(p *Package) []Finding {
	if !isCycleStatePackage(p.ImportPath) {
		return nil
	}
	// Gather methods by receiver type from compiled files only: test
	// helpers are not part of the model's API surface.
	byType := map[string]map[string]*methodFacts{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			tname := recvTypeName(fd)
			if tname == "" {
				continue
			}
			m := byType[tname]
			if m == nil {
				m = map[string]*methodFacts{}
				byType[tname] = m
			}
			m[fd.Name.Name] = analyzeMethod(p, fd)
		}
	}

	var out []Finding
	for tname, methods := range byType {
		if !ast.IsExported(tname) {
			continue
		}
		clocked := false
		for name := range methods {
			if clockRootNames[name] {
				clocked = true
				break
			}
		}
		if !clocked {
			continue
		}
		inCycle := reachableFromRoots(methods)
		mutating := mutationClosure(methods)
		for name, mf := range methods {
			if !ast.IsExported(name) || clockRootNames[name] {
				continue
			}
			if !mutating[name] || inCycle[name] {
				continue
			}
			if docDirective(mf.decl.Doc, "mutator") {
				continue
			}
			pos := p.Fset.Position(mf.decl.Name.Pos())
			if p.suppressed("clocked-mutation", "mutator", pos) {
				continue
			}
			out = append(out, Finding{
				Pos:  pos,
				Rule: "clocked-mutation",
				Msg: fmt.Sprintf("exported method (%s).%s mutates simulator state outside the Eval/Commit cycle path; annotate //metrovet:mutator <reason> if this is a deliberate out-of-cycle entry point",
					tname, name),
			})
		}
	}
	return out
}

// recvTypeName extracts the receiver's named type ("Router" from
// (r *Router)); generic receivers resolve through their index expression.
func recvTypeName(fd *ast.FuncDecl) string {
	t := fd.Recv.List[0].Type
	for {
		switch tt := ast.Unparen(t).(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// analyzeMethod records whether fd directly assigns through its receiver
// and which same-receiver methods it calls.
func analyzeMethod(p *Package, fd *ast.FuncDecl) *methodFacts {
	mf := &methodFacts{decl: fd, calls: map[string]bool{}}
	names := fd.Recv.List[0].Names
	if len(names) != 1 || fd.Body == nil {
		return mf // anonymous receiver: the method cannot touch it
	}
	recv := names[0]
	recvObj := p.ObjectOf(recv)
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		if recvObj != nil {
			if obj := p.ObjectOf(id); obj != nil {
				return obj == recvObj
			}
		}
		return id.Name == recv.Name
	}
	// rootedInRecv unwraps selector/index/star chains: r.a.b[i] roots at r.
	var rootedInRecv func(e ast.Expr) bool
	rootedInRecv = func(e ast.Expr) bool {
		switch ee := ast.Unparen(e).(type) {
		case *ast.Ident:
			return isRecv(ee)
		case *ast.SelectorExpr:
			return rootedInRecv(ee.X)
		case *ast.IndexExpr:
			return rootedInRecv(ee.X)
		case *ast.StarExpr:
			return rootedInRecv(ee.X)
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				// A bare `r = …` rebinding doesn't mutate shared state;
				// anything deeper (r.f = …, r.f[i] = …, *r = …) does.
				if _, isIdent := ast.Unparen(lhs).(*ast.Ident); !isIdent && rootedInRecv(lhs) {
					mf.mutates = true
				}
			}
		case *ast.IncDecStmt:
			if _, isIdent := ast.Unparen(s.X).(*ast.Ident); !isIdent && rootedInRecv(s.X) {
				mf.mutates = true
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(s.Fun).(type) {
			case *ast.Ident:
				// delete(r.m, k) and copy(r.s, …) mutate their first
				// argument in place.
				if (fun.Name == "delete" || fun.Name == "copy") && len(s.Args) > 0 {
					if isBuiltin(p, fun) && rootedInRecv(s.Args[0]) {
						mf.mutates = true
					}
				}
			case *ast.SelectorExpr:
				// r.helper(...) — an edge to a same-type method. Calls on
				// fields (r.engine.Add) are not receiver mutations.
				if isRecv(fun.X) {
					mf.calls[fun.Sel.Name] = true
				}
			}
		}
		return true
	})
	return mf
}

// isBuiltin reports whether id resolves to a universe-scope builtin (or
// is unresolvable, in which case the name is trusted).
func isBuiltin(p *Package, id *ast.Ident) bool {
	obj := p.ObjectOf(id)
	if obj == nil {
		return true
	}
	_, ok := obj.(*types.Builtin)
	return ok
}

// mutationClosure propagates "mutates" across same-type calls: a method
// calling a mutating method mutates.
func mutationClosure(methods map[string]*methodFacts) map[string]bool {
	out := map[string]bool{}
	for name, mf := range methods {
		if mf.mutates {
			out[name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for name, mf := range methods {
			if out[name] {
				continue
			}
			for callee := range mf.calls {
				if out[callee] {
					out[name] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// reachableFromRoots marks methods transitively invoked from the clocked
// cycle path (Eval/Commit/Step/Run…).
func reachableFromRoots(methods map[string]*methodFacts) map[string]bool {
	seen := map[string]bool{}
	var visit func(name string)
	visit = func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		if mf, ok := methods[name]; ok {
			for callee := range mf.calls {
				visit(callee)
			}
		}
	}
	for name := range methods {
		if clockRootNames[name] {
			visit(name)
		}
	}
	return seen
}
