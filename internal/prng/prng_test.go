package prng

import (
	"testing"
	"testing/quick"
)

func TestLFSRDeterminism(t *testing.T) {
	a := NewLFSR(42)
	b := NewLFSR(42)
	for i := 0; i < 1000; i++ {
		if a.NextBit() != b.NextBit() {
			t.Fatalf("same-seed LFSRs diverged at bit %d", i)
		}
	}
}

func TestLFSRZeroSeedRemapped(t *testing.T) {
	l := NewLFSR(0)
	if l.state == 0 {
		t.Fatal("zero seed not remapped")
	}
}

func TestLFSRNeverSticksAtZero(t *testing.T) {
	l := NewLFSR(1)
	for i := 0; i < 100000; i++ {
		l.NextBit()
		if l.state == 0 {
			t.Fatalf("LFSR reached all-zero state after %d bits", i)
		}
	}
}

func TestLFSRBitBalance(t *testing.T) {
	l := NewLFSR(0xdeadbeef)
	ones := 0
	const n = 100000
	for i := 0; i < n; i++ {
		ones += int(l.NextBit())
	}
	frac := float64(ones) / n
	if frac < 0.48 || frac > 0.52 {
		t.Errorf("bit balance %f outside [0.48, 0.52]", frac)
	}
}

func TestNextBitsWidthAndClamp(t *testing.T) {
	l := NewLFSR(7)
	for n := 0; n <= 32; n++ {
		v := l.NextBits(n)
		if n < 32 && v >= 1<<uint(n) {
			t.Errorf("NextBits(%d) = %#x exceeds width", n, v)
		}
	}
	if NewLFSR(7).NextBits(-5) != 0 {
		t.Error("negative n should yield 0 bits")
	}
	// Clamped at 32: should not panic and should use the full register.
	_ = NewLFSR(7).NextBits(40)
}

func TestNextBitsOrdering(t *testing.T) {
	a := NewLFSR(99)
	b := NewLFSR(99)
	bits := make([]uint32, 8)
	for i := range bits {
		bits[i] = a.NextBit()
	}
	var want uint32
	for i, bit := range bits {
		want |= bit << uint(i)
	}
	if got := b.NextBits(8); got != want {
		t.Errorf("NextBits(8) = %#x, want %#x (first bit in LSB)", got, want)
	}
}

func TestSharedForksSeeIdenticalStream(t *testing.T) {
	s := NewShared(1234)
	f1 := s.Fork()
	f2 := s.Fork()
	f3 := s.Fork()
	// Identical consumption patterns must observe identical bits — the
	// property width cascading relies on.
	for i := 0; i < 500; i++ {
		n := (i % 5) + 1
		v1 := f1.NextBits(n)
		v2 := f2.NextBits(n)
		v3 := f3.NextBits(n)
		if v1 != v2 || v2 != v3 {
			t.Fatalf("forks diverged at draw %d: %#x %#x %#x", i, v1, v2, v3)
		}
	}
}

func TestSharedInterleavedConsumption(t *testing.T) {
	s := NewShared(77)
	f1 := s.Fork()
	f2 := s.Fork()
	// f1 runs far ahead, then f2 catches up: same values.
	ahead := make([]uint32, 100)
	for i := range ahead {
		ahead[i] = f1.NextBits(3)
	}
	for i := range ahead {
		if got := f2.NextBits(3); got != ahead[i] {
			t.Fatalf("lagging fork saw %#x at %d, leader saw %#x", got, i, ahead[i])
		}
	}
}

func TestSharedTrimsBuffer(t *testing.T) {
	s := NewShared(5)
	f1 := s.Fork()
	f2 := s.Fork()
	for i := 0; i < 1000; i++ {
		f1.NextBits(8)
		f2.NextBits(8)
	}
	if len(s.buf) > 16 {
		t.Errorf("shared buffer not trimmed: %d bits retained", len(s.buf))
	}
}

func TestSharedMatchesLFSR(t *testing.T) {
	// A single fork of a Shared stream must reproduce the raw LFSR stream.
	s := NewShared(31337)
	f := s.Fork()
	l := NewLFSR(31337)
	for i := 0; i < 256; i++ {
		if f.NextBits(1) != l.NextBit() {
			t.Fatalf("shared fork diverged from raw LFSR at bit %d", i)
		}
	}
}

func TestLFSRPeriodIsLong(t *testing.T) {
	// The state must not recur within a modest window (maximal-length
	// 32-bit LFSRs have period 2^32-1; we just sanity-check no short cycle).
	l := NewLFSR(1)
	start := l.state
	for i := 0; i < 1<<16; i++ {
		l.NextBit()
		if l.state == start {
			t.Fatalf("LFSR state recurred after %d steps", i+1)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	f := func(s1, s2 uint32) bool {
		if s1 == s2 {
			return true
		}
		a, b := NewLFSR(s1), NewLFSR(s2)
		for i := 0; i < 64; i++ {
			if a.NextBit() != b.NextBit() {
				return true
			}
		}
		return false // 64 identical bits from different seeds: suspicious
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
