package core_test

import (
	"testing"

	"metro/internal/clock"
	"metro/internal/core"
	"metro/internal/link"
	"metro/internal/prng"
	"metro/internal/word"
)

// TestNoSwallowForwardsHeaderPad checks the Swallow=false regime across a
// two-router chain: the exhausted routing word is forwarded as a setup pad
// and silently discarded by the next router's idle port, so routing still
// succeeds.
func TestNoSwallowForwardsHeaderPad(t *testing.T) {
	cfg := cfg4x4()
	setA := dil1Settings(cfg)
	for fp := range setA.Swallow {
		setA.Swallow[fp] = false
	}
	setB := dil1Settings(cfg)

	eng := clock.New()
	ra := core.NewRouter("A", cfg, setA, prng.NewLFSR(3))
	rb := core.NewRouter("B", cfg, setB, prng.NewLFSR(4))
	var srcs []*link.End
	for fp := 0; fp < cfg.Inputs; fp++ {
		l := link.New("f", 1)
		ra.AttachForward(fp, l.B())
		srcs = append(srcs, l.A())
		eng.Add(l)
	}
	for p := 0; p < cfg.Outputs; p++ {
		l := link.New("ab", 1)
		ra.AttachBackward(p, l.A())
		rb.AttachForward(p, l.B())
		eng.Add(l)
	}
	var dsts []*link.End
	for bp := 0; bp < cfg.Outputs; bp++ {
		l := link.New("bd", 1)
		rb.AttachBackward(bp, l.A())
		dsts = append(dsts, l.B())
		eng.Add(l)
	}
	eng.Add(ra, rb)

	// Header: 2 bits for A (exhausted there, forwarded as pad), then a
	// separate 2-bit word for B.
	seq := []word.Word{
		word.MakeRoute(1, 2), // A direction 1; exhausted, becomes pad
		word.MakeRoute(2, 2), // B direction 2
		word.MakeData(0x6, 4),
	}
	var got []word.Word
	for i := 0; i < 14; i++ {
		if i < len(seq) {
			srcs[0].Send(seq[i])
		} else {
			srcs[0].Send(word.Word{Kind: word.DataIdle})
		}
		if w := dsts[2].Recv(); !w.IsEmpty() && w.Kind != word.DataIdle {
			got = append(got, w)
		}
		eng.Step()
	}
	if rb.OwnerOf(2) < 0 {
		t.Fatal("second router did not route despite the forwarded pad")
	}
	if len(got) != 1 || got[0].Kind != word.Data || got[0].Payload != 0x6 {
		t.Fatalf("destination saw %v, want just DATA(6)", got)
	}
}

// TestAllocationAfterSameCycleRelease: a port freed by a BCB teardown
// during the input pass is available to a request allocated in the same
// cycle's allocation pass.
func TestAllocationAfterSameCycleRelease(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 9)
	// Open a connection on fp0 -> bp1.
	h.src[0].Send(word.MakeRoute(1, 2))
	h.run()
	h.src[0].Send(word.Word{Kind: word.DataIdle})
	h.run()
	if h.r.OwnerOf(1) != 0 {
		t.Fatal("setup failed")
	}
	// Assert BCB from downstream on bp1 while fp1 requests direction 1 in
	// the same cycle: the teardown (input pass) precedes allocation, so
	// fp1 wins the just-freed port.
	h.dst[1].SendBCB(true)
	h.src[0].Send(word.Word{Kind: word.DataIdle})
	h.run()
	h.src[1].Send(word.MakeRoute(1, 2))
	h.src[0].Send(word.Word{Kind: word.Drop}) // first source aborts
	h.run()
	h.src[1].Send(word.Word{Kind: word.DataIdle})
	h.run()
	if h.r.OwnerOf(1) != 1 {
		t.Fatalf("bp1 owner = %d, want the same-cycle requester fp1", h.r.OwnerOf(1))
	}
}

// TestIdleOnlyConnection holds a connection open with DATA-IDLE for a long
// stretch, then closes it cleanly: pure idle fill neither corrupts
// checksums nor leaks resources.
func TestIdleOnlyConnection(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 11)
	h.src[0].Send(word.MakeRoute(0, 2))
	h.run()
	for i := 0; i < 50; i++ {
		h.src[0].Send(word.Word{Kind: word.DataIdle})
		h.run()
	}
	if h.r.ConnectionCount() != 1 {
		t.Fatal("idle fill did not hold the connection")
	}
	var got []word.Word
	for i := 0; i < 12; i++ {
		if i == 0 {
			h.src[0].Send(word.Word{Kind: word.Turn})
		} else {
			h.src[0].Send(word.Word{Kind: word.DataIdle})
		}
		if w := h.src[0].Recv(); !w.IsEmpty() && w.Kind != word.DataIdle {
			got = append(got, w)
		}
		h.run()
	}
	if len(got) < 3 || got[0].Kind != word.Status {
		t.Fatalf("reply = %v", got)
	}
	// Checksum covers only the route word: idles are excluded.
	var ck word.Checksum
	ck.Add(word.MakeRoute(0, 2))
	if sum := word.JoinChecksum(got[1:3], 4); sum != ck.Sum() {
		t.Fatalf("idle-only checksum = %#x, want %#x", sum, ck.Sum())
	}
}

// TestDilationReconfigureBetweenMessages reconfigures a router from
// dilation 2 to dilation 1 between connections; the routing semantics
// follow the new radix.
func TestDilationReconfigureBetweenMessages(t *testing.T) {
	cfg := cfg4x4()
	set := core.DefaultSettings(cfg) // dilation 2: radix 2
	h := newHarness(cfg, set, 13)
	h.src[0].Send(word.MakeRoute(1, 1)) // dir 1 of 2 -> ports {2,3}
	h.run()
	h.src[0].Send(word.Word{Kind: word.Drop})
	h.run()
	h.run()
	h.run()
	if h.r.ConnectionCount() != 0 {
		t.Fatal("first connection not closed")
	}
	newSet := h.r.Settings()
	newSet.Dilation = 1 // radix 4
	if err := h.r.ApplySettings(newSet); err != nil {
		t.Fatal(err)
	}
	h.src[0].Send(word.MakeRoute(3, 2)) // dir 3 of 4 -> port 3 exactly
	h.run()
	h.src[0].Send(word.Word{Kind: word.DataIdle})
	h.run()
	if h.r.OwnerOf(3) != 0 {
		t.Fatalf("after reconfigure, dir 3 should map to port 3; owners: %v",
			[]int{h.r.OwnerOf(0), h.r.OwnerOf(1), h.r.OwnerOf(2), h.r.OwnerOf(3)})
	}
}

// TestBackToBackMessagesOnePort streams several messages through the same
// forward port with the close-gap discipline, ensuring no state leaks
// between connections.
func TestBackToBackMessagesOnePort(t *testing.T) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 15)
	gap := cfg.DataPipe + 2
	delivered := 0
	cyclesPerMsg := 3 + gap
	total := 6 * cyclesPerMsg
	for i := 0; i < total; i++ {
		switch i % cyclesPerMsg {
		case 0:
			h.src[0].Send(word.MakeRoute(2, 2))
		case 1:
			h.src[0].Send(word.MakeData(uint32(i), 4))
		case 2:
			h.src[0].Send(word.Word{Kind: word.Drop})
		}
		if w := h.dst[2].Recv(); w.Kind == word.Data {
			delivered++
		}
		h.run()
	}
	// Drain.
	for i := 0; i < 6; i++ {
		if w := h.dst[2].Recv(); w.Kind == word.Data {
			delivered++
		}
		h.run()
	}
	if delivered != 6 {
		t.Fatalf("delivered %d data words across 6 back-to-back messages", delivered)
	}
	if h.r.ConnectionCount() != 0 || h.r.ClosingCount() != 0 {
		t.Fatal("state leaked across back-to-back connections")
	}
}
