package core_test

import (
	"testing"

	"metro/internal/word"
)

// BenchmarkRouterSteadyCycle measures one clock cycle of a router with an
// established connection streaming data: the hot path of every simulation.
// The per-cycle path must not allocate — all buffers are preallocated in
// NewRouter — and TestZeroAllocRouterSteadyCycle gates that.
func BenchmarkRouterSteadyCycle(b *testing.B) {
	cfg := cfg4x4()
	h := newHarness(cfg, dil1Settings(cfg), 1)
	// Open a connection on forward port 0 toward direction 0 and prime the
	// pipeline with a few data words.
	h.src[0].Send(word.MakeRoute(0, 2))
	h.run()
	for i := 0; i < 8; i++ {
		h.src[0].Send(word.MakeData(uint32(i), cfg.Width))
		h.run()
	}
	if h.r.ConnectionCount() != 1 {
		b.Fatal("connection did not open")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.src[0].Send(word.MakeData(uint32(i), cfg.Width))
		h.run()
	}
}

// TestZeroAllocRouterSteadyCycle asserts the steady-state router cycle
// performs zero heap allocations per cycle, backing the static
// hot-path-alloc analyzer with a dynamic gate.
func TestZeroAllocRouterSteadyCycle(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	if testing.Short() {
		t.Skip("benchmark-backed allocation gate; CI runs it in the dedicated -run ZeroAlloc step")
	}
	res := testing.Benchmark(BenchmarkRouterSteadyCycle)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("router steady cycle: %d allocs/op, want 0", a)
	}
}
