package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBaselineRoundTrip(t *testing.T) {
	findings := []Finding{
		{Pos: token.Position{Filename: "internal/core/router.go", Line: 42}, Rule: "no-wallclock", Msg: "time.Now reads the host wall clock"},
		{Pos: token.Position{Filename: "internal/netsim/netsim.go", Line: 7}, Rule: "ordered-map-iteration", Msg: "iteration over map m has nondeterministic order"},
	}
	var buf strings.Builder
	if err := WriteBaseline(&buf, findings); err != nil {
		t.Fatal(err)
	}
	base, err := parseBaseline(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 {
		t.Fatalf("baseline has %d entries, want 2:\n%s", len(base), buf.String())
	}
	if rest := base.Filter(findings); len(rest) != 0 {
		t.Fatalf("round-tripped baseline should absorb all findings, kept %v", rest)
	}

	// The same round trip through an actual file: WriteBaseline to disk,
	// ReadBaseline back, and the re-rendered bytes are identical.
	path := filepath.Join(t.TempDir(), "baseline.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBaseline(f, findings); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fromDisk, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromDisk) != len(base) {
		t.Fatalf("file round trip lost entries: %d vs %d", len(fromDisk), len(base))
	}
	if rest := fromDisk.Filter(findings); len(rest) != 0 {
		t.Fatalf("file round trip should absorb all findings, kept %v", rest)
	}
	var again strings.Builder
	if err := WriteBaseline(&again, findings); err != nil {
		t.Fatal(err)
	}
	if again.String() != buf.String() {
		t.Fatal("WriteBaseline output is not byte-stable")
	}
}

func TestBaselineMatchesIgnoringLineNumbers(t *testing.T) {
	base, err := parseBaseline(strings.NewReader(
		"# comment\n\ninternal/core/router.go: no-wallclock: time.Now reads the host wall clock\n"))
	if err != nil {
		t.Fatal(err)
	}
	moved := []Finding{{
		Pos:  token.Position{Filename: "internal/core/router.go", Line: 99}, // code shifted
		Rule: "no-wallclock",
		Msg:  "time.Now reads the host wall clock",
	}}
	if rest := base.Filter(moved); len(rest) != 0 {
		t.Fatalf("baseline must match independent of line number, kept %v", rest)
	}
	other := []Finding{{
		Pos:  token.Position{Filename: "internal/core/router.go", Line: 99},
		Rule: "no-global-rand",
		Msg:  "something new",
	}}
	if rest := base.Filter(other); len(rest) != 1 {
		t.Fatalf("unrelated findings must survive the baseline, got %v", rest)
	}
}

func TestBaselineRejectsMalformedLines(t *testing.T) {
	if _, err := parseBaseline(strings.NewReader("not a baseline line\n")); err == nil {
		t.Fatal("malformed baseline line should error")
	}
}
