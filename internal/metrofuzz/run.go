package metrofuzz

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"

	"metro/internal/clock"
	"metro/internal/fault"
	"metro/internal/netsim"
	"metro/internal/nic"
	"metro/internal/telemetry"
	"metro/internal/topo"
)

// OracleNames lists the oracle battery in the order Run applies it.
var OracleNames = []string{
	"conservation", "delivery", "payload", "progress", "invariants", "differential", "kernel",
}

// Hooks are the harness's self-test seams: each one injects a
// simulator-bug-shaped defect without touching simulator source, so
// tests can prove every oracle actually fires (and the shrinker
// actually shrinks). All hooks apply identically to the serial and
// parallel legs — they model bugs in the system under test, which both
// legs share.
type Hooks struct {
	// Mutate runs after each leg's network is built and before it runs
	// (e.g. install a link corruptor to fake a routing-layer bug).
	Mutate func(*netsim.Network)
	// TamperDeliver rewrites destination-side deliveries before the
	// harness records them (a delivery-path bug).
	TamperDeliver func(dest int, payload []byte, intact bool) ([]byte, bool)
	// DropResult suppresses completion records (a lost-completion bug).
	DropResult func(nic.Result) bool
	// Recorder, when set, attaches the telemetry flight recorder to the
	// serial reference leg — the leg the oracles audit — so any
	// scenario, including a shrunken repro, can be replayed with full
	// telemetry. A Recorder wires into at most one network build, so
	// Hooks carrying one must be used for exactly one Run.
	Recorder *telemetry.Recorder
	// EngineMetrics, when set, attaches operational gauges
	// (cycles-per-second, step time, kernel shape — see
	// clock.EngineMetrics) to every leg's engine. Unlike Recorder it is
	// safe to share across legs and Runs: sampling state lives in each
	// engine, and the gauges are atomic last-writer-wins cells meant as
	// a live load signal, not a per-run record.
	EngineMetrics *clock.EngineMetrics
	// Progress, when set, observes the run between engine steps: every
	// ProgressPeriod cycles (and once when a leg finishes) it receives
	// the current cycle and the running offer/completion/delivery
	// counts of the serial reference leg. Returning false cancels the
	// run — runLeg stops stepping, Run records a single "canceled"
	// failure and sets Report.Canceled. The hook runs on the driving
	// goroutine, never inside Eval, so it may block or do I/O
	// (metroserve streams it over SSE and wires cancellation to a
	// context deadline). Differential legs replay the reference leg's
	// fixed cycle span; they invoke the hook for cancellation polling
	// only, with reporting counts from the leg under audit.
	Progress func(cycle uint64, offered, completed, delivered int) bool
	// ProgressPeriod is the cycle period of Progress callbacks; 0
	// selects DefaultProgressPeriod.
	ProgressPeriod uint64
	// KernelOracle enables the kernel-vs-reference differential leg:
	// the scenario re-runs on the compiled flat kernel
	// (netsim.Params.Kernel) for exactly the reference leg's cycle
	// span, and its result and delivery streams must match the serial
	// reference bit for bit. Unlike the fields above it arms an oracle
	// rather than injecting a defect. The other hooks apply to the
	// kernel leg like any other, so self-test defects stay symmetric.
	KernelOracle bool
}

// DefaultProgressPeriod is the Progress callback period when
// Hooks.ProgressPeriod is 0: frequent enough for live streaming and
// sub-millisecond cancellation, rare enough to stay off the profile.
const DefaultProgressPeriod = 256

// ErrCanceled is returned (wrapped) by a leg whose Progress hook asked
// to stop; Run converts it into a Canceled report.
var ErrCanceled = errors.New("metrofuzz: run canceled by Progress hook")

// Failure is one oracle violation.
type Failure struct {
	Oracle string
	Detail string
}

func (f Failure) String() string { return f.Oracle + ": " + f.Detail }

// Report is the outcome of running one scenario under the full oracle
// battery.
type Report struct {
	Scenario    Scenario
	Spec        string // EncodeSpec(Scenario), the replay currency
	Cycles      uint64 // cycles the serial reference leg executed
	Offered     int
	Delivered   int
	Duplicates  int // intact deliveries beyond the first, per message
	FaultsFired int
	Failures    []Failure
	// Canceled marks a run stopped early by the Progress hook (deadline
	// or client cancellation) rather than by an oracle verdict; the
	// single "canceled" failure is bookkeeping, not a simulator bug.
	Canceled bool
}

// Failed reports whether any oracle fired.
func (r *Report) Failed() bool { return len(r.Failures) > 0 }

// Repro returns the one-line reproduction command.
func (r *Report) Repro() string { return "metrofuzz -replay '" + r.Spec + "'" }

func (r *Report) fail(oracle, format string, args ...any) {
	r.Failures = append(r.Failures, Failure{Oracle: oracle, Detail: fmt.Sprintf(format, args...)})
}

// Run executes a scenario under the oracle battery: the serial
// reference engine first (with per-cycle invariant checks and the
// behavioural oracles), then — when the scenario requests workers — a
// parallel leg whose result and delivery streams must match the serial
// leg bit for bit.
func Run(s Scenario, h Hooks) *Report {
	r := &Report{Scenario: s, Spec: EncodeSpec(s)}
	if err := s.Validate(); err != nil {
		r.fail("spec", "%v", err)
		return r
	}
	serial, err := runLeg(s, h, legConfig{checkInv: true})
	if err != nil {
		if errors.Is(err, ErrCanceled) {
			r.Canceled = true
			r.fail("canceled", "%v", err)
		} else {
			r.fail("build", "%v", err)
		}
		return r
	}
	r.Cycles = serial.cycles
	r.Offered = len(serial.offers)
	r.FaultsFired = len(serial.fired)
	if serial.invariantErr != "" {
		r.fail("invariants", "%s", serial.invariantErr)
	}
	if serial.progressErr != "" {
		r.fail("progress", "%s", serial.progressErr)
	}
	r.checkConservation(serial)
	r.checkDelivery(s, serial)
	r.checkPayload(s, h, serial)

	if s.Workers > 0 {
		par, err := runLeg(s, h, legConfig{workers: s.Workers, fixedCycles: serial.cycles})
		if err != nil {
			if errors.Is(err, ErrCanceled) {
				r.Canceled = true
				r.fail("canceled", "parallel leg: %v", err)
			} else {
				r.fail("build", "parallel leg: %v", err)
			}
			return r
		}
		r.diffLegs("differential", "parallel", serial, par)
	}
	if h.KernelOracle {
		ker, err := runLeg(s, h, legConfig{kernel: true, fixedCycles: serial.cycles})
		if err != nil {
			if errors.Is(err, ErrCanceled) {
				r.Canceled = true
				r.fail("canceled", "kernel leg: %v", err)
			} else {
				r.fail("build", "kernel leg: %v", err)
			}
			return r
		}
		r.diffLegs("kernel", "kernel", serial, ker)
	}
	return r
}

// --- leg execution -----------------------------------------------------

// delivery is one destination-side delivery as the harness observed it.
type delivery struct {
	Dest    int
	Payload []byte
	Intact  bool
}

// offer is one message the injector handed to an endpoint.
type offer struct {
	ID        uint32
	Src, Dest int
	Payload   []byte
	At        uint64
}

// legOut is everything one engine leg produced.
type legOut struct {
	offers       []offer
	results      []nic.Result
	deliveries   []delivery
	fired        []fault.Event
	cycles       uint64
	quiet        bool
	progressErr  string
	invariantErr string
}

// legConfig selects how one leg executes: engine mode (workers /
// compiled kernel), whether the per-cycle invariant oracle runs
// (serial reference leg only — the other legs are compared against it
// instead), and an optional fixed cycle span (differential legs mirror
// the reference leg's span; 0 means run to quiescence under the
// progress watchdog).
type legConfig struct {
	workers     int
	kernel      bool
	checkInv    bool
	fixedCycles uint64
}

// runLeg builds and runs one network under the given leg configuration.
func runLeg(s Scenario, h Hooks, lc legConfig) (*legOut, error) {
	spec, err := s.Spec()
	if err != nil {
		return nil, err
	}
	leg := &legOut{}
	inj := &injector{s: s, leg: leg, rng: rand.New(rand.NewSource(s.TrafficSeed))}
	p := netsim.Params{
		Spec:               spec,
		Width:              s.Width,
		HeaderWords:        s.HeaderWords,
		DataPipe:           s.DataPipe,
		LinkDelay:          s.LinkDelay,
		CascadeWidth:       s.CascadeWidth,
		FastReclaim:        s.FastReclaim,
		FirstFreeSelection: s.FirstFree,
		Seed:               s.NetSeed,
		MaxActiveSenders:   s.MaxActiveSenders,
		RetryLimit:         s.RetryLimit,
		ListenTimeout:      uint64(s.ListenTimeout),
		Workers:            lc.workers,
		Kernel:             lc.kernel,
		EngineMetrics:      h.EngineMetrics,
		OnResult: func(res nic.Result) {
			inj.onResult(res)
			if h.DropResult != nil && h.DropResult(res) {
				return
			}
			leg.results = append(leg.results, res)
		},
		OnDeliver: func(dest int, payload []byte, intact bool) {
			buf := append([]byte(nil), payload...)
			if h.TamperDeliver != nil {
				buf, intact = h.TamperDeliver(dest, buf, intact)
			}
			leg.deliveries = append(leg.deliveries, delivery{Dest: dest, Payload: buf, Intact: intact})
		},
	}
	// The recorder observes the serial reference leg only (checkInv
	// marks it): a recorder wires into one build, and the parallel leg
	// is audited against the serial one rather than traced itself.
	if h.Recorder != nil && lc.checkInv {
		p.Recorder = h.Recorder
	}
	n, err := netsim.Build(p)
	if err != nil {
		return nil, err
	}
	defer n.Close()
	if h.Mutate != nil {
		h.Mutate(n)
	}
	inj.bind(n)
	finj := fault.NewInjector(n, s.Faults)

	period := h.ProgressPeriod
	if period == 0 {
		period = DefaultProgressPeriod
	}
	// observe reports the leg's running counts to the Progress hook and
	// returns false when the hook asks to cancel. Reporting is
	// per-leg: the reference leg's stream is what metroserve shows
	// live; differential legs call it mainly for cancellation polling.
	observe := func(cycle uint64) bool {
		if h.Progress == nil {
			return true
		}
		delivered := 0
		for _, res := range leg.results {
			if res.Delivered {
				delivered++
			}
		}
		return h.Progress(cycle, len(leg.offers), len(leg.results), delivered)
	}

	if lc.fixedCycles > 0 {
		if h.Progress == nil {
			n.Run(lc.fixedCycles)
		} else {
			for n.Engine.Cycle() < lc.fixedCycles {
				if n.Engine.Cycle()%period == 0 && !observe(n.Engine.Cycle()) {
					return nil, fmt.Errorf("cycle %d: %w", n.Engine.Cycle(), ErrCanceled)
				}
				n.Engine.Step()
			}
			observe(n.Engine.Cycle())
		}
		leg.cycles = n.Engine.Cycle()
		leg.fired = finj.Fired()
		return leg, nil
	}

	// Progress budget: an endpoint retires its current message within
	// RetryLimit+1 attempts, each bounded by the message span plus the
	// reply watchdog plus the teardown gap. If the network is done
	// injecting and no offer/result/delivery/fault lands for a full
	// worst-case message lifetime, something is livelocked (or a quiet
	// condition is unreachable — a deadlock); both are oracle failures.
	attempt := uint64(n.MessageWords(s.PayloadBytes) + s.ListenTimeout + s.DataPipe + 2 + 30)
	watchdog := uint64(s.RetryLimit+1) * attempt
	hardCap := uint64(s.InjectCycles) + uint64(s.Messages+10)*watchdog
	if hardCap > 5_000_000 {
		hardCap = 5_000_000
	}
	lastEvent := uint64(0)
	lastCount := 0
	for {
		cycle := n.Engine.Cycle()
		if cycle%period == 0 && !observe(cycle) {
			return nil, fmt.Errorf("cycle %d: %w", cycle, ErrCanceled)
		}
		if inj.done(cycle) && quiet(n) {
			leg.quiet = true
			break
		}
		if cycle >= hardCap {
			leg.progressErr = fmt.Sprintf("network not quiet after hard cap of %d cycles", hardCap)
			break
		}
		if inj.done(cycle) && cycle-lastEvent > watchdog {
			leg.progressErr = fmt.Sprintf(
				"no progress for %d cycles after injection ended (cycle %d, %d results of %d offers)",
				watchdog, cycle, len(leg.results), len(leg.offers))
			break
		}
		n.Engine.Step()
		if c := len(leg.offers) + len(leg.results) + len(leg.deliveries) + len(finj.Fired()); c != lastCount {
			lastCount = c
			lastEvent = n.Engine.Cycle()
		}
		if lc.checkInv {
			if msg := checkAllInvariants(n); msg != "" && leg.invariantErr == "" {
				leg.invariantErr = fmt.Sprintf("cycle %d: %s", n.Engine.Cycle(), msg)
				break
			}
		}
	}
	observe(n.Engine.Cycle())
	leg.cycles = n.Engine.Cycle()
	leg.fired = finj.Fired()
	return leg, nil
}

func quiet(n *netsim.Network) bool {
	for _, ep := range n.Endpoints {
		if ep.QueueLen() > 0 || ep.Busy() || ep.Receiving() {
			return false
		}
	}
	return true
}

// checkAllInvariants audits every router lane, returning the first
// violation.
func checkAllInvariants(n *netsim.Network) string {
	for s := range n.Routers {
		for j := range n.Routers[s] {
			if g := n.Cascades[s][j]; g != nil {
				for k := 0; k < g.Width(); k++ {
					if err := g.Member(k).CheckInvariants(); err != nil {
						return fmt.Sprintf("lane %d: %v", k, err)
					}
				}
			} else if err := n.Routers[s][j].CheckInvariants(); err != nil {
				return err.Error()
			}
		}
	}
	return ""
}

// --- the injector ------------------------------------------------------

// injector is the harness's own traffic driver. It registers with the
// engine after netsim's collector, so in both engine modes it runs in
// the serialized epilogue with completions already replayed in
// deterministic order — its random stream is consumed identically in
// the serial and parallel legs.
type injector struct {
	s   Scenario
	net *netsim.Network
	rng *rand.Rand
	leg *legOut

	remaining   int
	nextID      uint32
	burstDone   bool
	outstanding []int
	think       []int
}

func (i *injector) bind(n *netsim.Network) {
	i.net = n
	i.remaining = i.s.Messages
	i.outstanding = make([]int, len(n.Endpoints))
	i.think = make([]int, len(n.Endpoints))
	n.Engine.Add(i)
}

// done reports whether the schedule will offer no further messages.
func (i *injector) done(cycle uint64) bool {
	if i.remaining == 0 {
		return true
	}
	if i.s.Traffic == Burst {
		return i.burstDone
	}
	return cycle >= uint64(i.s.InjectCycles)
}

// Eval implements clock.Component: advance the traffic schedule.
//
//metrovet:shared driver registers via Engine.Add, so it runs in the serialized epilogue after every endpoint has evaluated
//metrovet:truncate InjectCycles is validated into [1,20000] by Scenario.Validate
//metrovet:bounds think and outstanding are both sized to the endpoint count by bind, and e ranges over outstanding
func (i *injector) Eval(cycle uint64) {
	if i.remaining == 0 {
		return
	}
	switch i.s.Traffic {
	case Burst:
		if i.burstDone {
			return
		}
		i.burstDone = true
		for i.remaining > 0 {
			i.offerFrom(i.rng.Intn(len(i.outstanding)), cycle)
		}
	case Bernoulli:
		if cycle >= uint64(i.s.InjectCycles) {
			return
		}
		for e := range i.outstanding {
			if i.remaining > 0 && i.rng.Intn(1000) < i.s.RatePerMille {
				i.offerFrom(e, cycle)
			}
		}
	case Stall:
		if cycle >= uint64(i.s.InjectCycles) {
			return
		}
		for e := range i.outstanding {
			if i.think[e] > 0 {
				i.think[e]--
				continue
			}
			for i.outstanding[e] < i.s.Outstanding && i.remaining > 0 {
				i.offerFrom(e, cycle)
				i.outstanding[e]++
			}
		}
	}
}

// Commit implements clock.Component.
func (i *injector) Commit(cycle uint64) {}

// onResult feeds completions back into the closed-loop schedule. It is
// called from the collector's deterministic replay, before the
// injector's own Eval in the same epilogue.
func (i *injector) onResult(r nic.Result) {
	if i.s.Traffic != Stall {
		return
	}
	src := r.Msg.Src
	if i.outstanding[src] > 0 {
		i.outstanding[src]--
	}
	if i.s.ThinkMax > 0 {
		i.think[src] = i.rng.Intn(i.s.ThinkMax + 1)
	}
}

// offerFrom creates, tags and offers one message from src.
//
//metrovet:shared see Eval
func (i *injector) offerFrom(src int, cycle uint64) {
	n := len(i.outstanding)
	dest := i.rng.Intn(n - 1)
	if dest >= src {
		dest++
	}
	i.nextID++
	//metrovet:alloc per-injected-message tagged payload; ownership transfers to the endpoint queue
	payload := EncodePayload(i.nextID, src, dest, i.s.PayloadBytes)
	i.net.Send(src, dest, payload)
	//metrovet:alloc harness ledger entry, bounded by the message budget
	i.leg.offers = append(i.leg.offers, offer{
		ID: i.nextID, Src: src, Dest: dest, Payload: payload, At: cycle,
	})
	i.remaining--
}

// --- oracles -----------------------------------------------------------

// checkConservation: every offered message yields exactly one completion
// Result carrying the offered identity — no losses, no duplicates, no
// fabrications.
func (r *Report) checkConservation(leg *legOut) {
	byID := make(map[uint32]offer, len(leg.offers))
	for _, o := range leg.offers {
		byID[o.ID] = o
	}
	seen := make(map[uint32]int)
	for i, res := range leg.results {
		id, src, dest, ok := DecodePayload(res.Msg.Payload)
		if !ok {
			r.fail("conservation", "result %d carries an unparseable payload (msg %d)", i, res.Msg.ID)
			continue
		}
		o, known := byID[id]
		if !known {
			r.fail("conservation", "result %d reports message %d that was never offered", i, id)
			continue
		}
		if res.Msg.Src != o.Src || res.Msg.Dest != o.Dest || src != o.Src || dest != o.Dest {
			r.fail("conservation", "result for message %d has src/dest %d->%d, offered %d->%d",
				id, res.Msg.Src, res.Msg.Dest, o.Src, o.Dest)
		}
		seen[id]++
	}
	for _, o := range leg.offers {
		switch c := seen[o.ID]; {
		case c == 0:
			r.fail("conservation", "message %d (%d->%d, offered cycle %d) never completed",
				o.ID, o.Src, o.Dest, o.At)
		case c > 1:
			r.fail("conservation", "message %d completed %d times", o.ID, c)
		}
	}
}

// checkDelivery: a Delivered result implies at least one intact arrival;
// arrivals never exceed attempts; a message whose destination stays
// reachable under the fired fault set must be delivered; and in a
// fault-free scenario every message arrives exactly once (duplicates
// come only from fault-corrupted acknowledgments).
func (r *Report) checkDelivery(s Scenario, leg *legOut) {
	intact := make(map[uint32]int)
	for _, d := range leg.deliveries {
		if !d.Intact {
			continue
		}
		if id, _, _, ok := DecodePayload(d.Payload); ok {
			intact[id]++
		}
	}
	view := newFaultView(leg, s)
	faulty := len(s.Faults) > 0
	// Structural reachability promises delivery only under stochastic
	// path selection: the paper's fault-avoidance argument (Section 4)
	// is that retries resample paths at random, so any surviving path is
	// eventually found. The first-free ablation deliberately removes
	// that resampling — a faulted network may starve a reachable pair
	// forever — so completeness is not checked for that combination.
	demandComplete := !(s.FirstFree && faulty)
	for _, res := range leg.results {
		id, _, _, ok := DecodePayload(res.Msg.Payload)
		if !ok {
			continue // conservation already flagged it
		}
		k := intact[id]
		if res.Delivered {
			r.Delivered++
			if k == 0 {
				r.fail("delivery", "message %d acknowledged as delivered but never arrived intact", id)
			}
			if k > 1 {
				r.Duplicates += k - 1
			}
		}
		if k > res.Retries+1 {
			r.fail("delivery", "message %d arrived intact %d times in %d attempts",
				id, k, res.Retries+1)
		}
		if demandComplete && !res.Delivered && view.reachable(res.Msg.Src, res.Msg.Dest) {
			r.fail("delivery",
				"message %d (%d->%d) undelivered after %d retries though its destination is reachable",
				id, res.Msg.Src, res.Msg.Dest, res.Retries)
		}
		if !faulty {
			if !res.Delivered {
				r.fail("delivery", "fault-free run failed to deliver message %d (%d->%d)",
					id, res.Msg.Src, res.Msg.Dest)
			}
			if k > 1 {
				r.fail("delivery", "fault-free run delivered message %d %d times", id, k)
			}
		}
	}
}

// checkPayload: every intact delivery decodes to an offered message,
// arrived at its own destination, byte-for-byte equal to what the source
// offered; fault-free runs see no corrupt deliveries at all. This is the
// end-to-end data-integrity oracle, independent of the network's CRC.
func (r *Report) checkPayload(s Scenario, h Hooks, leg *legOut) {
	byID := make(map[uint32]offer, len(leg.offers))
	for _, o := range leg.offers {
		byID[o.ID] = o
	}
	faulty := len(s.Faults) > 0
	for i, d := range leg.deliveries {
		if !d.Intact {
			if !faulty && h.Mutate == nil && h.TamperDeliver == nil {
				r.fail("payload", "delivery %d at endpoint %d corrupt in a fault-free run", i, d.Dest)
			}
			continue
		}
		id, src, dest, ok := DecodePayload(d.Payload)
		if !ok {
			r.fail("payload", "intact delivery %d at endpoint %d does not decode", i, d.Dest)
			continue
		}
		o, known := byID[id]
		if !known {
			r.fail("payload", "intact delivery %d carries unknown message %d", i, id)
			continue
		}
		if dest != d.Dest || o.Dest != d.Dest || o.Src != src {
			r.fail("payload", "message %d (%d->%d) delivered to endpoint %d", id, o.Src, o.Dest, d.Dest)
			continue
		}
		if len(d.Payload) < len(o.Payload) || !bytes.Equal(d.Payload[:len(o.Payload)], o.Payload) {
			r.fail("payload", "message %d delivered with altered bytes", id)
		}
	}
}

// diffLegs: an alternative engine leg (the partitioned parallel engine,
// or the compiled flat kernel) must reproduce the serial reference bit
// for bit — same completions, same deliveries, same order. oracle names
// the firing oracle ("differential" or "kernel"), legName the leg under
// audit in the failure text.
func (r *Report) diffLegs(oracle, legName string, serial, other *legOut) {
	if len(serial.results) != len(other.results) {
		r.fail(oracle, "serial leg completed %d messages, %s leg %d",
			len(serial.results), legName, len(other.results))
	}
	for i := range serial.results {
		if i >= len(other.results) {
			break
		}
		if !reflect.DeepEqual(serial.results[i], other.results[i]) {
			r.fail(oracle, "result %d diverges: serial %+v, %s %+v",
				i, serial.results[i], legName, other.results[i])
			break
		}
	}
	if len(serial.deliveries) != len(other.deliveries) {
		r.fail(oracle, "serial leg observed %d deliveries, %s leg %d",
			len(serial.deliveries), legName, len(other.deliveries))
	}
	for i := range serial.deliveries {
		if i >= len(other.deliveries) {
			break
		}
		a, b := serial.deliveries[i], other.deliveries[i]
		if a.Dest != b.Dest || a.Intact != b.Intact || !bytes.Equal(a.Payload, b.Payload) {
			r.fail(oracle, "delivery %d diverges: serial ep%d intact=%v, %s ep%d intact=%v",
				i, a.Dest, a.Intact, legName, b.Dest, b.Intact)
			break
		}
	}
}

// --- structural reachability under faults ------------------------------

// faultView answers "could this source still reach this destination?"
// against the fault events that actually fired, walking the elaborated
// topology while honouring dead routers, severed links (including
// injection and delivery links) and disabled ports. Stuck-bit links are
// treated as dead too: they may still deliver, so excusing them only
// relaxes the oracle.
type faultView struct {
	t          *topo.Topology
	deadRouter map[[2]int]bool
	deadOut    map[[3]int]bool
	deadInject map[[2]int]bool
}

func newFaultView(leg *legOut, s Scenario) *faultView {
	spec, _ := s.Spec()
	t, err := topo.Build(spec)
	if err != nil {
		panic(err) // the scenario validated before the run
	}
	v := &faultView{
		t:          t,
		deadRouter: map[[2]int]bool{},
		deadOut:    map[[3]int]bool{},
		deadInject: map[[2]int]bool{},
	}
	for _, e := range leg.fired {
		switch e.Kind {
		case fault.RouterKill:
			v.deadRouter[[2]int{e.Stage, e.Index}] = true
		case fault.LinkKill, fault.LinkStuckBit, fault.PortDisable:
			if e.Stage < 0 {
				v.deadInject[[2]int{e.Index, e.Port}] = true
			} else {
				v.deadOut[[3]int{e.Stage, e.Index, e.Port}] = true
			}
		}
	}
	return v
}

func (v *faultView) reachable(src, dest int) bool {
	digits := v.t.RouteDigits(dest)
	for k, inj := range v.t.Inject[src] {
		if v.deadInject[[2]int{src, k}] {
			continue
		}
		if v.walk(inj, digits, dest) {
			return true
		}
	}
	return false
}

func (v *faultView) walk(at topo.PortRef, digits []int, dest int) bool {
	if at.Kind == topo.KindEndpoint {
		return at.Index == dest
	}
	if v.deadRouter[[2]int{at.Stage, at.Index}] {
		return false
	}
	st := v.t.Spec.Stages[at.Stage]
	q := digits[at.Stage]
	for dd := 0; dd < st.Dilation; dd++ {
		bp := q*st.Dilation + dd
		if v.deadOut[[3]int{at.Stage, at.Index, bp}] {
			continue
		}
		if v.walk(v.t.Out[at.Stage][at.Index][bp], digits, dest) {
			return true
		}
	}
	return false
}
