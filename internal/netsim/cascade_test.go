package netsim

import (
	"bytes"
	"testing"

	"metro/internal/topo"
	"metro/internal/word"
)

func buildCascaded(t *testing.T, c int, mutate func(*Params)) *Network {
	t.Helper()
	p := Params{
		Spec:         topo.Figure1(),
		Width:        4, // METROJR-style 4-bit components
		DataPipe:     1,
		LinkDelay:    1,
		FastReclaim:  true,
		CascadeWidth: c,
		Seed:         51,
		RetryLimit:   300,
	}
	if mutate != nil {
		mutate(&p)
	}
	n, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCascadedNetworkDelivery(t *testing.T) {
	for _, c := range []int{2, 4} {
		var got []byte
		n := buildCascaded(t, c, func(p *Params) {
			p.OnDeliver = func(dest int, payload []byte, intact bool) {
				if dest == 13 && intact {
					got = append([]byte(nil), payload...)
				}
			}
		})
		// 18 bytes: a whole number of words at every lane width used here.
		payload := []byte("cascaded delivery!")
		n.Send(2, 13, payload)
		if !n.RunUntilQuiet(5000) {
			t.Fatalf("c=%d: network did not go quiet", c)
		}
		res := n.Results()
		if len(res) != 1 || !res[0].Delivered {
			t.Fatalf("c=%d: delivery failed: %+v", c, res)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("c=%d: payload corrupted across lanes: %q", c, got)
		}
		if res[0].SuspectStage != -1 {
			t.Fatalf("c=%d: healthy cascade flagged stage %d", c, res[0].SuspectStage)
		}
	}
}

func TestCascadedAllPairs(t *testing.T) {
	n := buildCascaded(t, 2, nil)
	want := 0
	for src := 0; src < 16; src++ {
		for d := 1; d <= 3; d++ {
			n.Send(src, (src+d*5)%16, []byte{byte(src), byte(d)})
			want++
		}
	}
	if !n.RunUntilQuiet(500000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != want {
		t.Fatalf("completed %d of %d", len(res), want)
	}
	for _, r := range res {
		if !r.Delivered {
			t.Fatalf("undelivered: %+v", r)
		}
	}
}

// TestCascadeHalvesTransferTime verifies Table 3's cascade effect in the
// cycle domain: the same payload crosses a 2-cascade in roughly half the
// serialization time (header and per-stage latency unchanged).
func TestCascadeHalvesTransferTime(t *testing.T) {
	lat := func(c int) uint64 {
		n := buildCascaded(t, c, nil)
		n.Send(0, 15, make([]byte, 40))
		if !n.RunUntilQuiet(5000) {
			t.Fatal("not quiet")
		}
		r := n.Results()[0]
		if !r.Delivered {
			t.Fatal("undelivered")
		}
		return r.Done - r.Injected
	}
	l1, l2 := lat(1), lat(2)
	// 40 bytes at w=4: 80 payload words singly, 40 words cascaded: the
	// serialization saving is ~40 cycles on the forward path.
	saving := int(l1) - int(l2)
	if saving < 30 {
		t.Fatalf("cascade saved only %d cycles (c=1: %d, c=2: %d)", saving, l1, l2)
	}
}

// TestCascadedLaneFaultContained injects a corrupting fault into a single
// lane: the per-lane checksums catch it, the consistency machinery keeps
// the lanes in lockstep, and retries deliver the message.
func TestCascadedLaneFaultContained(t *testing.T) {
	n := buildCascaded(t, 2, func(p *Params) { p.ListenTimeout = 200 })
	// Stuck bit on lane 1 of every output of stage-0 router 1.
	r0 := n.Routers[0][1]
	for bp := 0; bp < r0.Config().Outputs; bp++ {
		n.outLanes[0][1][bp][1].SetCorruptor(func(w word.Word) word.Word {
			if w.Kind == word.Data {
				w.Payload |= 0x1
			}
			return w
		}, nil)
	}
	sent := 0
	for src := 0; src < 16; src++ {
		for d := 1; d <= 2; d++ {
			n.Send(src, (src+d*7)%16, []byte{0x00, 0x02, 0x04})
			sent++
		}
	}
	if !n.RunUntilQuiet(1000000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != sent {
		t.Fatalf("completed %d of %d", len(res), sent)
	}
	corrupted := 0
	for _, r := range res {
		if !r.Delivered {
			t.Fatalf("undelivered despite retries: %+v", r)
		}
		corrupted += r.ChecksumFailures
	}
	if corrupted == 0 {
		t.Fatal("lane fault never detected — corruption model suspect")
	}
}

// TestCascadedLaneDeadLinkRecovered kills one lane of one link: the
// logical channel through it breaks lockstep and the sources route
// around it.
func TestCascadedLaneDeadLinkRecovered(t *testing.T) {
	n := buildCascaded(t, 2, func(p *Params) { p.ListenTimeout = 150 })
	n.outLanes[0][0][0][1].Kill()
	sent := 0
	for src := 0; src < 16; src++ {
		n.Send(src, (src+9)%16, []byte("lane loss"))
		sent++
	}
	if !n.RunUntilQuiet(1000000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	delivered := 0
	for _, r := range res {
		if r.Delivered {
			delivered++
		}
	}
	if delivered != sent {
		t.Fatalf("delivered %d of %d with one dead lane", delivered, sent)
	}
}

func TestCascadedMessageWords(t *testing.T) {
	n := buildCascaded(t, 2, nil)
	// Logical width 8: 20 payload bytes -> 20 words; header: Figure-1
	// digits 1+1+2 bits pack into one 4-bit route word; cksum 1 word at
	// logical width 8; +1 turn = 23.
	if got := n.MessageWords(20); got != 23 {
		t.Fatalf("MessageWords(20) = %d, want 23", got)
	}
}

func TestCascadedInvariants(t *testing.T) {
	n := buildCascaded(t, 2, nil)
	for src := 0; src < 16; src++ {
		n.Send(src, (src+5)%16, []byte{1, 2, 3, 4})
	}
	for cycle := 0; cycle < 600; cycle++ {
		n.Engine.Step()
		for s := range n.Cascades {
			for _, g := range n.Cascades[s] {
				for k := 0; k < g.Width(); k++ {
					if err := g.Member(k).CheckInvariants(); err != nil {
						t.Fatalf("cycle %d: %v", cycle, err)
					}
				}
				if g.Member(0).BackwardInUse() != g.Member(1).BackwardInUse() {
					t.Fatalf("cycle %d: %s lanes out of lockstep", cycle, g.Member(0).Name())
				}
			}
		}
	}
}

// TestCascadedDetailedMode combines width cascading with detailed blocked
// replies: blocked connections on a cascaded router return lockstep
// STATUS/CHECKSUM/DROP replies on every lane, and the source decodes the
// blocking stage.
func TestCascadedDetailedMode(t *testing.T) {
	n := buildCascaded(t, 2, func(p *Params) {
		p.FastReclaim = false
		p.MaxActiveSenders = 1
		p.RetryLimit = 500
	})
	sent := 0
	for src := 0; src < 16; src++ {
		if src == 4 {
			continue
		}
		n.Send(src, 4, []byte{byte(src)}) // hotspot forces blocking
		sent++
	}
	if !n.RunUntilQuiet(1000000) {
		t.Fatal("network did not go quiet")
	}
	res := n.Results()
	if len(res) != sent {
		t.Fatalf("completed %d of %d", len(res), sent)
	}
	detailed := 0
	for _, r := range res {
		if !r.Delivered {
			t.Fatalf("undelivered: %+v", r)
		}
		detailed += r.BlockedDetailed
		if r.BlockedFast > 0 {
			t.Fatalf("fast block reported in detailed mode: %+v", r)
		}
		if r.BlockedDetailed > 0 && r.LastBlockedStage < 0 {
			t.Fatalf("detailed block without stage info: %+v", r)
		}
	}
	if detailed == 0 {
		t.Fatal("hotspot produced no detailed blocks")
	}
}
