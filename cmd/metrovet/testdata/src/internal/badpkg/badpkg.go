// Package badpkg is a deliberately non-conforming fixture: the golden
// tests for metrovet's -json/-sarif emitters and the incremental cache
// point the tool at this package. It lives under a testdata directory so
// the Go toolchain and metrovet's own recursive tree walks both skip it;
// only an explicit pattern reaches it.
package badpkg

var hits int

// Gadget is a component whose Eval breaks the discipline on purpose: it
// allocates per cycle and, two call frames down, increments package-level
// state shared across every shard.
type Gadget struct{ buf []int }

func (g *Gadget) Eval(cycle uint64) {
	g.buf = make([]int, 8)
	bump()
}

func (g *Gadget) Commit(cycle uint64) {}

func bump() { count() }

func count() { hits++ }

// Slicer breaks the value-range rules on purpose: byte(cycle) truncates
// an unbounded counter (MV010), the lut index is a field the analysis
// cannot bound (MV011), and the shift amount on a 32-bit operand is
// never proven below 32 (MV012).
type Slicer struct {
	lut  []byte
	bits int
	n    int
}

func (s *Slicer) Eval(cycle uint64) {
	s.n++
	if len(s.lut) != 0 {
		s.lut[s.n] = byte(cycle)
	}
	hits += int(uint32(1) << uint(s.bits))
}

func (s *Slicer) Commit(cycle uint64) {}
