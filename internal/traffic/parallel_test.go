package traffic

import (
	"reflect"
	"testing"

	"metro/internal/netsim"
	"metro/internal/topo"
)

// TestClosedLoopParallelDifferential runs the Figure 3 closed-loop
// workload — the paper's measurement configuration, and the hardest
// equivalence case, because the driver's OnResult hook both mutates
// per-endpoint state and draws think times from its PRNG, so any
// perturbation of completion order changes the entire remaining random
// stream. Serial and parallel runs must agree on every measured result
// and on the summarized load point, bit for bit.
func TestClosedLoopParallelDifferential(t *testing.T) {
	cycles := uint64(2000)
	if testing.Short() {
		cycles = 800
	}
	run := func(workers int) (*ClosedLoop, error) {
		driver := &ClosedLoop{
			Load: 0.85, MsgBytes: 20, Outstanding: 2, Seed: 5, Warmup: 200,
		}
		p := netsim.Params{
			Spec: topo.Figure3(), Width: 8, HeaderWords: 2, DataPipe: 2,
			LinkDelay: 1, FastReclaim: true, Seed: 7, RetryLimit: 1000,
			Workers:  workers,
			OnResult: driver.OnResult,
		}
		n, err := netsim.Build(p)
		if err != nil {
			return nil, err
		}
		defer n.Close()
		driver.Bind(n)
		n.Run(cycles)
		return driver, nil
	}
	want, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Measured()) == 0 {
		t.Fatal("closed-loop run measured no completions; the differential compares nothing")
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := run(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Injected() != want.Injected() {
			t.Errorf("workers=%d: injected %d, want %d", workers, got.Injected(), want.Injected())
		}
		if !reflect.DeepEqual(got.Measured(), want.Measured()) {
			t.Errorf("workers=%d: measured results diverge from the serial engine (%d vs %d messages)",
				workers, len(got.Measured()), len(want.Measured()))
		}
		if !reflect.DeepEqual(got.Point(), want.Point()) {
			t.Errorf("workers=%d: load point diverges:\n got %+v\nwant %+v", workers, got.Point(), want.Point())
		}
	}
}

// TestOpenLoopParallelDifferential covers the Bernoulli-injection driver
// the same way: its Eval draws from a PRNG whose consumption must not
// depend on worker scheduling.
func TestOpenLoopParallelDifferential(t *testing.T) {
	cycles := uint64(1200)
	if testing.Short() {
		cycles = 500
	}
	run := func(workers int) (*OpenLoop, error) {
		driver := &OpenLoop{Load: 0.6, MsgBytes: 12, Seed: 11, Warmup: 100}
		p := netsim.Params{
			Spec: topo.Figure3(), Width: 8, DataPipe: 2, LinkDelay: 1,
			FastReclaim: true, Seed: 13, RetryLimit: 500,
			Workers:  workers,
			OnResult: driver.OnResult,
		}
		n, err := netsim.Build(p)
		if err != nil {
			return nil, err
		}
		defer n.Close()
		driver.Bind(n)
		n.Run(cycles)
		return driver, nil
	}
	want, err := run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Measured()) == 0 {
		t.Fatal("open-loop run measured no completions; the differential compares nothing")
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := run(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Injected() != want.Injected() ||
			!reflect.DeepEqual(got.Measured(), want.Measured()) ||
			!reflect.DeepEqual(got.Point(), want.Point()) {
			t.Errorf("workers=%d: open-loop run diverges from the serial engine", workers)
		}
	}
}
