package cascade

import (
	"metro/internal/link"
	"metro/internal/word"
)

// WideChannel presents c parallel physical link ends as one logical
// channel of width c*w: data payloads are bit-sliced across the lanes and
// control words are replicated, exactly as a width-cascaded router group
// expects. It satisfies nic.Channel.
//
// The BCB is the logical OR of the lanes' BCBs: any member tearing a
// connection down (including a consistency kill) aborts the logical
// connection.
type WideChannel struct {
	ends    []*link.End
	width   int         // physical width of one lane
	scratch []word.Word // Recv merge buffer, reused every cycle
}

// NewWideChannel bundles the given lane ends (member 0 carries the least
// significant bits).
func NewWideChannel(ends []*link.End, width int) *WideChannel {
	if len(ends) == 0 {
		panic("cascade: wide channel needs at least one lane")
	}
	return &WideChannel{
		ends:    append([]*link.End(nil), ends...),
		width:   width,
		scratch: make([]word.Word, len(ends)),
	}
}

// Lanes returns the cascade factor.
func (w *WideChannel) Lanes() int { return len(w.ends) }

// Send stages the logical word across the lanes.
func (w *WideChannel) Send(x word.Word) {
	for k, end := range w.ends {
		end.Send(MemberWord(x, k, w.width))
	}
}

// Recv merges the lanes' arriving words into the logical word. A lockstep
// violation (differing kinds) merges to Empty, which the endpoint
// protocol treats as a failed connection — the consistency kill will have
// asserted BCB in the same breath.
//
//metrovet:bounds scratch is sized to len(ends) by NewWideChannel and k ranges over ends
func (w *WideChannel) Recv() word.Word {
	for k, end := range w.ends {
		w.scratch[k] = end.Recv()
	}
	return MergeWords(w.scratch, w.width)
}

// SendBCB drives the backward control bit on every lane.
func (w *WideChannel) SendBCB(b bool) {
	for _, end := range w.ends {
		end.SendBCB(b)
	}
}

// RecvBCB reports whether any lane's BCB is asserted.
func (w *WideChannel) RecvBCB() bool {
	for _, end := range w.ends {
		if end.RecvBCB() {
			return true
		}
	}
	return false
}
