package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"sync"

	"metro/internal/metrics"
	"metro/internal/telemetry"
)

// jobObs bundles the observability handles a job's SSE hub reports
// into: the open-subscription gauge, the dropped-frame counter, and the
// server log. The zero value is valid (nil metric cells discard
// updates; a nil logger is replaced with a discard logger), so tests
// can build hubs bare.
type jobObs struct {
	subscribers *metrics.Gauge
	dropped     *metrics.Counter
	log         *slog.Logger
}

// jobObs returns the server's observability handles for a new job.
func (s *Server) jobObs() jobObs {
	return jobObs{subscribers: s.met.sseSubscribers, dropped: s.met.sseDropped, log: s.log}
}

// streamEvent is one SSE frame: an event name and a single-line JSON
// payload.
type streamEvent struct {
	name string
	data []byte
}

// hub fans a job's event stream out to any number of SSE subscribers.
//
// Progress events are kept in a bounded history that is replayed to
// late subscribers, so "submit, then open the event stream" always
// observes the run even if the job finished in between — the replay is
// part of the API, not a race. Gauge events are live-only (they are
// high-rate samples, not a lifecycle), and the terminal "done" event is
// both appended to history and closes the stream.
//
// Subscriber channels are bounded; a subscriber that cannot keep up has
// events dropped rather than stalling the worker — the simulation's
// epilogue goroutine must never block on a slow client. Every dropped
// frame increments serve_sse_dropped_frames_total, and the first drop
// on each connection is logged once so a slow client is diagnosable
// without flooding the log.
type hub struct {
	mu      sync.Mutex
	jobID   string
	obs     jobObs
	subs    []*subscriber
	history []streamEvent
	closed  bool
	dropped uint64 // total frames dropped across all subscribers
}

// subscriber is one attached SSE connection.
type subscriber struct {
	ch      chan streamEvent
	dropped uint64 // frames this connection missed; first one is logged
}

// historyBound caps replayed events per job: at the default progress
// period even the hard-capped 5M-cycle run emits ~20k progress frames,
// so the bound keeps memory flat while preserving the stream's shape.
const historyBound = 1024

// subBuffer is each subscriber's channel depth.
const subBuffer = 256

func newHub(jobID string, obs jobObs) *hub {
	if obs.log == nil {
		obs.log = slog.New(slog.DiscardHandler)
	}
	return &hub{jobID: jobID, obs: obs}
}

// publish sends ev to every subscriber; keep additionally records it in
// the replay history (drop-oldest beyond historyBound).
func (h *hub) publish(ev streamEvent, keep bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	if keep {
		if len(h.history) >= historyBound {
			copy(h.history, h.history[1:])
			h.history = h.history[:len(h.history)-1]
		}
		h.history = append(h.history, ev)
	}
	for _, sub := range h.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped++
			h.dropped++
			h.obs.dropped.Inc()
			if sub.dropped == 1 {
				h.obs.log.LogAttrs(context.Background(), slog.LevelWarn, "sse_slow_subscriber",
					slog.String("job", h.jobID))
			}
		}
	}
}

// close marks the stream complete; subscribers' channels are closed
// after the history (which now ends in "done") has been delivered.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for _, sub := range h.subs {
		close(sub.ch)
		h.obs.subscribers.Add(-1)
	}
	h.subs = nil
}

// subscribe returns the replay history and a live channel (nil if the
// stream already closed — the history then ends with the terminal
// event). cancel must be called when the subscriber leaves.
func (h *hub) subscribe() (replay []streamEvent, ch chan streamEvent, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = append([]streamEvent(nil), h.history...)
	if h.closed {
		return replay, nil, func() {}
	}
	sub := &subscriber{ch: make(chan streamEvent, subBuffer)}
	h.subs = append(h.subs, sub)
	h.obs.subscribers.Add(1)
	return replay, sub.ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		for i, have := range h.subs {
			if have == sub {
				h.subs[i] = h.subs[len(h.subs)-1]
				h.subs[len(h.subs)-1] = nil
				h.subs = h.subs[:len(h.subs)-1]
				close(sub.ch)
				h.obs.subscribers.Add(-1)
				break
			}
		}
	}
}

// progressPayload is the SSE "progress" frame body.
type progressPayload struct {
	Cycle     uint64 `json:"cycle"`
	Offered   int    `json:"offered"`
	Completed int    `json:"completed"`
	Delivered int    `json:"delivered"`
}

// publishProgress emits one cycle-stamped progress frame (replayable).
func (j *job) publishProgress(cycle uint64, offered, completed, delivered int) {
	data, _ := json.Marshal(progressPayload{Cycle: cycle, Offered: offered, Completed: completed, Delivered: delivered})
	j.hub.publish(streamEvent{name: "progress", data: data}, true)
}

// gaugePayload is the SSE "gauge" frame body: one telemetry gauge
// sample off the metrotrace bus.
type gaugePayload struct {
	Cycle uint64 `json:"cycle"`
	Kind  string `json:"kind"`
	Stage int    `json:"stage"` // -1 for whole-network gauges
	Value int32  `json:"value"`
}

// gaugeSink adapts the telemetry recorder's streaming sink to the job's
// SSE hub: gauge events whose cycle lands on the every-cycle grid are
// forwarded live. It runs on the engine's flushing goroutine, so it
// must not block — hub.publish drops on slow subscribers by design.
func (j *job) gaugeSink(every uint64) func([]telemetry.Event) {
	if every == 0 {
		every = 1
	}
	return func(events []telemetry.Event) {
		for _, e := range events {
			if e.Kind.Family() != "gauge" || e.Cycle%every != 0 {
				continue
			}
			data, _ := json.Marshal(gaugePayload{
				Cycle: e.Cycle,
				Kind:  e.Kind.String(),
				Stage: int(e.Src.Stage),
				Value: e.A,
			})
			j.hub.publish(streamEvent{name: "gauge", data: data}, false)
		}
	}
}

// serveEvents streams a job's frames as Server-Sent Events until the
// terminal event or client disconnect.
func serveEvents(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "serve: response writer does not support streaming", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	// Flush the headers now: a subscriber to a still-queued job must see
	// the stream open immediately, not after the first frame.
	fl.Flush()

	write := func(ev streamEvent) bool {
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data); err != nil {
			return false
		}
		fl.Flush()
		return ev.name != "done"
	}

	replay, live, cancel := j.hub.subscribe()
	defer cancel()
	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	if live == nil {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-live:
			if !ok {
				// Stream closed between our replay and now: the job's
				// history ends with the terminal event — deliver it if
				// the replay predated it.
				res, _, done := j.snapshot()
				if done {
					data := marshalResult(res)
					write(streamEvent{name: "done", data: data[:len(data)-1]})
				}
				return
			}
			if !write(ev) {
				return
			}
		}
	}
}
