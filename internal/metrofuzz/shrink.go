package metrofuzz

import "metro/internal/topo"

// Shrink greedily minimizes a failing scenario: it tries a ladder of
// simplifying transformations — serial engine, fewer faults, fewer
// messages, shorter schedules, smaller payloads, narrower cascades,
// smaller topologies — and adopts any candidate that still fails any
// oracle, restarting the ladder after each success until a fixpoint or
// the run budget is exhausted. Knobs that guarantee convergence
// (RetryLimit, ListenTimeout) are deliberately never reduced: shrinking
// them below the generator's calibrated floors could manufacture a
// delivery failure that the original scenario never had, turning the
// repro into a false accusation.
//
// The returned report is the failing run of the minimal scenario. If
// the input scenario does not fail, it is returned unchanged with its
// (passing) report.
func Shrink(s Scenario, h Hooks, maxRuns int) (Scenario, *Report) {
	if maxRuns <= 0 {
		maxRuns = 150
	}
	best := Run(s, h)
	runs := 1
	if !best.Failed() {
		return s, best
	}
	for runs < maxRuns {
		improved := false
		for _, cand := range shrinkCandidates(best.Scenario) {
			if cand.Validate() != nil {
				continue
			}
			rep := Run(cand, h)
			runs++
			if rep.Failed() {
				best = rep
				improved = true
				break // restart the ladder from the simplified scenario
			}
			if runs >= maxRuns {
				break
			}
		}
		if !improved {
			break
		}
	}
	return best.Scenario, best
}

// tinySpec is the smallest interesting network: 4 endpoints, one link
// each, two radix-2 stages.
func tinySpec() topo.Spec {
	return topo.Spec{
		Endpoints:     4,
		EndpointLinks: 1,
		Stages: []topo.StageSpec{
			{Inputs: 2, Radix: 2, Dilation: 1},
			{Inputs: 2, Radix: 2, Dilation: 1},
		},
	}
}

// shrinkCandidates lists simplifications of s, most aggressive first.
// Candidates that break Scenario.Validate (a fault event aimed at a
// router the smaller topology lacks, say) are filtered by the caller.
func shrinkCandidates(s Scenario) []Scenario {
	var out []Scenario
	add := func(c Scenario) { out = append(out, c) }

	// Drop the parallel leg: most failures don't need workers, and the
	// serial engine halves the cost of every later candidate.
	if s.Workers > 0 {
		c := s
		c.Workers = 0
		add(c)
	}
	// Fault schedule: halves first, then single events.
	if n := len(s.Faults); n > 1 {
		c := s
		c.Faults = append(s.Faults[:0:0], s.Faults[:n/2]...)
		add(c)
		c = s
		c.Faults = append(s.Faults[:0:0], s.Faults[n/2:]...)
		add(c)
	}
	for i := range s.Faults {
		c := s
		c.Faults = append(s.Faults[:0:0], s.Faults[:i]...)
		c.Faults = append(c.Faults, s.Faults[i+1:]...)
		add(c)
	}
	// Less traffic, shorter schedule.
	if s.Messages > 1 {
		c := s
		c.Messages = s.Messages / 2
		add(c)
	}
	if s.InjectCycles > 1 {
		c := s
		c.InjectCycles = maxIntOf(1, s.InjectCycles/2)
		add(c)
	}
	// Simpler traffic model and payload.
	if s.Traffic != Burst {
		c := s
		c.Traffic = Burst
		c.RatePerMille = 0
		c.Outstanding = 0
		c.ThinkMax = 0
		c.InjectCycles = 1
		add(c)
	}
	if s.PayloadBytes > MinPayloadBytes {
		c := s
		c.PayloadBytes = MinPayloadBytes
		add(c)
	}
	// Narrower hardware.
	if s.CascadeWidth > 1 {
		c := s
		c.CascadeWidth = 1
		add(c)
	}
	if s.MaxActiveSenders != 0 {
		c := s
		c.MaxActiveSenders = 0
		add(c)
	}
	// Topology ladder, large to small. Fault events that no longer fit
	// are dropped with the swap — a topology change invalidates their
	// coordinates anyway.
	for _, preset := range smallerTopologies(s) {
		c := s
		c.Preset = preset
		c.Custom = topo.Spec{}
		if preset == "" {
			c.Custom = tinySpec()
		}
		if len(c.Faults) > 0 {
			c.Faults = nil
		}
		add(c)
	}
	return out
}

// smallerTopologies returns the presets below s's topology on the size
// ladder ("" stands for tinySpec).
func smallerTopologies(s Scenario) []string {
	ladder := []string{"net32r8", "net32", "fig3", "fig1"}
	pos := -1
	for i, p := range ladder {
		if s.Preset == p {
			pos = i
		}
	}
	if s.Preset == "" {
		// Custom spec: try the canonical small nets unless already tiny.
		if spec, err := s.Spec(); err == nil && spec.Endpoints <= 4 {
			return nil
		}
		return []string{"fig1", ""}
	}
	var out []string
	out = append(out, ladder[pos+1:]...)
	out = append(out, "") // tinySpec
	return out
}

func maxIntOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
