package latmodel

import (
	"math"
	"testing"
	"testing/quick"
)

// TestTable3MatchesPaperExactly is the core reproduction check: the Table 4
// latency model regenerates every t20,32 value in the paper's Table 3.
func TestTable3MatchesPaperExactly(t *testing.T) {
	rows := Table3()
	if len(rows) != len(PaperT2032) {
		t.Fatalf("row count %d != paper %d", len(rows), len(PaperT2032))
	}
	for i, im := range rows {
		got := im.T2032()
		if math.Abs(got-PaperT2032[i]) > 1e-9 {
			t.Errorf("row %d (%s %s): t20,32 = %.1f ns, paper says %.1f ns",
				i, im.Tech, im.Name, got, PaperT2032[i])
		}
	}
}

func TestTable3TStgMatchesPaper(t *testing.T) {
	for i, im := range Table3() {
		if got := im.TStg(); math.Abs(got-PaperTStg[i]) > 1e-9 {
			t.Errorf("row %d (%s %s): t_stg = %.1f ns, paper says %.1f ns",
				i, im.Tech, im.Name, got, PaperTStg[i])
		}
	}
}

func TestTable4Relations(t *testing.T) {
	// Spot-check each relation against hand-computed values for
	// METROJR-ORBIT.
	im := Table3()[0]
	if im.VTD() != 1 {
		t.Errorf("vtd = %d, want 1", im.VTD())
	}
	if im.TOnChip() != 25 {
		t.Errorf("t_on_chip = %f, want 25", im.TOnChip())
	}
	if im.TStg() != 50 {
		t.Errorf("t_stg = %f, want 50", im.TStg())
	}
	if im.HBits() != 8 {
		t.Errorf("hbits = %d, want 8 (5 routing bits padded to 2 nibbles)", im.HBits())
	}
	if im.TBit() != 6.25 {
		t.Errorf("t_bit = %f, want 6.25 ns/bit", im.TBit())
	}
	if im.TBitLabel() != "25 ns/4 b" {
		t.Errorf("t_bit label = %q", im.TBitLabel())
	}
}

func TestHBitsHWPositive(t *testing.T) {
	im := Implementation{Width: 4, Cascade: 2, HW: 1, StageBits: []int{1, 1, 1, 2}}
	if got := im.HBits(); got != 32 {
		t.Errorf("hbits = %d, want hw*w*c*stages = 32", got)
	}
}

func TestCascadeScalesBandwidthNotStages(t *testing.T) {
	base := Table3()[0]
	casc := Table3()[1]
	if base.TStg() != casc.TStg() {
		t.Error("cascading must not change per-stage latency")
	}
	if casc.TBit()*2 != base.TBit() {
		t.Error("2-cascade should halve per-bit time")
	}
	if casc.T2032() >= base.T2032() {
		t.Error("cascading should reduce message latency")
	}
}

func TestMessageLatencyMonotoneInSize(t *testing.T) {
	f := func(a, b uint8) bool {
		im := Table3()[0]
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return im.MessageLatency(x) <= im.MessageLatency(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVTDGrowsWithWireAndShrinksWithClock(t *testing.T) {
	fast := Implementation{TClk: 2, TIo: 3, Width: 4, Cascade: 1, DP: 1, StageBits: []int{1}}
	slow := Implementation{TClk: 25, TIo: 3, Width: 4, Cascade: 1, DP: 1, StageBits: []int{1}}
	if fast.VTD() <= slow.VTD() {
		t.Errorf("faster clocks should need more wire pipeline stages: %d vs %d",
			fast.VTD(), slow.VTD())
	}
}

// TestTable5WithinTolerance checks every baseline's computed estimates
// against the paper's printed values within 15%.
func TestTable5WithinTolerance(t *testing.T) {
	for _, b := range Table5() {
		lo, hi := b.Min(), b.Max()
		if rel(lo, b.PaperMin) > 0.15 {
			t.Errorf("%s: computed min %.0f ns vs paper %.0f ns", b.Name, lo, b.PaperMin)
		}
		if rel(hi, b.PaperMax) > 0.15 {
			t.Errorf("%s: computed max %.0f ns vs paper %.0f ns", b.Name, hi, b.PaperMax)
		}
		if lo > hi {
			t.Errorf("%s: min %.0f > max %.0f", b.Name, lo, hi)
		}
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / b
}

// TestMETROBeatsContemporaries reproduces the paper's comparison claim:
// even the minimal gate-array METRO implementation (1250 ns) compares
// favorably with most of the Table 5 field, and the custom implementations
// beat all of it.
func TestMETROBeatsContemporaries(t *testing.T) {
	orbit := Table3()[0].T2032()
	custom := Table3()[11].T2032() // METROJR hw=1 full custom
	slower := 0
	for _, b := range Table5() {
		if b.PaperMax > orbit {
			slower++
		}
		if custom >= b.PaperMin {
			t.Errorf("full-custom METRO (%.0f ns) should beat %s (min %.0f ns)",
				custom, b.Name, b.PaperMin)
		}
	}
	if slower < 4 {
		t.Errorf("only %d of %d contemporaries slower than METROJR-ORBIT", slower, len(Table5()))
	}
}
