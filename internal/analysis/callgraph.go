package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EdgeKind classifies how a call-graph edge was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call: a plain function call, a
	// package-qualified call, or a method call on a concrete type.
	EdgeStatic EdgeKind = iota
	// EdgeRef is a function or method referenced as a value (a method
	// value passed to an engine, a func stored for later). The analyzers
	// treat a reference as a potential call from the referencing
	// function: whoever eventually invokes it does so on the
	// referencer's behalf.
	EdgeRef
	// EdgeIface is an interface-dispatched call resolved CHA-style: the
	// edge targets one concrete implementation of the interface's
	// method, and a call site fans out one edge per implementer.
	EdgeIface
)

// String names the edge kind for tests and debugging.
func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeRef:
		return "ref"
	case EdgeIface:
		return "iface"
	}
	return "unknown"
}

// CallEdge is one resolved outgoing edge of a function.
type CallEdge struct {
	Callee *FuncNode
	Kind   EdgeKind
	Pos    token.Pos
	// IfaceRecv is the CHA-resolved concrete receiver type for
	// EdgeIface edges, nil otherwise.
	IfaceRecv *types.Named
	// IfaceName is the declared interface the call dispatches through
	// ("clock.Component"), for finding messages. Empty otherwise.
	IfaceName string
}

// CallGraph is the whole-program call graph: for every indexed
// function, the outgoing edges the analyzers can resolve statically.
// Calls through func-typed fields and variables are not edges — the
// callee is unknowable without pointer analysis — and calls into
// packages outside the program (the standard library) have no body to
// target. Edges appear in source order; CHA fan-outs are sorted by
// (package, type), so the graph is deterministic for a given tree.
type CallGraph struct {
	prog  *Program
	Edges map[*FuncNode][]CallEdge
}

// BuildCallGraph walks every indexed declaration once and resolves its
// outgoing edges. Function literals are attributed to their enclosing
// declaration: a closure's calls happen on behalf of whoever declared
// (and captured state for) it.
func BuildCallGraph(prog *Program) *CallGraph {
	cg := &CallGraph{prog: prog, Edges: map[*FuncNode][]CallEdge{}}
	for _, p := range prog.Packages {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := declKey(p, fd)
				node := prog.funcs[key]
				if node == nil || node.Decl != fd {
					continue
				}
				cg.Edges[node] = cg.edgesOf(p, fd)
			}
		}
	}
	return cg
}

// edgesOf resolves the outgoing edges of one declaration.
func (cg *CallGraph) edgesOf(p *Package, fd *ast.FuncDecl) []CallEdge {
	var out []CallEdge
	// callFuns marks expressions in call position (a bare reference to
	// the same function elsewhere is a value use, not a second call);
	// selNames marks the Sel half of every selector, which the walk
	// handles at the SelectorExpr level and must not re-resolve as a
	// bare identifier.
	callFuns := map[ast.Expr]bool{}
	selNames := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			callFuns[ast.Unparen(e.Fun)] = true
		case *ast.SelectorExpr:
			selNames[e.Sel] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			out = append(out, cg.callEdges(p, e)...)
		case *ast.Ident:
			if callFuns[ast.Expr(e)] || selNames[e] {
				return true
			}
			if fn, ok := p.ObjectOf(e).(*types.Func); ok {
				if target := cg.prog.nodeFor(fn); target != nil {
					out = append(out, CallEdge{Callee: target, Kind: EdgeRef, Pos: e.Pos()})
				}
			}
		case *ast.SelectorExpr:
			if callFuns[ast.Expr(e)] {
				// Still descend: the receiver expression may itself
				// contain calls or references.
				return true
			}
			// A method value (r.Eval passed as a func) is a reference
			// edge; through an interface it fans out like a call.
			if sel := selectionOf(p, e); sel != nil && sel.Kind() == types.MethodVal {
				out = append(out, cg.methodEdges(p, e, EdgeRef)...)
			} else if fn, ok := p.ObjectOf(e.Sel).(*types.Func); ok {
				if target := cg.prog.nodeFor(fn); target != nil {
					out = append(out, CallEdge{Callee: target, Kind: EdgeRef, Pos: e.Pos()})
				}
			}
		}
		return true
	})
	return out
}

// callEdges resolves one call expression to its edges.
func (cg *CallGraph) callEdges(p *Package, call *ast.CallExpr) []CallEdge {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.ObjectOf(fun).(*types.Func); ok {
			if target := cg.prog.nodeFor(fn); target != nil {
				return []CallEdge{{Callee: target, Kind: EdgeStatic, Pos: call.Pos()}}
			}
		}
	case *ast.SelectorExpr:
		if sel := selectionOf(p, fun); sel != nil && sel.Kind() == types.MethodVal {
			return cg.methodEdges(p, fun, EdgeStatic)
		}
		// Package-qualified function (pkg.F) — not a method, not a
		// func-typed field (those resolve to *types.Var and are
		// untraceable).
		if fn, ok := p.ObjectOf(fun.Sel).(*types.Func); ok {
			if target := cg.prog.nodeFor(fn); target != nil {
				return []CallEdge{{Callee: target, Kind: EdgeStatic, Pos: call.Pos()}}
			}
		}
	}
	return nil
}

// methodEdges resolves a method selection: concrete receivers bind
// statically; interface receivers fan out CHA-style to every
// implementation declared in the program's internal packages, provided
// the interface itself is declared in a loaded package (dispatch
// through stdlib interfaces — error, fmt.Stringer — stays opaque).
func (cg *CallGraph) methodEdges(p *Package, fun *ast.SelectorExpr, kind EdgeKind) []CallEdge {
	recvType := p.TypeOf(fun.X)
	if recvType == nil {
		return nil
	}
	if !types.IsInterface(recvType) {
		if fn, ok := p.ObjectOf(fun.Sel).(*types.Func); ok {
			if target := cg.prog.nodeFor(fn); target != nil {
				return []CallEdge{{Callee: target, Kind: kind, Pos: fun.Pos()}}
			}
		}
		return nil
	}
	named := namedTypeOf(recvType)
	if named == nil || named.Obj().Pkg() == nil {
		return nil
	}
	if cg.prog.byPath[named.Obj().Pkg().Path()] == nil {
		return nil
	}
	iface, ok := recvType.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	ifaceName := internalName(named.Obj().Pkg().Path())
	if ifaceName == "" {
		ifaceName = named.Obj().Pkg().Name()
	}
	ifaceName += "." + named.Obj().Name()
	var out []CallEdge
	for _, impl := range cg.prog.implementersOf(iface) {
		target := cg.prog.methodNodeOf(impl, fun.Sel.Name)
		if target == nil {
			continue
		}
		out = append(out, CallEdge{
			Callee: target, Kind: EdgeIface, Pos: fun.Pos(),
			IfaceRecv: impl, IfaceName: ifaceName,
		})
	}
	return out
}

// selectionOf looks up a selector's resolved selection in whichever
// check unit covers it.
func selectionOf(p *Package, sel *ast.SelectorExpr) *types.Selection {
	for _, info := range []*types.Info{p.Info, p.XInfo} {
		if info == nil {
			continue
		}
		if s, ok := info.Selections[sel]; ok {
			return s
		}
	}
	return nil
}

// RootedNode seeds a reachability walk: a function plus the
// human-readable root it represents ("(*Router).Eval") and,
// optionally, the root component's type name (for own-type
// exemptions).
type RootedNode struct {
	Node *FuncNode
	Root string
	Type string
	// Kind is a free-form root class ("component", "sink") the analyzer
	// can vary its finding message on.
	Kind string
}

// RootInfo records which root first reached a function.
type RootInfo struct {
	Root string
	// Type is the root component's type name (RootedNode.Type).
	Type string
	// Kind is the root class (RootedNode.Kind).
	Kind string
	// Via is the interface name when the first reaching edge was
	// CHA-dispatched ("" otherwise) — it tells the reader why a
	// seemingly unrelated method is in an Eval tree.
	Via string
}

// Reachable walks the graph breadth-first from roots (in the given
// order) and returns, for every reached function, the first root that
// reached it. follow filters edges; a nil filter follows everything.
func (cg *CallGraph) Reachable(roots []RootedNode, follow func(CallEdge) bool) map[*FuncNode]RootInfo {
	reached := map[*FuncNode]RootInfo{}
	type item struct {
		node *FuncNode
		info RootInfo
	}
	var queue []item
	for _, r := range roots {
		if r.Node != nil {
			queue = append(queue, item{r.Node, RootInfo{Root: r.Root, Type: r.Type, Kind: r.Kind}})
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if _, seen := reached[cur.node]; seen {
			continue
		}
		reached[cur.node] = cur.info
		for _, e := range cg.Edges[cur.node] {
			if follow != nil && !follow(e) {
				continue
			}
			next := cur.info
			if e.Kind == EdgeIface && next.Via == "" {
				next.Via = e.IfaceName
			}
			queue = append(queue, item{e.Callee, next})
		}
	}
	return reached
}

// reachedNodes returns a reached set's nodes sorted by key, for
// deterministic reporting order.
func reachedNodes(reached map[*FuncNode]RootInfo) []*FuncNode {
	nodes := make([]*FuncNode, 0, len(reached))
	for node := range reached {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Key < nodes[j].Key })
	return nodes
}
